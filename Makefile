# Build/test entry points. `make check` is the full gate (vet + build +
# race-enabled tests including the chaos suite); `make test-short` skips
# the chaos tests for a fast tier-1-style pass.

GO ?= go

.PHONY: check fmt build vet test test-short test-race parity chaos bench bench-json fuzz

check: fmt vet build test-race

# Formatting gate: fails (and lists the offenders) if any tracked Go
# file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast pass: -short skips the fault-injection chaos tests.
test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# The sim↔live decision-equivalence gate: replays one generated trace
# through the simulator and through a live socket group and demands
# identical hit mix, placement decisions, and final resident sets.
parity:
	$(GO) test -race -v -run TestSimLiveParity ./internal/parity/

# Just the chaos suite: the live 4-node group under injected faults.
chaos:
	$(GO) test -race -v -run 'TestBreaker|TestRemoteHitFetchFailure|TestPeerCrash|TestUDPLoss|TestStalledOrigin|TestChaosFlagged|TestChaosHash|TestDemoWithChaos' ./internal/netnode/ ./cmd/proxyd/

bench:
	$(GO) test -bench . -benchmem ./...

# Headless benchmark run: paper artifacts, a simulated group replay
# (hit rate / byte hit rate / estimated latency), and the live-socket
# node benchmarks — telemetry off/on plus the parallel run on the
# sharded store. Writes BENCH_JSON.
BENCH_JSON ?= BENCH_pr4.json
BENCH_FLAGS ?=
bench-json:
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) $(BENCH_FLAGS)

# Fuzz the decoders that face untrusted bytes: journal/snapshot recovery
# and the wire parsers. Short per-target budget by default; raise with
# e.g. `make fuzz FUZZTIME=2m` for a longer soak.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz FuzzJournalReplay -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -fuzz FuzzSnapshotDecode -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -fuzz FuzzReadRequest -fuzztime $(FUZZTIME) ./internal/hproto/
	$(GO) test -fuzz FuzzReadResponse -fuzztime $(FUZZTIME) ./internal/hproto/
