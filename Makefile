# Build/test entry points. `make check` is the full gate (vet + build +
# race-enabled tests including the chaos suite); `make test-short` skips
# the chaos tests for a fast tier-1-style pass.

GO ?= go

.PHONY: check fmt build vet test test-short test-race parity chaos churn-smoke disk-smoke bench bench-json load-json load-smoke obs-smoke digest-smoke fuzz

check: fmt vet build test-race

# Formatting gate: fails (and lists the offenders) if any tracked Go
# file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast pass: -short skips the fault-injection chaos tests.
test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# The sim↔live decision-equivalence gate: replays one generated trace
# through the simulator and through a live socket group and demands
# identical hit mix, placement decisions, and final resident sets.
parity:
	$(GO) test -race -v -run TestSimLiveParity ./internal/parity/

# Just the chaos suite: the live 4-node group under injected faults.
chaos:
	$(GO) test -race -v -run 'TestBreaker|TestRemoteHitFetchFailure|TestPeerCrash|TestUDPLoss|TestStalledOrigin|TestChaosFlagged|TestChaosHash|TestChaosHerd|TestChaosChurn|TestDemoWithChaos' ./internal/netnode/ ./cmd/proxyd/

# Membership churn gate: kill, ejection, runtime join, revival and
# readmission under continuous traffic, race-enabled. -short runs the
# same transitions over a smaller catalogue (the CI smoke); the verbose
# log carries the per-step migration accounting and is kept as the
# artifact.
CHURN_LOG ?= artifacts/churn-smoke.log
churn-smoke:
	@mkdir -p $(dir $(CHURN_LOG))
	@$(GO) test -race -short -v -run TestChaosChurn ./internal/netnode/ > $(CHURN_LOG) 2>&1; \
	status=$$?; cat $(CHURN_LOG); exit $$status

# Disk-tier gate: the blob store's own suite (kill-at-every-offset index
# recovery, checksum self-healing, compaction) plus the tier controller
# unit surface, then the live end-to-end checks — a node overflows 10x
# its memory capacity onto disk, dies without a checkpoint, and the
# successor recovers every document with every blob checksum intact.
# Finally the hot-path budget: benchjson -check-tier fails if the tiered
# pass-through costs a single byte or alloc over the bare memory hit.
DISK_LOG ?= artifacts/disk-smoke.log
disk-smoke:
	@mkdir -p $(dir $(DISK_LOG))
	@{ $(GO) test -race -v ./internal/blob/ && \
	   $(GO) test -race -v -run 'TestTiered|TestDemote|TestRestoreDisk' ./internal/cache/ && \
	   $(GO) test -race -v -run 'TestJournalTier|TestMarshalEventRejects|TestSnapshotV2|TestSnapshotAccepts|TestSnapshotRejects|TestReplayTier|TestCheckpointPersistsDisk' ./internal/persist/ && \
	   $(GO) test -race -v -run 'TestTier' ./internal/netnode/; } > $(DISK_LOG) 2>&1; \
	status=$$?; cat $(DISK_LOG); exit $$status
	$(GO) run ./cmd/benchjson -out /tmp/tier-smoke.json -artifacts=false -node-iters 2000 -node-reps 1 -check-tier

bench:
	$(GO) test -bench . -benchmem ./...

# Headless benchmark run: paper artifacts, a simulated group replay
# (hit rate / byte hit rate / estimated latency), the disk-tier
# demote/promote paths plus the memory-hit parity pair, and the
# live-socket node benchmarks — telemetry off/on plus the parallel run
# on the sharded store. Writes BENCH_JSON.
BENCH_JSON ?= BENCH_pr10.json
BENCH_FLAGS ?=
bench-json:
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) $(BENCH_FLAGS)

# Open-loop load harness (cmd/loadgen) against a live 2-node group over
# real sockets. load-json ramps to saturation and writes the tail-latency
# artifact (p50/p99/p999, saturation RPS, shed/coalesce rates);
# load-smoke is the CI gate — a few seconds at low RPS must finish with
# zero sheds and zero errors, or the overload layer is misfiring at
# unsaturated load.
LOAD_JSON ?= BENCH_pr6.json
load-json:
	$(GO) run ./cmd/loadgen -nodes 2 -rps 300 -duration 5s -saturate -out $(LOAD_JSON)

load-smoke:
	$(GO) run ./cmd/loadgen -nodes 2 -rps 50 -duration 3s -check -out $(LOAD_JSON)

# Group observability gate: live multi-node groups introspected by
# eacctl over their admin surfaces. Covers single-seed member discovery,
# cross-node trace stitching (one remote hit -> one trace ID on both the
# requester and the responder), and the replication-factor audit — under
# consistent-hash location the factor computed from /admin/resident must
# stay <= 1.0. Also re-runs the loadgen -obs path so the slow-trace
# artifact plumbing stays honest.
obs-smoke:
	$(GO) test -race -v -run 'TestEacctlAgainstLiveGroup|TestHashGroupReplicationBound' ./cmd/eacctl/
	$(GO) test -race -v -run 'TestCrossPeerTracePropagation|TestMalformedTraceContextNeverFatal' ./internal/netnode/
	$(GO) test -race -v -run 'TestLoadgenObsRecordsSlowTraces' ./cmd/loadgen/

# Digest-location gate: a live 3-node -locate=digest group under
# traffic, plus the delta-sync unit surface. After the first-contact
# full transfers, every background refresh must ride the change log as
# a delta — eacctl's aggregated /admin/digests counters prove deltas
# outnumber fulls and the rebuild escape hatch never fired — and the
# counting-filter maintenance plus sync wire cost stay within budget
# (delta bytes < 10% of a full transfer, asserted by -check-digest).
digest-smoke:
	$(GO) test -race -v -run 'TestDigestGroupDeltaSteadyState' ./cmd/eacctl/
	$(GO) test -race -v -run 'TestDigest|TestIncremental|TestDelta' ./internal/netnode/ ./internal/digest/
	$(GO) run ./cmd/benchjson -out /tmp/digest-smoke.json -artifacts=false -node-iters 2000 -node-reps 1 -check-digest

# Fuzz the decoders that face untrusted bytes: journal/snapshot recovery
# and the wire parsers. Short per-target budget by default; raise with
# e.g. `make fuzz FUZZTIME=2m` for a longer soak.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz FuzzJournalReplay -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -fuzz FuzzSnapshotDecode -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -fuzz FuzzReadRequest -fuzztime $(FUZZTIME) ./internal/hproto/
	$(GO) test -fuzz FuzzReadResponse -fuzztime $(FUZZTIME) ./internal/hproto/
	$(GO) test -fuzz FuzzDecodeSync -fuzztime $(FUZZTIME) ./internal/digest/
