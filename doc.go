// Package eacache is a from-scratch Go reproduction of "A New Document
// Placement Scheme for Cooperative Caching on the Internet" (Ramaswamy &
// Liu, ICDCS 2002): the Expiration-Age (EA) based document placement scheme
// for groups of cooperating web proxy caches, together with every substrate
// the paper's evaluation depends on — ICP (RFC 2186), the inter-proxy fetch
// protocol with piggybacked expiration ages, LRU/LFU replacement with
// expiration-age tracking, distributed and hierarchical cache groups, a
// BU-calibrated synthetic workload generator, a deterministic trace-driven
// simulator, and a live UDP/TCP proxy node.
//
// The benchmarks in this directory regenerate every table and figure of the
// paper's evaluation section; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results.
package eacache
