// Command cachesim runs one trace-driven cooperative caching simulation
// and prints the paper's metrics for it.
//
// Usage:
//
//	cachesim -trace trace.txt -scheme ea -caches 4 -aggregate 10MB
//	tracegen -scale 0.01 | cachesim -scheme adhoc -caches 8 -aggregate 1MB
//	cachesim -trace bu.log -format bu -scheme ea ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/proxy"
	"eacache/internal/resolve"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath  = fs.String("trace", "", "trace file (default stdin)")
		format     = fs.String("format", "canonical", `trace format: "canonical", "bu" or "squid"`)
		schemeName = fs.String("scheme", "ea", `placement scheme: "adhoc", "ea" or "never"`)
		caches     = fs.Int("caches", 4, "number of caches in the group")
		aggregate  = fs.String("aggregate", "10MB", "aggregate group size (e.g. 100KB, 1MB, 1GB)")
		policy     = fs.String("policy", "lru", `replacement policy: "lru", "lfu", "gds" or "size"`)
		arch       = fs.String("arch", "distributed", `architecture: "distributed" or "hierarchical"`)
		window     = fs.Int("window", cache.WindowAll, "expiration-age window in evictions (0 = cumulative)")
		horizon    = fs.Duration("horizon", 0, "expiration-age time horizon (0 = group default)")
		location   = fs.String("location", "icp", `document location: "icp", "digest" or "hash"`)
		ttl        = fs.Bool("ttl", false, "stamp era-mix freshness lifetimes on documents (coherence)")
		warmup     = fs.Float64("warmup", 0, "fraction of the trace replayed uncounted to warm the caches")
		popularity = fs.Bool("popularity", false, "print the trace's popularity analysis")
		decisions  = fs.Int("decisions", 0, "print the first N placement decisions (expiration ages and store/promote outcomes)")
		perCache   = fs.Bool("per-cache", false, "print per-cache breakdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	records, err := loadTrace(*tracePath, *format, stdin)
	if err != nil {
		return err
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)
	trace.SortByTime(records)

	aggBytes, err := ParseBytes(*aggregate)
	if err != nil {
		return err
	}
	scheme, ok := core.New(*schemeName)
	if !ok {
		return fmt.Errorf("unknown scheme %q", *schemeName)
	}
	architecture := group.Distributed
	if *arch == "hierarchical" {
		architecture = group.Hierarchical
	} else if *arch != "distributed" {
		return fmt.Errorf("unknown architecture %q", *arch)
	}
	loc, err := resolve.ParseLocation(*location)
	if err != nil {
		return err
	}
	var origin proxy.Origin = proxy.SizeHintOrigin{}
	if *ttl {
		origin = proxy.EraTTLOrigin()
	}
	if _, ok := cache.NewPolicy(*policy); !ok {
		return fmt.Errorf("unknown policy %q", *policy)
	}
	var tracer proxy.Tracer
	if *decisions > 0 {
		limit := *decisions
		lineTracer := proxy.WriteTracer(stdout)
		tracer = proxy.TracerFunc(func(e proxy.Event) {
			if limit > 0 {
				limit--
				lineTracer.Trace(e)
			}
		})
	}

	g, err := group.New(group.Config{
		Caches:         *caches,
		AggregateBytes: aggBytes,
		Scheme:         scheme,
		NewPolicy: func() cache.Policy {
			p, _ := cache.NewPolicy(*policy)
			return p
		},
		ExpirationWindow:  *window,
		ExpirationHorizon: *horizon,
		Architecture:      architecture,
		Location:          loc,
		Origin:            origin,
		Tracer:            tracer,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	rep, err := sim.Run(g, records, sim.Config{Warmup: *warmup})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "trace: %s\n", trace.ComputeStats(records))
	if *popularity {
		fmt.Fprintf(stdout, "popularity: %s\n", trace.ComputePopularity(records))
	}
	fmt.Fprintf(stdout, "run:   %s (simulated in %s)\n", rep, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "replication: %.3f copies/doc over %d unique resident docs (%d replicated)\n",
		rep.Replication.MeanCopies(), rep.Replication.UniqueDocs, rep.Replication.ReplicatedDocs)
	if *perCache {
		for _, p := range rep.PerProxy {
			age := "no evictions"
			if p.ExpirationAge != cache.NoContention {
				age = fmt.Sprintf("exp-age %.1fs", p.ExpirationAge.Seconds())
			}
			fmt.Fprintf(stdout,
				"  %s: reqs=%d local=%d remote=%d miss=%d evictions=%d resident=%d (%s) %s\n",
				p.ID, p.Counters.Requests, p.Counters.LocalHits, p.Counters.RemoteHits,
				p.Counters.Misses, p.Evictions, p.ResidentDocs, sim.FormatBytes(p.ResidentBytes), age)
		}
	}
	return nil
}

func loadTrace(path, format string, stdin io.Reader) ([]trace.Record, error) {
	var r io.Reader = stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	switch format {
	case "canonical":
		return trace.Read(r)
	case "bu":
		records, skipped, err := trace.ReadBU(r)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "cachesim: skipped %d unparseable BU log lines\n", skipped)
		}
		return records, nil
	case "squid":
		records, skipped, err := trace.ReadSquid(r)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "cachesim: skipped %d non-GET or unparseable squid log lines\n", skipped)
		}
		return records, nil
	default:
		return nil, fmt.Errorf("unknown trace format %q", format)
	}
}

// ParseBytes parses sizes like "100KB", "1MB", "1GB", "4096".
func ParseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	if n <= 0 {
		return 0, fmt.Errorf("size must be positive, got %d", n)
	}
	return n * mult, nil
}
