package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eacache/internal/trace"
)

func TestParseBytes(t *testing.T) {
	tests := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"100KB", 100 << 10, true},
		{"1MB", 1 << 20, true},
		{"1GB", 1 << 30, true},
		{"4096", 4096, true},
		{"512B", 512, true},
		{" 10 mb ", 10 << 20, true},
		{"0", 0, false},
		{"-5KB", 0, false},
		{"abc", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		got, err := ParseBytes(tt.in)
		if (err == nil) != tt.ok {
			t.Fatalf("ParseBytes(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
		}
		if tt.ok && got != tt.want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func writeTempTrace(t *testing.T) string {
	t.Helper()
	records, err := trace.Generate(trace.BULike().Scaled(0.002))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, records); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTempTrace(t)
	var out, errOut bytes.Buffer
	err := run([]string{
		"-trace", path,
		"-scheme", "ea",
		"-caches", "4",
		"-aggregate", "64KB",
		"-per-cache",
	}, nil, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"trace:", "run:", "hit=", "replication:", "cache-0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunHierarchicalLFU(t *testing.T) {
	path := writeTempTrace(t)
	var out, errOut bytes.Buffer
	err := run([]string{
		"-trace", path,
		"-scheme", "adhoc",
		"-arch", "hierarchical",
		"-policy", "lfu",
		"-caches", "2",
		"-aggregate", "128KB",
	}, nil, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "hierarchical") {
		t.Fatalf("output missing architecture:\n%s", out.String())
	}
}

func TestRunFromStdin(t *testing.T) {
	records, err := trace.Generate(trace.BULike().Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	if err := trace.Write(&in, records); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-aggregate", "32KB"}, &in, &out, &errOut); err != nil {
		t.Fatalf("run from stdin: %v", err)
	}
}

func TestRunBUFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bu.log")
	bu := "beaker 784900000 u3 http://cs-www.bu.edu/ 2009 0.5\n" +
		"beaker 784900001 u3 http://cs-www.bu.edu/ 2009 0.1\n"
	if err := os.WriteFile(path, []byte(bu), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	err := run([]string{"-trace", path, "-format", "bu", "-caches", "1", "-aggregate", "16KB"},
		nil, &out, &errOut)
	if err != nil {
		t.Fatalf("run bu: %v", err)
	}
	if !strings.Contains(out.String(), "2 requests") {
		t.Fatalf("unexpected stats:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	path := writeTempTrace(t)
	for name, args := range map[string][]string{
		"bad scheme": {"-trace", path, "-scheme", "bogus"},
		"bad arch":   {"-trace", path, "-arch", "ring"},
		"bad policy": {"-trace", path, "-policy", "fifo"},
		"bad format": {"-trace", path, "-format", "xml"},
		"bad size":   {"-trace", path, "-aggregate", "lots"},
	} {
		t.Run(name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if err := run(args, nil, &out, &errOut); err == nil {
				t.Fatalf("%v accepted", args)
			}
		})
	}
}

func TestRunDigestTTLWarmup(t *testing.T) {
	path := writeTempTrace(t)
	var out, errOut bytes.Buffer
	err := run([]string{
		"-trace", path,
		"-scheme", "ea",
		"-caches", "3",
		"-aggregate", "96KB",
		"-location", "digest",
		"-ttl",
		"-warmup", "0.25",
		"-popularity",
		"-policy", "lfuda",
		"-horizon", "2h",
	}, nil, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "popularity:") {
		t.Fatalf("missing popularity line:\n%s", out.String())
	}
}

func TestRunRejectsBadLocation(t *testing.T) {
	path := writeTempTrace(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-trace", path, "-location", "telepathy"}, nil, &out, &errOut); err == nil {
		t.Fatal("bad location accepted")
	}
}

func TestRunDecisionTrace(t *testing.T) {
	path := writeTempTrace(t)
	var out, errOut bytes.Buffer
	err := run([]string{
		"-trace", path, "-scheme", "ea", "-aggregate", "64KB", "-decisions", "5",
	}, nil, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "origin-fetch") {
		t.Fatalf("no decision lines in output:\n%s", out.String())
	}
}
