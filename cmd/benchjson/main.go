// Command benchjson runs the repo's benchmark suite headlessly — through
// testing.Benchmark, no `go test` subprocess — and writes the results as
// a machine-readable JSON artifact (BENCH_pr4.json by default). It covers
// the paper-artifact benchmarks, a simulated group replay that reports
// the paper's headline measures (hit rate, byte hit rate, estimated
// average latency), the live-socket node benchmarks with telemetry off
// and on (from which it derives the observability overhead), and the
// parallel node benchmark on the sharded store, from which it derives
// the parallel speedup over the single-threaded baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"eacache/internal/benchkit"
	"eacache/internal/core"
	"eacache/internal/obs"
)

type benchResult struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// AvgLatencyMS is the measured wall-clock mean per operation (one
	// operation = one request for the node benchmarks).
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	// CPUNsPerOp is process CPU time (user+system) per operation, where
	// the benchmark reports it. On a busy host this is the stable
	// per-request cost; wall-clock ns/op also absorbs scheduler delays.
	CPUNsPerOp float64 `json:"cpu_ns_per_op,omitempty"`

	// Workload measures, present where the benchmark reports them.
	HitRate            float64 `json:"hit_rate,omitempty"`
	ByteHitRate        float64 `json:"byte_hit_rate,omitempty"`
	RemoteHitRate      float64 `json:"remote_hit_rate,omitempty"`
	EstimatedLatencyMS float64 `json:"estimated_latency_ms,omitempty"`
	Rows               int     `json:"rows,omitempty"`

	// Digest-maintenance measures (DigestMaintenance / DigestSync only).
	Rebuilds           float64 `json:"rebuilds,omitempty"`
	DeltaBytesPerOp    float64 `json:"delta_bytes_per_op,omitempty"`
	FullBytes          float64 `json:"full_bytes,omitempty"`
	DeltaFullByteRatio float64 `json:"delta_full_byte_ratio,omitempty"`
}

type artifact struct {
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	TraceScale  float64 `json:"trace_scale"`

	Benchmarks []benchResult `json:"benchmarks"`

	// TelemetryOverheadPct is the per-request cost delta of
	// NodeRequestTelemetry over NodeRequest, as a percentage of the
	// baseline (budget: <5%). It is computed on OverheadBasis: CPU time
	// per op where available (min over NodeReps interleaved runs, which
	// cancels scheduler and run-order noise), wall-clock ns/op otherwise.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	OverheadBasis        string  `json:"overhead_basis"`
	NodeReps             int     `json:"node_reps"`
	// TraceSampling is the 1-in-N trace sampling the telemetry run used
	// (proxyd's default); metrics cover every request regardless.
	TraceSampling int `json:"trace_sampling"`

	// DigestIncrementalSpeedup is the rebuild-baseline digest
	// maintenance cost divided by the incremental cost, per mutation
	// pair: how much cheaper keeping the advertised summary current
	// became when counter updates replaced delayed full scans.
	DigestIncrementalSpeedup float64 `json:"digest_incremental_speedup"`
	// DigestDeltaFullByteRatio is delta transfer bytes over the
	// full-filter bytes each delta replaced (budget: <0.10).
	DigestDeltaFullByteRatio float64 `json:"digest_delta_full_byte_ratio"`

	// ParallelSpeedup is NodeRequest wall-clock ns/op divided by
	// NodeRequestParallel wall-clock ns/op: how much faster the node
	// serves requests when many goroutines drive it at once. With the
	// request path ~95% CPU-bound, meaningful speedup (the 2× target)
	// needs GOMAXPROCS >= 4; on fewer cores the figure only shows that
	// concurrency costs nothing (~1.0).
	ParallelSpeedup float64 `json:"parallel_speedup"`

	// TierHitBytesDelta and TierHitAllocsDelta are the per-op cost the
	// TieredStore pass-through adds to a warm memory Get over the bare
	// sharded store. The disk-tier refactor's contract is that both are
	// exactly zero (-check-tier enforces it).
	TierHitBytesDelta  int64 `json:"tier_hit_bytes_delta"`
	TierHitAllocsDelta int64 `json:"tier_hit_allocs_delta"`
}

func runBench(name, benchtime string, fn func(*testing.B)) (benchResult, error) {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return benchResult{}, err
	}
	r := testing.Benchmark(fn)
	if r.N == 0 {
		return benchResult{}, fmt.Errorf("benchmark %s failed (0 iterations)", name)
	}
	res := benchResult{
		Name:         name,
		Iterations:   r.N,
		NsPerOp:      r.NsPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		AvgLatencyMS: float64(r.NsPerOp()) / 1e6,
	}
	res.HitRate = r.Extra["hitrate"]
	res.ByteHitRate = r.Extra["bytehitrate"]
	res.RemoteHitRate = r.Extra["remotehitrate"]
	res.EstimatedLatencyMS = r.Extra["estlatency_ms"]
	res.CPUNsPerOp = r.Extra["cpu_ns/op"]
	res.Rows = int(r.Extra["rows"])
	res.Rebuilds = r.Extra["rebuilds"]
	res.DeltaBytesPerOp = r.Extra["delta_bytes/op"]
	res.FullBytes = r.Extra["full_bytes"]
	res.DeltaFullByteRatio = r.Extra["delta_full_byte_ratio"]
	fmt.Printf("%-24s %10d ns/op %8d allocs/op", name, res.NsPerOp, res.AllocsPerOp)
	if res.CPUNsPerOp > 0 {
		fmt.Printf(" %10.0f cpu_ns/op", res.CPUNsPerOp)
	}
	if res.HitRate > 0 {
		fmt.Printf("  hit %.3f", res.HitRate)
	}
	fmt.Println()
	return res, nil
}

// cost is the per-op figure the telemetry comparison minimises over
// repetitions: CPU time where reported, wall clock otherwise.
func cost(r benchResult) float64 {
	if r.CPUNsPerOp > 0 {
		return r.CPUNsPerOp
	}
	return float64(r.NsPerOp)
}

func run() error {
	out := flag.String("out", "BENCH_pr4.json", "output path for the JSON artifact")
	nodeIters := flag.Int("node-iters", 20000, "iterations for the node request benchmarks")
	nodeReps := flag.Int("node-reps", 5, "interleaved repetitions of the node benchmarks (min taken)")
	artifacts := flag.Bool("artifacts", true, "include the paper-artifact benchmarks")
	checkParallel := flag.Bool("check-parallel", false,
		"exit nonzero if parallel throughput falls meaningfully below single-threaded (smoke check)")
	checkDigest := flag.Bool("check-digest", false,
		"exit nonzero if digest delta transfers cost >=10% of full-filter bytes (smoke check)")
	checkTier := flag.Bool("check-tier", false,
		"exit nonzero if the tiered pass-through costs any bytes or allocs over the bare memory hit (smoke check)")
	flag.Parse()

	var results []benchResult
	add := func(name, benchtime string, fn func(*testing.B)) error {
		res, err := runBench(name, benchtime, fn)
		if err != nil {
			return err
		}
		results = append(results, res)
		return nil
	}

	if *artifacts {
		for _, id := range []string{"fig1", "fig2", "fig3", "table1", "table2"} {
			if err := add("Artifact/"+id, "1x", benchkit.Artifact(id)); err != nil {
				return err
			}
		}
	}
	if err := add("GroupReplay/ea", "1x", benchkit.GroupReplay(core.EA{}, 4, 2<<20)); err != nil {
		return err
	}
	if err := add("GroupReplay/adhoc", "1x", benchkit.GroupReplay(core.AdHoc{}, 4, 2<<20)); err != nil {
		return err
	}

	// Digest maintenance: incremental counting-filter updates against the
	// delayed-rebuild baseline, then the wire cost of delta refreshes.
	const digestResident = 8192
	dgInc, err := runBench("DigestMaintenance/incremental", "200000x",
		benchkit.DigestMaintenance(true, digestResident))
	if err != nil {
		return err
	}
	dgReb, err := runBench("DigestMaintenance/rebuild", "200000x",
		benchkit.DigestMaintenance(false, digestResident))
	if err != nil {
		return err
	}
	dgSync, err := runBench("DigestSync/churn16", "20000x",
		benchkit.DigestSync(digestResident, 16))
	if err != nil {
		return err
	}
	results = append(results, dgInc, dgReb, dgSync)

	// Disk tier: the demote and promote paths (real checksummed blob I/O
	// in a temp dir), then the memory-hit parity pair — the same warm Get
	// direct vs through the TieredStore pass-through.
	if err := add("TierDemote", "5000x", benchkit.TierDemote()); err != nil {
		return err
	}
	if err := add("TierPromote", "5000x", benchkit.TierPromote()); err != nil {
		return err
	}
	memHit, err := runBench("MemoryHit", "500000x", benchkit.MemoryHit(false))
	if err != nil {
		return err
	}
	tierHit, err := runBench("MemoryHitTiered", "500000x", benchkit.MemoryHit(true))
	if err != nil {
		return err
	}
	results = append(results, memHit, tierHit)

	// The node benchmarks ride live sockets, so a single run is at the
	// mercy of whatever else the host schedules. Interleave the off/on
	// runs and keep each side's cheapest repetition: run-order effects
	// cancel, and the minimum is the repetition with the least
	// interference.
	nodeTime := fmt.Sprintf("%dx", *nodeIters)
	var base, tel, par benchResult
	for i := 0; i < *nodeReps; i++ {
		rb, err := runBench("NodeRequest", nodeTime, benchkit.NodeRequest(false))
		if err != nil {
			return err
		}
		rt, err := runBench("NodeRequestTelemetry", nodeTime, benchkit.NodeRequest(true))
		if err != nil {
			return err
		}
		rp, err := runBench("NodeRequestParallel", nodeTime, benchkit.NodeRequestParallel(0, 8))
		if err != nil {
			return err
		}
		if i == 0 || cost(rb) < cost(base) {
			base = rb
		}
		if i == 0 || cost(rt) < cost(tel) {
			tel = rt
		}
		// The parallel figure is throughput, so compare wall clock: CPU
		// per op necessarily rises with goroutine switching even as wall
		// clock falls.
		if i == 0 || rp.NsPerOp < par.NsPerOp {
			par = rp
		}
	}
	results = append(results, base, tel, par)

	a := artifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TraceScale:  benchkit.Scale,
		Benchmarks:  results,
	}
	a.NodeReps = *nodeReps
	a.TraceSampling = obs.DefaultTraceSampling
	a.OverheadBasis = "ns_per_op"
	if base.CPUNsPerOp > 0 && tel.CPUNsPerOp > 0 {
		a.OverheadBasis = "cpu_ns_per_op"
	}
	if c := cost(base); c > 0 {
		a.TelemetryOverheadPct = (cost(tel) - c) / c * 100
		fmt.Printf("telemetry overhead: %+.2f%% of %s (budget <5%%)\n",
			a.TelemetryOverheadPct, a.OverheadBasis)
	}
	if par.NsPerOp > 0 {
		a.ParallelSpeedup = float64(base.NsPerOp) / float64(par.NsPerOp)
		fmt.Printf("parallel speedup: %.2fx at GOMAXPROCS=%d (target >=2x needs >=4 cores)\n",
			a.ParallelSpeedup, a.GOMAXPROCS)
	}
	if dgInc.NsPerOp > 0 {
		a.DigestIncrementalSpeedup = float64(dgReb.NsPerOp) / float64(dgInc.NsPerOp)
		fmt.Printf("digest maintenance: incremental %.2fx cheaper than delayed rebuilds per mutation\n",
			a.DigestIncrementalSpeedup)
	}
	a.DigestDeltaFullByteRatio = dgSync.DeltaFullByteRatio
	fmt.Printf("digest sync: delta transfers cost %.1f%% of full-filter bytes (budget <10%%)\n",
		a.DigestDeltaFullByteRatio*100)
	if *checkDigest && a.DigestDeltaFullByteRatio >= 0.10 {
		return fmt.Errorf("digest delta regression: delta bytes are %.1f%% of full transfers (budget <10%%)",
			a.DigestDeltaFullByteRatio*100)
	}
	// The smoke check guards against the concurrent path costing
	// throughput outright: parallel must not be meaningfully slower than
	// single-threaded on any host. The 2x multi-core target is asserted
	// only where the cores exist to reach it.
	a.TierHitBytesDelta = tierHit.BytesPerOp - memHit.BytesPerOp
	a.TierHitAllocsDelta = tierHit.AllocsPerOp - memHit.AllocsPerOp
	fmt.Printf("tier pass-through: %+d bytes/op, %+d allocs/op over the bare memory hit (budget: 0)\n",
		a.TierHitBytesDelta, a.TierHitAllocsDelta)
	if *checkTier && (a.TierHitBytesDelta != 0 || a.TierHitAllocsDelta != 0) {
		return fmt.Errorf("tier hot-path regression: pass-through memory hit costs %+d bytes/op, %+d allocs/op over the bare store (budget: 0)",
			a.TierHitBytesDelta, a.TierHitAllocsDelta)
	}
	if *checkParallel {
		if a.ParallelSpeedup < 0.75 {
			return fmt.Errorf("parallel regression: speedup %.2fx < 0.75x single-threaded", a.ParallelSpeedup)
		}
		if a.GOMAXPROCS >= 4 && a.ParallelSpeedup < 2 {
			return fmt.Errorf("parallel speedup %.2fx < 2x at GOMAXPROCS=%d", a.ParallelSpeedup, a.GOMAXPROCS)
		}
	}

	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func main() {
	// testing.Init registers the test.* flags so testing.Benchmark can
	// run outside a test binary; test.benchtime is set per benchmark.
	testing.Init()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
