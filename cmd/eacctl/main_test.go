package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/metrics"
	"eacache/internal/netnode"
	"eacache/internal/obs"
	"eacache/internal/proxy"
	"eacache/internal/resolve"
)

func TestParseMetrics(t *testing.T) {
	body := `# HELP eac_requests_total requests
# TYPE eac_requests_total counter
eac_requests_total{outcome="local-hit"} 12
eac_requests_total{outcome="remote-hit"} 3
eac_placement_decisions_total{decision="accept",role="requester"} 7
eac_cache_expiration_age_seconds +Inf
eac_cache_documents 42
garbage line without a number trailing
eac_weird{label="va\"lue",other="a,b"} 1.5
`
	samples := parseMetrics([]byte(body))
	byName := map[string][]sample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	if len(byName["eac_requests_total"]) != 2 {
		t.Fatalf("eac_requests_total samples: %+v", byName["eac_requests_total"])
	}
	if byName["eac_requests_total"][0].labels["outcome"] != "local-hit" ||
		byName["eac_requests_total"][0].value != 12 {
		t.Fatalf("first sample wrong: %+v", byName["eac_requests_total"][0])
	}
	pd := byName["eac_placement_decisions_total"][0]
	if pd.labels["decision"] != "accept" || pd.labels["role"] != "requester" || pd.value != 7 {
		t.Fatalf("labelled counter wrong: %+v", pd)
	}
	if len(byName["eac_cache_documents"]) != 1 || byName["eac_cache_documents"][0].value != 42 {
		t.Fatalf("bare gauge wrong: %+v", byName["eac_cache_documents"])
	}
	w := byName["eac_weird"][0]
	if w.labels["label"] != `va"lue` || w.labels["other"] != "a,b" || w.value != 1.5 {
		t.Fatalf("escaped labels wrong: %+v", w)
	}
	if _, ok := byName["garbage"]; ok {
		t.Fatal("malformed line was not skipped")
	}
}

// startGroupMember boots one observed node plus its admin surface, the
// same wiring proxyd does, and returns the node and its admin address.
func startGroupMember(t *testing.T, id, origin string) (*netnode.Node, string) {
	return startGroupMemberLoc(t, id, origin, resolve.LocateICP)
}

func startGroupMemberLoc(t *testing.T, id, origin string, loc resolve.Location) (*netnode.Node, string) {
	t.Helper()
	store, err := cache.New(cache.Config{Capacity: 1 << 20, ExpirationHorizon: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(id, 64)
	cfg := netnode.Config{
		ID:         id,
		ICPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Store:      store,
		Scheme:     core.EA{},
		OriginAddr: origin,
		ICPTimeout: 500 * time.Millisecond,
		Location:   loc,
		HashName:   id,
		Obs:        tel,
	}
	if loc == resolve.LocateDigest {
		// Fast revalidation so digest e2e tests see background delta
		// refreshes within their polling window.
		cfg.Digest = proxy.DigestConfig{Expected: 64, FPRate: 0.01, RebuildEvery: 1}
		cfg.DigestRefresh = 40 * time.Millisecond
	}
	n, err := netnode.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	admin, err := obs.ServeAdmin(obs.AdminConfig{
		Addr:      "127.0.0.1:0",
		Telemetry: tel,
		Info:      map[string]string{"service": "proxyd", "node": id},
		Routes:    n.AdminRoutes(),
		HealthDetail: func() map[string]any {
			return map[string]any{
				"node":             id,
				"membership_epoch": n.Epoch(),
				"ring_fingerprint": fmt.Sprintf("%016x", n.RingFingerprint()),
				"peers_active":     n.ActivePeers(),
				"draining":         n.Draining(),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = admin.Close() })
	return n, admin.Addr()
}

// TestEacctlAgainstLiveGroup is the CLI's acceptance test: boot a real
// two-node group, drive a miss / local-hit / remote-hit mix, then run
// eacctl report (text and JSON) seeded with only ONE admin address and
// check it discovered the other member, aggregated the hit mix, and
// computed the replication factor; finally stitch the remote hit's trace
// across both nodes.
func TestEacctlAgainstLiveGroup(t *testing.T) {
	origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	a, adminA := startGroupMember(t, "node-a", origin.Addr())
	b, adminB := startGroupMember(t, "node-b", origin.Addr())
	a.SetPeers([]netnode.Peer{{ICP: b.ICPAddr(), HTTP: b.HTTPAddr(), Name: "node-b", Admin: adminB}})
	b.SetPeers([]netnode.Peer{{ICP: a.ICPAddr(), HTTP: a.HTTPAddr(), Name: "node-a", Admin: adminA}})

	const url = "http://ctl.example.edu/doc"
	if res, err := a.Request(url, 1024); err != nil || res.Outcome != metrics.Miss {
		t.Fatalf("miss: %+v %v", res, err)
	}
	if res, err := a.Request(url, 1024); err != nil || res.Outcome != metrics.LocalHit {
		t.Fatalf("local hit: %+v %v", res, err)
	}
	res, err := b.Request(url, 1024)
	if err != nil || res.Outcome != metrics.RemoteHit {
		t.Fatalf("remote hit: %+v %v", res, err)
	}

	// Text report, seeded with a's admin only — b must be discovered.
	var out, errb bytes.Buffer
	if err := run([]string{"-addr", adminA, "report"}, &out, &errb); err != nil {
		t.Fatalf("eacctl report: %v\nstderr: %s", err, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"group: 2 members scraped",
		"node-a", "node-b",
		"requests: 3 total",
		"replication: 1 distinct documents, 1.00 copies/doc (max 1)",
		"epochs agree",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}

	// JSON report agrees with the live counters.
	out.Reset()
	if err := run([]string{"-addr", adminA, "-json", "report"}, &out, &errb); err != nil {
		t.Fatalf("eacctl -json report: %v", err)
	}
	var rep GroupReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, out.String())
	}
	if rep.TotalRequests != 3 || rep.ReachableMember != 2 {
		t.Fatalf("aggregate wrong: %+v", rep)
	}
	if rep.HitMix["local-hit"] == 0 || rep.HitMix["remote-hit"] == 0 {
		t.Fatalf("hit mix missing outcomes: %+v", rep.HitMix)
	}
	if rep.Replication != 1.0 || rep.DistinctDocs != 1 || rep.MaxCopies != 1 {
		t.Fatalf("replication wrong: %+v", rep)
	}
	if !rep.EpochAgreement {
		t.Fatalf("epochs should agree: %+v", rep.Nodes)
	}
	// The group decision tally covers both sides of the remote hit.
	if rep.Decisions["requester/reject"] == 0 || rep.Decisions["responder/reject"] == 0 {
		t.Fatalf("decision tallies missing: %+v", rep.Decisions)
	}

	// Stitch the remote hit's trace: the requester record lives in b's
	// ring, the serve record in a's — one eacctl invocation joins them.
	if len(res.TraceID) != 16 {
		t.Fatalf("remote hit carries no trace ID: %+v", res)
	}
	out.Reset()
	if err := run([]string{"-addr", adminA, "trace", res.TraceID}, &out, &errb); err != nil {
		t.Fatalf("eacctl trace: %v\nstderr: %s", err, errb.String())
	}
	timeline := out.String()
	for _, want := range []string{
		"trace " + res.TraceID + ": 2 record(s) across 2 node(s)",
		"url: " + url,
		"[hop 0] node-b",
		"[hop 1] node-a",
		"serve-hit",
	} {
		if !strings.Contains(timeline, want) {
			t.Errorf("timeline missing %q:\n%s", want, timeline)
		}
	}

	// JSON timeline is causally ordered: hop 0 before hop 1, parent link
	// intact.
	out.Reset()
	if err := run([]string{"-addr", adminA, "-json", "trace", res.TraceID}, &out, &errb); err != nil {
		t.Fatalf("eacctl -json trace: %v", err)
	}
	var tl Timeline
	if err := json.Unmarshal(out.Bytes(), &tl); err != nil {
		t.Fatalf("timeline JSON: %v\n%s", err, out.String())
	}
	if len(tl.Records) != 2 {
		t.Fatalf("timeline holds %d records, want 2", len(tl.Records))
	}
	if tl.Records[0].Hop != 0 || tl.Records[1].Hop != 1 {
		t.Fatalf("timeline out of order: hops %d,%d", tl.Records[0].Hop, tl.Records[1].Hop)
	}
	if tl.Records[1].ParentID != tl.Records[0].ID {
		t.Fatalf("parent link broken: %q vs %q", tl.Records[1].ParentID, tl.Records[0].ID)
	}
}

// TestEacctlTierReport boots a member whose memory tier overflows into a
// blob disk tier and checks that eacctl surfaces the eac_tier_* gauges:
// a tier table in the text report and a populated tier view in JSON,
// while the untiered render path stays clean for memory-only members.
func TestEacctlTierReport(t *testing.T) {
	origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	store, err := cache.New(cache.Config{Capacity: 4000, ExpirationHorizon: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New("tier-a", 64)
	n, err := netnode.New(netnode.Config{
		ID:           "tier-a",
		ICPAddr:      "127.0.0.1:0",
		HTTPAddr:     "127.0.0.1:0",
		Store:        store,
		Scheme:       core.EA{},
		OriginAddr:   origin.Addr(),
		ICPTimeout:   500 * time.Millisecond,
		Obs:          tel,
		DiskDir:      t.TempDir(),
		DiskCapacity: 1 << 20,
		DiskDemote:   "always",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	admin, err := obs.ServeAdmin(obs.AdminConfig{
		Addr:      "127.0.0.1:0",
		Telemetry: tel,
		Info:      map[string]string{"service": "proxyd", "node": "tier-a"},
		Routes:    n.AdminRoutes(),
		HealthDetail: func() map[string]any {
			return map[string]any{"node": "tier-a"}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = admin.Close() }()

	// Overflow the 4000-byte memory tier so victims demote, then re-read
	// the first document so a promotion registers too.
	for i := 0; i < 8; i++ {
		if _, err := n.Request(fmt.Sprintf("http://tierctl.example.edu/doc%d", i), 1000); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Request("http://tierctl.example.edu/doc0", 1000); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if err := run([]string{"-addr", admin.Addr(), "-json", "report"}, &out, &errb); err != nil {
		t.Fatalf("eacctl -json report: %v\nstderr: %s", err, errb.String())
	}
	var rep GroupReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, out.String())
	}
	if len(rep.Nodes) != 1 || rep.Nodes[0].Tier == nil {
		t.Fatalf("tiered member carries no tier view: %+v", rep.Nodes)
	}
	tv := rep.Nodes[0].Tier
	if tv.DiskCapacity != 1<<20 || tv.DiskDocs == 0 || tv.DiskBytes == 0 {
		t.Fatalf("disk occupancy not scraped: %+v", tv)
	}
	if tv.Demotions == 0 || tv.Promotions == 0 {
		t.Fatalf("tier counters not scraped: %+v", tv)
	}
	if tv.ChecksumFailures != 0 {
		t.Fatalf("checksum failures scraped as %v, want 0", tv.ChecksumFailures)
	}

	out.Reset()
	if err := run([]string{"-addr", admin.Addr(), "report"}, &out, &errb); err != nil {
		t.Fatalf("eacctl report: %v\nstderr: %s", err, errb.String())
	}
	text := out.String()
	for _, want := range []string{"DISK-DOCS", "DISK-CAP", "CKSUM-FAIL", "tier-a"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestEacctlFlagAndCommandErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"report"}, "-addr is required"},
		{[]string{"-addr", "127.0.0.1:1", "frobnicate"}, "unknown command"},
		{[]string{"-addr", "127.0.0.1:1", "trace"}, "trace <trace-id>"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) err = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// TestDigestGroupDeltaSteadyState is the CI digest-smoke gate: boot a
// three-node digest-located group, drive enough traffic that every
// member fetches its peers' summaries, then let the background
// revalidators run. After the first full-transfer handshakes, every
// refresh must ride the change-log as a compact delta, so the
// group-wide delta count eacctl aggregates from /admin/digests must
// overtake the full count — and the counter-saturation escape hatch
// must never fire.
func TestDigestGroupDeltaSteadyState(t *testing.T) {
	origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	const groupSize = 3
	var (
		nodes  []*netnode.Node
		admins []string
	)
	for i := 0; i < groupSize; i++ {
		n, admin := startGroupMemberLoc(t, fmt.Sprintf("dg-%d", i), origin.Addr(), resolve.LocateDigest)
		nodes = append(nodes, n)
		admins = append(admins, admin)
	}
	for i, n := range nodes {
		var peers []netnode.Peer
		for j, other := range nodes {
			if i == j {
				continue
			}
			peers = append(peers, netnode.Peer{
				ICP: other.ICPAddr(), HTTP: other.HTTPAddr(),
				Name: other.ID(), Admin: admins[j],
			})
		}
		n.SetPeers(peers)
	}

	// Each node caches its own slice of documents, then every node
	// requests a document homed elsewhere so all six peer-digest
	// replicas get populated (the first contact is a full transfer).
	for i, n := range nodes {
		for d := 0; d < 8; d++ {
			url := fmt.Sprintf("http://digest.example.edu/n%d/doc%d", i, d)
			if _, err := n.Request(url, 1024); err != nil {
				t.Fatalf("seed %s via %s: %v", url, n.ID(), err)
			}
		}
	}
	for i, n := range nodes {
		url := fmt.Sprintf("http://digest.example.edu/n%d/doc0", (i+1)%groupSize)
		if _, err := n.Request(url, 1024); err != nil {
			t.Fatalf("cross request via %s: %v", n.ID(), err)
		}
	}

	// Poll the aggregated report until background revalidation has
	// served more deltas than the handshake served fulls.
	report := func() *GroupReport {
		t.Helper()
		var out, errb bytes.Buffer
		if err := run([]string{"-addr", admins[0], "-json", "report"}, &out, &errb); err != nil {
			t.Fatalf("eacctl -json report: %v\nstderr: %s", err, errb.String())
		}
		var rep GroupReport
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatalf("report JSON: %v\n%s", err, out.String())
		}
		return &rep
	}
	deadline := time.Now().Add(5 * time.Second)
	var rep *GroupReport
	for {
		rep = report()
		if rep.DigestEnabled && rep.DigestDeltasServed > rep.DigestFullsServed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deltas never overtook fulls: %d deltas vs %d fulls",
				rep.DigestDeltasServed, rep.DigestFullsServed)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rep.ReachableMember != groupSize {
		t.Fatalf("scraped %d members, want %d", rep.ReachableMember, groupSize)
	}
	if rep.DigestRebuildEscapes != 0 {
		t.Fatalf("digest rebuild escapes = %d, want 0", rep.DigestRebuildEscapes)
	}
	if rep.DigestFetchFailures != 0 {
		t.Fatalf("digest fetch failures = %d, want 0", rep.DigestFetchFailures)
	}
	// Per-node views carry generations and peer freshness.
	for _, nr := range rep.Nodes {
		if nr.Digest == nil || !nr.Digest.Enabled {
			t.Fatalf("node %s has no digest view", nr.Node)
		}
		if nr.Digest.OwnGeneration == 0 {
			t.Fatalf("node %s never advanced its digest generation", nr.Node)
		}
	}

	// The text report renders the digest summary and per-peer table.
	var out, errb bytes.Buffer
	if err := run([]string{"-addr", admins[0], "report"}, &out, &errb); err != nil {
		t.Fatalf("eacctl report: %v\nstderr: %s", err, errb.String())
	}
	text := out.String()
	for _, want := range []string{"digest sync:", "PEER-GEN", "dg-0", "dg-1", "dg-2"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

// TestHashGroupReplicationBound is the CI observability gate: under
// consistent-hash location every document has exactly one home node and
// the EA placement rules never spread extra copies, so the group-wide
// replication factor eacctl computes from the /admin/resident lists must
// stay at (or below) 1.0 no matter how the load is spread.
func TestHashGroupReplicationBound(t *testing.T) {
	origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	const groupSize = 3
	var (
		nodes  []*netnode.Node
		admins []string
	)
	for i := 0; i < groupSize; i++ {
		n, admin := startGroupMemberLoc(t, fmt.Sprintf("hash-%d", i), origin.Addr(), resolve.LocateHash)
		nodes = append(nodes, n)
		admins = append(admins, admin)
	}
	for i, n := range nodes {
		var peers []netnode.Peer
		for j, other := range nodes {
			if i == j {
				continue
			}
			peers = append(peers, netnode.Peer{
				ICP: other.ICPAddr(), HTTP: other.HTTPAddr(),
				Name: other.ID(), Admin: admins[j],
			})
		}
		n.SetPeers(peers)
	}

	// Every node requests every document: each URL is fetched through its
	// hash home once and then served remotely to the other members — the
	// worst case for accidental copy spread.
	const docs = 40
	for round := 0; round < 2; round++ {
		for i := 0; i < docs; i++ {
			url := fmt.Sprintf("http://hash.example.edu/doc%03d", i)
			for _, n := range nodes {
				if _, err := n.Request(url, 1024); err != nil {
					t.Fatalf("request %s via %s: %v", url, n.ID(), err)
				}
			}
		}
	}

	var out, errb bytes.Buffer
	if err := run([]string{"-addr", admins[0], "-json", "report"}, &out, &errb); err != nil {
		t.Fatalf("eacctl -json report: %v\nstderr: %s", err, errb.String())
	}
	var rep GroupReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, out.String())
	}
	if rep.ReachableMember != groupSize {
		t.Fatalf("scraped %d members, want %d", rep.ReachableMember, groupSize)
	}
	if rep.DistinctDocs != docs {
		t.Fatalf("distinct documents = %d, want %d", rep.DistinctDocs, docs)
	}
	if rep.Replication > 1.0 {
		t.Fatalf("replication factor %.3f exceeds 1.0 under hash location (max copies %d)",
			rep.Replication, rep.MaxCopies)
	}
	if !rep.RingAgreement {
		t.Fatalf("ring fingerprints disagree across the group: %+v", rep.Nodes)
	}
	// Hash mode trades local hits for zero duplication: the remote-hit
	// share must dominate on the second round.
	if rep.HitMix["remote-hit"] == 0 {
		t.Fatalf("no remote hits recorded: %+v", rep.HitMix)
	}
}
