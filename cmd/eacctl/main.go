// Command eacctl introspects a running cooperative cache group from any
// one member's admin address. It walks the membership table to find every
// node's admin surface, scrapes /metrics, /healthz, /admin/peers and
// /admin/resident from each, and renders a group-wide report: hit mix,
// byte hit rate, EA contention spread, placement-decision tallies,
// replication factor, breaker and membership state. The trace subcommand
// stitches one distributed trace — every node's spans for a single
// group-wide trace ID — into a causally ordered timeline.
//
// Usage:
//
//	eacctl -addr 127.0.0.1:9081 report
//	eacctl -addr 127.0.0.1:9081 -json report
//	eacctl -addr 127.0.0.1:9081 trace 7d60c84a96a4f2e1
//
// eacctl talks only to admin surfaces (obs.ServeAdmin); it never touches
// the ICP or fetch ports, so it is safe to run against a loaded group.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "eacctl:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("eacctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "", "admin address of any group member (host:port); the rest are discovered")
		jsonOut = fs.Bool("json", false, "emit the report as JSON instead of text")
		timeout = fs.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: eacctl -addr <admin-addr> [-json] [report | trace <trace-id>]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required (any member's admin address)")
	}
	cl := &client{hc: &http.Client{Timeout: *timeout}}

	cmd, rest := "report", fs.Args()
	if len(rest) > 0 {
		cmd, rest = rest[0], rest[1:]
	}
	switch cmd {
	case "report":
		rep, err := buildReport(cl, *addr, stderr)
		if err != nil {
			return err
		}
		if *jsonOut {
			return writeJSON(stdout, rep)
		}
		renderReport(stdout, rep)
		return nil
	case "trace":
		if len(rest) != 1 {
			return fmt.Errorf("usage: eacctl -addr <admin-addr> trace <trace-id>")
		}
		tl, err := buildTimeline(cl, *addr, rest[0], stderr)
		if err != nil {
			return err
		}
		if *jsonOut {
			return writeJSON(stdout, tl)
		}
		renderTimeline(stdout, tl)
		return nil
	default:
		return fmt.Errorf("unknown command %q (want report or trace)", cmd)
	}
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// client is the thin admin-surface HTTP client. All decoding targets are
// local mirror structs, so eacctl works against any node that speaks the
// admin JSON — it shares no Go types with the server.
type client struct{ hc *http.Client }

func (c *client) getJSON(addr, path string, v any) error {
	resp, err := c.hc.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *client) getBody(addr, path string) ([]byte, error) {
	resp, err := c.hc.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s%s: %s", addr, path, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// membershipView mirrors the GET /admin/peers body.
type membershipView struct {
	Self     string      `json:"self"`
	Epoch    int64       `json:"epoch"`
	Draining bool        `json:"draining"`
	Members  []memberRow `json:"members"`
}

type memberRow struct {
	Name    string `json:"name"`
	HTTP    string `json:"http"`
	Admin   string `json:"admin"`
	State   string `json:"state"`
	Ejected bool   `json:"ejected"`
}

// discover walks from the seed member to every admin address the group
// knows: the seed itself plus each member row that carries one. Members
// without a published admin address are reported and skipped — their
// traffic still shows in their own scrape if reached through another
// seed, but this walk cannot reach them.
func discover(cl *client, seed string, stderr io.Writer) ([]string, error) {
	var view membershipView
	if err := cl.getJSON(seed, "/admin/peers", &view); err != nil {
		return nil, fmt.Errorf("discover members via %s: %w", seed, err)
	}
	addrs := []string{seed}
	seen := map[string]bool{seed: true}
	for _, m := range view.Members {
		if m.Admin == "" {
			fmt.Fprintf(stderr, "eacctl: member %s (%s) publishes no admin address; skipping\n", m.Name, m.HTTP)
			continue
		}
		if !seen[m.Admin] {
			seen[m.Admin] = true
			addrs = append(addrs, m.Admin)
		}
	}
	return addrs, nil
}

// healthDetail mirrors the JSON /healthz body (older nodes answer plain
// "ok"; every field stays zero then).
type healthDetail struct {
	Status          string `json:"status"`
	Node            string `json:"node"`
	MembershipEpoch int64  `json:"membership_epoch"`
	RingFingerprint string `json:"ring_fingerprint"`
	PeersActive     int    `json:"peers_active"`
	Draining        bool   `json:"draining"`
}

// residentView mirrors GET /admin/resident.
type residentView struct {
	Node      string   `json:"node"`
	Documents int      `json:"documents"`
	URLs      []string `json:"urls"`
}

// digestView mirrors GET /admin/digests (netnode.DigestReport).
type digestView struct {
	Enabled        bool                      `json:"enabled"`
	OwnGeneration  uint64                    `json:"own_generation"`
	OwnLen         int                       `json:"own_len"`
	Window         int                       `json:"window"`
	PinnedCounters int                       `json:"pinned_counters"`
	RebuildEscapes int64                     `json:"rebuild_escapes"`
	Stats          digestStatsView           `json:"stats"`
	Peers          map[string]digestPeerView `json:"peers"`
}

type digestStatsView struct {
	DeltasServed     int64 `json:"deltas_served"`
	FullsServed      int64 `json:"fulls_served"`
	DeltasApplied    int64 `json:"deltas_applied"`
	FullsApplied     int64 `json:"fulls_applied"`
	DeltaBytesServed int64 `json:"delta_bytes_served"`
	FullBytesServed  int64 `json:"full_bytes_served"`
	RebuildEscapes   int64 `json:"rebuild_escapes"`
	StaleServed      int64 `json:"stale_served"`
	Fetches          int64 `json:"fetches"`
	FetchFailures    int64 `json:"fetch_failures"`
}

type digestPeerView struct {
	Generation    uint64 `json:"generation"`
	AgeMS         int64  `json:"age_ms"`
	Len           int    `json:"len"`
	Refreshing    bool   `json:"refreshing"`
	DeltasApplied int64  `json:"deltas_applied"`
	FullsApplied  int64  `json:"fulls_applied"`
}

// NodeReport is one member's scrape, reduced to the numbers the group
// report aggregates.
type NodeReport struct {
	Admin           string             `json:"admin"`
	Node            string             `json:"node"`
	Err             string             `json:"err,omitempty"`
	Epoch           int64              `json:"epoch"`
	RingFingerprint string             `json:"ring_fingerprint,omitempty"`
	PeersActive     int                `json:"peers_active"`
	Draining        bool               `json:"draining"`
	Requests        map[string]float64 `json:"requests"`       // outcome -> count
	Bytes           map[string]float64 `json:"bytes"`          // outcome -> body bytes
	Decisions       map[string]float64 `json:"decisions"`      // "role/decision" -> count
	EAAgeSeconds    float64            `json:"ea_age_seconds"` // -1 = no contention (+Inf gauge)
	Documents       float64            `json:"documents"`      // resident docs (gauge)
	CacheBytes      float64            `json:"cache_bytes"`    // resident bytes (gauge)
	Evictions       float64            `json:"evictions"`      // policy evictions
	Breakers        []memberRow        `json:"breakers,omitempty"`
	Digest          *digestView        `json:"digest,omitempty"` // nil when the member predates /admin/digests
	Tier            *tierView          `json:"tier,omitempty"`   // nil when the member has no disk tier
	Resident        []string           `json:"-"`                // URLs, for the replication factor
}

// tierView is one member's eac_tier_* scrape: per-tier occupancy plus the
// tier controller's monotonic counters. Attached to the report only when
// the member actually runs a disk tier (capacity > 0) — untiered nodes
// publish the same gauges as zeros.
type tierView struct {
	MemDocs          float64 `json:"mem_documents"`
	MemBytes         float64 `json:"mem_bytes"`
	MemCapacity      float64 `json:"mem_capacity"`
	DiskDocs         float64 `json:"disk_documents"`
	DiskBytes        float64 `json:"disk_bytes"`
	DiskCapacity     float64 `json:"disk_capacity"`
	Demotions        float64 `json:"demotions"`
	DemotionDrops    float64 `json:"demotion_drops"`
	Promotions       float64 `json:"promotions"`
	DiskEvictions    float64 `json:"disk_evictions"`
	ChecksumFailures float64 `json:"checksum_failures"`
}

// GroupReport is the aggregate over every reachable member.
type GroupReport struct {
	Nodes []NodeReport `json:"nodes"`

	TotalRequests   float64            `json:"total_requests"`
	HitMix          map[string]float64 `json:"hit_mix"` // outcome -> fraction of requests
	ByteHitRate     float64            `json:"byte_hit_rate"`
	Decisions       map[string]float64 `json:"decisions"` // "role/decision" -> group total
	DistinctDocs    int                `json:"distinct_documents"`
	TotalCopies     int                `json:"total_copies"`
	Replication     float64            `json:"replication_factor"` // copies per distinct document
	MaxCopies       int                `json:"max_copies"`
	EpochAgreement  bool               `json:"epoch_agreement"`
	RingAgreement   bool               `json:"ring_agreement"`
	ScrapeFailures  int                `json:"scrape_failures"`
	ReachableMember int                `json:"reachable_members"`

	// Digest-location health, summed over members that locate via
	// digests (all zero in ICP and hash groups).
	DigestEnabled        bool  `json:"digest_enabled"`
	DigestDeltasServed   int64 `json:"digest_deltas_served"`
	DigestFullsServed    int64 `json:"digest_fulls_served"`
	DigestDeltaBytes     int64 `json:"digest_delta_bytes_served"`
	DigestFullBytes      int64 `json:"digest_full_bytes_served"`
	DigestRebuildEscapes int64 `json:"digest_rebuild_escapes"`
	DigestStaleServed    int64 `json:"digest_stale_served"`
	DigestFetchFailures  int64 `json:"digest_fetch_failures"`
}

func buildReport(cl *client, seed string, stderr io.Writer) (*GroupReport, error) {
	addrs, err := discover(cl, seed, stderr)
	if err != nil {
		return nil, err
	}
	rep := &GroupReport{
		HitMix:    map[string]float64{},
		Decisions: map[string]float64{},
	}
	for _, a := range addrs {
		nr := scrapeNode(cl, a)
		rep.Nodes = append(rep.Nodes, nr)
		if nr.Err != "" {
			rep.ScrapeFailures++
			continue
		}
		rep.ReachableMember++
		for oc, v := range nr.Requests {
			rep.TotalRequests += v
			rep.HitMix[oc] += v
		}
		for k, v := range nr.Decisions {
			rep.Decisions[k] += v
		}
		if d := nr.Digest; d != nil && d.Enabled {
			rep.DigestEnabled = true
			rep.DigestDeltasServed += d.Stats.DeltasServed
			rep.DigestFullsServed += d.Stats.FullsServed
			rep.DigestDeltaBytes += d.Stats.DeltaBytesServed
			rep.DigestFullBytes += d.Stats.FullBytesServed
			rep.DigestRebuildEscapes += d.Stats.RebuildEscapes
			rep.DigestStaleServed += d.Stats.StaleServed
			rep.DigestFetchFailures += d.Stats.FetchFailures
		}
	}
	if rep.ReachableMember == 0 {
		return nil, fmt.Errorf("no member of the group could be scraped")
	}
	if rep.TotalRequests > 0 {
		for oc := range rep.HitMix {
			rep.HitMix[oc] /= rep.TotalRequests
		}
	}
	// Byte hit rate: bytes served without touching the origin over all
	// bytes served. The miss bucket's bytes came from the origin (or the
	// hierarchy above the group); local and remote hits were absorbed.
	var hitBytes, allBytes float64
	for _, nr := range rep.Nodes {
		for oc, v := range nr.Bytes {
			allBytes += v
			if oc == "local-hit" || oc == "remote-hit" {
				hitBytes += v
			}
		}
	}
	if allBytes > 0 {
		rep.ByteHitRate = hitBytes / allBytes
	}
	// Replication factor from the resident lists: how many members hold
	// each distinct document right now.
	copies := map[string]int{}
	for _, nr := range rep.Nodes {
		for _, u := range nr.Resident {
			copies[u]++
		}
	}
	rep.DistinctDocs = len(copies)
	for _, c := range copies {
		rep.TotalCopies += c
		if c > rep.MaxCopies {
			rep.MaxCopies = c
		}
	}
	if rep.DistinctDocs > 0 {
		rep.Replication = float64(rep.TotalCopies) / float64(rep.DistinctDocs)
	}
	rep.EpochAgreement, rep.RingAgreement = agreement(rep.Nodes)
	return rep, nil
}

// agreement reports whether every reachable member publishes the same
// membership epoch, and the same ring fingerprint (nodes without a ring
// — ICP or digest location — all publish the zero fingerprint, which
// agrees trivially).
func agreement(nodes []NodeReport) (epochOK, ringOK bool) {
	epochOK, ringOK = true, true
	first := true
	var epoch int64
	var fp string
	for _, nr := range nodes {
		if nr.Err != "" {
			continue
		}
		if first {
			epoch, fp, first = nr.Epoch, nr.RingFingerprint, false
			continue
		}
		if nr.Epoch != epoch {
			epochOK = false
		}
		if nr.RingFingerprint != fp {
			ringOK = false
		}
	}
	return epochOK, ringOK
}

func scrapeNode(cl *client, addr string) NodeReport {
	nr := NodeReport{
		Admin:        addr,
		Requests:     map[string]float64{},
		Bytes:        map[string]float64{},
		Decisions:    map[string]float64{},
		EAAgeSeconds: -1, // stays -1 when the gauge is absent or +Inf
	}
	var hd healthDetail
	if err := cl.getJSON(addr, "/healthz", &hd); err == nil {
		nr.Node = hd.Node
		nr.Epoch = hd.MembershipEpoch
		nr.PeersActive = hd.PeersActive
		nr.Draining = hd.Draining
		if hd.RingFingerprint != "" && hd.RingFingerprint != strings.Repeat("0", 16) {
			nr.RingFingerprint = hd.RingFingerprint
		}
	}
	body, err := cl.getBody(addr, "/metrics")
	if err != nil {
		nr.Err = err.Error()
		return nr
	}
	samples := parseMetrics(body)
	var tier tierView
	for _, s := range samples {
		switch s.name {
		case "eac_tier_documents":
			if s.labels["tier"] == "disk" {
				tier.DiskDocs = s.value
			} else {
				tier.MemDocs = s.value
			}
		case "eac_tier_bytes":
			if s.labels["tier"] == "disk" {
				tier.DiskBytes = s.value
			} else {
				tier.MemBytes = s.value
			}
		case "eac_tier_capacity_bytes":
			if s.labels["tier"] == "disk" {
				tier.DiskCapacity = s.value
			} else {
				tier.MemCapacity = s.value
			}
		case "eac_tier_demotions":
			tier.Demotions = s.value
		case "eac_tier_demotion_drops":
			tier.DemotionDrops = s.value
		case "eac_tier_promotions":
			tier.Promotions = s.value
		case "eac_tier_disk_evictions":
			tier.DiskEvictions = s.value
		case "eac_tier_checksum_failures":
			tier.ChecksumFailures = s.value
		case "eac_requests_total":
			nr.Requests[s.labels["outcome"]] += s.value
		case "eac_bytes_served_total":
			nr.Bytes[s.labels["outcome"]] += s.value
		case "eac_placement_decisions_total":
			nr.Decisions[s.labels["role"]+"/"+s.labels["decision"]] += s.value
		case "eac_cache_expiration_age_seconds":
			// +Inf is the no-contention sentinel; JSON cannot carry
			// infinities, so it becomes -1 here and "none" in the report.
			if math.IsInf(s.value, 1) {
				nr.EAAgeSeconds = -1
			} else {
				nr.EAAgeSeconds = s.value
			}
		case "eac_cache_documents":
			nr.Documents = s.value
		case "eac_cache_bytes":
			nr.CacheBytes = s.value
		case "eac_cache_evictions":
			nr.Evictions = s.value
		}
	}
	if tier.DiskCapacity > 0 {
		nr.Tier = &tier
	}
	var peers membershipView
	if err := cl.getJSON(addr, "/admin/peers", &peers); err == nil {
		nr.Breakers = peers.Members
		if nr.Node == "" {
			nr.Node = peers.Self
		}
	}
	var dg digestView
	if err := cl.getJSON(addr, "/admin/digests", &dg); err == nil {
		nr.Digest = &dg
	}
	var res residentView
	if err := cl.getJSON(addr, "/admin/resident", &res); err == nil {
		nr.Resident = res.URLs
		if nr.Node == "" {
			nr.Node = res.Node
		}
	}
	if nr.Node == "" {
		nr.Node = addr
	}
	return nr
}

// sample is one parsed Prometheus text-exposition series point.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseMetrics reads the Prometheus 0.0.4 text format the admin surface
// serves: HELP/TYPE comments skipped, one "name{labels} value" or
// "name value" sample per line. Malformed lines are skipped — a report
// built from most of a scrape beats no report.
func parseMetrics(body []byte) []sample {
	var out []sample
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		series := line[:sp]
		s := sample{value: val, labels: map[string]string{}}
		if br := strings.IndexByte(series, '{'); br >= 0 {
			if !strings.HasSuffix(series, "}") {
				continue
			}
			s.name = series[:br]
			parseLabels(series[br+1:len(series)-1], s.labels)
		} else {
			s.name = series
		}
		out = append(out, s)
	}
	return out
}

// parseLabels decodes `k1="v1",k2="v2"` with \" \\ \n escapes.
func parseLabels(s string, into map[string]string) {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		into[key] = val.String()
		s = rest[i:]
		s = strings.TrimPrefix(s, `"`)
		s = strings.TrimPrefix(s, ",")
	}
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func renderReport(w io.Writer, rep *GroupReport) {
	fmt.Fprintf(w, "group: %d members scraped", rep.ReachableMember)
	if rep.ScrapeFailures > 0 {
		fmt.Fprintf(w, " (%d unreachable)", rep.ScrapeFailures)
	}
	fmt.Fprintln(w)
	agree := func(ok bool) string {
		if ok {
			return "agree"
		}
		return "DISAGREE"
	}
	fmt.Fprintf(w, "topology: epochs %s, ring fingerprints %s\n",
		agree(rep.EpochAgreement), agree(rep.RingAgreement))
	fmt.Fprintf(w, "requests: %.0f total — local %s, remote %s, miss %s, error %s\n",
		rep.TotalRequests, pct(rep.HitMix["local-hit"]), pct(rep.HitMix["remote-hit"]),
		pct(rep.HitMix["miss"]), pct(rep.HitMix["error"]))
	fmt.Fprintf(w, "byte hit rate: %s\n", pct(rep.ByteHitRate))
	if rep.DistinctDocs > 0 {
		fmt.Fprintf(w, "replication: %d distinct documents, %.2f copies/doc (max %d)\n",
			rep.DistinctDocs, rep.Replication, rep.MaxCopies)
	}
	if len(rep.Decisions) > 0 {
		keys := make([]string, 0, len(rep.Decisions))
		for k := range rep.Decisions {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s %.0f", k, rep.Decisions[k]))
		}
		fmt.Fprintf(w, "placement decisions: %s\n", strings.Join(parts, ", "))
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tADMIN\tREQS\tLOCAL\tREMOTE\tMISS\tDOCS\tBYTES\tEA-AGE\tEPOCH\tPEERS\tSTATE")
	for _, nr := range rep.Nodes {
		if nr.Err != "" {
			fmt.Fprintf(tw, "%s\t%s\tunreachable: %s\n", nr.Node, nr.Admin, nr.Err)
			continue
		}
		var total float64
		for _, v := range nr.Requests {
			total += v
		}
		mix := func(oc string) string {
			if total == 0 {
				return "-"
			}
			return pct(nr.Requests[oc] / total)
		}
		age := "none"
		if nr.EAAgeSeconds >= 0 {
			age = fmt.Sprintf("%.1fs", nr.EAAgeSeconds)
		}
		state := "serving"
		if nr.Draining {
			state = "draining"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%s\t%s\t%s\t%.0f\t%.0f\t%s\t%d\t%d\t%s\n",
			nr.Node, nr.Admin, total, mix("local-hit"), mix("remote-hit"), mix("miss"),
			nr.Documents, nr.CacheBytes, age, nr.Epoch, nr.PeersActive, state)
	}
	tw.Flush()

	tiered := false
	for _, nr := range rep.Nodes {
		if nr.Tier != nil {
			tiered = true
			break
		}
	}
	if tiered {
		ttw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(ttw, "NODE\tMEM-DOCS\tDISK-DOCS\tDISK-BYTES\tDISK-CAP\tDEMOTE\tDROP\tPROMOTE\tDISK-EVICT\tCKSUM-FAIL")
		for _, nr := range rep.Nodes {
			tv := nr.Tier
			if tv == nil {
				continue
			}
			fmt.Fprintf(ttw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
				nr.Node, tv.MemDocs, tv.DiskDocs, tv.DiskBytes, tv.DiskCapacity,
				tv.Demotions, tv.DemotionDrops, tv.Promotions, tv.DiskEvictions, tv.ChecksumFailures)
		}
		ttw.Flush()
	}

	if rep.DigestEnabled {
		transfers := rep.DigestDeltasServed + rep.DigestFullsServed
		ratio := "-"
		if transfers > 0 {
			ratio = pct(float64(rep.DigestDeltasServed) / float64(transfers))
		}
		fmt.Fprintf(w, "digest sync: %d deltas / %d fulls served (%s delta), %d delta bytes vs %d full bytes\n",
			rep.DigestDeltasServed, rep.DigestFullsServed, ratio,
			rep.DigestDeltaBytes, rep.DigestFullBytes)
		if rep.DigestRebuildEscapes > 0 || rep.DigestStaleServed > 0 || rep.DigestFetchFailures > 0 {
			fmt.Fprintf(w, "digest health: %d rebuild escapes, %d stale serves, %d fetch failures\n",
				rep.DigestRebuildEscapes, rep.DigestStaleServed, rep.DigestFetchFailures)
		}
		dtw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(dtw, "NODE\tGEN\tPEER\tPEER-GEN\tAGE\tDELTAS\tFULLS\tSTATE")
		for _, nr := range rep.Nodes {
			d := nr.Digest
			if d == nil || !d.Enabled {
				continue
			}
			if len(d.Peers) == 0 {
				fmt.Fprintf(dtw, "%s\t%d\t-\t-\t-\t-\t-\t-\n", nr.Node, d.OwnGeneration)
				continue
			}
			peers := make([]string, 0, len(d.Peers))
			for p := range d.Peers {
				peers = append(peers, p)
			}
			sort.Strings(peers)
			for _, p := range peers {
				pv := d.Peers[p]
				age := "never"
				if pv.AgeMS >= 0 {
					age = fmt.Sprintf("%.1fs", float64(pv.AgeMS)/1000)
				}
				state := "fresh"
				if pv.Refreshing {
					state = "refreshing"
				}
				fmt.Fprintf(dtw, "%s\t%d\t%s\t%d\t%s\t%d\t%d\t%s\n",
					nr.Node, d.OwnGeneration, p, pv.Generation, age,
					pv.DeltasApplied, pv.FullsApplied, state)
			}
		}
		dtw.Flush()
	}

	// Breaker troubles only; a healthy group prints nothing here.
	for _, nr := range rep.Nodes {
		for _, b := range nr.Breakers {
			if b.State != "healthy" || b.Ejected {
				fmt.Fprintf(w, "breaker: %s sees %s as %s", nr.Node, b.Name, b.State)
				if b.Ejected {
					fmt.Fprint(w, " (ejected)")
				}
				fmt.Fprintln(w)
			}
		}
	}
}

// traceRecord mirrors one /debug/trace entry (obs.Trace JSON).
type traceRecord struct {
	ID             string     `json:"id"`
	TraceID        string     `json:"trace_id"`
	ParentID       string     `json:"parent_id"`
	Hop            int        `json:"hop"`
	Node           string     `json:"node"`
	URL            string     `json:"url"`
	Start          time.Time  `json:"start"`
	Outcome        string     `json:"outcome"`
	SizeBytes      int64      `json:"size_bytes"`
	Responder      string     `json:"responder"`
	RequesterAgeMS int64      `json:"requester_age_ms"`
	ResponderAgeMS int64      `json:"responder_age_ms"`
	Decision       string     `json:"decision"`
	Stored         bool       `json:"stored"`
	Err            string     `json:"err"`
	DurUS          int64      `json:"dur_us"`
	Spans          []spanJSON `json:"spans"`
	AdminAddr      string     `json:"admin_addr"` // which member held the record
}

type spanJSON struct {
	Stage   string            `json:"stage"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Err     string            `json:"err,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Timeline is one stitched distributed trace.
type Timeline struct {
	TraceID string        `json:"trace_id"`
	Records []traceRecord `json:"records"`
}

func buildTimeline(cl *client, seed, traceID string, stderr io.Writer) (*Timeline, error) {
	addrs, err := discover(cl, seed, stderr)
	if err != nil {
		return nil, err
	}
	tl := &Timeline{TraceID: traceID}
	for _, a := range addrs {
		var recs []traceRecord
		if err := cl.getJSON(a, "/debug/trace?trace="+traceID, &recs); err != nil {
			fmt.Fprintf(stderr, "eacctl: scrape %s: %v\n", a, err)
			continue
		}
		for i := range recs {
			recs[i].AdminAddr = a
		}
		tl.Records = append(tl.Records, recs...)
	}
	if len(tl.Records) == 0 {
		return nil, fmt.Errorf("no member holds trace %s (rings are bounded; old traces age out)", traceID)
	}
	// Causal order: forwarding depth first, then wall-clock start. Clocks
	// across nodes are close enough on one group for display; the hop and
	// parent IDs carry the real causality.
	sort.Slice(tl.Records, func(i, j int) bool {
		if tl.Records[i].Hop != tl.Records[j].Hop {
			return tl.Records[i].Hop < tl.Records[j].Hop
		}
		return tl.Records[i].Start.Before(tl.Records[j].Start)
	})
	return tl, nil
}

func renderTimeline(w io.Writer, tl *Timeline) {
	nodes := map[string]bool{}
	for _, r := range tl.Records {
		nodes[r.Node] = true
	}
	fmt.Fprintf(w, "trace %s: %d record(s) across %d node(s)\n", tl.TraceID, len(tl.Records), len(nodes))
	if len(tl.Records) > 0 {
		fmt.Fprintf(w, "url: %s\n", tl.Records[0].URL)
	}
	for _, r := range tl.Records {
		indent := strings.Repeat("  ", r.Hop)
		fmt.Fprintf(w, "%s[hop %d] %s %s — %s in %s", indent, r.Hop, r.Node, r.ID, r.Outcome, usDur(r.DurUS))
		if r.ParentID != "" {
			fmt.Fprintf(w, " (parent %s)", r.ParentID)
		}
		fmt.Fprintln(w)
		if r.Decision != "" {
			fmt.Fprintf(w, "%s    placement: %s (requester age %s, responder age %s)\n",
				indent, r.Decision, msAge(r.RequesterAgeMS), msAge(r.ResponderAgeMS))
		}
		if r.Err != "" {
			fmt.Fprintf(w, "%s    error: %s\n", indent, r.Err)
		}
		for _, sp := range r.Spans {
			fmt.Fprintf(w, "%s    %-14s +%s %s", indent, sp.Stage, usDur(sp.StartUS), usDur(sp.DurUS))
			if len(sp.Attrs) > 0 {
				keys := make([]string, 0, len(sp.Attrs))
				for k := range sp.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, " %s=%s", k, sp.Attrs[k])
				}
			}
			if sp.Err != "" {
				fmt.Fprintf(w, " err=%s", sp.Err)
			}
			fmt.Fprintln(w)
		}
	}
}

func usDur(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).String()
}

func msAge(ms int64) string {
	if ms < 0 {
		return "none"
	}
	return (time.Duration(ms) * time.Millisecond).String()
}
