package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadgenSmoke runs a short unsaturated step against a live 2-node
// group and checks the artifact carries the tail percentiles and the
// saturation figure, with -check proving no shed/error at low load.
func TestLoadgenSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rps", "80", "-duration", "500ms", "-docs", "50",
		"-out", out, "-check",
	}, &buf)
	if err != nil {
		t.Fatalf("loadgen run: %v\n%s", err, buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if art.Nodes != 2 || len(art.Steps) != 1 {
		t.Fatalf("artifact shape: nodes=%d steps=%d", art.Nodes, len(art.Steps))
	}
	if art.P50MS <= 0 || art.P99MS < art.P50MS || art.P999MS < art.P99MS {
		t.Fatalf("percentiles not ordered: p50=%v p99=%v p999=%v", art.P50MS, art.P99MS, art.P999MS)
	}
	if art.SaturationRPS <= 0 {
		t.Fatalf("saturation rps = %v", art.SaturationRPS)
	}
	if st := art.Steps[0]; st.Errors != 0 || st.ShedByNode != 0 {
		t.Fatalf("unsaturated smoke saw errors=%d shed=%d", st.Errors, st.ShedByNode)
	}
	if !strings.Contains(buf.String(), "p99=") {
		t.Fatalf("summary output missing p99:\n%s", buf.String())
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-rps", "0"}, "-rps must be positive"},
		{[]string{"-nodes", "0"}, "-nodes must be positive"},
		{[]string{"-duration", "-1s"}, "-duration must be positive"},
		{[]string{"-docs", "0"}, "-docs must be positive"},
		{[]string{"-scheme", "bogus"}, "unknown scheme"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		err := run(tc.args, &buf)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) err = %v, want %q", tc.args, err, tc.want)
		}
	}
}
