package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadgenSmoke runs a short unsaturated step against a live 2-node
// group and checks the artifact carries the tail percentiles and the
// saturation figure, with -check proving no shed/error at low load.
func TestLoadgenSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rps", "80", "-duration", "500ms", "-docs", "50",
		"-out", out, "-check",
	}, &buf)
	if err != nil {
		t.Fatalf("loadgen run: %v\n%s", err, buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if art.Nodes != 2 || len(art.Steps) != 1 {
		t.Fatalf("artifact shape: nodes=%d steps=%d", art.Nodes, len(art.Steps))
	}
	if art.P50MS <= 0 || art.P99MS < art.P50MS || art.P999MS < art.P99MS {
		t.Fatalf("percentiles not ordered: p50=%v p99=%v p999=%v", art.P50MS, art.P99MS, art.P999MS)
	}
	if art.SaturationRPS <= 0 {
		t.Fatalf("saturation rps = %v", art.SaturationRPS)
	}
	if st := art.Steps[0]; st.Errors != 0 || st.ShedByNode != 0 {
		t.Fatalf("unsaturated smoke saw errors=%d shed=%d", st.Errors, st.ShedByNode)
	}
	if !strings.Contains(buf.String(), "p99=") {
		t.Fatalf("summary output missing p99:\n%s", buf.String())
	}
}

// TestLoadgenChurnSmoke drives a join->drain->leave cycle through a
// live hash-mode step and checks the transition accounting: both swaps
// recorded, and -check stays green because no request failed inside (or
// outside) a transition window.
func TestLoadgenChurnSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_churn.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rps", "100", "-duration", "900ms", "-docs", "60",
		"-locate", "hash", "-churn", "-check", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("churn run: %v\n%s", err, buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if !art.Churn {
		t.Fatal("artifact does not record churn mode")
	}
	st := art.Steps[0]
	if st.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2 (join and drain+leave)", st.Transitions)
	}
	if st.TransitionErrors != 0 || art.TransitionErrors != 0 {
		t.Fatalf("transition errors: step=%d total=%d", st.TransitionErrors, art.TransitionErrors)
	}
	if !strings.Contains(buf.String(), "2 transitions") {
		t.Fatalf("summary output missing churn line:\n%s", buf.String())
	}
}

// TestInTransition pins the window classification -check relies on:
// completion inside [From, To+settle) counts, before or after does not.
func TestInTransition(t *testing.T) {
	base := time.Now()
	windows := []transition{
		{What: "join", From: base, To: base.Add(50 * time.Millisecond)},
		{What: "leave", From: base.Add(time.Second), To: base.Add(1100 * time.Millisecond)},
	}
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{
		{-time.Millisecond, false},
		{0, true},
		{30 * time.Millisecond, true},
		{50*time.Millisecond + churnSettle - time.Millisecond, true},
		{50*time.Millisecond + churnSettle, false},
		{999 * time.Millisecond, false},
		{1050 * time.Millisecond, true},
		{1100*time.Millisecond + churnSettle, false},
	} {
		if got := inTransition(base.Add(tc.at), windows); got != tc.want {
			t.Errorf("inTransition(base+%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if inTransition(base, nil) {
		t.Error("no windows should classify nothing")
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-rps", "0"}, "-rps must be positive"},
		{[]string{"-nodes", "0"}, "-nodes must be positive"},
		{[]string{"-duration", "-1s"}, "-duration must be positive"},
		{[]string{"-docs", "0"}, "-docs must be positive"},
		{[]string{"-scheme", "bogus"}, "unknown scheme"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		err := run(tc.args, &buf)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) err = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// TestLoadgenObsRecordsSlowTraces: with -obs every request is traced, so
// the artifact's tail sample must name real group-wide trace IDs an
// operator can hand to `eacctl trace`.
func TestLoadgenObsRecordsSlowTraces(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_obs.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rps", "80", "-duration", "500ms", "-docs", "50",
		"-obs", "-out", out, "-check",
	}, &buf)
	if err != nil {
		t.Fatalf("loadgen -obs run: %v\n%s", err, buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if !art.Obs {
		t.Fatal("artifact does not mark the run as instrumented")
	}
	st := art.Steps[0]
	if len(st.SlowTraces) == 0 {
		t.Fatal("no slow traces recorded despite -obs")
	}
	if len(st.SlowTraces) > maxSlowTraces {
		t.Fatalf("slow-trace sample unbounded: %d", len(st.SlowTraces))
	}
	for i, s := range st.SlowTraces {
		if len(s.TraceID) != 16 {
			t.Fatalf("slow trace %d has malformed trace ID %q", i, s.TraceID)
		}
		if s.LatencyMS < st.P99MS {
			t.Fatalf("slow trace %d (%.2fms) is under the p99 threshold (%.2fms)", i, s.LatencyMS, st.P99MS)
		}
		if i > 0 && s.LatencyMS > st.SlowTraces[i-1].LatencyMS {
			t.Fatalf("slow traces not sorted by latency: %+v", st.SlowTraces)
		}
		if s.URL == "" || s.Node == "" || s.Outcome == "" {
			t.Fatalf("slow trace %d missing context: %+v", i, s)
		}
	}
}
