// Command loadgen is an open-loop load generator for a live cooperative
// cache group: it builds an origin plus an n-node group on loopback (all
// peer and origin traffic crosses real sockets), then fires requests at
// a configured target RPS with Poisson arrivals and Zipf document
// popularity and measures the latency tail.
//
// Open-loop means arrivals never wait for completions: each request's
// latency is measured from its *scheduled* arrival time, so queueing
// delay under overload is charged to the server rather than silently
// absorbed by a slowed-down generator (the coordinated-omission trap of
// closed-loop harnesses). With -saturate the target RPS doubles per step
// until the group stops keeping up; the highest achieved throughput is
// reported as the saturation RPS.
//
// Results — p50/p99/p999 latency, achieved and saturation throughput,
// shed and coalesce rates — are written as a BENCH_*.json artifact in
// the same spirit as cmd/benchjson.
//
// Usage:
//
//	loadgen -nodes 2 -rps 200 -duration 5s -out BENCH_pr6.json
//	loadgen -saturate -rps 500 -duration 3s
//	loadgen -rps 50 -duration 2s -check   # CI smoke: any shed/error fails
//	loadgen -locate hash -churn -check    # membership cycle under load;
//	                                      # transition-window errors fail
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/dist"
	"eacache/internal/metrics"
	"eacache/internal/netnode"
	"eacache/internal/obs"
	"eacache/internal/resolve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	nodes      int
	rps        float64
	duration   time.Duration
	docs       int
	zipfAlpha  float64
	meanSize   int64
	seed       uint64
	scheme     core.Scheme
	location   resolve.Location
	capacity   int64
	originConc int
	inflight   int
	saturate   bool
	maxSteps   int
	check      bool
	churn      bool
	obs        bool
	out        string
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		nodes      = fs.Int("nodes", 2, "group size")
		rps        = fs.Float64("rps", 200, "target arrival rate, requests/second")
		duration   = fs.Duration("duration", 5*time.Second, "how long each load step runs")
		docs       = fs.Int("docs", 500, "catalogue size (distinct URLs)")
		zipfAlpha  = fs.Float64("zipf", 0.8, "Zipf popularity skew")
		meanSize   = fs.Int64("mean-size", 8<<10, "mean document size in bytes")
		seed       = fs.Uint64("seed", 42, "workload RNG seed")
		schemeName = fs.String("scheme", "ea", `placement scheme: "adhoc", "ea" or "never"`)
		locate     = fs.String("locate", "icp", `document location mechanism: "icp", "digest" or "hash"`)
		capacity   = fs.Int64("capacity", 4<<20, "per-node cache capacity in bytes")
		originConc = fs.Int("origin-concurrency", netnode.DefaultOriginConcurrency, "per-node bound on simultaneous origin fetches")
		inflight   = fs.Int("max-inflight", 1024, "per-node in-flight bound before the front door sheds; 0 disables shedding")
		saturate   = fs.Bool("saturate", false, "ramp RPS (doubling per step) until the group stops keeping up")
		maxSteps   = fs.Int("max-steps", 6, "step cap for -saturate")
		check      = fs.Bool("check", false, "exit non-zero on any shed or failed request (CI smoke at unsaturated load)")
		churn      = fs.Bool("churn", false, "run a join->drain->leave membership cycle inside each step; errors completing inside a transition window are reported separately and fail -check")
		obsFlag    = fs.Bool("obs", false, "wire full telemetry into every node (trace every request) and record the trace IDs of the slowest (>=p99) requests in the artifact, for post-hoc eacctl stitching")
		out        = fs.String("out", "BENCH_pr6.json", "output JSON artifact path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 1 {
		return fmt.Errorf("-nodes must be positive, got %d", *nodes)
	}
	if *rps <= 0 {
		return fmt.Errorf("-rps must be positive, got %v", *rps)
	}
	if *duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", *duration)
	}
	if *docs < 1 {
		return fmt.Errorf("-docs must be positive, got %d", *docs)
	}
	scheme, ok := core.New(*schemeName)
	if !ok {
		return fmt.Errorf("unknown scheme %q", *schemeName)
	}
	loc, err := resolve.ParseLocation(*locate)
	if err != nil {
		return err
	}
	cfg := config{
		nodes: *nodes, rps: *rps, duration: *duration,
		docs: *docs, zipfAlpha: *zipfAlpha, meanSize: *meanSize, seed: *seed,
		scheme: scheme, location: loc, capacity: *capacity,
		originConc: *originConc, inflight: *inflight,
		saturate: *saturate, maxSteps: *maxSteps, check: *check, churn: *churn,
		obs: *obsFlag, out: *out,
	}
	return runLoad(cfg, stdout)
}

// group is the in-process live group under test: entry is Node.Request,
// and everything behind it — ICP fan-outs, peer fetches, origin misses —
// crosses real loopback sockets.
type group struct {
	origin *netnode.OriginServer
	nodes  []*netnode.Node
}

// startNode builds one store-backed cache node for the group; the
// caller wires its peer set.
func startNode(cfg config, id string, originAddr string) (*netnode.Node, error) {
	store, err := cache.NewSharded(cache.ShardedConfig{
		Capacity:         cfg.capacity,
		ExpirationWindow: cache.DefaultExpirationWindow,
	})
	if err != nil {
		return nil, err
	}
	// -obs traces every request (no sampling) so any slow request's
	// trace ID in the artifact is guaranteed to have records behind it —
	// the cost being measured is the fully-instrumented path.
	var tel *obs.Telemetry
	if cfg.obs {
		tel = obs.New(id, 4096)
		tel.SetTraceSampling(1)
	}
	return netnode.New(netnode.Config{
		ID:                id,
		ICPAddr:           "127.0.0.1:0",
		HTTPAddr:          "127.0.0.1:0",
		Store:             store,
		Scheme:            cfg.scheme,
		OriginAddr:        originAddr,
		Location:          cfg.location,
		HashName:          id,
		OriginConcurrency: cfg.originConc,
		MaxInflight:       cfg.inflight,
		Obs:               tel,
	})
}

func startGroup(cfg config) (*group, error) {
	origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	g := &group{origin: origin}
	for i := 0; i < cfg.nodes; i++ {
		node, err := startNode(cfg, fmt.Sprintf("load-%d", i), origin.Addr())
		if err != nil {
			g.close()
			return nil, err
		}
		g.nodes = append(g.nodes, node)
	}
	for i, nd := range g.nodes {
		var peers []netnode.Peer
		for j, other := range g.nodes {
			if i == j {
				continue
			}
			peers = append(peers, netnode.Peer{
				ICP: other.ICPAddr(), HTTP: other.HTTPAddr(), Name: other.ID(),
			})
		}
		nd.SetPeers(peers)
	}
	return g, nil
}

func (g *group) close() {
	for _, nd := range g.nodes {
		_ = nd.Close()
	}
	_ = g.origin.Close()
}

// robustTotals sums the overload counters across the group.
func (g *group) robustTotals() (sheds, coalesced int64) {
	for _, nd := range g.nodes {
		rb := nd.Robustness()
		sheds += rb.Sheds
		coalesced += rb.CoalescedFollowers
	}
	return sheds, coalesced
}

// transition is the wall-clock window of one membership operation.
// Requests completing inside [From, To+churnSettle) are attributed to
// the transition, so a -check failure can say whether the errors came
// from churn or from plain overload.
type transition struct {
	What     string
	From, To time.Time
}

// churnSettle pads the end of each transition window: a request routed
// under the old peer view can fail shortly after the swap completes.
const churnSettle = 200 * time.Millisecond

func inTransition(t time.Time, windows []transition) bool {
	for _, w := range windows {
		if !t.Before(w.From) && t.Before(w.To.Add(churnSettle)) {
			return true
		}
	}
	return false
}

// churnCycle runs one join->drain->leave cycle against the live group
// while a load step is in flight: a spare node joins at one third of
// the step, serves as a member for a third, then drains its copies and
// leaves. The returned windows bracket the two membership swaps.
func churnCycle(g *group, cfg config, stepDur time.Duration) ([]transition, error) {
	time.Sleep(stepDur / 3)
	joiner, err := startNode(cfg, "load-joiner", g.origin.Addr())
	if err != nil {
		return nil, fmt.Errorf("churn: start joiner: %w", err)
	}
	defer joiner.Close()

	var peers []netnode.Peer
	for _, nd := range g.nodes {
		peers = append(peers, netnode.Peer{ICP: nd.ICPAddr(), HTTP: nd.HTTPAddr(), Name: nd.ID()})
	}
	join := transition{What: "join", From: time.Now()}
	joiner.SetPeers(peers)
	self := netnode.Peer{ICP: joiner.ICPAddr(), HTTP: joiner.HTTPAddr(), Name: joiner.ID()}
	for _, nd := range g.nodes {
		if err := nd.AddPeer(self); err != nil {
			return nil, fmt.Errorf("churn: join %s: %w", nd.ID(), err)
		}
	}
	join.To = time.Now()

	time.Sleep(stepDur / 3)
	leave := transition{What: "drain+leave", From: time.Now()}
	if rep := joiner.DrainHandoff(); rep.Failed > 0 {
		return nil, fmt.Errorf("churn: drain left %d failed transfers: %+v", rep.Failed, rep)
	}
	for _, nd := range g.nodes {
		if err := nd.RemovePeer(joiner.ID()); err != nil {
			return nil, fmt.Errorf("churn: leave %s: %w", nd.ID(), err)
		}
	}
	leave.To = time.Now()
	return []transition{join, leave}, nil
}

// stepResult is one constant-rate load step.
type stepResult struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Requests    int     `json:"requests"`
	Completed   int     `json:"completed"`
	Errors      int     `json:"errors"`

	// Transitions counts membership operations run inside this step
	// (-churn), TransitionErrors the request errors completing inside
	// one of their windows. Both stay zero without -churn.
	Transitions      int `json:"transitions,omitempty"`
	TransitionErrors int `json:"transition_errors,omitempty"`

	ShedByNode int64 `json:"shed"`
	Coalesced  int64 `json:"coalesced_followers"`
	LocalHits  int   `json:"local_hits"`
	RemoteHits int   `json:"remote_hits"`
	Misses     int   `json:"misses"`

	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`

	// SlowTraces names the slowest (>=p99) requests of the step by their
	// group-wide trace IDs (-obs only): feed one to `eacctl trace` — or
	// grep the nodes' /debug/trace dumps — to see where the time went.
	SlowTraces []slowTrace `json:"slow_traces,omitempty"`
}

// slowTrace is one tail-latency request worth investigating.
type slowTrace struct {
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
	URL       string  `json:"url"`
	Node      string  `json:"node"`
	Outcome   string  `json:"outcome"`
}

// maxSlowTraces bounds the per-step tail sample in the artifact.
const maxSlowTraces = 10

type artifact struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Nodes     int     `json:"nodes"`
	Scheme    string  `json:"scheme"`
	Locate    string  `json:"locate"`
	Docs      int     `json:"docs"`
	ZipfAlpha float64 `json:"zipf_alpha"`
	Seed      uint64  `json:"seed"`
	DurationS float64 `json:"step_duration_s"`
	Churn     bool    `json:"churn,omitempty"`
	Obs       bool    `json:"obs,omitempty"`

	Steps []stepResult `json:"steps"`

	// Headline figures. The latency percentiles come from the first
	// (base-rate) step — the unsaturated tail; SaturationRPS is the
	// highest throughput any step actually achieved.
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	P999MS        float64 `json:"p999_ms"`
	SaturationRPS float64 `json:"saturation_rps"`
	ShedRate      float64 `json:"shed_rate"`
	CoalesceRate  float64 `json:"coalesce_rate"`

	// TransitionErrors totals the per-step counts (-churn only).
	TransitionErrors int `json:"transition_errors,omitempty"`
}

func runLoad(cfg config, stdout io.Writer) error {
	g, err := startGroup(cfg)
	if err != nil {
		return err
	}
	defer g.close()

	zipf, err := dist.NewZipf(cfg.docs, cfg.zipfAlpha)
	if err != nil {
		return err
	}
	rng := dist.NewRNG(cfg.seed)

	var steps []stepResult
	target := cfg.rps
	for len(steps) < cfg.maxSteps {
		st, err := runStep(g, cfg, zipf, rng, target)
		if err != nil {
			return err
		}
		steps = append(steps, st)
		fmt.Fprintf(stdout,
			"step %d: target %.0f rps, achieved %.1f rps, p50=%.2fms p99=%.2fms p999=%.2fms, errors=%d shed=%d coalesced=%d\n",
			len(steps), st.TargetRPS, st.AchievedRPS, st.P50MS, st.P99MS, st.P999MS,
			st.Errors, st.ShedByNode, st.Coalesced)
		if cfg.churn {
			fmt.Fprintf(stdout, "step %d churn: %d transitions, %d errors inside transition windows\n",
				len(steps), st.Transitions, st.TransitionErrors)
		}
		if !cfg.saturate {
			break
		}
		if st.AchievedRPS < 0.9*st.TargetRPS {
			// The group fell behind the offered load: saturated.
			break
		}
		target *= 2
	}

	art := artifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Nodes:       cfg.nodes,
		Scheme:      cfg.scheme.Name(),
		Locate:      cfg.location.String(),
		Docs:        cfg.docs,
		ZipfAlpha:   cfg.zipfAlpha,
		Seed:        cfg.seed,
		DurationS:   cfg.duration.Seconds(),
		Churn:       cfg.churn,
		Obs:         cfg.obs,
		Steps:       steps,
	}
	base := steps[0]
	art.P50MS, art.P99MS, art.P999MS = base.P50MS, base.P99MS, base.P999MS
	var totalReq, totalErr, totalTransErr int
	var totalShed, totalCoal int64
	for _, st := range steps {
		if st.AchievedRPS > art.SaturationRPS {
			art.SaturationRPS = st.AchievedRPS
		}
		totalReq += st.Requests
		totalErr += st.Errors
		totalTransErr += st.TransitionErrors
		totalShed += st.ShedByNode
		totalCoal += st.Coalesced
	}
	art.TransitionErrors = totalTransErr
	if totalReq > 0 {
		art.ShedRate = float64(totalShed) / float64(totalReq)
		art.CoalesceRate = float64(totalCoal) / float64(totalReq)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout,
		"loadgen: %d nodes, %s/%s: p50=%.2fms p99=%.2fms p999=%.2fms saturation=%.1f rps (shed rate %.4f, coalesce rate %.4f) -> %s\n",
		cfg.nodes, art.Scheme, art.Locate, art.P50MS, art.P99MS, art.P999MS,
		art.SaturationRPS, art.ShedRate, art.CoalesceRate, cfg.out)

	if cfg.check && (totalErr > 0 || totalShed > 0) {
		if totalTransErr > 0 {
			return fmt.Errorf("check failed: %d request errors completed inside membership transition windows (%d errors, %d sheds overall)",
				totalTransErr, totalErr, totalShed)
		}
		return fmt.Errorf("check failed at unsaturated load: %d request errors, %d sheds", totalErr, totalShed)
	}
	return nil
}

// runStep fires one constant-rate open-loop step and collects the tail.
// With -churn it also runs a membership cycle concurrently and counts
// the errors that complete inside the transition windows.
func runStep(g *group, cfg config, zipf *dist.Zipf, rng *dist.RNG, targetRPS float64) (stepResult, error) {
	interarrival, err := dist.NewExponential(1 / targetRPS)
	if err != nil {
		panic(err) // targetRPS validated positive
	}

	// Generate the whole arrival schedule up front from the single-
	// threaded workload RNG: offsets into the step, URL by Zipf rank,
	// entry node uniform. The dispatch loop then only sleeps and spawns.
	type arrival struct {
		at   time.Duration
		url  string
		size int64
		node int
	}
	var schedule []arrival
	var at time.Duration
	for {
		at += time.Duration(interarrival.Sample(rng) * float64(time.Second))
		if at >= cfg.duration {
			break
		}
		schedule = append(schedule, arrival{
			at:   at,
			url:  fmt.Sprintf("http://load.example.edu/doc%05d.html", zipf.Rank(rng)),
			size: cfg.meanSize/2 + int64(rng.Intn(int(cfg.meanSize))),
			node: rng.Intn(len(g.nodes)),
		})
	}

	baseSheds, baseCoalesced := g.robustTotals()

	type sample struct {
		latency time.Duration
		done    time.Time
		outcome metrics.Outcome
		traceID string
		err     error
	}
	samples := make([]sample, len(schedule))
	var wg sync.WaitGroup
	start := time.Now()

	// The churn cycle runs concurrently with the open-loop dispatcher so
	// membership swaps land in the middle of live traffic.
	var (
		churnWG  sync.WaitGroup
		windows  []transition
		churnErr error
	)
	if cfg.churn {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			windows, churnErr = churnCycle(g, cfg, cfg.duration)
		}()
	}

	for i, a := range schedule {
		// Open loop: sleep to the scheduled instant, fire, never wait for
		// the previous request. Latency is charged from the scheduled
		// arrival, so dispatcher lag and server queueing both count.
		if d := time.Until(start.Add(a.at)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, a arrival) {
			defer wg.Done()
			sched := start.Add(a.at)
			res, err := g.nodes[a.node].Request(a.url, a.size)
			samples[i] = sample{latency: time.Since(sched), done: time.Now(), outcome: res.Outcome, traceID: res.TraceID, err: err}
		}(i, a)
	}
	wg.Wait()
	elapsed := time.Since(start)
	churnWG.Wait()
	if churnErr != nil {
		return stepResult{}, churnErr
	}

	st := stepResult{TargetRPS: targetRPS, Requests: len(schedule), Transitions: len(windows)}
	latencies := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		if s.err != nil {
			st.Errors++
			if inTransition(s.done, windows) {
				st.TransitionErrors++
			}
			if errors.Is(s.err, netnode.ErrOverloaded) {
				// Shed requests are counted from the node side below; the
				// client just sees the fast refusal.
				continue
			}
			continue
		}
		st.Completed++
		latencies = append(latencies, s.latency)
		switch s.outcome {
		case metrics.LocalHit:
			st.LocalHits++
		case metrics.RemoteHit:
			st.RemoteHits++
		default:
			st.Misses++
		}
	}
	if elapsed > 0 {
		st.AchievedRPS = float64(st.Completed) / elapsed.Seconds()
	}
	sheds, coalesced := g.robustTotals()
	st.ShedByNode = sheds - baseSheds
	st.Coalesced = coalesced - baseCoalesced

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	st.P50MS = percentileMS(latencies, 0.50)
	st.P99MS = percentileMS(latencies, 0.99)
	st.P999MS = percentileMS(latencies, 0.999)
	if n := len(latencies); n > 0 {
		st.MaxMS = float64(latencies[n-1]) / float64(time.Millisecond)
	}
	if cfg.obs && len(latencies) > 0 {
		threshold := time.Duration(st.P99MS * float64(time.Millisecond))
		for i, s := range samples {
			if s.err != nil || s.traceID == "" || s.latency < threshold {
				continue
			}
			st.SlowTraces = append(st.SlowTraces, slowTrace{
				TraceID:   s.traceID,
				LatencyMS: float64(s.latency) / float64(time.Millisecond),
				URL:       schedule[i].url,
				Node:      g.nodes[schedule[i].node].ID(),
				Outcome:   s.outcome.String(),
			})
		}
		sort.Slice(st.SlowTraces, func(i, j int) bool {
			return st.SlowTraces[i].LatencyMS > st.SlowTraces[j].LatencyMS
		})
		if len(st.SlowTraces) > maxSlowTraces {
			st.SlowTraces = st.SlowTraces[:maxSlowTraces]
		}
	}
	return st, nil
}

// percentileMS returns the q-th percentile of sorted latencies in
// milliseconds — exact over the collected samples (nearest-rank), no
// bucketing.
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
