package main

import (
	"bytes"
	"io"
	"log/slog"
	"strings"
	"testing"
)

func TestParseBytesLocal(t *testing.T) {
	tests := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"10MB", 10 << 20, true},
		{"64KB", 64 << 10, true},
		{"1GB", 1 << 30, true},
		{"2048", 2048, true},
		{"zero", 0, false},
		{"-1KB", 0, false},
	}
	for _, tt := range tests {
		got, err := parseBytes(tt.in)
		if (err == nil) != tt.ok {
			t.Fatalf("parseBytes(%q) err = %v", tt.in, err)
		}
		if tt.ok && got != tt.want {
			t.Fatalf("parseBytes(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestPeerListFlag(t *testing.T) {
	var p peerList
	if err := p.Set("127.0.0.1:3130/127.0.0.1:8081"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("127.0.0.1:3131/127.0.0.1:8082"); err != nil {
		t.Fatal(err)
	}
	if len(p.peers) != 2 {
		t.Fatalf("peers = %d", len(p.peers))
	}
	if p.peers[0].HTTP != "127.0.0.1:8081" || p.peers[0].ICP.Port != 3130 {
		t.Fatalf("peer[0] = %+v", p.peers[0])
	}
	if !strings.Contains(p.String(), "127.0.0.1:3131") {
		t.Fatalf("String() = %q", p.String())
	}
	if err := p.Set("missing-separator"); err == nil {
		t.Fatal("bad peer accepted")
	}
	if err := p.Set("not-an-addr/x"); err == nil {
		t.Fatal("unresolvable peer accepted")
	}
}

func TestDemoEndToEnd(t *testing.T) {
	var out bytes.Buffer
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := runDemo(&out, logger, 3, 200, "ea", ""); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"demo group: 3 nodes", "replayed 200 requests", "estimated mean latency"} {
		if !strings.Contains(s, want) {
			t.Fatalf("demo output missing %q:\n%s", want, s)
		}
	}
}

func TestDemoRejectsBadScheme(t *testing.T) {
	var out bytes.Buffer
	if err := runDemo(&out, slog.New(slog.NewTextHandler(io.Discard, nil)), 2, 10, "bogus", ""); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestDemoWithChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	var out bytes.Buffer
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := runDemo(&out, logger, 3, 60, "ea", "seed=1,udp-drop=0.3"); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"replayed 60 requests", "chaos injected", "group robustness"} {
		if !strings.Contains(s, want) {
			t.Fatalf("chaos demo output missing %q:\n%s", want, s)
		}
	}
}

func TestDemoRejectsBadChaosSpec(t *testing.T) {
	var out bytes.Buffer
	if err := runDemo(&out, slog.New(slog.NewTextHandler(io.Discard, nil)), 2, 10, "ea", "udp-drop=2"); err == nil {
		t.Fatal("bad chaos spec accepted")
	}
}
