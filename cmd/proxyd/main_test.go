package main

import (
	"bytes"
	"flag"
	"io"
	"log/slog"
	"strings"
	"testing"

	"eacache/internal/resolve"
)

func TestParseBytesLocal(t *testing.T) {
	tests := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"10MB", 10 << 20, true},
		{"64KB", 64 << 10, true},
		{"1GB", 1 << 30, true},
		{"2048", 2048, true},
		{"zero", 0, false},
		{"-1KB", 0, false},
	}
	for _, tt := range tests {
		got, err := parseBytes(tt.in)
		if (err == nil) != tt.ok {
			t.Fatalf("parseBytes(%q) err = %v", tt.in, err)
		}
		if tt.ok && got != tt.want {
			t.Fatalf("parseBytes(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestPeerListFlag(t *testing.T) {
	var p peerList
	if err := p.Set("127.0.0.1:3130/127.0.0.1:8081"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("127.0.0.1:3131/127.0.0.1:8082"); err != nil {
		t.Fatal(err)
	}
	if len(p.peers) != 2 {
		t.Fatalf("peers = %d", len(p.peers))
	}
	if p.peers[0].HTTP != "127.0.0.1:8081" || p.peers[0].ICP.Port != 3130 {
		t.Fatalf("peer[0] = %+v", p.peers[0])
	}
	if !strings.Contains(p.String(), "127.0.0.1:3131") {
		t.Fatalf("String() = %q", p.String())
	}
	if err := p.Set("missing-separator"); err == nil {
		t.Fatal("bad peer accepted")
	}
	if err := p.Set("not-an-addr/x"); err == nil {
		t.Fatal("unresolvable peer accepted")
	}
}

func TestDemoEndToEnd(t *testing.T) {
	var out bytes.Buffer
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := runDemo(&out, logger, 3, 200, "ea", resolve.LocateICP, ""); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"demo group: 3 nodes", "replayed 200 requests", "estimated mean latency"} {
		if !strings.Contains(s, want) {
			t.Fatalf("demo output missing %q:\n%s", want, s)
		}
	}
}

func TestDemoRejectsBadScheme(t *testing.T) {
	var out bytes.Buffer
	if err := runDemo(&out, slog.New(slog.NewTextHandler(io.Discard, nil)), 2, 10, "bogus", resolve.LocateICP, ""); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestDemoWithChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	var out bytes.Buffer
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := runDemo(&out, logger, 3, 60, "ea", resolve.LocateICP, "seed=1,udp-drop=0.3"); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"replayed 60 requests", "chaos injected", "group robustness"} {
		if !strings.Contains(s, want) {
			t.Fatalf("chaos demo output missing %q:\n%s", want, s)
		}
	}
}

func TestDemoRejectsBadChaosSpec(t *testing.T) {
	var out bytes.Buffer
	if err := runDemo(&out, slog.New(slog.NewTextHandler(io.Discard, nil)), 2, 10, "ea", resolve.LocateICP, "udp-drop=2"); err == nil {
		t.Fatal("bad chaos spec accepted")
	}
}

// TestDemoHashMode runs the 4-node hash-routed demo end-to-end: every
// request must resolve over the wire and the group must hold at most one
// copy of each document (runDemo returns an error otherwise).
func TestDemoHashMode(t *testing.T) {
	var out bytes.Buffer
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := runDemo(&out, logger, 4, 300, "ea", resolve.LocateHash, ""); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"demo group: 4 nodes", "locate=hash", "replayed 300 requests", ", max 1\n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("hash demo output missing %q:\n%s", want, s)
		}
	}
}

// TestOverloadFlagValidation: the overload-bound flags reject zero and
// negative values up front, naming the flag, before any socket binds.
func TestOverloadFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-origin-concurrency=0"}, "-origin-concurrency must be positive"},
		{[]string{"-origin-concurrency=-3"}, "-origin-concurrency must be positive"},
		{[]string{"-max-inflight=-1"}, "-max-inflight must be positive"},
		{[]string{"-shed-queue-wait=0s"}, "-shed-queue-wait must be positive"},
		{[]string{"-shed-queue-wait=-50ms"}, "-shed-queue-wait must be positive"},
		{[]string{"-trace-sample=0"}, "-trace-sample must be at least 1"},
		{[]string{"-trace-sample=-5"}, "-trace-sample must be at least 1"},
		{[]string{"-trace-capacity=0"}, "-trace-capacity must be positive"},
		{[]string{"-digest-refresh=-1s"}, "-digest-refresh must be positive"},
		{[]string{"-digest-delta-window=-4"}, "-digest-delta-window must be positive"},
		{[]string{"-digest-delta-window=16"}, "DigestDeltaWindow requires digest location"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) err = %v, want %q", tc.args, err, tc.want)
		}
	}
}

func TestLocationFromFlags(t *testing.T) {
	parse := func(t *testing.T, args ...string) (resolve.Location, string, error) {
		t.Helper()
		fs := flag.NewFlagSet("proxyd", flag.ContinueOnError)
		locate := fs.String("locate", "icp", "")
		location := fs.String("location", "", "")
		digest := fs.Bool("digest", false, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		var warnings bytes.Buffer
		loc, err := locationFromFlags(fs, &warnings, *locate, *location, *digest)
		return loc, warnings.String(), err
	}

	loc, warns, err := parse(t)
	if err != nil || loc != resolve.LocateICP || warns != "" {
		t.Fatalf("default: loc=%v warns=%q err=%v", loc, warns, err)
	}
	loc, _, err = parse(t, "-locate=hash")
	if err != nil || loc != resolve.LocateHash {
		t.Fatalf("-locate=hash: loc=%v err=%v", loc, err)
	}
	loc, warns, err = parse(t, "-digest")
	if err != nil || loc != resolve.LocateDigest || !strings.Contains(warns, "deprecated") {
		t.Fatalf("-digest: loc=%v warns=%q err=%v", loc, warns, err)
	}
	loc, warns, err = parse(t, "-location=digest")
	if err != nil || loc != resolve.LocateDigest || !strings.Contains(warns, "deprecated") {
		t.Fatalf("-location=digest: loc=%v warns=%q err=%v", loc, warns, err)
	}
	// Redundant spellings agree: allowed.
	if loc, _, err = parse(t, "-locate=digest", "-digest"); err != nil || loc != resolve.LocateDigest {
		t.Fatalf("agreeing flags: loc=%v err=%v", loc, err)
	}
	// Contradictions are rejected.
	if _, _, err = parse(t, "-locate=hash", "-digest"); err == nil {
		t.Fatal("-locate=hash -digest accepted")
	}
	if _, _, err = parse(t, "-locate=icp", "-location=digest"); err == nil {
		t.Fatal("-locate=icp -location=digest accepted")
	}
	if _, _, err = parse(t, "-locate=carp"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

// TestPeerListRejectsDuplicates: the same neighbour given twice — by
// fetch address or by hash name — is an operator typo caught at flag
// parse, before any socket binds.
func TestPeerListRejectsDuplicates(t *testing.T) {
	var p peerList
	if err := p.Set("127.0.0.1:3130/127.0.0.1:8081/n0"); err != nil {
		t.Fatal(err)
	}
	err := p.Set("127.0.0.1:3131/127.0.0.1:8081/n1")
	if err == nil || !strings.Contains(err.Error(), "duplicate fetch address") {
		t.Fatalf("duplicate fetch address: %v", err)
	}
	err = p.Set("127.0.0.1:3131/127.0.0.1:8082/n0")
	if err == nil || !strings.Contains(err.Error(), "duplicate hash name") {
		t.Fatalf("duplicate hash name: %v", err)
	}
	// A distinct peer still parses after the rejections.
	if err := p.Set("127.0.0.1:3131/127.0.0.1:8082/n1"); err != nil {
		t.Fatal(err)
	}
	if len(p.peers) != 2 {
		t.Fatalf("peers = %d", len(p.peers))
	}
}

// TestMembershipFlagValidation: the elastic-membership flags reject
// nonsense values up front, naming the flag.
func TestMembershipFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-eject-after=-1s"}, "-eject-after must be positive"},
		{[]string{"-readmit-probe=0s"}, "-readmit-probe must be positive"},
		{[]string{"-readmit-probe=-1s"}, "-readmit-probe must be positive"},
		{[]string{"-migrate-concurrency=0"}, "-migrate-concurrency must be positive"},
		{[]string{"-migrate-rate=-5"}, "-migrate-rate must be positive"},
		{[]string{"-join-warmup=-1s"}, "-join-warmup must be positive"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) err = %v, want %q", tc.args, err, tc.want)
		}
	}
}
