// Command proxyd runs one live cooperative caching proxy on real sockets:
// ICP (RFC 2186) over UDP for neighbour queries and the hproto fetch
// protocol over TCP, with cache expiration ages piggybacked per the paper.
//
// A node can also run as the origin server for the group (-origin-mode),
// and -demo spins up an entire cooperative group plus origin in one process
// and replays a small synthetic workload through it.
//
// Usage:
//
//	proxyd -origin-mode -http 127.0.0.1:8000
//	proxyd -icp 127.0.0.1:3130 -http 127.0.0.1:8081 -origin 127.0.0.1:8000 \
//	       -peer 127.0.0.1:3131/127.0.0.1:8082 -scheme ea -capacity 10MB
//	proxyd -demo -nodes 3
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/dist"
	"eacache/internal/faults"
	"eacache/internal/metrics"
	"eacache/internal/netnode"
	"eacache/internal/obs"
	"eacache/internal/resolve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "proxyd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("proxyd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		icpAddr    = fs.String("icp", "127.0.0.1:3130", "ICP (UDP) listen address")
		httpAddr   = fs.String("http", "127.0.0.1:8081", "fetch (TCP) listen address")
		originAddr = fs.String("origin", "", "origin server address for miss resolution")
		parentAddr = fs.String("parent", "", "hierarchical parent's fetch (TCP) address; misses resolve through it")
		schemeName = fs.String("scheme", "ea", `placement scheme: "adhoc", "ea" or "never"`)
		locate     = fs.String("locate", "icp", `document location mechanism: "icp", "digest" or "hash"`)
		location   = fs.String("location", "", `deprecated alias for -locate`)
		digestFlag = fs.Bool("digest", false, `deprecated alias for -locate=digest`)
		hashName   = fs.String("hash-name", "", "this node's hash-ring member name under -locate=hash (default: the bound fetch address)")

		digestRefresh = fs.Duration("digest-refresh", 0, "how long a fetched peer digest is trusted before background revalidation (needs -locate=digest; 0 uses the default)")
		digestWindow  = fs.Int("digest-delta-window", 0, "generations of digest changes kept for delta sync; peers further behind get a full transfer (needs -locate=digest; 0 uses the default)")
		capacity      = fs.String("capacity", "10MB", "cache capacity")
		shards        = fs.Int("cache-shards", cache.DefaultShards,
			"cache lock shards (rounded up to a power of two); 1 serialises the store")
		peers      peerList
		originMode = fs.Bool("origin-mode", false, "run as the group's origin server instead of a proxy")
		demo       = fs.Bool("demo", false, "run a self-contained demo group and exit")
		demoNodes  = fs.Int("nodes", 3, "group size for -demo")
		demoReqs   = fs.Int("requests", 600, "requests to replay in -demo")

		dialTimeout   = fs.Duration("dial-timeout", netnode.DefaultDialTimeout, "TCP dial timeout for peer/parent/origin fetches")
		fetchTimeout  = fs.Duration("fetch-timeout", netnode.DefaultFetchTimeout, "whole-exchange timeout for inter-proxy fetches")
		fetchAttempts = fs.Int("fetch-attempts", netnode.DefaultFetchAttempts, "attempts per parent/origin fetch before the request fails")

		originConc   = fs.Int("origin-concurrency", netnode.DefaultOriginConcurrency, "max simultaneous parent/origin fetches")
		maxInflight  = fs.Int("max-inflight", 1024, "max concurrent requests before the front door sheds; 0 disables shedding")
		shedQueueLag = fs.Duration("shed-queue-wait", netnode.DefaultShedQueueWait, "how long an over-limit request may queue before it is shed (needs -max-inflight > 0)")
		chaosSpec    = fs.String("chaos", "", `inject deterministic faults into every socket, e.g. "seed=42,udp-drop=0.3,tcp-stall=0.05" (see internal/faults)`)

		diskDir      = fs.String("disk-dir", "", "directory for the checksummed blob disk tier; empty runs memory-only")
		diskCap      = fs.String("disk-capacity", "", `disk tier capacity, e.g. "100GB" (needs -disk-dir)`)
		diskDemote   = fs.String("disk-demote", "", `tier demotion rule: "ea" (paper placement rule at the tier boundary, default) or "always" (needs -disk-dir)`)
		dataDir      = fs.String("data-dir", "", "directory for crash-safe cache persistence (snapshot + journal); empty runs in-memory only")
		snapInterval = fs.Duration("snapshot-interval", netnode.DefaultSnapshotInterval, "how often to checkpoint the cache (needs -data-dir)")
		journalBatch = fs.Int("journal-batch", 0,
			"journal group-commit queue depth in frames; 0 uses the default (needs -data-dir)")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Second, "how long a SIGTERM/SIGINT drain waits for in-flight fetches before exiting")

		ejectAfter   = fs.Duration("eject-after", 10*time.Second, "eject a peer whose breaker stays dead this long from the locator set until a probe readmits it; 0 disables ejection")
		readmitProbe = fs.Duration("readmit-probe", netnode.DefaultReadmitProbe, "spacing of readmission probes to ejected peers (needs -eject-after > 0)")
		migrateConc  = fs.Int("migrate-concurrency", netnode.DefaultMigrateConcurrency, "parallel document transfers during rebalance and drain handoff")
		migrateRate  = fs.Int("migrate-rate", 0, "max document transfers per second during rebalance/drain; 0 is unpaced")
		joinWarmup   = fs.Duration("join-warmup", 0, "under -locate=hash, relay without storing for this long after boot so the group converges on this node's arrival; 0 disables")

		nodeID      = fs.String("id", "proxyd", "node name in logs, traces and the decision audit (give each group member its own)")
		adminAddr   = fs.String("admin-addr", "", "admin HTTP listen address serving /metrics, /healthz, /debug/trace, /debug/placement, pprof and the /admin/peers membership API; empty disables telemetry")
		traceCap    = fs.Int("trace-capacity", obs.DefaultTraceCapacity, "how many recent request traces /debug/trace retains (needs -admin-addr)")
		traceSample = fs.Int("trace-sample", obs.DefaultTraceSampling, "trace one request in N; 1 traces every request, metrics always cover all (needs -admin-addr)")
	)
	fs.Var(&peers, "peer", "neighbour as <icp-addr>/<http-addr>[/<hash-name>[/<admin-addr>]] (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The overload bounds must be sane whatever mode runs; reject the
	// nonsensical values up front with the flag name in the error.
	if *originConc <= 0 {
		return fmt.Errorf("-origin-concurrency must be positive, got %d", *originConc)
	}
	if *maxInflight < 0 {
		return fmt.Errorf("-max-inflight must be positive, or 0 to disable shedding, got %d", *maxInflight)
	}
	if *shedQueueLag <= 0 {
		return fmt.Errorf("-shed-queue-wait must be positive, got %v", *shedQueueLag)
	}
	if *ejectAfter < 0 {
		return fmt.Errorf("-eject-after must be positive, or 0 to disable ejection, got %v", *ejectAfter)
	}
	if *readmitProbe <= 0 {
		return fmt.Errorf("-readmit-probe must be positive, got %v", *readmitProbe)
	}
	if *migrateConc <= 0 {
		return fmt.Errorf("-migrate-concurrency must be positive, got %d", *migrateConc)
	}
	if *migrateRate < 0 {
		return fmt.Errorf("-migrate-rate must be positive, or 0 for unpaced, got %d", *migrateRate)
	}
	if *joinWarmup < 0 {
		return fmt.Errorf("-join-warmup must be positive, or 0 to disable, got %v", *joinWarmup)
	}
	if *digestRefresh < 0 {
		return fmt.Errorf("-digest-refresh must be positive, or 0 for the default, got %v", *digestRefresh)
	}
	if *digestWindow < 0 {
		return fmt.Errorf("-digest-delta-window must be positive, or 0 for the default, got %d", *digestWindow)
	}
	if *traceSample < 1 {
		return fmt.Errorf("-trace-sample must be at least 1 (trace every request), got %d", *traceSample)
	}
	if *traceCap < 1 {
		return fmt.Errorf("-trace-capacity must be positive, got %d", *traceCap)
	}

	logger := slog.New(slog.NewTextHandler(stderr, nil))

	loc, err := locationFromFlags(fs, stderr, *locate, *location, *digestFlag)
	if err != nil {
		return err
	}

	if *demo {
		return runDemo(stdout, logger, *demoNodes, *demoReqs, *schemeName, loc, *chaosSpec)
	}

	injector, err := newInjector(*chaosSpec)
	if err != nil {
		return err
	}

	if *originMode {
		origin, err := netnode.NewOriginServer(*httpAddr, logger)
		if err != nil {
			return err
		}
		defer origin.Close()
		fmt.Fprintf(stdout, "origin server on %s\n", origin.Addr())
		waitForSignal()
		return nil
	}

	capBytes, err := parseBytes(*capacity)
	if err != nil {
		return err
	}
	scheme, ok := core.New(*schemeName)
	if !ok {
		return fmt.Errorf("unknown scheme %q", *schemeName)
	}
	store, err := cache.NewSharded(cache.ShardedConfig{
		Shards:           *shards,
		Capacity:         capBytes,
		ExpirationWindow: cache.DefaultExpirationWindow,
	})
	if err != nil {
		return err
	}
	var tel *obs.Telemetry
	if *adminAddr != "" {
		tel = obs.New(*nodeID, *traceCap)
		tel.SetTraceSampling(*traceSample)
	}
	nodeCfg := netnode.Config{
		ID:            *nodeID,
		ICPAddr:       *icpAddr,
		HTTPAddr:      *httpAddr,
		Store:         store,
		Scheme:        scheme,
		OriginAddr:    *originAddr,
		ParentAddr:    *parentAddr,
		Location:      loc,
		HashName:      *hashName,
		DigestRefresh: *digestRefresh,
		DialTimeout:   *dialTimeout,
		FetchTimeout:  *fetchTimeout,
		FetchAttempts: *fetchAttempts,

		OriginConcurrency: *originConc,
		MaxInflight:       *maxInflight,

		MigrateConcurrency: *migrateConc,
		MigrateRate:        *migrateRate,
		JoinWarmup:         *joinWarmup,

		Faults: injector,
		Obs:    tel,
		Logger: logger,
	}
	if *ejectAfter > 0 {
		// netnode rejects a probe interval with ejection off; only pass it
		// through when it applies.
		nodeCfg.EjectAfter = *ejectAfter
		nodeCfg.ReadmitProbe = *readmitProbe
	}
	if *maxInflight > 0 {
		// netnode rejects a wait bound with shedding off; only pass it
		// through when it applies.
		nodeCfg.ShedQueueWait = *shedQueueLag
	}
	if *dataDir != "" {
		nodeCfg.DataDir = *dataDir
		nodeCfg.SnapshotInterval = *snapInterval
	}
	// The disk tier: the capacity string is parsed here, everything else
	// (dir-without-capacity, demote-without-dir, ...) is validated by
	// netnode.New so the flag combinations fail loudly instead of being
	// silently ignored.
	if *diskCap != "" {
		diskBytes, err := parseBytes(*diskCap)
		if err != nil {
			return fmt.Errorf("-disk-capacity: %w", err)
		}
		nodeCfg.DiskCapacity = diskBytes
	}
	nodeCfg.DiskDir = *diskDir
	nodeCfg.DiskDemote = *diskDemote
	// Passed through unconditionally so netnode rejects -journal-batch
	// without -data-dir and -digest-delta-window without -locate=digest
	// instead of ignoring them.
	nodeCfg.JournalBatch = *journalBatch
	nodeCfg.DigestDeltaWindow = *digestWindow
	node, err := netnode.New(nodeCfg)
	if err != nil {
		return err
	}
	defer node.Close() // idempotent; the drain below already released everything
	node.SetPeers(peers.peers)
	publishPeerVars(node)

	if tel != nil {
		admin, err := obs.ServeAdmin(obs.AdminConfig{
			Addr:      *adminAddr,
			Telemetry: tel,
			Info: map[string]string{
				"service": "proxyd",
				"node":    *nodeID,
				"scheme":  scheme.Name(),
				"locate":  loc.String(),
				"icp":     node.ICPAddr().String(),
				"http":    node.HTTPAddr(),
			},
			Routes: node.AdminRoutes(),
			// /healthz reports the topology the node is actually routing
			// on, so a rolling restart can wait for every member to agree
			// on epoch and ring fingerprint before moving to the next one.
			HealthDetail: func() map[string]any {
				return map[string]any{
					"node":             *nodeID,
					"membership_epoch": node.Epoch(),
					"ring_fingerprint": fmt.Sprintf("%016x", node.RingFingerprint()),
					"peers_active":     node.ActivePeers(),
					"draining":         node.Draining(),
				}
			},
		})
		if err != nil {
			return err
		}
		defer admin.Close()
		fmt.Fprintf(stdout, "admin surface on http://%s (/metrics /healthz /debug/trace /debug/placement /debug/pprof /admin/peers)\n", admin.Addr())
	}

	fmt.Fprintf(stdout, "proxy up: icp=%s http=%s scheme=%s capacity=%s peers=%d\n",
		node.ICPAddr(), node.HTTPAddr(), scheme.Name(), *capacity, len(peers.peers))
	if *diskDir != "" {
		demote := *diskDemote
		if demote == "" {
			demote = cache.DemoteEA.String()
		}
		fmt.Fprintf(stdout, "disk tier: %s (%s, demote=%s)\n", *diskDir, *diskCap, demote)
	}
	if rec, ok := node.Recovery(); ok {
		fmt.Fprintf(stdout, "warm restart: recovered %d entries (%d bytes) from %s (snapshot %d entries + %d journal records)\n",
			rec.Restored.Entries, rec.Restored.Bytes, *dataDir, rec.SnapshotEntries, rec.JournalRecords)
		if rec.Restored.DiskRestored > 0 || rec.Restored.DiskLost > 0 {
			fmt.Fprintf(stdout, "warm restart: disk tier kept %d documents, lost %d\n",
				rec.Restored.DiskRestored, rec.Restored.DiskLost)
		}
		if rec.Discarded != "" {
			fmt.Fprintf(stdout, "warm restart: discarded %d corrupt journal bytes (%s)\n",
				rec.DiscardedBytes, rec.Discarded)
		}
	}
	if injector != nil {
		fmt.Fprintf(stdout, "chaos mode: %s\n", *chaosSpec)
	}
	sig := waitForSignal()
	fmt.Fprintf(stdout, "%s: draining (in-flight deadline %v)...\n", sig, *drainTimeout)
	if err := node.Drain(*drainTimeout); err != nil {
		logger.Warn("drain failed", "err", err)
	}
	if *dataDir != "" {
		fmt.Fprintf(stdout, "drained: final snapshot flushed to %s\n", *dataDir)
	} else {
		fmt.Fprintln(stdout, "drained")
	}
	if injector != nil {
		fmt.Fprintf(stdout, "chaos injected: %+v\n", injector.Stats())
		fmt.Fprintf(stdout, "robustness: %+v\n", node.Robustness())
	}
	return nil
}

// locationFromFlags resolves the document-location mechanism from the
// canonical -locate flag and its two deprecated spellings, warning once
// per deprecated flag actually used. An explicit -locate wins over the
// aliases; the aliases must not contradict each other.
func locationFromFlags(fs *flag.FlagSet, stderr io.Writer, locate, location string, digest bool) (resolve.Location, error) {
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if location != "" {
		fmt.Fprintln(stderr, "proxyd: -location is deprecated; use -locate")
	}
	if digest {
		fmt.Fprintln(stderr, "proxyd: -digest is deprecated; use -locate=digest")
	}
	if !explicit["locate"] {
		if location != "" {
			locate = location
		} else if digest {
			locate = "digest"
		}
	}
	loc, err := resolve.ParseLocation(locate)
	if err != nil {
		return 0, err
	}
	if location != "" && location != loc.String() {
		return 0, fmt.Errorf("conflicting flags: -locate=%s vs -location=%s", loc, location)
	}
	if digest && loc != resolve.LocateDigest {
		return 0, fmt.Errorf("conflicting flags: -locate=%s vs -digest", loc)
	}
	return loc, nil
}

// newInjector builds a fault injector from a -chaos spec, or nil when the
// spec is empty (no chaos, no wrapper overhead).
func newInjector(spec string) (*faults.Injector, error) {
	if spec == "" {
		return nil, nil
	}
	cfg, err := faults.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return faults.New(cfg)
}

// runDemo builds an origin plus an n-node cooperative group on loopback,
// replays a Zipf workload through it, and prints what happened on the
// wire. loc selects the document-location mechanism (under hash routing
// the demo also reports the group-wide replication factor, which must
// stay at one copy per document). A non-empty chaosSpec injects
// deterministic faults into every node's sockets and reports how the
// group degraded.
func runDemo(stdout io.Writer, logger *slog.Logger, n, requests int, schemeName string, loc resolve.Location, chaosSpec string) error {
	scheme, ok := core.New(schemeName)
	if !ok {
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	injector, err := newInjector(chaosSpec)
	if err != nil {
		return err
	}

	origin, err := netnode.NewOriginServer("127.0.0.1:0", logger)
	if err != nil {
		return err
	}
	defer origin.Close()

	nodes := make([]*netnode.Node, 0, n)
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for i := 0; i < n; i++ {
		store, err := cache.New(cache.Config{
			Capacity:         256 << 10,
			ExpirationWindow: cache.DefaultExpirationWindow,
		})
		if err != nil {
			return err
		}
		node, err := netnode.New(netnode.Config{
			ID:         fmt.Sprintf("node-%d", i),
			ICPAddr:    "127.0.0.1:0",
			HTTPAddr:   "127.0.0.1:0",
			Store:      store,
			Scheme:     scheme,
			OriginAddr: origin.Addr(),
			Location:   loc,
			HashName:   fmt.Sprintf("node-%d", i),
			Faults:     injector,
			Logger:     logger,
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, node)
	}
	for i, nd := range nodes {
		var ps []netnode.Peer
		for j, other := range nodes {
			if i == j {
				continue
			}
			ps = append(ps, netnode.Peer{
				ICP:  other.ICPAddr(),
				HTTP: other.HTTPAddr(),
				Name: other.ID(),
			})
		}
		nd.SetPeers(ps)
	}

	fmt.Fprintf(stdout, "demo group: %d nodes, scheme=%s, locate=%s, origin=%s\n",
		n, scheme.Name(), loc, origin.Addr())

	rng := dist.NewRNG(42)
	zipf, err := dist.NewZipf(200, 0.8)
	if err != nil {
		return err
	}
	var counters metrics.Counters
	var failed int
	urls := make(map[string]bool)
	for i := 0; i < requests; i++ {
		node := nodes[rng.Intn(len(nodes))]
		url := fmt.Sprintf("http://demo.example.edu/doc%03d.html", zipf.Rank(rng))
		urls[url] = true
		res, err := node.Request(url, 2048+int64(rng.Intn(4096)))
		if err != nil {
			// Under injected faults a request can legitimately fail (e.g.
			// the origin connection keeps resetting); count it and keep
			// going so the demo reports how the group degraded. Without
			// chaos any error is a real bug.
			if injector == nil {
				return err
			}
			logger.Warn("demo request failed", "err", err)
			failed++
			continue
		}
		counters.Record(res.Outcome, res.Size)
	}

	snap := counters.Snapshot()
	fmt.Fprintf(stdout,
		"replayed %d requests over the wire: local=%.1f%% remote=%.1f%% miss=%.1f%% (origin served %d fetches)\n",
		snap.Requests, 100*snap.LocalHitRate(), 100*snap.RemoteHitRate(),
		100*snap.MissRate(), origin.Fetches())
	if failed > 0 {
		fmt.Fprintf(stdout, "failed requests: %d of %d (all retries and fallbacks exhausted)\n", failed, requests)
	}
	fmt.Fprintf(stdout, "estimated mean latency (paper model): %s\n",
		metrics.PaperLatencies.EstimatedAverageLatency(snap))

	// Group-wide replication: hash routing must leave at most one copy of
	// each document anywhere in the group; the other mechanisms replicate
	// as the placement scheme decides.
	var unique, totalCopies, maxCopies int
	for url := range urls {
		copies := 0
		for _, nd := range nodes {
			if nd.Contains(url) {
				copies++
			}
		}
		if copies > 0 {
			unique++
			totalCopies += copies
			if copies > maxCopies {
				maxCopies = copies
			}
		}
	}
	meanCopies := 0.0
	if unique > 0 {
		meanCopies = float64(totalCopies) / float64(unique)
	}
	fmt.Fprintf(stdout, "replication: %d unique documents resident, %.2f copies/doc, max %d\n",
		unique, meanCopies, maxCopies)
	if loc == resolve.LocateHash && maxCopies > 1 {
		return fmt.Errorf("hash routing violated single-copy placement: max %d copies of one document", maxCopies)
	}
	if injector != nil {
		var rb metrics.RobustnessSnapshot
		for _, nd := range nodes {
			s := nd.Robustness()
			rb.PeerFailures += s.PeerFailures
			rb.Retries += s.Retries
			rb.Fallbacks += s.Fallbacks
			rb.BreakerOpens += s.BreakerOpens
			rb.BreakerCloses += s.BreakerCloses
		}
		fmt.Fprintf(stdout, "chaos injected: %+v\n", injector.Stats())
		fmt.Fprintf(stdout, "group robustness: %+v\n", rb)
	}
	return nil
}

// Peer-health expvar. expvar registration is process-global and panics
// on re-registration, so the variable is published exactly once and
// reads through an atomic holder that each run swaps its node into —
// tests can call run repeatedly in one process.
var (
	peerVarsOnce sync.Once
	peerVarsNode atomic.Pointer[netnode.Node]
)

// publishPeerVars exposes the node's membership table — per-peer breaker
// state, last transition time, ejection status, epoch, drain state — as
// the "eacache_peers" expvar on /debug/vars.
func publishPeerVars(n *netnode.Node) {
	peerVarsNode.Store(n)
	peerVarsOnce.Do(func() {
		expvar.Publish("eacache_peers", expvar.Func(func() any {
			n := peerVarsNode.Load()
			if n == nil {
				return nil
			}
			return map[string]any{
				"epoch":    n.Epoch(),
				"draining": n.Draining(),
				"members":  n.Members(),
			}
		}))
		expvar.Publish("eacache_robustness", expvar.Func(func() any {
			n := peerVarsNode.Load()
			if n == nil {
				return nil
			}
			return n.Robustness()
		}))
	})
}

// peerList parses repeated -peer <icp>/<http> flags.
type peerList struct {
	peers []netnode.Peer
}

func (p *peerList) String() string {
	parts := make([]string, len(p.peers))
	for i, peer := range p.peers {
		parts[i] = fmt.Sprintf("%s/%s", peer.ICP, peer.HTTP)
		if peer.Name != "" || peer.Admin != "" {
			parts[i] += "/" + peer.Name
		}
		if peer.Admin != "" {
			parts[i] += "/" + peer.Admin
		}
	}
	return strings.Join(parts, ",")
}

func (p *peerList) Set(v string) error {
	icpPart, rest, found := strings.Cut(v, "/")
	if !found {
		return fmt.Errorf("peer %q: want <icp-addr>/<http-addr>[/<hash-name>[/<admin-addr>]]", v)
	}
	httpPart, rest, _ := strings.Cut(rest, "/")
	if httpPart == "" {
		return fmt.Errorf("peer %q: empty fetch address", v)
	}
	name, adminPart, _ := strings.Cut(rest, "/")
	udp, err := net.ResolveUDPAddr("udp", icpPart)
	if err != nil {
		return fmt.Errorf("peer %q: %w", v, err)
	}
	// A doubled neighbour would be fanned out to twice and counted as two
	// ring members; catch the operator typo at flag parse, by name.
	for _, prev := range p.peers {
		if prev.HTTP == httpPart {
			return fmt.Errorf("peer %q: duplicate fetch address %s (already given as -peer %s/%s)",
				v, httpPart, prev.ICP, prev.HTTP)
		}
		if name != "" && prev.Name == name {
			return fmt.Errorf("peer %q: duplicate hash name %q (already given to %s)", v, name, prev.HTTP)
		}
	}
	p.peers = append(p.peers, netnode.Peer{ICP: udp, HTTP: httpPart, Name: name, Admin: adminPart})
	return nil
}

func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	}
	var n int64
	if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func waitForSignal() os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return <-ch
}
