package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eacache/internal/trace"
)

func TestRunToStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-requests", "500", "-docs", "50", "-scale", "0.001", "-stats"},
		&out, &errOut); err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(&out)
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if len(records) != 500 {
		t.Fatalf("records = %d, want 500", len(records))
	}
	if !strings.Contains(errOut.String(), "500 requests") {
		t.Fatalf("missing stats on stderr: %s", errOut.String())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var out, errOut bytes.Buffer
	if err := run([]string{"-scale", "0.001", "-o", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("wrote to stdout despite -o")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("empty trace file")
	}
	if !trace.Sorted(records) {
		t.Fatal("trace not sorted")
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	gen := func(seed string) string {
		var out, errOut bytes.Buffer
		if err := run([]string{"-requests", "200", "-docs", "30", "-scale", "0.001", "-seed", seed},
			&out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen("1") != gen("1") {
		t.Fatal("same seed produced different traces")
	}
	if gen("1") == gen("2") {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRunZipfOverride(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-requests", "300", "-docs", "40", "-users", "7",
		"-zipf", "1.1", "-scale", "0.001"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	stats := trace.ComputeStats(records)
	if stats.UniqueClients > 7 {
		t.Fatalf("clients = %d, want <= 7", stats.UniqueClients)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	// A 5-document catalogue is smaller than the default 24-document hot
	// head, which the generator must reject.
	var out, errOut bytes.Buffer
	if err := run([]string{"-requests", "10", "-docs", "5", "-scale", "0.001"},
		&out, &errOut); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunSquidOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-requests", "100", "-docs", "30", "-scale", "0.001",
		"-format", "squid"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	records, skipped, err := trace.ReadSquid(&out)
	if err != nil || skipped != 0 {
		t.Fatalf("squid output unparseable: %v, %d skipped", err, skipped)
	}
	if len(records) != 100 {
		t.Fatalf("records = %d", len(records))
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-requests", "10", "-docs", "30", "-scale", "0.001",
		"-format", "xml"}, &out, &errOut); err == nil {
		t.Fatal("bad format accepted")
	}
}
