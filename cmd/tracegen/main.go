// Command tracegen generates a synthetic reference stream calibrated to
// the Boston University trace shape the paper evaluates on, in the
// canonical trace format consumed by cachesim.
//
// Usage:
//
//	tracegen -scale 0.01 -seed 1 -o trace.txt
//	tracegen -requests 100000 -docs 8000 -zipf 0.8 > trace.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"eacache/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale    = fs.Float64("scale", 1.0, "scale the BU-calibrated preset (1.0 = paper scale: 575,775 requests)")
		requests = fs.Int("requests", 0, "override request count")
		docs     = fs.Int("docs", 0, "override unique document count")
		users    = fs.Int("users", 0, "override client count")
		zipf     = fs.Float64("zipf", 0, "override Zipf popularity exponent")
		seed     = fs.Uint64("seed", 1, "generator seed")
		out      = fs.String("o", "", "output file (default stdout)")
		format   = fs.String("format", "canonical", `output format: "canonical" or "squid"`)
		stats    = fs.Bool("stats", false, "print trace statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := trace.BULike().Scaled(*scale)
	cfg.Seed = *seed
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *docs > 0 {
		cfg.UniqueDocs = *docs
	}
	if *users > 0 {
		cfg.Users = *users
	}
	if *zipf > 0 {
		cfg.ZipfAlpha = *zipf
	}

	start := time.Now()
	records, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "canonical":
		err = trace.Write(w, records)
	case "squid":
		err = trace.WriteSquid(w, records)
	default:
		err = fmt.Errorf("unknown output format %q", *format)
	}
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(stderr, "generated in %s: %s\n", time.Since(start).Round(time.Millisecond),
			trace.ComputeStats(records))
		fmt.Fprintf(stderr, "popularity: %s\n", trace.ComputePopularity(records))
	}
	return nil
}
