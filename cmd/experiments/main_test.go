package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eacache/internal/experiments"
	"eacache/internal/trace"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, id := range experiments.IDs {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("missing %q in list:\n%s", id, out.String())
		}
	}
}

func TestRunSubset(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-scale", "0.002", "-run", "fig1,table1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== fig1:") || !strings.Contains(s, "== table1:") {
		t.Fatalf("missing experiment headers:\n%s", s)
	}
	if strings.Contains(s, "== fig2:") {
		t.Fatal("ran an experiment that was not requested")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-scale", "0.002", "-run", "nope"}, &out, &errOut); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWithTraceFile(t *testing.T) {
	records, err := trace.Generate(trace.BULike().Scaled(0.002))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, records); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	var out, errOut bytes.Buffer
	if err := run([]string{"-trace", path, "-run", "replication"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== replication:") {
		t.Fatalf("missing output:\n%s", out.String())
	}
}

func TestRunMissingTraceFile(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-trace", "/nonexistent/t.txt"}, &out, &errOut); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunMultiSeedMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-scale", "0.002", "-seeds", "3"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "multiseed") || !strings.Contains(s, "+/-") {
		t.Fatalf("multiseed output missing:\n%s", s)
	}
}

func TestRunMultiSeedRejectsTraceFile(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-seeds", "3", "-trace", "/tmp/whatever.txt"}, &out, &errOut); err == nil {
		t.Fatal("-seeds with -trace accepted")
	}
}
