// Command experiments regenerates every table and figure of the paper's
// evaluation (plus the ablations in DESIGN.md) over a synthetic
// BU-calibrated trace, or over a trace file you supply.
//
// Usage:
//
//	experiments                     # quick pass (1% scale trace, scaled sizes)
//	experiments -full               # paper scale: 575,775 requests, 100KB..1GB
//	experiments -run fig1,table2    # a subset
//	experiments -trace trace.txt    # your own canonical trace, paper sizes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"eacache/internal/experiments"
	"eacache/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		full      = fs.Bool("full", false, "run at paper scale (full trace, paper sizes)")
		scale     = fs.Float64("scale", 0.01, "trace scale when not -full")
		seed      = fs.Uint64("seed", 1, "trace generator seed")
		runList   = fs.String("run", "all", "comma-separated experiment IDs, or \"all\"")
		tracePath = fs.String("trace", "", "replay this canonical trace instead of generating one")
		list      = fs.Bool("list", false, "list experiment IDs and exit")
		seeds     = fs.Int("seeds", 0, "run the EA-vs-adhoc deltas across N workload seeds (mean +/- sd) instead of the experiment list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range experiments.IDs {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}

	var (
		records []trace.Record
		cfg     experiments.Config
		err     error
	)
	switch {
	case *tracePath != "":
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		records, err = trace.Read(f)
		_ = f.Close()
		if err != nil {
			return err
		}
	case *full:
		gen := trace.BULike()
		gen.Seed = *seed
		records, err = trace.Generate(gen)
		if err != nil {
			return err
		}
	default:
		gen := trace.BULike().Scaled(*scale)
		gen.Seed = *seed
		records, err = trace.Generate(gen)
		if err != nil {
			return err
		}
		cfg.Sizes = experiments.ScaledSizes(*scale)
	}

	if *seeds > 1 {
		if *tracePath != "" {
			return fmt.Errorf("-seeds needs generated workloads, not -trace")
		}
		gen := trace.BULike()
		if !*full {
			gen = gen.Scaled(*scale)
		}
		traces := make([][]trace.Record, 0, *seeds)
		for i := 0; i < *seeds; i++ {
			gen.Seed = *seed + uint64(i)
			records, err := trace.Generate(gen)
			if err != nil {
				return err
			}
			traces = append(traces, records)
		}
		table, err := experiments.MultiSeed(traces, cfg)
		if err != nil {
			return err
		}
		return table.Render(stdout)
	}

	fmt.Fprintf(stdout, "trace: %s\n\n", trace.ComputeStats(records))
	suite := experiments.NewSuite(records, cfg)

	ids := experiments.IDs
	if *runList != "all" {
		ids = strings.Split(*runList, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		table, err := suite.Experiment(id)
		if err != nil {
			return err
		}
		if err := table.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
