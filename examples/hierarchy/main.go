// Hierarchy: the paper's §3.3 hierarchical algorithm in action. Four leaf
// caches share a parent cache (the classic Harvest/Squid arrangement); a
// leaf's group-wide miss is resolved through the parent, and the EA scheme
// decides at each hop — parent first, then child — who keeps a copy, using
// the expiration ages piggybacked on the request and response.
//
// The example contrasts the hierarchical and distributed architectures
// under both schemes, and then zooms into one cold-start exchange to show
// the placement decisions the paper describes.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/proxy"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("hierarchy: ", err)
	}
}

func run() error {
	records, err := trace.Generate(trace.BULike().Scaled(0.02))
	if err != nil {
		return err
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)
	fmt.Println("workload:", trace.ComputeStats(records))
	fmt.Println()

	fmt.Printf("%-13s  %-6s  %8s  %8s  %10s\n", "architecture", "scheme", "hit", "remote", "latency")
	for _, arch := range []group.Architecture{group.Distributed, group.Hierarchical} {
		for _, schemeName := range []string{"adhoc", "ea"} {
			scheme, _ := core.New(schemeName)
			g, err := group.New(group.Config{
				Caches:         4,
				AggregateBytes: 1 << 20,
				Scheme:         scheme,
				Architecture:   arch,
			})
			if err != nil {
				return err
			}
			rep, err := sim.Run(g, records, sim.Config{})
			if err != nil {
				return err
			}
			fmt.Printf("%-13s  %-6s  %7.2f%%  %7.2f%%  %10v\n",
				arch, schemeName,
				100*rep.Group.HitRate(), 100*rep.Group.RemoteHitRate(),
				rep.EstimatedLatency.Round(time.Millisecond))
		}
	}
	fmt.Println()

	return walkthrough()
}

// walkthrough traces one cold-start exchange through a 2-level hierarchy
// under the EA scheme, printing each placement decision.
func walkthrough() error {
	newProxy := func(id string, capacity int64) (*proxy.Proxy, error) {
		store, err := cache.New(cache.Config{Capacity: capacity})
		if err != nil {
			return nil, err
		}
		return proxy.New(proxy.Config{
			ID:     id,
			Store:  store,
			Scheme: core.EA{},
			Origin: proxy.SizeHintOrigin{},
		})
	}
	parent, err := newProxy("parent", 1<<20)
	if err != nil {
		return err
	}
	child, err := newProxy("child", 1<<20)
	if err != nil {
		return err
	}
	if err := child.SetParent(parent); err != nil {
		return err
	}

	now := time.Date(1994, time.November, 15, 9, 0, 0, 0, time.UTC)
	const url = "http://cs-www.example.edu/assignment1.html"

	fmt.Println("cold-start walkthrough (EA scheme, child -> parent -> origin):")
	res, err := child.Request(url, 2048, now)
	if err != nil {
		return err
	}
	fmt.Printf("  1. child misses everywhere; parent fetches from origin (outcome: %v)\n", res.Outcome)
	fmt.Printf("  2. both expiration ages are 'no contention' -> a tie\n")
	fmt.Printf("     parent stores?  %v   (strict rule: parent age must EXCEED child's)\n",
		parent.Store().Contains(url))
	fmt.Printf("     child stores?   %v   (miss rule: ties go to the child, so the copy lands)\n",
		child.Store().Contains(url))

	res, err = child.Request(url, 2048, now.Add(time.Minute))
	if err != nil {
		return err
	}
	fmt.Printf("  3. the child's next request is a %v\n", res.Outcome)
	return nil
}
