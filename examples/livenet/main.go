// Livenet: the cooperative protocol on real sockets. Three proxy nodes and
// an origin server start on loopback; the nodes locate documents in each
// other's caches with ICP (RFC 2186) over UDP and transfer them with the
// inter-proxy fetch protocol over TCP, cache expiration ages piggybacked on
// the request and response messages exactly as the paper describes.
//
// A Zipf workload is replayed through the group and the wire-level outcome
// mix is printed, demonstrating that the EA scheme's decision inputs travel
// with zero extra messages.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"os"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/dist"
	"eacache/internal/metrics"
	"eacache/internal/netnode"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("livenet: ", err)
	}
}

func run() error {
	origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		return err
	}
	defer origin.Close()
	fmt.Println("origin server:", origin.Addr())

	const nodes = 3
	group := make([]*netnode.Node, 0, nodes)
	defer func() {
		for _, n := range group {
			_ = n.Close()
		}
	}()
	for i := 0; i < nodes; i++ {
		store, err := cache.New(cache.Config{
			Capacity:          128 << 10,
			ExpirationHorizon: cache.DefaultExpirationHorizon,
		})
		if err != nil {
			return err
		}
		node, err := netnode.New(netnode.Config{
			ID:         fmt.Sprintf("proxy-%d", i),
			ICPAddr:    "127.0.0.1:0",
			HTTPAddr:   "127.0.0.1:0",
			Store:      store,
			Scheme:     core.EA{},
			OriginAddr: origin.Addr(),
		})
		if err != nil {
			return err
		}
		group = append(group, node)
		fmt.Printf("%s: icp=%v fetch=%v\n", node.ID(), node.ICPAddr(), node.HTTPAddr())
	}
	for i, n := range group {
		var peers []netnode.Peer
		for j, other := range group {
			if i != j {
				peers = append(peers, netnode.Peer{ICP: other.ICPAddr(), HTTP: other.HTTPAddr()})
			}
		}
		n.SetPeers(peers)
	}
	fmt.Println()

	// Replay a Zipf-popular workload round-robin across the proxies so
	// the same documents are requested behind different caches — the
	// cooperative case.
	rng := dist.NewRNG(1994)
	zipf, err := dist.NewZipf(150, 0.8)
	if err != nil {
		return err
	}
	var counters metrics.Counters
	const requests = 900
	for i := 0; i < requests; i++ {
		node := group[i%len(group)]
		url := fmt.Sprintf("http://live.example.edu/doc%03d.html", zipf.Rank(rng))
		res, err := node.Request(url, int64(1024+rng.Intn(3072)))
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		counters.Record(res.Outcome, res.Size)
	}

	snap := counters.Snapshot()
	fmt.Printf("replayed %d requests over UDP/TCP on loopback:\n", requests)
	fmt.Printf("  local hits : %5.1f%%\n", 100*snap.LocalHitRate())
	fmt.Printf("  remote hits: %5.1f%%   <- served proxy-to-proxy after an ICP hit\n",
		100*snap.RemoteHitRate())
	fmt.Printf("  misses     : %5.1f%%   (origin served %d fetches)\n",
		100*snap.MissRate(), origin.Fetches())
	fmt.Printf("  estimated mean latency (paper model): %v\n",
		metrics.PaperLatencies.EstimatedAverageLatency(snap))
	return nil
}
