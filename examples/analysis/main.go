// Analysis: where do the EA scheme's extra hits come from? The example
// splits the workload into the ultra-hot head (the site-wide inline images
// every page view drags along) and the long tail, replays both schemes with
// per-class accounting, and shows the mechanism the paper argues for:
// the EA scheme converts the head's redundant replicas into space for the
// tail, trading local hits for remote hits without losing group hits.
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/metrics"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("analysis: ", err)
	}
}

func run() error {
	cfg := trace.BULike().Scaled(0.02)
	records, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)

	fmt.Println("workload:  ", trace.ComputeStats(records))
	fmt.Println("popularity:", trace.ComputePopularity(records))
	fmt.Println()

	// The generator's hot head is documents 0..HotDocs-1; classify by the
	// document id embedded in the URL.
	classify := func(url string) string {
		if docID(url) < cfg.HotDocs {
			return "hot head"
		}
		return "tail"
	}

	const aggregate = 256 << 10
	fmt.Printf("4 caches, %s aggregate, per-class outcomes:\n\n", sim.FormatBytes(aggregate))
	fmt.Printf("%-6s  %-8s  %9s  %8s  %8s  %8s\n",
		"scheme", "class", "requests", "local", "remote", "miss")
	for _, schemeName := range []string{"adhoc", "ea"} {
		scheme, _ := core.New(schemeName)
		g, err := group.New(group.Config{
			Caches:         4,
			AggregateBytes: aggregate,
			Scheme:         scheme,
		})
		if err != nil {
			return err
		}
		rep, err := sim.Run(g, records, sim.Config{ClassifyURL: classify})
		if err != nil {
			return err
		}
		for _, class := range []string{"hot head", "tail"} {
			c := rep.PerClass[class]
			if c == nil {
				c = &metrics.CountersSnapshot{}
			}
			fmt.Printf("%-6s  %-8s  %9d  %7.2f%%  %7.2f%%  %7.2f%%\n",
				schemeName, class, c.Requests,
				100*c.LocalHitRate(), 100*c.RemoteHitRate(), 100*c.MissRate())
		}
		fmt.Printf("%-6s  %-8s  resident: %d unique docs, %.3f copies each\n\n",
			schemeName, "(all)", rep.Replication.UniqueDocs, rep.Replication.MeanCopies())
	}

	fmt.Println("reading: under EA the hot head is served with far fewer replicas")
	fmt.Println("(local hits become remote hits), and the freed space lifts the")
	fmt.Println("tail's hit rate by more than the head gives up — the replication")
	fmt.Println("control the paper is about.")
	return nil
}

// docID extracts the numeric document id from the generator's URL shape
// (http://originNNN.example.edu/docNNNNNN.html).
func docID(url string) int {
	i := strings.LastIndex(url, "/doc")
	if i < 0 {
		return 1 << 30
	}
	digits := strings.TrimSuffix(url[i+4:], ".html")
	n, err := strconv.Atoi(digits)
	if err != nil {
		return 1 << 30
	}
	return n
}
