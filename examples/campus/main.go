// Campus: the scenario that motivates the paper — a university's
// departmental proxies cooperating over ICP. Four departments share a
// modest aggregate disk budget; lab sections (cohorts of students browsing
// the same assignment pages at the same time) create exactly the
// cross-proxy replication the EA scheme was designed to control.
//
// The example sweeps the aggregate cache size and shows where each scheme's
// latency comes from, reproducing the reasoning of the paper's §4.2: at
// small sizes the EA scheme's lower miss rate dominates; at large sizes its
// higher remote-hit share starts to cost.
//
//	go run ./examples/campus
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/metrics"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("campus: ", err)
	}
}

func run() error {
	// A campus-shaped workload: heavier cohort browsing than the default
	// calibration (more lab sections), 2% of paper scale.
	cfg := trace.BULike().Scaled(0.02)
	cfg.CohortFraction = 0.6
	cfg.CohortSize = 16
	cfg.CohortSpread = 10 * time.Minute
	records, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)
	fmt.Println("campus workload:", trace.ComputeStats(records))
	fmt.Println()

	fmt.Printf("%-10s  %-6s  %7s  %7s  %7s  %10s  %8s\n",
		"aggregate", "scheme", "local", "remote", "miss", "latency", "copies")
	for _, aggregate := range []int64{64 << 10, 512 << 10, 4 << 20} {
		for _, schemeName := range []string{"adhoc", "ea"} {
			rep, err := simulate(records, schemeName, aggregate)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s  %-6s  %6.2f%%  %6.2f%%  %6.2f%%  %10v  %8.3f\n",
				sim.FormatBytes(aggregate), schemeName,
				100*rep.Group.LocalHitRate(), 100*rep.Group.RemoteHitRate(),
				100*rep.Group.MissRate(),
				rep.EstimatedLatency.Round(time.Millisecond),
				rep.Replication.MeanCopies())
		}
		fmt.Println()
	}

	// Latency decomposition at the smallest size, per the paper's
	// discussion of why the EA scheme wins there.
	rep, err := simulate(records, "ea", 64<<10)
	if err != nil {
		return err
	}
	m := metrics.PaperLatencies
	fmt.Println("where the time goes at 64KB under EA (paper eq. 6 terms):")
	fmt.Printf("  local hits : %6.2f%% x %v\n", 100*rep.Group.LocalHitRate(), m.LocalHit)
	fmt.Printf("  remote hits: %6.2f%% x %v\n", 100*rep.Group.RemoteHitRate(), m.RemoteHit)
	fmt.Printf("  misses     : %6.2f%% x %v  <- dominates at small cache sizes\n",
		100*rep.Group.MissRate(), m.Miss)
	return nil
}

func simulate(records []trace.Record, schemeName string, aggregate int64) (*sim.Report, error) {
	scheme, ok := core.New(schemeName)
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q", schemeName)
	}
	g, err := group.New(group.Config{
		Caches:         4,
		AggregateBytes: aggregate,
		Scheme:         scheme,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run(g, records, sim.Config{})
}
