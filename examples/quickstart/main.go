// Quickstart: build a 4-cache cooperative group, replay a small synthetic
// workload under the conventional ad-hoc placement scheme and the paper's
// EA scheme, and print the paper's headline metrics side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatal("quickstart: ", err)
	}
}

func run() error {
	// 1. A workload: 1% of the BU-calibrated synthetic trace.
	records, err := trace.Generate(trace.BULike().Scaled(0.01))
	if err != nil {
		return err
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)
	fmt.Println("workload:", trace.ComputeStats(records))
	fmt.Println()

	// 2. Replay it against a 4-cache distributed group under each
	// placement scheme. The aggregate disk space is deliberately small
	// (1% of the paper's 10MB point) so placement decisions matter.
	for _, schemeName := range []string{"adhoc", "ea"} {
		scheme, _ := core.New(schemeName)
		g, err := group.New(group.Config{
			Caches:         4,
			AggregateBytes: 100 << 10,
			Scheme:         scheme,
		})
		if err != nil {
			return err
		}
		report, err := sim.Run(g, records, sim.Config{})
		if err != nil {
			return err
		}

		// 3. The paper's metrics: hit rates, the local/remote split,
		// the equation-6 latency estimate, and replication control.
		fmt.Printf("%-5s: hit %.2f%%  byte-hit %.2f%%  (local %.2f%% / remote %.2f%%)\n",
			schemeName,
			100*report.Group.HitRate(), 100*report.Group.ByteHitRate(),
			100*report.Group.LocalHitRate(), 100*report.Group.RemoteHitRate())
		fmt.Printf("       est. latency %v   avg cache expiration age %v\n",
			report.EstimatedLatency, report.AvgCacheExpirationAge)
		fmt.Printf("       resident: %d unique docs, %.3f copies each\n\n",
			report.Replication.UniqueDocs, report.Replication.MeanCopies())
	}
	return nil
}
