package eacache_test

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"eacache/internal/benchkit"
	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/dist"
	"eacache/internal/group"
	"eacache/internal/hproto"
	"eacache/internal/icp"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

// The artifact benchmark bodies live in internal/benchkit (at trace
// scale benchkit.Scale, preserving the paper's cache-to-working-set
// ratio) so cmd/benchjson can run the same measurements headlessly.
// cmd/experiments -full regenerates the artifacts at full paper scale.
func benchArtifact(b *testing.B, id string) {
	benchkit.Artifact(id)(b)
}

// BenchmarkFig1 regenerates paper Figure 1 (document hit rates, ad-hoc vs
// EA, 4-cache group across aggregate sizes).
func BenchmarkFig1(b *testing.B) { benchArtifact(b, "fig1") }

// BenchmarkFig2 regenerates paper Figure 2 (byte hit rates).
func BenchmarkFig2(b *testing.B) { benchArtifact(b, "fig2") }

// BenchmarkFig3 regenerates paper Figure 3 (estimated average latency,
// equation 6 with the paper's 146/342/2784ms model).
func BenchmarkFig3(b *testing.B) { benchArtifact(b, "fig3") }

// BenchmarkTable1 regenerates paper Table 1 (average cache expiration age).
func BenchmarkTable1(b *testing.B) { benchArtifact(b, "table1") }

// BenchmarkTable2 regenerates paper Table 2 (local/remote hit split and
// latency for both schemes).
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkGroupSize regenerates the §4.2 group-size claims (2/4/8 caches).
func BenchmarkGroupSize(b *testing.B) { benchArtifact(b, "groupsize") }

// BenchmarkReplication regenerates the replication-control study behind the
// paper's §2 motivation.
func BenchmarkReplication(b *testing.B) { benchArtifact(b, "replication") }

// BenchmarkAblationLFU regenerates the LFU-replacement ablation (paper
// §3.2.2 expiration-age definition).
func BenchmarkAblationLFU(b *testing.B) { benchArtifact(b, "ablation-policy") }

// BenchmarkAblationWindow regenerates the expiration-age window ablation
// (the paper's "(Ti, Tj)" choice).
func BenchmarkAblationWindow(b *testing.B) { benchArtifact(b, "ablation-window") }

// BenchmarkHierarchy regenerates the hierarchical-architecture experiment
// (paper §3.3 algorithm).
func BenchmarkHierarchy(b *testing.B) { benchArtifact(b, "hierarchy") }

// BenchmarkLocation regenerates the ICP-vs-Summary-Cache-digest comparison
// (related work extension).
func BenchmarkLocation(b *testing.B) { benchArtifact(b, "location") }

// BenchmarkPartitioned regenerates the placement-extremes comparison
// against consistent-hash partitioning (related work extension).
func BenchmarkPartitioned(b *testing.B) { benchArtifact(b, "partitioned") }

// BenchmarkCoherence regenerates the freshness-tax (TTL) experiment.
func BenchmarkCoherence(b *testing.B) { benchArtifact(b, "coherence") }

// BenchmarkWorstCase regenerates the §2 worst-case broadcast experiment
// (full replication drives effective space to aggregate/N).
func BenchmarkWorstCase(b *testing.B) { benchArtifact(b, "worstcase") }

// BenchmarkModelCheck regenerates the simulator-vs-analytical-model
// validation.
func BenchmarkModelCheck(b *testing.B) { benchArtifact(b, "model-check") }

// BenchmarkDigestIncremental measures keeping the advertised digest
// current via counting-filter updates: one op is one steady-state churn
// step (admit + evict) on an 8K-document resident set.
func BenchmarkDigestIncremental(b *testing.B) {
	benchkit.DigestMaintenance(true, 8192)(b)
}

// BenchmarkDigestRebuild is the delayed-rebuild baseline the incremental
// path replaced: mutations are free until 1% of the resident set churns,
// then a full URL scan rebuilds the filter.
func BenchmarkDigestRebuild(b *testing.B) {
	benchkit.DigestMaintenance(false, 8192)(b)
}

// BenchmarkDigestSync measures the wire cost of one delta refresh after
// 16 churn steps; delta_full_byte_ratio reports delta bytes against the
// full-filter transfer the delta replaces.
func BenchmarkDigestSync(b *testing.B) {
	benchkit.DigestSync(8192, 16)(b)
}

// BenchmarkTierDemote measures the disk-tier demotion path: one Put into
// a full memory tier per op, whose victim's checksummed body is written
// to the blob store.
func BenchmarkTierDemote(b *testing.B) {
	benchkit.TierDemote()(b)
}

// BenchmarkTierPromote measures the disk-tier promotion path: one Get of
// a disk-resident document per op — verified blob read, memory re-entry,
// and the displaced victim's demotion.
func BenchmarkTierPromote(b *testing.B) {
	benchkit.TierPromote()(b)
}

// BenchmarkMemoryHit and BenchmarkMemoryHitTiered are the tier refactor's
// hot-path guard: the same warm memory Get, direct vs through the
// TieredStore pass-through. bytes/op and allocs/op must be identical
// (cmd/benchjson -check-tier enforces it in CI).
func BenchmarkMemoryHit(b *testing.B)       { benchkit.MemoryHit(false)(b) }
func BenchmarkMemoryHitTiered(b *testing.B) { benchkit.MemoryHit(true)(b) }

// BenchmarkSimulatorThroughput measures raw trace-replay speed through a
// 4-cache EA group (requests per op reported as custom metric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	records := benchkit.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := group.New(group.Config{
			Caches:         4,
			AggregateBytes: 2 << 20,
			Scheme:         core.EA{},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(g, records, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(records)), "requests/op")
}

// BenchmarkCacheLRU measures the cache substrate's hot path: Put with
// eviction pressure plus Get.
func BenchmarkCacheLRU(b *testing.B) {
	benchCachePolicy(b, "lru")
}

// BenchmarkCacheLFU measures the heap-based LFU policy on the same path.
func BenchmarkCacheLFU(b *testing.B) {
	benchCachePolicy(b, "lfu")
}

// BenchmarkCacheGDS measures the GreedyDual-Size policy on the same path.
func BenchmarkCacheGDS(b *testing.B) {
	benchCachePolicy(b, "gds")
}

func benchCachePolicy(b *testing.B, policy string) {
	b.Helper()
	p, ok := cache.NewPolicy(policy)
	if !ok {
		b.Fatalf("unknown policy %q", policy)
	}
	s, err := cache.New(cache.Config{Capacity: 1 << 20, Policy: p})
	if err != nil {
		b.Fatal(err)
	}
	urls := make([]string, 4096)
	for i := range urls {
		urls[i] = "http://bench.example.edu/doc" + strconv.Itoa(i)
	}
	now := time.Unix(784900000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := urls[i%len(urls)]
		if _, ok := s.Get(u, now); !ok {
			if _, err := s.Put(cache.Document{URL: u, Size: 2048}, now); err != nil {
				b.Fatal(err)
			}
		}
		now = now.Add(time.Second)
	}
}

// BenchmarkICPMarshalParse measures one query encode/decode round trip.
func BenchmarkICPMarshalParse(b *testing.B) {
	m := icp.Query(7, "http://cs-www.example.edu/courses/cs101/assignment1.html")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := m.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := icp.Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHprotoRoundTrip measures an inter-proxy request head round trip
// with the expiration-age piggyback.
func BenchmarkHprotoRoundTrip(b *testing.B) {
	req := hproto.Request{
		URL:          "http://cs-www.example.edu/index.html",
		RequesterAge: 90 * time.Second,
		SizeHint:     4096,
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := hproto.WriteRequest(&buf, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZipfSample measures the popularity sampler the workload
// generator leans on.
func BenchmarkZipfSample(b *testing.B) {
	z, err := dist.NewZipf(46830, 0.75)
	if err != nil {
		b.Fatal(err)
	}
	r := dist.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Rank(r)
	}
}

// BenchmarkTraceGenerate measures synthetic workload generation at 1% of
// paper scale.
func BenchmarkTraceGenerate(b *testing.B) {
	cfg := trace.BULike().Scaled(0.01)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
