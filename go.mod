module eacache

go 1.22
