// Package trace provides the workload substrate: the request-record model,
// a canonical text format, a parser for Boston University client logs (the
// trace family the paper evaluates on), trace statistics, and a synthetic
// generator calibrated to the published BU trace shape for use when the
// original 1994-95 logs are not available.
package trace

import (
	"sort"
	"time"
)

// Record is one client request in a reference stream.
type Record struct {
	// Time is when the request was issued.
	Time time.Time
	// Client identifies the requesting user or user@machine; the
	// simulator routes each client to a fixed proxy in the group.
	Client string
	// URL identifies the requested document.
	URL string
	// Size is the document size in bytes. Zero means the original log
	// did not record a size; the paper (and CleanZeroSizes) substitutes
	// the 4KB average document size.
	Size int64
}

// DefaultDocSize is the 4KB average document size the paper substitutes for
// zero-size trace records.
const DefaultDocSize = 4096

// CleanZeroSizes returns records with every non-positive size replaced by
// def, mirroring the paper's trace preparation ("we made the size of each
// such record equal to average document size of 4K bytes"). The input slice
// is not modified.
func CleanZeroSizes(records []Record, def int64) []Record {
	out := make([]Record, len(records))
	copy(out, records)
	for i := range out {
		if out[i].Size <= 0 {
			out[i].Size = def
		}
	}
	return out
}

// SortByTime sorts records chronologically (stable, preserving log order of
// simultaneous requests).
func SortByTime(records []Record) {
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Time.Before(records[j].Time)
	})
}

// Sorted reports whether records are in chronological order.
func Sorted(records []Record) bool {
	for i := 1; i < len(records); i++ {
		if records[i].Time.Before(records[i-1].Time) {
			return false
		}
	}
	return true
}
