package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Popularity summarises the document-popularity distribution of a reference
// stream: how concentrated the head is and how Zipf-like the body looks.
// These are the workload properties the paper's results hinge on, so the
// generator's output is checked against them (and against published
// web-trace measurements: Breslau et al. report alpha 0.64-0.83).
type Popularity struct {
	// Docs is the number of distinct documents.
	Docs int
	// TopShare[k] is the fraction of all requests going to the k most
	// popular documents, for the ks in TopKs.
	TopKs    []int
	TopShare []float64
	// Alpha is the least-squares Zipf exponent fitted to the log-log
	// rank/frequency curve (head and singleton tail trimmed).
	Alpha float64
	// SingleUse is the fraction of distinct documents requested exactly
	// once ("one-timers", a classic proxy-trace statistic).
	SingleUse float64
}

// ComputePopularity analyses the reference stream's popularity structure.
func ComputePopularity(records []Record) Popularity {
	counts := make(map[string]int, len(records)/4)
	for _, r := range records {
		counts[r.URL]++
	}
	freqs := make([]int, 0, len(counts))
	singles := 0
	for _, c := range counts {
		freqs = append(freqs, c)
		if c == 1 {
			singles++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))

	p := Popularity{
		Docs:  len(freqs),
		TopKs: []int{1, 10, 100, 1000},
	}
	if len(freqs) == 0 {
		return p
	}
	p.SingleUse = float64(singles) / float64(len(freqs))

	total := 0
	for _, c := range freqs {
		total += c
	}
	acc := 0
	ki := 0
	for i, c := range freqs {
		acc += c
		for ki < len(p.TopKs) && i+1 == p.TopKs[ki] {
			p.TopShare = append(p.TopShare, float64(acc)/float64(total))
			ki++
		}
	}
	for ki < len(p.TopKs) {
		p.TopShare = append(p.TopShare, 1)
		ki++
	}
	p.Alpha = fitZipfAlpha(freqs)
	return p
}

// fitZipfAlpha fits frequency ~ C / rank^alpha by least squares in log-log
// space, over the mid-section of the curve (the first few ranks and the
// quantised singleton tail both bias the fit).
func fitZipfAlpha(freqs []int) float64 {
	lo := 3
	hi := len(freqs)
	for hi > lo && freqs[hi-1] <= 2 {
		hi--
	}
	if hi-lo < 10 {
		lo, hi = 0, len(freqs)
	}
	if hi-lo < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(hi - lo)
	for i := lo; i < hi; i++ {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(freqs[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope
}

// String implements fmt.Stringer.
func (p Popularity) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d docs, alpha~%.2f, one-timers %.1f%%, head share:", p.Docs, p.Alpha, 100*p.SingleUse)
	for i, k := range p.TopKs {
		if i < len(p.TopShare) {
			fmt.Fprintf(&b, " top%d=%.1f%%", k, 100*p.TopShare[i])
		}
	}
	return b.String()
}
