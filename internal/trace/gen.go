package trace

import (
	"fmt"
	"time"

	"eacache/internal/dist"
)

// GenConfig parameterises the synthetic workload generator. The generator
// stands in for the Boston University proxy logs the paper uses (recorded
// November 1994 – February 1995 and no longer distributed): it reproduces
// the published trace shape — request and unique-document counts, Zipf-like
// popularity, heavy-tailed sizes around a 4KB mean, per-user sessions —
// which are the only properties the paper's results depend on.
type GenConfig struct {
	// Requests is the number of records to emit.
	Requests int
	// UniqueDocs is the catalogue size (the number of distinct URLs that
	// can be referenced).
	UniqueDocs int
	// ZipfAlpha is the popularity skew; web traces measure 0.6-0.9.
	ZipfAlpha float64

	// HotDocs and HotWeight model the ultra-hot head of mid-90s client
	// traces: site-wide inline images (logos, bullets, backgrounds) and
	// home pages that every page view drags along. Each inline-object
	// request draws from the HotDocs most popular documents with
	// probability HotWeight. This head is requested at every proxy
	// within minutes — the uncontrolled replication the EA scheme
	// targets lives here.
	HotDocs   int
	HotWeight float64

	// InlinePerView is the mean number of inline objects fetched after
	// each page (geometrically distributed). Mosaic-era pages embedded a
	// few images, fetched within seconds of the page itself; the page
	// view is the burst unit of the reference stream.
	InlinePerView float64

	// MeanDocSize is the mean document size in bytes (paper: 4KB).
	MeanDocSize int64
	// MaxDocSize bounds the heavy-tailed size distribution.
	MaxDocSize int64
	// SizeAlpha is the bounded-Pareto shape of the size distribution.
	SizeAlpha float64
	// ZeroSizeFraction of records are emitted with size 0, mimicking the
	// uninstrumented records in the original logs that the paper cleans
	// to 4KB.
	ZeroSizeFraction float64

	// Users is the number of distinct clients (paper: 591).
	Users int
	// Sessions is the total number of user sessions (paper: ~4700).
	Sessions int
	// SessionLength is the mean active length of one session.
	SessionLength time.Duration

	// SelfAffinity is the probability that a request re-references one of
	// the user's recently fetched documents instead of drawing from the
	// global popularity distribution; it models per-user temporal
	// locality (browser revisits), which client traces show strongly.
	SelfAffinity float64
	// HistoryDepth is how many recent distinct documents per user are
	// candidates for re-reference.
	HistoryDepth int

	// CohortFraction is the fraction of sessions that belong to cohorts:
	// groups of users browsing the same pages at the same time, like the
	// lab sections behind the BU traces (a class of students following
	// the same assignment links within minutes of each other). Cohort
	// members are distinct users — so they sit behind different proxies —
	// and their shared page stream is what makes the same document be
	// requested at several caches within one cache-residency window even
	// when caches are tiny. Ad-hoc placement replicates the whole shared
	// stream at every member's proxy; controlling that replication is
	// where the EA scheme's small-cache gains come from.
	CohortFraction float64
	// CohortSize is the number of sessions per cohort.
	CohortSize int
	// CohortSpread is how far apart cohort members start (students
	// trickle into the lab over this window). Zero defaults to 5
	// minutes.
	CohortSpread time.Duration

	// UserActivityAlpha is the Zipf exponent of per-user activity: a few
	// heavy users generate many sessions while most users generate few,
	// as client-trace studies report. This skew is what creates the
	// persistent per-proxy disk-contention differences the EA scheme's
	// expiration-age signal measures. 0 means uniform activity.
	UserActivityAlpha float64

	// DiurnalStrength in [0,1) concentrates session starts into campus
	// daytime hours (0 = uniform over the span). The BU logs were
	// collected in university labs, so activity clusters into busy
	// daytime periods; this burstiness is what makes documents be
	// referenced at several proxies within one cache-residency window —
	// the replication the EA scheme exists to control.
	DiurnalStrength float64
	// WeekendFactor in (0,1] scales session intensity on Saturdays and
	// Sundays (1 = no weekly pattern).
	WeekendFactor float64

	// Start is the timestamp of the beginning of the trace.
	Start time.Time
	// Span is the period the trace covers (paper: ~3.5 months).
	Span time.Duration

	// Seed makes generation deterministic.
	Seed uint64
}

// BULike returns a configuration calibrated to the published statistics of
// the Boston University traces used in the paper: 575,775 requests over
// 46,830 unique documents from 591 users across roughly 4,700 sessions,
// with a 4KB mean document size, spanning mid-November 1994 to the end of
// February 1995.
func BULike() GenConfig {
	return GenConfig{
		Requests:          575775,
		UniqueDocs:        46830,
		ZipfAlpha:         0.75,
		HotDocs:           24,
		HotWeight:         0.3,
		InlinePerView:     2.0,
		MeanDocSize:       DefaultDocSize,
		MaxDocSize:        8 << 20,
		SizeAlpha:         1.3,
		ZeroSizeFraction:  0.05,
		Users:             591,
		Sessions:          4700,
		SessionLength:     30 * time.Minute,
		SelfAffinity:      0.3,
		HistoryDepth:      16,
		CohortFraction:    0.5,
		CohortSize:        12,
		CohortSpread:      30 * time.Minute,
		UserActivityAlpha: 0.8,
		DiurnalStrength:   0.85,
		WeekendFactor:     0.3,
		Start:             time.Date(1994, time.November, 15, 0, 0, 0, 0, time.UTC),
		Span:              105 * 24 * time.Hour,
		Seed:              1,
	}
}

// Scaled returns a copy of c with request, catalogue, user and session
// counts multiplied by f (minimum 1 each), for fast tests and benchmarks
// that keep the workload's shape.
func (c GenConfig) Scaled(f float64) GenConfig {
	scale := func(n int) int {
		m := int(float64(n) * f)
		if m < 1 {
			return 1
		}
		return m
	}
	c.Requests = scale(c.Requests)
	c.UniqueDocs = scale(c.UniqueDocs)
	c.Users = scale(c.Users)
	c.Sessions = scale(c.Sessions)
	return c
}

// Validate reports the first configuration problem.
func (c GenConfig) Validate() error {
	switch {
	case c.Requests <= 0:
		return fmt.Errorf("trace: Requests must be positive, got %d", c.Requests)
	case c.UniqueDocs <= 0:
		return fmt.Errorf("trace: UniqueDocs must be positive, got %d", c.UniqueDocs)
	case c.ZipfAlpha < 0:
		return fmt.Errorf("trace: ZipfAlpha must be >= 0, got %v", c.ZipfAlpha)
	case c.HotDocs < 0 || c.HotDocs > c.UniqueDocs:
		return fmt.Errorf("trace: HotDocs must be in [0,UniqueDocs], got %d", c.HotDocs)
	case c.HotWeight < 0 || c.HotWeight >= 1:
		return fmt.Errorf("trace: HotWeight must be in [0,1), got %v", c.HotWeight)
	case c.HotWeight > 0 && c.HotDocs == 0:
		return fmt.Errorf("trace: HotWeight %v needs HotDocs > 0", c.HotWeight)
	case c.InlinePerView < 0:
		return fmt.Errorf("trace: InlinePerView must be >= 0, got %v", c.InlinePerView)
	case c.MeanDocSize <= 0:
		return fmt.Errorf("trace: MeanDocSize must be positive, got %d", c.MeanDocSize)
	case c.MaxDocSize <= c.MeanDocSize:
		return fmt.Errorf("trace: MaxDocSize must exceed MeanDocSize, got %d <= %d", c.MaxDocSize, c.MeanDocSize)
	case c.SizeAlpha <= 0:
		return fmt.Errorf("trace: SizeAlpha must be positive, got %v", c.SizeAlpha)
	case c.ZeroSizeFraction < 0 || c.ZeroSizeFraction >= 1:
		return fmt.Errorf("trace: ZeroSizeFraction must be in [0,1), got %v", c.ZeroSizeFraction)
	case c.Users <= 0:
		return fmt.Errorf("trace: Users must be positive, got %d", c.Users)
	case c.Sessions <= 0:
		return fmt.Errorf("trace: Sessions must be positive, got %d", c.Sessions)
	case c.SessionLength <= 0:
		return fmt.Errorf("trace: SessionLength must be positive, got %v", c.SessionLength)
	case c.SelfAffinity < 0 || c.SelfAffinity >= 1:
		return fmt.Errorf("trace: SelfAffinity must be in [0,1), got %v", c.SelfAffinity)
	case c.HistoryDepth < 0:
		return fmt.Errorf("trace: HistoryDepth must be >= 0, got %d", c.HistoryDepth)
	case c.UserActivityAlpha < 0:
		return fmt.Errorf("trace: UserActivityAlpha must be >= 0, got %v", c.UserActivityAlpha)
	case c.CohortFraction < 0 || c.CohortFraction > 1:
		return fmt.Errorf("trace: CohortFraction must be in [0,1], got %v", c.CohortFraction)
	case c.CohortFraction > 0 && c.CohortSize < 2:
		return fmt.Errorf("trace: CohortFraction %v needs CohortSize >= 2, got %d", c.CohortFraction, c.CohortSize)
	case c.DiurnalStrength < 0 || c.DiurnalStrength >= 1:
		return fmt.Errorf("trace: DiurnalStrength must be in [0,1), got %v", c.DiurnalStrength)
	case c.WeekendFactor < 0 || c.WeekendFactor > 1:
		return fmt.Errorf("trace: WeekendFactor must be in [0,1], got %v", c.WeekendFactor)
	case c.Span <= 0:
		return fmt.Errorf("trace: Span must be positive, got %v", c.Span)
	}
	return nil
}

// Generate produces a chronologically sorted synthetic reference stream.
func Generate(cfg GenConfig) ([]Record, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := dist.NewRNG(cfg.Seed)

	catalog, err := buildCatalog(cfg, rng.Split())
	if err != nil {
		return nil, err
	}
	zipf, err := dist.NewZipf(cfg.UniqueDocs, cfg.ZipfAlpha)
	if err != nil {
		return nil, err
	}
	userZipf, err := dist.NewZipf(cfg.Users, cfg.UserActivityAlpha)
	if err != nil {
		return nil, err
	}
	// Decouple a user's id from their activity rank so heavy users spread
	// across proxies rather than clustering on low ids.
	userPerm := make([]int, cfg.Users)
	for i := range userPerm {
		userPerm[i] = i
	}
	rng.Shuffle(cfg.Users, func(i, j int) { userPerm[i], userPerm[j] = userPerm[j], userPerm[i] })

	records := make([]Record, 0, cfg.Requests)
	histories := make([]*history, cfg.Users)
	for i := range histories {
		histories[i] = newHistory(cfg.HistoryDepth)
	}

	// Each session is a sequence of page views: a page request followed
	// by a short burst of inline-object requests, then a think pause
	// before the next page. Think times are sized so a session's views
	// span SessionLength on average.
	base := cfg.Requests / cfg.Sessions
	extra := cfg.Requests % cfg.Sessions
	viewsPerSession := float64(base) / (1 + cfg.InlinePerView)
	if viewsPerSession < 1 {
		viewsPerSession = 1
	}
	think, err := dist.NewExponential(cfg.SessionLength.Seconds() / viewsPerSession)
	if err != nil {
		return nil, err
	}
	inlineGap, err := dist.NewExponential(0.8)
	if err != nil {
		return nil, err
	}

	gen := &generator{
		cfg:       cfg,
		rng:       rng,
		zipf:      zipf,
		catalog:   catalog,
		histories: histories,
		think:     think,
		inlineGap: inlineGap,
	}

	// The first cohortSessions sessions are grouped into cohorts of
	// CohortSize members browsing a shared page stream; the rest are
	// independent solo sessions.
	sessionLen := func(s int) int {
		if s < extra {
			return base + 1
		}
		return base
	}
	numCohorts := 0
	if cfg.CohortSize >= 2 {
		numCohorts = int(cfg.CohortFraction*float64(cfg.Sessions)) / cfg.CohortSize
	}
	spread := cfg.CohortSpread
	if spread <= 0 {
		spread = 5 * time.Minute
	}
	s := 0
	for c := 0; c < numCohorts; c++ {
		maxN := sessionLen(s) // sessions are served longest-first
		master := gen.masterStream(maxN)
		start := sampleSessionStart(cfg, rng)
		for m := 0; m < cfg.CohortSize; m++ {
			user := userPerm[userZipf.Rank(rng)]
			jitter := time.Duration(rng.Float64() * float64(spread))
			records = gen.emitSession(records, user, start.Add(jitter), sessionLen(s), master)
			s++
		}
	}
	for ; s < cfg.Sessions; s++ {
		n := sessionLen(s)
		if n == 0 {
			continue
		}
		user := userPerm[userZipf.Rank(rng)]
		records = gen.emitSession(records, user, sampleSessionStart(cfg, rng), n, nil)
	}

	SortByTime(records)
	return records, nil
}

// generator carries the shared sampling state of one Generate call.
type generator struct {
	cfg       GenConfig
	rng       *dist.RNG
	zipf      *dist.Zipf
	catalog   []int64
	histories []*history
	think     *dist.Exponential
	inlineGap *dist.Exponential
}

// step is one position of a cohort's shared page stream.
type step struct {
	doc    int
	inline bool
}

// masterStream generates the shared reference sequence of a cohort: the
// pages the whole lab section walks through, with their inline objects. No
// per-user history applies — the stream is the assignment, not a browse.
func (g *generator) masterStream(n int) []step {
	master := make([]step, n)
	inlineLeft := 0
	for i := range master {
		if inlineLeft > 0 {
			inlineLeft--
			master[i] = step{doc: pickInline(g.cfg, g.rng, g.zipf), inline: true}
			continue
		}
		master[i] = step{doc: g.zipf.Rank(g.rng)}
		inlineLeft = sampleGeometric(g.rng, g.cfg.InlinePerView)
	}
	return master
}

// emitSession appends one session's records: either a solo browse (master
// nil — pages drawn per user with self-affinity) or a cohort member's walk
// of the shared master stream with individual timing.
func (g *generator) emitSession(records []Record, user int, start time.Time, n int, master []step) []Record {
	h := g.histories[user]
	t := start
	inlineLeft := 0
	for i := 0; i < n; i++ {
		var (
			docID  int
			inline bool
		)
		if master != nil {
			docID, inline = master[i].doc, master[i].inline
		} else if inlineLeft > 0 {
			inlineLeft--
			docID, inline = pickInline(g.cfg, g.rng, g.zipf), true
		} else {
			docID = pickDoc(g.cfg, g.rng, g.zipf, h)
			inlineLeft = sampleGeometric(g.rng, g.cfg.InlinePerView)
		}
		if inline {
			t = t.Add(time.Duration((0.2 + g.inlineGap.Sample(g.rng)) * float64(time.Second)))
		} else {
			t = t.Add(time.Duration(g.think.Sample(g.rng) * float64(time.Second)))
		}
		h.add(docID)
		size := g.catalog[docID]
		if g.cfg.ZeroSizeFraction > 0 && g.rng.Float64() < g.cfg.ZeroSizeFraction {
			size = 0
		}
		records = append(records, Record{
			Time:   t,
			Client: fmt.Sprintf("u%04d", user),
			URL:    docURL(docID),
			Size:   size,
		})
	}
	return records
}

// buildCatalog draws a size for every document. Document IDs are already in
// popularity-rank order (0 = most popular); URL naming decouples rank from
// name via a deterministic shuffle so URL order carries no information.
func buildCatalog(cfg GenConfig, rng *dist.RNG) ([]int64, error) {
	sizes, err := dist.ParetoWithMean(float64(cfg.MeanDocSize), float64(cfg.MaxDocSize), cfg.SizeAlpha)
	if err != nil {
		return nil, err
	}
	catalog := make([]int64, cfg.UniqueDocs)
	for i := range catalog {
		catalog[i] = int64(sizes.Sample(rng))
		if catalog[i] < 1 {
			catalog[i] = 1
		}
		// The ultra-hot head is made of small site-wide images (logos,
		// bullets); cap them at the 4KB mean so their popularity, not
		// their bulk, is what stresses the caches.
		if i < cfg.HotDocs && catalog[i] > cfg.MeanDocSize {
			catalog[i] = cfg.MeanDocSize
		}
	}
	return catalog, nil
}

// sampleSessionStart draws a session start time, concentrated into weekday
// daytime hours by rejection sampling against the diurnal/weekly intensity
// profile. With DiurnalStrength 0 and WeekendFactor 1 it is uniform.
func sampleSessionStart(cfg GenConfig, rng *dist.RNG) time.Time {
	for {
		t := cfg.Start.Add(time.Duration(rng.Float64() * float64(cfg.Span)))
		if rng.Float64() <= sessionIntensity(cfg, t) {
			return t
		}
	}
}

// sessionIntensity returns the relative session arrival intensity at t,
// normalised to (0, 1] so it can gate rejection sampling directly.
func sessionIntensity(cfg GenConfig, t time.Time) float64 {
	w := 1.0
	if cfg.DiurnalStrength > 0 {
		// A campus-lab day: quiet overnight, ramping from 08:00 to an
		// afternoon peak around 14:00, tailing off in the evening.
		hour := float64(t.Hour()) + float64(t.Minute())/60
		shape := 0.0
		switch {
		case hour >= 8 && hour < 14:
			shape = (hour - 8) / 6
		case hour >= 14 && hour < 23:
			shape = 1 - (hour-14)/9
		}
		w *= (1 - cfg.DiurnalStrength) + cfg.DiurnalStrength*shape
	}
	if wd := t.Weekday(); wd == time.Saturday || wd == time.Sunday {
		w *= cfg.WeekendFactor
	}
	return w
}

// pickDoc selects a page document: a revisit of the user's recent history
// with probability SelfAffinity, otherwise a draw from the global
// popularity distribution.
func pickDoc(cfg GenConfig, rng *dist.RNG, zipf *dist.Zipf, h *history) int {
	if cfg.SelfAffinity > 0 && h.len() > 0 && rng.Float64() < cfg.SelfAffinity {
		return h.pick(rng)
	}
	return zipf.Rank(rng)
}

// pickInline selects an inline object of the current page view: one of the
// ultra-hot site-wide images with probability HotWeight, otherwise an
// ordinary document from the popularity distribution.
func pickInline(cfg GenConfig, rng *dist.RNG, zipf *dist.Zipf) int {
	if cfg.HotWeight > 0 && rng.Float64() < cfg.HotWeight {
		return rng.Intn(cfg.HotDocs)
	}
	return zipf.Rank(rng)
}

// sampleGeometric draws a geometric count with the given mean, capped so a
// single page view cannot dominate a session.
func sampleGeometric(rng *dist.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := mean / (1 + mean)
	n := 0
	for n < 8 && rng.Float64() < p {
		n++
	}
	return n
}

func docURL(id int) string {
	// ~300 origin servers, matching the multi-server spread of real logs.
	return fmt.Sprintf("http://origin%03d.example.edu/doc%06d.html", id%311, id)
}

// history is a small ring of a user's recently referenced documents.
type history struct {
	ids []int
	pos int
	n   int
}

func newHistory(depth int) *history {
	return &history{ids: make([]int, max(depth, 1))}
}

func (h *history) add(id int) {
	h.ids[h.pos] = id
	h.pos = (h.pos + 1) % len(h.ids)
	if h.n < len(h.ids) {
		h.n++
	}
}

func (h *history) len() int { return h.n }

func (h *history) pick(r *dist.RNG) int {
	return h.ids[r.Intn(h.n)]
}
