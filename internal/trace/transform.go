package trace

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"time"
)

// Filter returns the records satisfying keep, preserving order. The input
// is not modified.
func Filter(records []Record, keep func(Record) bool) []Record {
	var out []Record
	for _, r := range records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// TimeSlice returns the records with Time in [from, to), preserving order —
// the standard way to carve a busy day or week out of a long trace.
func TimeSlice(records []Record, from, to time.Time) []Record {
	return Filter(records, func(r Record) bool {
		return !r.Time.Before(from) && r.Time.Before(to)
	})
}

// SelectClients returns the records issued by the given clients, preserving
// order — the per-proxy partition of a shared trace.
func SelectClients(records []Record, clients ...string) []Record {
	set := make(map[string]struct{}, len(clients))
	for _, c := range clients {
		set[c] = struct{}{}
	}
	return Filter(records, func(r Record) bool {
		_, ok := set[r.Client]
		return ok
	})
}

// Merge interleaves chronologically sorted traces into one sorted trace
// (k-way merge; ties keep the earlier input's records first). Unsorted
// inputs are rejected.
func Merge(traces ...[]Record) ([]Record, error) {
	total := 0
	for i, tr := range traces {
		if !Sorted(tr) {
			return nil, fmt.Errorf("trace: Merge input %d is not sorted", i)
		}
		total += len(tr)
	}
	h := make(mergeHeap, 0, len(traces))
	for i, tr := range traces {
		if len(tr) > 0 {
			h = append(h, mergeCursor{records: tr, src: i})
		}
	}
	heap.Init(&h)

	out := make([]Record, 0, total)
	for h.Len() > 0 {
		cur := &h[0]
		out = append(out, cur.records[cur.pos])
		cur.pos++
		if cur.pos == len(cur.records) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out, nil
}

type mergeCursor struct {
	records []Record
	pos     int
	src     int
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int { return len(h) }

func (h mergeHeap) Less(i, j int) bool {
	ti, tj := h[i].records[h[i].pos].Time, h[j].records[h[j].pos].Time
	if !ti.Equal(tj) {
		return ti.Before(tj)
	}
	return h[i].src < h[j].src
}

func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *mergeHeap) Push(x any) {
	c, ok := x.(mergeCursor)
	if ok {
		*h = append(*h, c)
	}
}

func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// WriteSquid serialises records in Squid's native access.log format, so a
// synthetic workload can drive any tool that consumes Squid logs (including
// this repository's own ReadSquid). Outcome fields that a trace does not
// carry are written as TCP_MISS/200 direct-to-origin GETs.
func WriteSquid(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		_, err := fmt.Fprintf(bw, "%d.%03d %6d %s TCP_MISS/200 %d GET %s - DIRECT/origin -\n",
			r.Time.Unix(), r.Time.Nanosecond()/1e6, 0, r.Client, r.Size, r.URL)
		if err != nil {
			return fmt.Errorf("trace: write squid: %w", err)
		}
	}
	return bw.Flush()
}
