package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ts(sec int64, nsec int) time.Time { return time.Unix(sec, int64(nsec)).UTC() }

func TestWriteReadRoundTrip(t *testing.T) {
	records := []Record{
		{Time: ts(784900000, 0), Client: "u01@alpha", URL: "http://a.example.edu/", Size: 2048},
		{Time: ts(784900001, 500000000), Client: "u02", URL: "http://b.example.edu/x.gif", Size: 0},
		{Time: ts(784900002, 123456000), Client: "u01@alpha", URL: "http://a.example.edu/y.html", Size: 4096},
	}
	var buf bytes.Buffer
	if err := Write(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, records)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n784900000 u1 http://x/ 10\n   \n# more\n784900001 u2 http://y/ 20\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name string
		line string
	}{
		{"too few fields", "784900000 u1 http://x/"},
		{"too many fields", "784900000 u1 http://x/ 10 extra"},
		{"bad timestamp", "notatime u1 http://x/ 10"},
		{"bad size", "784900000 u1 http://x/ big"},
		{"negative size", "784900000 u1 http://x/ -5"},
		{"bad fraction", "784900000. u1 http://x/ 10"},
		{"fraction too long", "784900000.1234567890 u1 http://x/ 10"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.line + "\n")); err == nil {
				t.Fatalf("Read(%q) succeeded", tt.line)
			}
		})
	}
}

func TestParseTimestamp(t *testing.T) {
	tests := []struct {
		in   string
		want time.Time
	}{
		{"784900000", ts(784900000, 0)},
		{"784900000.5", ts(784900000, 500000000)},
		{"784900000.000001", ts(784900000, 1000)},
		{"784900000.123456789", ts(784900000, 123456789)},
	}
	for _, tt := range tests {
		got, err := ParseTimestamp(tt.in)
		if err != nil {
			t.Fatalf("ParseTimestamp(%q): %v", tt.in, err)
		}
		if !got.Equal(tt.want) {
			t.Fatalf("ParseTimestamp(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestQuickFormatRoundTrip(t *testing.T) {
	f := func(sec uint32, micro uint32, client, urlSuffix uint16, size uint32) bool {
		rec := Record{
			Time:   time.Unix(int64(sec), int64(micro%1000000)*1000).UTC(),
			Client: "c" + itoa(int(client)),
			URL:    "http://h.example.edu/d" + itoa(int(urlSuffix)),
			Size:   int64(size),
		}
		var buf bytes.Buffer
		if err := Write(&buf, []Record{rec}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return reflect.DeepEqual(got[0], rec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestReadBU(t *testing.T) {
	in := strings.Join([]string{
		"# BU condensed log",
		"beaker 784900000 user3 http://cs-www.bu.edu/ 2009 0.518815",
		"okeefe 784900010.25 user7 http://cs-www.bu.edu/lib/pics/bu-logo.gif 1804 0.31",
		"beaker 784900020 user3 http://cs-www.bu.edu/courses/ 0 0.1",
		"corrupt line without enough",
		"beaker notatime user3 http://x/ 10 0.1",
		"beaker 784900030 user3 http://y/ -4 0.1",
	}, "\n")
	records, skipped, err := ReadBU(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3", len(records))
	}
	want := Record{
		Time:   ts(784900000, 0),
		Client: "user3@beaker",
		URL:    "http://cs-www.bu.edu/",
		Size:   2009,
	}
	if records[0] != want {
		t.Fatalf("record[0] = %+v, want %+v", records[0], want)
	}
	if records[2].Size != 0 {
		t.Fatalf("zero-size record mangled: %+v", records[2])
	}
}

func TestCleanZeroSizes(t *testing.T) {
	in := []Record{{URL: "a", Size: 0}, {URL: "b", Size: 100}}
	out := CleanZeroSizes(in, 4096)
	if out[0].Size != 4096 || out[1].Size != 100 {
		t.Fatalf("CleanZeroSizes = %+v", out)
	}
	if in[0].Size != 0 {
		t.Fatal("input mutated")
	}
}

func TestSortAndSorted(t *testing.T) {
	recs := []Record{
		{Time: ts(30, 0), URL: "c"},
		{Time: ts(10, 0), URL: "a"},
		{Time: ts(20, 0), URL: "b"},
		{Time: ts(10, 0), URL: "a2"}, // equal time: stable order preserved
	}
	if Sorted(recs) {
		t.Fatal("unsorted reported as sorted")
	}
	SortByTime(recs)
	if !Sorted(recs) {
		t.Fatal("sorted reported as unsorted")
	}
	if recs[0].URL != "a" || recs[1].URL != "a2" {
		t.Fatalf("stability violated: %v, %v", recs[0].URL, recs[1].URL)
	}
}

func TestComputeStats(t *testing.T) {
	recs := []Record{
		{Time: ts(100, 0), Client: "u1", URL: "a", Size: 10},
		{Time: ts(200, 0), Client: "u2", URL: "a", Size: 10},
		{Time: ts(300, 0), Client: "u1", URL: "b", Size: 0},
	}
	s := ComputeStats(recs)
	if s.Requests != 3 || s.UniqueDocs != 2 || s.UniqueClients != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalBytes != 20 || s.UniqueBytes != 10 || s.ZeroSize != 1 {
		t.Fatalf("byte stats = %+v", s)
	}
	if s.Span() != 200*time.Second {
		t.Fatalf("Span = %v", s.Span())
	}
	if s.MeanSize() != 20.0/3 {
		t.Fatalf("MeanSize = %v", s.MeanSize())
	}
	if ComputeStats(nil).Span() != 0 {
		t.Fatal("empty stats span")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
