package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadBU parses Boston University client logs (Cunha, Bestavros & Crovella,
// "Characteristics of WWW Client-based Traces", 1995) — the trace family
// the paper's evaluation uses. Each line of the condensed BU log is:
//
//	<machine> <timestamp[.fraction]> <user> <url> <size-bytes> [<fetch-seconds>]
//
// The client identity is "<user>@<machine>", so a user keeps hitting the
// same proxy when the simulator routes clients by hash, just as a real
// browser is configured against one proxy. Records with a missing or zero
// size are kept with Size 0; apply CleanZeroSizes to substitute the 4KB
// average size the paper uses.
//
// Lines that do not parse are skipped and counted; the count is returned so
// callers can report log quality without failing on the odd corrupt line,
// which real 1994-era logs contain.
func ReadBU(r io.Reader) (records []Record, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, ok := parseBULine(line)
		if !ok {
			skipped++
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("trace: read bu log: %w", err)
	}
	return records, skipped, nil
}

func parseBULine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 5 {
		return Record{}, false
	}
	machine := fields[0]
	t, err := ParseTimestamp(fields[1])
	if err != nil {
		return Record{}, false
	}
	user := fields[2]
	url := fields[3]
	size, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil || size < 0 {
		return Record{}, false
	}
	return Record{
		Time:   t,
		Client: user + "@" + machine,
		URL:    url,
		Size:   size,
	}, true
}
