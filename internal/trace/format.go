package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The canonical trace format is one request per line:
//
//	<unix-seconds[.fraction]> <client> <url> <size-bytes>
//
// Lines starting with '#' and blank lines are ignored. It is the output of
// cmd/tracegen and the input of cmd/cachesim.

// Write serialises records in the canonical format.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		sec := r.Time.Unix()
		micro := r.Time.Nanosecond() / 1000
		var err error
		if micro == 0 {
			_, err = fmt.Fprintf(bw, "%d %s %s %d\n", sec, r.Client, r.URL, r.Size)
		} else {
			_, err = fmt.Fprintf(bw, "%d.%06d %s %s %d\n", sec, micro, r.Client, r.URL, r.Size)
		}
		if err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return bw.Flush()
}

// Read parses records in the canonical format.
func Read(r io.Reader) ([]Record, error) {
	var records []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseCanonicalLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return records, nil
}

func parseCanonicalLine(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Record{}, fmt.Errorf("expected 4 fields, got %d", len(fields))
	}
	t, err := ParseTimestamp(fields[0])
	if err != nil {
		return Record{}, err
	}
	size, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad size %q: %w", fields[3], err)
	}
	if size < 0 {
		return Record{}, fmt.Errorf("negative size %d", size)
	}
	return Record{Time: t, Client: fields[1], URL: fields[2], Size: size}, nil
}

// ParseTimestamp parses a unix timestamp with optional fractional seconds.
func ParseTimestamp(s string) (time.Time, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		sec, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad timestamp %q: %w", s, err)
		}
		return time.Unix(sec, 0).UTC(), nil
	}
	sec, err := strconv.ParseInt(s[:dot], 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad timestamp %q: %w", s, err)
	}
	frac := s[dot+1:]
	if frac == "" || len(frac) > 9 {
		return time.Time{}, fmt.Errorf("bad timestamp fraction %q", s)
	}
	nanos, err := strconv.ParseInt(frac+strings.Repeat("0", 9-len(frac)), 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad timestamp fraction %q: %w", s, err)
	}
	return time.Unix(sec, nanos).UTC(), nil
}
