package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func mkRec(sec int64, client, url string) Record {
	return Record{Time: ts(sec, 0), Client: client, URL: url, Size: 100}
}

func TestFilterAndTimeSlice(t *testing.T) {
	records := []Record{
		mkRec(10, "a", "u1"),
		mkRec(20, "b", "u2"),
		mkRec(30, "a", "u3"),
		mkRec(40, "c", "u4"),
	}
	got := Filter(records, func(r Record) bool { return r.Client == "a" })
	if len(got) != 2 || got[0].URL != "u1" || got[1].URL != "u3" {
		t.Fatalf("Filter = %+v", got)
	}

	sliced := TimeSlice(records, ts(20, 0), ts(40, 0))
	if len(sliced) != 2 || sliced[0].URL != "u2" || sliced[1].URL != "u3" {
		t.Fatalf("TimeSlice = %+v", sliced)
	}
	if len(records) != 4 {
		t.Fatal("input mutated")
	}
}

func TestSelectClients(t *testing.T) {
	records := []Record{mkRec(1, "a", "u1"), mkRec(2, "b", "u2"), mkRec(3, "c", "u3")}
	got := SelectClients(records, "a", "c")
	if len(got) != 2 || got[0].Client != "a" || got[1].Client != "c" {
		t.Fatalf("SelectClients = %+v", got)
	}
	if len(SelectClients(records)) != 0 {
		t.Fatal("empty client set selected records")
	}
}

func TestMerge(t *testing.T) {
	a := []Record{mkRec(1, "a", "u1"), mkRec(5, "a", "u2"), mkRec(9, "a", "u3")}
	b := []Record{mkRec(2, "b", "u4"), mkRec(5, "b", "u5")}
	c := []Record{}
	got, err := Merge(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("merged %d records", len(got))
	}
	if !Sorted(got) {
		t.Fatalf("merge not sorted: %+v", got)
	}
	// Tie at t=5: input order (a before b) preserved.
	if got[2].URL != "u2" || got[3].URL != "u5" {
		t.Fatalf("tie order: %+v", got)
	}

	if _, err := Merge([]Record{mkRec(5, "x", "u"), mkRec(1, "x", "u")}); err == nil {
		t.Fatal("unsorted input accepted")
	}
}

func TestQuickMergeMatchesSort(t *testing.T) {
	f := func(times1, times2 []uint16) bool {
		mk := func(times []uint16, client string) []Record {
			out := make([]Record, len(times))
			for i, s := range times {
				out[i] = mkRec(int64(s), client, "u")
			}
			SortByTime(out)
			return out
		}
		a, b := mk(times1, "a"), mk(times2, "b")
		merged, err := Merge(a, b)
		if err != nil {
			return false
		}
		want := append(append([]Record{}, a...), b...)
		SortByTime(want)
		if len(merged) != len(want) {
			return false
		}
		for i := range merged {
			if !merged[i].Time.Equal(want[i].Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSquidRoundTrip(t *testing.T) {
	records := []Record{
		{Time: ts(784900000, 123000000), Client: "10.0.0.7", URL: "http://cs-www.bu.edu/", Size: 2314},
		{Time: ts(784900002, 0), Client: "10.0.0.9", URL: "http://cs-www.bu.edu/logo.gif", Size: 1804},
	}
	var buf bytes.Buffer
	if err := WriteSquid(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadSquid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("own output skipped %d lines", skipped)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, records)
	}
}

func TestWriteSquidDrivesSimulatorInput(t *testing.T) {
	cfg := BULike().Scaled(0.001)
	cfg.ZeroSizeFraction = 0
	records, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSquid(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadSquid(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("squid round trip: %v, %d skipped", err, skipped)
	}
	if len(got) != len(records) {
		t.Fatalf("records = %d, want %d", len(got), len(records))
	}
}
