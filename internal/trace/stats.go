package trace

import (
	"fmt"
	"strings"
	"time"
)

// Stats summarises a reference stream. It is used to verify that synthetic
// traces match the published shape of the BU logs and to describe inputs in
// experiment reports.
type Stats struct {
	Requests      int
	UniqueDocs    int
	UniqueClients int
	TotalBytes    int64
	UniqueBytes   int64
	ZeroSize      int
	Start, End    time.Time
}

// ComputeStats scans records once and summarises them.
func ComputeStats(records []Record) Stats {
	var s Stats
	s.Requests = len(records)
	docs := make(map[string]int64, len(records)/4)
	clients := make(map[string]struct{})
	for i, r := range records {
		if i == 0 || r.Time.Before(s.Start) {
			s.Start = r.Time
		}
		if i == 0 || r.Time.After(s.End) {
			s.End = r.Time
		}
		s.TotalBytes += r.Size
		if r.Size == 0 {
			s.ZeroSize++
		}
		if _, seen := docs[r.URL]; !seen {
			docs[r.URL] = r.Size
			s.UniqueBytes += r.Size
		}
		clients[r.Client] = struct{}{}
	}
	s.UniqueDocs = len(docs)
	s.UniqueClients = len(clients)
	return s
}

// Span returns the duration covered by the trace.
func (s Stats) Span() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return s.End.Sub(s.Start)
}

// MeanSize returns the mean document size over all requests.
func (s Stats) MeanSize() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.Requests)
}

// String implements fmt.Stringer with a one-paragraph summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests, %d unique docs, %d clients, ", s.Requests, s.UniqueDocs, s.UniqueClients)
	fmt.Fprintf(&b, "%.1f MB total (%.0f B mean), %d zero-size, span %s",
		float64(s.TotalBytes)/(1<<20), s.MeanSize(), s.ZeroSize, s.Span().Round(time.Minute))
	return b.String()
}
