package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadSquid parses Squid's native access.log format, the lingua franca of
// proxy traces since the era the paper studies — so modern or archived
// Squid logs can drive the simulator directly. Each line is:
//
//	<unix-ts.millis> <elapsed-ms> <client> <code>/<status> <bytes> \
//	    <method> <url> <ident> <hierarchy>/<peer> <type>
//
// Only GET requests with a 2xx/3xx status are reference-stream material;
// everything else (CONNECT tunnels, errors, purges) is skipped and counted.
// The logged byte count includes response headers, which is the closest
// available stand-in for document size — the same approximation proxy
// studies make.
func ReadSquid(r io.Reader) (records []Record, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, ok := parseSquidLine(line)
		if !ok {
			skipped++
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("trace: read squid log: %w", err)
	}
	return records, skipped, nil
}

func parseSquidLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 7 {
		return Record{}, false
	}
	t, err := ParseTimestamp(fields[0])
	if err != nil {
		return Record{}, false
	}
	client := fields[2]
	codeStatus := fields[3]
	size, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil || size < 0 {
		return Record{}, false
	}
	method := fields[5]
	url := fields[6]

	if method != "GET" {
		return Record{}, false
	}
	_, status, found := strings.Cut(codeStatus, "/")
	if !found {
		return Record{}, false
	}
	st, err := strconv.Atoi(status)
	if err != nil || st < 200 || st >= 400 {
		return Record{}, false
	}
	if !strings.Contains(url, "://") {
		return Record{}, false
	}
	return Record{Time: t, Client: client, URL: url, Size: size}, true
}
