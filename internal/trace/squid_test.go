package trace

import (
	"strings"
	"testing"
)

func TestReadSquid(t *testing.T) {
	in := strings.Join([]string{
		"# comment",
		"",
		"784900000.123    95 10.0.0.7 TCP_MISS/200 2314 GET http://cs-www.bu.edu/ - DIRECT/128.197.12.3 text/html",
		"784900001.500    12 10.0.0.7 TCP_HIT/200 1804 GET http://cs-www.bu.edu/logo.gif - NONE/- image/gif",
		"784900002.000   140 10.0.0.9 TCP_MISS/304 231 GET http://cs-www.bu.edu/ - DIRECT/128.197.12.3 text/html",
		"784900003.000   900 10.0.0.9 TCP_MISS/200 8000 CONNECT mail.example.com:443 - DIRECT/1.2.3.4 -",
		"784900004.000    10 10.0.0.9 TCP_MISS/404 300 GET http://gone.example.edu/x - DIRECT/5.6.7.8 text/html",
		"784900005.000    10 10.0.0.9 TCP_MISS/200 300 GET not-a-url - DIRECT/5.6.7.8 text/html",
		"short line",
		"notatime 1 c TCP_HIT/200 10 GET http://x/ - NONE/- -",
		"784900006.000 1 c TCP_HIT/200 -5 GET http://x/ - NONE/- -",
		"784900007.000 1 c TCPHIT200 10 GET http://x/ - NONE/- -",
	}, "\n")

	records, skipped, err := ReadSquid(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3 (two 200 GETs + one 304 GET)", len(records))
	}
	// CONNECT, 404, bad URL, short line, bad timestamp, negative size,
	// malformed code/status.
	if skipped != 7 {
		t.Fatalf("skipped = %d, want 7", skipped)
	}
	first := records[0]
	if first.Client != "10.0.0.7" || first.URL != "http://cs-www.bu.edu/" || first.Size != 2314 {
		t.Fatalf("record[0] = %+v", first)
	}
	if first.Time.UnixMilli() != 784900000123 {
		t.Fatalf("timestamp = %v", first.Time)
	}
	if !Sorted(records) {
		t.Fatal("squid records out of order")
	}
}

func TestReadSquidEmpty(t *testing.T) {
	records, skipped, err := ReadSquid(strings.NewReader(""))
	if err != nil || len(records) != 0 || skipped != 0 {
		t.Fatalf("empty log: %v, %d, %d", err, len(records), skipped)
	}
}

func TestComputePopularity(t *testing.T) {
	var records []Record
	// doc0 requested 100 times, doc1 50, doc2 25, ..., plus singletons.
	for i, n := range []int{100, 50, 25, 12, 6} {
		for j := 0; j < n; j++ {
			records = append(records, Record{URL: docURL(i), Size: 1})
		}
	}
	for i := 0; i < 20; i++ {
		records = append(records, Record{URL: docURL(100 + i), Size: 1})
	}
	p := ComputePopularity(records)
	if p.Docs != 25 {
		t.Fatalf("Docs = %d", p.Docs)
	}
	if p.SingleUse != 0.8 {
		t.Fatalf("SingleUse = %v, want 0.8", p.SingleUse)
	}
	total := float64(100 + 50 + 25 + 12 + 6 + 20)
	if got := p.TopShare[0]; got != 100/total {
		t.Fatalf("top1 share = %v", got)
	}
	if got := p.TopShare[1]; got != (100+50+25+12+6+5)/total {
		t.Fatalf("top10 share = %v", got)
	}
	// TopKs beyond the catalogue saturate at 1.
	if p.TopShare[2] != 1 || p.TopShare[3] != 1 {
		t.Fatalf("saturated shares = %v", p.TopShare)
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestComputePopularityEmpty(t *testing.T) {
	p := ComputePopularity(nil)
	if p.Docs != 0 || p.Alpha != 0 {
		t.Fatalf("empty popularity = %+v", p)
	}
}

func TestPopularityAlphaRecoversGeneratorSkew(t *testing.T) {
	cfg := BULike().Scaled(0.05)
	cfg.HotWeight = 0      // isolate the Zipf body
	cfg.SelfAffinity = 0   // no re-reference distortion
	cfg.CohortFraction = 0 // no shared streams
	records, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := ComputePopularity(records)
	if p.Alpha < cfg.ZipfAlpha-0.25 || p.Alpha > cfg.ZipfAlpha+0.25 {
		t.Fatalf("fitted alpha %.2f far from configured %.2f", p.Alpha, cfg.ZipfAlpha)
	}
}
