package trace

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"eacache/internal/dist"
)

func smallConfig() GenConfig {
	cfg := BULike().Scaled(0.02) // ~11.5k requests
	return cfg
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config+seed produced different traces")
	}
	cfg := smallConfig()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	records, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != cfg.Requests {
		t.Fatalf("got %d records, want exactly %d", len(records), cfg.Requests)
	}
	if !Sorted(records) {
		t.Fatal("generated trace not sorted")
	}
	s := ComputeStats(records)
	if s.UniqueDocs > cfg.UniqueDocs {
		t.Fatalf("unique docs %d exceed catalogue %d", s.UniqueDocs, cfg.UniqueDocs)
	}
	if s.UniqueClients > cfg.Users {
		t.Fatalf("clients %d exceed users %d", s.UniqueClients, cfg.Users)
	}
	// Zero-size fraction roughly matches the configured rate.
	zeroFrac := float64(s.ZeroSize) / float64(s.Requests)
	if math.Abs(zeroFrac-cfg.ZeroSizeFraction) > 0.02 {
		t.Fatalf("zero-size fraction %v, want ~%v", zeroFrac, cfg.ZeroSizeFraction)
	}
	// Everything inside the configured span (plus session tails).
	if s.Start.Before(cfg.Start) {
		t.Fatalf("record before Start: %v", s.Start)
	}
	if s.End.After(cfg.Start.Add(cfg.Span + 24*time.Hour)) {
		t.Fatalf("record far past Span: %v", s.End)
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	cfg := smallConfig()
	records, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, r := range records {
		counts[r.URL]++
	}
	// The head must be far above the mean: take the max count.
	max, sum := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	mean := float64(sum) / float64(len(counts))
	if float64(max) < 10*mean {
		t.Fatalf("popularity not skewed: max=%d mean=%.1f", max, mean)
	}
}

func TestGenerateMeanSize(t *testing.T) {
	cfg := BULike().Scaled(0.1)
	cfg.ZeroSizeFraction = 0
	records, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(records)
	// The request-weighted mean is pulled below the catalogue mean by the
	// small hot documents; it must still be within a factor 3.
	if s.MeanSize() < float64(cfg.MeanDocSize)/3 || s.MeanSize() > float64(cfg.MeanDocSize)*3 {
		t.Fatalf("mean size %v, configured %v", s.MeanSize(), cfg.MeanDocSize)
	}
}

func TestGenerateDiurnalConcentration(t *testing.T) {
	cfg := smallConfig()
	records, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day, night := 0, 0
	for _, r := range records {
		h := r.Time.Hour()
		if h >= 9 && h < 21 {
			day++
		} else if h >= 0 && h < 8 {
			night++
		}
	}
	if day < night*2 {
		t.Fatalf("no diurnal concentration: day=%d night=%d", day, night)
	}
}

func TestGenerateCohortSharing(t *testing.T) {
	cfg := smallConfig()
	cfg.CohortFraction = 1
	withCohorts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig()
	cfg2.CohortFraction = 0
	solo, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Cohorts reuse a shared master stream, so the distinct-document
	// count drops sharply relative to independent sessions.
	cu := ComputeStats(withCohorts).UniqueDocs
	su := ComputeStats(solo).UniqueDocs
	if cu >= su {
		t.Fatalf("cohorts did not concentrate references: cohort unique=%d solo unique=%d", cu, su)
	}
}

func TestGenerateValidation(t *testing.T) {
	mods := map[string]func(*GenConfig){
		"requests":       func(c *GenConfig) { c.Requests = 0 },
		"docs":           func(c *GenConfig) { c.UniqueDocs = 0 },
		"zipf":           func(c *GenConfig) { c.ZipfAlpha = -1 },
		"hotdocs":        func(c *GenConfig) { c.HotDocs = -1 },
		"hotdocs>docs":   func(c *GenConfig) { c.HotDocs = c.UniqueDocs + 1 },
		"hotweight":      func(c *GenConfig) { c.HotWeight = 1 },
		"hot w/o docs":   func(c *GenConfig) { c.HotDocs = 0; c.HotWeight = 0.5 },
		"inline":         func(c *GenConfig) { c.InlinePerView = -1 },
		"meansize":       func(c *GenConfig) { c.MeanDocSize = 0 },
		"maxsize":        func(c *GenConfig) { c.MaxDocSize = c.MeanDocSize },
		"sizealpha":      func(c *GenConfig) { c.SizeAlpha = 0 },
		"zerofrac":       func(c *GenConfig) { c.ZeroSizeFraction = 1 },
		"users":          func(c *GenConfig) { c.Users = 0 },
		"sessions":       func(c *GenConfig) { c.Sessions = 0 },
		"sessionlength":  func(c *GenConfig) { c.SessionLength = 0 },
		"selfaffinity":   func(c *GenConfig) { c.SelfAffinity = 1 },
		"historydepth":   func(c *GenConfig) { c.HistoryDepth = -1 },
		"useractivity":   func(c *GenConfig) { c.UserActivityAlpha = -1 },
		"cohortfraction": func(c *GenConfig) { c.CohortFraction = 1.5 },
		"cohortsize":     func(c *GenConfig) { c.CohortFraction = 0.5; c.CohortSize = 1 },
		"diurnal":        func(c *GenConfig) { c.DiurnalStrength = 1 },
		"weekend":        func(c *GenConfig) { c.WeekendFactor = 2 },
		"span":           func(c *GenConfig) { c.Span = 0 },
	}
	for name, mod := range mods {
		t.Run(name, func(t *testing.T) {
			cfg := BULike()
			mod(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("%s: invalid config accepted", name)
			}
			if _, err := Generate(cfg); err == nil {
				t.Fatalf("%s: Generate accepted invalid config", name)
			}
		})
	}
	if err := BULike().Validate(); err != nil {
		t.Fatalf("BULike invalid: %v", err)
	}
}

func TestScaled(t *testing.T) {
	cfg := BULike().Scaled(0.01)
	if cfg.Requests != 5757 {
		t.Fatalf("Requests = %d", cfg.Requests)
	}
	if cfg.UniqueDocs != 468 {
		t.Fatalf("UniqueDocs = %d", cfg.UniqueDocs)
	}
	tiny := BULike().Scaled(0.0000001)
	if tiny.Requests < 1 || tiny.Users < 1 || tiny.Sessions < 1 || tiny.UniqueDocs < 1 {
		t.Fatalf("Scaled floor violated: %+v", tiny)
	}
}

func TestDocURLStable(t *testing.T) {
	if docURL(5) != docURL(5) {
		t.Fatal("docURL not deterministic")
	}
	if docURL(1) == docURL(2) {
		t.Fatal("distinct ids collide")
	}
	if !strings.HasPrefix(docURL(0), "http://") {
		t.Fatalf("unexpected URL shape %q", docURL(0))
	}
}

func TestSampleGeometric(t *testing.T) {
	// mean 0 always returns 0
	r := newTestRNG()
	for i := 0; i < 100; i++ {
		if sampleGeometric(r, 0) != 0 {
			t.Fatal("sampleGeometric(0) != 0")
		}
	}
	// mean 2: empirical mean near 2, capped at 8
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := sampleGeometric(r, 2)
		if v < 0 || v > 8 {
			t.Fatalf("out of range: %d", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 1.6 || mean > 2.2 {
		t.Fatalf("geometric mean = %v, want ~1.9 (capped)", mean)
	}
}

func TestHistory(t *testing.T) {
	h := newHistory(3)
	if h.len() != 0 {
		t.Fatal("fresh history non-empty")
	}
	for i := 1; i <= 5; i++ {
		h.add(i)
	}
	if h.len() != 3 {
		t.Fatalf("len = %d, want 3 (capped)", h.len())
	}
	r := newTestRNG()
	for i := 0; i < 100; i++ {
		v := h.pick(r)
		if v < 3 || v > 5 {
			t.Fatalf("pick returned stale value %d", v)
		}
	}
}

func newTestRNG() *dist.RNG { return dist.NewRNG(12345) }
