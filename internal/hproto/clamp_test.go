package hproto

import (
	"bufio"
	"fmt"
	"strings"
	"testing"
	"time"

	"eacache/internal/cache"
)

func TestParseAgeClamped(t *testing.T) {
	for _, tt := range []struct {
		in      string
		want    time.Duration
		clamped bool
		ok      bool
	}{
		{"0", 0, false, true},
		{"1500", 1500 * time.Millisecond, false, true},
		{"inf", cache.NoContention, false, true},
		// Hostile values clamp instead of being trusted or fatal.
		{"-3", 0, true, true},
		{"-9223372036854775808", 0, true, true},                     // math.MinInt64
		{"9223372036854775807", cache.NoContention, true, true},     // overflows Duration
		{"99999999999999999999999", cache.NoContention, true, true}, // overflows int64
		{"-99999999999999999999999", 0, true, true},
		// Garbage is still malformed, not silently zeroed.
		{"abc", 0, false, false},
		{"", 0, false, false},
		{"1.5", 0, false, false},
		{"nan", 0, false, false},
	} {
		got, clamped, err := ParseAgeClamped(tt.in)
		if (err == nil) != tt.ok {
			t.Fatalf("ParseAgeClamped(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
		}
		if !tt.ok {
			continue
		}
		if got != tt.want || clamped != tt.clamped {
			t.Fatalf("ParseAgeClamped(%q) = (%v, %v), want (%v, %v)",
				tt.in, got, clamped, tt.want, tt.clamped)
		}
	}
}

// TestReadRequestClampsHostileAge pins the wire behaviour: a peer sending
// a negative or overflowing piggybacked age gets clamped and flagged, not
// refused (the request is otherwise fine) and not believed.
func TestReadRequestClampsHostileAge(t *testing.T) {
	for _, tt := range []struct {
		age  string
		want time.Duration
	}{
		{"-42", 0},
		{"9223372036854775807", cache.NoContention},
	} {
		in := fmt.Sprintf("GET http://a/ EAC/1.0\r\nX-Cache-Expiration-Age: %s\r\n\r\n", tt.age)
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(in)))
		if err != nil {
			t.Fatalf("age %q refused: %v", tt.age, err)
		}
		if !req.AgeClamped || req.RequesterAge != tt.want {
			t.Fatalf("age %q -> (%v, clamped=%v), want (%v, true)",
				tt.age, req.RequesterAge, req.AgeClamped, tt.want)
		}
	}

	// A clean request must not be flagged.
	in := "GET http://a/ EAC/1.0\r\nX-Cache-Expiration-Age: 100\r\n\r\n"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if req.AgeClamped {
		t.Fatal("clean age flagged as clamped")
	}
}

func TestReadResponseClampsHostileAge(t *testing.T) {
	in := "EAC/1.0 200 OK\r\nX-Cache-Expiration-Age: -5\r\nContent-Length: 0\r\n\r\n"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(in)))
	if err != nil {
		t.Fatalf("negative age refused: %v", err)
	}
	if !resp.AgeClamped || resp.ResponderAge != 0 {
		t.Fatalf("resp = %+v, want age 0 clamped", resp)
	}
}
