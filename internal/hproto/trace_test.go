package hproto

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"

	"eacache/internal/cache"
)

// TestTraceHeaderRoundTrip checks the X-Trace-Context plumbing on both
// message kinds: written when set, omitted when empty, and returned
// verbatim by the reader.
func TestTraceHeaderRoundTrip(t *testing.T) {
	const ctx = "0123456789abcdef/n1-000042/2/1"

	req := Request{URL: "http://origin/a", RequesterAge: 5 * time.Second, Trace: ctx}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if !strings.Contains(buf.String(), TraceHeader+": "+ctx+"\r\n") {
		t.Fatalf("trace header missing from wire:\n%s", buf.String())
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if got.Trace != ctx {
		t.Fatalf("request trace context mangled: %q", got.Trace)
	}

	buf.Reset()
	if err := WriteRequest(&buf, Request{URL: "http://origin/a"}); err != nil {
		t.Fatalf("WriteRequest without trace: %v", err)
	}
	if strings.Contains(buf.String(), TraceHeader) {
		t.Fatalf("untraced request leaked a trace header:\n%s", buf.String())
	}

	resp := Response{Status: StatusOK, ResponderAge: cache.NoContention, Trace: ctx}
	buf.Reset()
	if err := WriteResponse(&buf, resp, nil); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	gotResp, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if gotResp.Trace != ctx {
		t.Fatalf("response trace context mangled: %q", gotResp.Trace)
	}
}

// TestWriteTraceHeaderStrict: writing is the strict side — an oversized or
// whitespace-bearing context is our own bug and must fail loudly.
func TestWriteTraceHeaderStrict(t *testing.T) {
	var buf bytes.Buffer
	bad := []string{
		strings.Repeat("x", maxTraceLen+1),
		"has space/p/0/1",
		"has\r\nnewline/p/0/1",
	}
	for _, ctx := range bad {
		if err := WriteRequest(&buf, Request{URL: "http://o/a", Trace: ctx}); err == nil {
			t.Errorf("WriteRequest accepted bad trace context %q", ctx)
		}
		if err := WriteResponse(&buf, Response{Status: StatusOK, ResponderAge: cache.NoContention, Trace: ctx}, nil); err == nil {
			t.Errorf("WriteResponse accepted bad trace context %q", ctx)
		}
	}
}

// TestReadOversizedTraceTolerant: reading is the tolerant side — a peer's
// oversized trace value is dropped, never fatal, so a buggy or hostile
// peer cannot break fetches by inflating the tracing header.
func TestReadOversizedTraceTolerant(t *testing.T) {
	big := strings.Repeat("a", maxTraceLen+1)
	wire := "GET http://origin/a EAC/1.0\r\n" +
		"X-Cache-Expiration-Age: 5\r\n" +
		TraceHeader + ": " + big + "\r\n\r\n"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(wire)))
	if err != nil {
		t.Fatalf("oversized trace header must not be fatal: %v", err)
	}
	if req.Trace != "" {
		t.Fatalf("oversized trace value should be dropped, got %d bytes", len(req.Trace))
	}
}
