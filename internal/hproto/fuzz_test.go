package hproto

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRequest throws arbitrary byte streams at the request parser: it
// must never panic, and anything it accepts must survive a write/read
// round trip.
func FuzzReadRequest(f *testing.F) {
	f.Add("GET http://a/ EAC/1.0\r\nX-Cache-Expiration-Age: 100\r\nX-Size-Hint: 42\r\n\r\n")
	f.Add("GET http://a/ EAC/1.0\r\nX-Cache-Expiration-Age: inf\r\n\r\n")
	f.Add("GET http://a/ EAC/1.0\r\nX-Cache-Expiration-Age: 5\r\nX-Trace-Context: 0123456789abcdef/n1-000042/2/1\r\n\r\n")
	f.Add("GET http://a/ EAC/1.0\r\nX-Trace-Context: " + strings.Repeat("z", 300) + "\r\n\r\n")
	f.Add("")
	f.Add("GET\r\n")
	f.Add(strings.Repeat("h", 10000))
	// Digest-sync requests ride the same wire: a bare refresh, a versioned
	// delta request, an overflowing generation, and a malformed since=
	// (the digest layer answers that one with a full transfer, but the
	// parser must simply pass the URL through).
	f.Add("GET eac:digest EAC/1.0\r\n\r\n")
	f.Add("GET eac:digest?since=42 EAC/1.0\r\n\r\n")
	f.Add("GET eac:digest?since=18446744073709551615 EAC/1.0\r\n\r\n")
	f.Add("GET eac:digest?since=-1&since=zz EAC/1.0\r\n\r\n")

	f.Fuzz(func(t *testing.T, in string) {
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(in)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			// A parsed request can still be unwritable if the URL
			// carries bytes the writer forbids — but the parser also
			// forbids whitespace in URLs, so flag anything else.
			if strings.ContainsAny(req.URL, " \r\n") || req.URL == "" {
				return
			}
			t.Fatalf("accepted request failed to write: %+v: %v", req, err)
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("round trip read failed: %v", err)
		}
		// AgeClamped is reader-side diagnosis, not wire state: a clamped
		// input round-trips to the already-clamped value, which re-reads
		// as clean.
		req.AgeClamped = false
		got.AgeClamped = false
		if got != req {
			t.Fatalf("round trip changed request: %+v -> %+v", req, got)
		}
	})
}

// FuzzReadResponse does the same for the response head.
func FuzzReadResponse(f *testing.F) {
	f.Add("EAC/1.0 200 OK\r\nX-Cache-Expiration-Age: 5\r\nContent-Length: 0\r\n\r\n")
	f.Add("EAC/1.0 404 Not-Found\r\nX-Cache-Expiration-Age: inf\r\n\r\n")
	f.Add("EAC/1.0 200 OK\r\nX-Cache-Expiration-Age: 5\r\nX-Trace-Context: 0123456789abcdef/n2-000007/3/1\r\nContent-Length: 0\r\n\r\n")
	f.Add("HTTP/1.1 200 OK\r\n\r\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, in string) {
		resp, err := ReadResponse(bufio.NewReader(strings.NewReader(in)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp, bytes.NewReader(make([]byte, maxBody(resp)))); err != nil {
			t.Fatalf("accepted response failed to write: %+v: %v", resp, err)
		}
		got, err := ReadResponse(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("round trip read failed: %v", err)
		}
		resp.AgeClamped = false
		got.AgeClamped = false
		if got != resp {
			t.Fatalf("round trip changed response: %+v -> %+v", resp, got)
		}
	})
}

func maxBody(r Response) int64 {
	if r.ContentLength > 1<<20 {
		return 1 << 20 // don't allocate fuzz-controlled sizes
	}
	return r.ContentLength
}
