package hproto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"eacache/internal/cache"
)

func TestFormatParseAge(t *testing.T) {
	tests := []struct {
		age  time.Duration
		want string
	}{
		{0, "0"},
		{1500 * time.Millisecond, "1500"},
		{2 * time.Hour, "7200000"},
		{cache.NoContention, "inf"},
		{-time.Second, "0"},
	}
	for _, tt := range tests {
		if got := FormatAge(tt.age); got != tt.want {
			t.Errorf("FormatAge(%v) = %q, want %q", tt.age, got, tt.want)
		}
	}

	for _, tt := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"0", 0, true},
		{"1500", 1500 * time.Millisecond, true},
		{"inf", cache.NoContention, true},
		{"-3", 0, false},
		{"abc", 0, false},
		{"", 0, false},
	} {
		got, err := ParseAge(tt.in)
		if (err == nil) != tt.ok {
			t.Fatalf("ParseAge(%q) err = %v", tt.in, err)
		}
		if tt.ok && got != tt.want {
			t.Fatalf("ParseAge(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{URL: "http://a.example.edu/x.html", RequesterAge: 90 * time.Second, SizeHint: 2048},
		{URL: "http://b/", RequesterAge: cache.NoContention},
		{URL: "http://c/", RequesterAge: 0, SizeHint: 0},
	}
	for _, req := range reqs {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("WriteRequest(%+v): %v", req, err)
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("ReadRequest: %v", err)
		}
		if got != req {
			t.Fatalf("round trip: got %+v, want %+v", got, req)
		}
	}
}

func TestResponseRoundTripWithBody(t *testing.T) {
	body := strings.Repeat("z", 1000)
	resp := Response{Status: StatusOK, ResponderAge: 7 * time.Second, ContentLength: 1000}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp, strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	got, err := ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if got != resp {
		t.Fatalf("head: got %+v, want %+v", got, resp)
	}
	gotBody := make([]byte, got.ContentLength)
	if _, err := io.ReadFull(br, gotBody); err != nil {
		t.Fatal(err)
	}
	if string(gotBody) != body {
		t.Fatal("body mangled")
	}
}

func TestNotFoundResponse(t *testing.T) {
	resp := Response{Status: StatusNotFound, ResponderAge: cache.NoContention}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got != resp {
		t.Fatalf("got %+v, want %+v", got, resp)
	}
}

func TestWriteRequestRejectsBadURLs(t *testing.T) {
	for _, url := range []string{"", "has space", "has\nnewline", "has\rreturn"} {
		if err := WriteRequest(io.Discard, Request{URL: url}); err == nil {
			t.Fatalf("URL %q accepted", url)
		}
	}
	long := Request{URL: "http://x/" + strings.Repeat("a", maxURLLen)}
	if err := WriteRequest(io.Discard, long); !errors.Is(err, ErrTooLong) {
		t.Fatalf("long URL: %v", err)
	}
}

func TestWriteResponseMissingBody(t *testing.T) {
	err := WriteResponse(io.Discard, Response{Status: StatusOK, ContentLength: 10}, nil)
	if err == nil {
		t.Fatal("missing body accepted")
	}
}

func TestReadRequestErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad verb", "POST http://a/ EAC/1.0\r\n\r\n"},
		{"bad version", "GET http://a/ HTTP/1.0\r\n\r\n"},
		{"no headers terminator", "GET http://a/ EAC/1.0\r\n"},
		{"bad header", "GET http://a/ EAC/1.0\r\nnocolon\r\n\r\n"},
		{"bad age", "GET http://a/ EAC/1.0\r\nX-Cache-Expiration-Age: nan\r\n\r\n"},
		{"bad size hint", "GET http://a/ EAC/1.0\r\nX-Size-Hint: -2\r\n\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadRequest(bufio.NewReader(strings.NewReader(tt.in))); err == nil {
				t.Fatalf("ReadRequest(%q) succeeded", tt.in)
			}
		})
	}
}

func TestReadResponseErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"wrong proto", "HTTP/1.0 200 OK\r\n\r\n"},
		{"bad status", "EAC/1.0 500 Oops\r\n\r\n"},
		{"negative length", "EAC/1.0 200 OK\r\nContent-Length: -1\r\n\r\n"},
		{"bad age", "EAC/1.0 200 OK\r\nX-Cache-Expiration-Age: zzz\r\n\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadResponse(bufio.NewReader(strings.NewReader(tt.in))); err == nil {
				t.Fatalf("ReadResponse(%q) succeeded", tt.in)
			}
		})
	}
}

func TestHeaderLimits(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET http://a/ EAC/1.0\r\n")
	for i := 0; i < 40; i++ {
		b.WriteString("X-Padding-Header: value\r\n")
	}
	b.WriteString("\r\n")
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String()))); !errors.Is(err, ErrTooLong) {
		t.Fatalf("header flood: %v", err)
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(ageMillis uint32, sizeHint uint32, pathSeed uint16) bool {
		req := Request{
			URL:          "http://host.example.edu/doc" + strings.Repeat("x", int(pathSeed%64)),
			RequesterAge: time.Duration(ageMillis) * time.Millisecond,
			SizeHint:     int64(sizeHint),
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		return err == nil && got == req
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAgeRoundTrip(t *testing.T) {
	f := func(ms uint32) bool {
		age := time.Duration(ms) * time.Millisecond
		got, err := ParseAge(FormatAge(age))
		return err == nil && got == age
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// NoContention survives the trip exactly.
	got, err := ParseAge(FormatAge(cache.NoContention))
	if err != nil || got != cache.NoContention {
		t.Fatalf("NoContention round trip: %v, %v", got, err)
	}
}

func TestPushRequestRoundTrip(t *testing.T) {
	req := Request{
		URL:          "http://a.example.edu/x.html",
		RequesterAge: 45 * time.Second,
		SizeHint:     4096,
		Push:         true,
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	if !strings.HasPrefix(wire, "PUT ") {
		t.Fatalf("push request line %q, want PUT method", wire[:20])
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip: got %+v, want %+v", got, req)
	}
}

func TestRingFingerprintRoundTrip(t *testing.T) {
	for _, fp := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		req := Request{URL: "http://a/", RingFP: fp, Resolve: true}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if got != req {
			t.Fatalf("round trip: got %+v, want %+v", got, req)
		}
	}
	// Zero means absent: the header must not appear on the wire.
	var buf bytes.Buffer
	if err := WriteRequest(&buf, Request{URL: "http://a/"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), RingHeader) {
		t.Fatalf("zero fingerprint emitted a %s header: %q", RingHeader, buf.String())
	}
}

func TestPushRequestRejections(t *testing.T) {
	if err := WriteRequest(io.Discard, Request{URL: "http://a/", Push: true, Resolve: true}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("push+resolve write: %v", err)
	}
	if err := WriteRequest(io.Discard, Request{URL: "http://a/", Push: true, SizeHint: -1}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("negative push size: %v", err)
	}
	bad := []string{
		"PUT http://a/ EAC/1.0\r\nX-Resolve: 1\r\n\r\n",
		"GET http://a/ EAC/1.0\r\nX-Ring: nothex\r\n\r\n",
		"GET http://a/ EAC/1.0\r\nX-Ring: -1\r\n\r\n",
	}
	for _, in := range bad {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(in))); !errors.Is(err, ErrMalformed) {
			t.Fatalf("ReadRequest(%q) = %v, want ErrMalformed", in, err)
		}
	}
}
