// Package hproto implements the inter-proxy document transfer protocol of
// the paper: an HTTP/1.0-style request/response exchange in which each side
// piggybacks its cache expiration age on the message it was already sending
// ("the only extra information that is communicated among proxies is the
// Cache Expiration Age ... piggybacked on either a HTTP request message or
// a HTTP response message", §3.4). No extra connections and no extra round
// trips are introduced — exactly the paper's zero-overhead claim.
//
// Wire format (CRLF line endings, ASCII):
//
//	GET <url> EAC/1.0
//	X-Cache-Expiration-Age: <milliseconds|inf>
//	X-Size-Hint: <bytes>
//
//	EAC/1.0 <200 OK|404 Not-Found>
//	X-Cache-Expiration-Age: <milliseconds|inf>
//	Content-Length: <bytes>
//
//	<body>
//
// A PUT request line marks a migration handoff (Request.Push): the sender
// offers the document, X-Size-Hint is the exact body length that follows,
// and the response's status says whether the receiver kept the copy.
package hproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"eacache/internal/cache"
)

// Protocol constants.
const (
	ProtoVersion = "EAC/1.0"
	// AgeHeader carries the sender's cache expiration age.
	AgeHeader = "X-Cache-Expiration-Age"
	// SizeHintHeader lets a requester tell an origin simulator how large
	// the document should be (trace-driven runs know sizes up front).
	SizeHintHeader = "X-Size-Hint"
	// ResolveHeader marks a hierarchical miss-resolution request: the
	// receiving parent must fetch the document from upstream when it is
	// not cached, instead of answering 404 (paper §3.3).
	ResolveHeader = "X-Resolve"
	// SourceHeader tells the requester whether the body came from the
	// responder's cache or was resolved from the origin, so a child can
	// classify the outcome (remote hit vs miss) like the paper does.
	SourceHeader = "X-Source"

	// TraceHeader carries the compact distributed-tracing context
	// (obs.TraceContext wire form: trace ID, parent span ID, hop count,
	// sampled bit) piggybacked the same way the expiration age is: on
	// messages already being sent, costing no extra round trip. hproto
	// treats the value as opaque — the obs layer owns the format — and a
	// receiver that cannot parse it must drop it, never fail the exchange.
	TraceHeader = "X-Trace-Context"

	// RingHeader carries the requester's topology fingerprint (hex) on a
	// hash-routed resolve request, so the responder can tell "every owner
	// before me is down" (views agree: act as home, keep the copy) from
	// "the requester has not heard about the real owner yet" (views
	// differ: relay without keeping, or a second copy would be minted).
	RingHeader = "X-Ring"

	// SourceCache and SourceOrigin are the SourceHeader values.
	SourceCache  = "cache"
	SourceOrigin = "origin"

	maxURLLen    = 8 * 1024
	maxHeaderLen = 1 * 1024
	// maxTraceLen bounds the opaque trace-context value we are willing to
	// carry; anything longer is dropped on read and rejected on write.
	maxTraceLen = 256
)

// Status codes.
const (
	StatusOK       = 200
	StatusNotFound = 404
)

// Errors.
var (
	ErrMalformed = errors.New("hproto: malformed message")
	ErrTooLong   = errors.New("hproto: line too long")
	// ErrTruncatedBody reports a body that ended before the advertised
	// Content-Length — the signature of a responder that died (or was
	// reset) mid-transfer. Callers match it to decide whether a retry
	// against another copy holder is worthwhile.
	ErrTruncatedBody = errors.New("hproto: truncated body")
)

// Request is an inter-proxy document request.
type Request struct {
	// URL of the wanted document.
	URL string
	// RequesterAge is the requester's cache expiration age.
	RequesterAge time.Duration
	// SizeHint is the expected document size, or 0 if unknown.
	SizeHint int64
	// Resolve asks a hierarchical parent to fetch the document from
	// upstream on a miss instead of answering 404.
	Resolve bool
	// Push marks a migration handoff: the sender offers the document to
	// the receiver instead of asking for it. The request line uses the
	// PUT method, SizeHint is the exact body length that follows the
	// blank line, and the receiver answers StatusOK when it stored the
	// copy or StatusNotFound when it refused (not the owner, draining,
	// or out of space) — either way piggybacking its own expiration age,
	// which the sender uses to EA-gate later transfers. Push and Resolve
	// are mutually exclusive.
	Push bool
	// RingFP is the requester's topology fingerprint
	// (chash.Ring.Fingerprint) on a hash-routed resolve request; zero
	// means absent (non-hash requesters never send it).
	RingFP uint64
	// AgeClamped reports that the wire carried a negative or overflowing
	// expiration age and RequesterAge is the clamped substitute — a
	// misbehaving peer, worth counting (metrics.Robustness) but not worth
	// failing the exchange over.
	AgeClamped bool
	// Trace is the opaque distributed-tracing context (TraceHeader), empty
	// when the request is untraced. hproto does not interpret it; an
	// oversized value is dropped on read, not fatal.
	Trace string
}

// Response is the reply carrying the document and the responder's age.
type Response struct {
	// Status is StatusOK or StatusNotFound.
	Status int
	// ResponderAge is the responder's cache expiration age.
	ResponderAge time.Duration
	// ContentLength is the body size that follows.
	ContentLength int64
	// Source reports where the body came from: SourceCache (the
	// responder held it) or SourceOrigin (it was resolved upstream).
	// Empty is treated as SourceCache for compatibility.
	Source string
	// AgeClamped reports that the wire carried a negative or overflowing
	// expiration age and ResponderAge is the clamped substitute.
	AgeClamped bool
	// Trace echoes the tracing context back to the requester (with the
	// responder's own span record as the parent ID), so the requester can
	// link the remote leg into its trace. Opaque to hproto.
	Trace string
}

// FormatAge renders an expiration age for the wire: integer milliseconds,
// or "inf" for cache.NoContention (a cache that has evicted nothing).
func FormatAge(age time.Duration) string {
	if age >= cache.NoContention {
		return "inf"
	}
	if age < 0 {
		age = 0
	}
	return strconv.FormatInt(age.Milliseconds(), 10)
}

// ParseAge parses a wire-format expiration age strictly: negative and
// non-numeric values are errors. The message readers use ParseAgeClamped
// instead, so a misbehaving peer cannot fail an exchange with a hostile
// age value.
func ParseAge(s string) (time.Duration, error) {
	age, clamped, err := ParseAgeClamped(s)
	if err != nil {
		return 0, err
	}
	if clamped {
		return 0, fmt.Errorf("%w: bad age %q", ErrMalformed, s)
	}
	return age, nil
}

// maxAgeMillis is the largest millisecond count representable as a
// time.Duration; anything above it would overflow the multiplication.
const maxAgeMillis = math.MaxInt64 / int64(time.Millisecond)

// ParseAgeClamped parses a wire-format expiration age without trusting
// the peer: a negative value clamps to zero (maximum contention claims
// nothing it could not claim with "0") and a value too large for a
// time.Duration clamps to NoContention (it was asserting effectively
// infinite headroom anyway). clamped reports that such a substitution
// happened so the caller can count the misbehaving peer. Only a
// non-numeric value — line noise, not a number at all — is an error.
func ParseAgeClamped(s string) (age time.Duration, clamped bool, err error) {
	if s == "inf" {
		return cache.NoContention, false, nil
	}
	ms, perr := strconv.ParseInt(s, 10, 64)
	if perr != nil {
		if !errors.Is(perr, strconv.ErrRange) {
			return 0, false, fmt.Errorf("%w: bad age %q", ErrMalformed, s)
		}
		// Out of int64 range entirely: clamp by sign.
		if strings.HasPrefix(strings.TrimSpace(s), "-") {
			return 0, true, nil
		}
		return cache.NoContention, true, nil
	}
	switch {
	case ms < 0:
		return 0, true, nil
	case ms > maxAgeMillis:
		return cache.NoContention, true, nil
	}
	return time.Duration(ms) * time.Millisecond, false, nil
}

// WriteRequest serialises req. For a Push request the caller must write
// exactly req.SizeHint body bytes immediately after.
func WriteRequest(w io.Writer, req Request) error {
	if strings.ContainsAny(req.URL, " \r\n") || req.URL == "" {
		return fmt.Errorf("%w: bad URL %q", ErrMalformed, req.URL)
	}
	if len(req.URL) > maxURLLen {
		return ErrTooLong
	}
	if req.Push && req.Resolve {
		return fmt.Errorf("%w: push request cannot resolve", ErrMalformed)
	}
	method := "GET"
	if req.Push {
		if req.SizeHint < 0 {
			return fmt.Errorf("%w: negative push size %d", ErrMalformed, req.SizeHint)
		}
		method = "PUT"
	}
	resolve := ""
	if req.Resolve {
		resolve = ResolveHeader + ": 1\r\n"
	}
	ring := ""
	if req.RingFP != 0 {
		ring = RingHeader + ": " + strconv.FormatUint(req.RingFP, 16) + "\r\n"
	}
	trace, err := traceHeaderLine(req.Trace)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s %s %s\r\n%s: %s\r\n%s: %d\r\n%s%s%s\r\n",
		method, req.URL, ProtoVersion,
		AgeHeader, FormatAge(req.RequesterAge),
		SizeHintHeader, req.SizeHint,
		resolve, ring, trace)
	if err != nil {
		return fmt.Errorf("hproto: write request: %w", err)
	}
	return nil
}

// traceHeaderLine renders the optional trace-context header. The value is
// opaque but must still be a legal single header value: writing is the one
// place strictness is cheap and correct (we own the value), reading stays
// tolerant (the peer's value is dropped when oversized, never fatal).
func traceHeaderLine(v string) (string, error) {
	if v == "" {
		return "", nil
	}
	if len(v) > maxTraceLen {
		return "", fmt.Errorf("%w: trace context", ErrTooLong)
	}
	if strings.ContainsAny(v, " \r\n") {
		return "", fmt.Errorf("%w: bad trace context %q", ErrMalformed, v)
	}
	return TraceHeader + ": " + v + "\r\n", nil
}

// ReadRequest parses one request from r.
func ReadRequest(r *bufio.Reader) (Request, error) {
	line, err := readLine(r)
	if err != nil {
		return Request{}, err
	}
	parts := strings.Split(line, " ")
	if len(parts) != 3 || (parts[0] != "GET" && parts[0] != "PUT") || parts[2] != ProtoVersion {
		return Request{}, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	req := Request{URL: parts[1], Push: parts[0] == "PUT"}
	headers, err := readHeaders(r)
	if err != nil {
		return Request{}, err
	}
	if v, ok := headers[AgeHeader]; ok {
		if req.RequesterAge, req.AgeClamped, err = ParseAgeClamped(v); err != nil {
			return Request{}, err
		}
	}
	if v, ok := headers[SizeHintHeader]; ok {
		req.SizeHint, err = strconv.ParseInt(v, 10, 64)
		if err != nil || req.SizeHint < 0 {
			return Request{}, fmt.Errorf("%w: bad size hint %q", ErrMalformed, v)
		}
	}
	if v, ok := headers[ResolveHeader]; ok {
		if v != "1" {
			return Request{}, fmt.Errorf("%w: bad resolve flag %q", ErrMalformed, v)
		}
		req.Resolve = true
	}
	if v, ok := headers[RingHeader]; ok {
		req.RingFP, err = strconv.ParseUint(v, 16, 64)
		if err != nil {
			return Request{}, fmt.Errorf("%w: bad ring fingerprint %q", ErrMalformed, v)
		}
	}
	if v, ok := headers[TraceHeader]; ok && len(v) <= maxTraceLen {
		req.Trace = v
	}
	if req.Push && req.Resolve {
		return Request{}, fmt.Errorf("%w: push request cannot resolve", ErrMalformed)
	}
	return req, nil
}

// WriteResponse serialises resp followed by exactly ContentLength bytes
// copied from body (body may be nil when ContentLength is 0).
func WriteResponse(w io.Writer, resp Response, body io.Reader) error {
	reason := "OK"
	if resp.Status == StatusNotFound {
		reason = "Not-Found"
	}
	source := ""
	if resp.Source != "" {
		if resp.Source != SourceCache && resp.Source != SourceOrigin {
			return fmt.Errorf("%w: bad source %q", ErrMalformed, resp.Source)
		}
		source = SourceHeader + ": " + resp.Source + "\r\n"
	}
	trace, err := traceHeaderLine(resp.Trace)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s %d %s\r\n%s: %s\r\nContent-Length: %d\r\n%s%s\r\n",
		ProtoVersion, resp.Status, reason,
		AgeHeader, FormatAge(resp.ResponderAge),
		resp.ContentLength,
		source, trace)
	if err != nil {
		return fmt.Errorf("hproto: write response: %w", err)
	}
	if resp.ContentLength > 0 {
		if body == nil {
			return fmt.Errorf("%w: missing body", ErrMalformed)
		}
		// A body that can write itself (io.WriterTo) skips io.CopyN's
		// per-call copy buffer — the serve path hands in pooled-buffer
		// bodies, so a cache hit allocates nothing here.
		if wt, ok := body.(io.WriterTo); ok {
			n, werr := wt.WriteTo(w)
			if werr != nil {
				return fmt.Errorf("hproto: write body: %w", werr)
			}
			if n != resp.ContentLength {
				return fmt.Errorf("hproto: write body: wrote %d of %d bytes", n, resp.ContentLength)
			}
			return nil
		}
		if _, err := io.CopyN(w, body, resp.ContentLength); err != nil {
			return fmt.Errorf("hproto: write body: %w", err)
		}
	}
	return nil
}

// ReadResponse parses the response head; the caller then reads exactly
// ContentLength body bytes from r.
func ReadResponse(r *bufio.Reader) (Response, error) {
	line, err := readLine(r)
	if err != nil {
		return Response{}, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || parts[0] != ProtoVersion {
		return Response{}, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil || (status != StatusOK && status != StatusNotFound) {
		return Response{}, fmt.Errorf("%w: status %q", ErrMalformed, parts[1])
	}
	resp := Response{Status: status}
	headers, err := readHeaders(r)
	if err != nil {
		return Response{}, err
	}
	if v, ok := headers[AgeHeader]; ok {
		if resp.ResponderAge, resp.AgeClamped, err = ParseAgeClamped(v); err != nil {
			return Response{}, err
		}
	}
	if v, ok := headers["Content-Length"]; ok {
		resp.ContentLength, err = strconv.ParseInt(v, 10, 64)
		if err != nil || resp.ContentLength < 0 {
			return Response{}, fmt.Errorf("%w: content length %q", ErrMalformed, v)
		}
	}
	if v, ok := headers[SourceHeader]; ok {
		if v != SourceCache && v != SourceOrigin {
			return Response{}, fmt.Errorf("%w: source %q", ErrMalformed, v)
		}
		resp.Source = v
	}
	if v, ok := headers[TraceHeader]; ok && len(v) <= maxTraceLen {
		resp.Trace = v
	}
	return resp, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("hproto: read: %w", err)
	}
	if len(line) > maxURLLen+64 {
		return "", ErrTooLong
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeaders(r *bufio.Reader) (map[string]string, error) {
	headers := make(map[string]string, 4)
	for lines := 0; ; lines++ {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return headers, nil
		}
		if lines >= 32 || len(line) > maxHeaderLen {
			return nil, ErrTooLong
		}
		name, value, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		headers[strings.TrimSpace(name)] = strings.TrimSpace(value)
	}
}
