package hproto

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// TestFullExchangeOverPipe runs a complete request/response exchange over
// an in-memory network connection, the way netnode uses the protocol.
func TestFullExchangeOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	body := bytes.Repeat([]byte{0xab}, 4096)
	done := make(chan error, 1)
	go func() {
		defer close(done)
		req, err := ReadRequest(bufio.NewReader(server))
		if err != nil {
			done <- err
			return
		}
		if req.URL != "http://pipe.example.edu/x" || req.SizeHint != 4096 || !req.Resolve {
			done <- io.ErrUnexpectedEOF
			return
		}
		done <- WriteResponse(server, Response{
			Status:        StatusOK,
			ResponderAge:  33 * time.Second,
			ContentLength: int64(len(body)),
			Source:        SourceOrigin,
		}, bytes.NewReader(body))
	}()

	if err := WriteRequest(client, Request{
		URL:          "http://pipe.example.edu/x",
		RequesterAge: 5 * time.Second,
		SizeHint:     4096,
		Resolve:      true,
	}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(client)
	resp, err := ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || resp.ResponderAge != 33*time.Second || resp.Source != SourceOrigin {
		t.Fatalf("resp = %+v", resp)
	}
	got := make([]byte, resp.ContentLength)
	if _, err := io.ReadFull(br, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("body corrupted in transit")
	}
	if err := <-done; err != nil {
		t.Fatalf("server side: %v", err)
	}
}

func TestResolveAndSourceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{URL: "http://a/", Resolve: true, RequesterAge: time.Second}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("request round trip: %+v -> %+v", req, got)
	}

	for _, source := range []string{SourceCache, SourceOrigin, ""} {
		buf.Reset()
		resp := Response{Status: StatusOK, Source: source}
		if err := WriteResponse(&buf, resp, nil); err != nil {
			t.Fatal(err)
		}
		gotResp, err := ReadResponse(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if gotResp.Source != source {
			t.Fatalf("source %q round-tripped to %q", source, gotResp.Source)
		}
	}
}

func TestBadResolveAndSourceRejected(t *testing.T) {
	in := "GET http://a/ EAC/1.0\r\nX-Resolve: yes\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(bytes.NewBufferString(in))); err == nil {
		t.Fatal("bad resolve flag accepted")
	}
	in = "EAC/1.0 200 OK\r\nX-Source: teleport\r\n\r\n"
	if _, err := ReadResponse(bufio.NewReader(bytes.NewBufferString(in))); err == nil {
		t.Fatal("bad source accepted")
	}
	if err := WriteResponse(io.Discard, Response{Status: StatusOK, Source: "teleport"}, nil); err == nil {
		t.Fatal("bad source written")
	}
}
