package persist

import (
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/faults"
)

func t0() time.Time { return time.Unix(1_700_000_000, 0) }

// sampleEvents is a representative mix of every record kind.
func sampleEvents() []cache.Event {
	at := t0()
	return []cache.Event{
		{Kind: cache.EventInsert, Doc: cache.Document{URL: "http://a/1", Size: 100}, At: at},
		{Kind: cache.EventInsert, Doc: cache.Document{URL: "http://a/2", Size: 2048, Expires: at.Add(time.Hour)}, At: at.Add(time.Second)},
		{Kind: cache.EventHit, Doc: cache.Document{URL: "http://a/1", Size: 100}, At: at.Add(2 * time.Second)},
		{Kind: cache.EventPromote, Doc: cache.Document{URL: "http://a/2", Size: 2048}, At: at.Add(3 * time.Second)},
		{Kind: cache.EventEvict, Doc: cache.Document{URL: "http://a/1", Size: 100}, At: at.Add(4 * time.Second), Age: 90 * time.Second},
		{Kind: cache.EventRemove, Doc: cache.Document{URL: "http://a/2", Size: 2048}},
		{Kind: cache.EventDemote, Doc: cache.Document{URL: "http://a/3", Size: 512, Expires: at.Add(time.Hour)},
			At: at.Add(5 * time.Second), Age: 30 * time.Second,
			EnteredAt: at, LastHit: at.Add(2 * time.Second), Hits: 4, Sum: [32]byte{1, 2, 3}},
		{Kind: cache.EventPromoteFromDisk, Doc: cache.Document{URL: "http://a/3", Size: 512, Expires: at.Add(time.Hour)},
			At: at.Add(6 * time.Second), EnteredAt: at, LastHit: at.Add(6 * time.Second), Hits: 5},
		{Kind: cache.EventEvict, Tier: cache.TierDisk, Doc: cache.Document{URL: "http://a/4", Size: 64},
			At: at.Add(7 * time.Second), Age: 45 * time.Second},
		{Kind: cache.EventRemove, Tier: cache.TierDisk, Doc: cache.Document{URL: "http://a/5"}},
	}
}

func encodeAll(t *testing.T, evs []cache.Event) []byte {
	t.Helper()
	var data []byte
	for _, ev := range evs {
		frame, err := MarshalEvent(ev)
		if err != nil {
			t.Fatalf("MarshalEvent(%v): %v", ev.Kind, err)
		}
		data = append(data, frame...)
	}
	return data
}

func TestJournalRoundTrip(t *testing.T) {
	want := sampleEvents()
	data := encodeAll(t, want)
	got, good, damage := ReplayJournal(data)
	if damage != nil {
		t.Fatalf("damage on clean journal: %v", damage)
	}
	if good != len(data) {
		t.Fatalf("goodBytes = %d, want %d", good, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		g := got[i]
		if g.Kind != w.Kind || g.Doc.URL != w.Doc.URL || g.Age != w.Age || g.Tier != w.Tier {
			t.Fatalf("event %d = %+v, want %+v", i, g, w)
		}
		if !g.At.Equal(w.At) {
			t.Fatalf("event %d At = %v, want %v", i, g.At, w.At)
		}
		if w.Kind == cache.EventInsert {
			if g.Doc.Size != w.Doc.Size || !g.Doc.Expires.Equal(w.Doc.Expires) {
				t.Fatalf("event %d doc = %+v, want %+v", i, g.Doc, w.Doc)
			}
		}
	}
}

func TestMarshalEventRejectsBadInput(t *testing.T) {
	if _, err := MarshalEvent(cache.Event{Kind: cache.EventHit}); err == nil {
		t.Fatal("empty URL accepted")
	}
	long := make([]byte, maxJournalURL+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := MarshalEvent(cache.Event{Kind: cache.EventHit, Doc: cache.Document{URL: string(long)}}); err == nil {
		t.Fatal("oversized URL accepted")
	}
	if _, err := MarshalEvent(cache.Event{Kind: cache.EventKind(99), Doc: cache.Document{URL: "http://a/"}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestJournalTornTailEveryOffset is the kill -9 simulation at frame
// granularity: a journal cut at EVERY possible byte offset must replay
// exactly the fully-committed frames before the cut, flag the tear, and
// never panic.
func TestJournalTornTailEveryOffset(t *testing.T) {
	evs := sampleEvents()
	data := encodeAll(t, evs)

	// Frame boundaries, so we know how many complete frames a cut keeps.
	var bounds []int
	off := 0
	for _, ev := range evs {
		frame, _ := MarshalEvent(ev)
		off += len(frame)
		bounds = append(bounds, off)
	}

	for cut := 0; cut <= len(data); cut++ {
		wantFrames := 0
		for _, b := range bounds {
			if b <= cut {
				wantFrames++
			}
		}
		got, good, damage := ReplayJournal(data[:cut])
		if len(got) != wantFrames {
			t.Fatalf("cut %d: replayed %d frames, want %d", cut, len(got), wantFrames)
		}
		wantGood := 0
		if wantFrames > 0 {
			wantGood = bounds[wantFrames-1]
		}
		if good != wantGood {
			t.Fatalf("cut %d: goodBytes = %d, want %d", cut, good, wantGood)
		}
		onBoundary := cut == wantGood
		if onBoundary && damage != nil {
			t.Fatalf("cut %d on frame boundary reported damage: %v", cut, damage)
		}
		if !onBoundary && damage == nil {
			t.Fatalf("cut %d mid-frame reported no damage", cut)
		}
	}
}

// TestJournalBitFlips drives seeded single-bit corruption (via the
// internal/faults injector PRNG) through replay: whatever bit flips, the
// replayed prefix must be a prefix of the original event sequence and
// replay must never panic.
func TestJournalBitFlips(t *testing.T) {
	evs := sampleEvents()
	data := encodeAll(t, evs)
	inj, err := faults.New(faults.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		corrupt := inj.FlipBits(data, 1+trial%3)
		got, good, _ := ReplayJournal(corrupt)
		if good > len(corrupt) {
			t.Fatalf("trial %d: goodBytes %d beyond input %d", trial, good, len(corrupt))
		}
		// Each replayed event must match the original at its position
		// unless the flip landed inside it but still passed the CRC —
		// with a 32-bit checksum over these frames a single flip cannot;
		// frames that verify are byte-identical to the originals.
		for i, g := range got {
			if i >= len(evs) {
				t.Fatalf("trial %d: replayed more events than written", trial)
			}
			w := evs[i]
			if g.Kind != w.Kind || g.Doc.URL != w.Doc.URL {
				t.Fatalf("trial %d: event %d = %+v, want %+v", trial, i, g, w)
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	at := t0()
	st := State{
		Gen: 7,
		Entries: []EntryState{
			{URL: "http://a/1", Size: 100, EnteredAt: at, LastHit: at.Add(time.Minute), Hits: 3},
			{URL: "http://a/2", Size: 2048, Expires: at.Add(time.Hour), EnteredAt: at.Add(time.Second), LastHit: at.Add(time.Second), Hits: 1},
		},
		Tracker: cache.TrackerState{
			Window:          8,
			TotalSumSeconds: 123.5,
			TotalCount:      4,
			Samples: []cache.TrackerSample{
				{At: at, Age: 10 * time.Second},
				{At: at.Add(time.Minute), Age: 20 * time.Second},
			},
		},
	}
	got, err := DecodeSnapshot(EncodeSnapshot(st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Gen != st.Gen || len(got.Entries) != len(st.Entries) {
		t.Fatalf("got %+v", got)
	}
	for i := range st.Entries {
		w, g := st.Entries[i], got.Entries[i]
		if g.URL != w.URL || g.Size != w.Size || g.Hits != w.Hits ||
			!g.Expires.Equal(w.Expires) || !g.EnteredAt.Equal(w.EnteredAt) || !g.LastHit.Equal(w.LastHit) {
			t.Fatalf("entry %d = %+v, want %+v", i, g, w)
		}
	}
	tr := got.Tracker
	if tr.Window != 8 || tr.TotalCount != 4 || tr.TotalSumSeconds != 123.5 || len(tr.Samples) != 2 {
		t.Fatalf("tracker = %+v", tr)
	}
	if !tr.Samples[1].At.Equal(at.Add(time.Minute)) || tr.Samples[1].Age != 20*time.Second {
		t.Fatalf("sample = %+v", tr.Samples[1])
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	st := State{Entries: []EntryState{{URL: "http://a/1", Size: 100, EnteredAt: t0(), LastHit: t0(), Hits: 1}}}
	data := EncodeSnapshot(st)

	inj, err := faults.New(faults.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for trial := 0; trial < 300; trial++ {
		corrupt := inj.FlipBits(data, 1)
		if _, derr := DecodeSnapshot(corrupt); derr != nil {
			rejected++
		}
	}
	// A single bit flip anywhere (magic, body, or trailer) must be caught
	// by the magic check or the CRC32C; nothing may slip through.
	if rejected != 300 {
		t.Fatalf("only %d/300 single-bit corruptions rejected", rejected)
	}

	for _, tc := range [][]byte{nil, {1, 2, 3}, data[:len(data)-1], data[:8]} {
		if _, derr := DecodeSnapshot(tc); derr == nil {
			t.Fatalf("truncated snapshot (%d bytes) accepted", len(tc))
		}
	}
}
