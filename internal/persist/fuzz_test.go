package persist

import (
	"bytes"
	"testing"
	"time"

	"eacache/internal/cache"
)

// FuzzJournalReplay throws arbitrary bytes at the journal replayer: it must
// never panic, never claim more verified bytes than it was given, and every
// event it accepts must re-marshal into a journal that replays cleanly to
// the same events (decoded values are always re-journalable, so recovery
// can rotate them into a fresh generation).
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	var clean []byte
	for _, ev := range sampleEvents() {
		frame, err := MarshalEvent(ev)
		if err != nil {
			f.Fatal(err)
		}
		clean = append(clean, frame...)
	}
	f.Add(clean)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, good, _ := ReplayJournal(data)
		if good < 0 || good > len(data) {
			t.Fatalf("goodBytes %d outside [0, %d]", good, len(data))
		}
		var reenc []byte
		for _, ev := range events {
			frame, err := MarshalEvent(ev)
			if err != nil {
				t.Fatalf("replayed event does not re-marshal: %+v: %v", ev, err)
			}
			reenc = append(reenc, frame...)
		}
		again, good2, damage2 := ReplayJournal(reenc)
		if damage2 != nil || good2 != len(reenc) {
			t.Fatalf("re-encoded journal damaged: good %d/%d, %v", good2, len(reenc), damage2)
		}
		if len(again) != len(events) {
			t.Fatalf("re-encoded journal replayed %d events, want %d", len(again), len(events))
		}
		for i := range events {
			w, g := events[i], again[i]
			if g.Kind != w.Kind || g.Doc != w.Doc || g.Age != w.Age || !g.At.Equal(w.At) {
				t.Fatalf("event %d changed in round trip: %+v -> %+v", i, w, g)
			}
		}
	})
}

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot decoder: it
// must never panic, and anything it accepts must re-encode and re-decode
// to the same state (so a recovered snapshot can itself be snapshotted).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	f.Add(EncodeSnapshot(State{}))
	f.Add(EncodeSnapshot(State{
		Gen:     3,
		Entries: []EntryState{{URL: "http://a/1", Size: 9, EnteredAt: time.Unix(5, 0), LastHit: time.Unix(6, 0), Hits: 2}},
		Tracker: cache.TrackerState{Window: 4, TotalSumSeconds: 1.5, TotalCount: 1,
			Samples: []cache.TrackerSample{{At: time.Unix(7, 0), Age: time.Second}}},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		again, err := DecodeSnapshot(EncodeSnapshot(st))
		if err != nil {
			t.Fatalf("accepted snapshot failed re-encode round trip: %v", err)
		}
		if again.Gen != st.Gen || len(again.Entries) != len(st.Entries) ||
			len(again.Tracker.Samples) != len(st.Tracker.Samples) {
			t.Fatalf("round trip changed snapshot: %+v -> %+v", st, again)
		}
	})
}
