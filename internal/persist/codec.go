// Binary encoding helpers shared by the journal and snapshot codecs:
// little-endian fixed-width integers, length-prefixed strings, and a
// decoder that latches the first error instead of panicking on truncated
// or hostile input (both decoders are fuzz targets).
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// ErrCorrupt reports input that failed structural validation or a
// checksum. Recovery treats it as "stop replaying here", never as a
// reason to panic or refuse to start.
var ErrCorrupt = errors.New("persist: corrupt data")

// crcTable is the Castagnoli (CRC32C) polynomial table, the checksum used
// by every journal frame and the snapshot trailer.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

type encoder struct{ b []byte }

func (e *encoder) u8(v byte)     { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16)  { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encoder) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str(maxLen int) string {
	n := int(d.u16())
	if n > maxLen {
		d.fail("string length %d exceeds limit %d", n, maxLen)
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// done reports whether the decoder consumed its input exactly; trailing
// bytes are corruption, not padding.
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	return d.err
}

// timeToNano flattens a time for the wire: zero time encodes as 0 so a
// never-set timestamp survives the round trip (the 1970 epoch instant is
// indistinguishable, which no caller produces).
func timeToNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func nanoToTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}
