// The write-ahead journal: an append-only file of CRC32C-framed records,
// one per cache mutation (insert/hit/promote/evict/remove). Each record is
// appended with a single write() so a crash leaves at worst one torn frame
// at the tail; replay verifies every frame checksum and stops at the first
// bad one, keeping every fully-committed record and discarding the tear.
//
// Frame layout (little-endian):
//
//	u32  payload length
//	u8   record kind (cache.EventKind)
//	[]b  payload
//	u32  CRC32C over kind byte + payload
//
// Payloads per kind (url = u16 length + bytes, times are unix nanos):
//
//	insert:       url, i64 size, i64 expires, i64 at
//	hit:          url, i64 at
//	promote:      url, i64 at
//	evict:        url, i64 at, i64 age
//	remove:       url
//	demote:       url, i64 at, i64 age, i64 size, i64 expires,
//	              i64 enteredAt, i64 lastHit, i64 hits, 32b sum
//	promote-disk: url, i64 at, i64 size, i64 expires, i64 enteredAt,
//	              i64 hits
//	disk-evict:   url, i64 at, i64 age
//	disk-remove:  url
//
// The tier dimension rides the kind byte: memory-tier events keep their
// cache.EventKind values (1-5), demote/promote-disk are the EventKind
// values 6/7, and disk-tier evict/remove get the dedicated codes 8/9 so
// the original five frames never widened.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"eacache/internal/cache"
)

const (
	// maxJournalURL mirrors hproto's URL bound; nothing longer can enter
	// a cache through the protocol.
	maxJournalURL = 8 * 1024
	// maxFramePayload bounds one frame's payload so a corrupted length
	// field cannot demand an absurd allocation during replay.
	maxFramePayload = 64 * 1024
	// frameOverhead is the non-payload bytes of a frame: length(4) +
	// kind(1) + crc(4).
	frameOverhead = 9
)

// Journal kind bytes for disk-tier exits. Memory-tier events use their
// cache.EventKind value as the kind byte; a disk-tier evict or remove
// carries the same payload as its memory twin but needs a distinct code
// so replay can restore the Tier dimension.
const (
	kindDiskEvict  byte = 8
	kindDiskRemove byte = 9
)

// MarshalEvent frames one cache event for the journal.
func MarshalEvent(ev cache.Event) ([]byte, error) {
	if ev.Doc.URL == "" || len(ev.Doc.URL) > maxJournalURL {
		return nil, fmt.Errorf("persist: bad journal URL (len %d)", len(ev.Doc.URL))
	}
	kind := byte(ev.Kind)
	if ev.Tier == cache.TierDisk {
		switch ev.Kind {
		case cache.EventEvict:
			kind = kindDiskEvict
		case cache.EventRemove:
			kind = kindDiskRemove
		default:
			return nil, fmt.Errorf("persist: disk-tier %v event has no journal encoding", ev.Kind)
		}
	}
	var p encoder
	p.str(ev.Doc.URL)
	switch ev.Kind {
	case cache.EventInsert:
		p.i64(ev.Doc.Size)
		p.i64(timeToNano(ev.Doc.Expires))
		p.i64(timeToNano(ev.At))
	case cache.EventHit, cache.EventPromote:
		p.i64(timeToNano(ev.At))
	case cache.EventEvict:
		p.i64(timeToNano(ev.At))
		p.i64(int64(ev.Age))
	case cache.EventRemove:
		// URL only.
	case cache.EventDemote:
		p.i64(timeToNano(ev.At))
		p.i64(int64(ev.Age))
		p.i64(ev.Doc.Size)
		p.i64(timeToNano(ev.Doc.Expires))
		p.i64(timeToNano(ev.EnteredAt))
		p.i64(timeToNano(ev.LastHit))
		p.i64(ev.Hits)
		p.b = append(p.b, ev.Sum[:]...)
	case cache.EventPromoteFromDisk:
		p.i64(timeToNano(ev.At))
		p.i64(ev.Doc.Size)
		p.i64(timeToNano(ev.Doc.Expires))
		p.i64(timeToNano(ev.EnteredAt))
		p.i64(ev.Hits)
	default:
		return nil, fmt.Errorf("persist: unknown event kind %v", ev.Kind)
	}

	var f encoder
	f.u32(uint32(len(p.b)))
	f.u8(kind)
	f.b = append(f.b, p.b...)
	f.u32(crc32.Checksum(f.b[4:], crcTable))
	return f.b, nil
}

// decodeEventPayload rebuilds the event from one verified frame payload.
func decodeEventPayload(kind byte, payload []byte) (cache.Event, error) {
	ev := cache.Event{Kind: cache.EventKind(kind)}
	switch kind {
	case kindDiskEvict:
		ev.Kind, ev.Tier = cache.EventEvict, cache.TierDisk
	case kindDiskRemove:
		ev.Kind, ev.Tier = cache.EventRemove, cache.TierDisk
	}
	d := &decoder{b: payload}
	ev.Doc.URL = d.str(maxJournalURL)
	if d.err == nil && ev.Doc.URL == "" {
		d.fail("empty URL")
	}
	switch {
	case ev.Kind == cache.EventInsert:
		ev.Doc.Size = d.i64()
		ev.Doc.Expires = nanoToTime(d.i64())
		ev.At = nanoToTime(d.i64())
		if d.err == nil && ev.Doc.Size <= 0 {
			d.fail("non-positive size %d", ev.Doc.Size)
		}
	case ev.Kind == cache.EventHit, ev.Kind == cache.EventPromote:
		ev.At = nanoToTime(d.i64())
	case ev.Kind == cache.EventEvict:
		ev.At = nanoToTime(d.i64())
		ev.Age = clampDuration(d.i64())
	case ev.Kind == cache.EventRemove:
		// URL only.
	case ev.Kind == cache.EventDemote:
		ev.At = nanoToTime(d.i64())
		ev.Age = clampDuration(d.i64())
		ev.Doc.Size = d.i64()
		ev.Doc.Expires = nanoToTime(d.i64())
		ev.EnteredAt = nanoToTime(d.i64())
		ev.LastHit = nanoToTime(d.i64())
		ev.Hits = d.i64()
		copy(ev.Sum[:], d.take(32))
		if d.err == nil && ev.Doc.Size <= 0 {
			d.fail("non-positive size %d", ev.Doc.Size)
		}
	case ev.Kind == cache.EventPromoteFromDisk:
		ev.At = nanoToTime(d.i64())
		ev.Doc.Size = d.i64()
		ev.Doc.Expires = nanoToTime(d.i64())
		ev.EnteredAt = nanoToTime(d.i64())
		ev.Hits = d.i64()
		ev.LastHit = ev.At
		if d.err == nil && ev.Doc.Size <= 0 {
			d.fail("non-positive size %d", ev.Doc.Size)
		}
	default:
		d.fail("unknown record kind %d", kind)
	}
	if err := d.done(); err != nil {
		return cache.Event{}, err
	}
	return ev, nil
}

// clampDuration clamps a journalled duration to non-negative; a negative
// age never leaves MarshalEvent, so one on disk is corruption that decoded
// to valid framing — clamp rather than poison the tracker.
func clampDuration(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	return time.Duration(n)
}

// ReplayJournal decodes frames from data in order until the first bad
// frame, returning the decoded events and how many bytes of data they
// span. A nil damage means the journal ended exactly on a frame boundary;
// otherwise damage says why replay stopped (torn tail, checksum mismatch,
// malformed payload) and everything past the reported offset must be
// discarded — the caller truncates the file there. Replay never fails
// outright: a corrupt journal yields the longest verifiable prefix.
func ReplayJournal(data []byte) (events []cache.Event, goodBytes int, damage error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			return events, off, fmt.Errorf("%w: torn frame header (%d bytes) at offset %d", ErrCorrupt, len(rest), off)
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen > maxFramePayload {
			return events, off, fmt.Errorf("%w: frame payload length %d exceeds limit at offset %d", ErrCorrupt, plen, off)
		}
		total := frameOverhead + plen
		if len(rest) < total {
			return events, off, fmt.Errorf("%w: torn frame (%d of %d bytes) at offset %d", ErrCorrupt, len(rest), total, off)
		}
		kind := rest[4]
		payload := rest[5 : 5+plen]
		want := binary.LittleEndian.Uint32(rest[5+plen : total])
		if got := crc32.Checksum(rest[4:5+plen], crcTable); got != want {
			return events, off, fmt.Errorf("%w: frame checksum mismatch at offset %d", ErrCorrupt, off)
		}
		ev, err := decodeEventPayload(kind, payload)
		if err != nil {
			return events, off, fmt.Errorf("frame at offset %d: %w", off, err)
		}
		events = append(events, ev)
		off += total
	}
	return events, off, nil
}
