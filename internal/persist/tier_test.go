package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eacache/internal/cache"
)

// TestJournalTierRoundTrip checks every field of the tier record kinds
// survives the journal, including the demote checksum and the Tier
// dimension of disk-side exits.
func TestJournalTierRoundTrip(t *testing.T) {
	at := t0()
	var sum [32]byte
	for i := range sum {
		sum[i] = byte(0xA0 + i)
	}
	evs := []cache.Event{
		{Kind: cache.EventDemote,
			Doc:       cache.Document{URL: "http://t/1", Size: 4096, Expires: at.Add(2 * time.Hour)},
			At:        at.Add(10 * time.Second),
			Age:       25 * time.Second,
			EnteredAt: at,
			LastHit:   at.Add(3 * time.Second),
			Hits:      7,
			Sum:       sum},
		{Kind: cache.EventPromoteFromDisk,
			Doc:       cache.Document{URL: "http://t/1", Size: 4096, Expires: at.Add(2 * time.Hour)},
			At:        at.Add(20 * time.Second),
			EnteredAt: at,
			Hits:      8},
		{Kind: cache.EventEvict, Tier: cache.TierDisk,
			Doc: cache.Document{URL: "http://t/2", Size: 128},
			At:  at.Add(30 * time.Second),
			Age: 90 * time.Second},
		{Kind: cache.EventRemove, Tier: cache.TierDisk,
			Doc: cache.Document{URL: "http://t/3"}},
	}
	got, good, damage := ReplayJournal(encodeAll(t, evs))
	if damage != nil {
		t.Fatalf("damage: %v", damage)
	}
	if good == 0 || len(got) != len(evs) {
		t.Fatalf("replayed %d events", len(got))
	}

	d := got[0]
	if d.Kind != cache.EventDemote || d.Tier != cache.TierMemory {
		t.Fatalf("demote decoded as %v/%v", d.Kind, d.Tier)
	}
	if d.Doc.URL != "http://t/1" || d.Doc.Size != 4096 || !d.Doc.Expires.Equal(at.Add(2*time.Hour)) {
		t.Fatalf("demote doc = %+v", d.Doc)
	}
	if !d.At.Equal(at.Add(10*time.Second)) || d.Age != 25*time.Second {
		t.Fatalf("demote at/age = %v/%v", d.At, d.Age)
	}
	if !d.EnteredAt.Equal(at) || !d.LastHit.Equal(at.Add(3*time.Second)) || d.Hits != 7 {
		t.Fatalf("demote metadata = %+v", d)
	}
	if d.Sum != sum {
		t.Fatalf("demote sum = %x, want %x", d.Sum, sum)
	}

	p := got[1]
	if p.Kind != cache.EventPromoteFromDisk || p.Doc.Size != 4096 || p.Hits != 8 || !p.EnteredAt.Equal(at) {
		t.Fatalf("promote-disk = %+v", p)
	}
	if !p.LastHit.Equal(p.At) {
		t.Fatalf("promote-disk LastHit %v != At %v", p.LastHit, p.At)
	}

	de := got[2]
	if de.Kind != cache.EventEvict || de.Tier != cache.TierDisk || de.Age != 90*time.Second {
		t.Fatalf("disk evict = %+v", de)
	}
	dr := got[3]
	if dr.Kind != cache.EventRemove || dr.Tier != cache.TierDisk || dr.Doc.URL != "http://t/3" {
		t.Fatalf("disk remove = %+v", dr)
	}
}

// TestMarshalEventRejectsDiskTierNonExit: only evict/remove have disk-tier
// encodings; anything else on the disk tier is a programming error.
func TestMarshalEventRejectsDiskTierNonExit(t *testing.T) {
	for _, kind := range []cache.EventKind{cache.EventInsert, cache.EventHit, cache.EventPromote, cache.EventDemote, cache.EventPromoteFromDisk} {
		ev := cache.Event{Kind: kind, Tier: cache.TierDisk, Doc: cache.Document{URL: "http://x/", Size: 1}}
		if _, err := MarshalEvent(ev); err == nil {
			t.Fatalf("disk-tier %v accepted", kind)
		}
	}
}

// TestSnapshotV2DiskRoundTrip: the disk section survives encode/decode
// field-for-field.
func TestSnapshotV2DiskRoundTrip(t *testing.T) {
	at := t0()
	var s1, s2 [32]byte
	s1[0], s2[31] = 0x11, 0x99
	st := State{
		Gen: 3,
		Entries: []EntryState{
			{URL: "http://m/1", Size: 100, EnteredAt: at, LastHit: at, Hits: 1},
		},
		Tracker: cache.TrackerState{Window: 8},
		Disk: []cache.DiskEntry{
			{Doc: cache.Document{URL: "http://d/1", Size: 2048, Expires: at.Add(time.Hour)},
				EnteredAt: at, LastHit: at.Add(time.Minute), Hits: 5, Sum: s1},
			{Doc: cache.Document{URL: "http://d/2", Size: 64},
				EnteredAt: at.Add(time.Second), LastHit: at.Add(2 * time.Minute), Hits: 1, Sum: s2},
		},
	}
	got, err := DecodeSnapshot(EncodeSnapshot(st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Disk) != 2 {
		t.Fatalf("disk entries = %d", len(got.Disk))
	}
	for i := range st.Disk {
		w, g := st.Disk[i], got.Disk[i]
		if g.Doc != w.Doc && (g.Doc.URL != w.Doc.URL || g.Doc.Size != w.Doc.Size || !g.Doc.Expires.Equal(w.Doc.Expires)) {
			t.Fatalf("disk %d doc = %+v, want %+v", i, g.Doc, w.Doc)
		}
		if !g.EnteredAt.Equal(w.EnteredAt) || !g.LastHit.Equal(w.LastHit) || g.Hits != w.Hits || g.Sum != w.Sum {
			t.Fatalf("disk %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestSnapshotAcceptsV1 hand-builds a v1 snapshot (old magic, no disk
// section) and checks the decoder still takes it — pre-tier snapshot
// files must survive the upgrade.
func TestSnapshotAcceptsV1(t *testing.T) {
	at := t0()
	st := State{
		Gen:     9,
		Entries: []EntryState{{URL: "http://v1/1", Size: 256, EnteredAt: at, LastHit: at, Hits: 2}},
		Tracker: cache.TrackerState{Window: 4, Samples: []cache.TrackerSample{{At: at, Age: time.Minute}}},
	}
	v2 := EncodeSnapshot(st)
	// Strip the magic, drop the trailing empty disk section (u32 count = 0)
	// from the body, restamp the v1 magic, recompute the CRC.
	body := v2[len(snapMagic) : len(v2)-4]
	if binary.LittleEndian.Uint32(body[len(body)-4:]) != 0 {
		t.Fatal("expected empty disk section at body tail")
	}
	v1body := body[: len(body)-4 : len(body)-4]
	v1 := append([]byte{}, snapMagicV1...)
	v1 = append(v1, v1body...)
	v1 = binary.LittleEndian.AppendUint32(v1, crc32.Checksum(v1body, crcTable))

	got, err := DecodeSnapshot(v1)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if got.Gen != 9 || len(got.Entries) != 1 || got.Entries[0].URL != "http://v1/1" || len(got.Disk) != 0 {
		t.Fatalf("v1 decode = %+v", got)
	}
	if got.Tracker.Window != 4 || len(got.Tracker.Samples) != 1 {
		t.Fatalf("v1 tracker = %+v", got.Tracker)
	}
}

// TestSnapshotRejectsDualResidency: a URL present in both the memory and
// disk sections violates the exclusive-residency invariant and must be
// rejected as corrupt.
func TestSnapshotRejectsDualResidency(t *testing.T) {
	at := t0()
	st := State{
		Entries: []EntryState{{URL: "http://dup/", Size: 100, EnteredAt: at, LastHit: at, Hits: 1}},
		Disk: []cache.DiskEntry{
			{Doc: cache.Document{URL: "http://dup/", Size: 100}, EnteredAt: at, LastHit: at, Hits: 1},
		},
	}
	if _, err := DecodeSnapshot(EncodeSnapshot(st)); err == nil {
		t.Fatal("dual-resident snapshot accepted")
	}
}

// TestReplayTierMoves folds a journal of tier transitions through a real
// Persister Open and checks the recovered state lands every document in
// the right tier with the right metadata, and that only true exits
// (disk evictions, demotion drops) feed the tracker.
func TestReplayTierMoves(t *testing.T) {
	at := t0()
	var sumA, sumB [32]byte
	sumA[0], sumB[0] = 0xAA, 0xBB
	evs := []cache.Event{
		// a: insert → demote → promote back → stays in memory.
		{Kind: cache.EventInsert, Doc: cache.Document{URL: "http://r/a", Size: 100}, At: at},
		{Kind: cache.EventDemote, Doc: cache.Document{URL: "http://r/a", Size: 100},
			At: at.Add(10 * time.Second), Age: 10 * time.Second,
			EnteredAt: at, LastHit: at, Hits: 1, Sum: sumA},
		{Kind: cache.EventPromoteFromDisk, Doc: cache.Document{URL: "http://r/a", Size: 100},
			At: at.Add(20 * time.Second), EnteredAt: at, Hits: 2},
		// b: insert → demote → stays on disk.
		{Kind: cache.EventInsert, Doc: cache.Document{URL: "http://r/b", Size: 200}, At: at.Add(time.Second)},
		{Kind: cache.EventDemote, Doc: cache.Document{URL: "http://r/b", Size: 200},
			At: at.Add(30 * time.Second), Age: 29 * time.Second,
			EnteredAt: at.Add(time.Second), LastHit: at.Add(time.Second), Hits: 1, Sum: sumB},
		// c: insert → demote → evicted from disk (true exit, tracked).
		{Kind: cache.EventInsert, Doc: cache.Document{URL: "http://r/c", Size: 300}, At: at.Add(2 * time.Second)},
		{Kind: cache.EventDemote, Doc: cache.Document{URL: "http://r/c", Size: 300},
			At: at.Add(40 * time.Second), Age: 38 * time.Second,
			EnteredAt: at.Add(2 * time.Second), LastHit: at.Add(2 * time.Second), Hits: 1, Sum: sumA},
		{Kind: cache.EventEvict, Tier: cache.TierDisk, Doc: cache.Document{URL: "http://r/c"},
			At: at.Add(50 * time.Second), Age: 48 * time.Second},
		// d: insert → demote → removed from disk (exit, untracked).
		{Kind: cache.EventInsert, Doc: cache.Document{URL: "http://r/d", Size: 400}, At: at.Add(3 * time.Second)},
		{Kind: cache.EventDemote, Doc: cache.Document{URL: "http://r/d", Size: 400},
			At: at.Add(60 * time.Second), Age: 57 * time.Second,
			EnteredAt: at.Add(3 * time.Second), LastHit: at.Add(3 * time.Second), Hits: 1, Sum: sumB},
		{Kind: cache.EventRemove, Tier: cache.TierDisk, Doc: cache.Document{URL: "http://r/d"}},
		// e: demoted, then a fresh insert supersedes the disk copy.
		{Kind: cache.EventInsert, Doc: cache.Document{URL: "http://r/e", Size: 500}, At: at.Add(4 * time.Second)},
		{Kind: cache.EventDemote, Doc: cache.Document{URL: "http://r/e", Size: 500},
			At: at.Add(70 * time.Second), Age: 66 * time.Second,
			EnteredAt: at.Add(4 * time.Second), LastHit: at.Add(4 * time.Second), Hits: 1, Sum: sumA},
		{Kind: cache.EventRemove, Tier: cache.TierDisk, Doc: cache.Document{URL: "http://r/e"}},
		{Kind: cache.EventInsert, Doc: cache.Document{URL: "http://r/e", Size: 512}, At: at.Add(80 * time.Second)},
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.0.wal"), encodeAll(t, evs), 0o644); err != nil {
		t.Fatal(err)
	}
	p := openPersister(t, dir)
	defer p.Close()

	st := p.RecoveredState()
	mem := map[string]EntryState{}
	for _, e := range st.Entries {
		mem[e.URL] = e
	}
	disk := map[string]cache.DiskEntry{}
	for _, de := range st.Disk {
		disk[de.Doc.URL] = de
	}

	if len(mem) != 2 || len(disk) != 1 {
		t.Fatalf("recovered %d mem + %d disk, want 2 + 1", len(mem), len(disk))
	}
	a, ok := mem["http://r/a"]
	if !ok || a.Hits != 2 || !a.LastHit.Equal(at.Add(20*time.Second)) || !a.EnteredAt.Equal(at) {
		t.Fatalf("a = %+v (present %v)", a, ok)
	}
	e, ok := mem["http://r/e"]
	if !ok || e.Size != 512 || !e.EnteredAt.Equal(at.Add(80*time.Second)) {
		t.Fatalf("e = %+v (present %v)", e, ok)
	}
	b, ok := disk["http://r/b"]
	if !ok || b.Doc.Size != 200 || b.Sum != sumB || b.Hits != 1 || !b.LastHit.Equal(at.Add(time.Second)) {
		t.Fatalf("b = %+v (present %v)", b, ok)
	}

	// Only c's disk eviction was a tracked exit.
	if st.Tracker.TotalCount != 1 {
		t.Fatalf("tracker count = %d, want 1", st.Tracker.TotalCount)
	}
	if len(st.Tracker.Samples) != 1 || st.Tracker.Samples[0].Age != 48*time.Second {
		t.Fatalf("tracker samples = %+v", st.Tracker.Samples)
	}

	rep := p.Report()
	if rep.DiskEntries != 1 || rep.DiskBytes != 200 {
		t.Fatalf("report disk = %d entries / %d bytes", rep.DiskEntries, rep.DiskBytes)
	}
}

// TestCheckpointPersistsDiskSection drives a real tiered capture through
// WriteSnapshot and reopens: residency claims must round-trip through the
// checkpoint path, not just through in-memory encode/decode.
func TestCheckpointPersistsDiskSection(t *testing.T) {
	dir := t.TempDir()
	p := openPersister(t, dir)
	at := t0()
	var sum [32]byte
	sum[7] = 0x77
	st := State{
		Entries: []EntryState{{URL: "http://cp/m", Size: 10, EnteredAt: at, LastHit: at, Hits: 1}},
		Disk: []cache.DiskEntry{{Doc: cache.Document{URL: "http://cp/d", Size: 20},
			EnteredAt: at, LastHit: at.Add(time.Second), Hits: 3, Sum: sum}},
	}
	if err := p.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "snapshot.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, snapMagic) {
		t.Fatalf("snapshot magic = %q", raw[:8])
	}

	p2 := openPersister(t, dir)
	defer p2.Close()
	got := p2.RecoveredState()
	if len(got.Disk) != 1 || got.Disk[0].Doc.URL != "http://cp/d" || got.Disk[0].Sum != sum || got.Disk[0].Hits != 3 {
		t.Fatalf("recovered disk = %+v", got.Disk)
	}
}
