// The snapshot: a point-in-time image of the whole cache metadata state —
// every live entry with its placement-relevant metadata plus the
// expiration-age tracker — written atomically (temp file, fsync, rename)
// and verified end-to-end with a CRC32C trailer. A snapshot also records
// the generation of the journal that continues it, so recovery knows which
// journal chain to replay on top.
//
// File layout (little-endian):
//
//	[8]b  magic "EACSNAP2" ("EACSNAP1" accepted: same layout, no disk section)
//	u64   journal generation
//	u32   entry count
//	per entry: url (u16 len + bytes), i64 size, i64 expires,
//	           i64 enteredAt, i64 lastHit, i64 hits
//	i64   tracker window, i64 tracker horizon
//	f64   tracker cumulative sum (seconds), i64 tracker cumulative count
//	u32   tracker sample count, per sample: i64 at, i64 age
//	u32   disk entry count (EACSNAP2 only)
//	per disk entry: url, i64 size, i64 expires, i64 enteredAt,
//	                i64 lastHit, i64 hits, 32b sum
//	u32   CRC32C over everything after the magic
//
// The disk section records which documents were blob-tier resident at the
// checkpoint; recovery reconciles it against the blob store's own index
// (cache.TieredStore.RestoreDisk), so a snapshot claiming a blob that was
// lost to corruption trims cleanly instead of resurrecting a ghost.
package persist

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"eacache/internal/cache"
)

var (
	snapMagic   = []byte("EACSNAP2")
	snapMagicV1 = []byte("EACSNAP1")
)

// EntryState is one cached document's persisted metadata.
type EntryState struct {
	URL       string
	Size      int64
	Expires   time.Time
	EnteredAt time.Time
	LastHit   time.Time
	Hits      int64
}

// State is the recoverable image of a cache.Store: its live entries (in
// ascending last-hit order, so restoring in sequence rebuilds the LRU
// recency order) and its expiration-age tracker. Document bodies are
// deliberately absent — they are synthetic in this reproduction, so only
// the metadata that drives placement and replacement is durable.
type State struct {
	// Gen is the generation of the journal that continues this snapshot.
	Gen uint64
	// Entries are the live documents, oldest last-hit first.
	Entries []EntryState
	// Tracker is the expiration-age tracker (the contention signal). For a
	// tiered store this is the logical exit tracker — the signal the node
	// advertises — not the memory tier's internal one.
	Tracker cache.TrackerState
	// Disk lists the documents resident in the blob tier at capture time,
	// oldest last-hit first. Empty for untiered stores and v1 snapshots.
	Disk []cache.DiskEntry
}

// LiveBytes sums the entry sizes.
func (st State) LiveBytes() int64 {
	var n int64
	for _, e := range st.Entries {
		n += e.Size
	}
	return n
}

// EncodeSnapshot serialises st.
func EncodeSnapshot(st State) []byte {
	var e encoder
	e.u64(st.Gen)
	e.u32(uint32(len(st.Entries)))
	for _, en := range st.Entries {
		e.str(en.URL)
		e.i64(en.Size)
		e.i64(timeToNano(en.Expires))
		e.i64(timeToNano(en.EnteredAt))
		e.i64(timeToNano(en.LastHit))
		e.i64(en.Hits)
	}
	e.i64(int64(st.Tracker.Window))
	e.i64(int64(st.Tracker.Horizon))
	e.f64(st.Tracker.TotalSumSeconds)
	e.i64(st.Tracker.TotalCount)
	e.u32(uint32(len(st.Tracker.Samples)))
	for _, s := range st.Tracker.Samples {
		e.i64(timeToNano(s.At))
		e.i64(int64(s.Age))
	}
	e.u32(uint32(len(st.Disk)))
	for _, de := range st.Disk {
		e.str(de.Doc.URL)
		e.i64(de.Doc.Size)
		e.i64(timeToNano(de.Doc.Expires))
		e.i64(timeToNano(de.EnteredAt))
		e.i64(timeToNano(de.LastHit))
		e.i64(de.Hits)
		e.b = append(e.b, de.Sum[:]...)
	}

	out := make([]byte, 0, len(snapMagic)+len(e.b)+4)
	out = append(out, snapMagic...)
	out = append(out, e.b...)
	var tr encoder
	tr.u32(crc32.Checksum(e.b, crcTable))
	return append(out, tr.b...)
}

// minSnapEntry is the smallest possible encoded entry (1-byte URL), used
// to sanity-bound counts before allocating.
const minSnapEntry = 2 + 1 + 5*8

// minSnapDiskEntry is the smallest encoded disk entry: a memory entry's
// fields plus the 32-byte content sum.
const minSnapDiskEntry = minSnapEntry + 32

// DecodeSnapshot parses and verifies a snapshot. Any structural damage or
// checksum mismatch returns an error wrapping ErrCorrupt; the caller falls
// back to a cold start rather than trusting a partial image.
func DecodeSnapshot(data []byte) (State, error) {
	if len(data) < len(snapMagic)+4 {
		return State{}, fmt.Errorf("%w: snapshot too short (%d bytes)", ErrCorrupt, len(data))
	}
	v1 := bytes.Equal(data[:len(snapMagicV1)], snapMagicV1)
	if !v1 && !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return State{}, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	body := data[len(snapMagic) : len(data)-4]
	want := (&decoder{b: data[len(data)-4:]}).u32()
	if got := crc32.Checksum(body, crcTable); got != want {
		return State{}, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}

	d := &decoder{b: body}
	st := State{Gen: d.u64()}
	n := int(d.u32())
	if n > len(body)/minSnapEntry {
		return State{}, fmt.Errorf("%w: entry count %d impossible for %d bytes", ErrCorrupt, n, len(body))
	}
	st.Entries = make([]EntryState, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		en := EntryState{URL: d.str(maxJournalURL)}
		en.Size = d.i64()
		en.Expires = nanoToTime(d.i64())
		en.EnteredAt = nanoToTime(d.i64())
		en.LastHit = nanoToTime(d.i64())
		en.Hits = d.i64()
		if d.err != nil {
			return State{}, d.err
		}
		if en.URL == "" || en.Size <= 0 || seen[en.URL] {
			return State{}, fmt.Errorf("%w: snapshot entry %d invalid (url %q, size %d)", ErrCorrupt, i, en.URL, en.Size)
		}
		seen[en.URL] = true
		st.Entries = append(st.Entries, en)
	}
	st.Tracker.Window = int(d.i64())
	st.Tracker.Horizon = time.Duration(d.i64())
	st.Tracker.TotalSumSeconds = d.f64()
	st.Tracker.TotalCount = d.i64()
	sn := int(d.u32())
	if sn > (len(body)-d.off)/16+1 {
		return State{}, fmt.Errorf("%w: sample count %d impossible", ErrCorrupt, sn)
	}
	st.Tracker.Samples = make([]cache.TrackerSample, 0, sn)
	for i := 0; i < sn; i++ {
		at := nanoToTime(d.i64())
		age := clampDuration(d.i64())
		st.Tracker.Samples = append(st.Tracker.Samples, cache.TrackerSample{At: at, Age: age})
	}
	if !v1 {
		dn := int(d.u32())
		if d.err == nil && dn > (len(body)-d.off)/minSnapDiskEntry+1 {
			return State{}, fmt.Errorf("%w: disk entry count %d impossible", ErrCorrupt, dn)
		}
		st.Disk = make([]cache.DiskEntry, 0, dn)
		diskSeen := make(map[string]bool, dn)
		for i := 0; i < dn; i++ {
			var de cache.DiskEntry
			de.Doc.URL = d.str(maxJournalURL)
			de.Doc.Size = d.i64()
			de.Doc.Expires = nanoToTime(d.i64())
			de.EnteredAt = nanoToTime(d.i64())
			de.LastHit = nanoToTime(d.i64())
			de.Hits = d.i64()
			copy(de.Sum[:], d.take(32))
			if d.err != nil {
				return State{}, d.err
			}
			if de.Doc.URL == "" || de.Doc.Size <= 0 || diskSeen[de.Doc.URL] || seen[de.Doc.URL] {
				return State{}, fmt.Errorf("%w: snapshot disk entry %d invalid (url %q, size %d)", ErrCorrupt, i, de.Doc.URL, de.Doc.Size)
			}
			diskSeen[de.Doc.URL] = true
			st.Disk = append(st.Disk, de)
		}
	}
	if err := d.done(); err != nil {
		return State{}, err
	}
	return st, nil
}

// CaptureState images a live store into a State. It accepts any
// cache.StoreView: a *cache.Store (the caller holds whatever lock
// serialises access to it) or the consistent all-shards-locked view a
// *cache.ShardedStore passes to its Checkpoint callback.
func CaptureState(store cache.StoreView) State {
	entries := store.Entries()
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].LastHit.Equal(entries[j].LastHit) {
			return entries[i].LastHit.Before(entries[j].LastHit)
		}
		return entries[i].Doc.URL < entries[j].Doc.URL
	})
	st := State{
		Entries: make([]EntryState, 0, len(entries)),
		Tracker: store.TrackerState(),
	}
	for _, e := range entries {
		st.Entries = append(st.Entries, EntryState{
			URL:       e.Doc.URL,
			Size:      e.Doc.Size,
			Expires:   e.Doc.Expires,
			EnteredAt: e.EnteredAt,
			LastHit:   e.LastHit,
			Hits:      e.Hits,
		})
	}
	if dv, ok := store.(interface{ DiskEntries() []cache.DiskEntry }); ok {
		disk := dv.DiskEntries()
		sort.Slice(disk, func(i, j int) bool {
			if !disk[i].LastHit.Equal(disk[j].LastHit) {
				return disk[i].LastHit.Before(disk[j].LastHit)
			}
			return disk[i].Doc.URL < disk[j].Doc.URL
		})
		st.Disk = disk
	}
	return st
}

// RestoreStats reports what Restore put back.
type RestoreStats struct {
	// Entries and Bytes count the restored documents.
	Entries int
	Bytes   int64
	// Skipped counts entries that could not be restored (they no longer
	// fit, e.g. the store was reopened with a smaller capacity).
	Skipped int
	// DiskRestored and DiskLost count blob-tier residency reconciliation:
	// restored entries had a matching checksummed blob on disk, lost ones
	// were claimed by the persisted state but the blob was gone or stale.
	DiskRestored int
	DiskLost     int
}

// RestoreTarget is the write side of recovery: what Restore needs from a
// store to load a recovered State. Implemented by *cache.Store and
// *cache.ShardedStore.
type RestoreTarget interface {
	RestoreEntry(doc cache.Document, enteredAt, lastHit time.Time, hits int64) error
	RestoreTracker(st cache.TrackerState)
}

// Restore loads a recovered State into an empty store: entries in
// ascending last-hit order (so the LRU list rebuilds in recency order,
// and heap policies re-key from the restored metadata) and the
// expiration-age tracker. Entries that do not fit are skipped and
// counted, never fatal — a node that recovers less than everything is
// still better than one that rejoins cold.
func Restore(store RestoreTarget, st State) RestoreStats {
	entries := append([]EntryState(nil), st.Entries...)
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].LastHit.Before(entries[j].LastHit)
	})
	var stats RestoreStats
	for _, e := range entries {
		doc := cache.Document{URL: e.URL, Size: e.Size, Expires: e.Expires}
		if err := store.RestoreEntry(doc, e.EnteredAt, e.LastHit, e.Hits); err != nil {
			stats.Skipped++
			continue
		}
		stats.Entries++
		stats.Bytes += e.Size
	}
	if dt, ok := store.(interface {
		RestoreDisk([]cache.DiskEntry) (int, int)
	}); ok {
		// Reconcile even when st.Disk is empty: blobs the persisted state
		// does not claim are crash-window leftovers the tier must trim.
		stats.DiskRestored, stats.DiskLost = dt.RestoreDisk(st.Disk)
	} else if len(st.Disk) > 0 {
		// No disk tier to receive them (store reopened untiered): the
		// residency claims are unrecoverable, count them lost.
		stats.DiskLost = len(st.Disk)
	}
	store.RestoreTracker(st.Tracker)
	return stats
}
