// Package persist makes a cooperative cache node crash-safe: it combines a
// periodic full snapshot of the cache metadata with an append-only
// CRC32C-framed write-ahead journal of every mutation, so a node killed at
// any instant — including mid-write — reopens with its cache contents,
// per-document metadata, and expiration-age tracker intact instead of
// rejoining the group cold with a meaningless contention signal.
//
// The store stays decoupled: persistence observes cache.Store events (see
// cache.SetEventSink) and never reaches into replacement policies.
//
// Disk layout under the data directory:
//
//	snapshot.dat        latest atomic snapshot (see snapshot.go)
//	journal.<gen>.wal   append-only journal continuing that snapshot
//
// Checkpointing rotates to journal generation gen+1 *before* writing the
// new snapshot, so every crash window replays cleanly: an old snapshot
// plus the full old journal plus any newer journals reproduces the exact
// pre-crash state, and a bad byte anywhere truncates replay at the first
// unverifiable frame instead of failing recovery.
package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"eacache/internal/cache"
)

const (
	snapshotName = "snapshot.dat"
	snapshotTmp  = "snapshot.tmp"
	journalExt   = ".wal"
)

// Config configures a Persister.
type Config struct {
	// Dir is the data directory; created if missing. Required.
	Dir string
	// Logger receives recovery and degradation notices; nil discards.
	Logger *log.Logger
	// BatchFrames bounds the group-commit queue: at most this many frames
	// wait for the flusher before further appenders block (backpressure).
	// 0 means DefaultBatchFrames; 1 effectively disables coalescing.
	BatchFrames int
}

// DefaultBatchFrames is the group-commit queue bound when
// Config.BatchFrames is 0. It caps the frames coalesced into one write()
// and therefore the memory parked in the queue (frames are at most
// maxFramePayload+frameOverhead bytes, cache events far smaller).
const DefaultBatchFrames = 256

// Report describes what one Open recovered, for warm-restart logging and
// tests.
type Report struct {
	// SnapshotLoaded reports whether a verified snapshot was found.
	SnapshotLoaded bool
	// SnapshotEntries is the number of entries in that snapshot.
	SnapshotEntries int
	// JournalRecords is how many journal records replayed cleanly.
	JournalRecords int
	// JournalBytes is how many journal bytes those records span.
	JournalBytes int64
	// DiscardedBytes is how many journal bytes were dropped (torn tail,
	// corruption, or journals stranded past a damaged one).
	DiscardedBytes int64
	// Discarded says why bytes were discarded or a snapshot/journal was
	// rejected; empty when recovery was clean.
	Discarded string
	// Entries and Bytes describe the final recovered state.
	Entries int
	Bytes   int64
	// DiskEntries and DiskBytes describe the recovered blob-tier residency
	// claims (before reconciliation against the blob store's own index).
	DiskEntries int
	DiskBytes   int64
}

// Persister owns a node's data directory: it replays whatever survived
// the last run at Open, journals every cache event, and checkpoints on
// demand. Append/Rotate/WriteSnapshot are safe for concurrent use with
// each other, but the caller must serialise Rotate against the capture of
// the state it snapshots (see Checkpoint contract in internal/netnode).
//
// Appends are group-committed: an appender parks its frame in a bounded
// queue and blocks until the background flusher has written it, so
// concurrent appenders coalesce into one write() syscall per batch while
// the durability contract is unchanged — when Append returns, the frame
// is physically in the journal file (a recovery that reads the file at
// that instant replays it). A lone appender degenerates to exactly the
// old one-write-per-event behaviour. Sync policy is also unchanged:
// fsync happens at Rotate/Close, not per batch, so crash semantics
// (torn-tail truncation, replay-on-snapshot) are identical.
type Persister struct {
	dir    string
	logger *log.Logger

	mu      sync.Mutex
	journal *os.File
	gen     uint64
	closed  bool

	// Group commit (all guarded by mu; the conds share it).
	batchCap int
	pending  [][]byte // frames queued for the flusher
	spare    [][]byte // recycled backing array for pending
	seqIn    uint64   // frames enqueued so far
	seqDone  uint64   // frames physically written so far
	// flushCond wakes the flusher when frames arrive or the persister
	// closes; doneCond wakes appenders (and drain barriers) when seqDone
	// advances or the queue drains.
	flushCond     *sync.Cond
	doneCond      *sync.Cond
	flusherExited chan struct{}

	recovered State
	report    Report
}

// Open replays the data directory and leaves the persister ready to
// append. Recovery is corruption-tolerant by design: a bad snapshot falls
// back to cold start, a bad journal frame truncates replay there, and an
// unreadable journal falls back to snapshot-only — each is logged and
// reported, never fatal.
func Open(cfg Config) (*Persister, error) {
	if cfg.Dir == "" {
		return nil, errors.New("persist: empty data dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if cfg.BatchFrames < 0 {
		return nil, fmt.Errorf("persist: negative batch bound %d", cfg.BatchFrames)
	}
	batchCap := cfg.BatchFrames
	if batchCap == 0 {
		batchCap = DefaultBatchFrames
	}
	p := &Persister{
		dir:           cfg.Dir,
		logger:        cfg.Logger,
		batchCap:      batchCap,
		flusherExited: make(chan struct{}),
	}
	p.flushCond = sync.NewCond(&p.mu)
	p.doneCond = sync.NewCond(&p.mu)

	// 1. Snapshot, if any.
	var base State
	snapData, err := os.ReadFile(filepath.Join(p.dir, snapshotName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Cold start.
	case err != nil:
		p.noteDiscard("snapshot unreadable: %v", err)
	default:
		st, derr := DecodeSnapshot(snapData)
		if derr != nil {
			p.noteDiscard("snapshot rejected: %v", derr)
		} else {
			base = st
			p.report.SnapshotLoaded = true
			p.report.SnapshotEntries = len(st.Entries)
		}
	}

	// 2. Journal chain: start at the snapshot's generation (or the oldest
	// journal on disk when there is no snapshot) and replay consecutive
	// generations until one is missing or damaged.
	gens := p.listJournalGens()
	start := base.Gen
	if !p.report.SnapshotLoaded && len(gens) > 0 {
		start = gens[0]
	}
	rep := newReplayState(base)
	cur := start
	appendGen := start
	appendLen := int64(-1) // -1: create fresh
	rescue := false
	for {
		data, rerr := os.ReadFile(p.journalPath(cur))
		if errors.Is(rerr, fs.ErrNotExist) {
			break
		}
		if rerr != nil {
			// Unreadable mid-chain: snapshot+prefix only; append to a
			// generation past everything on disk so the bad file is
			// never extended or replayed over.
			p.noteDiscard("journal gen %d unreadable: %v", cur, rerr)
			appendGen = maxGen(gens) + 1
			appendLen = -1
			rescue = true
			break
		}
		events, good, damage := ReplayJournal(data)
		for _, ev := range events {
			rep.apply(ev)
		}
		p.report.JournalRecords += len(events)
		p.report.JournalBytes += int64(good)
		appendGen, appendLen = cur, int64(good)
		if damage != nil {
			p.report.DiscardedBytes += int64(len(data) - good)
			p.noteDiscard("journal gen %d: %v", cur, damage)
			break
		}
		cur++
	}

	p.recovered = rep.state()
	p.recovered.Gen = appendGen
	p.report.Entries = len(p.recovered.Entries)
	p.report.Bytes = p.recovered.LiveBytes()
	p.report.DiskEntries = len(p.recovered.Disk)
	for _, de := range p.recovered.Disk {
		p.report.DiskBytes += de.Doc.Size
	}

	// 3. Open the append target, truncating away any torn tail so new
	// frames land on a verifiable boundary; sweep journals outside the
	// live chain (stale generations below the snapshot, strands past a
	// damaged file) so they cannot resurrect on a later recovery.
	f, err := p.openJournal(appendGen, appendLen)
	if err != nil {
		return nil, err
	}
	p.journal = f
	p.gen = appendGen
	if rescue {
		// The decision to abandon the unreadable generation must be made
		// durable: a snapshot stamped with the new generation moves the
		// recovery start past the wreck, otherwise the next Open would
		// break at the same file and never reach the journal we are about
		// to write. WriteSnapshot also sweeps the superseded generations,
		// wreck included.
		if werr := p.WriteSnapshot(p.recovered); werr != nil {
			p.logf("persist: rescue snapshot: %v", werr)
		}
	}
	for _, g := range gens {
		if g < start || g > appendGen {
			if rmErr := os.Remove(p.journalPath(g)); rmErr != nil {
				p.logf("persist: sweep journal gen %d: %v", g, rmErr)
			}
		}
	}
	go p.flusher()
	return p, nil
}

// RecoveredState returns the state recovered at Open; the caller loads it
// into a store with Restore before attaching the event sink.
func (p *Persister) RecoveredState() State { return p.recovered }

// Report returns what Open recovered and discarded.
func (p *Persister) Report() Report { return p.report }

// Append journals one cache event via group commit: the frame joins the
// pending batch and Append blocks until the flusher has written it, so
// the frame is in the journal file when Append returns (recovery-visible
// immediately, exactly like the old direct write). It never fails the
// caller's request path: an I/O error degrades durability and is logged,
// the cache keeps serving.
func (p *Persister) Append(ev cache.Event) {
	frame, err := MarshalEvent(ev)
	if err != nil {
		p.logf("persist: drop event: %v", err)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Backpressure: a full queue means the flusher is behind; wait for it
	// to drain rather than growing the batch without bound.
	for len(p.pending) >= p.batchCap && !p.closed {
		p.doneCond.Wait()
	}
	if p.closed || p.journal == nil {
		return
	}
	p.pending = append(p.pending, frame)
	p.seqIn++
	seq := p.seqIn
	p.flushCond.Signal()
	// Wait for the flusher to cover our frame. While it writes batch k,
	// later appenders park here forming batch k+1 — the coalescing.
	for p.seqDone < seq && !p.closed {
		p.doneCond.Wait()
	}
}

// flusher is the single background goroutine that drains the pending
// queue: it swaps the whole batch out under the lock, concatenates the
// frames, and issues ONE write() for the batch. It exits when the
// persister closes with the queue empty (Close drains first).
func (p *Persister) flusher() {
	defer close(p.flusherExited)
	var buf []byte
	p.mu.Lock()
	for {
		for len(p.pending) == 0 && !p.closed {
			p.flushCond.Wait()
		}
		if len(p.pending) == 0 {
			p.mu.Unlock()
			return
		}
		batch := p.pending
		p.pending = p.spare[:0]
		target := p.journal
		p.mu.Unlock()

		buf = buf[:0]
		for _, frame := range batch {
			buf = append(buf, frame...)
		}
		if target != nil {
			if _, err := target.Write(buf); err != nil {
				p.logf("persist: journal append (%d frames): %v", len(batch), err)
			}
		}

		p.mu.Lock()
		// Frames are on disk (or dropped with a logged error — durability
		// degraded, same contract as before): release the appenders.
		p.seqDone += uint64(len(batch))
		p.spare = batch[:0]
		p.doneCond.Broadcast()
	}
}

// drainLocked blocks until every enqueued frame has been written (or the
// persister closes). Caller holds p.mu. This is the group-commit barrier:
// after it returns, the journal file contains a consistent prefix ending
// at the current rotation/close point.
func (p *Persister) drainLocked() {
	for p.seqDone < p.seqIn && !p.closed {
		p.doneCond.Wait()
	}
}

// Rotate switches appends to the next journal generation. The caller must
// hold the lock that serialises cache mutations while calling it, so the
// state it is about to snapshot aligns exactly with the rotation point.
// Rotate first drains the group-commit queue, so every event appended
// before the capture lands in the old generation and the new journal
// starts empty at exactly the snapshot's state.
func (p *Persister) Rotate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drainLocked()
	if p.closed {
		return errors.New("persist: closed")
	}
	next := p.gen + 1
	f, err := p.openJournal(next, -1)
	if err != nil {
		return err
	}
	old := p.journal
	p.journal = f
	p.gen = next
	if old != nil {
		_ = old.Sync()
		_ = old.Close()
	}
	return nil
}

// WriteSnapshot durably writes st as the new snapshot (temp file, fsync,
// atomic rename), stamped with the current journal generation, then
// deletes the journals the snapshot supersedes. Call after Rotate with
// the state captured at the rotation point.
func (p *Persister) WriteSnapshot(st State) error {
	p.mu.Lock()
	gen := p.gen
	p.mu.Unlock()
	st.Gen = gen
	data := EncodeSnapshot(st)

	tmp := filepath.Join(p.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapshotName)); err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	p.syncDir()
	for _, g := range p.listJournalGens() {
		if g < gen {
			if err := os.Remove(p.journalPath(g)); err != nil {
				p.logf("persist: remove superseded journal gen %d: %v", g, err)
			}
		}
	}
	return nil
}

// Close drains the group-commit queue, then syncs and closes the
// journal. It does not snapshot; callers that want a final checkpoint
// (graceful drain) do Rotate + WriteSnapshot first. Close is idempotent.
func (p *Persister) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.drainLocked()
	p.closed = true
	journal := p.journal
	p.journal = nil
	// Wake everyone: the flusher exits (queue is empty and closed is
	// set), blocked appenders give up.
	p.flushCond.Signal()
	p.doneCond.Broadcast()
	p.mu.Unlock()
	<-p.flusherExited
	if journal == nil {
		return nil
	}
	syncErr := journal.Sync()
	closeErr := journal.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// openJournal opens journal generation gen for appending. size >= 0
// truncates to that many bytes first (cutting a torn tail); -1 starts the
// file empty.
func (p *Persister) openJournal(gen uint64, size int64) (*os.File, error) {
	path := p.journalPath(gen)
	flags := os.O_CREATE | os.O_WRONLY
	if size < 0 {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	if size >= 0 {
		if err := f.Truncate(size); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("persist: truncate journal: %w", err)
		}
		if _, err := f.Seek(size, 0); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("persist: seek journal: %w", err)
		}
	}
	return f, nil
}

func (p *Persister) journalPath(gen uint64) string {
	return filepath.Join(p.dir, fmt.Sprintf("journal.%d%s", gen, journalExt))
}

// listJournalGens returns the journal generations on disk, ascending.
func (p *Persister) listJournalGens() []uint64 {
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "journal.") || !strings.HasSuffix(name, journalExt) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "journal."), journalExt)
		g, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

func maxGen(gens []uint64) uint64 {
	if len(gens) == 0 {
		return 0
	}
	return gens[len(gens)-1]
}

// syncDir fsyncs the data directory so a rename survives power loss;
// best-effort (not all platforms support directory fsync).
func (p *Persister) syncDir() {
	d, err := os.Open(p.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

func (p *Persister) noteDiscard(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if p.report.Discarded == "" {
		p.report.Discarded = msg
	} else {
		p.report.Discarded += "; " + msg
	}
	p.logf("persist: %s", msg)
}

func (p *Persister) logf(format string, args ...any) {
	if p.logger != nil {
		p.logger.Printf(format, args...)
	}
}

// replayState folds journal events over a snapshot base, mirroring
// cache.Store semantics exactly: an insert of a cached URL refreshes it
// like a hit, hits and promotions bump the counter and last-hit time, and
// evictions feed the expiration-age tracker. Tier moves mirror
// cache.TieredStore: a demote shifts the entry from the memory map to the
// disk map without touching the tracker (the document did not exit), a
// promote-disk shifts it back, and only disk evictions and demotion drops
// (which stay plain memory evicts) record an exit age.
type replayState struct {
	entries map[string]*EntryState
	disk    map[string]*cache.DiskEntry
	tracker *cache.ExpAgeTracker
}

// replayRing bounds the eviction samples kept during replay when the base
// tracker state is narrower (or, with no snapshot, absent). Recovery does
// not know what window the store will be configured with, so it keeps a
// generous recent-sample ring; Store.RestoreTracker re-windows it into the
// configured shape.
const replayRing = 4096

func newReplayState(base State) *replayState {
	tr := base.Tracker
	if tr.Horizon <= 0 && tr.Window < replayRing {
		tr.Window = replayRing
	}
	r := &replayState{
		entries: make(map[string]*EntryState, len(base.Entries)),
		disk:    make(map[string]*cache.DiskEntry, len(base.Disk)),
		tracker: cache.NewTrackerFromState(tr),
	}
	for i := range base.Entries {
		e := base.Entries[i]
		r.entries[e.URL] = &e
	}
	for i := range base.Disk {
		de := base.Disk[i]
		r.disk[de.Doc.URL] = &de
	}
	return r
}

func (r *replayState) apply(ev cache.Event) {
	if ev.Tier == cache.TierDisk {
		switch ev.Kind {
		case cache.EventEvict:
			delete(r.disk, ev.Doc.URL)
			r.tracker.Record(ev.Age, ev.At)
		case cache.EventRemove:
			delete(r.disk, ev.Doc.URL)
		}
		return
	}
	switch ev.Kind {
	case cache.EventInsert:
		// A fresh body supersedes any stale disk copy (the tiered store
		// journals the disk-remove first; this is belt and braces).
		delete(r.disk, ev.Doc.URL)
		if e, ok := r.entries[ev.Doc.URL]; ok {
			e.Size = ev.Doc.Size
			e.Expires = ev.Doc.Expires
			e.Hits++
			e.LastHit = ev.At
			return
		}
		r.entries[ev.Doc.URL] = &EntryState{
			URL:       ev.Doc.URL,
			Size:      ev.Doc.Size,
			Expires:   ev.Doc.Expires,
			EnteredAt: ev.At,
			LastHit:   ev.At,
			Hits:      1,
		}
	case cache.EventHit, cache.EventPromote:
		if e, ok := r.entries[ev.Doc.URL]; ok {
			e.Hits++
			e.LastHit = ev.At
		}
	case cache.EventEvict:
		delete(r.entries, ev.Doc.URL)
		r.tracker.Record(ev.Age, ev.At)
	case cache.EventRemove:
		delete(r.entries, ev.Doc.URL)
	case cache.EventDemote:
		delete(r.entries, ev.Doc.URL)
		r.disk[ev.Doc.URL] = &cache.DiskEntry{
			Doc:       ev.Doc,
			EnteredAt: ev.EnteredAt,
			LastHit:   ev.LastHit,
			Hits:      ev.Hits,
			Sum:       ev.Sum,
		}
	case cache.EventPromoteFromDisk:
		delete(r.disk, ev.Doc.URL)
		r.entries[ev.Doc.URL] = &EntryState{
			URL:       ev.Doc.URL,
			Size:      ev.Doc.Size,
			Expires:   ev.Doc.Expires,
			EnteredAt: ev.EnteredAt,
			LastHit:   ev.At,
			Hits:      ev.Hits,
		}
	}
}

// state flattens the replay into a State (entries in ascending last-hit
// order, ties broken by URL for determinism).
func (r *replayState) state() State {
	st := State{
		Entries: make([]EntryState, 0, len(r.entries)),
		Tracker: r.tracker.State(),
	}
	for _, e := range r.entries {
		st.Entries = append(st.Entries, *e)
	}
	sort.Slice(st.Entries, func(i, j int) bool {
		if !st.Entries[i].LastHit.Equal(st.Entries[j].LastHit) {
			return st.Entries[i].LastHit.Before(st.Entries[j].LastHit)
		}
		return st.Entries[i].URL < st.Entries[j].URL
	})
	if len(r.disk) > 0 {
		st.Disk = make([]cache.DiskEntry, 0, len(r.disk))
		for _, de := range r.disk {
			st.Disk = append(st.Disk, *de)
		}
		sort.Slice(st.Disk, func(i, j int) bool {
			if !st.Disk[i].LastHit.Equal(st.Disk[j].LastHit) {
				return st.Disk[i].LastHit.Before(st.Disk[j].LastHit)
			}
			return st.Disk[i].Doc.URL < st.Disk[j].Doc.URL
		})
	}
	return st
}
