package persist

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eacache/internal/cache"
)

// Group-commit tests: many goroutines appending at once (as the sharded
// store's per-shard event sinks do), with the write-through guarantee and
// the rotate/close drain barriers under load.

func groupEventTime(i int) time.Time {
	return time.Date(2001, time.March, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
}

// TestGroupCommitConcurrentAppends drives concurrent appenders through a
// small batch bound (forcing backpressure and multi-frame batches), then
// recovers WITHOUT closing the first persister: Append's write-through
// contract means every returned append must already be in the file.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Config{Dir: dir, BatchFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const workers = 12
	const docs = 20
	const hitsPerDoc = 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for d := 0; d < docs; d++ {
				doc := cache.Document{
					URL:     fmt.Sprintf("http://w%d.example.edu/d%d", w, d),
					Size:    int64(100 + d),
					Expires: groupEventTime(10_000),
				}
				p.Append(cache.Event{Kind: cache.EventInsert, Doc: doc, At: groupEventTime(d)})
				for h := 0; h < hitsPerDoc; h++ {
					p.Append(cache.Event{Kind: cache.EventHit, Doc: doc, At: groupEventTime(d + h + 1)})
				}
				if d%4 == 3 {
					p.Append(cache.Event{Kind: cache.EventRemove, Doc: doc, At: groupEventTime(d + 10)})
				}
			}
		}(w)
	}
	wg.Wait()

	// Second persister on the same (still open) dir — the journal file
	// must already hold every acknowledged append.
	q, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	st := q.RecoveredState()
	byURL := map[string]EntryState{}
	for _, e := range st.Entries {
		byURL[e.URL] = e
	}
	wantLive := workers * (docs - docs/4)
	if len(byURL) != wantLive {
		t.Fatalf("recovered %d live entries, want %d", len(byURL), wantLive)
	}
	for w := 0; w < workers; w++ {
		for d := 0; d < docs; d++ {
			url := fmt.Sprintf("http://w%d.example.edu/d%d", w, d)
			e, ok := byURL[url]
			if d%4 == 3 {
				if ok {
					t.Fatalf("%s recovered despite remove", url)
				}
				continue
			}
			if !ok {
				t.Fatalf("%s lost: acknowledged appends not in journal", url)
			}
			if want := int64(1 + hitsPerDoc); e.Hits != want {
				t.Fatalf("%s recovered with %d hits, want %d", url, e.Hits, want)
			}
		}
	}
	if rep := q.Report(); rep.DiscardedBytes != 0 || rep.Discarded != "" {
		t.Fatalf("concurrent append journal was damaged: %+v", rep)
	}
}

// TestGroupCommitRotateBarrier rotates the journal repeatedly while
// appenders run. Every acknowledged append must survive recovery across
// the whole generation chain, and every generation must replay cleanly —
// the drain barrier means no frame can straddle or trail into the wrong
// generation.
func TestGroupCommitRotateBarrier(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Config{Dir: dir, BatchFrames: 4})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const docs = 40
	var appenders, rotator sync.WaitGroup
	stop := make(chan struct{})
	rotator.Add(1)
	go func() {
		defer rotator.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := p.Rotate(); err != nil {
				t.Errorf("Rotate: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for w := 0; w < workers; w++ {
		appenders.Add(1)
		go func(w int) {
			defer appenders.Done()
			for d := 0; d < docs; d++ {
				p.Append(cache.Event{
					Kind: cache.EventInsert,
					Doc: cache.Document{
						URL:     fmt.Sprintf("http://w%d.example.edu/d%d", w, d),
						Size:    64,
						Expires: groupEventTime(10_000),
					},
					At: groupEventTime(d),
				})
			}
		}(w)
	}
	appenders.Wait()
	close(stop)
	rotator.Wait()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	q, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if rep := q.Report(); rep.DiscardedBytes != 0 || rep.Discarded != "" {
		t.Fatalf("rotated journals damaged: %+v", rep)
	}
	got := map[string]bool{}
	for _, e := range q.RecoveredState().Entries {
		got[e.URL] = true
	}
	if len(got) != workers*docs {
		t.Fatalf("recovered %d entries, want %d", len(got), workers*docs)
	}
}

// TestGroupCommitCloseDrains closes the persister with appends in flight:
// every Append that returned before Close must be recovered.
func TestGroupCommitCloseDrains(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Config{Dir: dir, BatchFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	const docs = 100
	for d := 0; d < docs; d++ {
		p.Append(cache.Event{
			Kind: cache.EventInsert,
			Doc:  cache.Document{URL: fmt.Sprintf("http://h/d%d", d), Size: 1, Expires: groupEventTime(10_000)},
			At:   groupEventTime(d),
		})
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	p.Append(cache.Event{ // append after close is a silent no-op
		Kind: cache.EventInsert,
		Doc:  cache.Document{URL: "http://h/late", Size: 1, Expires: groupEventTime(10_000)},
		At:   groupEventTime(0),
	})

	q, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	st := q.RecoveredState()
	if len(st.Entries) != docs {
		t.Fatalf("recovered %d entries, want %d", len(st.Entries), docs)
	}
	for _, e := range st.Entries {
		if e.URL == "http://h/late" {
			t.Fatal("append after Close leaked into the journal")
		}
	}
}
