package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/dist"
	"eacache/internal/faults"
)

// newStore builds a small store with a count-window tracker.
func newStore(t *testing.T, capacity int64) *cache.Store {
	t.Helper()
	s, err := cache.New(cache.Config{Capacity: capacity, ExpirationWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// openPersister opens dir and fails the test on error.
func openPersister(t *testing.T, dir string) *Persister {
	t.Helper()
	p, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return p
}

// driveWorkload runs a deterministic mix of puts/gets/touches/removes
// through the store (whose event sink feeds the persister) and returns
// the final wall-clock-free timestamp used.
func driveWorkload(t *testing.T, store *cache.Store, seed uint64, ops int) {
	t.Helper()
	rng := dist.NewRNG(seed)
	now := t0()
	for i := 0; i < ops; i++ {
		now = now.Add(time.Duration(1+rng.Intn(1000)) * time.Millisecond)
		url := fmt.Sprintf("http://w/%d", rng.Intn(40))
		switch rng.Intn(10) {
		case 0:
			store.Remove(url)
		case 1, 2:
			store.Get(url, now)
		case 3:
			store.Touch(url, now)
		default:
			size := int64(64 + rng.Intn(2048))
			if _, err := store.Put(cache.Document{URL: url, Size: size}, now); err != nil {
				t.Fatalf("put %s: %v", url, err)
			}
		}
	}
}

// assertSameState fails unless b contains exactly a's entries (with
// identical metadata) and reports the same expiration age.
func assertSameState(t *testing.T, a, b *cache.Store, now time.Time) {
	t.Helper()
	if a.Len() != b.Len() || a.Used() != b.Used() {
		t.Fatalf("len/used = %d/%d, want %d/%d", b.Len(), b.Used(), a.Len(), a.Used())
	}
	for _, url := range a.URLs() {
		ae, _ := a.Entry(url)
		be, ok := b.Entry(url)
		if !ok {
			t.Fatalf("recovered store missing %s", url)
		}
		if be.Doc != ae.Doc || be.Hits != ae.Hits ||
			!be.EnteredAt.Equal(ae.EnteredAt) || !be.LastHit.Equal(ae.LastHit) {
			t.Fatalf("%s: entry %+v, want %+v", url, be, ae)
		}
	}
	if got, want := b.ExpirationAge(now), a.ExpirationAge(now); got != want {
		t.Fatalf("expiration age = %v, want %v", got, want)
	}
	if got, want := b.CumulativeExpirationAge(), a.CumulativeExpirationAge(); got != want {
		t.Fatalf("cumulative expiration age = %v, want %v", got, want)
	}
}

// recoverInto replays dir into a fresh store and returns it with the
// persister.
func recoverInto(t *testing.T, dir string, capacity int64) (*cache.Store, *Persister) {
	t.Helper()
	p := openPersister(t, dir)
	s := newStore(t, capacity)
	Restore(s, p.RecoveredState())
	return s, p
}

// TestRecoverJournalOnly abandons the persister without any snapshot (the
// kill -9 case before the first checkpoint) and recovers from the journal
// alone.
func TestRecoverJournalOnly(t *testing.T) {
	dir := t.TempDir()
	live := newStore(t, 8<<10)
	p := openPersister(t, dir)
	live.SetEventSink(p.Append)
	driveWorkload(t, live, 1, 400)
	// Crash: no Close, no snapshot. (The OS file is shared, so writes are
	// already in the file; a real kill -9 preserves exactly these bytes.)

	got, p2 := recoverInto(t, dir, 8<<10)
	defer p2.Close()
	assertSameState(t, live, got, t0().Add(time.Hour))
	rep := p2.Report()
	if rep.SnapshotLoaded || rep.JournalRecords == 0 || rep.Discarded != "" {
		t.Fatalf("report = %+v", rep)
	}
	p.Close()
}

// TestRecoverSnapshotPlusJournal checkpoints mid-workload and keeps
// mutating, so recovery must compose snapshot + journal.
func TestRecoverSnapshotPlusJournal(t *testing.T) {
	dir := t.TempDir()
	live := newStore(t, 8<<10)
	p := openPersister(t, dir)
	live.SetEventSink(p.Append)

	driveWorkload(t, live, 2, 300)
	st := CaptureState(live)
	if err := p.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, live, 3, 300)
	// Crash.

	got, p2 := recoverInto(t, dir, 8<<10)
	defer p2.Close()
	assertSameState(t, live, got, t0().Add(time.Hour))
	rep := p2.Report()
	if !rep.SnapshotLoaded {
		t.Fatalf("snapshot not loaded: %+v", rep)
	}
	p.Close()
}

// TestRecoverAfterCleanDrain closes everything properly: recovery should
// come entirely from the final snapshot.
func TestRecoverAfterCleanDrain(t *testing.T) {
	dir := t.TempDir()
	live := newStore(t, 8<<10)
	p := openPersister(t, dir)
	live.SetEventSink(p.Append)
	driveWorkload(t, live, 4, 500)

	st := CaptureState(live)
	if err := p.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	live.SetEventSink(nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	got, p2 := recoverInto(t, dir, 8<<10)
	defer p2.Close()
	assertSameState(t, live, got, t0().Add(time.Hour))
	rep := p2.Report()
	if !rep.SnapshotLoaded || rep.JournalRecords != 0 || rep.DiscardedBytes != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestKillMidWrite truncates the on-disk journal at arbitrary offsets —
// the torn write of a node killed mid-append — and requires recovery to
// keep every fully-committed record and carry on appending cleanly.
func TestKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	live := newStore(t, 8<<10)
	p := openPersister(t, dir)
	live.SetEventSink(p.Append)
	driveWorkload(t, live, 5, 200)
	p.Close()

	jpath := filepath.Join(dir, "journal.0.wal")
	full, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents, _, damage := ReplayJournal(full)
	if damage != nil {
		t.Fatalf("clean journal damaged: %v", damage)
	}

	rng := dist.NewRNG(99)
	for trial := 0; trial < 25; trial++ {
		cut := rng.Intn(len(full) + 1)
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, "journal.0.wal"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, p2 := recoverInto(t, sub, 8<<10)
		rep := p2.Report()
		if rep.JournalBytes > int64(cut) {
			t.Fatalf("cut %d: claimed %d journal bytes", cut, rep.JournalBytes)
		}
		// Replay the committed prefix with an independent oracle and
		// require identical state.
		ref := refReplay(t, wantEvents, cut)
		assertSameState(t, ref, got, t0().Add(time.Hour))
		// The reopened journal must be appendable and replayable.
		got.SetEventSink(p2.Append)
		if _, err := got.Put(cache.Document{URL: "http://post/crash", Size: 64}, t0().Add(2*time.Hour)); err != nil {
			t.Fatal(err)
		}
		p2.Close()

		got3, p3 := recoverInto(t, sub, 8<<10)
		if !got3.Contains("http://post/crash") {
			t.Fatalf("cut %d: post-crash append lost", cut)
		}
		p3.Close()
	}
}

// refReplay rebuilds the state the journal prefix before byte offset cut
// describes, at single-event granularity. A cut can land between an
// eviction record and the insert that triggered it, so the oracle must not
// re-run the eviction policy: it applies events to an effectively
// unbounded store, removes eviction victims explicitly, and rebuilds the
// tracker from the evict records the way the store recorded them.
func refReplay(t *testing.T, events []cache.Event, cut int) *cache.Store {
	t.Helper()
	ref := newStore(t, 1<<40)
	var tr cache.TrackerState
	off := 0
	for _, ev := range events {
		frame, err := MarshalEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		if off+len(frame) > cut {
			break
		}
		off += len(frame)
		switch ev.Kind {
		case cache.EventInsert:
			if _, err := ref.Put(ev.Doc, ev.At); err != nil {
				t.Fatal(err)
			}
		case cache.EventHit:
			ref.Get(ev.Doc.URL, ev.At)
		case cache.EventPromote:
			ref.Touch(ev.Doc.URL, ev.At)
		case cache.EventEvict:
			ref.Remove(ev.Doc.URL)
			tr.TotalSumSeconds += ev.Age.Seconds()
			tr.TotalCount++
			tr.Samples = append(tr.Samples, cache.TrackerSample{At: ev.At, Age: ev.Age})
		case cache.EventRemove:
			ref.Remove(ev.Doc.URL)
		}
	}
	ref.RestoreTracker(tr)
	return ref
}

// TestCheckpointCrashWindows simulates dying between Rotate and
// WriteSnapshot (old snapshot + two journals on disk) and after
// WriteSnapshot but before the old journal is swept.
func TestCheckpointCrashWindows(t *testing.T) {
	// Window 1: rotate happened, snapshot never landed.
	dir := t.TempDir()
	live := newStore(t, 8<<10)
	p := openPersister(t, dir)
	live.SetEventSink(p.Append)
	driveWorkload(t, live, 6, 200)
	if err := p.Rotate(); err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, live, 7, 200) // lands in journal gen 1
	// Crash before WriteSnapshot.
	got, p2 := recoverInto(t, dir, 8<<10)
	assertSameState(t, live, got, t0().Add(time.Hour))
	p2.Close()
	p.Close()

	// Window 2: snapshot landed, old journal still on disk (sweep lost
	// the race). Recovery must start from the snapshot's generation and
	// ignore the stale journal.
	dir2 := t.TempDir()
	live2 := newStore(t, 8<<10)
	pp := openPersister(t, dir2)
	live2.SetEventSink(pp.Append)
	driveWorkload(t, live2, 8, 200)
	stale, err := os.ReadFile(filepath.Join(dir2, "journal.0.wal"))
	if err != nil {
		t.Fatal(err)
	}
	st := CaptureState(live2)
	if err := pp.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := pp.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, live2, 9, 100)
	// Resurrect the swept journal as if the remove never happened.
	if err := os.WriteFile(filepath.Join(dir2, "journal.0.wal"), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	got2, pp2 := recoverInto(t, dir2, 8<<10)
	assertSameState(t, live2, got2, t0().Add(time.Hour))
	if _, err := os.Stat(filepath.Join(dir2, "journal.0.wal")); !os.IsNotExist(err) {
		t.Fatalf("stale journal not swept: %v", err)
	}
	pp2.Close()
	pp.Close()
}

// TestCorruptSnapshotFallsBackCold flips bits in the snapshot; recovery
// must reject it, log the discard, and still replay the journal chain
// from the oldest journal on disk.
func TestCorruptSnapshotFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	live := newStore(t, 8<<10)
	p := openPersister(t, dir)
	live.SetEventSink(p.Append)
	driveWorkload(t, live, 10, 100)
	st := CaptureState(live)
	if err := p.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	p.Close()

	spath := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faults.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, inj.FlipBits(data, 3), 0o644); err != nil {
		t.Fatal(err)
	}

	got, p2 := recoverInto(t, dir, 8<<10)
	defer p2.Close()
	rep := p2.Report()
	if rep.SnapshotLoaded {
		t.Fatal("corrupt snapshot loaded")
	}
	if rep.Discarded == "" {
		t.Fatal("discard not reported")
	}
	// Journal gen 1 exists but is empty (all state was in the snapshot),
	// so the store comes back cold — the documented fallback.
	if got.Len() != 0 {
		t.Fatalf("expected cold store, got %d entries", got.Len())
	}
}

// TestUnreadableJournalFallsBackSnapshotOnly replaces the journal with a
// directory (ReadFile fails outright) and expects snapshot-only recovery
// plus an append generation safely beyond the wreckage.
func TestUnreadableJournalFallsBackSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	live := newStore(t, 8<<10)
	p := openPersister(t, dir)
	live.SetEventSink(p.Append)
	driveWorkload(t, live, 12, 150)
	st := CaptureState(live)
	if err := p.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, live, 13, 50) // these events will be lost with the journal
	p.Close()

	jpath := filepath.Join(dir, "journal.1.wal")
	if err := os.Remove(jpath); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(jpath, 0o755); err != nil {
		t.Fatal(err)
	}

	got, p2 := recoverInto(t, dir, 8<<10)
	defer p2.Close()
	rep := p2.Report()
	if !rep.SnapshotLoaded || rep.Discarded == "" {
		t.Fatalf("report = %+v", rep)
	}
	if got.Len() != len(st.Entries) {
		t.Fatalf("recovered %d entries, want snapshot's %d", got.Len(), len(st.Entries))
	}
	// New appends must go to a generation past the wreck and survive.
	got.SetEventSink(p2.Append)
	if _, err := got.Put(cache.Document{URL: "http://after/wreck", Size: 64}, t0().Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	p2.Close()
	got3, p3 := recoverInto(t, dir, 8<<10)
	defer p3.Close()
	if !got3.Contains("http://after/wreck") {
		t.Fatal("append after unreadable-journal fallback lost")
	}
}

// TestReplayPropertyRandomWorkloads is the property test: for many seeds,
// crash-replaying snapshot+journal reproduces the exact live store state
// and expiration age.
func TestReplayPropertyRandomWorkloads(t *testing.T) {
	for seed := uint64(100); seed < 120; seed++ {
		dir := t.TempDir()
		live := newStore(t, 4<<10)
		p := openPersister(t, dir)
		live.SetEventSink(p.Append)
		driveWorkload(t, live, seed, 600)
		if seed%3 == 0 {
			st := CaptureState(live)
			if err := p.Rotate(); err != nil {
				t.Fatal(err)
			}
			if err := p.WriteSnapshot(st); err != nil {
				t.Fatal(err)
			}
			driveWorkload(t, live, seed+1000, 300)
		}
		// Crash without Close.
		got, p2 := recoverInto(t, dir, 4<<10)
		assertSameState(t, live, got, t0().Add(time.Hour))
		p2.Close()
		p.Close()
	}
}

// TestRestoreSkipsWhatNoLongerFits reopens with a smaller capacity; the
// oversized remainder is skipped, not fatal.
func TestRestoreSkipsWhatNoLongerFits(t *testing.T) {
	dir := t.TempDir()
	live := newStore(t, 8<<10)
	p := openPersister(t, dir)
	live.SetEventSink(p.Append)
	driveWorkload(t, live, 14, 300)
	p.Close()

	p2 := openPersister(t, dir)
	small := newStore(t, 512)
	stats := Restore(small, p2.RecoveredState())
	if stats.Skipped == 0 {
		t.Fatalf("expected skips shrinking %d bytes into 512: %+v", live.Used(), stats)
	}
	if small.Used() > 512 {
		t.Fatalf("restored past capacity: %d", small.Used())
	}
	p2.Close()
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("empty dir accepted")
	}
}
