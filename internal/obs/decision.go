package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// Roles a node plays when it makes a placement decision. A requester
// decides whether to store a copy it fetched (paper §3.3 step 5); a
// responder decides whether to promote/refresh the copy it served (step 4);
// a parent decides whether to keep a document it resolved for a child.
const (
	RoleRequester = "requester"
	RoleResponder = "responder"
	RoleParent    = "parent"
)

// Decision is one EA placement verdict with the inputs the paper's eq. 5
// comparison used. LocalAgeMS/PeerAgeMS are the two piggybacked cache
// expiration ages in milliseconds with the no-contention (+inf) sentinel
// encoded as -1, exactly as on Trace.
type Decision struct {
	// Time is when the verdict was reached.
	Time time.Time `json:"time"`
	// Node is the deciding node's ID.
	Node string `json:"node"`
	// URL is the document the decision is about.
	URL string `json:"url"`
	// Role is the deciding node's role (Role* constants).
	Role string `json:"role"`
	// Verdict is the outcome (Decision* constants: accept/reject/promote).
	Verdict string `json:"verdict"`
	// LocalAgeMS is this node's cache expiration age at decision time.
	LocalAgeMS int64 `json:"local_age_ms"`
	// PeerAgeMS is the piggybacked expiration age from the other side
	// (the responder's on a requester decision, the requester's on a
	// responder decision).
	PeerAgeMS int64 `json:"peer_age_ms"`
	// SizeBytes is the document size the feasibility check saw.
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// TraceID links the decision to its group-wide trace when the request
	// was sampled.
	TraceID string `json:"trace_id,omitempty"`
	// RequestID is the node-local request record (trace ID within the
	// node's ring / slog request_id), when sampled.
	RequestID string `json:"request_id,omitempty"`
}

// DecisionLog is a fixed-capacity ring of placement decisions, published
// with the same lock-cheap discipline as TraceRing: one atomic counter
// increment plus one atomic pointer store per record, snapshots never stop
// writers. Unlike traces, every decision is recorded — the audit is exact,
// not sampled — so Record stays allocation-light (one Decision per call).
type DecisionLog struct {
	slots []atomic.Pointer[Decision]
	next  atomic.Uint64
}

// DefaultDecisionCapacity is the decision-log size Telemetry defaults to.
const DefaultDecisionCapacity = 1024

// NewDecisionLog returns a log holding the last n decisions (n < 1 selects
// DefaultDecisionCapacity).
func NewDecisionLog(n int) *DecisionLog {
	if n < 1 {
		n = DefaultDecisionCapacity
	}
	return &DecisionLog{slots: make([]atomic.Pointer[Decision], n)}
}

// Record publishes one decision, overwriting the oldest when full. The
// record must not be mutated afterwards. Safe on a nil log.
func (l *DecisionLog) Record(d *Decision) {
	if l == nil || d == nil {
		return
	}
	idx := l.next.Add(1) - 1
	l.slots[idx%uint64(len(l.slots))].Store(d)
}

// Len returns how many decisions are currently held.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	n := l.next.Load()
	if n > uint64(len(l.slots)) {
		return len(l.slots)
	}
	return int(n)
}

// Total returns how many decisions were ever recorded (including ones the
// ring has since overwritten).
func (l *DecisionLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.next.Load()
}

// Snapshot returns the held decisions, oldest first. Safe on a nil log.
func (l *DecisionLog) Snapshot() []*Decision {
	if l == nil {
		return nil
	}
	n := l.next.Load()
	size := uint64(len(l.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*Decision, 0, n-start)
	for i := start; i < n; i++ {
		if d := l.slots[i%size].Load(); d != nil {
			out = append(out, d)
		}
	}
	return out
}

// WriteJSON dumps the log as a JSON array, oldest first — the
// /debug/placement payload. Non-empty traceID/verdict keep only matching
// records (the ?trace= / ?verdict= filters).
func (l *DecisionLog) WriteJSON(w io.Writer, traceID, verdict string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	all := l.Snapshot()
	out := make([]*Decision, 0, len(all))
	for _, d := range all {
		if traceID != "" && d.TraceID != traceID {
			continue
		}
		if verdict != "" && d.Verdict != verdict {
			continue
		}
		out = append(out, d)
	}
	return enc.Encode(out)
}
