package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startAdmin(t *testing.T, tel *Telemetry, healthz func() error) *Admin {
	t.Helper()
	a, err := ServeAdmin(AdminConfig{
		Addr:      "127.0.0.1:0",
		Telemetry: tel,
		Healthz:   healthz,
		Info:      map[string]string{"node": "t"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	tel := New("t", 8)
	tel.Registry.Counter("eac_requests_total", "reqs", Labels{"outcome": "miss"}).Add(7)
	tr := tel.StartTrace("t", "http://w/doc")
	tr.StartSpan(StageLocalLookup)()
	tr.Outcome = "miss"
	tel.Finish(tr)

	a := startAdmin(t, tel, nil)
	base := "http://" + a.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, `eac_requests_total{outcome="miss"} 7`) {
		t.Fatalf("/metrics = %d\n%s", code, body)
	}

	code, body = get(t, base+"/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace = %d", code)
	}
	var traces []Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("trace dump: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].URL != "http://w/doc" {
		t.Fatalf("traces = %+v", traces)
	}

	code, body = get(t, base+"/debug/vars")
	if code != 200 || !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars = %d\n%s", code, body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _ = get(t, base+"/debug/pprof/heap?debug=1")
	if code != 200 {
		t.Fatalf("heap profile = %d", code)
	}

	code, body = get(t, base+"/")
	if code != 200 || !strings.Contains(body, `"node": "t"`) {
		t.Fatalf("/ = %d\n%s", code, body)
	}
	code, _ = get(t, base+"/nope")
	if code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestAdminHealthzFailure(t *testing.T) {
	tel := New("t", 8)
	a := startAdmin(t, tel, func() error { return fmt.Errorf("draining") })
	code, body := get(t, "http://"+a.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestAdminRequiresTelemetry(t *testing.T) {
	if _, err := ServeAdmin(AdminConfig{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("nil telemetry accepted")
	}
}
