package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad ExpBuckets accepted")
				}
			}()
			bad()
		}()
	}
}

func TestDefaultLatencyBucketsCoverage(t *testing.T) {
	b := DefaultLatencyBuckets
	if b[0] != 100e-6 {
		t.Fatalf("first bound = %v, want 100µs", b[0])
	}
	// Must straddle the paper's latency model: a 146ms local hit and a
	// 2784ms origin miss both land in interior buckets.
	if last := b[len(b)-1]; last < 60 {
		t.Fatalf("last bound = %vs, want >= 60s to cover stalled fetches", last)
	}
}

// TestHistogramBucketBoundaries pins the le (less-than-or-equal) semantics:
// a value exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 4.0, 4.1} {
		h.Observe(v)
	}
	counts := h.snapshot()
	// buckets: le=1 gets {0.5, 1.0}; le=2 gets {1.5, 2.0}; le=4 gets {4.0};
	// +Inf gets {4.1}.
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+4+4.1; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestHistogramQuantile checks quantile estimation against exact reference
// values computed by hand from the linear-interpolation definition.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20], none beyond.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	cases := []struct {
		q, want float64
	}{
		// rank = q*20. Bucket 1 spans cum (0,10] over value (0,10]:
		// value = 0 + 10*(rank/10). Bucket 2 spans cum (10,20] over
		// (10,20]: value = 10 + 10*(rank-10)/10.
		{0, 0},
		{0.25, 5},  // rank 5 -> mid of first bucket
		{0.5, 10},  // rank 10 -> top of first bucket
		{0.75, 15}, // rank 15 -> mid of second bucket
		{1.0, 20},  // rank 20 -> top of second bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf bucket quantile = %v, want last bound 2", got)
	}
	// Out-of-range q clamps; with all mass in +Inf every quantile is the
	// top bound.
	if got := h.Quantile(-1); got != 2 {
		t.Fatalf("clamped q<0 on +Inf-only data = %v, want 2", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveDuration(150 * time.Millisecond)
	if math.Abs(h.Sum()-0.15) > 1e-9 {
		t.Fatalf("sum = %v, want 0.15", h.Sum())
	}
}

func TestHistogramDuplicateBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate bound accepted")
		}
	}()
	NewHistogram([]float64{1, 1, 2})
}

// TestHistogramConcurrent hammers Observe while scraping under -race.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var observers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		observers.Add(1)
		go func(seed int) {
			defer observers.Done()
			v := 0.0001 * float64(seed+1)
			for j := 0; j < 5000; j++ {
				h.Observe(v)
			}
		}(i)
	}
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			_ = h.writePrometheus(&sb, "x", "")
			_ = h.Quantile(0.5)
		}
	}()
	observers.Wait()
	close(stop)
	scraper.Wait()
	if h.Count() != 4*5000 {
		t.Fatalf("count = %d, want %d", h.Count(), 4*5000)
	}
}
