// Package obs is the runtime telemetry layer of the live node: a typed
// counter/gauge/histogram registry with Prometheus text exposition, HDR-style
// log-bucketed latency histograms, per-request trace spans in a lock-cheap
// ring buffer, and an opt-in admin HTTP surface (/metrics, /healthz,
// /debug/trace, /debug/vars, pprof). It is stdlib-only and designed so that
// a node built without telemetry pays nothing: every recording entry point
// is nil-safe and the hot-path cost with telemetry on is a handful of
// atomic adds per request.
//
// The registry is the measurement substrate the paper's argument needs at
// runtime — cumulative hit and byte-hit rates, the per-cache expiration age,
// the EA placement-decision mix, and the latency split behind equation 6 —
// exposed from a running group instead of recompiled experiments.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimension values to an instrument, e.g.
// {"outcome": "local-hit"}. Instruments with the same name but different
// label sets form one exposition family and must share a value type.
type Labels map[string]string

// canonical renders labels in sorted {k="v",...} form, the identity key of
// an instrument within its family ("" for no labels).
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabelValue(l[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes; %q above
// already escapes quotes and backslashes, so only raw newlines remain.
func escapeLabelValue(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter is a monotonically increasing value. The zero value is usable but
// counters normally come from Registry.Counter so they are scraped.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (stored as float64 bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// instrumentKind discriminates a family's value type for exposition.
type instrumentKind int

const (
	kindCounter instrumentKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k instrumentKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// family groups every instrument sharing one metric name.
type family struct {
	name string
	help string
	kind instrumentKind

	// instruments by canonical label string. Values are *Counter, *Gauge,
	// func() float64, or *Histogram depending on kind.
	instruments map[string]any
	// labels preserves the label set per canonical key for GaugeFunc
	// collectors that are re-registered (same key replaces).
	order []string
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; recording on
// the returned instruments is lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // registration order for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it with kind/help on first
// use. It panics on a kind clash: two instruments sharing a name but not a
// type is a programming error worth failing loudly on.
func (r *Registry) lookup(name, help string, kind instrumentKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, instruments: make(map[string]any)}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind.promType(), kind.promType()))
	}
	return f
}

// add registers inst under labels, returning the existing instrument when
// the same (name, labels) pair was registered before.
func (f *family) add(labels Labels, inst any, replace bool) any {
	key := labels.canonical()
	if cur, ok := f.instruments[key]; ok {
		if !replace {
			return cur
		}
		f.instruments[key] = inst
		return inst
	}
	f.instruments[key] = inst
	f.order = append(f.order, key)
	return inst
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	return f.add(labels, &Counter{}, false).(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	return f.add(labels, &Gauge{}, false).(*Gauge)
}

// GaugeFunc registers fn as the value source for (name, labels); fn is
// called at scrape time, so dynamic values (expiration age, breaker states)
// are always current. Re-registering the same (name, labels) replaces fn.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGaugeFunc)
	f.add(labels, fn, true)
}

// Histogram returns the log-bucketed histogram for (name, labels), creating
// it with bounds on first use (nil bounds selects DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	return f.add(labels, NewHistogram(bounds), false).(*Histogram)
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4), families in registration order
// and series in label-registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.kind.promType()); err != nil {
			return err
		}
		for _, key := range f.order {
			if err := writeSeries(w, f, key); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, key string) error {
	switch inst := f.instruments[key].(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, key, inst.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(inst.Value()))
		return err
	case func() float64:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(inst()))
		return err
	case *Histogram:
		return inst.writePrometheus(w, f.name, key)
	default:
		return fmt.Errorf("obs: unknown instrument type %T", inst)
	}
}

// formatFloat renders v the way Prometheus expects: shortest round-trip
// representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return fmt.Sprintf("%g", v)
	}
}
