package obs

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminConfig configures the admin HTTP surface.
type AdminConfig struct {
	// Addr is the listen address (":9301", "127.0.0.1:0", ...). Required.
	Addr string
	// Telemetry supplies /metrics and /debug/trace. Required.
	Telemetry *Telemetry
	// Healthz, when set, decides /healthz: nil error is 200 "ok", an error
	// is 503 with the message. Unset always reports ok.
	Healthz func() error
	// HealthDetail, when set, turns the 200 /healthz body into JSON:
	// {"status":"ok"} merged with the returned map (membership epoch, ring
	// fingerprint, peer count, ...). Unset keeps the plain "ok" body.
	HealthDetail func() map[string]any
	// Info is served as JSON on / (node identity, addresses, build info).
	Info map[string]string
	// Routes, when set, mounts extra handlers on the admin mux (e.g. the
	// node's membership API) alongside the built-in surfaces. Patterns
	// must not collide with the built-ins.
	Routes map[string]http.Handler
}

// Admin is a running admin HTTP server. It is deliberately separate from
// the node's service sockets: operators scrape and profile on a loopback or
// management address without touching the ICP/fetch ports.
type Admin struct {
	srv *http.Server
	ln  net.Listener
}

// ServeAdmin binds cfg.Addr and serves the admin surface until Close:
//
//	/metrics          Prometheus text exposition of the registry
//	/healthz          liveness/readiness probe (JSON with HealthDetail)
//	/debug/trace      JSON dump of the request-trace ring (?trace= filters
//	                  to one group-wide trace ID)
//	/debug/placement  JSON dump of the placement-decision audit log
//	                  (?trace= and ?verdict= filter)
//	/debug/vars       expvar (process stats, cmdline)
//	/debug/pprof/     CPU, heap, goroutine, ... profiles
func ServeAdmin(cfg AdminConfig) (*Admin, error) {
	if cfg.Telemetry == nil {
		return nil, errors.New("obs: admin server needs telemetry")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %q: %w", cfg.Addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Telemetry.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Healthz != nil {
			if err := cfg.Healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		if cfg.HealthDetail != nil {
			body := map[string]any{"status": "ok"}
			for k, v := range cfg.HealthDetail() {
				body[k] = v
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(body)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = cfg.Telemetry.Traces.WriteJSON(w, r.URL.Query().Get("trace"))
	})
	mux.HandleFunc("/debug/placement", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		q := r.URL.Query()
		_ = cfg.Telemetry.Placement.WriteJSON(w, q.Get("trace"), q.Get("verdict"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range cfg.Routes {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Info)
	})

	a := &Admin{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, ln: ln}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound address (useful with ":0").
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the server immediately.
func (a *Admin) Close() error { return a.srv.Close() }
