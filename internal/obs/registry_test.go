package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("eac_requests_total", "requests", Labels{"outcome": "miss"})
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same (name, labels) returns the same instrument.
	if again := r.Counter("eac_requests_total", "requests", Labels{"outcome": "miss"}); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("eac_used_bytes", "bytes", nil)
	g.Set(12.5)
	g.Add(-2.5)
	if g.Value() != 10 {
		t.Fatalf("gauge = %v", g.Value())
	}

	called := false
	r.GaugeFunc("eac_age_seconds", "age", nil, func() float64 { called = true; return 3 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("gauge func not called at scrape")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("gauge under a counter name accepted")
		}
	}()
	r.Gauge("x", "", nil)
}

// TestPrometheusExpositionParses is the golden test: every line of the
// exposition must be a comment or a `name{labels} value` sample, families
// must carry HELP/TYPE headers, and histogram series must be cumulative
// and internally consistent.
func TestPrometheusExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("eac_requests_total", "requests by outcome", Labels{"outcome": "local-hit"}).Add(3)
	r.Counter("eac_requests_total", "requests by outcome", Labels{"outcome": "miss"}).Add(2)
	r.Gauge("eac_resident_bytes", "bytes resident", nil).Set(4096)
	r.GaugeFunc("eac_expiration_age_seconds", "EA signal", nil, func() float64 { return 12.25 })
	h := r.Histogram("eac_stage_seconds", "stage latency", Labels{"stage": "local"}, []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	var (
		samples  int
		lastCum  = int64(-1)
		infSeen  bool
		sumSeen  bool
		cntSeen  bool
		helpSeen = map[string]bool{}
		typeSeen = map[string]bool{}
	)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", text)
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			helpSeen[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad type %q in %q", parts[1], line)
			}
			typeSeen[parts[0]] = true
			continue
		}
		// Sample line: name[{labels}] value
		name, value, ok := splitSample(line)
		if !ok {
			t.Fatalf("unparseable sample line %q", line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" {
			t.Fatalf("bad value %q in %q: %v", value, line, err)
		}
		samples++
		if strings.HasPrefix(name, "eac_stage_seconds_bucket") {
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket count %q: %v", value, err)
			}
			if n < lastCum {
				t.Fatalf("bucket counts not cumulative: %d after %d", n, lastCum)
			}
			lastCum = n
			if strings.Contains(line, `le="+Inf"`) {
				infSeen = true
				if n != 3 {
					t.Fatalf("+Inf bucket = %d, want 3", n)
				}
			}
		}
		if strings.HasPrefix(name, "eac_stage_seconds_sum") {
			sumSeen = true
		}
		if strings.HasPrefix(name, "eac_stage_seconds_count") {
			cntSeen = true
			if value != "3" {
				t.Fatalf("histogram count = %s, want 3", value)
			}
		}
	}
	if samples == 0 {
		t.Fatal("no samples")
	}
	if !infSeen || !sumSeen || !cntSeen {
		t.Fatalf("histogram series incomplete (inf=%v sum=%v count=%v):\n%s", infSeen, sumSeen, cntSeen, text)
	}
	for _, fam := range []string{"eac_requests_total", "eac_resident_bytes", "eac_expiration_age_seconds", "eac_stage_seconds"} {
		if !helpSeen[fam] || !typeSeen[fam] {
			t.Fatalf("family %s missing HELP/TYPE header:\n%s", fam, text)
		}
	}
}

// splitSample parses `name{labels} value` / `name value`, validating brace
// and quote structure the way a Prometheus scraper would.
func splitSample(line string) (name, value string, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", false
	}
	name, value = line[:sp], line[sp+1:]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return "", "", false
		}
		inner := name[i+1 : len(name)-1]
		for _, pair := range splitLabelPairs(inner) {
			k, v, found := strings.Cut(pair, "=")
			if !found || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", false
			}
		}
		name = name[:i]
	}
	if name == "" {
		return "", "", false
	}
	return name, value, true
}

func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// TestRegistryConcurrent registers, records, and scrapes from many
// goroutines under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("eac_concurrent_total", "", Labels{"worker": fmt.Sprint(i % 2)})
			h := r.Histogram("eac_concurrent_seconds", "", nil, nil)
			g := r.Gauge("eac_concurrent_gauge", "", nil)
			for j := 0; j < 2000; j++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	a := r.Counter("eac_concurrent_total", "", Labels{"worker": "0"}).Value()
	b := r.Counter("eac_concurrent_total", "", Labels{"worker": "1"}).Value()
	if a+b != 8*2000 {
		t.Fatalf("counter total = %d, want %d", a+b, 8*2000)
	}
}
