package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// Stage names used by the node's request lifecycle. Collected here so the
// trace schema is greppable in one place; the ring accepts any string.
const (
	StageLocalLookup = "local-lookup"
	StageICPFanout   = "icp-fanout"
	StageDigestScan  = "digest-scan"
	StageRemoteFetch = "remote-fetch"
	StagePlacement   = "placement"
	StageParentFetch = "parent-fetch"
	StageOriginFetch = "origin-fetch"
	// StageServe is the responder side of a peer fetch: the span a node
	// records when it serves (or resolves) a document for a peer, on the
	// remote-parented trace continued from the requester's context.
	StageServe = "serve-remote"
)

// Placement-decision outcomes recorded on the placement span and the
// decision counters.
const (
	DecisionAccept  = "accept"
	DecisionReject  = "reject"
	DecisionPromote = "promote"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// AttrList holds a span's annotations. It is a slice, not a map, because
// spans carry at most a handful of attributes and the request path runs
// with cold caches: an append into one backing array costs a fraction of
// a map allocation plus hashed inserts. It still marshals as a JSON
// object, so the /debug/trace schema reads like a map.
type AttrList []Attr

// Get returns the value for key, or "".
func (l AttrList) Get(key string) string {
	for _, a := range l {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// MarshalJSON renders the list as a {"k":"v",...} object.
func (l AttrList) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16*len(l)+2)
	b = append(b, '{')
	for i, a := range l {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, a.Key)
		b = append(b, ':')
		b = strconv.AppendQuote(b, a.Value)
	}
	return append(b, '}'), nil
}

// UnmarshalJSON accepts the object form MarshalJSON produces.
func (l *AttrList) UnmarshalJSON(data []byte) error {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	out := make(AttrList, 0, len(m))
	for k, v := range m {
		out = append(out, Attr{Key: k, Value: v})
	}
	*l = out
	return nil
}

// Span is one timed stage of a request trace.
type Span struct {
	// Stage names the lifecycle step (Stage* constants).
	Stage string `json:"stage"`
	// StartUS is the span's start offset from the trace start, microseconds.
	StartUS int64 `json:"start_us"`
	// DurUS is the span duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Err carries the stage's failure, if any.
	Err string `json:"err,omitempty"`
	// Attrs carries stage-specific values: the piggybacked expiration ages
	// on a placement span, the responder address on a fetch span, the
	// replies/silent counts on an ICP span.
	Attrs AttrList `json:"attrs,omitempty"`
}

// Trace is one request's record: identity, outcome, the placement
// decision's inputs (both piggybacked expiration ages) and its spans.
// A Trace is built single-threaded by the request goroutine and becomes
// immutable once published to the ring; nil receivers make every method a
// no-op so a node without telemetry skips all of it.
type Trace struct {
	// ID is the node-unique request ID (also the slog request_id).
	ID string `json:"id"`
	// TraceID is the group-wide trace this record belongs to: minted at
	// the front door of a sampled request, inherited off the wire by every
	// downstream hop. Empty on traces recorded before propagation existed.
	TraceID string `json:"trace_id,omitempty"`
	// ParentID is the upstream node's request-record ID when this trace
	// was caused by a peer's fetch (remote-parented); empty at the front
	// door.
	ParentID string `json:"parent_id,omitempty"`
	// Hop is the forwarding depth from the front door (0 there).
	Hop int `json:"hop,omitempty"`
	// Node is the serving node's configured ID.
	Node string `json:"node"`
	// URL is the requested document.
	URL string `json:"url"`
	// Start is the wall-clock request start.
	Start time.Time `json:"start"`
	// Outcome is the final classification (local-hit/remote-hit/miss/error).
	Outcome string `json:"outcome"`
	// SizeBytes is the body size served.
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// Responder is the peer that served a remote hit, if any.
	Responder string `json:"responder,omitempty"`
	// RequesterAgeMS and ResponderAgeMS are the two piggybacked cache
	// expiration ages behind the EA placement decision, in milliseconds
	// (-1 encodes "no contention", the +inf sentinel).
	RequesterAgeMS int64 `json:"requester_age_ms,omitempty"`
	ResponderAgeMS int64 `json:"responder_age_ms,omitempty"`
	// Decision is the placement outcome at this node (accept/reject), with
	// Promoted flagging the responder-side promotion leg.
	Decision string `json:"decision,omitempty"`
	// Stored reports whether this node kept a copy.
	Stored bool `json:"stored"`
	// Err is the request's terminal error, if it failed.
	Err string `json:"err,omitempty"`
	// DurUS is the whole request duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Spans are the stages in execution order.
	Spans []Span `json:"spans"`

	// spanBuf backs Spans for the typical request (1 span for a local
	// hit, up to 4 for a remote hit), so opening spans costs no
	// allocation beyond the Trace itself; retries regrow onto the heap.
	spanBuf [4]Span
}

// AgeMS converts a piggybacked expiration age to the trace encoding:
// milliseconds, with the no-contention (+inf) sentinel as -1.
func AgeMS(age time.Duration) int64 {
	if age == time.Duration(1<<63-1) {
		return -1
	}
	return age.Milliseconds()
}

// OpenSpan appends an open span starting at the wall-clock instant start
// and returns its index, or -1 on a nil trace. Close it with CloseSpan.
// The indexed pair lets hot paths time a stage with a single closure and
// a caller-supplied clock reading; StartSpan is the convenience form.
func (t *Trace) OpenSpan(stage string, start time.Time) int {
	if t == nil {
		return -1
	}
	if t.Spans == nil {
		t.Spans = t.spanBuf[:0]
	}
	t.Spans = append(t.Spans, Span{Stage: stage, StartUS: start.Sub(t.Start).Microseconds()})
	return len(t.Spans) - 1
}

// CloseSpan seals the span at idx with its duration. Safe on a nil trace
// and on out-of-range indexes (OpenSpan returns -1 for a nil trace).
func (t *Trace) CloseSpan(idx int, dur time.Duration) {
	if t == nil || idx < 0 || idx >= len(t.Spans) {
		return
	}
	t.Spans[idx].DurUS = dur.Microseconds()
}

// StartSpan opens a stage span; close it with the returned func. Safe on a
// nil trace.
func (t *Trace) StartSpan(stage string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	idx := t.OpenSpan(stage, start)
	return func() {
		t.CloseSpan(idx, time.Since(start))
	}
}

// Annotate adds an attribute to the most recently started span. Safe on a
// nil trace.
func (t *Trace) Annotate(k, v string) {
	if t == nil || len(t.Spans) == 0 {
		return
	}
	sp := &t.Spans[len(t.Spans)-1]
	if sp.Attrs == nil {
		sp.Attrs = make(AttrList, 0, 4)
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: k, Value: v})
}

// SpanErr records an error on the most recently started span. Safe on a
// nil trace.
func (t *Trace) SpanErr(err error) {
	if t == nil || err == nil || len(t.Spans) == 0 {
		return
	}
	t.Spans[len(t.Spans)-1].Err = err.Error()
}

// TraceRing is a fixed-capacity ring of completed traces. Publishing is
// lock-cheap — one atomic counter increment plus one atomic pointer store —
// so the request path never contends with scrapes; Snapshot reads the slots
// without stopping writers (a concurrent publish may replace a slot
// mid-snapshot, which is fine: every returned trace is complete).
type TraceRing struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// DefaultTraceCapacity is the ring size ServeAdmin and proxyd default to.
const DefaultTraceCapacity = 512

// DefaultTraceSampling is the trace sampling proxyd defaults to: one
// traced request in eight. Metrics cover every request regardless; see
// SetTraceSampling.
const DefaultTraceSampling = 8

// NewTraceRing returns a ring holding the last n traces (n < 1 selects
// DefaultTraceCapacity).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = DefaultTraceCapacity
	}
	return &TraceRing{slots: make([]atomic.Pointer[Trace], n)}
}

// Publish stores a completed trace, overwriting the oldest when full. The
// trace must not be mutated afterwards. Safe on a nil ring.
func (r *TraceRing) Publish(t *Trace) {
	if r == nil || t == nil {
		return
	}
	idx := r.next.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(t)
}

// Len returns how many traces are currently held.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns the held traces, oldest first. Safe on a nil ring.
func (r *TraceRing) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*Trace, 0, n-start)
	for i := start; i < n; i++ {
		if t := r.slots[i%size].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// SnapshotTrace returns the held records belonging to one group-wide
// trace ID, oldest first — a node's contribution to a stitched timeline.
// Safe on a nil ring.
func (r *TraceRing) SnapshotTrace(traceID string) []*Trace {
	all := r.Snapshot()
	out := all[:0]
	for _, t := range all {
		if t.TraceID == traceID {
			out = append(out, t)
		}
	}
	return out
}

// WriteJSON dumps the ring as a JSON array, oldest first — the
// /debug/trace payload. A non-empty traceID keeps only that group-wide
// trace's records (the ?trace= filter).
func (r *TraceRing) WriteJSON(w io.Writer, traceID string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	var traces []*Trace
	if traceID != "" {
		traces = r.SnapshotTrace(traceID)
	} else {
		traces = r.Snapshot()
	}
	if traces == nil {
		traces = []*Trace{}
	}
	return enc.Encode(traces)
}

// Telemetry bundles what a node needs to be observable: the metric
// registry, the trace ring, and a request-ID sequence. A nil *Telemetry is
// fully inert — every method returns a no-op value.
type Telemetry struct {
	Registry *Registry
	Traces   *TraceRing
	// Placement is the bounded placement-decision audit log served on
	// /debug/placement. Unlike Traces it is exact, not sampled.
	Placement *DecisionLog

	prefix string
	reqSeq atomic.Uint64
	sample atomic.Int64
}

// New builds a Telemetry with a fresh registry, a trace ring of traceCap
// (<1 selects DefaultTraceCapacity) and a default-capacity placement
// decision log. prefix seeds request IDs (usually the node ID).
func New(prefix string, traceCap int) *Telemetry {
	return &Telemetry{
		Registry:  NewRegistry(),
		Traces:    NewTraceRing(traceCap),
		Placement: NewDecisionLog(0),
		prefix:    prefix,
	}
}

// NextRequestID returns a node-unique request ID ("<prefix>-000042").
// Hand-rolled formatting: this runs once per request, and fmt.Sprintf
// costs several times the rest of the trace-start path combined.
func (t *Telemetry) NextRequestID() string {
	if t == nil {
		return ""
	}
	return t.formatID(t.reqSeq.Add(1))
}

func (t *Telemetry) formatID(n uint64) string {
	b := make([]byte, 0, len(t.prefix)+8)
	b = append(b, t.prefix...)
	b = append(b, '-')
	digits := 1
	for v := n; v >= 10; v /= 10 {
		digits++
	}
	for ; digits < 6; digits++ {
		b = append(b, '0')
	}
	b = strconv.AppendUint(b, n, 10)
	return string(b)
}

// SetTraceSampling keeps one trace per n requests (n <= 1 traces every
// request, the default). Metrics are unaffected: sampling only bounds
// the tracing cost — the per-request Trace allocation and span
// bookkeeping — which dominates the telemetry overhead on a busy node.
// Safe to change at runtime and on a nil Telemetry.
func (t *Telemetry) SetTraceSampling(n int) {
	if t == nil {
		return
	}
	t.sample.Store(int64(n))
}

// StartTrace opens a front-door request trace, or nil — inert — without
// telemetry or when sampling skips this request. Every Trace method is
// nil-safe, so callers never branch on the sampling decision. A sampled
// trace gets a fresh group-wide TraceID at hop 0, ready to propagate.
func (t *Telemetry) StartTrace(node, url string) *Trace {
	if t == nil {
		return nil
	}
	n := t.reqSeq.Add(1)
	if s := t.sample.Load(); s > 1 && n%uint64(s) != 0 {
		return nil
	}
	return &Trace{ID: t.formatID(n), TraceID: NewTraceID(), Node: node, URL: url, Start: time.Now()}
}

// StartRemoteTrace opens a remote-parented trace for work this node does on
// behalf of another node's request (a served remote hit, a relayed parent
// resolve). The incoming sampled bit overrides local sampling entirely:
// if the originator recorded the trace, every hop records its leg, so the
// stitched timeline is never half-missing. Returns nil — inert — without
// telemetry or when the context is unsampled.
func (t *Telemetry) StartRemoteTrace(node, url string, tc TraceContext) *Trace {
	if t == nil || !tc.Sampled || tc.TraceID == "" {
		return nil
	}
	return &Trace{
		ID:       t.formatID(t.reqSeq.Add(1)),
		TraceID:  tc.TraceID,
		ParentID: tc.ParentID,
		Hop:      tc.Hop + 1,
		Node:     node,
		URL:      url,
		Start:    time.Now(),
	}
}

// Context returns the wire context a downstream fetch on behalf of tr
// should carry: same trace ID, this record as the parent span, same hop
// depth (the receiver increments). The zero TraceContext (unsampled) is
// returned for a nil trace so callers can propagate unconditionally.
func (tr *Trace) Context() TraceContext {
	if tr == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: tr.TraceID, ParentID: tr.ID, Hop: tr.Hop, Sampled: true}
}

// Finish seals tr (computing its duration) and publishes it. Safe on nil
// telemetry and/or nil trace.
func (t *Telemetry) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.DurUS = time.Since(tr.Start).Microseconds()
	t.Traces.Publish(tr)
}
