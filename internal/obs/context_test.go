package obs

import (
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{TraceID: "0123456789abcdef", ParentID: "front-000042", Hop: 0, Sampled: true},
		{TraceID: "ffffffffffffffff", ParentID: "n1-000001", Hop: 63, Sampled: false},
		{TraceID: "00000000000000aa", ParentID: "weird/parent/id", Hop: 7, Sampled: true},
		{TraceID: "deadbeefdeadbeef", ParentID: "", Hop: 1, Sampled: true},
	}
	for _, tc := range cases {
		got, err := ParseTraceContext(tc.String())
		if err != nil {
			t.Fatalf("ParseTraceContext(%q): %v", tc.String(), err)
		}
		if got != tc {
			t.Fatalf("round trip changed context: %+v -> %+v", tc, got)
		}
	}
}

func TestParseTraceContextRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"no-slashes-at-all",
		"0123456789abcdef/parent/0",         // missing sampled field
		"0123456789abcdef/parent/0/2",       // sampled not 0|1
		"0123456789abcdef/parent/-1/1",      // negative hop
		"0123456789abcdef/parent/65/1",      // hop past MaxTraceHops
		"0123456789abcdef/parent/seven/1",   // non-numeric hop
		"0123456789abcdeX/parent/0/1",       // non-hex trace ID
		"0123/parent/0/1",                   // short trace ID
		"0123456789abcdef0/parent/0/1",      // long trace ID
		"0123456789ABCDEF/parent/0/1",       // upper-case hex rejected
		strings.Repeat("a", 300) + "/p/0/1", // oversized
		"0123456789abcdef/parent/0/1\n",     // trailing junk
	}
	for _, in := range bad {
		if _, err := ParseTraceContext(in); err == nil {
			t.Errorf("ParseTraceContext(%q) accepted malformed input", in)
		}
	}
}

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q is not 16 chars", id)
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("trace ID %q contains non-hex char %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

// TestStartRemoteTraceHonoursContext checks the cross-peer hand-off: a
// sampled incoming context forces a record regardless of the local
// sampling knob, the hop count advances, and the trace ID is inherited
// verbatim so eacctl can stitch the records by ID.
func TestStartRemoteTraceHonoursContext(t *testing.T) {
	tel := New("n1", 8)
	tel.SetTraceSampling(1 << 30) // local sampling would reject everything

	tc := TraceContext{TraceID: "0123456789abcdef", ParentID: "front-000042", Hop: 2, Sampled: true}
	tr := tel.StartRemoteTrace("n1", "http://o/x", tc)
	if tr == nil {
		t.Fatal("sampled remote context must override local sampling")
	}
	if tr.TraceID != tc.TraceID {
		t.Fatalf("trace ID not inherited: got %q want %q", tr.TraceID, tc.TraceID)
	}
	if tr.ParentID != tc.ParentID {
		t.Fatalf("parent ID not inherited: got %q want %q", tr.ParentID, tc.ParentID)
	}
	if tr.Hop != tc.Hop+1 {
		t.Fatalf("hop not advanced: got %d want %d", tr.Hop, tc.Hop+1)
	}

	// The onward context names this record as the parent of the next hop.
	next := tr.Context()
	if next.TraceID != tc.TraceID || next.ParentID != tr.ID || next.Hop != tr.Hop || !next.Sampled {
		t.Fatalf("onward context wrong: %+v (record id %q hop %d)", next, tr.ID, tr.Hop)
	}

	tel.Finish(tr)
	recs := tel.Traces.Snapshot()
	if len(recs) != 1 || recs[0].TraceID != tc.TraceID {
		t.Fatalf("remote-parented record not published: %+v", recs)
	}

	// An unsampled context must not record even with eager local sampling.
	tel2 := New("n2", 8)
	tel2.SetTraceSampling(1)
	if tr2 := tel2.StartRemoteTrace("n2", "http://o/x", TraceContext{
		TraceID: "0123456789abcdef", ParentID: "p", Hop: 0, Sampled: false,
	}); tr2 != nil {
		t.Fatal("unsampled remote context must suppress the local record")
	}
}

// TestLocalTraceMintsID checks the front door: a locally started trace
// mints a fresh group-wide trace ID and hop 0, so downstream peers have
// something to inherit.
func TestLocalTraceMintsID(t *testing.T) {
	tel := New("front", 8)
	tel.SetTraceSampling(1)
	tr := tel.StartTrace("front", "http://o/y")
	if tr == nil {
		t.Fatal("expected a sampled trace")
	}
	if len(tr.TraceID) != 16 {
		t.Fatalf("local trace did not mint a trace ID: %q", tr.TraceID)
	}
	if tr.Hop != 0 || tr.ParentID != "" {
		t.Fatalf("front-door trace should be hop 0 with no parent, got hop %d parent %q", tr.Hop, tr.ParentID)
	}
	ctx := tr.Context()
	if ctx.ParentID != tr.ID || !ctx.Sampled {
		t.Fatalf("outgoing context should name the record as parent: %+v vs id %q", ctx, tr.ID)
	}
}
