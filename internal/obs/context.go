package obs

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// TraceContext is the compact per-request context propagated between peers
// on hproto requests and responses (the X-Trace-Context header). It names
// the group-wide trace a hop belongs to, the sender's span record, and how
// deep in the forwarding chain the receiver is — enough for eacctl to
// stitch one causally-linked timeline out of every node's span ring.
type TraceContext struct {
	// TraceID is the group-unique trace identifier, minted once at the
	// front door of the first node (16 lowercase hex digits).
	TraceID string
	// ParentID is the sender's request-record ID ("<node>-000042"), so the
	// receiver's trace points back at the span that caused it.
	ParentID string
	// Hop counts forwarding legs from the front door (0 there, 1 at the
	// responder a remote fetch lands on, 2 at that responder's parent, ...).
	Hop int
	// Sampled reports whether the originating node recorded a trace. A
	// receiver honours it over its own sampling so cross-node traces are
	// never half-recorded.
	Sampled bool
}

// MaxTraceHops bounds the hop count accepted off the wire. Anything larger
// means a forwarding loop or a corrupted header, not a real topology.
const MaxTraceHops = 64

var errBadTraceContext = errors.New("obs: malformed trace context")

// String renders the wire form: "<trace-id>/<parent-id>/<hop>/<0|1>".
// Slashes inside ParentID are tolerated by Parse (it splits from the ends),
// so node IDs need no escaping.
func (tc TraceContext) String() string {
	var b strings.Builder
	b.Grow(len(tc.TraceID) + len(tc.ParentID) + 8)
	b.WriteString(tc.TraceID)
	b.WriteByte('/')
	b.WriteString(tc.ParentID)
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(tc.Hop))
	if tc.Sampled {
		b.WriteString("/1")
	} else {
		b.WriteString("/0")
	}
	return b.String()
}

// ParseTraceContext decodes the wire form. It is strict about shape —
// callers treat any error as "no context" and count a clamp, never fail
// the request over it.
func ParseTraceContext(s string) (TraceContext, error) {
	if s == "" || len(s) > 256 {
		return TraceContext{}, errBadTraceContext
	}
	// Trace ID is the first segment; hop and sampled bit are the last two.
	// Whatever sits between is the parent ID, slashes and all.
	first := strings.IndexByte(s, '/')
	if first < 0 {
		return TraceContext{}, errBadTraceContext
	}
	rest := s[first+1:]
	last := strings.LastIndexByte(rest, '/')
	if last < 0 {
		return TraceContext{}, errBadTraceContext
	}
	sampled := rest[last+1:]
	rest = rest[:last]
	mid := strings.LastIndexByte(rest, '/')
	if mid < 0 {
		return TraceContext{}, errBadTraceContext
	}
	tc := TraceContext{TraceID: s[:first], ParentID: rest[:mid]}

	if !validTraceID(tc.TraceID) {
		return TraceContext{}, errBadTraceContext
	}
	hop, err := strconv.Atoi(rest[mid+1:])
	if err != nil || hop < 0 || hop > MaxTraceHops {
		return TraceContext{}, errBadTraceContext
	}
	tc.Hop = hop
	switch sampled {
	case "0":
	case "1":
		tc.Sampled = true
	default:
		return TraceContext{}, errBadTraceContext
	}
	return tc, nil
}

func validTraceID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Trace-ID generation: a per-process random seed mixed with an atomic
// sequence through a splitmix64 finalizer. IDs are unique within a process
// and collide across nodes only if their 64-bit seeds do.
var (
	traceSeed = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	traceSeq atomic.Uint64
)

// NewTraceID mints a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	z := traceSeed + traceSeq.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	var b [16]byte
	const hex = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b[i] = hex[z&0xf]
		z >>= 4
	}
	return string(b[:])
}
