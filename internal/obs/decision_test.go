package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkDecision(i int, verdict, traceID string) *Decision {
	return &Decision{
		Time:       time.Unix(int64(i), 0),
		Node:       "n1",
		URL:        fmt.Sprintf("http://origin/doc-%d", i),
		Role:       RoleRequester,
		Verdict:    verdict,
		LocalAgeMS: int64(i * 10),
		PeerAgeMS:  -1,
		SizeBytes:  512,
		TraceID:    traceID,
	}
}

func TestDecisionLogRingSemantics(t *testing.T) {
	l := NewDecisionLog(4)
	if l.Len() != 0 || l.Total() != 0 {
		t.Fatalf("fresh log not empty: len %d total %d", l.Len(), l.Total())
	}
	for i := 0; i < 6; i++ {
		l.Record(mkDecision(i, DecisionAccept, ""))
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", l.Len())
	}
	if l.Total() != 6 {
		t.Fatalf("total = %d, want 6", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d, want 4", len(snap))
	}
	// Oldest first, and the two earliest records were overwritten.
	for i, d := range snap {
		want := fmt.Sprintf("http://origin/doc-%d", i+2)
		if d.URL != want {
			t.Fatalf("slot %d holds %q, want %q", i, d.URL, want)
		}
	}
}

func TestDecisionLogWriteJSONFilters(t *testing.T) {
	l := NewDecisionLog(16)
	l.Record(mkDecision(0, DecisionAccept, "aaaaaaaaaaaaaaaa"))
	l.Record(mkDecision(1, DecisionReject, "aaaaaaaaaaaaaaaa"))
	l.Record(mkDecision(2, DecisionAccept, "bbbbbbbbbbbbbbbb"))

	decode := func(traceID, verdict string) []Decision {
		t.Helper()
		var buf bytes.Buffer
		if err := l.WriteJSON(&buf, traceID, verdict); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var out []Decision
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, buf.String())
		}
		return out
	}

	if got := decode("", ""); len(got) != 3 {
		t.Fatalf("unfiltered dump holds %d, want 3", len(got))
	}
	if got := decode("aaaaaaaaaaaaaaaa", ""); len(got) != 2 {
		t.Fatalf("trace filter kept %d, want 2", len(got))
	}
	got := decode("aaaaaaaaaaaaaaaa", DecisionReject)
	if len(got) != 1 || got[0].Verdict != DecisionReject || got[0].URL != "http://origin/doc-1" {
		t.Fatalf("combined filter wrong: %+v", got)
	}
	// The schema carries the eq.-5 inputs.
	if got[0].LocalAgeMS != 10 || got[0].PeerAgeMS != -1 || got[0].SizeBytes != 512 {
		t.Fatalf("decision inputs lost in JSON: %+v", got[0])
	}
}

// TestDecisionLogConcurrent hammers Record from several goroutines while
// snapshots run; the race detector is the real assertion.
func TestDecisionLogConcurrent(t *testing.T) {
	l := NewDecisionLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Record(mkDecision(g*1000+i, DecisionAccept, ""))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, d := range l.Snapshot() {
				if d.Node != "n1" {
					panic("corrupt record")
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if l.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", l.Total())
	}
	if l.Len() != 64 {
		t.Fatalf("len = %d, want 64", l.Len())
	}
}

func TestNilDecisionLogInert(t *testing.T) {
	var l *DecisionLog
	l.Record(mkDecision(0, DecisionAccept, ""))
	if l.Len() != 0 || l.Total() != 0 || l.Snapshot() != nil {
		t.Fatal("nil log must be inert")
	}
}
