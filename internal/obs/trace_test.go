package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndAttrs(t *testing.T) {
	tel := New("n0", 8)
	tr := tel.StartTrace("n0", "http://w/doc")
	if tr.ID == "" || !strings.HasPrefix(tr.ID, "n0-") {
		t.Fatalf("request id = %q", tr.ID)
	}
	end := tr.StartSpan(StageLocalLookup)
	end()
	end = tr.StartSpan(StagePlacement)
	tr.Annotate("requester_age", "1.5s")
	tr.Annotate("responder_age", "3s")
	tr.SpanErr(errors.New("boom"))
	end()
	tel.Finish(tr)

	got := tel.Traces.Snapshot()
	if len(got) != 1 {
		t.Fatalf("ring holds %d traces", len(got))
	}
	spans := got[0].Spans
	if len(spans) != 2 || spans[0].Stage != StageLocalLookup || spans[1].Stage != StagePlacement {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[1].Attrs.Get("requester_age") != "1.5s" || spans[1].Attrs.Get("responder_age") != "3s" {
		t.Fatalf("attrs = %+v", spans[1].Attrs)
	}
	if spans[1].Err != "boom" {
		t.Fatalf("span err = %q", spans[1].Err)
	}
	if got[0].DurUS < 0 {
		t.Fatalf("trace duration = %d", got[0].DurUS)
	}
}

// TestNilTelemetryInert: a node built without telemetry must be able to
// call every recording method on nil receivers.
func TestNilTelemetryInert(t *testing.T) {
	var tel *Telemetry
	tr := tel.StartTrace("n", "u")
	if tr != nil {
		t.Fatal("nil telemetry returned a live trace")
	}
	tr.StartSpan("x")()
	tr.Annotate("k", "v")
	tr.SpanErr(errors.New("e"))
	tel.Finish(tr)
	if id := tel.NextRequestID(); id != "" {
		t.Fatalf("nil telemetry request id = %q", id)
	}
	var ring *TraceRing
	ring.Publish(&Trace{})
	if ring.Snapshot() != nil || ring.Len() != 0 {
		t.Fatal("nil ring not inert")
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		r.Publish(&Trace{ID: fmt.Sprintf("t%d", i)})
	}
	got := r.Snapshot()
	if len(got) != 4 || r.Len() != 4 {
		t.Fatalf("len = %d/%d, want 4", len(got), r.Len())
	}
	// Oldest first: t6..t9 survive.
	for i, tr := range got {
		if want := fmt.Sprintf("t%d", 6+i); tr.ID != want {
			t.Fatalf("slot %d = %s, want %s", i, tr.ID, want)
		}
	}
}

func TestTraceRingPartialFill(t *testing.T) {
	r := NewTraceRing(8)
	r.Publish(&Trace{ID: "a"})
	r.Publish(&Trace{ID: "b"})
	got := r.Snapshot()
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestTraceRingConcurrentPublish(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Publish(&Trace{ID: fmt.Sprintf("w%d-%d", w, i)})
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("ring holds %d, want 64", got)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewTraceRing(4)
	r.Publish(&Trace{
		ID: "x-000001", Node: "x", URL: "http://w/d", Outcome: "remote-hit",
		RequesterAgeMS: 1500, ResponderAgeMS: 3000, Decision: DecisionReject,
		Start: time.Now(),
		Spans: []Span{{Stage: StageICPFanout, DurUS: 42}},
	})
	var sb strings.Builder
	if err := r.WriteJSON(&sb, ""); err != nil {
		t.Fatal(err)
	}
	var decoded []Trace
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 || decoded[0].RequesterAgeMS != 1500 || decoded[0].ResponderAgeMS != 3000 {
		t.Fatalf("decoded = %+v", decoded)
	}

	// An empty ring dumps [], not null.
	sb.Reset()
	if err := NewTraceRing(2).WriteJSON(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty dump = %q, want []", sb.String())
	}
}

func TestAgeMS(t *testing.T) {
	if got := AgeMS(2500 * time.Millisecond); got != 2500 {
		t.Fatalf("AgeMS = %d", got)
	}
	if got := AgeMS(time.Duration(1<<63 - 1)); got != -1 {
		t.Fatalf("no-contention sentinel = %d, want -1", got)
	}
}

// TestTraceSampling: with 1-in-N sampling only every Nth request gets a
// trace; the skipped requests get a nil (fully inert) trace, and metrics
// are untouched by the sampling decision.
func TestTraceSampling(t *testing.T) {
	tel := New("s", 16)
	tel.SetTraceSampling(4)
	live := 0
	for i := 0; i < 12; i++ {
		tr := tel.StartTrace("s", "http://w/d")
		tr.StartSpan(StageLocalLookup)() // must be safe on sampled-out (nil) traces
		tel.Finish(tr)
		if tr != nil {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("sampled %d traces over 12 requests at 1:4, want 3", live)
	}
	if got := tel.Traces.Len(); got != 3 {
		t.Fatalf("ring holds %d, want 3", got)
	}

	// n <= 1 restores tracing every request.
	tel.SetTraceSampling(1)
	if tr := tel.StartTrace("s", "http://w/d"); tr == nil {
		t.Fatal("sampling 1 skipped a trace")
	}
}

// TestAttrList covers the slice-backed span annotations: lookup and the
// JSON object round trip.
func TestAttrList(t *testing.T) {
	l := AttrList{{Key: "a", Value: "1"}, {Key: "b", Value: `q"uo`}}
	if l.Get("a") != "1" || l.Get("b") != `q"uo` || l.Get("missing") != "" {
		t.Fatalf("Get over %+v", l)
	}
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("attrs %s did not marshal as an object: %v", data, err)
	}
	if len(m) != 2 || m["a"] != "1" || m["b"] != `q"uo` {
		t.Fatalf("round trip = %+v", m)
	}
	var back AttrList
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Get("b") != `q"uo` {
		t.Fatalf("unmarshal = %+v", back)
	}
}
