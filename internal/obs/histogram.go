package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// ExpBuckets returns count upper bounds growing geometrically from start by
// factor — the HDR-style log bucketing the latency histograms use: constant
// relative error (factor-1) across the whole dynamic range, where linear
// buckets would need thousands of slots to cover 100µs..minutes.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("obs: bad ExpBuckets(%v, %v, %d)", start, factor, count))
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets covers 100µs to ~105s at 2x resolution — wide
// enough for a local hash lookup and a stalled origin fetch on one axis.
var DefaultLatencyBuckets = ExpBuckets(100e-6, 2, 21)

// Histogram is a fixed-bucket cumulative histogram safe for concurrent
// observation and scraping: one atomic add per Observe, no locks. Bounds
// are upper bucket edges in ascending order; an implicit +Inf bucket
// catches overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	// sum accumulates in nanounits (1e-9 of the observed unit) so the
	// exposition _sum stays a plain atomic add instead of a CAS-float loop.
	sumNano atomic.Int64
}

// NewHistogram builds a histogram over bounds (ascending, deduplicated);
// nil selects DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	cp := append([]float64(nil), bounds...)
	sort.Float64s(cp)
	for i := 1; i < len(cp); i++ {
		if cp[i] == cp[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bound %v", cp[i]))
		}
	}
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one value in the histogram's unit (seconds for latency).
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(v * 1e9))
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return float64(h.sumNano.Load()) / 1e9 }

// Bounds returns the upper bucket edges (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// snapshot copies the per-bucket counts (len(bounds)+1).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket where the cumulative count crosses q. Values in the
// +Inf bucket report the largest finite bound; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := h.snapshot()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum)+float64(c) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: no upper edge to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			within := (rank - float64(cum)) / float64(c)
			if within < 0 {
				within = 0
			}
			return lo + (hi-lo)*within
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// writePrometheus renders the cumulative _bucket/_sum/_count series,
// splicing le into the instrument's label set.
func (h *Histogram) writePrometheus(w io.Writer, name, key string) error {
	counts := h.snapshot()
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(key, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(key, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, key, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, h.Count())
	return err
}

// spliceLabel appends one label pair to a canonical label string.
func spliceLabel(key, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if key == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(key, "}") + "," + pair + "}"
}
