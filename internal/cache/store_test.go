package cache

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(1994, time.November, 15, 12, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

func doc(url string, size int64) Document { return Document{URL: url, Size: size} }

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{name: "valid", cfg: Config{Capacity: 100}, ok: true},
		{name: "zero capacity", cfg: Config{}, ok: false},
		{name: "negative capacity", cfg: Config{Capacity: -1}, ok: false},
		{name: "negative window", cfg: Config{Capacity: 1, ExpirationWindow: -1}, ok: false},
		{name: "negative horizon", cfg: Config{Capacity: 1, ExpirationHorizon: -time.Second}, ok: false},
		{name: "window and horizon", cfg: Config{Capacity: 1, ExpirationWindow: 4, ExpirationHorizon: time.Second}, ok: false},
		{name: "window only", cfg: Config{Capacity: 1, ExpirationWindow: 4}, ok: true},
		{name: "horizon only", cfg: Config{Capacity: 1, ExpirationHorizon: time.Second}, ok: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("New(%+v) err = %v, want ok=%v", tt.cfg, err, tt.ok)
			}
		})
	}
}

func TestPutGet(t *testing.T) {
	s := mustStore(t, Config{Capacity: 100})
	if _, err := s.Put(doc("a", 40), at(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get("a", at(1))
	if !ok || got != doc("a", 40) {
		t.Fatalf("Get(a) = %+v, %v; want stored doc", got, ok)
	}
	if _, ok := s.Get("b", at(1)); ok {
		t.Fatal("Get(b) should miss")
	}
	if s.Used() != 40 || s.Len() != 1 {
		t.Fatalf("Used=%d Len=%d, want 40, 1", s.Used(), s.Len())
	}
}

func TestGetUpdatesMetadata(t *testing.T) {
	s := mustStore(t, Config{Capacity: 100})
	if _, err := s.Put(doc("a", 10), at(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a", at(5)); !ok {
		t.Fatal("expected hit")
	}
	e, ok := s.Entry("a")
	if !ok {
		t.Fatal("Entry(a) missing")
	}
	if e.Hits != 2 {
		t.Fatalf("Hits = %d, want 2 (1 on insert + 1 on get)", e.Hits)
	}
	if !e.LastHit.Equal(at(5)) {
		t.Fatalf("LastHit = %v, want %v", e.LastHit, at(5))
	}
	if !e.EnteredAt.Equal(at(0)) {
		t.Fatalf("EnteredAt = %v, want %v", e.EnteredAt, at(0))
	}
}

func TestPeekAndContainsDoNotTouch(t *testing.T) {
	s := mustStore(t, Config{Capacity: 100})
	if _, err := s.Put(doc("a", 10), at(0)); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("a") {
		t.Fatal("Contains(a) = false")
	}
	if _, ok := s.Peek("a"); !ok {
		t.Fatal("Peek(a) missed")
	}
	e, _ := s.Entry("a")
	if e.Hits != 1 || !e.LastHit.Equal(at(0)) {
		t.Fatalf("Peek/Contains must not touch: Hits=%d LastHit=%v", e.Hits, e.LastHit)
	}
}

func TestTouchPromotes(t *testing.T) {
	s := mustStore(t, Config{Capacity: 30})
	for i, u := range []string{"a", "b", "c"} {
		if _, err := s.Put(doc(u, 10), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	// "a" is LRU victim; touching it should save it.
	if !s.Touch("a", at(10)) {
		t.Fatal("Touch(a) = false")
	}
	evicted, err := s.Put(doc("d", 10), at(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Doc.URL != "b" {
		t.Fatalf("evicted %+v, want [b]", evicted)
	}
	if !s.Contains("a") {
		t.Fatal("promoted doc evicted")
	}
	if s.Touch("zzz", at(12)) {
		t.Fatal("Touch of absent doc returned true")
	}
}

func TestEvictionOrderAndAccounting(t *testing.T) {
	s := mustStore(t, Config{Capacity: 25})
	for i, u := range []string{"a", "b", "c", "d", "e"} {
		if _, err := s.Put(doc(u, 5), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Full: a b c d e (LRU order a oldest). A 10-byte doc evicts a and b.
	evicted, err := s.Put(doc("f", 10), at(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 2 || evicted[0].Doc.URL != "a" || evicted[1].Doc.URL != "b" {
		t.Fatalf("evicted %+v, want a then b", evicted)
	}
	if s.Used() != 25 {
		t.Fatalf("Used = %d, want 25", s.Used())
	}
	if s.Evictions() != 2 {
		t.Fatalf("Evictions = %d, want 2", s.Evictions())
	}
	if s.Insertions() != 6 {
		t.Fatalf("Insertions = %d, want 6", s.Insertions())
	}
}

func TestPutTooLarge(t *testing.T) {
	s := mustStore(t, Config{Capacity: 10})
	if _, err := s.Put(doc("a", 5), at(0)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Put(doc("big", 11), at(1))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// The failed Put must not have disturbed the cache.
	if !s.Contains("a") || s.Len() != 1 {
		t.Fatalf("store disturbed by oversized Put: len=%d", s.Len())
	}
}

func TestPutNegativeSize(t *testing.T) {
	s := mustStore(t, Config{Capacity: 10})
	if _, err := s.Put(doc("a", -1), at(0)); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestReinsertRefreshes(t *testing.T) {
	s := mustStore(t, Config{Capacity: 30})
	for i, u := range []string{"a", "b", "c"} {
		if _, err := s.Put(doc(u, 10), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-put "a": refresh, not duplicate.
	if _, err := s.Put(doc("a", 10), at(5)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Used() != 30 {
		t.Fatalf("Len=%d Used=%d after re-put, want 3, 30", s.Len(), s.Used())
	}
	evicted, err := s.Put(doc("d", 10), at(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Doc.URL != "b" {
		t.Fatalf("evicted %+v, want [b] (a was refreshed)", evicted)
	}
}

func TestReinsertResize(t *testing.T) {
	s := mustStore(t, Config{Capacity: 30})
	if _, err := s.Put(doc("a", 10), at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(doc("a", 25), at(1)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 25 {
		t.Fatalf("Used = %d after resize, want 25", s.Used())
	}
	// Growing a resident doc beyond what fits must evict others, never
	// itself.
	if _, err := s.Put(doc("b", 5), at(2)); err != nil {
		t.Fatal(err)
	}
	evicted, err := s.Put(doc("a", 30), at(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Doc.URL != "b" {
		t.Fatalf("evicted %+v, want [b]", evicted)
	}
	if !s.Contains("a") || s.Used() != 30 {
		t.Fatalf("resize broke accounting: used=%d", s.Used())
	}
}

func TestRemove(t *testing.T) {
	s := mustStore(t, Config{Capacity: 30})
	if _, err := s.Put(doc("a", 10), at(0)); err != nil {
		t.Fatal(err)
	}
	if !s.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if s.Remove("a") {
		t.Fatal("second Remove(a) = true")
	}
	if s.Used() != 0 || s.Len() != 0 {
		t.Fatalf("Used=%d Len=%d after remove", s.Used(), s.Len())
	}
	// Invalidation is not a contention eviction.
	if s.Evictions() != 0 {
		t.Fatalf("Evictions = %d after Remove, want 0", s.Evictions())
	}
	if s.ExpirationAge(at(1)) != NoContention {
		t.Fatal("Remove must not record an expiration age")
	}
}

func TestEvictionAgeLRU(t *testing.T) {
	s := mustStore(t, Config{Capacity: 20})
	if _, err := s.Put(doc("a", 10), at(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a", at(30)); !ok { // last hit at t=30
		t.Fatal("expected hit")
	}
	if _, err := s.Put(doc("b", 10), at(40)); err != nil {
		t.Fatal(err)
	}
	evicted, err := s.Put(doc("c", 15), at(100)) // evicts a then b
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 2 {
		t.Fatalf("evicted %d docs, want 2", len(evicted))
	}
	// DocExpAge(a) = 100 - 30 = 70s (eq. 2: eviction minus last hit).
	if evicted[0].Age != 70*time.Second {
		t.Fatalf("age(a) = %v, want 70s", evicted[0].Age)
	}
	// DocExpAge(b) = 100 - 40 = 60s.
	if evicted[1].Age != 60*time.Second {
		t.Fatalf("age(b) = %v, want 60s", evicted[1].Age)
	}
	// ResidencyTime(a) = 100 - 0.
	if evicted[0].ResidencyTime != 100*time.Second {
		t.Fatalf("residency(a) = %v, want 100s", evicted[0].ResidencyTime)
	}
	// CacheExpAge = mean(70, 60) = 65s (eq. 5).
	if got := s.ExpirationAge(at(100)); got != 65*time.Second {
		t.Fatalf("ExpirationAge = %v, want 65s", got)
	}
	if got := s.CumulativeExpirationAge(); got != 65*time.Second {
		t.Fatalf("CumulativeExpirationAge = %v, want 65s", got)
	}
}

func TestNoContentionBeforeFirstEviction(t *testing.T) {
	s := mustStore(t, Config{Capacity: 100})
	if got := s.ExpirationAge(at(0)); got != NoContention {
		t.Fatalf("ExpirationAge = %v, want NoContention", got)
	}
	if got := s.CumulativeExpirationAge(); got != NoContention {
		t.Fatalf("CumulativeExpirationAge = %v, want NoContention", got)
	}
}

func TestURLs(t *testing.T) {
	s := mustStore(t, Config{Capacity: 100})
	want := map[string]bool{"a": true, "b": true}
	for u := range want {
		if _, err := s.Put(doc(u, 10), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	urls := s.URLs()
	if len(urls) != len(want) {
		t.Fatalf("URLs() = %v", urls)
	}
	for _, u := range urls {
		if !want[u] {
			t.Fatalf("unexpected URL %q", u)
		}
	}
}

func TestCapacityNeverExceededAcrossPolicies(t *testing.T) {
	for _, policy := range []string{"lru", "lfu", "lfuda", "gds", "size"} {
		t.Run(policy, func(t *testing.T) {
			p, ok := NewPolicy(policy)
			if !ok {
				t.Fatalf("NewPolicy(%q) unknown", policy)
			}
			s := mustStore(t, Config{Capacity: 100, Policy: p})
			for i := 0; i < 500; i++ {
				size := int64(1 + (i*7)%40)
				_, err := s.Put(doc(string(rune('a'+i%26))+string(rune('0'+i%10)), size), at(i))
				if err != nil && !errors.Is(err, ErrTooLarge) {
					t.Fatalf("Put: %v", err)
				}
				if s.Used() > s.Capacity() {
					t.Fatalf("used %d exceeds capacity %d", s.Used(), s.Capacity())
				}
			}
		})
	}
}
