// Package cache implements the single-proxy caching substrate of the EA
// reproduction: a byte-capacity document store with pluggable replacement
// policies (LRU, LFU, SIZE, GreedyDual-Size) and the paper's expiration-age
// bookkeeping.
//
// Every document carries the metadata the paper requires (entry time, last
// hit time, hit counter). On eviction the store computes the victim's
// document expiration age — (T1 - T0) since last hit for LRU-style policies
// (paper eq. 2), lifetime/hits for LFU (paper eq. 3) — and folds it into the
// cache expiration age (paper eq. 5), the contention signal the EA placement
// scheme exchanges between proxies.
package cache

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// NoContention is the expiration age reported by a cache that has not yet
// evicted anything. It is effectively +infinity: a cache with free space has
// no disk contention, so it should always be willing to accept a copy.
const NoContention = time.Duration(math.MaxInt64)

// ErrTooLarge reports a document bigger than the whole cache.
var ErrTooLarge = errors.New("cache: document larger than capacity")

// Document is the unit of caching: a web object identified by its URL.
type Document struct {
	// URL identifies the document.
	URL string
	// Size is the body size in bytes. The paper replaces zero-size trace
	// records with the 4KB average document size before simulation, so
	// sizes here are always positive.
	Size int64
	// Expires is the document's freshness deadline (cache coherence).
	// The zero value means the document never goes stale — the paper's
	// setting, which studies placement in isolation. A stale copy still
	// occupies space until replaced, but must not be served or
	// advertised.
	Expires time.Time
}

// FreshAt reports whether the document may be served at time t.
func (d Document) FreshAt(t time.Time) bool {
	return d.Expires.IsZero() || !d.Expires.Before(t)
}

// Entry is a cached document plus the replacement/expiration metadata the
// paper's schemes depend on.
type Entry struct {
	Doc Document
	// EnteredAt is T0, the time the document entered the cache.
	EnteredAt time.Time
	// LastHit is the time of the most recent hit. A document that has
	// never been hit carries its entry time, so its expiration age equals
	// its whole lifetime.
	LastHit time.Time
	// Hits is the paper's HIT-COUNTER: initialised to 1 when the document
	// enters the cache and incremented on every hit.
	Hits int64

	// intrusive hooks owned by the policies
	prev, next *Entry  // lru list
	heapIndex  int     // lfu / size / gds heap position
	priority   float64 // gds H-value
}

// Eviction records one removed document and its expiration age, as fed to
// the cache expiration-age tracker and surfaced to callers for testing and
// metrics.
type Eviction struct {
	Doc Document
	// Age is the document expiration age at removal (eq. 2 or eq. 3).
	Age time.Duration
	// ResidencyTime is how long the document lived in the cache.
	ResidencyTime time.Duration
}

// Policy is a replacement policy over intrusive entries. The Store drives
// it: Add on insert, Touch on hit (or EA-scheme promotion), Remove on
// eviction or explicit removal, and Victim to choose what to evict next.
type Policy interface {
	// Name identifies the policy ("lru", "lfu", ...).
	Name() string
	// Add registers a newly inserted entry.
	Add(e *Entry)
	// Touch records a hit on the entry (after the Store updated its
	// metadata).
	Touch(e *Entry)
	// Remove unregisters the entry.
	Remove(e *Entry)
	// Victim returns the entry to evict next, or nil if empty. The entry
	// stays registered until Remove is called.
	Victim() *Entry
	// ExpirationAge computes the document expiration age of an entry at
	// removal time, per the paper's per-policy definitions.
	ExpirationAge(e *Entry, now time.Time) time.Duration
}

// Config configures a Store.
type Config struct {
	// Capacity is the disk budget in bytes. Must be positive.
	Capacity int64
	// Policy is the replacement policy. Defaults to NewLRU().
	Policy Policy
	// ExpirationWindow averages the document expiration ages of the most
	// recent N evictions to produce the cache expiration age used in
	// placement decisions. Mutually exclusive with ExpirationHorizon.
	ExpirationWindow int
	// ExpirationHorizon averages over the victims evicted within the
	// last H of (simulated) time — the paper's "finite time duration
	// (Ti, Tj)" read literally, and the variant whose negative feedback
	// spreads placement across the group (see ExpAgeTracker). When both
	// ExpirationWindow and ExpirationHorizon are zero the average is
	// cumulative since the cache started.
	ExpirationHorizon time.Duration
}

// WindowAll selects a cumulative expiration-age window.
const WindowAll = 0

// DefaultExpirationWindow is a reasonable eviction-count window for callers
// that want a count-based signal.
const DefaultExpirationWindow = 512

// DefaultExpirationHorizon is the time window the cooperative placement
// layer uses by default for the contention signal.
const DefaultExpirationHorizon = 6 * time.Hour

// Tier identifies which storage tier an event concerns. The zero value is
// the memory tier, so every pre-tiering event (and journal record) reads
// unchanged.
type Tier int8

const (
	// TierMemory is the in-memory tier (the classic Store).
	TierMemory Tier = iota
	// TierDisk is the content-addressed blob tier beneath it.
	TierDisk
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// EventKind classifies a Store mutation as seen by an event sink.
type EventKind int

// Event kinds, in the order the store applies them.
const (
	// EventInsert: a document entered the cache via Put, or an already
	// cached URL was refreshed (new size adopted, hit recorded).
	EventInsert EventKind = iota + 1
	// EventHit: a Get found the document (hit counter and last-hit
	// updated).
	EventHit
	// EventPromote: a Touch promoted the document (the EA responder-side
	// promotion; same metadata effect as a hit).
	EventPromote
	// EventEvict: the replacement policy evicted the document and its
	// expiration age was folded into the tracker.
	EventEvict
	// EventRemove: the document was explicitly invalidated via Remove
	// (no expiration age recorded).
	EventRemove
	// EventDemote: the memory tier evicted the document and the tier
	// controller moved it to the disk tier instead of dropping it. The
	// event carries the entry metadata (EnteredAt/LastHit/Hits) and the
	// blob checksum so replay can rebuild disk residency exactly. A
	// demotion is a tier move, not an exit: no expiration age is recorded
	// and set-membership observers (the digest) keep advertising the URL.
	EventDemote
	// EventPromoteFromDisk: a disk-resident document was accessed and
	// moved back into the memory tier. EnteredAt/Hits carry the metadata
	// of the promoted memory entry (original entry time preserved, the
	// promoting access counted as a hit at At).
	EventPromoteFromDisk
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventInsert:
		return "insert"
	case EventHit:
		return "hit"
	case EventPromote:
		return "promote"
	case EventEvict:
		return "evict"
	case EventRemove:
		return "remove"
	case EventDemote:
		return "demote"
	case EventPromoteFromDisk:
		return "promote-disk"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event describes one Store mutation, emitted to the event sink in the
// exact order the store applied it — an observer that records every event
// can replay them to reproduce the store's state (this is how
// internal/persist journals the cache without being entangled with the
// replacement policies).
type Event struct {
	Kind EventKind
	// Doc is the document the event concerns (for EventEvict and
	// EventRemove, the document as it was when removed).
	Doc Document
	// At is the mutation time the store recorded (the caller-supplied
	// now; zero for EventRemove, which takes no timestamp).
	At time.Time
	// Age is the victim's document expiration age (EventEvict only).
	Age time.Duration
	// Refresh distinguishes the two EventInsert cases: true when Put
	// refreshed an already cached URL rather than admitting a new one.
	// Set-membership observers (the incremental cache digest) must not
	// count a refresh as a second insertion of the same URL.
	Refresh bool
	// Tier is the storage tier the event concerns. The zero value is
	// TierMemory, so all pre-tiering events read unchanged. An
	// EventEvict or EventRemove with Tier == TierDisk left the disk
	// tier; demote/promote-disk events describe the move between tiers.
	Tier Tier
	// EnteredAt/LastHit/Hits carry the entry metadata on EventEvict,
	// EventDemote and EventPromoteFromDisk, so the tier controller can
	// rebuild a disk-resident entry (and journal replay can restore a
	// promoted one) without re-querying the store.
	EnteredAt time.Time
	LastHit   time.Time
	Hits      int64
	// Sum is the blob checksum (EventDemote only): the SHA-256 of the
	// demoted body as stored by the disk tier, journaled so recovery can
	// cross-check residency against the blob index.
	Sum [32]byte
}

// Store is a single proxy cache: documents, capacity accounting, replacement
// policy, and expiration-age tracking. It is not safe for concurrent use;
// the proxy layer serialises access.
type Store struct {
	capacity int64
	used     int64
	entries  map[string]*Entry
	policy   Policy
	ages     *ExpAgeTracker
	sink     func(Event)

	insertions int64
	evictions  int64
}

// New builds a Store from cfg.
func New(cfg Config) (*Store, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.ExpirationWindow < 0 {
		return nil, fmt.Errorf("cache: expiration window must be >= 0, got %d", cfg.ExpirationWindow)
	}
	if cfg.ExpirationHorizon < 0 {
		return nil, fmt.Errorf("cache: expiration horizon must be >= 0, got %v", cfg.ExpirationHorizon)
	}
	if cfg.ExpirationWindow > 0 && cfg.ExpirationHorizon > 0 {
		return nil, fmt.Errorf("cache: expiration window and horizon are mutually exclusive")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = NewLRU()
	}
	ages := NewExpAgeTracker(cfg.ExpirationWindow)
	if cfg.ExpirationHorizon > 0 {
		ages = NewTimeHorizonTracker(cfg.ExpirationHorizon)
	}
	return &Store{
		capacity: cfg.Capacity,
		entries:  make(map[string]*Entry),
		policy:   policy,
		ages:     ages,
	}, nil
}

// SetEventSink installs fn as the store's mutation observer; nil removes
// it. Events are delivered synchronously, in mutation order, while the
// store is mid-operation — the sink must not call back into the store.
func (s *Store) SetEventSink(fn func(Event)) { s.sink = fn }

// emit delivers one event to the sink, if any.
func (s *Store) emit(ev Event) {
	if s.sink != nil {
		s.sink(ev)
	}
}

// Capacity returns the configured byte budget.
func (s *Store) Capacity() int64 { return s.capacity }

// Used returns the bytes currently occupied.
func (s *Store) Used() int64 { return s.used }

// Len returns the number of cached documents.
func (s *Store) Len() int { return len(s.entries) }

// PolicyName returns the replacement policy's name.
func (s *Store) PolicyName() string { return s.policy.Name() }

// Contains reports whether url is cached, without touching recency state.
// This is what answers an ICP query.
func (s *Store) Contains(url string) bool {
	_, ok := s.entries[url]
	return ok
}

// Peek returns the cached document without updating any recency or hit
// metadata. The EA scheme uses this when a responder serves a remote request
// but must not give its copy a fresh lease of life.
func (s *Store) Peek(url string) (Document, bool) {
	e, ok := s.entries[url]
	if !ok {
		return Document{}, false
	}
	return e.Doc, true
}

// Get returns the cached document and records a hit: the hit counter is
// incremented, the last-hit time set to now, and the policy touched.
func (s *Store) Get(url string, now time.Time) (Document, bool) {
	e, ok := s.entries[url]
	if !ok {
		return Document{}, false
	}
	e.Hits++
	e.LastHit = now
	s.policy.Touch(e)
	s.emit(Event{Kind: EventHit, Doc: e.Doc, At: now})
	return e.Doc, true
}

// Touch promotes url as if it had been hit at now (the EA responder-side
// promotion to the head of the LRU list). It reports whether the document
// was present.
func (s *Store) Touch(url string, now time.Time) bool {
	e, ok := s.entries[url]
	if !ok {
		return false
	}
	e.Hits++
	e.LastHit = now
	s.policy.Touch(e)
	s.emit(Event{Kind: EventPromote, Doc: e.Doc, At: now})
	return true
}

// Put inserts doc at time now, evicting victims as needed, and returns the
// evictions performed. Re-inserting a cached URL refreshes it like a hit
// (and adopts the new size). Documents larger than the capacity are
// rejected with ErrTooLarge and cached nowhere, matching proxy behaviour.
func (s *Store) Put(doc Document, now time.Time) ([]Eviction, error) {
	if doc.Size < 0 {
		return nil, fmt.Errorf("cache: negative size %d for %q", doc.Size, doc.URL)
	}
	if doc.Size > s.capacity {
		return nil, ErrTooLarge
	}
	if e, ok := s.entries[doc.URL]; ok {
		s.used += doc.Size - e.Doc.Size
		e.Doc = doc
		e.Hits++
		e.LastHit = now
		s.policy.Touch(e)
		s.emit(Event{Kind: EventInsert, Doc: doc, At: now, Refresh: true})
		return s.makeRoom(now, doc.URL)
	}

	evicted, err := s.makeRoomFor(doc.Size, now, doc.URL)
	if err != nil {
		return evicted, err
	}
	e := &Entry{
		Doc:       doc,
		EnteredAt: now,
		LastHit:   now,
		Hits:      1,
	}
	s.entries[doc.URL] = e
	s.used += doc.Size
	s.insertions++
	s.policy.Add(e)
	s.emit(Event{Kind: EventInsert, Doc: doc, At: now})
	return evicted, nil
}

// Remove deletes url from the cache without recording an eviction age (it
// models invalidation, not contention-driven replacement).
func (s *Store) Remove(url string) bool {
	e, ok := s.entries[url]
	if !ok {
		return false
	}
	s.policy.Remove(e)
	delete(s.entries, url)
	s.used -= e.Doc.Size
	s.emit(Event{Kind: EventRemove, Doc: e.Doc})
	return true
}

// ExpirationAge returns the cache expiration age used for placement
// decisions as of time now: the windowed mean of the document expiration
// ages of evicted victims, or NoContention if there is no contention
// evidence (nothing evicted yet, or nothing within the horizon).
func (s *Store) ExpirationAge(now time.Time) time.Duration {
	return s.ages.WindowedAt(now)
}

// CumulativeExpirationAge returns the mean expiration age over every
// eviction since the cache started. This is the value Table 1 of the paper
// reports.
func (s *Store) CumulativeExpirationAge() time.Duration {
	return s.ages.Cumulative()
}

// Evictions returns the total number of contention evictions performed.
func (s *Store) Evictions() int64 { return s.evictions }

// Insertions returns the total number of document insertions.
func (s *Store) Insertions() int64 { return s.insertions }

// Entry exposes a copy of the metadata for url, for tests and inspection.
func (s *Store) Entry(url string) (Entry, bool) {
	e, ok := s.entries[url]
	if !ok {
		return Entry{}, false
	}
	cp := *e
	cp.prev, cp.next = nil, nil
	return cp, true
}

// Entries returns copies of every entry (policy hooks zeroed) in
// unspecified order, for persistence snapshots and inspection.
func (s *Store) Entries() []Entry {
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		cp := *e
		cp.prev, cp.next = nil, nil
		out = append(out, cp)
	}
	return out
}

// RestoreEntry reinserts a recovered document with its persisted metadata,
// bypassing eviction and the event sink (recovery must not re-journal what
// it replays). Callers restore entries in ascending LastHit order so the
// LRU list rebuilds in recency order. Hits below 1 are clamped to 1; a
// zero LastHit adopts enteredAt. Restoring over a present URL, a
// non-positive size, or past capacity is an error: the recovered set must
// be exactly what fitted before the crash.
func (s *Store) RestoreEntry(doc Document, enteredAt, lastHit time.Time, hits int64) error {
	if doc.Size <= 0 {
		return fmt.Errorf("cache: restore %q: non-positive size %d", doc.URL, doc.Size)
	}
	if doc.URL == "" {
		return fmt.Errorf("cache: restore: empty URL")
	}
	if _, ok := s.entries[doc.URL]; ok {
		return fmt.Errorf("cache: restore %q: already present", doc.URL)
	}
	if s.used+doc.Size > s.capacity {
		return fmt.Errorf("cache: restore %q: %d bytes do not fit (%d/%d used)",
			doc.URL, doc.Size, s.used, s.capacity)
	}
	if hits < 1 {
		hits = 1
	}
	if lastHit.IsZero() {
		lastHit = enteredAt
	}
	e := &Entry{Doc: doc, EnteredAt: enteredAt, LastHit: lastHit, Hits: hits}
	s.entries[doc.URL] = e
	s.used += doc.Size
	s.policy.Add(e)
	return nil
}

// PromoteEntry re-inserts a document returning from the disk tier into
// the memory tier, preserving its original entry time and hit history and
// counting the access that triggered the promotion as a hit at now (so the
// promoted entry's LastHit is now and Hits is the disk-carried count plus
// one). If the URL is already present — a racing fetch re-admitted it —
// the call degrades to a Touch. Victims evicted to make room are returned
// like Put's; oversized documents are rejected with ErrTooLarge.
func (s *Store) PromoteEntry(doc Document, enteredAt time.Time, hits int64, now time.Time) ([]Eviction, error) {
	if doc.Size < 0 {
		return nil, fmt.Errorf("cache: negative size %d for %q", doc.Size, doc.URL)
	}
	if doc.Size > s.capacity {
		return nil, ErrTooLarge
	}
	if _, ok := s.entries[doc.URL]; ok {
		s.Touch(doc.URL, now)
		return nil, nil
	}
	evicted, err := s.makeRoomFor(doc.Size, now, doc.URL)
	if err != nil {
		return evicted, err
	}
	if hits < 0 {
		hits = 0
	}
	if enteredAt.IsZero() {
		enteredAt = now
	}
	e := &Entry{Doc: doc, EnteredAt: enteredAt, LastHit: now, Hits: hits + 1}
	s.entries[doc.URL] = e
	s.used += doc.Size
	s.insertions++
	s.policy.Add(e)
	s.emit(Event{
		Kind: EventPromoteFromDisk, Doc: doc, At: now,
		EnteredAt: enteredAt, LastHit: now, Hits: e.Hits,
	})
	return evicted, nil
}

// TrackerState exports the expiration-age tracker for persistence.
func (s *Store) TrackerState() TrackerState { return s.ages.State() }

// RestoreTracker rebuilds the expiration-age tracker from a persisted
// state, restoring the contention signal across a restart. The window
// configuration always comes from this store's Config, never from disk: a
// store reopened with a different window (or restored from a state that
// recorded none) must not silently adopt the old shape. The persisted
// samples and cumulative totals are re-windowed into the configured one.
func (s *Store) RestoreTracker(st TrackerState) {
	st.Window = s.ages.Window()
	st.Horizon = s.ages.Horizon()
	s.ages = NewTrackerFromState(st)
}

// URLs returns the cached URLs in unspecified order.
func (s *Store) URLs() []string {
	out := make([]string, 0, len(s.entries))
	for u := range s.entries {
		out = append(out, u)
	}
	return out
}

// makeRoomFor evicts victims until size more bytes fit. The document named
// skip (the one being inserted or refreshed) is never evicted: if the
// policy nominates it — a resized document can be the SIZE policy's
// largest, for example — it is sidelined from the policy for the duration
// and reinstated afterwards.
func (s *Store) makeRoomFor(size int64, now time.Time, skip string) ([]Eviction, error) {
	var (
		evicted   []Eviction
		sidelined *Entry
	)
	for s.used+size > s.capacity {
		v := s.policy.Victim()
		if v == nil {
			if sidelined != nil {
				s.policy.Add(sidelined)
			}
			return evicted, fmt.Errorf("cache: cannot free %d bytes", size)
		}
		if v.Doc.URL == skip {
			s.policy.Remove(v)
			sidelined = v
			continue
		}
		evicted = append(evicted, s.evict(v, now))
	}
	if sidelined != nil {
		s.policy.Add(sidelined)
	}
	return evicted, nil
}

func (s *Store) makeRoom(now time.Time, skip string) ([]Eviction, error) {
	return s.makeRoomFor(0, now, skip)
}

// evict removes v and records its expiration age.
func (s *Store) evict(v *Entry, now time.Time) Eviction {
	age := s.policy.ExpirationAge(v, now)
	if age < 0 {
		age = 0
	}
	s.policy.Remove(v)
	delete(s.entries, v.Doc.URL)
	s.used -= v.Doc.Size
	s.evictions++
	s.ages.Record(age, now)
	s.emit(Event{
		Kind: EventEvict, Doc: v.Doc, At: now, Age: age,
		EnteredAt: v.EnteredAt, LastHit: v.LastHit, Hits: v.Hits,
	})
	return Eviction{
		Doc:           v.Doc,
		Age:           age,
		ResidencyTime: now.Sub(v.EnteredAt),
	}
}
