package cache

import "container/heap"

// entryHeap is a min-heap of entries ordered by a policy-supplied less
// function. It maintains each entry's heapIndex so policies can fix or
// remove entries in O(log n).
type entryHeap struct {
	items []*Entry
	less  func(a, b *Entry) bool
}

var _ heap.Interface = (*entryHeap)(nil)

func newEntryHeap(less func(a, b *Entry) bool) *entryHeap {
	return &entryHeap{less: less}
}

func (h *entryHeap) Len() int { return len(h.items) }

func (h *entryHeap) Less(i, j int) bool { return h.less(h.items[i], h.items[j]) }

func (h *entryHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIndex = i
	h.items[j].heapIndex = j
}

func (h *entryHeap) Push(x any) {
	e, ok := x.(*Entry)
	if !ok {
		return
	}
	e.heapIndex = len(h.items)
	h.items = append(h.items, e)
}

func (h *entryHeap) Pop() any {
	old := h.items
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	e.heapIndex = -1
	return e
}

func (h *entryHeap) add(e *Entry)    { heap.Push(h, e) }
func (h *entryHeap) fix(e *Entry)    { heap.Fix(h, e.heapIndex) }
func (h *entryHeap) remove(e *Entry) { heap.Remove(h, e.heapIndex) }

func (h *entryHeap) min() *Entry {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}
