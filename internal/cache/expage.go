package cache

import (
	"math"
	"time"
)

// ExpAgeTracker aggregates document expiration ages of evicted victims into
// the cache expiration age (paper eq. 5):
//
//	CacheExpAge(C, Ti, Tj) = sum(DocExpAge(D, C)) / |Victim(C, Ti, Tj)|
//
// The paper defines the average over "a finite time duration (Ti, Tj)". The
// tracker offers three views of that window:
//
//   - Time horizon: the mean over victims evicted during the last H of
//     simulated time (a sliding (Tj-H, Tj) window, the paper's definition
//     read literally). This is the live contention signal exchanged in
//     placement decisions. A time horizon makes the signal *responsive*:
//     when placement decisions concentrate documents on a low-contention
//     cache, its contention rises, its expiration age falls within H, and
//     placement shifts away — the negative feedback that spreads load
//     across the group. (A count window responds at an eviction-dependent
//     rate; a cumulative average barely responds at all and lets the
//     initially least-loaded cache hoard every shared document.)
//   - Count window: the mean over the most recent `window` evictions.
//   - Cumulative: the mean over every eviction since the cache started,
//     which is what the paper's Table 1 reports for a whole run.
//
// Before the first eviction (or with no eviction inside the horizon) there
// is no contention evidence and the windowed views return NoContention
// (+infinity): an unloaded cache always welcomes a copy.
type ExpAgeTracker struct {
	window  int
	horizon time.Duration

	ring    []expAgeSample
	ringPos int
	ringLen int
	ringSum time.Duration

	totalSum   float64 // seconds, to avoid Duration overflow over long runs
	totalCount int64
}

type expAgeSample struct {
	at  time.Time
	age time.Duration
}

// maxHorizonSamples bounds the ring of a time-horizon tracker; beyond this
// many evictions inside the horizon the oldest samples are dropped (the
// mean over the most recent maxHorizonSamples is statistically identical).
const maxHorizonSamples = 4096

// NewExpAgeTracker builds a tracker averaging over the last `window`
// evictions; WindowAll (0) makes Windowed identical to Cumulative.
func NewExpAgeTracker(window int) *ExpAgeTracker {
	t := &ExpAgeTracker{window: window}
	if window > 0 {
		t.ring = make([]expAgeSample, window)
	}
	return t
}

// NewTimeHorizonTracker builds a tracker averaging over victims evicted in
// the last horizon of (simulated) time.
func NewTimeHorizonTracker(horizon time.Duration) *ExpAgeTracker {
	if horizon <= 0 {
		return NewExpAgeTracker(WindowAll)
	}
	return &ExpAgeTracker{
		horizon: horizon,
		ring:    make([]expAgeSample, maxHorizonSamples),
	}
}

// Window returns the configured count window (0 = cumulative or time
// horizon).
func (t *ExpAgeTracker) Window() int { return t.window }

// Horizon returns the configured time horizon (0 = count or cumulative).
func (t *ExpAgeTracker) Horizon() time.Duration { return t.horizon }

// Count returns the total number of recorded evictions.
func (t *ExpAgeTracker) Count() int64 { return t.totalCount }

// Record folds one victim's document expiration age, evicted at time now,
// into the tracker.
func (t *ExpAgeTracker) Record(age time.Duration, now time.Time) {
	if age < 0 {
		age = 0
	}
	t.totalSum += age.Seconds()
	t.totalCount++
	t.push(now, age)
}

// push inserts one sample into the windowed ring (a no-op for a cumulative
// tracker, which keeps no ring).
func (t *ExpAgeTracker) push(now time.Time, age time.Duration) {
	if len(t.ring) == 0 {
		return
	}
	if t.ringLen == len(t.ring) {
		// Ring full: drop the oldest sample.
		t.ringSum -= t.ring[t.ringPos].age
		t.ringPos = (t.ringPos + 1) % len(t.ring)
		t.ringLen--
	}
	// ringPos indexes the oldest sample; write at the tail.
	tail := (t.ringPos + t.ringLen) % len(t.ring)
	t.ring[tail] = expAgeSample{at: now, age: age}
	t.ringLen++
	t.ringSum += age
	if t.horizon > 0 {
		t.prune(now)
	}
}

// prune drops samples older than the horizon.
func (t *ExpAgeTracker) prune(now time.Time) {
	cutoff := now.Add(-t.horizon)
	for t.ringLen > 0 && t.ring[t.ringPos].at.Before(cutoff) {
		t.ringSum -= t.ring[t.ringPos].age
		t.ringPos = (t.ringPos + 1) % len(t.ring)
		t.ringLen--
	}
}

// WindowedAt returns the cache expiration age over the configured window as
// of time now, or NoContention when there is no contention evidence.
func (t *ExpAgeTracker) WindowedAt(now time.Time) time.Duration {
	if t.totalCount == 0 {
		return NoContention
	}
	if t.window == WindowAll && t.horizon == 0 {
		return t.Cumulative()
	}
	if t.horizon > 0 {
		t.prune(now)
	}
	if t.ringLen == 0 {
		// Nothing evicted within the horizon: no current contention.
		return NoContention
	}
	return t.ringSum / time.Duration(t.ringLen)
}

// WindowedStatsAt returns the sum (in seconds) and count of the victim
// ages inside the configured window as of now — the mergeable form of
// WindowedAt. A ShardedStore combines the per-shard (sum, count) pairs
// into one group-level cache expiration age; count == 0 means this
// tracker contributes no contention evidence.
func (t *ExpAgeTracker) WindowedStatsAt(now time.Time) (sumSeconds float64, count int64) {
	if t.window == WindowAll && t.horizon == 0 {
		return t.totalSum, t.totalCount
	}
	if t.horizon > 0 {
		t.prune(now)
	}
	return t.ringSum.Seconds(), int64(t.ringLen)
}

// Cumulative returns the all-time mean expiration age, or NoContention
// before the first eviction.
func (t *ExpAgeTracker) Cumulative() time.Duration {
	if t.totalCount == 0 {
		return NoContention
	}
	secs := t.totalSum / float64(t.totalCount)
	return time.Duration(secs * float64(time.Second))
}

// TrackerSample is one windowed eviction sample in a TrackerState.
type TrackerSample struct {
	// At is the eviction time.
	At time.Time
	// Age is the victim's document expiration age.
	Age time.Duration
}

// TrackerState is a serializable snapshot of an ExpAgeTracker: the window
// configuration, the cumulative totals, and the windowed samples (oldest
// first). It is the unit internal/persist writes to disk so a restarted
// cache reports the same contention signal it reported before the crash
// instead of rejoining the group with a meaningless expiration age.
type TrackerState struct {
	Window          int
	Horizon         time.Duration
	TotalSumSeconds float64
	TotalCount      int64
	Samples         []TrackerSample
}

// State exports the tracker for persistence. The returned samples are
// ordered oldest first.
func (t *ExpAgeTracker) State() TrackerState {
	st := TrackerState{
		Window:          t.window,
		Horizon:         t.horizon,
		TotalSumSeconds: t.totalSum,
		TotalCount:      t.totalCount,
	}
	if t.ringLen > 0 {
		st.Samples = make([]TrackerSample, 0, t.ringLen)
		for i := 0; i < t.ringLen; i++ {
			s := t.ring[(t.ringPos+i)%len(t.ring)]
			st.Samples = append(st.Samples, TrackerSample{At: s.at, Age: s.age})
		}
	}
	return st
}

// NewTrackerFromState rebuilds a tracker from a persisted state. The input
// is sanitized rather than trusted — a corrupted or hand-edited state file
// must not produce a tracker that panics or reports garbage: negative
// window/horizon collapse to cumulative, negative ages clamp to zero,
// non-finite or negative totals are recomputed from the samples, and a
// total count smaller than the sample count is raised to it.
func NewTrackerFromState(st TrackerState) *ExpAgeTracker {
	var t *ExpAgeTracker
	switch {
	case st.Horizon > 0:
		t = NewTimeHorizonTracker(st.Horizon)
	case st.Window > 0:
		t = NewExpAgeTracker(st.Window)
	default:
		t = NewExpAgeTracker(WindowAll)
	}
	for _, s := range st.Samples {
		age := s.Age
		if age < 0 {
			age = 0
		}
		t.push(s.At, age)
	}
	sum := st.TotalSumSeconds
	if math.IsNaN(sum) || math.IsInf(sum, 0) || sum < 0 {
		sum = t.ringSum.Seconds()
	}
	count := st.TotalCount
	if count < int64(t.ringLen) {
		count = int64(t.ringLen)
	}
	t.totalSum, t.totalCount = sum, count
	return t
}
