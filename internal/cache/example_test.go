package cache_test

import (
	"fmt"
	"time"

	"eacache/internal/cache"
)

// A Store evicts least-recently-used documents when full and measures each
// victim's expiration age — the time it survived after its last hit.
func ExampleStore() {
	store, err := cache.New(cache.Config{Capacity: 8192})
	if err != nil {
		fmt.Println(err)
		return
	}
	t0 := time.Date(1994, time.November, 15, 9, 0, 0, 0, time.UTC)

	// Two 4KB documents fill the cache.
	if _, err := store.Put(cache.Document{URL: "http://a/", Size: 4096}, t0); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := store.Put(cache.Document{URL: "http://b/", Size: 4096}, t0.Add(10*time.Second)); err != nil {
		fmt.Println(err)
		return
	}
	// A hit on /a makes /b the eviction victim.
	store.Get("http://a/", t0.Add(20*time.Second))

	// A third document forces an eviction.
	evicted, err := store.Put(cache.Document{URL: "http://c/", Size: 4096}, t0.Add(60*time.Second))
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, ev := range evicted {
		fmt.Printf("evicted %s after %v without a hit\n", ev.Doc.URL, ev.Age)
	}
	fmt.Println("cache expiration age:", store.ExpirationAge(t0.Add(60*time.Second)))

	// Output:
	// evicted http://b/ after 50s without a hit
	// cache expiration age: 50s
}

// Each replacement policy defines the paper's document expiration age in
// its own terms: time-since-last-hit for LRU (eq. 2), mean time-per-hit
// for LFU (eq. 3).
func ExamplePolicy_expirationAge() {
	t0 := time.Date(1994, time.November, 15, 9, 0, 0, 0, time.UTC)
	entry := &cache.Entry{
		Doc:       cache.Document{URL: "http://a/", Size: 4096},
		EnteredAt: t0,
		LastHit:   t0.Add(40 * time.Second),
		Hits:      5,
	}
	removedAt := t0.Add(100 * time.Second)

	fmt.Println("LRU:", cache.NewLRU().ExpirationAge(entry, removedAt))
	fmt.Println("LFU:", cache.NewLFU().ExpirationAge(entry, removedAt))

	// Output:
	// LRU: 1m0s
	// LFU: 20s
}
