package cache

import "time"

// GDS is the GreedyDual-Size replacement policy (Cao & Irani, USITS 1997),
// cited by the paper as one of the cost-aware replacement algorithms the EA
// placement scheme composes with. Each entry carries a priority
//
//	H = L + cost/size
//
// where L is the inflation value, raised to the victim's H at every
// eviction. With cost = 1 this is GDS(1), which maximises hit rate.
//
// GDS is not one of the paper's two canonical expiration-age definitions;
// like any recency-flavoured policy it uses the LRU form (time since last
// hit) as its document expiration age, exercising the paper's claim that
// the EA scheme "is possible to define for other replacement policies too".
type GDS struct {
	h *entryHeap
	// inflation is the L value in the GreedyDual-Size algorithm.
	inflation float64
	// cost is the uniform retrieval cost assigned to every document.
	cost float64
}

var _ Policy = (*GDS)(nil)

// NewGDS returns an empty GreedyDual-Size policy with uniform cost 1.
func NewGDS() *GDS {
	g := &GDS{cost: 1}
	g.h = newEntryHeap(func(a, b *Entry) bool {
		if a.priority != b.priority {
			return a.priority < b.priority
		}
		return a.LastHit.Before(b.LastHit)
	})
	return g
}

// Name implements Policy.
func (g *GDS) Name() string { return "gds" }

// Add implements Policy.
func (g *GDS) Add(e *Entry) {
	e.priority = g.inflation + g.cost/sizeOrOne(e)
	g.h.add(e)
}

// Touch implements Policy: a hit restores the entry's full priority.
func (g *GDS) Touch(e *Entry) {
	e.priority = g.inflation + g.cost/sizeOrOne(e)
	g.h.fix(e)
}

// Remove implements Policy. If the removed entry is the current victim its
// priority inflates L, per the algorithm.
func (g *GDS) Remove(e *Entry) {
	if g.h.min() == e && e.priority > g.inflation {
		g.inflation = e.priority
	}
	g.h.remove(e)
}

// Victim implements Policy: the entry with the smallest H value.
func (g *GDS) Victim() *Entry { return g.h.min() }

// ExpirationAge implements Policy with the LRU form (time since last hit).
func (g *GDS) ExpirationAge(e *Entry, now time.Time) time.Duration {
	return now.Sub(e.LastHit)
}

// Len returns the number of tracked entries.
func (g *GDS) Len() int { return g.h.Len() }

// SIZE is the largest-file-first replacement policy (evict the biggest
// document), a classic baseline from the web-caching replacement
// literature. Its expiration age uses the LRU form.
type SIZE struct {
	h *entryHeap
}

var _ Policy = (*SIZE)(nil)

// NewSIZE returns an empty SIZE policy.
func NewSIZE() *SIZE {
	return &SIZE{h: newEntryHeap(func(a, b *Entry) bool {
		if a.Doc.Size != b.Doc.Size {
			return a.Doc.Size > b.Doc.Size
		}
		return a.LastHit.Before(b.LastHit)
	})}
}

// Name implements Policy.
func (p *SIZE) Name() string { return "size" }

// Add implements Policy.
func (p *SIZE) Add(e *Entry) { p.h.add(e) }

// Touch implements Policy: size ordering only changes if the size did.
func (p *SIZE) Touch(e *Entry) { p.h.fix(e) }

// Remove implements Policy.
func (p *SIZE) Remove(e *Entry) { p.h.remove(e) }

// Victim implements Policy: the largest document.
func (p *SIZE) Victim() *Entry { return p.h.min() }

// ExpirationAge implements Policy with the LRU form.
func (p *SIZE) ExpirationAge(e *Entry, now time.Time) time.Duration {
	return now.Sub(e.LastHit)
}

// Len returns the number of tracked entries.
func (p *SIZE) Len() int { return p.h.Len() }

func sizeOrOne(e *Entry) float64 {
	if e.Doc.Size <= 0 {
		return 1
	}
	return float64(e.Doc.Size)
}

// NewPolicy builds a policy by name: "lru", "lfu", "lfuda", "gds" or
// "size".
func NewPolicy(name string) (Policy, bool) {
	switch name {
	case "lru":
		return NewLRU(), true
	case "lfu":
		return NewLFU(), true
	case "lfuda":
		return NewLFUDA(), true
	case "gds":
		return NewGDS(), true
	case "size":
		return NewSIZE(), true
	default:
		return nil, false
	}
}
