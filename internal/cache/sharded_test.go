package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustSharded(t *testing.T, cfg ShardedConfig) *ShardedStore {
	t.Helper()
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatalf("NewSharded(%+v): %v", cfg, err)
	}
	return s
}

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(ShardedConfig{Shards: -1, Capacity: 100}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := NewSharded(ShardedConfig{Shards: 16, Capacity: 8}); err == nil {
		t.Fatal("capacity smaller than shard count accepted")
	}
	if s := mustSharded(t, ShardedConfig{Capacity: 1 << 20}); s.Shards() != DefaultShards {
		t.Fatalf("default shards = %d, want %d", s.Shards(), DefaultShards)
	}
	// Non-power-of-two rounds up.
	if s := mustSharded(t, ShardedConfig{Shards: 5, Capacity: 1 << 20}); s.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", s.Shards())
	}
	if got := mustSharded(t, ShardedConfig{Shards: 4, Capacity: 1003}).Capacity(); got != 1003 {
		t.Fatalf("total capacity = %d, want 1003 (remainder distributed)", got)
	}
}

// shardedOps replays a deterministic mixed workload against both stores
// step by step, failing on the first observable divergence.
func replayEquivalence(t *testing.T, plain *Store, sharded *ShardedStore, steps int) {
	t.Helper()
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for i := 0; i < steps; i++ {
		now := at(i)
		url := fmt.Sprintf("http://host%d.example.edu/d%d", next(7), next(40))
		switch next(10) {
		case 0, 1, 2, 3: // Put
			d := Document{URL: url, Size: int64(100 + next(900)), Expires: now.Add(time.Duration(1+next(3600)) * time.Second)}
			evP, errP := plain.Put(d, now)
			evS, errS := sharded.Put(d, now)
			if (errP == nil) != (errS == nil) || len(evP) != len(evS) {
				t.Fatalf("step %d: Put(%s) diverged: plain (%d evictions, %v) sharded (%d, %v)",
					i, url, len(evP), errP, len(evS), errS)
			}
			for j := range evP {
				if evP[j].Doc != evS[j].Doc || evP[j].Age != evS[j].Age {
					t.Fatalf("step %d: eviction %d diverged: %+v vs %+v", i, j, evP[j], evS[j])
				}
			}
		case 4, 5, 6: // Get
			dP, okP := plain.Get(url, now)
			dS, okS := sharded.Get(url, now)
			if okP != okS || dP != dS {
				t.Fatalf("step %d: Get(%s) diverged: (%+v,%v) vs (%+v,%v)", i, url, dP, okP, dS, okS)
			}
		case 7: // Touch
			if okP, okS := plain.Touch(url, now), sharded.Touch(url, now); okP != okS {
				t.Fatalf("step %d: Touch(%s) diverged: %v vs %v", i, url, okP, okS)
			}
		case 8: // Remove
			if okP, okS := plain.Remove(url), sharded.Remove(url); okP != okS {
				t.Fatalf("step %d: Remove(%s) diverged: %v vs %v", i, url, okP, okS)
			}
		case 9: // Peek + Contains
			dP, okP := plain.Peek(url)
			dS, okS := sharded.Peek(url)
			if okP != okS || dP != dS || plain.Contains(url) != sharded.Contains(url) {
				t.Fatalf("step %d: Peek/Contains(%s) diverged", i, url)
			}
		}
		if ageP, ageS := plain.ExpirationAge(now), sharded.ExpirationAge(now); ageP != ageS {
			t.Fatalf("step %d: ExpirationAge diverged: %v vs %v", i, ageP, ageS)
		}
	}
	if plain.Used() != sharded.Used() || plain.Len() != sharded.Len() {
		t.Fatalf("final state diverged: used %d/%d, len %d/%d",
			plain.Used(), sharded.Used(), plain.Len(), sharded.Len())
	}
	if plain.Evictions() != sharded.Evictions() || plain.Insertions() != sharded.Insertions() {
		t.Fatalf("counters diverged: evictions %d/%d, insertions %d/%d",
			plain.Evictions(), sharded.Evictions(), plain.Insertions(), sharded.Insertions())
	}
}

// A one-shard ShardedStore must reproduce the plain Store bit for bit:
// same hits, same victims, same eviction ages, same expiration-age
// signal. This is the guarantee that lets the live node wrap any
// caller-provided Store without changing cache behaviour.
func TestShardedSingleShardMatchesStore(t *testing.T) {
	const capacity = 10_000
	t.Run("NewSharded", func(t *testing.T) {
		plain := mustStore(t, Config{Capacity: capacity, ExpirationWindow: 8})
		sharded := mustSharded(t, ShardedConfig{Shards: 1, Capacity: capacity, ExpirationWindow: 8})
		replayEquivalence(t, plain, sharded, 4000)
	})
	t.Run("SingleShardWrapper", func(t *testing.T) {
		plain := mustStore(t, Config{Capacity: capacity, ExpirationWindow: 8})
		wrapped := SingleShard(mustStore(t, Config{Capacity: capacity, ExpirationWindow: 8}))
		replayEquivalence(t, plain, wrapped, 4000)
	})
	t.Run("LFU", func(t *testing.T) {
		plain := mustStore(t, Config{Capacity: capacity, Policy: NewLFU(), ExpirationWindow: 8})
		sharded := mustSharded(t, ShardedConfig{
			Shards: 1, Capacity: capacity, ExpirationWindow: 8,
			NewPolicy: func() Policy { return NewLFU() },
		})
		replayEquivalence(t, plain, sharded, 4000)
	})
}

// Concurrent mixed traffic on a multi-shard store: the race detector
// checks the locking, and the byte/count accounting must stay coherent.
func TestShardedConcurrentHammer(t *testing.T) {
	s := mustSharded(t, ShardedConfig{Shards: 8, Capacity: 64 << 10, ExpirationHorizon: time.Hour})
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := uint64(seed)*0x9E3779B97F4A7C15 + 1
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 33) % uint64(n))
			}
			for i := 0; i < 2000; i++ {
				now := time.Now()
				url := fmt.Sprintf("http://h%d/d%d", next(5), next(200))
				switch next(6) {
				case 0, 1:
					_, _ = s.Put(Document{URL: url, Size: int64(64 + next(2048)), Expires: now.Add(time.Hour)}, now)
				case 2, 3:
					_, _ = s.Get(url, now)
				case 4:
					_ = s.ExpirationAge(now)
				case 5:
					_ = s.Remove(url)
				}
			}
		}(w + 1)
	}
	wg.Wait()

	if s.Used() > s.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", s.Used(), s.Capacity())
	}
	if got, want := s.Len(), len(s.URLs()); got != want {
		t.Fatalf("Len() = %d but URLs() has %d", got, want)
	}
}

// The merged tracker state must survive a capture → restore round trip
// with its totals intact, for any shard count on either side.
func TestShardedTrackerRestoreRoundTrip(t *testing.T) {
	src := mustSharded(t, ShardedConfig{Shards: 4, Capacity: 2_000, ExpirationWindow: 16})
	now := t0
	for i := 0; i < 200; i++ {
		now = now.Add(time.Second)
		url := fmt.Sprintf("http://h/d%d", i%60)
		_, _ = src.Put(Document{URL: url, Size: 100, Expires: now.Add(time.Duration(i%50+1) * time.Minute)}, now)
	}
	if src.Evictions() == 0 {
		t.Fatal("workload produced no evictions; tracker round trip untested")
	}
	st := src.TrackerState()

	for _, shards := range []int{1, 4, 8} {
		dst := mustSharded(t, ShardedConfig{Shards: shards, Capacity: 2_000, ExpirationWindow: 16})
		dst.RestoreTracker(st)
		got := dst.TrackerState()
		if got.TotalCount != st.TotalCount {
			t.Fatalf("shards=%d: TotalCount = %d, want %d", shards, got.TotalCount, st.TotalCount)
		}
		if diff := got.TotalSumSeconds - st.TotalSumSeconds; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("shards=%d: TotalSumSeconds = %v, want %v", shards, got.TotalSumSeconds, st.TotalSumSeconds)
		}
		// Re-windowing is allowed to shrink the sample set (each shard
		// keeps at most its configured window of the samples dealt to
		// it), but never to lose contention evidence entirely.
		maxKept := shards * 16
		if len(got.Samples) > len(st.Samples) || (len(st.Samples) >= maxKept && len(got.Samples) < maxKept) {
			t.Fatalf("shards=%d: %d samples after restore of %d (window slots %d)",
				shards, len(got.Samples), len(st.Samples), maxKept)
		}
		if dst.ExpirationAge(now) == NoContention {
			t.Fatalf("shards=%d: restored store reports NoContention", shards)
		}
		if shards == src.Shards() {
			// Same shape: the merged windowed signal must match exactly.
			if gotAge, wantAge := dst.ExpirationAge(now), src.ExpirationAge(now); gotAge != wantAge {
				t.Fatalf("shards=%d: restored ExpirationAge = %v, want %v", shards, gotAge, wantAge)
			}
		}
	}
}

// Checkpoint must expose every entry exactly once while holding all the
// shard locks, and concurrent writers must observe the store unlocked
// again afterwards.
func TestShardedCheckpointView(t *testing.T) {
	s := mustSharded(t, ShardedConfig{Shards: 4, Capacity: 1 << 20, ExpirationWindow: 8})
	now := t0
	want := map[string]bool{}
	for i := 0; i < 50; i++ {
		url := fmt.Sprintf("http://h/d%d", i)
		if _, err := s.Put(Document{URL: url, Size: 128, Expires: now.Add(time.Hour)}, now); err != nil {
			t.Fatal(err)
		}
		want[url] = true
	}
	var seen []Entry
	err := s.Checkpoint(func(view StoreView) error {
		seen = view.Entries()
		_ = view.TrackerState()
		return nil
	})
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if len(seen) != len(want) {
		t.Fatalf("checkpoint saw %d entries, want %d", len(seen), len(want))
	}
	for _, e := range seen {
		if !want[e.Doc.URL] {
			t.Fatalf("checkpoint saw unexpected entry %q", e.Doc.URL)
		}
	}
	// Locks must be released: a Put after Checkpoint completes.
	if _, err := s.Put(Document{URL: "http://h/after", Size: 1, Expires: now.Add(time.Hour)}, now); err != nil {
		t.Fatalf("Put after checkpoint: %v", err)
	}
}

// The cached EA signal must be invalidated by evictions: after new
// contention evidence arrives, the next read reflects it even within the
// staleness bound.
func TestShardedExpirationAgeInvalidatedOnEviction(t *testing.T) {
	s := mustSharded(t, ShardedConfig{Shards: 2, Capacity: 400, ExpirationWindow: 4})
	now := t0
	if got := s.ExpirationAge(now); got != NoContention {
		t.Fatalf("empty store ExpirationAge = %v, want NoContention", got)
	}
	// Fill past capacity so Puts evict.
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		_, _ = s.Put(Document{URL: fmt.Sprintf("http://h/d%d", i), Size: 150, Expires: now.Add(time.Minute)}, now)
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions; invalidation untested")
	}
	if got := s.ExpirationAge(now); got == NoContention {
		t.Fatal("ExpirationAge still NoContention after evictions: cache not invalidated")
	}
}
