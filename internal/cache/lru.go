package cache

import "time"

// LRU is the Least Recently Used replacement policy, the default in the
// paper's experiments. It keeps an intrusive doubly-linked list ordered from
// most recently used (head) to least recently used (tail); the tail is the
// eviction victim.
//
// Its document expiration age is the paper's eq. 2: the time between the
// document's last hit and its removal.
type LRU struct {
	// sentinel ring: head.next = MRU, head.prev = LRU victim
	head Entry
	size int
}

var _ Policy = (*LRU)(nil)

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	l := &LRU{}
	l.head.next = &l.head
	l.head.prev = &l.head
	return l
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// Add implements Policy: new entries are most recently used.
func (l *LRU) Add(e *Entry) {
	l.pushFront(e)
	l.size++
}

// Touch implements Policy: a hit (or EA promotion) moves the entry to the
// head of the list, exactly the paper's "promoted to the HEAD of the LRU
// list".
func (l *LRU) Touch(e *Entry) {
	l.unlink(e)
	l.pushFront(e)
}

// Remove implements Policy.
func (l *LRU) Remove(e *Entry) {
	l.unlink(e)
	e.prev, e.next = nil, nil
	l.size--
}

// Victim implements Policy: the least recently used entry.
func (l *LRU) Victim() *Entry {
	if l.size == 0 {
		return nil
	}
	return l.head.prev
}

// ExpirationAge implements Policy with eq. 2: (T1 - T0) where T1 is removal
// time and T0 the last hit.
func (l *LRU) ExpirationAge(e *Entry, now time.Time) time.Duration {
	return now.Sub(e.LastHit)
}

// Len returns the number of tracked entries.
func (l *LRU) Len() int { return l.size }

// Order returns the tracked URLs from most to least recently used, for
// tests.
func (l *LRU) Order() []string {
	out := make([]string, 0, l.size)
	for e := l.head.next; e != &l.head; e = e.next {
		out = append(out, e.Doc.URL)
	}
	return out
}

func (l *LRU) pushFront(e *Entry) {
	e.prev = &l.head
	e.next = l.head.next
	e.prev.next = e
	e.next.prev = e
}

func (l *LRU) unlink(e *Entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}
