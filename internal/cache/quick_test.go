package cache

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// op is a randomised store operation for property tests.
type op struct {
	Kind  uint8
	URL   uint8 // small URL space to force collisions and evictions
	Size  uint8
	Delta uint8 // seconds advanced before the op
}

func (o op) url() string { return fmt.Sprintf("doc-%d", o.URL%32) }

func (o op) size() int64 { return int64(o.Size%40) + 1 }

// applyOps drives a store through a random operation sequence, returning
// the final simulated time.
func applyOps(t *testing.T, s *Store, ops []op) time.Time {
	t.Helper()
	now := at(0)
	for _, o := range ops {
		now = now.Add(time.Duration(o.Delta) * time.Second)
		switch o.Kind % 5 {
		case 0, 1:
			if _, err := s.Put(Document{URL: o.url(), Size: o.size()}, now); err != nil &&
				!errors.Is(err, ErrTooLarge) {
				t.Fatalf("Put: %v", err)
			}
		case 2:
			s.Get(o.url(), now)
		case 3:
			s.Touch(o.url(), now)
		case 4:
			s.Remove(o.url())
		}
	}
	return now
}

func TestQuickStoreInvariants(t *testing.T) {
	for _, policy := range []string{"lru", "lfu", "lfuda", "gds", "size"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			f := func(ops []op, capSeed uint8) bool {
				p, _ := NewPolicy(policy)
				capacity := int64(capSeed%120) + 20
				s, err := New(Config{Capacity: capacity, Policy: p})
				if err != nil {
					return false
				}
				now := applyOps(t, s, ops)

				// Invariant 1: used bytes never exceed capacity and
				// always equal the sum of resident sizes.
				var sum int64
				for _, u := range s.URLs() {
					d, ok := s.Peek(u)
					if !ok {
						return false
					}
					sum += d.Size
				}
				if sum != s.Used() || s.Used() > s.Capacity() {
					return false
				}
				// Invariant 2: Len agrees with URLs.
				if s.Len() != len(s.URLs()) {
					return false
				}
				// Invariant 3: expiration age is non-negative or
				// NoContention.
				age := s.ExpirationAge(now)
				if age < 0 {
					return false
				}
				// Invariant 4: insertions - evictions - removals
				// bookkeeping is consistent: evictions never exceed
				// insertions.
				return s.Evictions() <= s.Insertions()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickEvictionAgesWithinLifetime(t *testing.T) {
	// For every policy, a victim's expiration age is never negative and
	// (for the LRU form) never exceeds its residency time.
	f := func(ops []op) bool {
		s, err := New(Config{Capacity: 64})
		if err != nil {
			return false
		}
		now := at(0)
		for _, o := range ops {
			now = now.Add(time.Duration(o.Delta) * time.Second)
			evs, err := s.Put(Document{URL: o.url(), Size: o.size()}, now)
			if err != nil && !errors.Is(err, ErrTooLarge) {
				return false
			}
			for _, ev := range evs {
				if ev.Age < 0 || ev.ResidencyTime < 0 || ev.Age > ev.ResidencyTime {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLRUMatchesReferenceModel(t *testing.T) {
	// The intrusive LRU store must agree with a trivially correct
	// reference model (slice ordered by recency) on what is resident.
	f := func(ops []op) bool {
		const capacity = 50
		s, err := New(Config{Capacity: capacity})
		if err != nil {
			return false
		}
		type refEntry struct {
			url  string
			size int64
		}
		var ref []refEntry // index 0 = LRU, last = MRU
		refFind := func(u string) int {
			for i, e := range ref {
				if e.url == u {
					return i
				}
			}
			return -1
		}
		refUsed := func() int64 {
			var n int64
			for _, e := range ref {
				n += e.size
			}
			return n
		}

		now := at(0)
		for _, o := range ops {
			now = now.Add(time.Duration(o.Delta) * time.Second)
			u, size := o.url(), o.size()
			switch o.Kind % 4 {
			case 0, 1: // put
				if size > capacity {
					break
				}
				if i := refFind(u); i >= 0 {
					ref[i].size = size
					e := ref[i]
					ref = append(append(ref[:i:i], ref[i+1:]...), e)
				} else {
					ref = append(ref, refEntry{url: u, size: size})
				}
				for refUsed() > capacity {
					// Evict LRU entries, but never the one just used.
					for i := range ref {
						if ref[i].url != u {
							ref = append(ref[:i:i], ref[i+1:]...)
							break
						}
					}
				}
				if _, err := s.Put(Document{URL: u, Size: size}, now); err != nil &&
					!errors.Is(err, ErrTooLarge) {
					return false
				}
			case 2: // get
				if i := refFind(u); i >= 0 {
					e := ref[i]
					ref = append(append(ref[:i:i], ref[i+1:]...), e)
				}
				s.Get(u, now)
			case 3: // remove
				if i := refFind(u); i >= 0 {
					ref = append(ref[:i:i], ref[i+1:]...)
				}
				s.Remove(u)
			}

			if len(ref) != s.Len() {
				return false
			}
			for _, e := range ref {
				d, ok := s.Peek(e.url)
				if !ok || d.Size != e.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
