package cache

import (
	"math"
	"testing"
	"time"
)

// roundTrip serializes tr and rebuilds it.
func roundTrip(tr *ExpAgeTracker) *ExpAgeTracker {
	return NewTrackerFromState(tr.State())
}

func TestTrackerStateRoundTripCountWindow(t *testing.T) {
	tr := NewExpAgeTracker(3)
	for i, age := range []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second, 40 * time.Second} {
		tr.Record(age, at(i))
	}
	got := roundTrip(tr)
	if got.Window() != 3 || got.Horizon() != 0 {
		t.Fatalf("shape = (%d, %v), want (3, 0)", got.Window(), got.Horizon())
	}
	if got.Count() != tr.Count() {
		t.Fatalf("Count = %d, want %d", got.Count(), tr.Count())
	}
	if w, h := got.WindowedAt(at(4)), tr.WindowedAt(at(4)); w != h {
		t.Fatalf("WindowedAt = %v, want %v", w, h)
	}
	if c, w := got.Cumulative(), tr.Cumulative(); c != w {
		t.Fatalf("Cumulative = %v, want %v", c, w)
	}
	// The rebuilt ring must keep rolling correctly.
	tr.Record(100*time.Second, at(5))
	got.Record(100*time.Second, at(5))
	if got.WindowedAt(at(5)) != tr.WindowedAt(at(5)) {
		t.Fatalf("post-restore Record diverged: %v vs %v", got.WindowedAt(at(5)), tr.WindowedAt(at(5)))
	}
}

func TestTrackerStateRoundTripTimeHorizon(t *testing.T) {
	tr := NewTimeHorizonTracker(10 * time.Second)
	tr.Record(4*time.Second, at(0))
	tr.Record(8*time.Second, at(5))
	tr.Record(12*time.Second, at(9))
	got := roundTrip(tr)
	if got.Horizon() != 10*time.Second {
		t.Fatalf("Horizon = %v, want 10s", got.Horizon())
	}
	for _, now := range []int{9, 12, 30} {
		if w, h := got.WindowedAt(at(now)), tr.WindowedAt(at(now)); w != h {
			t.Fatalf("WindowedAt(at(%d)) = %v, want %v", now, w, h)
		}
	}
	if got.Cumulative() != tr.Cumulative() {
		t.Fatalf("Cumulative = %v, want %v", got.Cumulative(), tr.Cumulative())
	}
}

func TestTrackerStateRoundTripEmpty(t *testing.T) {
	for _, tr := range []*ExpAgeTracker{
		NewExpAgeTracker(WindowAll),
		NewExpAgeTracker(8),
		NewTimeHorizonTracker(time.Minute),
	} {
		st := tr.State()
		if len(st.Samples) != 0 || st.TotalCount != 0 {
			t.Fatalf("empty tracker exported %+v", st)
		}
		got := NewTrackerFromState(st)
		if got.WindowedAt(at(0)) != NoContention || got.Cumulative() != NoContention {
			t.Fatalf("restored empty tracker reports contention: %v / %v",
				got.WindowedAt(at(0)), got.Cumulative())
		}
		got.Record(5*time.Second, at(1))
		if got.WindowedAt(at(1)) != 5*time.Second {
			t.Fatalf("restored empty tracker broken: %v", got.WindowedAt(at(1)))
		}
	}
}

// TestTrackerStateSanitizesGarbage feeds hand-corrupted states to the
// rebuild path: nothing here may panic or produce NaN-driven nonsense.
func TestTrackerStateSanitizesGarbage(t *testing.T) {
	st := TrackerState{
		Window:          4,
		TotalSumSeconds: math.NaN(),
		TotalCount:      -7,
		Samples: []TrackerSample{
			{At: at(1), Age: -30 * time.Second},
			{At: at(2), Age: 10 * time.Second},
		},
	}
	tr := NewTrackerFromState(st)
	if tr.Count() != 2 {
		t.Fatalf("Count = %d, want raised to 2 samples", tr.Count())
	}
	// Negative age clamps to 0, so mean(0, 10s) = 5s — and the NaN total
	// was recomputed from the clamped ring.
	if got := tr.WindowedAt(at(2)); got != 5*time.Second {
		t.Fatalf("WindowedAt = %v, want 5s", got)
	}
	if got := tr.Cumulative(); got != 5*time.Second {
		t.Fatalf("Cumulative = %v, want 5s", got)
	}

	// Negative window and horizon collapse to cumulative; an infinite
	// total is recomputed from the (empty) ring, so the claimed eviction
	// count stands with a zero sum rather than propagating the infinity.
	inf := TrackerState{Window: -3, Horizon: -time.Second, TotalSumSeconds: math.Inf(1), TotalCount: 1}
	tr2 := NewTrackerFromState(inf)
	if tr2.Window() != 0 || tr2.Horizon() != 0 {
		t.Fatalf("negative shape survived: (%d, %v)", tr2.Window(), tr2.Horizon())
	}
	if got := tr2.Cumulative(); got != 0 {
		t.Fatalf("all-garbage state yielded %v, want sanitized 0s", got)
	}
}

// TestStoreRestoreTrackerKeepsConfiguredShape pins the recovery contract:
// the window configuration comes from the store's Config, while the
// persisted samples and totals are re-windowed into it. A state recorded
// with no window (journal-only replay) must not demote a windowed store to
// a cumulative signal.
func TestStoreRestoreTrackerKeepsConfiguredShape(t *testing.T) {
	s, err := New(Config{Capacity: 100, ExpirationWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.RestoreTracker(TrackerState{
		Window:          0, // replayed without knowing the configuration
		TotalCount:      3,
		TotalSumSeconds: (10*time.Second + 20*time.Second + 60*time.Second).Seconds(),
		Samples: []TrackerSample{
			{At: at(1), Age: 10 * time.Second},
			{At: at(2), Age: 20 * time.Second},
			{At: at(3), Age: 60 * time.Second},
		},
	})
	// Window of 2: mean(20s, 60s) = 40s, not the cumulative 30s.
	if got := s.ExpirationAge(at(3)); got != 40*time.Second {
		t.Fatalf("ExpirationAge = %v, want 40s", got)
	}
	if got := s.CumulativeExpirationAge(); got != 30*time.Second {
		t.Fatalf("CumulativeExpirationAge = %v, want 30s", got)
	}

	// A cold restore (zero state) leaves a fresh store fresh.
	s2, err := New(Config{Capacity: 100, ExpirationHorizon: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s2.RestoreTracker(TrackerState{})
	if got := s2.ExpirationAge(at(0)); got != NoContention {
		t.Fatalf("cold restore reports contention: %v", got)
	}
	if s2.TrackerState().Horizon != time.Minute {
		t.Fatalf("cold restore lost the configured horizon: %+v", s2.TrackerState())
	}
}
