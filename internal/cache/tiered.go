// Tiered storage: the EA-aware controller that joins the sharded memory
// tier to a content-addressed disk tier (internal/blob) and presents the
// two as one logical store to the node.
//
// The controller applies the paper's placement logic to the tier boundary
// exactly as the EA scheme applies it to the cache group: a memory
// eviction is demoted to disk only when the victim's document expiration
// age (eq. 2/3) is below the disk tier's cache expiration age (eq. 5) —
// the document would outlive the disk tier's current contention level, so
// spilling it is worthwhile. A disk tier that has evicted nothing reports
// NoContention and accepts every demotion. Disk hits re-promote into
// memory on access, preserving the entry's metadata (entry time and hit
// history survive the round trip; the promoting access counts as a hit).
//
// Three expiration-age signals coexist, one per decision:
//
//   - each memory shard's tracker keeps driving shard-local eviction
//     bookkeeping (untouched);
//   - the disk tier's own tracker prices demotion admission;
//   - the TieredStore's logical "exit" tracker records only documents
//     that truly left the node (memory evictions that were dropped, and
//     disk evictions) — this is the contention signal the node advertises
//     to its peers, because a demotion is a tier move, not an exit.
//
// Demotions happen inside the memory store's event sink, under the owning
// shard's lock: the controller swallows the inner EventEvict and emits
// either EventDemote (tier move) or the EventEvict itself (true exit), so
// the per-URL event order the journal replays is exactly the order the
// logical store mutated. Blob I/O under a shard lock is deliberate — it
// serialises the victim's lifecycle and it is off the memory-hit hot
// path, which does not take the disk tier into account at all: with no
// disk tier configured every method is a direct pass-through and the
// memory-hit benchmark is byte-identical to the plain sharded store.
package cache

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DiskEntry is a document resident in the disk tier together with the
// metadata that must survive the demote→promote round trip.
type DiskEntry struct {
	Doc Document
	// EnteredAt is the original memory-tier entry time, preserved across
	// the round trip.
	EnteredAt time.Time
	// LastHit is the last hit time as of demotion (promotions refresh it).
	LastHit time.Time
	// Hits is the hit counter as of demotion.
	Hits int64
	// Sum is the SHA-256 of the stored body, assigned by the disk tier at
	// admission and verified on every read.
	Sum [32]byte
}

// DiskEviction records one document the disk tier evicted to make room,
// with its document expiration age (now - LastHit; the disk tier is LRU).
type DiskEviction struct {
	Entry DiskEntry
	Age   time.Duration
}

// DiskTier is the disk blob store as the tier controller sees it
// (implemented by internal/blob.Store). Implementations must be safe for
// concurrent use and must tolerate calls after Close as no-ops: a
// promotion in flight during shutdown may complete its bookkeeping late.
type DiskTier interface {
	// Admit stores e's body (read fully from body) and returns the entry
	// with its checksum filled in, plus any entries evicted to make room.
	Admit(e DiskEntry, body io.Reader, now time.Time) (DiskEntry, []DiskEviction, error)
	// Open returns the entry and a streaming reader over its body. The
	// reader verifies the checksum as it goes: a read or Close error
	// means the blob was corrupt (the tier drops it and counts the
	// failure).
	Open(url string) (DiskEntry, io.ReadCloser, bool)
	// Remove drops url, returning the removed entry.
	Remove(url string) (DiskEntry, bool)
	// Contains reports whether url is disk-resident.
	Contains(url string) bool
	// Peek returns the entry metadata without touching recency state.
	Peek(url string) (DiskEntry, bool)
	// ExpirationAge is the disk tier's cache expiration age (eq. 5 over
	// its own evictions) — the admission price for demotions.
	ExpirationAge(now time.Time) time.Duration
	Len() int
	Used() int64
	Capacity() int64
	URLs() []string
	Entries() []DiskEntry
	// ChecksumFailures counts blobs that failed verification on read.
	ChecksumFailures() int64
	// Sync flushes the blob index to stable storage.
	Sync() error
	Close() error
}

// DemotePolicy selects how the controller prices demotions.
type DemotePolicy int

const (
	// DemoteEA demotes a memory victim only when its document expiration
	// age is strictly below the disk tier's expiration age (the paper's
	// placement rule applied to the tier boundary). The default.
	DemoteEA DemotePolicy = iota
	// DemoteAlways spills every memory victim to disk (a blind LRU
	// spill, for comparison runs).
	DemoteAlways
)

// ParseDemotePolicy parses the -disk-demote flag values.
func ParseDemotePolicy(s string) (DemotePolicy, error) {
	switch s {
	case "", "ea":
		return DemoteEA, nil
	case "always":
		return DemoteAlways, nil
	default:
		return 0, fmt.Errorf("cache: unknown demote policy %q (want ea or always)", s)
	}
}

// String implements fmt.Stringer.
func (p DemotePolicy) String() string {
	if p == DemoteAlways {
		return "always"
	}
	return "ea"
}

// TieredConfig configures a TieredStore.
type TieredConfig struct {
	// Memory is the sharded memory tier. Required.
	Memory *ShardedStore
	// Disk is the blob tier; nil builds a pure pass-through (every method
	// delegates to Memory with no added cost).
	Disk DiskTier
	// Demote selects the demotion admission rule. Defaults to DemoteEA.
	Demote DemotePolicy
	// Body supplies the body bytes for a document being demoted (the
	// node's bodies are synthetic). Nil means doc.Size zero bytes.
	Body func(doc Document) io.Reader
}

// TierCounters are the controller's monotonic counters, for metrics.
type TierCounters struct {
	// Demotions is the number of memory victims moved to disk.
	Demotions int64
	// DemotionDrops is the number of memory victims the EA rule (or a
	// disk-tier failure) dropped instead of demoting.
	DemotionDrops int64
	// Promotions is the number of disk hits moved back into memory.
	Promotions int64
	// DiskEvictions is the number of documents the disk tier evicted.
	DiskEvictions int64
	// ChecksumFailures is the number of blobs that failed verification.
	ChecksumFailures int64
}

// TieredStore joins the sharded memory tier and an optional disk tier
// behind the single logical store surface internal/netnode consumes.
// All methods are safe for concurrent use.
type TieredStore struct {
	mem    *ShardedStore
	disk   DiskTier
	demote DemotePolicy
	body   func(Document) io.Reader

	// extSink is the external event sink (persist/obs/digest chain). The
	// controller's internal transformer runs under shard locks and reads
	// it through the atomic so SetEventSink stays safe mid-traffic.
	extSink atomic.Pointer[func(Event)]

	// exits is the logical exit tracker (see package comment). Guarded by
	// exitMu against concurrent reads; writes additionally happen only
	// under some shard lock, so the all-shards Checkpoint barrier excludes
	// them.
	exitMu sync.Mutex
	exits  *ExpAgeTracker

	demotions     atomic.Int64
	demotionDrops atomic.Int64
	promotions    atomic.Int64
	diskEvictions atomic.Int64
}

// NewTiered builds a TieredStore from cfg.
func NewTiered(cfg TieredConfig) (*TieredStore, error) {
	if cfg.Memory == nil {
		return nil, fmt.Errorf("cache: tiered store requires a memory tier")
	}
	t := &TieredStore{mem: cfg.Memory, disk: cfg.Disk, demote: cfg.Demote, body: cfg.Body}
	if t.disk != nil {
		if t.body == nil {
			t.body = zeroBody
		}
		// The logical exit tracker adopts the memory tier's window shape
		// so the advertised signal is configured once.
		st := cfg.Memory.TrackerState()
		t.exits = NewTrackerFromState(TrackerState{Window: st.Window, Horizon: st.Horizon})
		cfg.Memory.SetEventSink(t.memEvent)
	}
	return t, nil
}

// Tiered reports whether a disk tier is configured.
func (t *TieredStore) Tiered() bool { return t.disk != nil }

// Memory exposes the underlying memory tier (tests, benchmarks).
func (t *TieredStore) Memory() *ShardedStore { return t.mem }

// Disk exposes the disk tier (nil without one) for introspection: the
// admin surface type-asserts it for operations beyond the DiskTier
// interface, like a full checksum verification pass.
func (t *TieredStore) Disk() DiskTier { return t.disk }

// forward delivers ev to the external sink, if any.
func (t *TieredStore) forward(ev Event) {
	if p := t.extSink.Load(); p != nil && *p != nil {
		(*p)(ev)
	}
}

// recordExit folds one true exit into the logical tracker.
func (t *TieredStore) recordExit(age time.Duration, now time.Time) {
	t.exitMu.Lock()
	t.exits.Record(age, now)
	t.exitMu.Unlock()
}

// memEvent is the transformer installed as the memory tier's sink. It
// runs synchronously under the owning shard's lock; on eviction it
// decides the victim's fate and rewrites the event stream accordingly.
func (t *TieredStore) memEvent(ev Event) {
	if ev.Kind != EventEvict {
		t.forward(ev)
		return
	}
	now := ev.At
	if t.shouldDemote(ev.Age, now) {
		de := DiskEntry{Doc: ev.Doc, EnteredAt: ev.EnteredAt, LastHit: ev.LastHit, Hits: ev.Hits}
		admitted, evicted, err := t.disk.Admit(de, t.body(ev.Doc), now)
		if err == nil {
			t.demotions.Add(1)
			t.forward(Event{
				Kind: EventDemote, Doc: ev.Doc, At: now, Age: ev.Age,
				EnteredAt: ev.EnteredAt, LastHit: ev.LastHit, Hits: ev.Hits,
				Sum: admitted.Sum,
			})
			t.diskExits(evicted, now)
			return
		}
		// Admission failed (oversized for the disk tier, I/O error, or
		// the tier is closed): fall through to a true exit.
	}
	t.demotionDrops.Add(1)
	t.recordExit(ev.Age, now)
	t.forward(ev)
}

// shouldDemote applies the demotion admission rule: the victim must
// outlive the disk tier's expiration age (strict, like the paper's
// placement rule — ties reject).
func (t *TieredStore) shouldDemote(victimAge time.Duration, now time.Time) bool {
	if t.demote == DemoteAlways {
		return true
	}
	return victimAge < t.disk.ExpirationAge(now)
}

// diskExits records documents the disk tier evicted: true exits from the
// logical store, surfaced as disk-tier EventEvicts so the digest stops
// advertising them and replay drops their residency.
func (t *TieredStore) diskExits(evs []DiskEviction, now time.Time) {
	for _, de := range evs {
		t.diskEvictions.Add(1)
		t.recordExit(de.Age, now)
		t.forward(Event{
			Kind: EventEvict, Tier: TierDisk, Doc: de.Entry.Doc, At: now, Age: de.Age,
			EnteredAt: de.Entry.EnteredAt, LastHit: de.Entry.LastHit, Hits: de.Entry.Hits,
		})
	}
}

// Get returns the document and records a hit. A memory miss consults the
// disk tier and re-promotes on a disk hit.
func (t *TieredStore) Get(url string, now time.Time) (Document, bool) {
	doc, ok := t.mem.Get(url, now)
	if ok || t.disk == nil {
		return doc, ok
	}
	return t.promoteFromDisk(url, now)
}

// promoteFromDisk moves a disk-resident document back into memory: the
// blob is read through its verifying reader (bodies are synthetic, so the
// bytes are discarded — the read is the checksum verification), the entry
// re-enters the memory tier with its metadata preserved, and the blob is
// dropped afterwards (recovery prefers the memory copy during the
// overlap window).
func (t *TieredStore) promoteFromDisk(url string, now time.Time) (Document, bool) {
	de, rc, ok := t.disk.Open(url)
	if !ok {
		return Document{}, false
	}
	_, err := io.Copy(io.Discard, rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Corrupt blob: the disk tier already dropped it and counted the
		// failure; tell observers the URL left the logical store.
		t.forward(Event{Kind: EventRemove, Tier: TierDisk, Doc: de.Doc})
		return Document{}, false
	}
	if _, err := t.mem.PromoteEntry(de.Doc, de.EnteredAt, de.Hits, now); err != nil {
		// The document does not fit the memory tier (oversized for its
		// shard slice). Serve it from disk without promoting.
		return de.Doc, true
	}
	t.promotions.Add(1)
	t.disk.Remove(url)
	return de.Doc, true
}

// Peek returns the document without touching recency state, from either
// tier.
func (t *TieredStore) Peek(url string) (Document, bool) {
	doc, ok := t.mem.Peek(url)
	if ok || t.disk == nil {
		return doc, ok
	}
	de, ok := t.disk.Peek(url)
	return de.Doc, ok
}

// Contains reports whether url is resident in either tier.
func (t *TieredStore) Contains(url string) bool {
	if t.mem.Contains(url) {
		return true
	}
	return t.disk != nil && t.disk.Contains(url)
}

// Touch promotes url as if hit at now. A disk-resident document is
// re-promoted into memory (the touch is the promoting hit).
func (t *TieredStore) Touch(url string, now time.Time) bool {
	if t.mem.Touch(url, now) {
		return true
	}
	if t.disk == nil {
		return false
	}
	_, ok := t.promoteFromDisk(url, now)
	return ok
}

// Put inserts doc into the memory tier. A stale disk copy of the same URL
// (possible when a push races a demotion) is dropped first so the tiers
// stay exclusive, and the drop is journaled before the insert.
func (t *TieredStore) Put(doc Document, now time.Time) ([]Eviction, error) {
	if t.disk != nil && t.disk.Contains(doc.URL) {
		if de, ok := t.disk.Remove(doc.URL); ok {
			t.forward(Event{Kind: EventRemove, Tier: TierDisk, Doc: de.Doc})
		}
	}
	return t.mem.Put(doc, now)
}

// Remove deletes url from both tiers.
func (t *TieredStore) Remove(url string) bool {
	ok := t.mem.Remove(url)
	if t.disk != nil {
		if de, ok2 := t.disk.Remove(url); ok2 {
			t.forward(Event{Kind: EventRemove, Tier: TierDisk, Doc: de.Doc})
			return true
		}
	}
	return ok
}

// ExpirationAge returns the node's advertised cache expiration age: with
// a disk tier, the logical exit tracker's windowed mean (only documents
// that truly left the node count as contention evidence); without one,
// the memory tier's signal unchanged.
func (t *TieredStore) ExpirationAge(now time.Time) time.Duration {
	if t.disk == nil {
		return t.mem.ExpirationAge(now)
	}
	t.exitMu.Lock()
	age := t.exits.WindowedAt(now)
	t.exitMu.Unlock()
	return age
}

// Capacity returns the total byte budget across both tiers.
func (t *TieredStore) Capacity() int64 {
	if t.disk == nil {
		return t.mem.Capacity()
	}
	return t.mem.Capacity() + t.disk.Capacity()
}

// Used returns the bytes occupied across both tiers.
func (t *TieredStore) Used() int64 {
	if t.disk == nil {
		return t.mem.Used()
	}
	return t.mem.Used() + t.disk.Used()
}

// Len returns the number of documents across both tiers.
func (t *TieredStore) Len() int {
	if t.disk == nil {
		return t.mem.Len()
	}
	return t.mem.Len() + t.disk.Len()
}

// MemLen/MemUsed/MemCapacity and DiskLen/DiskUsed/DiskCapacity expose the
// per-tier occupancy for the eac_tier_* gauges.
func (t *TieredStore) MemLen() int        { return t.mem.Len() }
func (t *TieredStore) MemUsed() int64     { return t.mem.Used() }
func (t *TieredStore) MemCapacity() int64 { return t.mem.Capacity() }

func (t *TieredStore) DiskLen() int {
	if t.disk == nil {
		return 0
	}
	return t.disk.Len()
}

func (t *TieredStore) DiskUsed() int64 {
	if t.disk == nil {
		return 0
	}
	return t.disk.Used()
}

func (t *TieredStore) DiskCapacity() int64 {
	if t.disk == nil {
		return 0
	}
	return t.disk.Capacity()
}

// TierCounters returns the controller's monotonic counters.
func (t *TieredStore) TierCounters() TierCounters {
	c := TierCounters{
		Demotions:     t.demotions.Load(),
		DemotionDrops: t.demotionDrops.Load(),
		Promotions:    t.promotions.Load(),
		DiskEvictions: t.diskEvictions.Load(),
	}
	if t.disk != nil {
		c.ChecksumFailures = t.disk.ChecksumFailures()
	}
	return c
}

// Evictions counts replacement-policy evictions across both tiers.
func (t *TieredStore) Evictions() int64 {
	if t.disk == nil {
		return t.mem.Evictions()
	}
	return t.mem.Evictions() + t.diskEvictions.Load()
}

// Insertions counts memory-tier insertions (promotions included).
func (t *TieredStore) Insertions() int64 { return t.mem.Insertions() }

// PolicyName returns the memory tier's replacement policy name.
func (t *TieredStore) PolicyName() string { return t.mem.PolicyName() }

// Shards returns the memory tier's shard count.
func (t *TieredStore) Shards() int { return t.mem.Shards() }

// URLs returns every resident URL across both tiers (the union migration
// walks and the digest advertises). Transient duplicates from an
// in-flight promotion are collapsed.
func (t *TieredStore) URLs() []string {
	m := t.mem.URLs()
	if t.disk == nil {
		return m
	}
	d := t.disk.URLs()
	if len(d) == 0 {
		return m
	}
	seen := make(map[string]struct{}, len(m))
	for _, u := range m {
		seen[u] = struct{}{}
	}
	for _, u := range d {
		if _, ok := seen[u]; !ok {
			m = append(m, u)
		}
	}
	return m
}

// Entry returns the metadata for url from whichever tier holds it.
func (t *TieredStore) Entry(url string) (Entry, bool) {
	if e, ok := t.mem.Entry(url); ok {
		return e, true
	}
	if t.disk == nil {
		return Entry{}, false
	}
	de, ok := t.disk.Peek(url)
	if !ok {
		return Entry{}, false
	}
	return Entry{Doc: de.Doc, EnteredAt: de.EnteredAt, LastHit: de.LastHit, Hits: de.Hits}, true
}

// SetEventSink installs fn as the logical store's mutation observer. With
// no disk tier this is the memory tier's sink directly (zero added cost);
// with one, fn receives the controller's rewritten event stream.
func (t *TieredStore) SetEventSink(fn func(Event)) {
	if t.disk == nil {
		t.mem.SetEventSink(fn)
		return
	}
	if fn == nil {
		t.extSink.Store(nil)
		return
	}
	t.extSink.Store(&fn)
}

// RestoreEntry reinserts a recovered document into the memory tier. A
// blob left over from the crash window where a journal-visible memory
// entry also reached disk (a promotion whose blob drop never landed) is
// trimmed: recovery always prefers the memory copy.
func (t *TieredStore) RestoreEntry(doc Document, enteredAt, lastHit time.Time, hits int64) error {
	err := t.mem.RestoreEntry(doc, enteredAt, lastHit, hits)
	if err == nil && t.disk != nil {
		t.disk.Remove(doc.URL)
	}
	return err
}

// RestoreDisk reconciles persisted disk residency against the blob
// index rebuilt by the disk tier's own recovery: entries both agree on
// (URL, size and checksum) are kept, entries the persist layer knows but
// the blob tier lost (torn index tail, missing or resized blob file) are
// counted lost, and blobs the persist layer does not account for are
// swept. Memory-resident URLs always win (see RestoreEntry). Returns the
// kept and lost counts.
func (t *TieredStore) RestoreDisk(entries []DiskEntry) (restored, lost int) {
	if t.disk == nil {
		return 0, len(entries)
	}
	want := make(map[string]struct{}, len(entries))
	for _, de := range entries {
		if t.mem.Contains(de.Doc.URL) {
			t.disk.Remove(de.Doc.URL)
			continue
		}
		want[de.Doc.URL] = struct{}{}
		got, ok := t.disk.Peek(de.Doc.URL)
		if !ok || got.Sum != de.Sum || got.Doc.Size != de.Doc.Size {
			if ok {
				t.disk.Remove(de.Doc.URL)
			}
			lost++
			continue
		}
		restored++
	}
	for _, url := range t.disk.URLs() {
		if _, ok := want[url]; !ok {
			t.disk.Remove(url)
		}
	}
	return restored, lost
}

// TrackerState exports the advertised tracker for persistence: the
// logical exit tracker with a disk tier, the memory tier's otherwise.
func (t *TieredStore) TrackerState() TrackerState {
	if t.disk == nil {
		return t.mem.TrackerState()
	}
	t.exitMu.Lock()
	st := t.exits.State()
	t.exitMu.Unlock()
	return st
}

// RestoreTracker rebuilds the advertised tracker from a persisted state,
// re-windowed into the configured shape (see Store.RestoreTracker).
func (t *TieredStore) RestoreTracker(st TrackerState) {
	if t.disk == nil {
		t.mem.RestoreTracker(st)
		return
	}
	t.exitMu.Lock()
	st.Window = t.exits.Window()
	st.Horizon = t.exits.Horizon()
	t.exits = NewTrackerFromState(st)
	t.exitMu.Unlock()
}

// tieredCheckpointView augments the all-shards-locked memory view with
// the disk tier's entries and swaps in the logical tracker, so one
// checkpoint images the whole logical store.
type tieredCheckpointView struct {
	StoreView
	tracker TrackerState
	disk    []DiskEntry
}

// TrackerState returns the logical (advertised) tracker state.
func (v tieredCheckpointView) TrackerState() TrackerState { return v.tracker }

// DiskEntries returns the disk tier's entries at the checkpoint instant.
func (v tieredCheckpointView) DiskEntries() []DiskEntry { return v.disk }

// Checkpoint runs capture with a consistent point-in-time view of the
// logical store. All memory shard locks are held, which also excludes
// every tier transition (demotions and promotions mutate under a shard
// lock), so the memory image, the disk image and the logical tracker are
// mutually consistent.
func (t *TieredStore) Checkpoint(capture func(view StoreView) error) error {
	if t.disk == nil {
		return t.mem.Checkpoint(capture)
	}
	return t.mem.Checkpoint(func(v StoreView) error {
		t.exitMu.Lock()
		tr := t.exits.State()
		t.exitMu.Unlock()
		return capture(tieredCheckpointView{StoreView: v, tracker: tr, disk: t.disk.Entries()})
	})
}

// Quiesce blocks until every in-flight tier transition has completed and
// flushes the blob index to stable storage. Transitions mutate under
// shard locks, so taking the full checkpoint barrier is the flush: any
// demotion that began before Quiesce has finished its blob and index
// writes by the time the barrier is acquired. Node.Close runs this
// before the journal's final rotate so the snapshot and the blob index
// agree.
func (t *TieredStore) Quiesce() error {
	if t.disk == nil {
		return nil
	}
	if err := t.mem.Checkpoint(func(StoreView) error { return nil }); err != nil {
		return err
	}
	return t.disk.Sync()
}

// CloseDisk closes the disk tier (final index fsync). Safe without one.
func (t *TieredStore) CloseDisk() error {
	if t.disk == nil {
		return nil
	}
	return t.disk.Close()
}

// zeroSrc is an endless zero-byte reader.
type zeroSrc struct{}

func (zeroSrc) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// zeroBody is the default demotion body source: doc.Size zero bytes (the
// node's synthetic bodies).
func zeroBody(doc Document) io.Reader { return io.LimitReader(zeroSrc{}, doc.Size) }
