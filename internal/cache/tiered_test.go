package cache_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"testing"
	"time"

	"eacache/internal/blob"
	"eacache/internal/cache"
	"eacache/internal/dist"
)

// t0 is the workload epoch.
func t0() time.Time { return time.Unix(1_700_000_000, 0) }

// docBody derives a deterministic pseudorandom body for url — the
// round-trip tests need bodies that are NOT all zeros so a byte mismatch
// is detectable.
func docBody(url string, size int64) []byte {
	h := sha256.Sum256([]byte(url))
	out := make([]byte, size)
	for i := range out {
		out[i] = h[i%len(h)] ^ byte(i)
	}
	return out
}

// bodyFn is the TieredConfig.Body source over docBody.
func bodyFn(doc cache.Document) io.Reader {
	return bytes.NewReader(docBody(doc.URL, doc.Size))
}

// newTiered builds a single-shard memory tier over a blob tier in a
// temp dir, with an event recorder attached.
func newTiered(t *testing.T, memCap, diskCap int64, pol cache.DemotePolicy) (*cache.TieredStore, *blob.Store, *[]cache.Event) {
	t.Helper()
	mem, err := cache.NewSharded(cache.ShardedConfig{Shards: 1, Capacity: memCap, ExpirationWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := blob.Open(blob.Config{Dir: t.TempDir(), Capacity: diskCap, ExpirationWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := cache.NewTiered(cache.TieredConfig{Memory: mem, Disk: disk, Demote: pol, Body: bodyFn})
	if err != nil {
		t.Fatal(err)
	}
	events := &[]cache.Event{}
	ts.SetEventSink(func(ev cache.Event) { *events = append(*events, ev) })
	t.Cleanup(func() { disk.Close() })
	return ts, disk, events
}

// TestTieredPassthroughMatchesSharded: with no disk tier every operation
// and signal must match the bare sharded store exactly.
func TestTieredPassthroughMatchesSharded(t *testing.T) {
	mkPair := func() (*cache.ShardedStore, *cache.TieredStore) {
		a, err := cache.NewSharded(cache.ShardedConfig{Shards: 1, Capacity: 4096, ExpirationWindow: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cache.NewSharded(cache.ShardedConfig{Shards: 1, Capacity: 4096, ExpirationWindow: 8})
		if err != nil {
			t.Fatal(err)
		}
		ts, err := cache.NewTiered(cache.TieredConfig{Memory: b})
		if err != nil {
			t.Fatal(err)
		}
		return a, ts
	}
	plain, tiered := mkPair()
	var plainEvents, tieredEvents []cache.Event
	plain.SetEventSink(func(ev cache.Event) { plainEvents = append(plainEvents, ev) })
	tiered.SetEventSink(func(ev cache.Event) { tieredEvents = append(tieredEvents, ev) })

	rng := dist.NewRNG(42)
	now := t0()
	for i := 0; i < 2000; i++ {
		now = now.Add(time.Duration(1+rng.Intn(500)) * time.Millisecond)
		url := fmt.Sprintf("http://pt/%d", rng.Intn(30))
		switch rng.Intn(10) {
		case 0:
			plain.Remove(url)
			tiered.Remove(url)
		case 1, 2:
			plain.Get(url, now)
			tiered.Get(url, now)
		case 3:
			plain.Touch(url, now)
			tiered.Touch(url, now)
		default:
			size := int64(64 + rng.Intn(1024))
			plain.Put(cache.Document{URL: url, Size: size}, now)
			tiered.Put(cache.Document{URL: url, Size: size}, now)
		}
	}
	if plain.Len() != tiered.Len() || plain.Used() != tiered.Used() {
		t.Fatalf("len/used diverged: %d/%d vs %d/%d", plain.Len(), plain.Used(), tiered.Len(), tiered.Used())
	}
	if a, b := plain.ExpirationAge(now), tiered.ExpirationAge(now); a != b {
		t.Fatalf("expiration age diverged: %v vs %v", a, b)
	}
	if len(plainEvents) != len(tieredEvents) {
		t.Fatalf("event counts diverged: %d vs %d", len(plainEvents), len(tieredEvents))
	}
	for i := range plainEvents {
		if plainEvents[i] != tieredEvents[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, plainEvents[i], tieredEvents[i])
		}
	}
	if tiered.Tiered() {
		t.Fatal("passthrough store claims a disk tier")
	}
}

// TestDemotePromoteRoundTripProperty is the satellite property test:
// across randomized documents and hit histories, evict→demote→promote
// must round-trip body bytes, hit metadata and DocExpAge exactly — the
// only metadata change across the whole trip is the promoting access
// itself.
func TestDemotePromoteRoundTripProperty(t *testing.T) {
	rng := dist.NewRNG(1234)
	for trial := 0; trial < 40; trial++ {
		ts, disk, events := newTiered(t, 4096, 1<<20, cache.DemoteEA)
		url := fmt.Sprintf("http://prop/%d", trial)
		size := int64(64 + rng.Intn(2048))
		enter := t0().Add(time.Duration(rng.Intn(1000)) * time.Second)
		hits := int64(1 + rng.Intn(50))
		lastHit := enter.Add(time.Duration(rng.Intn(3600)) * time.Second)

		if err := ts.RestoreEntry(cache.Document{URL: url, Size: size}, enter, lastHit, hits); err != nil {
			t.Fatal(err)
		}

		// Fill memory so the subject is evicted (fresh filler docs are
		// more recently used; LRU victims the subject first).
		evictAt := lastHit.Add(time.Duration(1+rng.Intn(7200)) * time.Second)
		for i := 0; ts.Memory().Contains(url); i++ {
			if _, err := ts.Put(cache.Document{URL: fmt.Sprintf("http://fill/%d", i), Size: 1024}, evictAt); err != nil {
				t.Fatal(err)
			}
		}

		// Demoted, not dropped: a fresh disk tier reports NoContention.
		de, ok := disk.Peek(url)
		if !ok {
			t.Fatalf("trial %d: subject not demoted", trial)
		}
		if !de.EnteredAt.Equal(enter) || !de.LastHit.Equal(lastHit) || de.Hits != hits {
			t.Fatalf("trial %d: disk metadata %+v, want enter=%v lastHit=%v hits=%d",
				trial, de, enter, lastHit, hits)
		}
		var demote cache.Event
		for _, ev := range *events {
			if ev.Kind == cache.EventDemote && ev.Doc.URL == url {
				demote = ev
			}
		}
		if demote.Kind == 0 {
			t.Fatalf("trial %d: no demote event", trial)
		}
		// DocExpAge at eviction is eq. 2 (LRU): evict time - last hit.
		if want := evictAt.Sub(lastHit); demote.Age != want {
			t.Fatalf("trial %d: demote age %v, want %v", trial, demote.Age, want)
		}
		if demote.Sum != de.Sum {
			t.Fatalf("trial %d: demote event sum differs from index", trial)
		}

		// Body bytes round-trip through the verified reader.
		_, rc, ok := disk.Open(url)
		if !ok {
			t.Fatalf("trial %d: blob unreadable", trial)
		}
		got, err := io.ReadAll(rc)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if !bytes.Equal(got, docBody(url, size)) {
			t.Fatalf("trial %d: body bytes corrupted across demotion", trial)
		}

		// Promote via Get: metadata survives, plus exactly one hit.
		promoteAt := evictAt.Add(time.Duration(1+rng.Intn(3600)) * time.Second)
		doc, ok := ts.Get(url, promoteAt)
		if !ok || doc.Size != size {
			t.Fatalf("trial %d: promote get failed", trial)
		}
		me, ok := ts.Memory().Entry(url)
		if !ok {
			t.Fatalf("trial %d: not in memory after promotion", trial)
		}
		if !me.EnteredAt.Equal(enter) {
			t.Fatalf("trial %d: EnteredAt %v, want %v", trial, me.EnteredAt, enter)
		}
		if me.Hits != hits+1 {
			t.Fatalf("trial %d: Hits %d, want %d", trial, me.Hits, hits+1)
		}
		if !me.LastHit.Equal(promoteAt) {
			t.Fatalf("trial %d: LastHit %v, want %v", trial, me.LastHit, promoteAt)
		}
		if disk.Contains(url) {
			t.Fatalf("trial %d: still disk-resident after promotion", trial)
		}
		last := (*events)[len(*events)-1]
		if last.Kind != cache.EventPromoteFromDisk || last.Doc.URL != url ||
			!last.EnteredAt.Equal(enter) || last.Hits != hits+1 || !last.At.Equal(promoteAt) {
			t.Fatalf("trial %d: promote event %+v", trial, last)
		}
	}
}

// TestDemoteEAGate: the strict EA rule — a victim whose DocExpAge is not
// below the disk tier's expiration age is dropped, not demoted, and the
// drop feeds the logical exit tracker.
func TestDemoteEAGate(t *testing.T) {
	ts, disk, events := newTiered(t, 2048, 4096, cache.DemoteEA)
	now := t0()

	// Load the disk tier's tracker with small ages: evict disk entries
	// whose last hit was just before eviction.
	for i := 0; i < 8; i++ {
		now = now.Add(time.Second)
		if _, err := ts.Put(cache.Document{URL: fmt.Sprintf("http://churn/%d", i), Size: 1024}, now); err != nil {
			t.Fatal(err)
		}
	}
	// The churn demoted memory victims to disk and then evicted some of
	// them from disk (capacity 4096 holds 4). Disk EA is now ~ the
	// small ages of those disk victims.
	diskEA := disk.ExpirationAge(now)
	if diskEA == cache.NoContention {
		t.Fatalf("disk tier never evicted; test needs contention (disk len %d)", disk.Len())
	}

	// A victim idle longer than diskEA must be dropped (EventEvict
	// forwarded), not demoted. Make room for it first.
	ts.Remove(ts.Memory().URLs()[0])
	idle := cache.Document{URL: "http://idle/doc", Size: 1024}
	if err := ts.RestoreEntry(idle, now.Add(-diskEA-2*time.Hour), now.Add(-diskEA-time.Hour), 1); err != nil {
		t.Fatal(err)
	}
	*events = nil
	now = now.Add(time.Second)
	for i := 0; ts.Memory().Contains(idle.URL); i++ {
		if _, err := ts.Put(cache.Document{URL: fmt.Sprintf("http://fill2/%d", i), Size: 1024}, now); err != nil {
			t.Fatal(err)
		}
	}
	if disk.Contains(idle.URL) {
		t.Fatal("stale victim was demoted past the EA gate")
	}
	var sawDrop bool
	for _, ev := range *events {
		if ev.Kind == cache.EventEvict && ev.Doc.URL == idle.URL && ev.Tier == cache.TierMemory {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Fatal("dropped victim emitted no evict event")
	}
	c := ts.TierCounters()
	if c.DemotionDrops == 0 || c.Demotions == 0 || c.DiskEvictions == 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestDemoteAlwaysSpills: the blind-spill policy demotes regardless of
// the EA comparison.
func TestDemoteAlwaysSpills(t *testing.T) {
	ts, disk, _ := newTiered(t, 2048, 1<<20, cache.DemoteAlways)
	now := t0()
	for i := 0; i < 10; i++ {
		now = now.Add(time.Minute)
		if _, err := ts.Put(cache.Document{URL: fmt.Sprintf("http://spill/%d", i), Size: 1024}, now); err != nil {
			t.Fatal(err)
		}
	}
	c := ts.TierCounters()
	if c.DemotionDrops != 0 {
		t.Fatalf("always-policy dropped %d victims", c.DemotionDrops)
	}
	if got := ts.Len(); got != 10 {
		t.Fatalf("logical len = %d, want 10", got)
	}
	if disk.Len() != 8 {
		t.Fatalf("disk len = %d, want 8", disk.Len())
	}
}

// TestTieredUnionSurface: membership, sizes, Entry and URLs span both
// tiers; Remove and Put keep the tiers exclusive.
func TestTieredUnionSurface(t *testing.T) {
	ts, disk, events := newTiered(t, 2048, 1<<20, cache.DemoteAlways)
	now := t0()
	for i := 0; i < 6; i++ {
		now = now.Add(time.Minute)
		if _, err := ts.Put(cache.Document{URL: fmt.Sprintf("http://u/%d", i), Size: 1024}, now); err != nil {
			t.Fatal(err)
		}
	}
	// 2 in memory, 4 on disk.
	if ts.MemLen() != 2 || ts.DiskLen() != 4 || ts.Len() != 6 {
		t.Fatalf("mem/disk/len = %d/%d/%d", ts.MemLen(), ts.DiskLen(), ts.Len())
	}
	if ts.Used() != 6*1024 || ts.Capacity() != 2048+1<<20 {
		t.Fatalf("used/capacity = %d/%d", ts.Used(), ts.Capacity())
	}
	if len(ts.URLs()) != 6 {
		t.Fatalf("URLs = %v", ts.URLs())
	}
	for i := 0; i < 6; i++ {
		url := fmt.Sprintf("http://u/%d", i)
		if !ts.Contains(url) {
			t.Fatalf("missing %s", url)
		}
		if _, ok := ts.Entry(url); !ok {
			t.Fatalf("no entry for %s", url)
		}
		if _, ok := ts.Peek(url); !ok {
			t.Fatalf("no peek for %s", url)
		}
	}
	// Remove a disk-resident URL: gone from the logical store, with a
	// disk-tier remove event for the digest/journal.
	*events = nil
	if !ts.Remove("http://u/0") {
		t.Fatal("remove of disk-resident URL failed")
	}
	if ts.Contains("http://u/0") || disk.Contains("http://u/0") {
		t.Fatal("removed URL still resident")
	}
	if len(*events) != 1 || (*events)[0].Kind != cache.EventRemove || (*events)[0].Tier != cache.TierDisk {
		t.Fatalf("events = %+v", *events)
	}
	// Put over a disk-resident URL drops the stale blob first (journal
	// sees disk-remove then insert).
	*events = nil
	if _, err := ts.Put(cache.Document{URL: "http://u/1", Size: 512}, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if disk.Contains("http://u/1") {
		t.Fatal("stale disk copy survived Put")
	}
	if len(*events) < 2 || (*events)[0].Kind != cache.EventRemove || (*events)[0].Tier != cache.TierDisk ||
		(*events)[len(*events)-1].Kind != cache.EventInsert {
		t.Fatalf("events = %+v", *events)
	}
}

// TestTieredTouchPromotes: a Touch on a disk-resident URL re-promotes it
// (the responder-side promotion reaches through the tiers).
func TestTieredTouchPromotes(t *testing.T) {
	ts, disk, _ := newTiered(t, 2048, 1<<20, cache.DemoteAlways)
	now := t0()
	for i := 0; i < 6; i++ {
		now = now.Add(time.Minute)
		if _, err := ts.Put(cache.Document{URL: fmt.Sprintf("http://t/%d", i), Size: 1024}, now); err != nil {
			t.Fatal(err)
		}
	}
	if !disk.Contains("http://t/0") {
		t.Fatal("setup: t/0 not on disk")
	}
	if !ts.Touch("http://t/0", now.Add(time.Hour)) {
		t.Fatal("touch on disk-resident URL failed")
	}
	if !ts.Memory().Contains("http://t/0") || disk.Contains("http://t/0") {
		t.Fatal("touch did not promote")
	}
	if ts.Touch("http://t/none", now) {
		t.Fatal("touch on absent URL succeeded")
	}
}

// TestTieredExitTracker: the advertised expiration age reflects only
// true exits — demotions are invisible, drops and disk evictions count.
func TestTieredExitTracker(t *testing.T) {
	ts, _, _ := newTiered(t, 2048, 1<<30, cache.DemoteAlways)
	now := t0()
	// Everything demotes (huge disk): the logical store never exits
	// anything, so the advertised signal stays NoContention.
	for i := 0; i < 20; i++ {
		now = now.Add(time.Minute)
		if _, err := ts.Put(cache.Document{URL: fmt.Sprintf("http://x/%d", i), Size: 1024}, now); err != nil {
			t.Fatal(err)
		}
	}
	if got := ts.ExpirationAge(now); got != cache.NoContention {
		t.Fatalf("age with demotions only = %v, want NoContention", got)
	}
	// Tracker state round-trips through persistence.
	st := ts.TrackerState()
	if st.TotalCount != 0 {
		t.Fatalf("tracker counted demotions: %+v", st)
	}

	// Now with a small disk: disk evictions are true exits.
	ts2, _, _ := newTiered(t, 2048, 3072, cache.DemoteAlways)
	now = t0()
	for i := 0; i < 20; i++ {
		now = now.Add(time.Minute)
		if _, err := ts2.Put(cache.Document{URL: fmt.Sprintf("http://y/%d", i), Size: 1024}, now); err != nil {
			t.Fatal(err)
		}
	}
	if got := ts2.ExpirationAge(now); got == cache.NoContention {
		t.Fatal("disk evictions left no contention evidence")
	}
	st2 := ts2.TrackerState()
	if st2.TotalCount == 0 {
		t.Fatal("exit tracker empty after disk evictions")
	}
	// RestoreTracker round-trip.
	ts3, _, _ := newTiered(t, 2048, 3072, cache.DemoteAlways)
	ts3.RestoreTracker(st2)
	if a, b := ts3.ExpirationAge(now), ts2.ExpirationAge(now); a != b {
		t.Fatalf("restored age %v, want %v", a, b)
	}
}

// TestTieredCheckpointView: the checkpoint view carries both tiers and
// the logical tracker.
func TestTieredCheckpointView(t *testing.T) {
	ts, _, _ := newTiered(t, 2048, 1<<20, cache.DemoteAlways)
	now := t0()
	for i := 0; i < 6; i++ {
		now = now.Add(time.Minute)
		if _, err := ts.Put(cache.Document{URL: fmt.Sprintf("http://cp/%d", i), Size: 1024}, now); err != nil {
			t.Fatal(err)
		}
	}
	err := ts.Checkpoint(func(v cache.StoreView) error {
		mem := v.Entries()
		if len(mem) != 2 {
			t.Fatalf("checkpoint memory entries = %d", len(mem))
		}
		dv, ok := v.(interface{ DiskEntries() []cache.DiskEntry })
		if !ok {
			t.Fatal("checkpoint view has no DiskEntries")
		}
		if got := dv.DiskEntries(); len(got) != 4 {
			t.Fatalf("checkpoint disk entries = %d", len(got))
		}
		if v.TrackerState().TotalCount != 0 {
			t.Fatal("logical tracker counted tier moves")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRestoreDiskReconciles: persisted residency is cross-checked
// against the blob index; mismatches are lost, memory wins, orphans are
// swept.
func TestRestoreDiskReconciles(t *testing.T) {
	ts, disk, _ := newTiered(t, 4096, 1<<20, cache.DemoteAlways)
	now := t0()
	// Three entries straight into the disk tier.
	var des []cache.DiskEntry
	for i := 0; i < 3; i++ {
		url := fmt.Sprintf("http://rd/%d", i)
		e, _, err := disk.Admit(cache.DiskEntry{
			Doc: cache.Document{URL: url, Size: 256}, EnteredAt: now, LastHit: now, Hits: 1,
		}, bytes.NewReader(docBody(url, 256)), now)
		if err != nil {
			t.Fatal(err)
		}
		des = append(des, e)
	}
	// rd/0 is also memory-resident (promotion crash window): memory wins.
	if err := ts.RestoreEntry(cache.Document{URL: "http://rd/0", Size: 256}, now, now, 2); err != nil {
		t.Fatal(err)
	}
	// rd/1's persisted record has a stale sum (the blob was re-written
	// after the snapshot): lost.
	stale := des[1]
	stale.Sum[0] ^= 0xff
	// rd/2 round-trips. An orphan blob (never persisted) is swept.
	orphanURL := "http://rd/orphan"
	if _, _, err := disk.Admit(cache.DiskEntry{
		Doc: cache.Document{URL: orphanURL, Size: 64}, EnteredAt: now, LastHit: now, Hits: 1,
	}, bytes.NewReader(docBody(orphanURL, 64)), now); err != nil {
		t.Fatal(err)
	}

	restored, lost := ts.RestoreDisk([]cache.DiskEntry{des[0], stale, des[2]})
	if restored != 1 || lost != 1 {
		t.Fatalf("restored/lost = %d/%d, want 1/1", restored, lost)
	}
	if disk.Contains("http://rd/0") {
		t.Fatal("memory-resident URL kept its blob")
	}
	if disk.Contains("http://rd/1") {
		t.Fatal("stale-sum entry kept its blob")
	}
	if !disk.Contains("http://rd/2") {
		t.Fatal("clean entry lost")
	}
	if disk.Contains(orphanURL) {
		t.Fatal("orphan blob survived reconciliation")
	}
}
