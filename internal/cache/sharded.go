// Sharded store: the concurrency-safe cache used by the live node
// (internal/netnode). The deterministic single-threaded Store is the unit
// the simulator and the paper artifacts replay — it stays untouched;
// ShardedStore composes N of them behind per-shard mutexes so concurrent
// requests on different documents proceed in parallel, memcached-style,
// instead of serialising behind one lock around the whole cache.
//
// Sharding choices, and what they change:
//
//   - Documents map to shards by URL hash (FNV-1a, power-of-two mask), so
//     one document's lifecycle is always serialised by one lock.
//   - The byte budget is split evenly across shards; eviction pressure is
//     shard-local. With shards=1 behaviour is bit-identical to Store
//     (verified by TestShardedSingleShardMatchesStore); with more shards
//     the group-level hit/eviction behaviour converges statistically but
//     is not byte-identical, which is why the simulator keeps using Store.
//   - Each shard keeps its own expiration-age tracker; the group-level
//     cache expiration age (the paper's placement signal) is the merged
//     mean over every shard's windowed victims, cached in an atomic and
//     invalidated on eviction rather than re-averaged on every miss.
package cache

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// StoreView is read access to a store's persistable state — what
// internal/persist captures into a snapshot. Both *Store and the
// consistent checkpoint view of a *ShardedStore implement it.
type StoreView interface {
	Entries() []Entry
	TrackerState() TrackerState
}

// DefaultShards is the shard count used when ShardedConfig.Shards is 0.
const DefaultShards = 8

// eaMaxStale bounds how long the cached merged expiration age may be
// served without recomputation. Evictions invalidate the cache
// immediately; this bound only covers time-horizon trackers, whose
// windowed mean also decays as samples age out of the horizon. Horizons
// are hours (DefaultExpirationHorizon) while the bound is milliseconds,
// so the staleness is negligible against the signal's own time constant.
const eaMaxStale = 100 * time.Millisecond

// ShardedConfig configures a ShardedStore.
type ShardedConfig struct {
	// Shards is the number of shards; rounded up to a power of two.
	// 0 means DefaultShards.
	Shards int
	// Capacity is the total byte budget, split evenly across shards
	// (documents larger than one shard's slice are rejected, like
	// oversized documents on a plain Store). Must be positive and at
	// least Shards bytes.
	Capacity int64
	// NewPolicy builds one replacement policy per shard (policies are
	// stateful, so shards cannot share an instance). Nil means LRU.
	NewPolicy func() Policy
	// ExpirationWindow / ExpirationHorizon configure each shard's
	// expiration-age tracker, with Config's semantics.
	ExpirationWindow  int
	ExpirationHorizon time.Duration
}

// shard pairs one deterministic Store with its lock. Shards are allocated
// individually so neighbouring shard mutexes do not share a cache line.
type shard struct {
	mu    sync.Mutex
	store *Store
}

// eaCache is one cached merged expiration age: the value and the caller
// timestamp it was computed at.
type eaCache struct {
	age time.Duration
	at  time.Time
}

// ShardedStore is a concurrency-safe document cache: N independent Stores
// behind per-shard locks, presenting the single-store API the live node
// needs. All methods are safe for concurrent use.
type ShardedStore struct {
	shards []*shard
	mask   uint32
	// single marks the one-shard store (including SingleShard wrappers):
	// expiration-age reads delegate straight to the shard so results are
	// bit-identical with a plain Store.
	single bool

	ea atomic.Pointer[eaCache]
}

// NewSharded builds a ShardedStore from cfg.
func NewSharded(cfg ShardedConfig) (*ShardedStore, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cache: negative shard count %d", cfg.Shards)
	}
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards
	}
	// Round up to a power of two so the hash maps with a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	n = pow
	if cfg.Capacity < int64(n) {
		return nil, fmt.Errorf("cache: capacity %d cannot back %d shards", cfg.Capacity, n)
	}
	newPolicy := cfg.NewPolicy
	if newPolicy == nil {
		newPolicy = func() Policy { return NewLRU() }
	}
	base, rem := cfg.Capacity/int64(n), cfg.Capacity%int64(n)
	s := &ShardedStore{shards: make([]*shard, n), mask: uint32(n - 1), single: n == 1}
	for i := range s.shards {
		capacity := base
		if int64(i) < rem {
			capacity++
		}
		st, err := New(Config{
			Capacity:          capacity,
			Policy:            newPolicy(),
			ExpirationWindow:  cfg.ExpirationWindow,
			ExpirationHorizon: cfg.ExpirationHorizon,
		})
		if err != nil {
			return nil, err
		}
		s.shards[i] = &shard{store: st}
	}
	return s, nil
}

// SingleShard wraps an existing Store as a one-shard ShardedStore: the
// same cache behind one lock, byte-identical behaviour, concurrency-safe
// API. This is how the live node adopts a caller-built *cache.Store.
func SingleShard(st *Store) *ShardedStore {
	return &ShardedStore{shards: []*shard{{store: st}}, single: true}
}

// Shards returns the shard count.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// shardFor maps url to its owning shard (FNV-1a over the URL bytes).
func (s *ShardedStore) shardFor(url string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(url); i++ {
		h ^= uint32(url[i])
		h *= prime32
	}
	return s.shards[h&s.mask]
}

// Get returns the cached document and records a hit (see Store.Get).
func (s *ShardedStore) Get(url string, now time.Time) (Document, bool) {
	sh := s.shardFor(url)
	sh.mu.Lock()
	doc, ok := sh.store.Get(url, now)
	sh.mu.Unlock()
	return doc, ok
}

// Peek returns the cached document without touching recency state.
func (s *ShardedStore) Peek(url string) (Document, bool) {
	sh := s.shardFor(url)
	sh.mu.Lock()
	doc, ok := sh.store.Peek(url)
	sh.mu.Unlock()
	return doc, ok
}

// Contains reports whether url is cached (the ICP answer path).
func (s *ShardedStore) Contains(url string) bool {
	sh := s.shardFor(url)
	sh.mu.Lock()
	ok := sh.store.Contains(url)
	sh.mu.Unlock()
	return ok
}

// Touch promotes url as if hit at now (the EA responder-side promotion).
func (s *ShardedStore) Touch(url string, now time.Time) bool {
	sh := s.shardFor(url)
	sh.mu.Lock()
	ok := sh.store.Touch(url, now)
	sh.mu.Unlock()
	return ok
}

// Put inserts doc, evicting within its shard as needed. An eviction
// invalidates the cached group expiration age so the next placement
// decision sees the new contention evidence.
func (s *ShardedStore) Put(doc Document, now time.Time) ([]Eviction, error) {
	sh := s.shardFor(doc.URL)
	sh.mu.Lock()
	evicted, err := sh.store.Put(doc, now)
	sh.mu.Unlock()
	if len(evicted) > 0 {
		s.ea.Store(nil)
	}
	return evicted, err
}

// PromoteEntry re-inserts a disk-promoted document into its shard with
// its carried metadata (see Store.PromoteEntry), evicting within the
// shard as needed.
func (s *ShardedStore) PromoteEntry(doc Document, enteredAt time.Time, hits int64, now time.Time) ([]Eviction, error) {
	sh := s.shardFor(doc.URL)
	sh.mu.Lock()
	evicted, err := sh.store.PromoteEntry(doc, enteredAt, hits, now)
	sh.mu.Unlock()
	if len(evicted) > 0 {
		s.ea.Store(nil)
	}
	return evicted, err
}

// Remove deletes url without recording an eviction age.
func (s *ShardedStore) Remove(url string) bool {
	sh := s.shardFor(url)
	sh.mu.Lock()
	ok := sh.store.Remove(url)
	sh.mu.Unlock()
	return ok
}

// ExpirationAge returns the group-level cache expiration age as of now:
// the mean document expiration age over every shard's windowed victims.
// The merged value is cached in an atomic — a miss storm reads one
// pointer instead of re-averaging N trackers — and recomputed after an
// eviction (the cache is invalidated) or when the cached value is older
// than eaMaxStale.
func (s *ShardedStore) ExpirationAge(now time.Time) time.Duration {
	if c := s.ea.Load(); c != nil && !now.Before(c.at) && now.Sub(c.at) < eaMaxStale {
		return c.age
	}
	age := s.computeExpirationAge(now)
	s.ea.Store(&eaCache{age: age, at: now})
	return age
}

// computeExpirationAge merges the per-shard windowed stats. The one-shard
// case delegates to the shard's own ExpirationAge so the result is
// bit-identical with a plain Store (no float round trip).
func (s *ShardedStore) computeExpirationAge(now time.Time) time.Duration {
	if s.single {
		sh := s.shards[0]
		sh.mu.Lock()
		age := sh.store.ExpirationAge(now)
		sh.mu.Unlock()
		return age
	}
	var (
		sum   float64
		count int64
	)
	for _, sh := range s.shards {
		sh.mu.Lock()
		ss, sc := sh.store.ages.WindowedStatsAt(now)
		sh.mu.Unlock()
		sum += ss
		count += sc
	}
	if count == 0 {
		return NoContention
	}
	secs := sum / float64(count)
	if secs >= (float64(NoContention) / float64(time.Second)) {
		return NoContention
	}
	return time.Duration(secs * float64(time.Second))
}

// Capacity returns the total configured byte budget.
func (s *ShardedStore) Capacity() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.store.Capacity()
	}
	return total
}

// Used returns the bytes currently occupied across all shards.
func (s *ShardedStore) Used() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.store.Used()
		sh.mu.Unlock()
	}
	return total
}

// Len returns the number of cached documents.
func (s *ShardedStore) Len() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.store.Len()
		sh.mu.Unlock()
	}
	return total
}

// Evictions returns total contention evictions across all shards.
func (s *ShardedStore) Evictions() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.store.Evictions()
		sh.mu.Unlock()
	}
	return total
}

// Insertions returns total document insertions across all shards.
func (s *ShardedStore) Insertions() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.store.Insertions()
		sh.mu.Unlock()
	}
	return total
}

// PolicyName returns the replacement policy's name.
func (s *ShardedStore) PolicyName() string { return s.shards[0].store.PolicyName() }

// Entry exposes a copy of the metadata for url, for tests and inspection.
func (s *ShardedStore) Entry(url string) (Entry, bool) {
	sh := s.shardFor(url)
	sh.mu.Lock()
	e, ok := sh.store.Entry(url)
	sh.mu.Unlock()
	return e, ok
}

// URLs returns the cached URLs in unspecified order. Shards are read one
// at a time, so the set is only instant-consistent per shard — fine for
// digests and inspection, not a checkpoint primitive (see Checkpoint).
func (s *ShardedStore) URLs() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.store.URLs()...)
		sh.mu.Unlock()
	}
	return out
}

// Entries returns copies of every entry across shards; same per-shard
// consistency caveat as URLs.
func (s *ShardedStore) Entries() []Entry {
	var out []Entry
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.store.Entries()...)
		sh.mu.Unlock()
	}
	return out
}

// TrackerState exports the merged expiration-age tracker state; same
// per-shard consistency caveat as URLs.
func (s *ShardedStore) TrackerState() TrackerState {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	return s.trackerStateLocked()
}

// trackerStateLocked merges the per-shard tracker states into one. The
// caller holds every shard lock. Samples merge in ascending eviction
// time; totals sum exactly, so a capture → restore → capture round trip
// preserves the cumulative signal.
func (s *ShardedStore) trackerStateLocked() TrackerState {
	if s.single {
		return s.shards[0].store.TrackerState()
	}
	merged := TrackerState{
		Window:  s.shards[0].store.ages.Window(),
		Horizon: s.shards[0].store.ages.Horizon(),
	}
	for _, sh := range s.shards {
		st := sh.store.TrackerState()
		merged.TotalSumSeconds += st.TotalSumSeconds
		merged.TotalCount += st.TotalCount
		merged.Samples = append(merged.Samples, st.Samples...)
	}
	sort.SliceStable(merged.Samples, func(i, j int) bool {
		return merged.Samples[i].At.Before(merged.Samples[j].At)
	})
	return merged
}

// SetEventSink installs fn as every shard's mutation observer; nil
// removes it. Events are delivered synchronously under the owning shard's
// lock, so per-document event order is preserved; events for documents in
// different shards interleave in real-time order, which journal replay is
// insensitive to (it folds per-URL histories plus an order-insensitive
// eviction-age mean).
func (s *ShardedStore) SetEventSink(fn func(Event)) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.store.SetEventSink(fn)
		sh.mu.Unlock()
	}
}

// RestoreEntry reinserts a recovered document into its shard (see
// Store.RestoreEntry). An entry that no longer fits its shard's slice of
// the budget is an error the caller counts as skipped.
func (s *ShardedStore) RestoreEntry(doc Document, enteredAt, lastHit time.Time, hits int64) error {
	sh := s.shardFor(doc.URL)
	sh.mu.Lock()
	err := sh.store.RestoreEntry(doc, enteredAt, lastHit, hits)
	sh.mu.Unlock()
	s.ea.Store(nil)
	return err
}

// RestoreTracker rebuilds the expiration-age trackers from a persisted
// (merged) state. With one shard the state passes through unchanged —
// exactly Store.RestoreTracker. With more, samples are dealt round-robin
// (each shard receives an ascending-time subsequence) and the cumulative
// totals are partitioned so their sum is preserved: the merged windowed
// signal and merged totals match the captured state.
func (s *ShardedStore) RestoreTracker(st TrackerState) {
	defer s.ea.Store(nil)
	if s.single {
		sh := s.shards[0]
		sh.mu.Lock()
		sh.store.RestoreTracker(st)
		sh.mu.Unlock()
		return
	}
	n := len(s.shards)
	parts := make([]TrackerState, n)
	for i, sample := range st.Samples {
		p := &parts[i%n]
		p.Samples = append(p.Samples, sample)
	}
	var restSum float64
	var restCount int64
	for i := 1; i < n; i++ {
		for _, sample := range parts[i].Samples {
			parts[i].TotalSumSeconds += sample.Age.Seconds()
		}
		parts[i].TotalCount = int64(len(parts[i].Samples))
		restSum += parts[i].TotalSumSeconds
		restCount += parts[i].TotalCount
	}
	parts[0].TotalSumSeconds = st.TotalSumSeconds - restSum
	parts[0].TotalCount = st.TotalCount - restCount
	if parts[0].TotalSumSeconds < 0 {
		parts[0].TotalSumSeconds = 0
	}
	if parts[0].TotalCount < int64(len(parts[0].Samples)) {
		parts[0].TotalCount = int64(len(parts[0].Samples))
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.store.RestoreTracker(parts[i])
		sh.mu.Unlock()
	}
}

// checkpointView is the consistent all-shards-locked view Checkpoint
// hands to its callback. It reads the shards without locking — the locks
// are already held for the duration of the callback.
type checkpointView struct{ s *ShardedStore }

// Entries implements StoreView at the checkpoint instant.
func (v checkpointView) Entries() []Entry {
	var out []Entry
	for _, sh := range v.s.shards {
		out = append(out, sh.store.Entries()...)
	}
	return out
}

// TrackerState implements StoreView at the checkpoint instant.
func (v checkpointView) TrackerState() TrackerState { return v.s.trackerStateLocked() }

// Checkpoint locks every shard — a full stall of the request path — and
// runs capture with a consistent point-in-time view of the whole store.
// This is the one consistent instant at which a persistence checkpoint
// images the entries and rotates its journal: every event emitted before
// the capture is strictly before it, every later event strictly after.
// capture must not call back into the ShardedStore's locking API.
func (s *ShardedStore) Checkpoint(capture func(view StoreView) error) error {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	return capture(checkpointView{s})
}
