package cache

import (
	"testing"
	"time"
)

func TestExpAgeTrackerCumulative(t *testing.T) {
	tr := NewExpAgeTracker(WindowAll)
	if tr.WindowedAt(at(0)) != NoContention || tr.Cumulative() != NoContention {
		t.Fatal("empty tracker should report NoContention")
	}
	tr.Record(10*time.Second, at(1))
	tr.Record(20*time.Second, at(2))
	tr.Record(30*time.Second, at(3))
	if got := tr.Cumulative(); got != 20*time.Second {
		t.Fatalf("Cumulative = %v, want 20s", got)
	}
	if got := tr.WindowedAt(at(3)); got != 20*time.Second {
		t.Fatalf("WindowedAt = %v, want 20s (cumulative mode)", got)
	}
	if tr.Count() != 3 {
		t.Fatalf("Count = %d, want 3", tr.Count())
	}
}

func TestExpAgeTrackerCountWindow(t *testing.T) {
	tr := NewExpAgeTracker(2)
	tr.Record(10*time.Second, at(1))
	tr.Record(20*time.Second, at(2))
	tr.Record(60*time.Second, at(3))
	// Window of 2: mean(20, 60) = 40s.
	if got := tr.WindowedAt(at(3)); got != 40*time.Second {
		t.Fatalf("WindowedAt = %v, want 40s", got)
	}
	// Cumulative still covers all three.
	if got := tr.Cumulative(); got != 30*time.Second {
		t.Fatalf("Cumulative = %v, want 30s", got)
	}
}

func TestExpAgeTrackerTimeHorizon(t *testing.T) {
	tr := NewTimeHorizonTracker(10 * time.Second)
	tr.Record(4*time.Second, at(0))
	tr.Record(8*time.Second, at(5))
	if got := tr.WindowedAt(at(5)); got != 6*time.Second {
		t.Fatalf("WindowedAt = %v, want 6s", got)
	}
	// At t=11 the first sample (t=0) falls outside the horizon.
	if got := tr.WindowedAt(at(11)); got != 8*time.Second {
		t.Fatalf("WindowedAt = %v, want 8s", got)
	}
	// Once everything expired, the signal is NoContention again — a
	// cache that stopped evicting has stopped being contended.
	if got := tr.WindowedAt(at(60)); got != NoContention {
		t.Fatalf("WindowedAt = %v, want NoContention", got)
	}
	// But the cumulative record remains.
	if got := tr.Cumulative(); got != 6*time.Second {
		t.Fatalf("Cumulative = %v, want 6s", got)
	}
}

func TestExpAgeTrackerHorizonRingOverflow(t *testing.T) {
	tr := NewTimeHorizonTracker(time.Hour)
	for i := 0; i < maxHorizonSamples+500; i++ {
		tr.Record(time.Duration(i)*time.Millisecond, at(i/100))
	}
	// The ring holds the most recent maxHorizonSamples; the mean must be
	// over those, and nothing may panic or leak.
	got := tr.WindowedAt(at((maxHorizonSamples + 500) / 100))
	lo := time.Duration(500) * time.Millisecond
	hi := time.Duration(maxHorizonSamples+500) * time.Millisecond
	if got < lo || got > hi {
		t.Fatalf("WindowedAt = %v, outside plausible [%v, %v]", got, lo, hi)
	}
	if tr.Count() != maxHorizonSamples+500 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestExpAgeTrackerNegativeClamped(t *testing.T) {
	tr := NewExpAgeTracker(WindowAll)
	tr.Record(-5*time.Second, at(0))
	if got := tr.Cumulative(); got != 0 {
		t.Fatalf("Cumulative = %v, want 0 (negative ages clamped)", got)
	}
}

func TestNewTimeHorizonTrackerZeroFallsBack(t *testing.T) {
	tr := NewTimeHorizonTracker(0)
	tr.Record(10*time.Second, at(0))
	if got := tr.WindowedAt(at(100)); got != 10*time.Second {
		t.Fatalf("zero horizon should behave cumulatively, got %v", got)
	}
}

func TestStoreHorizonSignal(t *testing.T) {
	s := mustStore(t, Config{Capacity: 10, ExpirationHorizon: 30 * time.Second})
	if _, err := s.Put(doc("a", 10), at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(doc("b", 10), at(10)); err != nil { // evicts a, age 10s
		t.Fatal(err)
	}
	if got := s.ExpirationAge(at(10)); got != 10*time.Second {
		t.Fatalf("ExpirationAge = %v, want 10s", got)
	}
	// After the horizon passes with no evictions, contention evidence
	// expires.
	if got := s.ExpirationAge(at(100)); got != NoContention {
		t.Fatalf("ExpirationAge = %v, want NoContention after idle horizon", got)
	}
	if got := s.CumulativeExpirationAge(); got != 10*time.Second {
		t.Fatalf("CumulativeExpirationAge = %v, want 10s", got)
	}
}
