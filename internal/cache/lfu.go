package cache

import "time"

// LFU is the Least Frequently Used replacement policy (paper §3.2.2). The
// victim is the entry with the smallest HIT-COUNTER; ties are broken toward
// the least recently hit entry so the policy stays deterministic and does
// not starve on cold documents.
//
// Its document expiration age is the paper's eq. 3: the document's lifetime
// divided by its HIT-COUNTER — the average time between hits, which
// approximates how long the document is expected to live after its last hit.
type LFU struct {
	h *entryHeap
}

var _ Policy = (*LFU)(nil)

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{h: newEntryHeap(func(a, b *Entry) bool {
		if a.Hits != b.Hits {
			return a.Hits < b.Hits
		}
		return a.LastHit.Before(b.LastHit)
	})}
}

// Name implements Policy.
func (l *LFU) Name() string { return "lfu" }

// Add implements Policy.
func (l *LFU) Add(e *Entry) { l.h.add(e) }

// Touch implements Policy: the Store already bumped the hit counter, so the
// entry's heap position is re-established.
func (l *LFU) Touch(e *Entry) { l.h.fix(e) }

// Remove implements Policy.
func (l *LFU) Remove(e *Entry) { l.h.remove(e) }

// Victim implements Policy: the least frequently used entry.
func (l *LFU) Victim() *Entry { return l.h.min() }

// ExpirationAge implements Policy with eq. 3: (TR - T0) / HIT-COUNTER.
func (l *LFU) ExpirationAge(e *Entry, now time.Time) time.Duration {
	hits := e.Hits
	if hits < 1 {
		hits = 1
	}
	return now.Sub(e.EnteredAt) / time.Duration(hits)
}

// Len returns the number of tracked entries.
func (l *LFU) Len() int { return l.h.Len() }
