package cache

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickEntryHeapMatchesSort drives the intrusive heap with random
// add/fix/remove sequences and checks that popping victims in order always
// yields the less-function's sorted order.
func TestQuickEntryHeapMatchesSort(t *testing.T) {
	type hop struct {
		Kind uint8
		Key  uint8
		Hits uint8
	}
	f := func(ops []hop) bool {
		less := func(a, b *Entry) bool {
			if a.Hits != b.Hits {
				return a.Hits < b.Hits
			}
			return a.Doc.URL < b.Doc.URL
		}
		h := newEntryHeap(less)
		live := make(map[string]*Entry)

		for _, o := range ops {
			key := string(rune('a' + o.Key%16))
			switch o.Kind % 3 {
			case 0: // add
				if _, ok := live[key]; ok {
					continue
				}
				e := &Entry{Doc: Document{URL: key, Size: 1}, Hits: int64(o.Hits % 8)}
				live[key] = e
				h.add(e)
			case 1: // touch (bump hits, fix position)
				if e, ok := live[key]; ok {
					e.Hits++
					h.fix(e)
				}
			case 2: // remove
				if e, ok := live[key]; ok {
					h.remove(e)
					delete(live, key)
				}
			}
		}
		if h.Len() != len(live) {
			return false
		}

		// Drain the heap; the victims must come out in sorted order.
		var drained []*Entry
		for h.Len() > 0 {
			v := h.min()
			h.remove(v)
			drained = append(drained, v)
		}
		sorted := append([]*Entry(nil), drained...)
		sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
		for i := range drained {
			if drained[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryHeapEmpty(t *testing.T) {
	h := newEntryHeap(func(a, b *Entry) bool { return a.Hits < b.Hits })
	if h.min() != nil {
		t.Fatal("min of empty heap")
	}
	// Pushing a non-entry through the heap.Interface path is ignored.
	h.Push("not an entry")
	if h.Len() != 0 {
		t.Fatal("foreign value entered the heap")
	}
}
