package cache

import (
	"reflect"
	"testing"
	"time"
)

func TestLRUOrder(t *testing.T) {
	l := NewLRU()
	entries := map[string]*Entry{}
	add := func(u string) {
		e := &Entry{Doc: doc(u, 1)}
		entries[u] = e
		l.Add(e)
	}
	add("a")
	add("b")
	add("c")
	if got := l.Order(); !reflect.DeepEqual(got, []string{"c", "b", "a"}) {
		t.Fatalf("Order = %v, want [c b a]", got)
	}
	l.Touch(entries["a"])
	if got := l.Order(); !reflect.DeepEqual(got, []string{"a", "c", "b"}) {
		t.Fatalf("Order after touch = %v, want [a c b]", got)
	}
	if v := l.Victim(); v != entries["b"] {
		t.Fatalf("Victim = %v, want b", v.Doc.URL)
	}
	l.Remove(entries["b"])
	if v := l.Victim(); v != entries["c"] {
		t.Fatalf("Victim after remove = %v, want c", v.Doc.URL)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLRUVictimEmpty(t *testing.T) {
	l := NewLRU()
	if l.Victim() != nil {
		t.Fatal("Victim of empty LRU should be nil")
	}
}

func TestLRUExpirationAge(t *testing.T) {
	l := NewLRU()
	e := &Entry{Doc: doc("a", 1), EnteredAt: at(0), LastHit: at(10), Hits: 3}
	if got := l.ExpirationAge(e, at(25)); got != 15*time.Second {
		t.Fatalf("ExpirationAge = %v, want 15s (eq. 2: removal - last hit)", got)
	}
}

func TestLRUName(t *testing.T) {
	if NewLRU().Name() != "lru" {
		t.Fatal("name mismatch")
	}
}

func TestLFUVictimIsLeastFrequent(t *testing.T) {
	l := NewLFU()
	a := &Entry{Doc: doc("a", 1), Hits: 5, LastHit: at(1)}
	b := &Entry{Doc: doc("b", 1), Hits: 2, LastHit: at(2)}
	c := &Entry{Doc: doc("c", 1), Hits: 9, LastHit: at(3)}
	for _, e := range []*Entry{a, b, c} {
		l.Add(e)
	}
	if v := l.Victim(); v != b {
		t.Fatalf("Victim = %s, want b", v.Doc.URL)
	}
	// b gains hits; a becomes least frequent.
	b.Hits = 7
	l.Touch(b)
	if v := l.Victim(); v != a {
		t.Fatalf("Victim = %s, want a", v.Doc.URL)
	}
	l.Remove(a)
	if v := l.Victim(); v != b {
		t.Fatalf("Victim = %s, want b (7 < 9)", v.Doc.URL)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLFUTieBreaksOnRecency(t *testing.T) {
	l := NewLFU()
	a := &Entry{Doc: doc("a", 1), Hits: 3, LastHit: at(10)}
	b := &Entry{Doc: doc("b", 1), Hits: 3, LastHit: at(5)}
	l.Add(a)
	l.Add(b)
	if v := l.Victim(); v != b {
		t.Fatalf("Victim = %s, want b (older last hit)", v.Doc.URL)
	}
}

func TestLFUExpirationAge(t *testing.T) {
	l := NewLFU()
	// Entered at t=0, removed at t=100, 4 hits: eq. 3 gives 25s.
	e := &Entry{Doc: doc("a", 1), EnteredAt: at(0), Hits: 4}
	if got := l.ExpirationAge(e, at(100)); got != 25*time.Second {
		t.Fatalf("ExpirationAge = %v, want 25s (eq. 3: lifetime/hits)", got)
	}
	// Defensive: zero hit counter must not divide by zero.
	z := &Entry{Doc: doc("z", 1), EnteredAt: at(0), Hits: 0}
	if got := l.ExpirationAge(z, at(100)); got != 100*time.Second {
		t.Fatalf("ExpirationAge(0 hits) = %v, want 100s", got)
	}
}

func TestLFUStoreIntegration(t *testing.T) {
	s := mustStore(t, Config{Capacity: 30, Policy: NewLFU()})
	for i, u := range []string{"a", "b", "c"} {
		if _, err := s.Put(doc(u, 10), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Hit a twice and c once; b stays at 1 → victim.
	s.Get("a", at(10))
	s.Get("a", at(11))
	s.Get("c", at(12))
	evicted, err := s.Put(doc("d", 10), at(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Doc.URL != "b" {
		t.Fatalf("evicted %+v, want [b]", evicted)
	}
}

func TestSIZEVictimIsLargest(t *testing.T) {
	p := NewSIZE()
	a := &Entry{Doc: doc("a", 10), LastHit: at(0)}
	b := &Entry{Doc: doc("b", 99), LastHit: at(1)}
	c := &Entry{Doc: doc("c", 50), LastHit: at(2)}
	for _, e := range []*Entry{a, b, c} {
		p.Add(e)
	}
	if v := p.Victim(); v != b {
		t.Fatalf("Victim = %s, want b (largest)", v.Doc.URL)
	}
	p.Remove(b)
	if v := p.Victim(); v != c {
		t.Fatalf("Victim = %s, want c", v.Doc.URL)
	}
}

func TestGDSInflation(t *testing.T) {
	g := NewGDS()
	// Small docs have higher priority (cost/size): victim is the largest.
	a := &Entry{Doc: doc("a", 100), LastHit: at(0)}
	b := &Entry{Doc: doc("b", 10), LastHit: at(1)}
	g.Add(a)
	g.Add(b)
	if v := g.Victim(); v != a {
		t.Fatalf("Victim = %s, want a (priority 1/100 < 1/10)", v.Doc.URL)
	}
	// Evicting a inflates L to 1/100; a new doc of size 100 now has
	// priority L + 1/100 = 2/100, beating a hypothetical stale entry.
	g.Remove(a)
	c := &Entry{Doc: doc("c", 100), LastHit: at(2)}
	g.Add(c)
	if c.priority <= b.priority-1.0/10+1.0/100-1e-12 {
		t.Fatalf("inflation not applied: c.priority = %v", c.priority)
	}
	// Touch restores full priority relative to current inflation.
	g.Touch(b)
	if v := g.Victim(); v != c {
		t.Fatalf("Victim = %s, want c", v.Doc.URL)
	}
}

func TestGDSFavoursSmallDocs(t *testing.T) {
	s := mustStore(t, Config{Capacity: 100, Policy: NewGDS()})
	if _, err := s.Put(doc("big", 90), at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(doc("small", 5), at(1)); err != nil {
		t.Fatal(err)
	}
	evicted, err := s.Put(doc("mid", 50), at(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Doc.URL != "big" {
		t.Fatalf("evicted %+v, want [big]", evicted)
	}
	if !s.Contains("small") {
		t.Fatal("small doc evicted before big one")
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range []string{"lru", "lfu", "gds", "size"} {
		p, ok := NewPolicy(name)
		if !ok || p.Name() != name {
			t.Fatalf("NewPolicy(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := NewPolicy("bogus"); ok {
		t.Fatal("NewPolicy(bogus) succeeded")
	}
}
