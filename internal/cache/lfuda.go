package cache

import "time"

// LFUDA is LFU with Dynamic Aging, the policy Squid ships alongside GDSF —
// the direct production descendant of the paper-era replacement work. Each
// entry carries a key value
//
//	K = hits + L
//
// where L is the aging factor, raised to the victim's K at every eviction.
// Aging lets formerly popular documents drain out instead of pinning the
// cache forever, the classic failure of plain LFU.
//
// Like LFU it uses the paper's eq. 3 expiration age (lifetime divided by
// hit count).
type LFUDA struct {
	h         *entryHeap
	inflation float64
}

var _ Policy = (*LFUDA)(nil)

// NewLFUDA returns an empty LFUDA policy.
func NewLFUDA() *LFUDA {
	l := &LFUDA{}
	l.h = newEntryHeap(func(a, b *Entry) bool {
		if a.priority != b.priority {
			return a.priority < b.priority
		}
		return a.LastHit.Before(b.LastHit)
	})
	return l
}

// Name implements Policy.
func (l *LFUDA) Name() string { return "lfuda" }

// Add implements Policy.
func (l *LFUDA) Add(e *Entry) {
	e.priority = float64(e.Hits) + l.inflation
	l.h.add(e)
}

// Touch implements Policy: the Store already bumped the hit counter; the
// key is recomputed against the current aging factor.
func (l *LFUDA) Touch(e *Entry) {
	e.priority = float64(e.Hits) + l.inflation
	l.h.fix(e)
}

// Remove implements Policy; evicting the current victim inflates L to its
// key value.
func (l *LFUDA) Remove(e *Entry) {
	if l.h.min() == e && e.priority > l.inflation {
		l.inflation = e.priority
	}
	l.h.remove(e)
}

// Victim implements Policy: the entry with the smallest key value.
func (l *LFUDA) Victim() *Entry { return l.h.min() }

// ExpirationAge implements Policy with eq. 3 (LFU form).
func (l *LFUDA) ExpirationAge(e *Entry, now time.Time) time.Duration {
	hits := e.Hits
	if hits < 1 {
		hits = 1
	}
	return now.Sub(e.EnteredAt) / time.Duration(hits)
}

// Len returns the number of tracked entries.
func (l *LFUDA) Len() int { return l.h.Len() }

// Inflation exposes the current aging factor, for tests.
func (l *LFUDA) Inflation() float64 { return l.inflation }
