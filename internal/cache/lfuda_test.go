package cache

import "testing"

func TestLFUDAVictimAndAging(t *testing.T) {
	l := NewLFUDA()
	a := &Entry{Doc: doc("a", 1), Hits: 5, LastHit: at(1)}
	b := &Entry{Doc: doc("b", 1), Hits: 1, LastHit: at(2)}
	l.Add(a)
	l.Add(b)
	if v := l.Victim(); v != b {
		t.Fatalf("Victim = %s, want b", v.Doc.URL)
	}
	// Evicting b (key 1) raises the aging factor to 1.
	l.Remove(b)
	if l.Inflation() != 1 {
		t.Fatalf("inflation = %v, want 1", l.Inflation())
	}
	// A new single-hit entry now carries key 1+1=2, not 1: aging lets it
	// compete with old frequent entries.
	c := &Entry{Doc: doc("c", 1), Hits: 1, LastHit: at(3)}
	l.Add(c)
	if c.priority != 2 {
		t.Fatalf("c priority = %v, want 2", c.priority)
	}
	if v := l.Victim(); v != c {
		t.Fatalf("Victim = %s, want c (2 < 5)", v.Doc.URL)
	}
}

func TestLFUDAAgingDrainsFormerlyPopular(t *testing.T) {
	// Plain LFU pins a formerly hot document forever; LFUDA must let a
	// stream of moderately used fresh documents push it out eventually.
	s := mustStore(t, Config{Capacity: 40, Policy: NewLFUDA()})
	if _, err := s.Put(doc("hot", 10), at(0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Get("hot", at(i))
	}
	// Churn fresh documents, touching each once so their keys ride the
	// rising aging factor.
	evictedHot := false
	for i := 0; i < 400 && !evictedHot; i++ {
		u := "fresh-" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('a'+i/260))
		evs, err := s.Put(doc(u, 10), at(100+i))
		if err != nil {
			t.Fatal(err)
		}
		s.Get(u, at(100+i))
		for _, ev := range evs {
			if ev.Doc.URL == "hot" {
				evictedHot = true
			}
		}
	}
	if !evictedHot {
		t.Fatal("aging never drained the formerly popular document")
	}
}

func TestLFUDATouchUsesCurrentInflation(t *testing.T) {
	l := NewLFUDA()
	a := &Entry{Doc: doc("a", 1), Hits: 1, LastHit: at(1)}
	b := &Entry{Doc: doc("b", 1), Hits: 3, LastHit: at(2)}
	l.Add(a)
	l.Add(b)
	l.Remove(a) // inflation -> 1
	c := &Entry{Doc: doc("c", 1), Hits: 1, LastHit: at(3)}
	l.Add(c)
	c.Hits++
	l.Touch(c)
	if c.priority != 3 { // 2 hits + inflation 1
		t.Fatalf("c priority = %v, want 3", c.priority)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLFUDAExpirationAgeEq3(t *testing.T) {
	l := NewLFUDA()
	e := &Entry{Doc: doc("a", 1), EnteredAt: at(0), Hits: 5}
	if got := l.ExpirationAge(e, at(100)); got.Seconds() != 20 {
		t.Fatalf("ExpirationAge = %v, want 20s", got)
	}
}

func TestNewPolicyLFUDA(t *testing.T) {
	p, ok := NewPolicy("lfuda")
	if !ok || p.Name() != "lfuda" {
		t.Fatalf("NewPolicy(lfuda) = %v, %v", p, ok)
	}
}
