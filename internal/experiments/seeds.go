package experiments

import (
	"fmt"
	"math"
	"time"

	"eacache/internal/sim"
	"eacache/internal/trace"
)

// MultiSeed replays several independently generated workloads and reports
// the EA-minus-ad-hoc differences with their spread — the confidence check
// a single-trace study (the paper included) cannot give. Each element of
// traces is one workload; the suite configuration applies to all of them.
func MultiSeed(traces [][]trace.Record, cfg Config) (*Table, error) {
	if len(traces) < 2 {
		return nil, fmt.Errorf("experiments: MultiSeed needs at least 2 workloads, got %d", len(traces))
	}
	cfg = cfg.withDefaults()

	t := &Table{
		ID:    "multiseed",
		Title: fmt.Sprintf("EA - adhoc across %d workload seeds (mean +/- sd)", len(traces)),
		Columns: []string{"aggregate",
			"hit delta (pp)", "byte delta (pp)", "latency delta (ms)"},
		Notes: []string{
			"positive hit/byte deltas and negative latency deltas favour the EA scheme",
		},
	}

	type deltas struct{ hit, byteHit, latency []float64 }
	perSize := make(map[int64]*deltas, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		perSize[size] = &deltas{}
	}

	for _, records := range traces {
		suite := NewSuite(records, cfg)
		for _, size := range cfg.Sizes {
			adhoc, ea, err := suite.runPair(cfg.Caches, size)
			if err != nil {
				return nil, err
			}
			d := perSize[size]
			d.hit = append(d.hit, 100*(ea.Group.HitRate()-adhoc.Group.HitRate()))
			d.byteHit = append(d.byteHit, 100*(ea.Group.ByteHitRate()-adhoc.Group.ByteHitRate()))
			d.latency = append(d.latency,
				float64((ea.EstimatedLatency-adhoc.EstimatedLatency)/time.Millisecond))
		}
	}

	for _, size := range cfg.Sizes {
		d := perSize[size]
		t.AddRow(sim.FormatBytes(size),
			meanSD(d.hit), meanSD(d.byteHit), meanSD(d.latency))
	}
	return t, nil
}

// meanSD formats mean ± sample standard deviation.
func meanSD(xs []float64) string {
	m, sd := meanStddev(xs)
	return fmt.Sprintf("%+.2f +/- %.2f", m, sd)
}

func meanStddev(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
