package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line of a Chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Mark is the single character plotted for this series.
	Mark byte
	// Values holds one y value per x position (NaN skips a point).
	Values []float64
}

// Chart is a small ASCII line chart used to render the paper's figures as
// figures: hit rate (or latency) against the log-spaced aggregate sizes.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// YLabel describes the y axis; YFormat formats tick values.
	YLabel  string
	YFormat func(v float64) string
	// XLabels name the x positions (the aggregate sizes).
	XLabels []string
	// Series are the plotted lines.
	Series []Series
	// Height is the number of plot rows (default 12).
	Height int
}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	if len(c.XLabels) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("experiments: empty chart")
	}
	height := c.Height
	if height <= 0 {
		height = 12
	}
	yf := c.YFormat
	if yf == nil {
		yf = func(v float64) string { return fmt.Sprintf("%.1f", v) }
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("experiments: chart has no points")
	}
	if hi == lo {
		hi = lo + 1
	}
	// A little headroom so extremes don't sit on the frame.
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	const colWidth = 9
	plotCols := len(c.XLabels) * colWidth
	rows := make([][]byte, height)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", plotCols))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for _, s := range c.Series {
		for x, v := range s.Values {
			if x >= len(c.XLabels) || math.IsNaN(v) {
				continue
			}
			col := x*colWidth + colWidth/2
			r := rowOf(v)
			if rows[r][col] != ' ' && rows[r][col] != s.Mark {
				rows[r][col] = '+' // overlapping series
			} else {
				rows[r][col] = s.Mark
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	labelWidth := 0
	yTicks := make([]string, height)
	for i := range yTicks {
		v := hi - (hi-lo)*float64(i)/float64(height-1)
		yTicks[i] = yf(v)
		if len(yTicks[i]) > labelWidth {
			labelWidth = len(yTicks[i])
		}
	}
	for i, row := range rows {
		tick := strings.Repeat(" ", labelWidth)
		if i%3 == 0 || i == height-1 {
			tick = fmt.Sprintf("%*s", labelWidth, yTicks[i])
		}
		fmt.Fprintf(&b, "%s |%s\n", tick, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", plotCols))
	fmt.Fprintf(&b, "%s  ", strings.Repeat(" ", labelWidth))
	for _, l := range c.XLabels {
		fmt.Fprintf(&b, "%-*s", colWidth, " "+l)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s  legend:", strings.Repeat(" ", labelWidth))
	for _, s := range c.Series {
		fmt.Fprintf(&b, " %c=%s", s.Mark, s.Name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "   y: %s", c.YLabel)
	}
	b.WriteString("\n\n")
	_, err := io.WriteString(w, b.String())
	return err
}
