package experiments

import (
	"fmt"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/dist"
	"eacache/internal/group"
	"eacache/internal/metrics"
	"eacache/internal/model"
	"eacache/internal/proxy"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

// Location compares the two document-location mechanisms the paper's
// related work discusses: per-miss ICP queries (exact, O(neighbours)
// messages per miss) versus Summary-Cache Bloom digests (no per-miss
// messages, but colliding summaries cost wasted fetches). The digests
// are maintained incrementally from cache events — the rebuild column
// counts only the counter-saturation escape hatch, and a healthy run
// shows 0. Both run under the EA placement scheme.
func (s *Suite) Location() (*Table, error) {
	t := &Table{
		ID:    "location",
		Title: "ICP queries vs Summary-Cache digests under EA placement (related work)",
		Columns: []string{"aggregate", "mechanism", "hit-rate", "remote",
			"icp msgs", "rebuild escapes", "false hits"},
		Notes: []string{
			"Summary Cache's bargain: near-ICP hit rates at a fraction of the messages",
			"digests update incrementally per mutation; rebuild escapes stay 0 in steady state",
		},
	}
	sizes := middleSizes(s.cfg.Sizes, 2)
	for _, size := range sizes {
		for _, loc := range []proxy.Location{proxy.LocateICP, proxy.LocateDigest} {
			rep, err := s.runWithLocation(size, loc)
			if err != nil {
				return nil, err
			}
			var queries, rebuilds, falseHits int64
			for _, pr := range rep.PerProxy {
				queries += pr.ICP.QueriesSent
				rebuilds += pr.ICP.DigestRebuilds
				falseHits += pr.ICP.DigestFalseHits
			}
			t.AddRow(sim.FormatBytes(size), loc.String(),
				pct(rep.Group.HitRate()), pct(rep.Group.RemoteHitRate()),
				fmt.Sprintf("%d", queries),
				fmt.Sprintf("%d", rebuilds),
				fmt.Sprintf("%d", falseHits))
		}
	}
	return t, nil
}

func (s *Suite) runWithLocation(aggregate int64, loc proxy.Location) (*sim.Report, error) {
	// Location runs are not shared with the main memo table (different
	// key space), so memoize under a synthetic scheme name.
	key := runKey{
		scheme:    "ea/" + loc.String(),
		caches:    s.cfg.Caches,
		aggregate: aggregate,
		arch:      group.Distributed,
		policy:    "lru",
	}
	if rep, ok := s.runs[key]; ok {
		return rep, nil
	}
	g, err := group.New(group.Config{
		Caches:            s.cfg.Caches,
		AggregateBytes:    aggregate,
		Scheme:            core.EA{},
		ExpirationWindow:  s.cfg.ExpirationWindow,
		ExpirationHorizon: s.cfg.ExpirationHorizon,
		Location:          loc,
	})
	if err != nil {
		return nil, err
	}
	rep, err := sim.Run(g, s.records, sim.Config{Latency: s.cfg.Latency})
	if err != nil {
		return nil, err
	}
	s.runs[key] = rep
	return rep, nil
}

// Partitioned adds the no-replication extreme from the related work:
// consistent-hash partitioning (Karger et al.), where every URL has exactly
// one home cache. Ad-hoc replicates everywhere, partitioning never
// replicates, and the EA scheme sits in between — the table shows where
// each policy's hits come from.
func (s *Suite) Partitioned() (*Table, error) {
	t := &Table{
		ID:    "partitioned",
		Title: "Placement extremes: ad-hoc vs EA vs consistent-hash partitioning",
		Columns: []string{"aggregate", "adhoc hit", "ea hit", "chash hit",
			"adhoc local", "ea local", "chash local"},
		Notes: []string{
			"partitioning maximises unique documents but forfeits local hits entirely at scale",
		},
	}
	sizes := middleSizes(s.cfg.Sizes, 3)
	for _, size := range sizes {
		adhoc, ea, err := s.runPair(s.cfg.Caches, size)
		if err != nil {
			return nil, err
		}
		part, err := s.runPartitioned(size)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.FormatBytes(size),
			pct(adhoc.Group.HitRate()), pct(ea.Group.HitRate()), pct(part.Group.HitRate()),
			pct(adhoc.Group.LocalHitRate()), pct(ea.Group.LocalHitRate()), pct(part.Group.LocalHitRate()))
	}
	return t, nil
}

// runPartitioned replays the suite's trace through a consistent-hash
// partitioned group built on the shared hash Locator (proxy.LocateHash):
// each request goes to its client's edge cache first, which routes it to
// the URL's home cache over the group's chash ring; only the home cache
// ever stores a copy. Because the ring members are the same "cache-N"
// proxy IDs a live netnode group would use as hash names, sim
// experiments and the live node provably route URLs to the same homes.
func (s *Suite) runPartitioned(aggregate int64) (*sim.Report, error) {
	key := runKey{
		scheme:    "ea/hash",
		caches:    s.cfg.Caches,
		aggregate: aggregate,
		arch:      group.Distributed,
		policy:    "lru",
	}
	if rep, ok := s.runs[key]; ok {
		return rep, nil
	}
	g, err := group.New(group.Config{
		Caches:            s.cfg.Caches,
		AggregateBytes:    aggregate,
		Scheme:            core.EA{},
		ExpirationWindow:  s.cfg.ExpirationWindow,
		ExpirationHorizon: s.cfg.ExpirationHorizon,
		Location:          proxy.LocateHash,
	})
	if err != nil {
		return nil, err
	}
	rep, err := sim.Run(g, s.records, sim.Config{Latency: s.cfg.Latency})
	if err != nil {
		return nil, err
	}
	s.runs[key] = rep
	return rep, nil
}

// Coherence measures the freshness tax: the same workload replayed with an
// origin that stamps era-shaped lifetimes on documents (10% expire in 5min,
// 30% in 1h, the rest never) versus the paper's coherence-free setting.
// Stale copies are neither served locally, advertised over ICP, nor served
// remotely; the placement schemes run unchanged on top.
func (s *Suite) Coherence() (*Table, error) {
	t := &Table{
		ID:    "coherence",
		Title: "Freshness (TTL) tax on both placement schemes (coherence substrate)",
		Columns: []string{"aggregate", "ttl mix",
			"adhoc hit", "ea hit", "ea-adhoc (pp)"},
		Notes: []string{
			"the EA advantage survives coherence: expiry hurts both schemes alike",
		},
	}
	sizes := middleSizes(s.cfg.Sizes, 2)
	for _, size := range sizes {
		for _, mortal := range []bool{false, true} {
			label := "immortal"
			var origin proxy.Origin = proxy.SizeHintOrigin{}
			if mortal {
				label = "era mix"
				origin = proxy.EraTTLOrigin()
			}
			adhoc, err := s.runWithOrigin(size, "adhoc", label, origin)
			if err != nil {
				return nil, err
			}
			ea, err := s.runWithOrigin(size, "ea", label, origin)
			if err != nil {
				return nil, err
			}
			t.AddRow(sim.FormatBytes(size), label,
				pct(adhoc.Group.HitRate()), pct(ea.Group.HitRate()),
				fmt.Sprintf("%+.2f", 100*(ea.Group.HitRate()-adhoc.Group.HitRate())))
		}
	}
	return t, nil
}

func (s *Suite) runWithOrigin(aggregate int64, schemeName, label string, origin proxy.Origin) (*sim.Report, error) {
	key := runKey{
		scheme:    schemeName + "/" + label,
		caches:    s.cfg.Caches,
		aggregate: aggregate,
		arch:      group.Distributed,
		policy:    "lru",
	}
	if rep, ok := s.runs[key]; ok {
		return rep, nil
	}
	scheme, ok := core.New(schemeName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scheme %q", schemeName)
	}
	g, err := group.New(group.Config{
		Caches:            s.cfg.Caches,
		AggregateBytes:    aggregate,
		Scheme:            scheme,
		ExpirationWindow:  s.cfg.ExpirationWindow,
		ExpirationHorizon: s.cfg.ExpirationHorizon,
		Origin:            origin,
	})
	if err != nil {
		return nil, err
	}
	rep, err := sim.Run(g, s.records, sim.Config{Latency: s.cfg.Latency})
	if err != nil {
		return nil, err
	}
	s.runs[key] = rep
	return rep, nil
}

// WorstCase reproduces the §2 thought experiment: "The worst case of this
// limitation, though hypothetical, would be all the documents being
// replicated on all the caches. In this case, the effective disk space in
// the cache group is (1/N) times the aggregate disk space available." A
// broadcast workload — every client cycling through the same document set —
// drives the ad-hoc scheme to N copies of everything while the EA scheme
// keeps replication near one copy, multiplying the group's effective space
// by up to N.
func (s *Suite) WorstCase() (*Table, error) {
	t := &Table{
		ID:    "worstcase",
		Title: "§2 worst case: broadcast workload, replication and effective space",
		Columns: []string{"caches", "adhoc copies/doc", "ea copies/doc",
			"adhoc unique", "ea unique", "adhoc hit", "ea hit"},
		Notes: []string{
			"paper §2: under full replication the effective disk space is aggregate/N",
		},
	}
	for _, caches := range s.cfg.GroupSizes {
		// Size the group so each cache holds ~40 of the 100 documents:
		// too small for everything, big enough that replication policy
		// decides what survives.
		aggregate := int64(caches) * 40 * trace.DefaultDocSize
		adhocRep, eaRep, err := runBroadcastPair(caches, aggregate, s.cfg.Latency)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", caches),
			fmt.Sprintf("%.2f", adhocRep.Replication.MeanCopies()),
			fmt.Sprintf("%.2f", eaRep.Replication.MeanCopies()),
			fmt.Sprintf("%d", adhocRep.Replication.UniqueDocs),
			fmt.Sprintf("%d", eaRep.Replication.UniqueDocs),
			pct(adhocRep.Group.HitRate()), pct(eaRep.Group.HitRate()))
	}
	return t, nil
}

// broadcastWorkload builds the §2 adversarial stream: one client behind
// every cache, all cycling through the same 100 documents in near-lockstep,
// so every cache is asked for every document within one residency window.
func broadcastWorkload(clients []string) []trace.Record {
	const (
		docs   = 100
		rounds = 60
	)
	start := time.Date(1994, time.November, 15, 9, 0, 0, 0, time.UTC)
	records := make([]trace.Record, 0, len(clients)*docs*rounds)
	tick := 0
	for r := 0; r < rounds; r++ {
		for d := 0; d < docs; d++ {
			for _, client := range clients {
				records = append(records, trace.Record{
					Time:   start.Add(time.Duration(tick) * time.Second),
					Client: client,
					URL:    fmt.Sprintf("http://bcast.example.edu/doc%03d.html", d),
					Size:   trace.DefaultDocSize,
				})
				tick++
			}
		}
	}
	return records
}

// clientsCoveringAllCaches probes the group's hash routing for one client
// name per leaf, so the broadcast stream really reaches every cache.
func clientsCoveringAllCaches(g *group.Group) []string {
	byLeaf := make(map[string]string, len(g.Leaves()))
	for i := 0; len(byLeaf) < len(g.Leaves()) && i < 100000; i++ {
		name := fmt.Sprintf("bcast-client-%d", i)
		id := g.Route(name).ID()
		if _, ok := byLeaf[id]; !ok {
			byLeaf[id] = name
		}
	}
	clients := make([]string, 0, len(byLeaf))
	for _, leaf := range g.Leaves() {
		if name, ok := byLeaf[leaf.ID()]; ok {
			clients = append(clients, name)
		}
	}
	return clients
}

func runBroadcastPair(caches int, aggregate int64, latency metrics.LatencyModel) (adhocRep, eaRep *sim.Report, err error) {
	newGroup := func(scheme core.Scheme) (*group.Group, error) {
		return group.New(group.Config{
			Caches:         caches,
			AggregateBytes: aggregate,
			Scheme:         scheme,
		})
	}
	probe, err := newGroup(core.AdHoc{})
	if err != nil {
		return nil, nil, err
	}
	records := broadcastWorkload(clientsCoveringAllCaches(probe))

	run := func(scheme core.Scheme) (*sim.Report, error) {
		g, err := newGroup(scheme)
		if err != nil {
			return nil, err
		}
		return sim.Run(g, records, sim.Config{Latency: latency})
	}
	if adhocRep, err = run(core.AdHoc{}); err != nil {
		return nil, nil, err
	}
	if eaRep, err = run(core.EA{}); err != nil {
		return nil, nil, err
	}
	return adhocRep, eaRep, nil
}

// ModelCheck cross-validates the simulator against Che's analytical LRU
// approximation on a pure independent-reference workload: the two hit-rate
// estimates must track each other across cache sizes. The paper's
// technical-report analysis plays the same validating role for its own
// simulator.
func (s *Suite) ModelCheck() (*Table, error) {
	t := &Table{
		ID:      "model-check",
		Title:   "Simulator vs Che's analytical LRU model (IRM Zipf workload)",
		Columns: []string{"capacity (docs)", "analytic hit", "simulated hit", "diff (pp)"},
		Notes: []string{
			"validates the cache substrate; the trace-driven experiments add locality the IRM model excludes",
		},
	}
	const (
		docs     = 4000
		requests = 120000
		alpha    = 0.8
	)
	probs, err := model.ZipfPopularities(docs, alpha)
	if err != nil {
		return nil, err
	}
	zipf, err := dist.NewZipf(docs, alpha)
	if err != nil {
		return nil, err
	}

	for _, capacity := range []int{50, 200, 800, 3200} {
		analytic, err := model.CheLRU(probs, capacity)
		if err != nil {
			return nil, err
		}
		st, err := cache.New(cache.Config{Capacity: int64(capacity)})
		if err != nil {
			return nil, err
		}
		rng := dist.NewRNG(99)
		now := time.Unix(784900000, 0)
		hits := 0
		for i := 0; i < requests; i++ {
			url := fmt.Sprintf("doc-%d", zipf.Rank(rng))
			if _, ok := st.Get(url, now); ok {
				hits++
			} else if _, err := st.Put(cache.Document{URL: url, Size: 1}, now); err != nil {
				return nil, err
			}
			now = now.Add(time.Second)
		}
		simulated := float64(hits) / requests
		t.AddRow(fmt.Sprintf("%d", capacity),
			pct(analytic), pct(simulated),
			fmt.Sprintf("%+.2f", 100*(simulated-analytic)))
	}
	return t, nil
}
