package experiments

import (
	"fmt"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/metrics"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

// PaperSizes are the aggregate group sizes swept in the paper's evaluation.
var PaperSizes = []int64{100 << 10, 1 << 20, 10 << 20, 100 << 20, 1 << 30}

// ScaledSizes scales the paper's aggregate sizes by f (used when the trace
// itself is scaled down, preserving the cache-size-to-working-set ratio).
// Every size is at least 4KB so one average document always fits.
func ScaledSizes(f float64) []int64 {
	out := make([]int64, len(PaperSizes))
	for i, s := range PaperSizes {
		v := int64(float64(s) * f)
		if v < 4096 {
			v = 4096
		}
		out[i] = v
	}
	return out
}

// Config parameterises a Suite.
type Config struct {
	// Sizes are the aggregate sizes to sweep. Defaults to PaperSizes.
	Sizes []int64
	// Caches is the group size for the per-figure sweeps (paper: the
	// published graphs use the 4-cache group). Defaults to 4.
	Caches int
	// GroupSizes is the sweep for the group-size experiment.
	// Defaults to {2, 4, 8}.
	GroupSizes []int
	// ExpirationWindow and ExpirationHorizon configure each cache's
	// placement-signal window (group.Config semantics: both zero selects
	// the default time horizon; the ablation-window experiment studies
	// alternatives).
	ExpirationWindow  int
	ExpirationHorizon time.Duration
	// Latency is the service-latency model (defaults to the paper's).
	Latency metrics.LatencyModel
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = PaperSizes
	}
	if c.Caches == 0 {
		c.Caches = 4
	}
	if len(c.GroupSizes) == 0 {
		c.GroupSizes = []int{2, 4, 8}
	}
	if c.Latency == (metrics.LatencyModel{}) {
		c.Latency = metrics.PaperLatencies
	}
	return c
}

// Suite runs experiments over one reference stream, memoizing simulation
// runs so that figures sharing a sweep (fig1/fig2/fig3/table1/table2) cost
// one pass each configuration.
type Suite struct {
	records []trace.Record
	cfg     Config
	runs    map[runKey]*sim.Report
}

type runKey struct {
	scheme    string
	caches    int
	aggregate int64
	arch      group.Architecture
	policy    string
	window    int
	horizon   time.Duration
}

// NewSuite prepares a suite over records (cleaned of zero sizes, as the
// paper does, and sorted).
func NewSuite(records []trace.Record, cfg Config) *Suite {
	cleaned := trace.CleanZeroSizes(records, trace.DefaultDocSize)
	trace.SortByTime(cleaned)
	return &Suite{
		records: cleaned,
		cfg:     cfg.withDefaults(),
		runs:    make(map[runKey]*sim.Report),
	}
}

// Records returns the (cleaned) reference stream the suite replays.
func (s *Suite) Records() []trace.Record { return s.records }

// Config returns the suite configuration with defaults applied.
func (s *Suite) Config() Config { return s.cfg }

// Run simulates one configuration, memoized.
func (s *Suite) Run(schemeName string, caches int, aggregate int64, arch group.Architecture, policyName string, window int, horizon time.Duration) (*sim.Report, error) {
	key := runKey{
		scheme:    schemeName,
		caches:    caches,
		aggregate: aggregate,
		arch:      arch,
		policy:    policyName,
		window:    window,
		horizon:   horizon,
	}
	if rep, ok := s.runs[key]; ok {
		return rep, nil
	}

	scheme, ok := core.New(schemeName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scheme %q", schemeName)
	}
	g, err := group.New(group.Config{
		Caches:         caches,
		AggregateBytes: aggregate,
		Scheme:         scheme,
		NewPolicy: func() cache.Policy {
			p, _ := cache.NewPolicy(policyName)
			return p
		},
		ExpirationWindow:  window,
		ExpirationHorizon: horizon,
		Architecture:      arch,
	})
	if err != nil {
		return nil, err
	}
	rep, err := sim.Run(g, s.records, sim.Config{Latency: s.cfg.Latency})
	if err != nil {
		return nil, err
	}
	s.runs[key] = rep
	return rep, nil
}

// runPair simulates the ad-hoc and EA schemes at one configuration.
func (s *Suite) runPair(caches int, aggregate int64) (adhoc, ea *sim.Report, err error) {
	adhoc, err = s.Run("adhoc", caches, aggregate, group.Distributed, "lru",
		s.cfg.ExpirationWindow, s.cfg.ExpirationHorizon)
	if err != nil {
		return nil, nil, err
	}
	ea, err = s.Run("ea", caches, aggregate, group.Distributed, "lru",
		s.cfg.ExpirationWindow, s.cfg.ExpirationHorizon)
	if err != nil {
		return nil, nil, err
	}
	return adhoc, ea, nil
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

func ms(d time.Duration) string {
	return fmt.Sprintf("%dms", d.Milliseconds())
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}
