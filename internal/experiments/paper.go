package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"eacache/internal/group"
	"eacache/internal/sim"
)

// IDs lists every experiment, in report order: the paper's five artifacts,
// its textual claims, then the ablations and related-work extensions
// DESIGN.md indexes.
var IDs = []string{
	"fig1", "fig2", "fig3", "table1", "table2",
	"groupsize", "replication", "ablation-policy", "ablation-window", "hierarchy",
	"location", "partitioned", "coherence", "worstcase", "model-check",
}

// Experiment runs one experiment by ID.
func (s *Suite) Experiment(id string) (*Table, error) {
	switch id {
	case "fig1":
		return s.Fig1()
	case "fig2":
		return s.Fig2()
	case "fig3":
		return s.Fig3()
	case "table1":
		return s.Table1()
	case "table2":
		return s.Table2()
	case "groupsize":
		return s.GroupSize()
	case "replication":
		return s.ReplicationStudy()
	case "ablation-policy":
		return s.AblationPolicy()
	case "ablation-window":
		return s.AblationWindow()
	case "hierarchy":
		return s.Hierarchy()
	case "location":
		return s.Location()
	case "partitioned":
		return s.Partitioned()
	case "coherence":
		return s.Coherence()
	case "worstcase":
		return s.WorstCase()
	case "model-check":
		return s.ModelCheck()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// All runs every experiment in order.
func (s *Suite) All() ([]*Table, error) {
	tables := make([]*Table, 0, len(IDs))
	for _, id := range IDs {
		t, err := s.Experiment(id)
		if err != nil {
			return tables, fmt.Errorf("experiments: %s: %w", id, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig1 regenerates Figure 1: cumulative document hit rate of the ad-hoc and
// EA schemes for the 4-cache group across aggregate sizes.
func (s *Suite) Fig1() (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   fmt.Sprintf("Document hit rates, %d-cache group (paper Figure 1)", s.cfg.Caches),
		Columns: []string{"aggregate", "adhoc hit-rate", "ea hit-rate", "delta (pp)"},
		Notes: []string{
			"paper: EA above ad-hoc everywhere, gap widest at the smallest sizes",
		},
	}
	chart := newSchemeChart("Figure 1: document hit rate vs aggregate size", "hit rate (%)", s.cfg.Sizes)
	for i, size := range s.cfg.Sizes {
		adhoc, ea, err := s.runPair(s.cfg.Caches, size)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.FormatBytes(size),
			pct(adhoc.Group.HitRate()), pct(ea.Group.HitRate()),
			fmt.Sprintf("%+.2f", 100*(ea.Group.HitRate()-adhoc.Group.HitRate())))
		chart.Series[0].Values[i] = 100 * adhoc.Group.HitRate()
		chart.Series[1].Values[i] = 100 * ea.Group.HitRate()
	}
	t.Chart = chart
	return t, nil
}

// newSchemeChart prepares the two-series (ad-hoc vs EA) figure scaffold the
// paper's plots use.
func newSchemeChart(title, ylabel string, sizes []int64) *Chart {
	labels := make([]string, len(sizes))
	for i, s := range sizes {
		labels[i] = sim.FormatBytes(s)
	}
	nan := func() []float64 {
		vs := make([]float64, len(sizes))
		for i := range vs {
			vs[i] = math.NaN()
		}
		return vs
	}
	return &Chart{
		Title:   title,
		YLabel:  ylabel,
		XLabels: labels,
		Series: []Series{
			{Name: "adhoc", Mark: 'a', Values: nan()},
			{Name: "ea", Mark: 'e', Values: nan()},
		},
	}
}

// Fig2 regenerates Figure 2: cumulative byte hit rate.
func (s *Suite) Fig2() (*Table, error) {
	t := &Table{
		ID:      "fig2",
		Title:   fmt.Sprintf("Byte hit rates, %d-cache group (paper Figure 2)", s.cfg.Caches),
		Columns: []string{"aggregate", "adhoc byte-hit", "ea byte-hit", "delta (pp)"},
		Notes: []string{
			"paper: byte hit rate patterns mirror the document hit rates",
		},
	}
	chart := newSchemeChart("Figure 2: byte hit rate vs aggregate size", "byte hit rate (%)", s.cfg.Sizes)
	for i, size := range s.cfg.Sizes {
		adhoc, ea, err := s.runPair(s.cfg.Caches, size)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.FormatBytes(size),
			pct(adhoc.Group.ByteHitRate()), pct(ea.Group.ByteHitRate()),
			fmt.Sprintf("%+.2f", 100*(ea.Group.ByteHitRate()-adhoc.Group.ByteHitRate())))
		chart.Series[0].Values[i] = 100 * adhoc.Group.ByteHitRate()
		chart.Series[1].Values[i] = 100 * ea.Group.ByteHitRate()
	}
	t.Chart = chart
	return t, nil
}

// Fig3 regenerates Figure 3: estimated average latency (paper eq. 6 with
// LHL=146ms, RHL=342ms, ML=2784ms).
func (s *Suite) Fig3() (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   fmt.Sprintf("Estimated average latency, %d-cache group (paper Figure 3)", s.cfg.Caches),
		Columns: []string{"aggregate", "adhoc latency", "ea latency", "delta"},
		Notes: []string{
			"paper: EA clearly lower at 100KB-10MB, converging at 100MB, ad-hoc slightly ahead at 1GB",
		},
	}
	chart := newSchemeChart("Figure 3: estimated average latency vs aggregate size", "latency (ms)", s.cfg.Sizes)
	chart.YFormat = func(v float64) string { return fmt.Sprintf("%.0f", v) }
	for i, size := range s.cfg.Sizes {
		adhoc, ea, err := s.runPair(s.cfg.Caches, size)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.FormatBytes(size),
			ms(adhoc.EstimatedLatency), ms(ea.EstimatedLatency),
			fmt.Sprintf("%+dms", (ea.EstimatedLatency-adhoc.EstimatedLatency).Milliseconds()))
		chart.Series[0].Values[i] = float64(adhoc.EstimatedLatency.Milliseconds())
		chart.Series[1].Values[i] = float64(ea.EstimatedLatency.Milliseconds())
	}
	t.Chart = chart
	return t, nil
}

// Table1 regenerates Table 1: average cache expiration age (seconds) of the
// 4-cache group under both schemes.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   fmt.Sprintf("Average cache expiration age, %d-cache group (paper Table 1)", s.cfg.Caches),
		Columns: []string{"aggregate", "adhoc exp-age", "ea exp-age", "ratio"},
		Notes: []string{
			"paper measures 100KB-100MB; expiration ages under EA are consistently higher",
		},
	}
	for _, size := range s.cfg.Sizes {
		if size == s.cfg.Sizes[len(s.cfg.Sizes)-1] && len(s.cfg.Sizes) == len(PaperSizes) {
			// The paper's Table 1 stops at 100MB (at 1GB eviction
			// traffic is too thin for a stable average).
			continue
		}
		adhoc, ea, err := s.runPair(s.cfg.Caches, size)
		if err != nil {
			return nil, err
		}
		ratio := "n/a"
		if adhoc.AvgCacheExpirationAge > 0 {
			ratio = fmt.Sprintf("%.2fx", ea.AvgCacheExpirationAge.Seconds()/adhoc.AvgCacheExpirationAge.Seconds())
		}
		t.AddRow(sim.FormatBytes(size),
			secs(adhoc.AvgCacheExpirationAge), secs(ea.AvgCacheExpirationAge), ratio)
	}
	return t, nil
}

// Table2 regenerates Table 2: local hit rate, remote hit rate and estimated
// latency for both schemes at every aggregate size.
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: fmt.Sprintf("Local/remote hits and latency, %d-cache group (paper Table 2)", s.cfg.Caches),
		Columns: []string{"aggregate",
			"adhoc local", "adhoc remote", "adhoc latency",
			"ea local", "ea remote", "ea latency"},
		Notes: []string{
			"paper: EA trades local for remote hits; remote share grows with cache size (paper at 1GB: EA 32.02% vs ad-hoc 11.06% remote)",
		},
	}
	for _, size := range s.cfg.Sizes {
		adhoc, ea, err := s.runPair(s.cfg.Caches, size)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.FormatBytes(size),
			pct(adhoc.Group.LocalHitRate()), pct(adhoc.Group.RemoteHitRate()), ms(adhoc.EstimatedLatency),
			pct(ea.Group.LocalHitRate()), pct(ea.Group.RemoteHitRate()), ms(ea.EstimatedLatency))
	}
	return t, nil
}

// GroupSize regenerates the §4.2 text claims: the EA-vs-ad-hoc hit-rate gap
// for 2-, 4- and 8-cache groups at a small and a large aggregate size
// (paper: ≈6.5pp at 100KB and ≈2.5pp at 100MB for 8 caches; byte-hit gains
// ≈4pp and ≈1.5pp).
func (s *Suite) GroupSize() (*Table, error) {
	small, large := s.cfg.Sizes[0], s.cfg.Sizes[len(s.cfg.Sizes)-2]
	t := &Table{
		ID:    "groupsize",
		Title: "Hit-rate gain (EA - adhoc) vs group size (paper §4.2 text)",
		Columns: []string{"caches",
			"hit gain @" + sim.FormatBytes(small), "hit gain @" + sim.FormatBytes(large),
			"byte gain @" + sim.FormatBytes(small), "byte gain @" + sim.FormatBytes(large)},
		Notes: []string{
			"paper (8 caches): +6.5pp hits at 100KB, +2.5pp at 100MB; +4pp bytes at 100KB, +1.5pp at 100MB",
		},
	}
	for _, n := range s.cfg.GroupSizes {
		adS, eaS, err := s.runPair(n, small)
		if err != nil {
			return nil, err
		}
		adL, eaL, err := s.runPair(n, large)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%+.2fpp", 100*(eaS.Group.HitRate()-adS.Group.HitRate())),
			fmt.Sprintf("%+.2fpp", 100*(eaL.Group.HitRate()-adL.Group.HitRate())),
			fmt.Sprintf("%+.2fpp", 100*(eaS.Group.ByteHitRate()-adS.Group.ByteHitRate())),
			fmt.Sprintf("%+.2fpp", 100*(eaL.Group.ByteHitRate()-adL.Group.ByteHitRate())))
	}
	return t, nil
}

// ReplicationStudy quantifies the motivation of §2: how many replicas each
// scheme keeps and how many unique documents the group can hold.
func (s *Suite) ReplicationStudy() (*Table, error) {
	t := &Table{
		ID:    "replication",
		Title: "End-of-run replication (motivation, paper §2-3)",
		Columns: []string{"aggregate",
			"adhoc copies/doc", "ea copies/doc",
			"adhoc unique", "ea unique"},
		Notes: []string{
			"the EA scheme exists to push copies/doc toward 1 and unique documents up",
		},
	}
	for _, size := range s.cfg.Sizes {
		adhoc, ea, err := s.runPair(s.cfg.Caches, size)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.FormatBytes(size),
			fmt.Sprintf("%.3f", adhoc.Replication.MeanCopies()),
			fmt.Sprintf("%.3f", ea.Replication.MeanCopies()),
			fmt.Sprintf("%d", adhoc.Replication.UniqueDocs),
			fmt.Sprintf("%d", ea.Replication.UniqueDocs))
	}
	return t, nil
}

// AblationPolicy evaluates the schemes under LFU replacement, exercising
// the paper's LFU expiration-age definition (eq. 3).
func (s *Suite) AblationPolicy() (*Table, error) {
	t := &Table{
		ID:      "ablation-policy",
		Title:   "EA vs ad-hoc under LFU replacement (paper §3.2.2)",
		Columns: []string{"aggregate", "adhoc hit-rate", "ea hit-rate", "delta (pp)"},
	}
	sizes := middleSizes(s.cfg.Sizes, 3)
	for _, size := range sizes {
		adhoc, err := s.Run("adhoc", s.cfg.Caches, size, group.Distributed, "lfu",
			s.cfg.ExpirationWindow, s.cfg.ExpirationHorizon)
		if err != nil {
			return nil, err
		}
		ea, err := s.Run("ea", s.cfg.Caches, size, group.Distributed, "lfu",
			s.cfg.ExpirationWindow, s.cfg.ExpirationHorizon)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.FormatBytes(size),
			pct(adhoc.Group.HitRate()), pct(ea.Group.HitRate()),
			fmt.Sprintf("%+.2f", 100*(ea.Group.HitRate()-adhoc.Group.HitRate())))
	}
	return t, nil
}

// AblationWindow sweeps the expiration-age window — the implementation
// parameter behind the paper's "finite time duration (Ti, Tj)" — across
// time horizons, eviction-count windows, and the cumulative average.
func (s *Suite) AblationWindow() (*Table, error) {
	t := &Table{
		ID:      "ablation-window",
		Title:   "EA hit rate vs expiration-age window (paper's (Ti,Tj) choice)",
		Columns: []string{"window", "ea hit-rate", "ea byte-hit", "est latency"},
		Notes: []string{
			"a responsive time horizon spreads placement; a cumulative average lets one cache hoard",
		},
	}
	size := middleSizes(s.cfg.Sizes, 1)[0]
	type variant struct {
		label   string
		window  int
		horizon time.Duration
	}
	variants := []variant{
		{"horizon 1h", 0, time.Hour},
		{"horizon 6h", 0, 6 * time.Hour},
		{"horizon 24h", 0, 24 * time.Hour},
		{"count 128", 128, 0},
		{"count 512", 512, 0},
		{"cumulative", group.CumulativeAges, 0},
	}
	for _, v := range variants {
		rep, err := s.Run("ea", s.cfg.Caches, size, group.Distributed, "lru", v.window, v.horizon)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, pct(rep.Group.HitRate()), pct(rep.Group.ByteHitRate()), ms(rep.EstimatedLatency))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("aggregate size %s", sim.FormatBytes(size)))
	return t, nil
}

// Hierarchy evaluates the §3.3 hierarchical algorithm: leaves plus a shared
// parent, both schemes.
func (s *Suite) Hierarchy() (*Table, error) {
	t := &Table{
		ID:      "hierarchy",
		Title:   fmt.Sprintf("Hierarchical architecture, %d leaves + 1 parent (paper §3.3)", s.cfg.Caches),
		Columns: []string{"aggregate", "adhoc hit-rate", "ea hit-rate", "adhoc latency", "ea latency"},
	}
	sizes := middleSizes(s.cfg.Sizes, 3)
	for _, size := range sizes {
		adhoc, err := s.Run("adhoc", s.cfg.Caches, size, group.Hierarchical, "lru",
			s.cfg.ExpirationWindow, s.cfg.ExpirationHorizon)
		if err != nil {
			return nil, err
		}
		ea, err := s.Run("ea", s.cfg.Caches, size, group.Hierarchical, "lru",
			s.cfg.ExpirationWindow, s.cfg.ExpirationHorizon)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.FormatBytes(size),
			pct(adhoc.Group.HitRate()), pct(ea.Group.HitRate()),
			ms(adhoc.EstimatedLatency), ms(ea.EstimatedLatency))
	}
	return t, nil
}

// middleSizes picks up to n sizes centred on the middle of the sweep, so
// ablations run at representative (not degenerate) cache sizes.
func middleSizes(sizes []int64, n int) []int64 {
	if n >= len(sizes) {
		out := append([]int64(nil), sizes...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	start := (len(sizes) - n) / 2
	return append([]int64(nil), sizes[start:start+n]...)
}
