package experiments

import (
	"math"
	"strings"
	"testing"

	"eacache/internal/trace"
)

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:   "test chart",
		YLabel:  "pct",
		XLabels: []string{"a", "b", "c"},
		Series: []Series{
			{Name: "s1", Mark: 'x', Values: []float64{1, 5, 9}},
			{Name: "s2", Mark: 'o', Values: []float64{2, 5, 8}},
		},
		Height: 8,
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"test chart", "x=s1", "o=s2", "y: pct", "a", "b", "c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Overlapping points (both series at 5 for x=b) render as '+'.
	if !strings.Contains(out, "+") {
		t.Fatalf("overlap marker missing:\n%s", out)
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "o") {
		t.Fatalf("series marks missing:\n%s", out)
	}
}

func TestChartRenderErrors(t *testing.T) {
	if err := (&Chart{}).Render(&strings.Builder{}); err == nil {
		t.Fatal("empty chart rendered")
	}
	onlyNaN := &Chart{
		XLabels: []string{"a"},
		Series:  []Series{{Name: "s", Mark: 'x', Values: []float64{math.NaN()}}},
	}
	if err := onlyNaN.Render(&strings.Builder{}); err == nil {
		t.Fatal("pointless chart rendered")
	}
}

func TestChartFlatSeries(t *testing.T) {
	c := &Chart{
		Title:   "flat",
		XLabels: []string{"a", "b"},
		Series:  []Series{{Name: "s", Mark: 'x', Values: []float64{3, 3}}},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("flat series failed: %v", err)
	}
}

func TestFiguresCarryCharts(t *testing.T) {
	s := testSuite(t)
	for _, id := range []string{"fig1", "fig2", "fig3"} {
		table, err := s.Experiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if table.Chart == nil {
			t.Fatalf("%s has no chart", id)
		}
		if !strings.Contains(table.String(), "legend:") {
			t.Fatalf("%s render lacks the chart:\n%s", id, table.String())
		}
		for _, series := range table.Chart.Series {
			for i, v := range series.Values {
				if math.IsNaN(v) {
					t.Fatalf("%s series %s point %d unset", id, series.Name, i)
				}
			}
		}
	}
}

func TestMultiSeed(t *testing.T) {
	const scale = 0.005
	traces := make([][]trace.Record, 0, 3)
	for seed := uint64(1); seed <= 3; seed++ {
		gen := trace.BULike().Scaled(scale)
		gen.Seed = seed
		records, err := trace.Generate(gen)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, records)
	}
	table, err := MultiSeed(traces, Config{Sizes: ScaledSizes(scale)})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(ScaledSizes(scale)) {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		if !strings.Contains(row[1], "+/-") {
			t.Fatalf("row lacks spread: %v", row)
		}
	}
}

func TestMultiSeedValidation(t *testing.T) {
	if _, err := MultiSeed(nil, Config{}); err == nil {
		t.Fatal("empty trace set accepted")
	}
	if _, err := MultiSeed([][]trace.Record{{}}, Config{}); err == nil {
		t.Fatal("single trace accepted")
	}
}

func TestMeanStddev(t *testing.T) {
	m, sd := meanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if math.Abs(sd-2.138) > 0.001 {
		t.Fatalf("sd = %v", sd)
	}
	if m, sd := meanStddev(nil); m != 0 || sd != 0 {
		t.Fatal("empty input")
	}
	if m, sd := meanStddev([]float64{7}); m != 7 || sd != 0 {
		t.Fatal("single input")
	}
}
