// Package experiments defines one reproducible experiment per table and
// figure in the paper's evaluation (plus the ablations DESIGN.md calls
// out), runs them against a reference stream, and renders the same rows and
// series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows/series of one paper table
// or figure.
type Table struct {
	// ID is the experiment identifier ("fig1", "table2", ...).
	ID string
	// Title describes the paper artifact being regenerated.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carry per-experiment commentary (paper values, caveats).
	Notes []string
	// Chart, when set, renders the same data as an ASCII figure below
	// the table (used by the paper's Figure artifacts).
	Chart *Chart
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if t.Chart != nil {
		return t.Chart.Render(w)
	}
	return nil
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
