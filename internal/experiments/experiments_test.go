package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"eacache/internal/group"
	"eacache/internal/trace"
)

// testSuite builds a suite over a tiny scaled workload with proportionally
// scaled sizes.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	const scale = 0.005
	records, err := trace.Generate(trace.BULike().Scaled(scale))
	if err != nil {
		t.Fatal(err)
	}
	return NewSuite(records, Config{Sizes: ScaledSizes(scale)})
}

func TestScaledSizes(t *testing.T) {
	full := ScaledSizes(1)
	for i, s := range PaperSizes {
		if full[i] != s {
			t.Fatalf("ScaledSizes(1)[%d] = %d, want %d", i, full[i], s)
		}
	}
	tiny := ScaledSizes(1e-9)
	for _, s := range tiny {
		if s < 4096 {
			t.Fatalf("scaled size %d below the 4KB floor", s)
		}
	}
}

func TestSuiteDefaults(t *testing.T) {
	s := NewSuite(nil, Config{})
	cfg := s.Config()
	if len(cfg.Sizes) != len(PaperSizes) || cfg.Caches != 4 || len(cfg.GroupSizes) != 3 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Latency.Miss != 2784*time.Millisecond {
		t.Fatalf("latency default = %+v", cfg.Latency)
	}
}

func TestSuiteCleansAndSorts(t *testing.T) {
	records := []trace.Record{
		{Time: time.Unix(200, 0), Client: "u", URL: "b", Size: 0},
		{Time: time.Unix(100, 0), Client: "u", URL: "a", Size: 10},
	}
	s := NewSuite(records, Config{})
	got := s.Records()
	if !trace.Sorted(got) {
		t.Fatal("suite records not sorted")
	}
	for _, r := range got {
		if r.Size <= 0 {
			t.Fatal("zero sizes not cleaned")
		}
	}
	// The caller's slice is untouched.
	if records[0].Size != 0 || records[0].URL != "b" {
		t.Fatal("input mutated")
	}
}

func TestRunMemoization(t *testing.T) {
	s := testSuite(t)
	a, err := s.Run("ea", 2, s.Config().Sizes[2], group.Distributed, "lru", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("ea", 2, s.Config().Sizes[2], group.Distributed, "lru", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs not memoized")
	}
	c, err := s.Run("adhoc", 2, s.Config().Sizes[2], group.Distributed, "lru", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different configs shared a memo entry")
	}
}

func TestRunRejectsUnknownScheme(t *testing.T) {
	s := testSuite(t)
	if _, err := s.Run("bogus", 2, 1<<20, group.Distributed, "lru", 0, 0); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	s := testSuite(t)
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs) {
		t.Fatalf("got %d tables, want %d", len(tables), len(IDs))
	}
	for i, table := range tables {
		if table.ID != IDs[i] {
			t.Fatalf("table %d id = %q, want %q", i, table.ID, IDs[i])
		}
		if len(table.Rows) == 0 {
			t.Fatalf("%s: no rows", table.ID)
		}
		for _, row := range table.Rows {
			if len(row) != len(table.Columns) {
				t.Fatalf("%s: row width %d != columns %d", table.ID, len(row), len(table.Columns))
			}
		}
		out := table.String()
		if !strings.Contains(out, table.ID) || !strings.Contains(out, table.Columns[0]) {
			t.Fatalf("%s: render missing header:\n%s", table.ID, out)
		}
	}
}

func TestExperimentUnknownID(t *testing.T) {
	s := testSuite(t)
	if _, err := s.Experiment("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	table := &Table{
		ID:      "x",
		Title:   "alignment",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	table.AddRow("wide-cell-value", "1")
	out := table.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, row, note
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[len(lines)-1], "note:") {
		t.Fatalf("missing note line:\n%s", out)
	}
}

func TestMiddleSizes(t *testing.T) {
	sizes := []int64{1, 2, 3, 4, 5}
	if got := middleSizes(sizes, 3); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("middleSizes(5,3) = %v", got)
	}
	if got := middleSizes(sizes, 9); len(got) != 5 {
		t.Fatalf("middleSizes(5,9) = %v", got)
	}
	if got := middleSizes(sizes, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("middleSizes(5,1) = %v", got)
	}
}

func TestFig1ShapeOnDefaultWorkload(t *testing.T) {
	// The reproduction's headline shape: at every aggregate size the EA
	// scheme's hit rate is not meaningfully below ad-hoc's.
	s := testSuite(t)
	table, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		delta, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("unparseable delta %q: %v", row[3], err)
		}
		if delta < -1.0 {
			t.Errorf("size %s: EA clearly below ad-hoc (%+.2f pp)", row[0], delta)
		}
	}
}

func TestLocationTableShape(t *testing.T) {
	s := testSuite(t)
	table, err := s.Location()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		mech, icpMsgs := row[1], row[4]
		switch mech {
		case "icp":
			if icpMsgs == "0" {
				t.Fatalf("ICP row sent no messages: %v", row)
			}
			if row[6] != "0" {
				t.Fatalf("ICP row has false hits: %v", row)
			}
		case "digest":
			if icpMsgs != "0" {
				t.Fatalf("digest row sent ICP messages: %v", row)
			}
			// Incremental maintenance: the escape hatch never fires in
			// a healthy run.
			if row[5] != "0" {
				t.Fatalf("digest row took rebuild escapes: %v", row)
			}
		default:
			t.Fatalf("unknown mechanism %q", mech)
		}
	}
}

func TestPartitionedTableShape(t *testing.T) {
	s := testSuite(t)
	table, err := s.Partitioned()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err != nil {
				t.Fatalf("unparseable cell %q: %v", cell, err)
			}
			if v < 0 || v > 100 {
				t.Fatalf("rate out of range: %v", row)
			}
		}
	}
}

func TestModelCheckAgreement(t *testing.T) {
	s := testSuite(t)
	table, err := s.ModelCheck()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		diff, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("unparseable diff %q", row[3])
		}
		if diff < -3 || diff > 3 {
			t.Fatalf("model and simulator disagree by %vpp at capacity %s", diff, row[0])
		}
	}
}

func TestCoherenceTableShape(t *testing.T) {
	s := testSuite(t)
	table, err := s.Coherence()
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate immortal / era mix per size; the era-mix hit rate
	// must not exceed the immortal one for the same scheme and size.
	for i := 0; i+1 < len(table.Rows); i += 2 {
		immortal, mortal := table.Rows[i], table.Rows[i+1]
		if immortal[1] != "immortal" || mortal[1] != "era mix" {
			t.Fatalf("row order unexpected: %v / %v", immortal, mortal)
		}
		ih, err := strconv.ParseFloat(strings.TrimSuffix(immortal[2], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		mh, err := strconv.ParseFloat(strings.TrimSuffix(mortal[2], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if mh > ih+0.5 {
			t.Fatalf("expiry raised the hit rate: %v vs %v", immortal, mortal)
		}
	}
}

func TestWorstCaseShape(t *testing.T) {
	s := testSuite(t)
	table, err := s.WorstCase()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		caches, err := strconv.Atoi(row[0])
		if err != nil {
			t.Fatal(err)
		}
		adhocCopies, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		eaCopies, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		// The §2 worst case: ad-hoc replicates on every cache.
		if adhocCopies < float64(caches)-0.1 {
			t.Errorf("%d caches: adhoc copies/doc = %v, want ~%d (full replication)",
				caches, adhocCopies, caches)
		}
		if eaCopies > adhocCopies+1e-9 {
			t.Errorf("%d caches: EA replicates more than adhoc (%v > %v)",
				caches, eaCopies, adhocCopies)
		}
		adhocHit, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		eaHit, err := strconv.ParseFloat(strings.TrimSuffix(row[6], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if eaHit < adhocHit {
			t.Errorf("%d caches: EA hit %v below adhoc %v on the broadcast workload",
				caches, eaHit, adhocHit)
		}
	}
}
