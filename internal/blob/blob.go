// Package blob is the content-addressed disk tier beneath the sharded
// memory cache: checksummed blob files in sharded fan-out directories,
// indexed by an append-only CRC32C-framed log, with its own byte budget,
// LRU replacement and expiration-age tracker (the admission price the
// tier controller charges demotions — see internal/cache's TieredStore).
//
// Layout under Config.Dir:
//
//	index.log            append-only index (put/del frames)
//	blobs/<hh>/<sha256>  body files, named by content hash, fanned out
//	                     by the first two hex digits
//	tmp/                 staging area for in-flight writes
//
// Addressing by content hash means identical bodies share one file: the
// refcounted index tracks how many URLs reference each sum and unlinks
// the file only when the last reference goes. (The node's synthetic
// zero-filled bodies make this the common case — every same-sized body
// dedupes — so Used() accounts logical bytes, the sum of entry sizes,
// against Capacity.)
//
// Recovery mirrors internal/persist's posture: Open replays the longest
// verifiable index prefix (truncating a torn tail), then cross-checks
// every entry against its blob file by presence and size — no bodies are
// re-read, which is what makes a warm restart over a large tier take
// seconds. Full checksum verification is available separately through
// VerifyAll (the disk-smoke gate) and happens implicitly on every read:
// Open(url) returns a reader that hashes as it streams and fails at EOF
// on a mismatch, dropping the corrupt entry.
package blob

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eacache/internal/cache"
)

// ErrChecksum reports a blob whose stored bytes no longer match its
// content hash. The entry is dropped and the failure counted.
var ErrChecksum = errors.New("blob: checksum mismatch")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("blob: store closed")

// ErrTooLarge reports a body bigger than the whole tier.
var ErrTooLarge = errors.New("blob: document larger than disk capacity")

// Config configures a Store.
type Config struct {
	// Dir is the tier's root directory; created if absent. Required.
	Dir string
	// Capacity is the byte budget (logical bytes: the sum of entry
	// sizes). Must be positive.
	Capacity int64
	// ExpirationWindow / ExpirationHorizon configure the tier's
	// expiration-age tracker, with cache.Config's semantics. The tracker
	// restarts cold after a crash (NoContention — an empty-looking disk
	// tier welcomes demotions until it evicts again), which is
	// conservative in the right direction.
	ExpirationWindow  int
	ExpirationHorizon time.Duration
}

// Report is the Open-time recovery accounting.
type Report struct {
	// Entries / Bytes are the recovered residency after reconciliation.
	Entries int
	Bytes   int64
	// IndexRecords is the number of valid frames replayed.
	IndexRecords int
	// TruncatedBytes is the torn tail cut from the index log.
	TruncatedBytes int64
	// LostBlobs counts index entries whose blob file was missing or had
	// the wrong size (dropped).
	LostBlobs int
	// Orphans counts blob files no index entry referenced (unlinked).
	Orphans int
	// Compacted reports whether the index log was rewritten.
	Compacted bool
}

// VerifyReport is VerifyAll's accounting.
type VerifyReport struct {
	Verified int
	Failed   int
	// FailedURLs lists the dropped URLs (bounded by the store size).
	FailedURLs []string
}

// dentry is one resident document: its tier entry plus LRU links.
type dentry struct {
	e          cache.DiskEntry
	prev, next *dentry // LRU list: head = most recent, tail = victim
}

// Store is the disk tier. All methods are safe for concurrent use; it
// implements cache.DiskTier.
type Store struct {
	dir      string
	capacity int64

	mu         sync.Mutex
	entries    map[string]*dentry
	refs       map[[32]byte]int
	head, tail *dentry
	used       int64
	ages       *cache.ExpAgeTracker
	index      *os.File
	frames     int // frames in the log since the last compaction
	evictions  int64
	closed     bool

	checksumFailures atomic.Int64
	report           Report
}

// Open opens (or initialises) the tier rooted at cfg.Dir, replaying and
// reconciling the index as described in the package comment.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("blob: Dir is required")
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("blob: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.ExpirationWindow < 0 || cfg.ExpirationHorizon < 0 {
		return nil, fmt.Errorf("blob: negative expiration window/horizon")
	}
	if cfg.ExpirationWindow > 0 && cfg.ExpirationHorizon > 0 {
		return nil, fmt.Errorf("blob: expiration window and horizon are mutually exclusive")
	}
	for _, sub := range []string{"", "blobs", "tmp"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("blob: %w", err)
		}
	}
	ages := cache.NewExpAgeTracker(cfg.ExpirationWindow)
	if cfg.ExpirationHorizon > 0 {
		ages = cache.NewTimeHorizonTracker(cfg.ExpirationHorizon)
	}
	s := &Store{
		dir:      cfg.Dir,
		capacity: cfg.Capacity,
		entries:  make(map[string]*dentry),
		refs:     make(map[[32]byte]int),
		ages:     ages,
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// indexPath returns the index log path.
func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.log") }

// blobPath returns the fan-out path for a content sum.
func blobPath(dir string, sum [32]byte) string {
	h := hex.EncodeToString(sum[:])
	return filepath.Join(dir, "blobs", h[:2], h)
}

// recover replays the index log, reconciles it against the blob files,
// sweeps orphans and reopens the log for appending (compacting it first
// when replay found it garbage-heavy).
func (s *Store) recover() error {
	raw, err := os.ReadFile(s.indexPath())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("blob: read index: %w", err)
	}
	recs, valid, _ := ReplayIndex(raw)
	s.report.IndexRecords = len(recs)
	s.report.TruncatedBytes = int64(len(raw) - valid)

	// Fold the record stream into the final residency.
	folded := make(map[string]cache.DiskEntry)
	for _, r := range recs {
		if r.Del {
			delete(folded, r.Entry.Doc.URL)
		} else {
			folded[r.Entry.Doc.URL] = r.Entry
		}
	}

	// Cross-check each entry's blob file by presence and size (one stat
	// per distinct sum; bodies are not read).
	type fileState struct {
		size int64
		ok   bool
	}
	files := make(map[[32]byte]fileState)
	for _, e := range folded {
		if _, seen := files[e.Sum]; seen {
			continue
		}
		fi, err := os.Stat(blobPath(s.dir, e.Sum))
		files[e.Sum] = fileState{size: func() int64 {
			if err != nil {
				return -1
			}
			return fi.Size()
		}(), ok: err == nil}
	}
	kept := make([]cache.DiskEntry, 0, len(folded))
	for _, e := range folded {
		st := files[e.Sum]
		if !st.ok || st.size != e.Doc.Size {
			s.report.LostBlobs++
			continue
		}
		kept = append(kept, e)
	}
	// Rebuild the LRU in recency order.
	sort.Slice(kept, func(i, j int) bool {
		if !kept[i].LastHit.Equal(kept[j].LastHit) {
			return kept[i].LastHit.Before(kept[j].LastHit)
		}
		return kept[i].Doc.URL < kept[j].Doc.URL
	})
	for _, e := range kept {
		d := &dentry{e: e}
		s.entries[e.Doc.URL] = d
		s.pushFront(d)
		s.refs[e.Sum]++
		s.used += e.Doc.Size
	}
	s.report.Entries = len(s.entries)
	s.report.Bytes = s.used

	// Sweep blob files nothing references (crashed half-demotions,
	// entries whose del frame landed but whose unlink did not) and empty
	// tmp staging leftovers.
	s.report.Orphans = s.sweepOrphans()

	// Reopen the log for appending; rewrite it first if replay carried a
	// torn tail or heavy garbage.
	garbage := s.report.IndexRecords - len(s.entries)
	if s.report.TruncatedBytes > 0 || garbage > len(s.entries)+128 {
		if err := s.compactLocked(); err != nil {
			return err
		}
		s.report.Compacted = true
	} else {
		f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("blob: open index: %w", err)
		}
		s.index = f
		s.frames = s.report.IndexRecords
	}
	return nil
}

// sweepOrphans removes unreferenced blob files and tmp leftovers,
// returning how many blob files were unlinked.
func (s *Store) sweepOrphans() int {
	orphans := 0
	root := filepath.Join(s.dir, "blobs")
	dirs, _ := os.ReadDir(root)
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		files, _ := os.ReadDir(filepath.Join(root, d.Name()))
		for _, f := range files {
			var sum [32]byte
			b, err := hex.DecodeString(f.Name())
			if err != nil || len(b) != 32 {
				os.Remove(filepath.Join(root, d.Name(), f.Name()))
				orphans++
				continue
			}
			copy(sum[:], b)
			if s.refs[sum] == 0 {
				os.Remove(filepath.Join(root, d.Name(), f.Name()))
				orphans++
			}
		}
	}
	tmps, _ := os.ReadDir(filepath.Join(s.dir, "tmp"))
	for _, f := range tmps {
		os.Remove(filepath.Join(s.dir, "tmp", f.Name()))
	}
	return orphans
}

// compactLocked rewrites the index log to one put frame per live entry
// (atomic temp+fsync+rename) and reopens it for appending. Caller holds
// mu or is the single-threaded recovery path.
func (s *Store) compactLocked() error {
	if s.index != nil {
		s.index.Close()
		s.index = nil
	}
	tmp := filepath.Join(s.dir, "tmp", "index.compact")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("blob: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	// Oldest-first so a replay rebuilds the same LRU order.
	for d := s.tail; d != nil; d = d.prev {
		if _, err := w.Write(marshalIndexRecord(IndexRecord{Entry: d.e})); err != nil {
			f.Close()
			return fmt.Errorf("blob: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("blob: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("blob: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("blob: compact: %w", err)
	}
	if err := os.Rename(tmp, s.indexPath()); err != nil {
		return fmt.Errorf("blob: compact: %w", err)
	}
	out, err := os.OpenFile(s.indexPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("blob: reopen index: %w", err)
	}
	s.index = out
	s.frames = len(s.entries)
	return nil
}

// appendLocked writes one index frame, tracking garbage (frames the
// current residency no longer needs) and compacting when it dominates.
func (s *Store) appendLocked(r IndexRecord) error {
	if _, err := s.index.Write(marshalIndexRecord(r)); err != nil {
		return fmt.Errorf("blob: index append: %w", err)
	}
	s.frames++
	if garbage := s.frames - len(s.entries); garbage > 4*len(s.entries)+1024 {
		return s.compactLocked()
	}
	return nil
}

// pushFront links d as the most recently used entry.
func (s *Store) pushFront(d *dentry) {
	d.prev, d.next = nil, s.head
	if s.head != nil {
		s.head.prev = d
	}
	s.head = d
	if s.tail == nil {
		s.tail = d
	}
}

// unlink removes d from the LRU list.
func (s *Store) unlink(d *dentry) {
	if d.prev != nil {
		d.prev.next = d.next
	} else {
		s.head = d.next
	}
	if d.next != nil {
		d.next.prev = d.prev
	} else {
		s.tail = d.prev
	}
	d.prev, d.next = nil, nil
}

// dropLocked removes d's entry: index del frame, refcount decrement and
// file unlink on last reference.
func (s *Store) dropLocked(d *dentry) error {
	delete(s.entries, d.e.Doc.URL)
	s.unlink(d)
	s.used -= d.e.Doc.Size
	s.refs[d.e.Sum]--
	if s.refs[d.e.Sum] <= 0 {
		delete(s.refs, d.e.Sum)
		os.Remove(blobPath(s.dir, d.e.Sum))
	}
	return s.appendLocked(IndexRecord{Del: true, Entry: cache.DiskEntry{Doc: cache.Document{URL: d.e.Doc.URL}}})
}

// Admit implements cache.DiskTier: store e's body, evicting LRU victims
// to make room, and return the entry with its checksum plus the
// evictions performed.
func (s *Store) Admit(e cache.DiskEntry, body io.Reader, now time.Time) (cache.DiskEntry, []cache.DiskEviction, error) {
	if e.Doc.URL == "" || e.Doc.Size < 0 {
		return e, nil, fmt.Errorf("blob: bad entry %q size %d", e.Doc.URL, e.Doc.Size)
	}
	if e.Doc.Size > s.capacity {
		return e, nil, ErrTooLarge
	}
	// Hash (and stage) the body outside any consideration of residency:
	// the sum decides whether bytes need to land at all.
	sum, staged, err := s.stageBody(body, e.Doc.Size)
	if err != nil {
		return e, nil, err
	}
	e.Sum = sum
	if e.LastHit.IsZero() {
		e.LastHit = now
	}
	if e.EnteredAt.IsZero() {
		e.EnteredAt = now
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if staged != "" {
			os.Remove(staged)
		}
		return e, nil, ErrClosed
	}
	var evicted []cache.DiskEviction
	if old, ok := s.entries[e.Doc.URL]; ok {
		// Re-demotion over a live entry: replace silently.
		if err := s.dropLocked(old); err != nil {
			if staged != "" {
				os.Remove(staged)
			}
			return e, nil, err
		}
	}
	for s.used+e.Doc.Size > s.capacity {
		v := s.tail
		if v == nil {
			if staged != "" {
				os.Remove(staged)
			}
			return e, nil, fmt.Errorf("blob: cannot free %d bytes", e.Doc.Size)
		}
		age := now.Sub(v.e.LastHit)
		if age < 0 {
			age = 0
		}
		ev := cache.DiskEviction{Entry: v.e, Age: age}
		if err := s.dropLocked(v); err != nil {
			if staged != "" {
				os.Remove(staged)
			}
			return e, evicted, err
		}
		s.evictions++
		s.ages.Record(age, now)
		evicted = append(evicted, ev)
	}
	if s.refs[sum] == 0 {
		// First reference: move the staged file into place.
		dst := blobPath(s.dir, sum)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			os.Remove(staged)
			return e, evicted, fmt.Errorf("blob: %w", err)
		}
		if err := os.Rename(staged, dst); err != nil {
			os.Remove(staged)
			return e, evicted, fmt.Errorf("blob: %w", err)
		}
		staged = ""
	}
	if staged != "" {
		os.Remove(staged)
	}
	d := &dentry{e: e}
	s.entries[e.Doc.URL] = d
	s.pushFront(d)
	s.refs[sum]++
	s.used += e.Doc.Size
	if err := s.appendLocked(IndexRecord{Entry: e}); err != nil {
		return e, evicted, err
	}
	return e, evicted, nil
}

// stageBody streams body into a temp file, hashing as it goes, and
// returns the sum and the staged path. Bodies whose length disagrees
// with size are rejected.
func (s *Store) stageBody(body io.Reader, size int64) ([32]byte, string, error) {
	var sum [32]byte
	f, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "admit-*")
	if err != nil {
		return sum, "", fmt.Errorf("blob: stage: %w", err)
	}
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(f, h), io.LimitReader(body, size))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return sum, "", fmt.Errorf("blob: stage: %w", err)
	}
	if n != size {
		os.Remove(f.Name())
		return sum, "", fmt.Errorf("blob: body is %d bytes, want %d", n, size)
	}
	copy(sum[:], h.Sum(nil))
	return sum, f.Name(), nil
}

// Open implements cache.DiskTier: the entry plus a reader that verifies
// the checksum as it streams (failing at EOF on a mismatch and dropping
// the corrupt entry).
func (s *Store) Open(url string) (cache.DiskEntry, io.ReadCloser, bool) {
	s.mu.Lock()
	d, ok := s.entries[url]
	if !ok || s.closed {
		s.mu.Unlock()
		return cache.DiskEntry{}, nil, false
	}
	e := d.e
	s.mu.Unlock()
	f, err := os.Open(blobPath(s.dir, e.Sum))
	if err != nil {
		s.dropCorrupt(url, e.Sum)
		return cache.DiskEntry{}, nil, false
	}
	return e, &verifyReader{s: s, f: f, h: sha256.New(), url: url, want: e.Sum, remain: e.Doc.Size}, true
}

// dropCorrupt removes a failed entry and counts the checksum failure.
func (s *Store) dropCorrupt(url string, sum [32]byte) {
	s.checksumFailures.Add(1)
	s.mu.Lock()
	if d, ok := s.entries[url]; ok && d.e.Sum == sum && !s.closed {
		s.dropLocked(d)
	}
	s.mu.Unlock()
}

// verifyReader streams a blob while hashing it; EOF fails with
// ErrChecksum unless exactly the indexed bytes with the indexed sum were
// read.
type verifyReader struct {
	s      *Store
	f      *os.File
	h      hash.Hash
	url    string
	want   [32]byte
	remain int64
	failed bool
	done   bool
}

// Read implements io.Reader.
func (r *verifyReader) Read(p []byte) (int, error) {
	if r.remain == 0 {
		if !r.done {
			r.done = true
			if err := r.verify(); err != nil {
				return 0, err
			}
		}
		return 0, io.EOF
	}
	if int64(len(p)) > r.remain {
		p = p[:r.remain]
	}
	n, err := r.f.Read(p)
	r.h.Write(p[:n])
	r.remain -= int64(n)
	if err == io.EOF && r.remain > 0 {
		// Shorter than indexed: corrupt.
		r.fail()
		return n, ErrChecksum
	}
	if err == io.EOF {
		err = nil
	}
	if err == nil && r.remain == 0 && !r.done {
		r.done = true
		if verr := r.verify(); verr != nil {
			return n, verr
		}
	}
	return n, err
}

// verify compares the streamed hash with the indexed sum.
func (r *verifyReader) verify() error {
	var got [32]byte
	copy(got[:], r.h.Sum(nil))
	if got != r.want {
		r.fail()
		return ErrChecksum
	}
	return nil
}

// fail records the corruption once.
func (r *verifyReader) fail() {
	if !r.failed {
		r.failed = true
		r.s.dropCorrupt(r.url, r.want)
	}
}

// Close implements io.Closer; a close before the verified EOF returns
// nil (partial reads cannot verify), after a failure it reports it.
func (r *verifyReader) Close() error {
	err := r.f.Close()
	if r.failed {
		return ErrChecksum
	}
	return err
}

// Remove implements cache.DiskTier.
func (s *Store) Remove(url string) (cache.DiskEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.entries[url]
	if !ok || s.closed {
		return cache.DiskEntry{}, false
	}
	e := d.e
	s.dropLocked(d)
	return e, true
}

// Contains implements cache.DiskTier.
func (s *Store) Contains(url string) bool {
	s.mu.Lock()
	_, ok := s.entries[url]
	s.mu.Unlock()
	return ok
}

// Peek implements cache.DiskTier.
func (s *Store) Peek(url string) (cache.DiskEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.entries[url]
	if !ok {
		return cache.DiskEntry{}, false
	}
	return d.e, true
}

// ExpirationAge implements cache.DiskTier: eq. 5 over the tier's own
// evictions — NoContention until the first one.
func (s *Store) ExpirationAge(now time.Time) time.Duration {
	s.mu.Lock()
	age := s.ages.WindowedAt(now)
	s.mu.Unlock()
	return age
}

// Len implements cache.DiskTier.
func (s *Store) Len() int {
	s.mu.Lock()
	n := len(s.entries)
	s.mu.Unlock()
	return n
}

// Used implements cache.DiskTier (logical bytes; shared files count once
// per referencing URL).
func (s *Store) Used() int64 {
	s.mu.Lock()
	u := s.used
	s.mu.Unlock()
	return u
}

// Capacity implements cache.DiskTier.
func (s *Store) Capacity() int64 { return s.capacity }

// Evictions returns the number of LRU evictions performed.
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	n := s.evictions
	s.mu.Unlock()
	return n
}

// URLs implements cache.DiskTier.
func (s *Store) URLs() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.entries))
	for u := range s.entries {
		out = append(out, u)
	}
	s.mu.Unlock()
	return out
}

// Entries implements cache.DiskTier.
func (s *Store) Entries() []cache.DiskEntry {
	s.mu.Lock()
	out := make([]cache.DiskEntry, 0, len(s.entries))
	for _, d := range s.entries {
		out = append(out, d.e)
	}
	s.mu.Unlock()
	return out
}

// ChecksumFailures implements cache.DiskTier.
func (s *Store) ChecksumFailures() int64 { return s.checksumFailures.Load() }

// Report returns the Open-time recovery accounting.
func (s *Store) Report() Report {
	s.mu.Lock()
	r := s.report
	s.mu.Unlock()
	return r
}

// VerifyAll re-reads every blob through the verifying reader — the full
// integrity pass the disk-smoke gate and the post-crash e2e run. Corrupt
// entries are dropped and counted.
func (s *Store) VerifyAll() VerifyReport {
	var rep VerifyReport
	for _, url := range s.URLs() {
		_, rc, ok := s.Open(url)
		if !ok {
			rep.Failed++
			rep.FailedURLs = append(rep.FailedURLs, url)
			continue
		}
		_, err := io.Copy(io.Discard, rc)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			rep.Failed++
			rep.FailedURLs = append(rep.FailedURLs, url)
			continue
		}
		rep.Verified++
	}
	return rep
}

// Sync implements cache.DiskTier: fsync the index log.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.index == nil {
		return nil
	}
	if err := s.index.Sync(); err != nil {
		return fmt.Errorf("blob: sync index: %w", err)
	}
	return nil
}

// Close implements cache.DiskTier: final index fsync and close. Later
// calls on the store are inert.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.index == nil {
		return nil
	}
	err := s.index.Sync()
	if cerr := s.index.Close(); err == nil {
		err = cerr
	}
	s.index = nil
	if err != nil {
		return fmt.Errorf("blob: close: %w", err)
	}
	return nil
}
