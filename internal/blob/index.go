// Append-only index log for the blob store, framed exactly like
// internal/persist's journal: every record is
//
//	u32 length | u8 kind | payload | u32 CRC32C(kind + payload)
//
// little-endian throughout, CRC over the kind byte and payload. A record
// is either fully committed or not there: replay accepts the longest
// verifiable prefix and reports where the damage starts, so a node
// killed mid-append loses at most the record being written (torn tail),
// never earlier state.
package blob

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"time"

	"eacache/internal/cache"
)

// Index record kinds.
const (
	iPut byte = 1 // full entry metadata: the URL became disk-resident
	iDel byte = 2 // the URL left the tier
)

const (
	// maxIndexURL bounds URL length, mirroring the journal's bound.
	maxIndexURL = 8192
	// maxIndexPayload bounds a frame payload against corrupt lengths.
	maxIndexPayload = 64 << 10
	// indexOverhead is the framing cost: length, kind, CRC.
	indexOverhead = 4 + 1 + 4
)

// ErrCorrupt reports an index frame that failed structural validation.
var ErrCorrupt = errors.New("blob: corrupt index record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// IndexRecord is one replayed index mutation.
type IndexRecord struct {
	// Del marks a removal record (only Entry.Doc.URL is meaningful).
	Del bool
	// Entry is the full metadata for put records.
	Entry cache.DiskEntry
}

// timeToNano flattens a time for encoding; the zero time encodes as 0.
func timeToNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// nanoToTime is the inverse of timeToNano.
func nanoToTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// ienc is a little append-only encoder.
type ienc struct{ b []byte }

func (e *ienc) u8(v byte)    { e.b = append(e.b, v) }
func (e *ienc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *ienc) i64(v int64)  { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *ienc) raw(v []byte) { e.b = append(e.b, v...) }
func (e *ienc) str(v string) { e.u32(uint32(len(v))); e.b = append(e.b, v...) }

// marshalIndexRecord frames one record. Records with impossible fields
// (URL too long) must not be produced by the store; they panic to catch
// programming errors rather than persist garbage.
func marshalIndexRecord(r IndexRecord) []byte {
	if len(r.Entry.Doc.URL) == 0 || len(r.Entry.Doc.URL) > maxIndexURL {
		panic("blob: index record with bad URL length")
	}
	var e ienc
	if r.Del {
		e.u8(iDel)
		e.str(r.Entry.Doc.URL)
	} else {
		e.u8(iPut)
		e.str(r.Entry.Doc.URL)
		e.i64(r.Entry.Doc.Size)
		e.i64(timeToNano(r.Entry.Doc.Expires))
		e.i64(timeToNano(r.Entry.EnteredAt))
		e.i64(timeToNano(r.Entry.LastHit))
		e.i64(r.Entry.Hits)
		e.raw(r.Entry.Sum[:])
	}
	frame := make([]byte, 0, len(e.b)+8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(e.b)-1))
	frame = append(frame, e.b...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(e.b, crcTable))
	return frame
}

// idec is a latching decoder over one payload.
type idec struct {
	b   []byte
	off int
	bad bool
}

func (d *idec) fail() { d.bad = true }

func (d *idec) take(n int) []byte {
	if d.bad || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *idec) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (d *idec) i64() int64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(v))
}

func (d *idec) str() string {
	n := d.u32()
	if d.bad || n > maxIndexURL {
		d.fail()
		return ""
	}
	v := d.take(int(n))
	if v == nil {
		return ""
	}
	return string(v)
}

// done reports whether the payload was consumed exactly and cleanly.
func (d *idec) done() bool { return !d.bad && d.off == len(d.b) }

// decodeIndexPayload decodes one record from kind + payload bytes.
func decodeIndexPayload(kind byte, payload []byte) (IndexRecord, error) {
	d := &idec{b: payload}
	var r IndexRecord
	switch kind {
	case iPut:
		r.Entry.Doc.URL = d.str()
		r.Entry.Doc.Size = d.i64()
		r.Entry.Doc.Expires = nanoToTime(d.i64())
		r.Entry.EnteredAt = nanoToTime(d.i64())
		r.Entry.LastHit = nanoToTime(d.i64())
		r.Entry.Hits = d.i64()
		copy(r.Entry.Sum[:], d.take(32))
		if !d.done() || r.Entry.Doc.URL == "" || r.Entry.Doc.Size < 0 {
			return r, ErrCorrupt
		}
	case iDel:
		r.Del = true
		r.Entry.Doc.URL = d.str()
		if !d.done() || r.Entry.Doc.URL == "" {
			return r, ErrCorrupt
		}
	default:
		return r, ErrCorrupt
	}
	return r, nil
}

// ReplayIndex decodes the longest verifiable prefix of raw. It returns
// the records, the number of bytes that prefix covers, and the damage
// that stopped replay (nil when raw was consumed exactly). Like the
// journal, damage is not fatal to the caller: everything before it is
// trustworthy, everything after is a torn tail to truncate.
func ReplayIndex(raw []byte) (recs []IndexRecord, valid int, damage error) {
	off := 0
	for off < len(raw) {
		if len(raw)-off < indexOverhead {
			return recs, off, ErrCorrupt
		}
		plen := binary.LittleEndian.Uint32(raw[off:])
		if plen > maxIndexPayload || plen > math.MaxInt32 {
			return recs, off, ErrCorrupt
		}
		total := indexOverhead + int(plen)
		if off+total > len(raw) {
			return recs, off, ErrCorrupt
		}
		body := raw[off+4 : off+4+1+int(plen)]
		wantCRC := binary.LittleEndian.Uint32(raw[off+5+int(plen):])
		if crc32.Checksum(body, crcTable) != wantCRC {
			return recs, off, ErrCorrupt
		}
		rec, err := decodeIndexPayload(body[0], body[1:])
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off += total
	}
	return recs, off, nil
}
