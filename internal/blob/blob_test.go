package blob

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/dist"
)

// t0 is the workload epoch (wall-clock-free tests).
func t0() time.Time { return time.Unix(1_700_000_000, 0) }

// openStore builds a store over dir with a count-window tracker.
func openStore(t *testing.T, dir string, capacity int64) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Capacity: capacity, ExpirationWindow: 16})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// body returns a deterministic pseudorandom body for url.
func body(url string, size int64) []byte {
	h := sha256.Sum256([]byte(url))
	out := make([]byte, size)
	for i := range out {
		out[i] = h[i%len(h)]
	}
	return out
}

// admit stores url with a deterministic body and metadata derived from seq.
func admit(t *testing.T, s *Store, url string, size int64, seq int) cache.DiskEntry {
	t.Helper()
	now := t0().Add(time.Duration(seq) * time.Minute)
	e, _, err := s.Admit(cache.DiskEntry{
		Doc:       cache.Document{URL: url, Size: size},
		EnteredAt: now.Add(-time.Hour),
		LastHit:   now,
		Hits:      int64(seq + 1),
	}, bytes.NewReader(body(url, size)), now)
	if err != nil {
		t.Fatalf("admit %s: %v", url, err)
	}
	return e
}

// readAll drains url through the verifying reader.
func readAll(t *testing.T, s *Store, url string) ([]byte, cache.DiskEntry, error) {
	t.Helper()
	e, rc, ok := s.Open(url)
	if !ok {
		return nil, e, fmt.Errorf("not resident")
	}
	b, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	return b, e, err
}

func TestAdmitOpenRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir(), 1<<20)
	defer s.Close()
	for i := 0; i < 8; i++ {
		url := fmt.Sprintf("http://rt/%d", i)
		size := int64(100 + i*37)
		want := admit(t, s, url, size, i)
		got, e, err := readAll(t, s, url)
		if err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		if !bytes.Equal(got, body(url, size)) {
			t.Fatalf("%s: body bytes differ", url)
		}
		if e != want {
			t.Fatalf("%s: entry %+v, want %+v", url, e, want)
		}
		wantSum := sha256.Sum256(body(url, size))
		if e.Sum != wantSum {
			t.Fatalf("%s: sum mismatch", url)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestDedupeRefcount: identical bodies share one file; it survives until
// the last referencing URL goes.
func TestDedupeRefcount(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 1<<20)
	defer s.Close()
	mk := func(url string, seq int) cache.DiskEntry {
		now := t0().Add(time.Duration(seq) * time.Minute)
		e, _, err := s.Admit(cache.DiskEntry{Doc: cache.Document{URL: url, Size: 512}, LastHit: now},
			bytes.NewReader(make([]byte, 512)), now)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := mk("http://dup/a", 0)
	b := mk("http://dup/b", 1)
	if a.Sum != b.Sum {
		t.Fatalf("equal bodies, different sums")
	}
	path := blobPath(dir, a.Sum)
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 1024 {
		t.Fatalf("logical used = %d, want 1024", s.Used())
	}
	s.Remove("http://dup/a")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("shared file unlinked while referenced: %v", err)
	}
	if _, _, err := readAll(t, s, "http://dup/b"); err != nil {
		t.Fatalf("surviving reference unreadable: %v", err)
	}
	s.Remove("http://dup/b")
	if _, err := os.Stat(path); err == nil {
		t.Fatalf("file survived last dereference")
	}
}

// TestLRUEvictionOrder: filling past capacity evicts least-recently-hit
// first and folds the ages into the tracker.
func TestLRUEvictionOrder(t *testing.T) {
	s := openStore(t, t.TempDir(), 1000)
	defer s.Close()
	if got := s.ExpirationAge(t0()); got != cache.NoContention {
		t.Fatalf("fresh tier age = %v, want NoContention", got)
	}
	for i := 0; i < 4; i++ { // 4 x 250 fills exactly
		admit(t, s, fmt.Sprintf("http://lru/%d", i), 250, i)
	}
	now := t0().Add(time.Hour)
	_, evicted, err := s.Admit(cache.DiskEntry{Doc: cache.Document{URL: "http://lru/new", Size: 400}, LastHit: now},
		bytes.NewReader(make([]byte, 400)), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 2 {
		t.Fatalf("evicted %d, want 2", len(evicted))
	}
	if evicted[0].Entry.Doc.URL != "http://lru/0" || evicted[1].Entry.Doc.URL != "http://lru/1" {
		t.Fatalf("eviction order %q, %q", evicted[0].Entry.Doc.URL, evicted[1].Entry.Doc.URL)
	}
	if wantAge := now.Sub(t0()); evicted[0].Age != wantAge {
		t.Fatalf("age = %v, want %v", evicted[0].Age, wantAge)
	}
	if got := s.ExpirationAge(now); got == cache.NoContention || got <= 0 {
		t.Fatalf("post-eviction age = %v", got)
	}
	if s.Evictions() != 2 {
		t.Fatalf("evictions = %d", s.Evictions())
	}
}

// TestWarmRestart: a clean close and reopen recovers every entry and the
// LRU order without re-reading bodies.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 1<<20)
	want := make(map[string]cache.DiskEntry)
	for i := 0; i < 20; i++ {
		url := fmt.Sprintf("http://warm/%d", i)
		want[url] = admit(t, s, url, int64(64+i), i)
	}
	s.Remove("http://warm/3")
	delete(want, "http://warm/3")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, 1<<20)
	defer s2.Close()
	rep := s2.Report()
	if rep.Entries != len(want) || rep.LostBlobs != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("report = %+v", rep)
	}
	for url, e := range want {
		got, ok := s2.Peek(url)
		if !ok || got != e {
			t.Fatalf("%s: %+v, want %+v", url, got, e)
		}
	}
	if v := s2.VerifyAll(); v.Failed != 0 || v.Verified != len(want) {
		t.Fatalf("verify = %+v", v)
	}
	// Oldest LastHit must still be the first victim.
	now := t0().Add(24 * time.Hour)
	_, evicted, err := s2.Admit(cache.DiskEntry{Doc: cache.Document{URL: "http://warm/huge", Size: 1 << 20}, LastHit: now},
		bytes.NewReader(make([]byte, 1<<20)), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) == 0 || evicted[0].Entry.Doc.URL != "http://warm/0" {
		t.Fatalf("post-restart victim = %+v", evicted)
	}
}

// TestChecksumFailure: corrupting a blob file makes the read fail, drops
// the entry and counts the failure.
func TestChecksumFailure(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 1<<20)
	defer s.Close()
	e := admit(t, s, "http://bad/x", 512, 0)
	path := blobPath(dir, e.Sum)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[100] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = readAll(t, s, "http://bad/x")
	if err != ErrChecksum {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if s.Contains("http://bad/x") {
		t.Fatalf("corrupt entry still resident")
	}
	if s.ChecksumFailures() != 1 {
		t.Fatalf("failures = %d", s.ChecksumFailures())
	}
	// A truncated blob also fails.
	e2 := admit(t, s, "http://bad/y", 512, 1)
	if err := os.Truncate(blobPath(dir, e2.Sum), 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readAll(t, s, "http://bad/y"); err != ErrChecksum {
		t.Fatalf("truncated read err = %v", err)
	}
	if v := s.VerifyAll(); v.Failed != 0 {
		t.Fatalf("dropped entries still failing: %+v", v)
	}
}

// TestCompaction: churn enough put/del garbage to trigger a runtime
// compaction, then prove the rewritten log replays to the same state.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 1<<20)
	for round := 0; round < 700; round++ {
		url := fmt.Sprintf("http://churn/%d", round%7)
		admit(t, s, url, 128, round)
		if round%3 == 0 {
			s.Remove(url)
		}
	}
	live := s.Len()
	urls := s.URLs()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted log must be near-minimal: one frame per live entry
	// plus whatever churn followed the last compaction.
	raw, err := os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, damage := ReplayIndex(raw)
	if damage != nil {
		t.Fatal(damage)
	}
	if len(recs) >= 700 {
		t.Fatalf("log never compacted: %d records", len(recs))
	}
	s2 := openStore(t, dir, 1<<20)
	defer s2.Close()
	if s2.Len() != live {
		t.Fatalf("recovered %d entries, want %d", s2.Len(), live)
	}
	for _, u := range urls {
		if !s2.Contains(u) {
			t.Fatalf("lost %s across compaction", u)
		}
	}
}

// TestKillAtEveryOffsetIndex is the blob-index twin of the persist
// suite's TestKillMidWrite: the index log is truncated at every frame
// boundary and at random intra-frame offsets — the torn write of a node
// killed mid-append — and recovery must come up clean with a verifiable
// subset of the full residency, then keep accepting writes.
func TestKillAtEveryOffsetIndex(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 1<<20)
	var expect []IndexRecord
	for round := 0; round < 30; round++ {
		url := fmt.Sprintf("http://kill/%d", round%9)
		admit(t, s, url, int64(64+round%5*32), round)
		if round%4 == 3 {
			s.Remove(url)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}
	expect, _, damage := ReplayIndex(full)
	if damage != nil {
		t.Fatalf("clean index damaged: %v", damage)
	}

	// Cut points: every frame boundary, plus random mid-frame offsets.
	cuts := map[int]bool{0: true, len(full): true}
	off := 0
	for _, r := range expect {
		off += len(marshalIndexRecord(r))
		cuts[off] = true
		if off > 0 {
			cuts[off-1] = true
		}
	}
	rng := dist.NewRNG(7)
	for i := 0; i < 40; i++ {
		cuts[rng.Intn(len(full)+1)] = true
	}

	for cut := range cuts {
		sub := t.TempDir()
		linkBlobTree(t, dir, sub)
		if err := os.WriteFile(filepath.Join(sub, "index.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The recovered residency must be exactly the fold of the
		// committed prefix, minus entries whose blob file was already
		// unlinked before the crash (a replaced body's old sum): the
		// runtime unlink legitimately loses them, and recovery must
		// count — not resurrect — them.
		wantFold := make(map[string]cache.DiskEntry)
		woff := 0
		for _, r := range expect {
			frame := marshalIndexRecord(r)
			if woff+len(frame) > cut {
				break
			}
			woff += len(frame)
			if r.Del {
				delete(wantFold, r.Entry.Doc.URL)
			} else {
				wantFold[r.Entry.Doc.URL] = r.Entry
			}
		}
		for url, e := range wantFold {
			fi, err := os.Stat(filepath.Join(sub, "blobs", fmt.Sprintf("%x", e.Sum)[:2], fmt.Sprintf("%x", e.Sum)))
			if err != nil || fi.Size() != e.Doc.Size {
				delete(wantFold, url)
			}
		}
		s2 := openStore(t, sub, 1<<20)
		if s2.Len() != len(wantFold) {
			t.Fatalf("cut %d: recovered %d entries, want %d", cut, s2.Len(), len(wantFold))
		}
		for url, e := range wantFold {
			got, ok := s2.Peek(url)
			if !ok || got != e {
				t.Fatalf("cut %d: %s = %+v, want %+v", cut, url, got, e)
			}
		}
		if v := s2.VerifyAll(); v.Failed != 0 {
			t.Fatalf("cut %d: checksum failures after recovery: %+v", cut, v)
		}
		// The reopened index must accept writes and survive another
		// restart.
		now := t0().Add(48 * time.Hour)
		if _, _, err := s2.Admit(cache.DiskEntry{Doc: cache.Document{URL: "http://kill/post", Size: 64}, LastHit: now},
			bytes.NewReader(body("http://kill/post", 64)), now); err != nil {
			t.Fatalf("cut %d: post-crash admit: %v", cut, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		s3 := openStore(t, sub, 1<<20)
		if !s3.Contains("http://kill/post") {
			t.Fatalf("cut %d: post-crash admit lost", cut)
		}
		s3.Close()
	}
}

// linkBlobTree hardlinks src's blobs/ fan-out into dst (cheap per-trial
// copies for the chaos loop).
func linkBlobTree(t *testing.T, src, dst string) {
	t.Helper()
	root := filepath.Join(src, "blobs")
	dirs, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		out := filepath.Join(dst, "blobs", d.Name())
		if err := os.MkdirAll(out, 0o755); err != nil {
			t.Fatal(err)
		}
		files, err := os.ReadDir(filepath.Join(root, d.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if err := os.Link(filepath.Join(root, d.Name(), f.Name()), filepath.Join(out, f.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestOpenValidation covers the config error paths.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Capacity: 1}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Capacity: 1, ExpirationWindow: 4, ExpirationHorizon: time.Hour}); err == nil {
		t.Fatal("window+horizon accepted")
	}
}

// TestClosedStoreIsInert: operations after Close are no-ops, as the tier
// contract requires (a promotion finishing during shutdown).
func TestClosedStoreIsInert(t *testing.T) {
	s := openStore(t, t.TempDir(), 1<<20)
	admit(t, s, "http://closed/x", 64, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Remove("http://closed/x"); ok {
		t.Fatal("Remove after Close succeeded")
	}
	if _, _, ok := s.Open("http://closed/x"); ok {
		t.Fatal("Open after Close succeeded")
	}
	if _, _, err := s.Admit(cache.DiskEntry{Doc: cache.Document{URL: "http://closed/y", Size: 1}},
		bytes.NewReader([]byte{0}), t0()); err != ErrClosed {
		t.Fatalf("Admit after Close: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
