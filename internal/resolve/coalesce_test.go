package resolve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/metrics"
)

// lockedStore is a concurrency-safe LocalStore for the coalescing tests
// (the plain fakeStore is single-threaded by design).
type lockedStore struct {
	mu   sync.Mutex
	docs map[string]cache.Document
}

func newLockedStore() *lockedStore {
	return &lockedStore{docs: map[string]cache.Document{}}
}

func (s *lockedStore) Lookup(_ any, url string, _ time.Time) (cache.Document, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.docs[url]
	return doc, ok
}

func (s *lockedStore) ExpirationAge(time.Time) time.Duration { return cache.NoContention }

func (s *lockedStore) StoreCopy(doc cache.Document, _ time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[doc.URL] = doc
	return true
}

// herdTransport is an origin-only transport that counts every fetch,
// fails the first failFirst of them, and blocks the i-th fetch on
// gates[i] (when present) so tests can hold an epoch's leader inside the
// origin until the rest of the herd is parked behind it.
type herdTransport struct {
	gates     []chan struct{}
	failFirst int32
	calls     atomic.Int32
}

func (t *herdTransport) FetchRemote(any, Candidate, string, int64, time.Duration, bool, time.Time) (Remote, FetchStatus) {
	return Remote{}, FetchFailed
}
func (t *herdTransport) ParentID() (string, bool) { return "", false }
func (t *herdTransport) FetchParent(any, string, int64, time.Duration, time.Time) (Remote, error) {
	return Remote{}, errors.New("no parent")
}
func (t *herdTransport) HasOrigin() bool { return true }

func (t *herdTransport) FetchOrigin(_ any, url string, sizeHint int64, _ time.Duration, _ time.Time) (cache.Document, error) {
	n := t.calls.Add(1)
	if int(n) <= len(t.gates) && t.gates[n-1] != nil {
		<-t.gates[n-1]
	}
	if n <= t.failFirst {
		return cache.Document{}, errors.New("origin overloaded")
	}
	return cache.Document{URL: url, Size: sizeHint}, nil
}

// herdEngine builds an engine with coalescing on and follower/election
// counters wired like the live node's.
func herdEngine(tr *herdTransport) (*Engine, *atomic.Int32, *atomic.Int32, *atomic.Int32) {
	var followers, elections, retries atomic.Int32
	co := NewCoalescer()
	co.OnFollower = func(string) { followers.Add(1) }
	co.OnElect = func(_ string, retry bool) {
		elections.Add(1)
		if retry {
			retries.Add(1)
		}
	}
	e := &Engine{
		ID:        "test herd",
		Store:     newLockedStore(),
		Scheme:    core.AdHoc{},
		Transport: tr,
		Coalescer: co,
	}
	return e, &followers, &elections, &retries
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition not reached before deadline")
}

// TestCoalesceCollapsesConcurrentMisses is the herd scenario at engine
// level: 64 concurrent misses for one URL produce exactly one origin
// fetch. The origin is gated until every follower has joined the flight,
// so the count is deterministic, not a scheduling accident.
func TestCoalesceCollapsesConcurrentMisses(t *testing.T) {
	const herd = 64
	gate := make(chan struct{})
	tr := &herdTransport{gates: []chan struct{}{gate}}
	e, followers, elections, retries := herdEngine(tr)

	var wg sync.WaitGroup
	results := make([]Result, herd)
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Resolve(nil, "http://hot/doc", 4096, at(0))
		}(i)
	}
	// One leader is inside the gated origin fetch; release it only once
	// the other 63 are all parked on its flight.
	waitFor(t, func() bool { return followers.Load() == herd-1 })
	close(gate)
	wg.Wait()

	if got := tr.calls.Load(); got != 1 {
		t.Fatalf("origin fetches = %d, want exactly 1", got)
	}
	leaders, coalesced := 0, 0
	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i].Outcome != metrics.Miss || results[i].Doc.Size != 4096 {
			t.Fatalf("request %d result = %+v", i, results[i])
		}
		if results[i].Coalesced {
			coalesced++
		} else {
			leaders++
		}
	}
	if leaders != 1 || coalesced != herd-1 {
		t.Fatalf("leaders=%d coalesced=%d, want 1/%d", leaders, coalesced, herd-1)
	}
	if elections.Load() != 1 || retries.Load() != 0 {
		t.Fatalf("elections=%d retries=%d", elections.Load(), retries.Load())
	}
}

// TestCoalesceLeaderFailureElectsOneRetry: the leader's fetch fails with
// a full herd parked behind it. The failure must not restampede — the
// woken followers elect exactly one new leader, whose single fetch
// serves everyone else.
func TestCoalesceLeaderFailureElectsOneRetry(t *testing.T) {
	const herd = 32
	g1, g2 := make(chan struct{}), make(chan struct{})
	tr := &herdTransport{gates: []chan struct{}{g1, g2}, failFirst: 1}
	e, followers, _, retries := herdEngine(tr)

	var wg sync.WaitGroup
	var failed, led, coalesced atomic.Int32
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Resolve(nil, "http://hot/doc", 512, at(0))
			switch {
			case err != nil:
				failed.Add(1)
			case res.Coalesced:
				coalesced.Add(1)
			default:
				led.Add(1)
			}
		}()
	}
	// Hold the doomed first fetch until the whole herd is parked, then
	// let it fail; hold the retry fetch until every woken follower has
	// re-joined behind the new leader, so exactly one retry epoch exists.
	waitFor(t, func() bool { return followers.Load() == herd-1 })
	close(g1)
	waitFor(t, func() bool { return followers.Load() == 2*herd-3 })
	close(g2)
	wg.Wait()

	// The first leader's caller sees the error (its fetch genuinely
	// failed); everyone who waited is served by the one retry epoch.
	if failed.Load() != 1 || led.Load() != 1 || coalesced.Load() != herd-2 {
		t.Fatalf("failed=%d led=%d coalesced=%d, want 1/1/%d",
			failed.Load(), led.Load(), coalesced.Load(), herd-2)
	}
	if got := tr.calls.Load(); got != 2 {
		t.Fatalf("origin fetches = %d, want 2 (failed epoch + retry epoch)", got)
	}
	if retries.Load() != 1 {
		t.Fatalf("retry elections = %d, want 1", retries.Load())
	}
}

// TestCoalesceBoundedRetryPropagatesError: when the retry epoch fails
// too, followers give up with the error instead of electing a third
// leader — the retry budget is one.
func TestCoalesceBoundedRetryPropagatesError(t *testing.T) {
	g1 := make(chan struct{})
	tr := &herdTransport{gates: []chan struct{}{g1}, failFirst: 1 << 30}
	e, followers, _, _ := herdEngine(tr)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Resolve(nil, "http://hot/doc", 512, at(0))
		}(i)
	}
	waitFor(t, func() bool { return followers.Load() == 1 })
	close(g1)
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d succeeded against an always-failing origin", i)
		}
	}
	if got := tr.calls.Load(); got != 2 {
		t.Fatalf("origin fetches = %d, want 2 (the follower's one bounded retry)", got)
	}
}

// TestCoalesceSerializedIsNoOp: requests that never overlap must behave
// exactly as without a Coalescer — no followers, no retry elections, no
// Coalesced results. This is the property the sim↔live parity gate
// relies on.
func TestCoalesceSerializedIsNoOp(t *testing.T) {
	tr := &herdTransport{}
	e, followers, elections, retries := herdEngine(tr)

	res, err := e.Resolve(nil, "http://a/", 100, at(0))
	if err != nil || res.Outcome != metrics.Miss || res.Coalesced {
		t.Fatalf("first request: res=%+v err=%v", res, err)
	}
	res, err = e.Resolve(nil, "http://a/", 100, at(1))
	if err != nil || res.Outcome != metrics.LocalHit || res.Coalesced {
		t.Fatalf("second request: res=%+v err=%v", res, err)
	}
	res, err = e.Resolve(nil, "http://b/", 100, at(2))
	if err != nil || res.Outcome != metrics.Miss || res.Coalesced {
		t.Fatalf("third request: res=%+v err=%v", res, err)
	}
	if followers.Load() != 0 || retries.Load() != 0 {
		t.Fatalf("followers=%d retries=%d, want single-flight no-op", followers.Load(), retries.Load())
	}
	if elections.Load() != 2 {
		t.Fatalf("elections=%d, want one per serialized miss", elections.Load())
	}
}
