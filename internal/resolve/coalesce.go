package resolve

// Single-flight request coalescing: the engine's defence against the
// thundering herd. Under Zipf-skewed traffic a popular document expiring
// (or being evicted) triggers N simultaneous misses for one URL; without
// coalescing every one of them runs the full miss path — N ICP fan-outs,
// N origin fetches — which is exactly the uncoordinated-fetch overload
// the cooperative-caching literature warns about. With a Coalescer
// configured, concurrent misses for one URL collapse into a single
// leader resolution: the first requester in becomes the leader and runs
// the lifecycle (locate → remote fetch → parent/origin), every other
// requester becomes a follower that blocks on the leader's flight and
// shares its body and EA placement decision verbatim.
//
// Leader failure must not restampede: when the leader's resolution
// errors, its followers wake with the error and each performs exactly
// one bounded retry by re-joining the flight table — one of them is
// elected the new leader for the retry epoch, the rest coalesce behind
// it again. A second failed epoch propagates the error to everyone.
// Each request therefore participates in at most two epochs, and each
// epoch sends exactly one resolution upstream, however many requesters
// are piled up behind it.

import (
	"sync"
	"time"

	"eacache/internal/metrics"
)

// Coalescer is the engine's single-flight table, keyed by URL. The zero
// value is not usable; construct with NewCoalescer. One Coalescer serves
// one Engine; all methods are safe for concurrent use.
type Coalescer struct {
	// OnFollower, when set, observes each request that joined an
	// existing flight instead of resolving for itself. Called without
	// internal locks held; must be safe for concurrent use.
	OnFollower func(url string)
	// OnElect, when set, observes each leader election. retry is true
	// when the new leader replaces one whose resolution failed (a
	// follower's bounded retry), false for the first epoch of a flight.
	OnElect func(url string, retry bool)

	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one leader epoch for one URL. The leader publishes res/err
// and closes done exactly once; followers only ever read after <-done.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// NewCoalescer returns an empty single-flight table.
func NewCoalescer() *Coalescer {
	return &Coalescer{flights: make(map[string]*flight)}
}

// join returns the current flight for url, electing the caller leader
// when none is in progress. retry marks the join as a follower's
// post-failure retry, forwarded to OnElect.
func (c *Coalescer) join(url string, retry bool) (*flight, bool) {
	c.mu.Lock()
	if f, ok := c.flights[url]; ok {
		c.mu.Unlock()
		if c.OnFollower != nil {
			c.OnFollower(url)
		}
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.flights[url] = f
	c.mu.Unlock()
	if c.OnElect != nil {
		c.OnElect(url, retry)
	}
	return f, true
}

// finish publishes the leader's outcome and retires the flight. The
// table entry is removed before done is closed, so a follower that wakes
// to a failure and re-joins can only land on a fresh epoch, never on the
// dead one.
func (c *Coalescer) finish(url string, f *flight, res Result, err error) {
	c.mu.Lock()
	if c.flights[url] == f {
		delete(c.flights, url)
	}
	c.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// resolveCoalesced is the single-flight wrapper around the miss-path
// lifecycle: lead it, or follow the requester that already is.
func (e *Engine) resolveCoalesced(rctx any, hooks Hooks, url string, sizeHint int64, now time.Time) (Result, error) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// This is a follower's bounded retry after a leader failure.
			// A sibling's retry epoch may already have succeeded and
			// stored the document while this goroutine was waking up;
			// serve it locally rather than electing yet another leader.
			if doc, ok := e.Store.Lookup(rctx, url, now); ok {
				hooks.OnLocalHit(rctx, url, now)
				return Result{Outcome: metrics.LocalHit, Doc: doc, Coalesced: true}, nil
			}
		}
		f, leader := e.Coalescer.join(url, attempt > 0)
		if leader {
			res, err := e.resolveMissPath(rctx, hooks, url, sizeHint, now)
			e.Coalescer.finish(url, f, res, err)
			return res, err
		}
		<-f.done
		if f.err == nil {
			// Share the leader's body and placement decision. The copy
			// (if the scheme kept one) is already in the local store —
			// the leader stored it before retiring the flight — so the
			// follower serves the leader's document directly.
			res := f.res
			res.Coalesced = true
			return res, nil
		}
		if attempt > 0 {
			// Both the original leader and the retry epoch failed:
			// propagate rather than stampede.
			return Result{}, f.err
		}
		// Leader failed. The woken followers race to re-join: exactly
		// one is elected the retry epoch's leader, the rest coalesce
		// behind it — one more upstream attempt total, not N.
	}
}
