package resolve

import (
	"time"

	"eacache/internal/chash"
)

// HashLocator routes every URL to its consistent-hash home node over a
// chash.Ring, walking the ring's ownership chain past members the
// Candidate callback rejects (unknown addresses, breaker-open peers).
// Both stacks build one — the simulator over proxy IDs, the live node
// over peer names — so sim experiments and live nodes provably route
// URLs to the same homes when the member names match.
//
// The chain semantics: the first alive owner before this node is the
// candidate (home, or acting home while the real one is dead); reaching
// this node itself with no candidate found means this node IS the
// (acting) home and must keep the copy it fetches. Requests served by a
// remote home are never stored locally (PlacementNever) — the group
// holds at most one copy of each document.
// A HashLocator is immutable: elastic membership rebinds the engine to a
// new topology by building a fresh locator over the rebuilt ring and
// swapping it in atomically (the live node keeps it behind an
// atomic.Pointer), stamped with the membership epoch that produced it. A
// request therefore sees one consistent (ring, epoch) pair end to end,
// never a half-updated topology.
type HashLocator struct {
	// Ring is the group's membership ring. Required.
	Ring *chash.Ring
	// Self is this node's own ring member name. Required.
	Self string
	// Epoch identifies the membership revision this locator was built
	// from; every topology change publishes a new locator with a higher
	// epoch. Purely observational (traces, debugging) — the swap itself
	// is what rebinds the engine.
	Epoch int64
	// Fingerprint is Ring.Fingerprint() at build time, cached so the hot
	// path can stamp resolve requests without re-hashing the member set.
	Fingerprint uint64
	// Candidate maps a ring member name to a fetchable Candidate;
	// returning false skips the member (not dialable, breaker open).
	// Self is never passed to it.
	Candidate func(member string) (Candidate, bool)
}

var _ Locator = (*HashLocator)(nil)

// Locate implements Locator.
func (h *HashLocator) Locate(_ any, url string, _ time.Time) Located {
	if h == nil || h.Ring == nil || h.Ring.Len() == 0 {
		// No ring: this node is home for everything.
		return Located{Placement: PlacementAlways}
	}
	var cands []Candidate
	for _, member := range h.Ring.Owners(url, h.Ring.Len()) {
		if member == h.Self {
			if len(cands) == 0 {
				// Every owner before us is dead (or we are the home):
				// act as the home node and keep what we fetch.
				return Located{Placement: PlacementAlways}
			}
			// A live remote owner precedes us; it ends the chain.
			break
		}
		if c, ok := h.Candidate(member); ok {
			cands = append(cands, c)
		}
	}
	return Located{Candidates: cands, Resolve: true, Placement: PlacementNever}
}
