// Package resolve is the transport-agnostic request engine of the
// cooperative cache: it owns the canonical request lifecycle — local
// lookup, group location through a pluggable Locator, remote-hit fetch
// with the requester/responder placement decision, retry across
// responders, and the parent/origin miss paths — parameterized over
// narrow LocalStore and Transport interfaces.
//
// Both execution stacks drive this one engine: the deterministic
// in-process simulator (internal/proxy, simulated clock and latency
// model) and the live networked node (internal/netnode, real sockets,
// health tracking, persistence, telemetry). The paper's contribution is
// the placement decision; keeping the surrounding lifecycle in exactly
// one place is what makes the sim↔live parity test (internal/parity) a
// meaningful regression gate.
package resolve

import (
	"errors"
	"fmt"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/metrics"
)

// Candidate is one group member believed to hold (or to be responsible
// for) a document. ID is the member's name on its stack — a proxy ID in
// the simulator, a fetch (TCP) address on the live node. Ref optionally
// carries the transport's handle for the member (e.g. the *proxy.Proxy
// itself in-process), so Transport.FetchRemote does not need a lookup.
type Candidate struct {
	ID  string
	Ref any
}

// Placement overrides the scheme-driven store decision for location
// mechanisms whose placement is structural rather than negotiated.
type Placement int

// Placement modes.
const (
	// PlacementScheme lets the configured core.Scheme decide, as ICP
	// and digest location do.
	PlacementScheme Placement = iota
	// PlacementNever forbids the requester from keeping a copy on any
	// path: under hash routing the document's home node owns the only
	// copy.
	PlacementNever
	// PlacementAlways forces a copy on the miss path: under hash
	// routing the requester IS the home node (or the acting home while
	// the real one is dead), so the fetched copy must land here.
	PlacementAlways
)

// Located is a Locator's answer for one URL.
type Located struct {
	// Candidates are the members to try, in preference order.
	Candidates []Candidate
	// Resolve asks the candidate to resolve a local miss itself (serve
	// from its cache or fetch upstream and report the body's source)
	// instead of answering not-found — hash routing's home-node
	// contract, the same exchange a hierarchical child has with its
	// parent.
	Resolve bool
	// Placement overrides the requester-side store rule.
	Placement Placement
}

// Locator is a document-location strategy: ICP fan-out, Summary-Cache
// digest consultation, or consistent-hash home routing. rctx is the
// caller's request context (the live node threads its *obs.Trace
// through it; the simulator passes nil) and is forwarded verbatim.
type Locator interface {
	Locate(rctx any, url string, now time.Time) Located
}

// LocalStore is the engine's view of the requester's own cache.
type LocalStore interface {
	// Lookup returns a servable (present and fresh) copy of url,
	// updating recency state on a hit.
	Lookup(rctx any, url string, now time.Time) (cache.Document, bool)
	// ExpirationAge is the cache's contention signal — the expiration
	// age piggybacked on every exchange (cache.NoContention when the
	// cache has no eviction evidence).
	ExpirationAge(now time.Time) time.Duration
	// StoreCopy stores doc, reporting whether it was kept (documents
	// over capacity are served but not stored).
	StoreCopy(doc cache.Document, now time.Time) bool
}

// FetchStatus classifies one remote fetch attempt.
type FetchStatus int

// Fetch statuses.
const (
	// FetchOK: the document was transferred.
	FetchOK FetchStatus = iota
	// FetchNotFound: the responder answered but does not hold (and
	// could not resolve) the document — a digest false hit or an
	// eviction race, never the responder's fault.
	FetchNotFound
	// FetchFailed: the transport broke mid-exchange — evidence against
	// the responder, and grounds for falling back to the miss path.
	FetchFailed
)

// Remote is a completed fetch from a group member.
type Remote struct {
	// Doc is the transferred document.
	Doc cache.Document
	// ResponderAge is the expiration age the responder piggybacked.
	ResponderAge time.Duration
	// FromGroup reports whether the body came from a cache (true) or
	// had to be resolved from the origin by the responder (false) — the
	// distinction between a remote hit and a miss served through a
	// parent or home node.
	FromGroup bool
}

// Transport performs the engine's remote operations. Implementations
// own their sockets (or in-process calls), their retry budgets below a
// single exchange, and their error wrapping; the engine returns
// Transport errors verbatim.
type Transport interface {
	// FetchRemote transfers url from candidate c, piggybacking reqAge.
	// resolve forwards Located.Resolve.
	FetchRemote(rctx any, c Candidate, url string, sizeHint int64, reqAge time.Duration, resolve bool, now time.Time) (Remote, FetchStatus)
	// ParentID returns the hierarchical parent's name and whether one
	// is configured.
	ParentID() (string, bool)
	// FetchParent resolves a group-wide miss through the parent.
	FetchParent(rctx any, url string, sizeHint int64, reqAge time.Duration, now time.Time) (Remote, error)
	// HasOrigin reports whether an origin is reachable. Transports that
	// surface "no origin" as a FetchOrigin error (the simulator, whose
	// error strings predate the engine) just return true.
	HasOrigin() bool
	// FetchOrigin resolves a group-wide miss against the origin.
	FetchOrigin(rctx any, url string, sizeHint int64, reqAge time.Duration, now time.Time) (cache.Document, error)
}

// Hooks observes the lifecycle's decision points: the simulator maps
// them to placement trace events and ICP statistics, the live node to
// telemetry spans, the placement-decision audit log, and robustness
// counters. store is the scheme's verdict, stored whether a copy was
// actually kept (a too-large document is accepted by the scheme but not
// stored); size is the transferred document's size — the feasibility
// input of the placement decision, recorded in the audit log. A nil
// Hooks is valid and observes nothing.
type Hooks interface {
	OnLocalHit(rctx any, url string, now time.Time)
	// OnRetry fires before each candidate after the first.
	OnRetry(rctx any)
	// OnFalseHit fires when a candidate answered not-found.
	OnFalseHit(rctx any, c Candidate, url string)
	OnRemoteHit(rctx any, c Candidate, url string, size int64, reqAge, respAge time.Duration, store, stored, promoted bool, now time.Time)
	// OnFallback fires when every candidate fetch failed (transport
	// errors, not not-founds) and the request degrades to the miss path.
	OnFallback(rctx any)
	// OnParentDegrade fires when the parent path failed and the engine
	// is retrying against the origin (DegradeToOrigin).
	OnParentDegrade(rctx any, url string, err error)
	OnParentFetch(rctx any, parentID, url string, size int64, reqAge, parentAge time.Duration, fromGroup, store, stored bool, now time.Time)
	OnOriginFetch(rctx any, url string, size int64, reqAge time.Duration, store, stored bool, now time.Time)
}

// nopHooks is the nil-Hooks stand-in, so the engine body never
// nil-checks at each call site.
type nopHooks struct{}

func (nopHooks) OnLocalHit(any, string, time.Time) {}
func (nopHooks) OnRetry(any)                       {}
func (nopHooks) OnFalseHit(any, Candidate, string) {}
func (nopHooks) OnRemoteHit(any, Candidate, string, int64, time.Duration, time.Duration, bool, bool, bool, time.Time) {
}
func (nopHooks) OnFallback(any)                     {}
func (nopHooks) OnParentDegrade(any, string, error) {}
func (nopHooks) OnParentFetch(any, string, string, int64, time.Duration, time.Duration, bool, bool, bool, time.Time) {
}
func (nopHooks) OnOriginFetch(any, string, int64, time.Duration, bool, bool, time.Time) {}

// Result describes how one request was served.
type Result struct {
	// Outcome classifies the request (local hit, remote hit, miss).
	Outcome metrics.Outcome
	// Doc is the served document.
	Doc cache.Document
	// Responder is the Candidate.ID (or parent ID) that supplied a
	// group-served body, or "" for local hits and origin misses.
	Responder string
	// Stored reports whether the requester kept a local copy.
	Stored bool
	// Promoted reports whether the responder refreshed its copy
	// instead (the scheme's responder-side rule).
	Promoted bool
	// Coalesced reports that this request was served as a single-flight
	// follower: a concurrent resolution of the same URL led the fetch
	// and this request shared its body and placement decision (the
	// Stored/Promoted fields are the leader's).
	Coalesced bool
}

// Engine runs the canonical request lifecycle. Configure one per node;
// Resolve is safe for concurrent use iff the injected dependencies are.
type Engine struct {
	// ID prefixes engine-originated errors ("netnode n1", "proxy cache-0").
	ID string
	// Store is the requester's cache. Required.
	Store LocalStore
	// Scheme is the placement scheme. Required.
	Scheme core.Scheme
	// Locator finds group copies; nil skips group location entirely.
	Locator Locator
	// Transport performs remote fetches. Required.
	Transport Transport
	// Hooks observes decision points; nil observes nothing.
	Hooks Hooks
	// Coalescer, when set, collapses concurrent misses for one URL into
	// a single leader resolution (single-flight, see coalesce.go). Nil
	// disables coalescing; serialized request streams behave
	// identically either way, which the sim↔live parity gate checks.
	Coalescer *Coalescer
	// DegradeToOrigin sends a failed parent resolution to the origin
	// (when one is reachable) instead of failing the request — the live
	// node's availability posture. The simulator keeps false: a parent
	// failure there is a configuration bug that must surface.
	DegradeToOrigin bool
}

// Resolve serves one request at time now: local lookup, group location
// and remote fetch with the scheme's (or the Placement override's)
// store/promote decisions, then the parent/origin miss path.
func (e *Engine) Resolve(rctx any, url string, sizeHint int64, now time.Time) (Result, error) {
	if url == "" {
		return Result{}, errors.New("resolve: empty URL")
	}
	hooks := e.Hooks
	if hooks == nil {
		hooks = nopHooks{}
	}

	// 1. Local cache.
	if doc, ok := e.Store.Lookup(rctx, url, now); ok {
		hooks.OnLocalHit(rctx, url, now)
		return Result{Outcome: metrics.LocalHit, Doc: doc}, nil
	}

	// Everything below the local lookup is the miss path, and under a
	// Coalescer it runs single-flight: one leader per URL, followers
	// share the leader's result.
	if e.Coalescer != nil {
		return e.resolveCoalesced(rctx, hooks, url, sizeHint, now)
	}
	return e.resolveMissPath(rctx, hooks, url, sizeHint, now)
}

// resolveMissPath is the lifecycle below a local miss: group location
// and remote fetch with the scheme's (or the Placement override's)
// store/promote decisions, then the parent/origin miss path.
func (e *Engine) resolveMissPath(rctx any, hooks Hooks, url string, sizeHint int64, now time.Time) (Result, error) {
	// The requester's expiration age rides on every remote exchange
	// from here on. It is a pure read; nothing below mutates the local
	// store before the placement decision.
	reqAge := e.Store.ExpirationAge(now)

	// 2. Locate the document in the group and fetch from the first
	// candidate that actually delivers, retrying across the rest.
	var loc Located
	if e.Locator != nil {
		loc = e.Locator.Locate(rctx, url, now)
	}
	failed := false
	for i, c := range loc.Candidates {
		if i > 0 {
			hooks.OnRetry(rctx)
		}
		rem, status := e.Transport.FetchRemote(rctx, c, url, sizeHint, reqAge, loc.Resolve, now)
		switch status {
		case FetchOK:
			return e.remoteHit(rctx, hooks, c, url, loc.Placement, rem, reqAge, now), nil
		case FetchNotFound:
			hooks.OnFalseHit(rctx, c, url)
		default: // FetchFailed
			failed = true
		}
	}
	if failed {
		// Every copy holder broke mid-exchange: degrade to the miss
		// path rather than failing the request.
		hooks.OnFallback(rctx)
	}

	// 3. Group-wide miss.
	return e.resolveMiss(rctx, hooks, url, sizeHint, reqAge, loc.Placement, now)
}

// remoteHit applies the requester-side rule to a completed group fetch.
func (e *Engine) remoteHit(rctx any, hooks Hooks, c Candidate, url string, placement Placement, rem Remote, reqAge time.Duration, now time.Time) Result {
	res := Result{Outcome: metrics.RemoteHit, Doc: rem.Doc, Responder: c.ID}
	if placement == PlacementNever {
		// Hash routing: the home node owns placement outright. The
		// body's source decides the outcome — a cache body is a group
		// hit, an origin-resolved body is a miss served through the
		// home.
		if !rem.FromGroup {
			res.Outcome = metrics.Miss
		}
		hooks.OnRemoteHit(rctx, c, url, rem.Doc.Size, reqAge, rem.ResponderAge, false, false, false, now)
		return res
	}
	decision := e.Scheme.OnRemoteHit(reqAge, rem.ResponderAge)
	if decision.StoreAtRequester {
		res.Stored = e.Store.StoreCopy(rem.Doc, now)
	}
	res.Promoted = decision.PromoteAtResponder
	hooks.OnRemoteHit(rctx, c, url, rem.Doc.Size, reqAge, rem.ResponderAge,
		decision.StoreAtRequester, res.Stored, res.Promoted, now)
	return res
}

// resolveMiss is the group-wide miss path: through the parent when one
// is configured (§3.3), otherwise straight from the origin, with the
// scheme's (or the Placement override's) store rule at the requester.
func (e *Engine) resolveMiss(rctx any, hooks Hooks, url string, sizeHint int64, reqAge time.Duration, placement Placement, now time.Time) (Result, error) {
	if pid, ok := e.Transport.ParentID(); ok {
		rem, err := e.Transport.FetchParent(rctx, url, sizeHint, reqAge, now)
		if err == nil {
			res := Result{Outcome: metrics.Miss, Doc: rem.Doc}
			var store bool
			if rem.FromGroup {
				// Some cache up the hierarchy held it: a group hit,
				// judged by the remote-hit rule against the age the
				// parent piggybacked.
				res.Outcome = metrics.RemoteHit
				res.Responder = pid
				store = e.Scheme.OnRemoteHit(reqAge, rem.ResponderAge).StoreAtRequester
			} else {
				// The parent went to the origin: the miss rule, which
				// guarantees the fresh copy lands somewhere.
				store = e.Scheme.OnMissViaParent(reqAge, rem.ResponderAge)
			}
			store = placement.apply(store)
			if store {
				res.Stored = e.Store.StoreCopy(rem.Doc, now)
			}
			hooks.OnParentFetch(rctx, pid, url, rem.Doc.Size, reqAge, rem.ResponderAge, rem.FromGroup, store, res.Stored, now)
			return res, nil
		}
		if !e.DegradeToOrigin || !e.Transport.HasOrigin() {
			return Result{}, err
		}
		hooks.OnParentDegrade(rctx, url, err)
	}

	if !e.Transport.HasOrigin() {
		return Result{}, fmt.Errorf("%s: miss for %s and no origin", e.ID, url)
	}
	doc, err := e.Transport.FetchOrigin(rctx, url, sizeHint, reqAge, now)
	if err != nil {
		return Result{}, err
	}
	res := Result{Outcome: metrics.Miss, Doc: doc}
	store := placement.apply(e.Scheme.OnOriginFetch(reqAge))
	if store {
		res.Stored = e.Store.StoreCopy(doc, now)
	}
	hooks.OnOriginFetch(rctx, url, doc.Size, reqAge, store, res.Stored, now)
	return res, nil
}

// apply overrides the scheme verdict where placement is structural.
func (p Placement) apply(store bool) bool {
	switch p {
	case PlacementNever:
		return false
	case PlacementAlways:
		return true
	default:
		return store
	}
}
