package resolve

import "fmt"

// Location selects the document-location mechanism a node uses to find
// a document in its neighbours' caches. It is the one shared enum for
// both stacks — the simulator (internal/proxy aliases it as
// proxy.Location) and the live node (internal/netnode) — and for the
// proxyd -locate flag.
type Location int

// Location mechanisms.
const (
	// LocateICP queries every neighbour with an ICP message on each
	// local miss — exact answers, O(neighbours) messages per miss. This
	// is the paper's setting.
	LocateICP Location = iota + 1
	// LocateDigest consults the neighbours' advertised Bloom-filter
	// summaries (Summary Cache) — no per-miss messages, but summaries go
	// stale between rebuilds: false hits cost a wasted fetch attempt,
	// stale entries cost missed remote hits.
	LocateDigest
	// LocateHash routes every URL to its consistent-hash home node
	// (Karger et al.) — no location messages at all and at most one
	// copy of each document group-wide, at the price of forfeiting
	// local hits for documents homed elsewhere.
	LocateHash
)

// String implements fmt.Stringer.
func (l Location) String() string {
	switch l {
	case LocateICP:
		return "icp"
	case LocateDigest:
		return "digest"
	case LocateHash:
		return "hash"
	default:
		return fmt.Sprintf("location(%d)", int(l))
	}
}

// ParseLocation parses a mechanism name as spelled on the proxyd
// -locate flag.
func ParseLocation(s string) (Location, error) {
	switch s {
	case "icp":
		return LocateICP, nil
	case "digest":
		return LocateDigest, nil
	case "hash":
		return LocateHash, nil
	default:
		return 0, fmt.Errorf(`unknown location mechanism %q (want "icp", "digest" or "hash")`, s)
	}
}
