package resolve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/chash"
	"eacache/internal/core"
	"eacache/internal/metrics"
)

func at(sec int) time.Time {
	return time.Date(1994, time.November, 15, 9, 0, sec, 0, time.UTC)
}

// fakeStore is a LocalStore over a plain map with a fixed expiration age.
type fakeStore struct {
	docs    map[string]cache.Document
	age     time.Duration
	tooBig  int64 // docs at least this large are rejected by StoreCopy
	lookups int
}

func newFakeStore(age time.Duration) *fakeStore {
	return &fakeStore{docs: map[string]cache.Document{}, age: age, tooBig: 1 << 40}
}

func (s *fakeStore) Lookup(_ any, url string, _ time.Time) (cache.Document, bool) {
	s.lookups++
	doc, ok := s.docs[url]
	return doc, ok
}

func (s *fakeStore) ExpirationAge(time.Time) time.Duration { return s.age }

func (s *fakeStore) StoreCopy(doc cache.Document, _ time.Time) bool {
	if doc.Size >= s.tooBig {
		return false
	}
	s.docs[doc.URL] = doc
	return true
}

// scripted answers for one candidate ID.
type answer struct {
	rem    Remote
	status FetchStatus
}

type fakeTransport struct {
	answers   map[string]answer
	parentID  string
	parent    Remote
	parentErr error
	origin    bool
	originErr error
	fetched   []string // candidate IDs tried, in order
	resolves  []bool   // the resolve flag of each FetchRemote
}

func (t *fakeTransport) FetchRemote(_ any, c Candidate, url string, _ int64, _ time.Duration, resolve bool, _ time.Time) (Remote, FetchStatus) {
	t.fetched = append(t.fetched, c.ID)
	t.resolves = append(t.resolves, resolve)
	a, ok := t.answers[c.ID]
	if !ok {
		return Remote{}, FetchFailed
	}
	if a.rem.Doc.URL == "" {
		a.rem.Doc.URL = url
	}
	return a.rem, a.status
}

func (t *fakeTransport) ParentID() (string, bool) { return t.parentID, t.parentID != "" }

func (t *fakeTransport) FetchParent(_ any, url string, _ int64, _ time.Duration, _ time.Time) (Remote, error) {
	if t.parentErr != nil {
		return Remote{}, t.parentErr
	}
	rem := t.parent
	if rem.Doc.URL == "" {
		rem.Doc.URL = url
	}
	return rem, nil
}

func (t *fakeTransport) HasOrigin() bool { return t.origin }

func (t *fakeTransport) FetchOrigin(_ any, url string, sizeHint int64, _ time.Duration, _ time.Time) (cache.Document, error) {
	if t.originErr != nil {
		return cache.Document{}, t.originErr
	}
	return cache.Document{URL: url, Size: sizeHint}, nil
}

// spyHooks counts every hook invocation.
type spyHooks struct {
	localHits, retries, falseHits, remoteHits     int
	fallbacks, degrades, parentFetches, originFns int
}

func (h *spyHooks) OnLocalHit(any, string, time.Time) { h.localHits++ }
func (h *spyHooks) OnRetry(any)                       { h.retries++ }
func (h *spyHooks) OnFalseHit(any, Candidate, string) { h.falseHits++ }
func (h *spyHooks) OnRemoteHit(any, Candidate, string, int64, time.Duration, time.Duration, bool, bool, bool, time.Time) {
	h.remoteHits++
}
func (h *spyHooks) OnFallback(any)                     { h.fallbacks++ }
func (h *spyHooks) OnParentDegrade(any, string, error) { h.degrades++ }
func (h *spyHooks) OnParentFetch(any, string, string, int64, time.Duration, time.Duration, bool, bool, bool, time.Time) {
	h.parentFetches++
}
func (h *spyHooks) OnOriginFetch(any, string, int64, time.Duration, bool, bool, time.Time) {
	h.originFns++
}

type fixedLocator struct{ loc Located }

func (l fixedLocator) Locate(any, string, time.Time) Located { return l.loc }

func newEngine(store *fakeStore, tr *fakeTransport, loc Located, hooks Hooks) *Engine {
	return &Engine{
		ID:        "test n0",
		Store:     store,
		Scheme:    core.EA{},
		Locator:   fixedLocator{loc},
		Transport: tr,
		Hooks:     hooks,
	}
}

func TestEmptyURL(t *testing.T) {
	e := newEngine(newFakeStore(0), &fakeTransport{origin: true}, Located{}, nil)
	if _, err := e.Resolve(nil, "", 1, at(0)); err == nil {
		t.Fatal("empty URL accepted")
	}
}

func TestLocalHit(t *testing.T) {
	store := newFakeStore(0)
	store.docs["http://a/"] = cache.Document{URL: "http://a/", Size: 7}
	hooks := &spyHooks{}
	e := newEngine(store, &fakeTransport{origin: true}, Located{}, hooks)
	res, err := e.Resolve(nil, "http://a/", 7, at(0))
	if err != nil || res.Outcome != metrics.LocalHit || res.Doc.Size != 7 {
		t.Fatalf("res=%+v err=%v, want local hit", res, err)
	}
	if hooks.localHits != 1 {
		t.Fatalf("localHits=%d", hooks.localHits)
	}
}

func TestRemoteHitStoresUnderEA(t *testing.T) {
	// Requester age 60s > responder age 10s: EA stores at requester.
	store := newFakeStore(time.Minute)
	tr := &fakeTransport{origin: true, answers: map[string]answer{
		"peer-1": {rem: Remote{Doc: cache.Document{Size: 5}, ResponderAge: 10 * time.Second, FromGroup: true}, status: FetchOK},
	}}
	hooks := &spyHooks{}
	e := newEngine(store, tr, Located{Candidates: []Candidate{{ID: "peer-1"}}}, hooks)
	res, err := e.Resolve(nil, "http://a/", 5, at(0))
	if err != nil || res.Outcome != metrics.RemoteHit || res.Responder != "peer-1" {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	// EA with reqAge < respAge stores at requester, does not promote.
	if !res.Stored || res.Promoted {
		t.Fatalf("placement = stored=%v promoted=%v", res.Stored, res.Promoted)
	}
	if _, ok := store.docs["http://a/"]; !ok {
		t.Fatal("copy not stored")
	}
	if hooks.remoteHits != 1 || hooks.retries != 0 {
		t.Fatalf("hooks=%+v", hooks)
	}
}

func TestRetryAcrossCandidatesThenFallback(t *testing.T) {
	store := newFakeStore(0)
	tr := &fakeTransport{origin: true, answers: map[string]answer{
		"dead-1": {status: FetchFailed},
		"dead-2": {status: FetchFailed},
	}}
	hooks := &spyHooks{}
	e := newEngine(store, tr, Located{Candidates: []Candidate{{ID: "dead-1"}, {ID: "dead-2"}}}, hooks)
	res, err := e.Resolve(nil, "http://a/", 9, at(0))
	if err != nil || res.Outcome != metrics.Miss {
		t.Fatalf("res=%+v err=%v, want origin miss", res, err)
	}
	if hooks.retries != 1 || hooks.fallbacks != 1 || hooks.originFns != 1 {
		t.Fatalf("hooks=%+v", hooks)
	}
	if len(tr.fetched) != 2 {
		t.Fatalf("fetched=%v", tr.fetched)
	}
}

func TestFalseHitContinues(t *testing.T) {
	store := newFakeStore(0)
	tr := &fakeTransport{origin: true, answers: map[string]answer{
		"liar": {status: FetchNotFound},
		"real": {rem: Remote{Doc: cache.Document{Size: 3}, ResponderAge: time.Hour, FromGroup: true}, status: FetchOK},
	}}
	hooks := &spyHooks{}
	e := newEngine(store, tr, Located{Candidates: []Candidate{{ID: "liar"}, {ID: "real"}}}, hooks)
	res, err := e.Resolve(nil, "http://a/", 3, at(0))
	if err != nil || res.Outcome != metrics.RemoteHit || res.Responder != "real" {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	// A not-found answer is not a fault: no fallback.
	if hooks.falseHits != 1 || hooks.fallbacks != 0 || hooks.retries != 1 {
		t.Fatalf("hooks=%+v", hooks)
	}
}

func TestParentFromGroupIsRemoteHit(t *testing.T) {
	store := newFakeStore(time.Minute)
	tr := &fakeTransport{
		parentID: "parent-0",
		parent:   Remote{Doc: cache.Document{Size: 4}, ResponderAge: 10 * time.Second, FromGroup: true},
	}
	hooks := &spyHooks{}
	e := newEngine(store, tr, Located{}, hooks)
	res, err := e.Resolve(nil, "http://a/", 4, at(0))
	if err != nil || res.Outcome != metrics.RemoteHit || res.Responder != "parent-0" || !res.Stored {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if hooks.parentFetches != 1 {
		t.Fatalf("hooks=%+v", hooks)
	}
}

func TestParentErrorFailsWithoutDegrade(t *testing.T) {
	wantErr := errors.New("parent broke")
	tr := &fakeTransport{parentID: "parent-0", parentErr: wantErr, origin: true}
	e := newEngine(newFakeStore(0), tr, Located{}, nil)
	if _, err := e.Resolve(nil, "http://a/", 1, at(0)); !errors.Is(err, wantErr) {
		t.Fatalf("err=%v, want the parent error", err)
	}
}

func TestParentErrorDegradesToOrigin(t *testing.T) {
	tr := &fakeTransport{parentID: "parent-0", parentErr: errors.New("parent broke"), origin: true}
	hooks := &spyHooks{}
	e := newEngine(newFakeStore(0), tr, Located{}, hooks)
	e.DegradeToOrigin = true
	res, err := e.Resolve(nil, "http://a/", 1, at(0))
	if err != nil || res.Outcome != metrics.Miss {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if hooks.degrades != 1 || hooks.originFns != 1 {
		t.Fatalf("hooks=%+v", hooks)
	}
}

func TestNoOriginError(t *testing.T) {
	e := newEngine(newFakeStore(0), &fakeTransport{}, Located{}, nil)
	_, err := e.Resolve(nil, "http://a/", 1, at(0))
	if err == nil || !strings.Contains(err.Error(), "test n0: miss for http://a/ and no origin") {
		t.Fatalf("err=%v", err)
	}
}

func TestPlacementNeverSuppressesStores(t *testing.T) {
	// A home-resolved body (FromGroup=false) counts as a miss and the
	// requester keeps nothing, on either path.
	store := newFakeStore(time.Hour) // huge age: EA would store everywhere
	tr := &fakeTransport{origin: true, answers: map[string]answer{
		"home": {rem: Remote{Doc: cache.Document{Size: 2}, FromGroup: false}, status: FetchOK},
	}}
	loc := Located{Candidates: []Candidate{{ID: "home"}}, Resolve: true, Placement: PlacementNever}
	e := newEngine(store, tr, loc, nil)
	res, err := e.Resolve(nil, "http://a/", 2, at(0))
	if err != nil || res.Outcome != metrics.Miss || res.Stored {
		t.Fatalf("res=%+v err=%v, want unstored miss via home", res, err)
	}
	if !tr.resolves[0] {
		t.Fatal("resolve flag not forwarded")
	}
	if len(store.docs) != 0 {
		t.Fatal("requester stored a copy under PlacementNever")
	}

	// Same home serving from its cache: a remote hit, still unstored.
	tr.answers["home"] = answer{rem: Remote{Doc: cache.Document{Size: 2}, FromGroup: true}, status: FetchOK}
	res, err = e.Resolve(nil, "http://a/", 2, at(1))
	if err != nil || res.Outcome != metrics.RemoteHit || res.Stored {
		t.Fatalf("res=%+v err=%v, want unstored remote hit", res, err)
	}
}

// refuseAll is a Scheme that never stores anywhere, to prove
// PlacementAlways overrides the scheme verdict.
type refuseAll struct{}

func (refuseAll) Name() string                                 { return "refuse" }
func (refuseAll) OnRemoteHit(_, _ time.Duration) core.Decision { return core.Decision{} }
func (refuseAll) OnOriginFetch(time.Duration) bool             { return false }
func (refuseAll) OnParentResolve(_, _ time.Duration) bool      { return false }
func (refuseAll) OnMissViaParent(_, _ time.Duration) bool      { return false }

func TestPlacementAlwaysStoresOnOriginMiss(t *testing.T) {
	store := newFakeStore(0)
	e := &Engine{
		ID: "test n0", Store: store, Scheme: refuseAll{},
		Locator:   fixedLocator{Located{Placement: PlacementAlways}},
		Transport: &fakeTransport{origin: true},
	}
	res, err := e.Resolve(nil, "http://a/", 6, at(0))
	if err != nil || res.Outcome != metrics.Miss || !res.Stored {
		t.Fatalf("res=%+v err=%v, want stored miss", res, err)
	}
}

func TestNilLocatorGoesStraightToOrigin(t *testing.T) {
	e := &Engine{ID: "t", Store: newFakeStore(0), Scheme: core.EA{}, Transport: &fakeTransport{origin: true}}
	res, err := e.Resolve(nil, "http://a/", 1, at(0))
	if err != nil || res.Outcome != metrics.Miss {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func ringOf(t *testing.T, members ...string) *chash.Ring {
	t.Helper()
	r, err := chash.New(0, members...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHashLocatorRoutesToHome(t *testing.T) {
	members := []string{"n0", "n1", "n2", "n3"}
	ring := ringOf(t, members...)
	// From every non-home node, the first candidate must be the ring
	// owner and the rest the ownership chain up to (excluding) self;
	// from the home node itself, placement must be Always.
	for _, url := range []string{"http://a/", "http://b/", "http://c/x", "http://d/y"} {
		home := ring.Owner(url)
		chain := ring.Owners(url, ring.Len())
		for _, self := range members {
			h := &HashLocator{Ring: ring, Self: self, Candidate: func(m string) (Candidate, bool) {
				return Candidate{ID: m}, true
			}}
			loc := h.Locate(nil, url, at(0))
			if self == home {
				if loc.Placement != PlacementAlways || len(loc.Candidates) != 0 {
					t.Fatalf("home %s for %s: loc=%+v", self, url, loc)
				}
				continue
			}
			if len(loc.Candidates) == 0 || loc.Candidates[0].ID != home {
				t.Fatalf("%s for %s: candidates=%+v, want home %s first", self, url, loc.Candidates, home)
			}
			for i, c := range loc.Candidates {
				if c.ID != chain[i] {
					t.Fatalf("%s for %s: candidate[%d]=%s, want chain %v", self, url, i, c.ID, chain)
				}
			}
			if !loc.Resolve || loc.Placement != PlacementNever {
				t.Fatalf("loc=%+v, want resolve+never", loc)
			}
		}
	}
}

func TestHashLocatorSkipsDeadHome(t *testing.T) {
	ring := ringOf(t, "n0", "n1", "n2", "n3")
	url := "http://a/"
	home := ring.Owner(url)
	chain := ring.Owners(url, ring.Len())
	next := chain[1]

	var self string // pick a self that is neither home nor next
	for _, m := range []string{"n0", "n1", "n2", "n3"} {
		if m != home && m != next {
			self = m
			break
		}
	}
	h := &HashLocator{Ring: ring, Self: self, Candidate: func(m string) (Candidate, bool) {
		if m == home {
			return Candidate{}, false // breaker open
		}
		return Candidate{ID: m}, true
	}}
	loc := h.Locate(nil, url, at(0))
	// The chain walks past the dead home; depending on where self sits
	// it either finds live remote owners or becomes the acting home.
	if loc.Placement == PlacementAlways {
		t.Fatalf("self %s became home with %s alive in the chain %v", self, next, chain)
	}
	if len(loc.Candidates) == 0 || loc.Candidates[0].ID != next {
		t.Fatalf("candidates=%+v, want next-alive %s (chain %v)", loc.Candidates, next, chain)
	}
}

func TestHashLocatorActsAsHomeWhenAllOwnersDead(t *testing.T) {
	ring := ringOf(t, "n0", "n1")
	url := "http://a/"
	self := "n0"
	if ring.Owner(url) == self {
		self = "n1"
	}
	h := &HashLocator{Ring: ring, Self: self, Candidate: func(string) (Candidate, bool) {
		return Candidate{}, false // everyone else dead
	}}
	loc := h.Locate(nil, url, at(0))
	if loc.Placement != PlacementAlways {
		t.Fatalf("loc=%+v, want acting-home placement", loc)
	}
}

func TestHashLocatorNilRing(t *testing.T) {
	var h *HashLocator
	if loc := h.Locate(nil, "http://a/", at(0)); loc.Placement != PlacementAlways {
		t.Fatalf("loc=%+v", loc)
	}
}

func TestLocationStringAndParse(t *testing.T) {
	for _, tc := range []struct {
		loc  Location
		name string
	}{{LocateICP, "icp"}, {LocateDigest, "digest"}, {LocateHash, "hash"}} {
		if tc.loc.String() != tc.name {
			t.Fatalf("%d.String()=%q", tc.loc, tc.loc.String())
		}
		got, err := ParseLocation(tc.name)
		if err != nil || got != tc.loc {
			t.Fatalf("ParseLocation(%q)=%v,%v", tc.name, got, err)
		}
	}
	if Location(9).String() != "location(9)" {
		t.Fatal("unknown location string")
	}
	if _, err := ParseLocation("carp"); err == nil {
		t.Fatal("bad name parsed")
	}
}
