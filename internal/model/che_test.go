package model

import (
	"math"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/dist"
)

func TestCheLRUValidation(t *testing.T) {
	if _, err := CheLRU(nil, 10); err == nil {
		t.Fatal("empty distribution accepted")
	}
	if _, err := CheLRU([]float64{1}, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := CheLRU([]float64{-1, 1}, 1); err == nil {
		t.Fatal("negative popularity accepted")
	}
	if _, err := CheLRU([]float64{0, 0}, 1); err == nil {
		t.Fatal("zero mass accepted")
	}
	if _, err := CheLRU([]float64{math.NaN()}, 1); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestCheLRUEverythingFits(t *testing.T) {
	probs, err := ZipfPopularities(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := CheLRU(probs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hit != 1 {
		t.Fatalf("hit = %v, want 1 when everything fits", hit)
	}
}

func TestCheLRUMonotoneInCapacity(t *testing.T) {
	probs, err := ZipfPopularities(2000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, capacity := range []int{10, 50, 200, 1000, 1900} {
		hit, err := CheLRU(probs, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if hit <= prev {
			t.Fatalf("hit rate not increasing: %v at capacity %d after %v", hit, capacity, prev)
		}
		if hit <= 0 || hit > 1 {
			t.Fatalf("hit = %v out of (0,1]", hit)
		}
		prev = hit
	}
}

func TestCheLRUUniformMatchesClosedForm(t *testing.T) {
	// Under uniform popularity the IRM LRU hit rate approaches
	// capacity/n for large n (any resident set is equally likely).
	const n, capacity = 5000, 500
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 1
	}
	hit, err := CheLRU(probs, capacity)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(capacity) / n
	if math.Abs(hit-want) > 0.01 {
		t.Fatalf("uniform hit = %v, want ~%v", hit, want)
	}
}

// TestCheLRUMatchesSimulation cross-validates the analytic model against
// the event-driven cache on an IRM Zipf stream: the two estimates must
// agree within a couple of points.
func TestCheLRUMatchesSimulation(t *testing.T) {
	const (
		docs     = 3000
		capacity = 300
		requests = 150000
		alpha    = 0.8
	)
	probs, err := ZipfPopularities(docs, alpha)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := CheLRU(probs, capacity)
	if err != nil {
		t.Fatal(err)
	}

	zipf, err := dist.NewZipf(docs, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Unit-size documents so capacity is exactly a document count.
	store, err := cache.New(cache.Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(7)
	now := time.Unix(784900000, 0)
	var hits int
	for i := 0; i < requests; i++ {
		url := "doc-" + itoa(zipf.Rank(rng))
		if _, ok := store.Get(url, now); ok {
			hits++
		} else if _, err := store.Put(cache.Document{URL: url, Size: 1}, now); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	simulated := float64(hits) / requests
	if math.Abs(simulated-analytic) > 0.02 {
		t.Fatalf("simulated %.4f vs analytic %.4f differ by more than 2pp", simulated, analytic)
	}
}

func TestZipfPopularities(t *testing.T) {
	if _, err := ZipfPopularities(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ZipfPopularities(10, -1); err == nil {
		t.Fatal("alpha<0 accepted")
	}
	probs, err := ZipfPopularities(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Fatalf("probs[%d] = %v, want %v", i, probs[i], want[i])
		}
	}
}

func TestMixPopularities(t *testing.T) {
	body := []float64{1, 1, 1, 1}
	mixed, err := MixPopularities(body, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Head docs: 0.5*0.25 + 0.5/2 = 0.375 each; tail: 0.125 each.
	if math.Abs(mixed[0]-0.375) > 1e-12 || math.Abs(mixed[3]-0.125) > 1e-12 {
		t.Fatalf("mixed = %v", mixed)
	}
	var sum float64
	for _, p := range mixed {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mixed sums to %v", sum)
	}
	if _, err := MixPopularities(body, 5, 0.5); err == nil {
		t.Fatal("hotDocs > len accepted")
	}
	if _, err := MixPopularities(body, 2, 1); err == nil {
		t.Fatal("hotWeight 1 accepted")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
