package model_test

import (
	"fmt"

	"eacache/internal/model"
)

// Che's approximation predicts an LRU cache's hit rate from the popularity
// distribution alone.
func ExampleCheLRU() {
	probs, err := model.ZipfPopularities(10000, 0.8)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, capacity := range []int{100, 1000} {
		hit, err := model.CheLRU(probs, capacity)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("capacity %d docs: hit rate %.1f%%\n", capacity, 100*hit)
	}
	// Output:
	// capacity 100 docs: hit rate 15.7%
	// capacity 1000 docs: hit rate 43.7%
}
