// Package model provides an analytical LRU cache model — Che's
// approximation under the independent reference model — used to
// cross-validate the trace-driven simulator: for a single LRU cache fed an
// IRM stream with known popularities, the analytic hit rate and the
// simulated hit rate must agree closely. The paper's own (unpublished)
// technical-report analysis plays the same role for its experiments.
package model

import (
	"fmt"
	"math"
)

// CheLRU computes the expected hit rate of a single LRU cache holding
// `capacity` equally sized documents, fed an independent reference stream
// with the given popularity distribution (probabilities, need not be
// normalised).
//
// Che's approximation: there is a characteristic time Tc such that document
// i is resident iff it was referenced within the last Tc requests; Tc
// solves sum_i (1 - exp(-p_i * Tc)) = capacity, and the hit rate is
// sum_i p_i * (1 - exp(-p_i * Tc)).
func CheLRU(popularities []float64, capacity int) (float64, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("model: capacity must be positive, got %d", capacity)
	}
	if len(popularities) == 0 {
		return 0, fmt.Errorf("model: empty popularity distribution")
	}
	var total float64
	for i, p := range popularities {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return 0, fmt.Errorf("model: bad popularity %v at %d", p, i)
		}
		total += p
	}
	if total <= 0 {
		return 0, fmt.Errorf("model: zero total popularity")
	}
	if capacity >= len(popularities) {
		return 1, nil // everything fits; every re-reference hits
	}

	probs := make([]float64, len(popularities))
	for i, p := range popularities {
		probs[i] = p / total
	}

	tc, err := characteristicTime(probs, float64(capacity))
	if err != nil {
		return 0, err
	}
	var hit float64
	for _, p := range probs {
		hit += p * (1 - math.Exp(-p*tc))
	}
	return hit, nil
}

// characteristicTime solves sum_i (1 - exp(-p_i*t)) = capacity for t by
// bisection; the left side is monotonically increasing in t.
func characteristicTime(probs []float64, capacity float64) (float64, error) {
	occupancy := func(t float64) float64 {
		var sum float64
		for _, p := range probs {
			sum += 1 - math.Exp(-p*t)
		}
		return sum
	}
	lo, hi := 0.0, 1.0
	for occupancy(hi) < capacity {
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("model: characteristic time diverged")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < capacity {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// ZipfPopularities returns the unnormalised Zipf masses 1/rank^alpha for n
// ranks, matching the workload generator's body distribution.
func ZipfPopularities(n int, alpha float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("model: n must be positive, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("model: alpha must be >= 0, got %v", alpha)
	}
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 1 / math.Pow(float64(i+1), alpha)
	}
	return probs, nil
}

// MixPopularities overlays a hot head on a body distribution the way the
// workload generator does: with probability hotWeight a request draws
// uniformly from the first hotDocs documents, otherwise from the body.
func MixPopularities(body []float64, hotDocs int, hotWeight float64) ([]float64, error) {
	if hotDocs < 0 || hotDocs > len(body) {
		return nil, fmt.Errorf("model: hotDocs %d out of range", hotDocs)
	}
	if hotWeight < 0 || hotWeight >= 1 {
		return nil, fmt.Errorf("model: hotWeight %v out of [0,1)", hotWeight)
	}
	var total float64
	for _, p := range body {
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("model: zero body mass")
	}
	out := make([]float64, len(body))
	for i, p := range body {
		out[i] = (1 - hotWeight) * p / total
		if i < hotDocs {
			out[i] += hotWeight / float64(hotDocs)
		}
	}
	return out, nil
}
