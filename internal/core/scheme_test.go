package core

import (
	"testing"
	"testing/quick"
	"time"

	"eacache/internal/cache"
)

func TestNew(t *testing.T) {
	for _, name := range []string{"adhoc", "ea", "never"} {
		s, ok := New(name)
		if !ok || s.Name() != name {
			t.Fatalf("New(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := New("bogus"); ok {
		t.Fatal("New(bogus) succeeded")
	}
}

func TestAdHocAlwaysReplicates(t *testing.T) {
	var s AdHoc
	ages := []time.Duration{0, time.Second, time.Hour, cache.NoContention}
	for _, req := range ages {
		for _, resp := range ages {
			d := s.OnRemoteHit(req, resp)
			if !d.StoreAtRequester || !d.PromoteAtResponder {
				t.Fatalf("AdHoc.OnRemoteHit(%v, %v) = %+v", req, resp, d)
			}
			if !s.OnParentResolve(resp, req) || !s.OnMissViaParent(req, resp) {
				t.Fatal("AdHoc must always store")
			}
		}
	}
	if !s.OnOriginFetch(0) {
		t.Fatal("AdHoc.OnOriginFetch = false")
	}
}

func TestEARemoteHitRules(t *testing.T) {
	var s EA
	tests := []struct {
		name        string
		req, resp   time.Duration
		wantStore   bool
		wantPromote bool
	}{
		{"requester older", 10 * time.Second, 5 * time.Second, true, false},
		{"responder older", 5 * time.Second, 10 * time.Second, false, true},
		{"tie", 7 * time.Second, 7 * time.Second, false, false},
		{"zero tie (cold-ish)", 0, 0, false, false},
		{"no-contention tie", cache.NoContention, cache.NoContention, false, false},
		{"cold requester vs contended responder", cache.NoContention, time.Hour, true, false},
		{"contended requester vs cold responder", time.Hour, cache.NoContention, false, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := s.OnRemoteHit(tt.req, tt.resp)
			if d.StoreAtRequester != tt.wantStore || d.PromoteAtResponder != tt.wantPromote {
				t.Fatalf("OnRemoteHit(%v, %v) = %+v, want store=%v promote=%v",
					tt.req, tt.resp, d, tt.wantStore, tt.wantPromote)
			}
		})
	}
}

func TestEAOriginFetchAlwaysStores(t *testing.T) {
	var s EA
	for _, age := range []time.Duration{0, time.Minute, cache.NoContention} {
		if !s.OnOriginFetch(age) {
			t.Fatalf("EA.OnOriginFetch(%v) = false; the distributed miss path always stores", age)
		}
	}
}

func TestEAHierarchyRules(t *testing.T) {
	var s EA
	tests := []struct {
		name        string
		parent, req time.Duration
		wantParent  bool
		wantChild   bool
	}{
		{"parent older", 10 * time.Second, 5 * time.Second, true, false},
		{"child older", 5 * time.Second, 10 * time.Second, false, true},
		{"tie goes to child", 7 * time.Second, 7 * time.Second, false, true},
		{"cold-start tie goes to child", cache.NoContention, cache.NoContention, false, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gotParent := s.OnParentResolve(tt.parent, tt.req)
			gotChild := s.OnMissViaParent(tt.req, tt.parent)
			if gotParent != tt.wantParent || gotChild != tt.wantChild {
				t.Fatalf("parent=%v child=%v, want %v/%v",
					gotParent, gotChild, tt.wantParent, tt.wantChild)
			}
		})
	}
}

func TestNeverReplicate(t *testing.T) {
	var s NeverReplicate
	d := s.OnRemoteHit(time.Hour, time.Second)
	if d.StoreAtRequester {
		t.Fatal("NeverReplicate stored at requester")
	}
	if !d.PromoteAtResponder {
		t.Fatal("NeverReplicate must keep the single copy fresh")
	}
	if !s.OnOriginFetch(0) || !s.OnMissViaParent(0, 0) {
		t.Fatal("the first copy must land somewhere")
	}
	if s.OnParentResolve(time.Hour, 0) {
		t.Fatal("NeverReplicate parent stored a copy")
	}
}

// TestQuickEAExactlyOneActionUnlessTie checks the invariant behind the
// paper's never-worse-than-ad-hoc argument: on every remote hit with
// distinct ages, exactly one of {store at requester, promote at responder}
// happens; on a tie, neither (the existing copy simply keeps serving).
func TestQuickEAExactlyOneActionUnlessTie(t *testing.T) {
	var s EA
	f := func(reqSec, respSec uint32) bool {
		req := time.Duration(reqSec) * time.Second
		resp := time.Duration(respSec) * time.Second
		d := s.OnRemoteHit(req, resp)
		if req == resp {
			return !d.StoreAtRequester && !d.PromoteAtResponder
		}
		return d.StoreAtRequester != d.PromoteAtResponder
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHierarchyPlacesSomewhere checks that a document fetched via the
// hierarchical miss path always lands in at least one cache under every
// scheme.
func TestQuickHierarchyPlacesSomewhere(t *testing.T) {
	schemes := []Scheme{AdHoc{}, EA{}, NeverReplicate{}}
	f := func(parentSec, reqSec uint32) bool {
		parent := time.Duration(parentSec) * time.Second
		req := time.Duration(reqSec) * time.Second
		for _, s := range schemes {
			if !s.OnParentResolve(parent, req) && !s.OnMissViaParent(req, parent) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEAStoreMonotone checks monotonicity: raising the requester's
// expiration age never flips a store decision to no-store.
func TestQuickEAStoreMonotone(t *testing.T) {
	var s EA
	f := func(reqSec, respSec, bumpSec uint16) bool {
		req := time.Duration(reqSec) * time.Second
		resp := time.Duration(respSec) * time.Second
		bump := time.Duration(bumpSec) * time.Second
		before := s.OnRemoteHit(req, resp).StoreAtRequester
		after := s.OnRemoteHit(req+bump, resp).StoreAtRequester
		return !before || after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
