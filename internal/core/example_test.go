package core_test

import (
	"fmt"
	"time"

	"eacache/internal/core"
)

// The EA scheme compares the two caches' expiration ages and places the
// copy where it is expected to survive longer.
func ExampleEA_OnRemoteHit() {
	var scheme core.EA

	// The requester's documents survive 90s after their last hit; the
	// responder's only 30s. The requester is the better home.
	d := scheme.OnRemoteHit(90*time.Second, 30*time.Second)
	fmt.Println("store at requester:", d.StoreAtRequester)
	fmt.Println("promote at responder:", d.PromoteAtResponder)

	// Reversed contention: keep the responder's copy alive instead.
	d = scheme.OnRemoteHit(30*time.Second, 90*time.Second)
	fmt.Println("store at requester:", d.StoreAtRequester)
	fmt.Println("promote at responder:", d.PromoteAtResponder)

	// Output:
	// store at requester: true
	// promote at responder: false
	// store at requester: false
	// promote at responder: true
}

// The conventional ad-hoc scheme replicates unconditionally — the baseline
// whose uncontrolled replication the paper measures.
func ExampleAdHoc_OnRemoteHit() {
	var scheme core.AdHoc
	d := scheme.OnRemoteHit(0, time.Hour)
	fmt.Println(d.StoreAtRequester, d.PromoteAtResponder)
	// Output: true true
}
