// Package core implements the paper's primary contribution: document
// placement schemes for cooperative caching, deciding (a) whether the proxy
// that fetched a document from a peer, parent or origin server stores a
// local copy, and (b) whether the proxy that served it refreshes its own
// copy's replacement state.
//
// Two production schemes are provided — the conventional ad-hoc scheme used
// by ICP-era proxies, and the paper's Expiration-Age (EA) scheme — plus a
// no-replication ablation baseline.
package core

import "time"

// Decision is the outcome of a placement consultation for a document served
// from one cache (the responder) to another (the requester).
type Decision struct {
	// StoreAtRequester directs the requester to keep a local copy.
	StoreAtRequester bool
	// PromoteAtResponder directs the responder to treat the remote fetch
	// as a hit on its own copy — promoting it to the head of the LRU list
	// (or bumping its LFU counter), giving it a fresh lease of life.
	PromoteAtResponder bool
}

// Scheme is a document placement scheme. Expiration ages are the cache
// expiration ages (cache.Store.ExpirationAge) of the two parties, as
// piggybacked on the inter-proxy request and response messages;
// cache.NoContention means the party has evicted nothing yet.
//
// Implementations must be pure functions of their arguments: the paper
// stresses that placement decisions are made locally from piggybacked
// state, with no extra communication and no coordinator.
type Scheme interface {
	// Name identifies the scheme ("adhoc", "ea", ...).
	Name() string
	// OnRemoteHit decides placement when the requester obtained the
	// document from a responder inside the group (sibling, peer or
	// parent that already had a copy).
	OnRemoteHit(requesterEA, responderEA time.Duration) Decision
	// OnOriginFetch reports whether the requester stores a document it
	// fetched directly from the origin server after a group-wide miss
	// (the distributed-architecture miss path).
	OnOriginFetch(requesterEA time.Duration) bool
	// OnParentResolve reports whether a hierarchical parent stores a
	// document it fetched from the origin on behalf of a child whose
	// expiration age is requesterEA.
	OnParentResolve(parentEA, requesterEA time.Duration) bool
	// OnMissViaParent reports whether the child stores a document its
	// parent resolved from the origin (the hierarchical miss path). A
	// freshly fetched document must land somewhere, so at least one of
	// OnParentResolve/OnMissViaParent must return true for any age pair.
	OnMissViaParent(requesterEA, parentEA time.Duration) bool
}

// AdHoc is the conventional placement scheme (paper §2): every cache that
// serves a request for a document keeps a copy, and serving a remote
// request counts as a hit at the responder. This is the behaviour of
// ICP-based proxy groups and the paper's baseline.
type AdHoc struct{}

var _ Scheme = AdHoc{}

// Name implements Scheme.
func (AdHoc) Name() string { return "adhoc" }

// OnRemoteHit implements Scheme: the requester always stores, and the
// remote fetch is a hit at the responder.
func (AdHoc) OnRemoteHit(_, _ time.Duration) Decision {
	return Decision{StoreAtRequester: true, PromoteAtResponder: true}
}

// OnOriginFetch implements Scheme: always store.
func (AdHoc) OnOriginFetch(time.Duration) bool { return true }

// OnParentResolve implements Scheme: the parent always keeps a copy.
func (AdHoc) OnParentResolve(_, _ time.Duration) bool { return true }

// OnMissViaParent implements Scheme: the child always keeps a copy.
func (AdHoc) OnMissViaParent(_, _ time.Duration) bool { return true }

// EA is the paper's Expiration-Age based placement scheme (§3.3). The
// aggregate disk space of the group is treated as a shared resource; a new
// replica is created only where it is expected to survive longer than the
// existing copy:
//
//   - The requester stores a copy iff its cache expiration age is strictly
//     greater than the responder's (its copy would outlive the
//     responder's).
//   - The responder promotes its copy to the head of its LRU list iff its
//     expiration age is strictly greater than the requester's.
//   - On a tie neither happens: the existing copy simply keeps serving.
//
// Both comparisons are strict, following §3.3 ("if the Cache Expiration Age
// of the Requester is greater than that of the Responder, it stores a
// copy") and matching the paper's measured behaviour: at 1GB, where caches
// evict almost nothing and expiration ages stay undifferentiated, the
// paper's EA scheme serves 32.02% of requests as remote hits against the
// ad-hoc scheme's 11.06% — i.e. undifferentiated caches do NOT replicate.
// A tie-breaking rule of >= would collapse EA into ad-hoc exactly in that
// regime.
type EA struct{}

var _ Scheme = EA{}

// Name implements Scheme.
func (EA) Name() string { return "ea" }

// OnRemoteHit implements Scheme with the strict §3.3 comparison rules.
func (EA) OnRemoteHit(requesterEA, responderEA time.Duration) Decision {
	return Decision{
		StoreAtRequester:   requesterEA > responderEA,
		PromoteAtResponder: responderEA > requesterEA,
	}
}

// OnOriginFetch implements Scheme: after a group-wide miss in the
// distributed architecture the requester fetches from the origin and always
// stores, exactly as the ad-hoc scheme does (§3.3).
func (EA) OnOriginFetch(time.Duration) bool { return true }

// OnParentResolve implements Scheme: the parent keeps a copy iff its
// expiration age is strictly greater than the requester's (§3.3).
func (EA) OnParentResolve(parentEA, requesterEA time.Duration) bool {
	return parentEA > requesterEA
}

// OnMissViaParent implements Scheme: the child keeps a copy iff its
// expiration age is greater than or equal to the parent's. The equality
// case matters: on a tie the parent does not store (OnParentResolve is
// strict), and a document fetched from the origin must land somewhere or a
// cold hierarchy would never cache anything. Ad-hoc stores at the child on
// every miss, so this also preserves the "never worse than ad-hoc"
// property on the miss path.
func (EA) OnMissViaParent(requesterEA, parentEA time.Duration) bool {
	return requesterEA >= parentEA
}

// NeverReplicate is an ablation baseline: a document fetched from inside
// the group is never copied to the requester; the responder's single copy
// is promoted instead. It bounds how far replication control can be pushed
// (maximum unique documents, maximum remote-hit latency exposure).
type NeverReplicate struct{}

var _ Scheme = NeverReplicate{}

// Name implements Scheme.
func (NeverReplicate) Name() string { return "never" }

// OnRemoteHit implements Scheme: keep the single existing copy fresh.
func (NeverReplicate) OnRemoteHit(_, _ time.Duration) Decision {
	return Decision{PromoteAtResponder: true}
}

// OnOriginFetch implements Scheme: the first copy must land somewhere.
func (NeverReplicate) OnOriginFetch(time.Duration) bool { return true }

// OnParentResolve implements Scheme: the parent never keeps a copy (the
// child stores via the miss path).
func (NeverReplicate) OnParentResolve(_, _ time.Duration) bool { return false }

// OnMissViaParent implements Scheme: the child keeps the first copy.
func (NeverReplicate) OnMissViaParent(_, _ time.Duration) bool { return true }

// New builds a scheme by name: "adhoc", "ea" or "never".
func New(name string) (Scheme, bool) {
	switch name {
	case "adhoc":
		return AdHoc{}, true
	case "ea":
		return EA{}, true
	case "never":
		return NeverReplicate{}, true
	default:
		return nil, false
	}
}
