package faults

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

func mustInjector(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{UDPDropRate: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := New(Config{TCPStallRate: -0.1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New(Config{UDPDelay: -time.Second}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestDeterministicDraws(t *testing.T) {
	draws := func(seed int64) []bool {
		in := mustInjector(t, Config{Seed: seed, UDPDropRate: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.draw(0.5)
		}
		return out
	}
	a, b := draws(7), draws(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identically-seeded injectors", i)
		}
	}
	c := draws(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

// udpPair returns two connected-via-loopback UDP conns, the second wrapped.
func udpPair(t *testing.T, in *Injector) (net.PacketConn, net.PacketConn, net.Addr) {
	t.Helper()
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return a, in.WrapPacketConn(b), a.LocalAddr()
}

func TestUDPDropAll(t *testing.T) {
	in := mustInjector(t, Config{UDPDropRate: 1})
	a, b, aAddr := udpPair(t, in)

	if _, err := b.WriteTo([]byte("ping"), aAddr); err != nil {
		t.Fatalf("dropped send errored: %v", err)
	}
	_ = a.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if _, _, err := a.ReadFrom(buf); err == nil {
		t.Fatal("datagram delivered despite drop rate 1")
	}
	if s := in.Stats(); s.UDPDropped != 1 {
		t.Fatalf("dropped = %d, want 1", s.UDPDropped)
	}
}

func TestUDPCorruptAndTruncate(t *testing.T) {
	in := mustInjector(t, Config{UDPCorruptRate: 1})
	a, b, _ := udpPair(t, in)
	if _, err := a.WriteTo([]byte{1, 2, 3, 4}, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	n, _, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || buf[3] == 4 {
		t.Fatalf("datagram not corrupted: n=%d last=%d", n, buf[3])
	}

	in2 := mustInjector(t, Config{UDPTruncRate: 1})
	a2, b2, _ := udpPair(t, in2)
	if _, err := a2.WriteTo([]byte{1, 2, 3, 4}, b2.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	_ = b2.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err = b2.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("truncated read n=%d, want 2", n)
	}
}

// tcpPair returns a connected TCP pair with the client side wrapped.
func tcpPair(t *testing.T, in *Injector) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		done <- c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	t.Cleanup(func() { _ = raw.Close(); _ = server.Close() })
	return in.WrapConn(raw), server
}

func TestTCPStallRespectsDeadline(t *testing.T) {
	in := mustInjector(t, Config{TCPStallRate: 1})
	client, server := tcpPair(t, in)
	if _, err := server.Write([]byte("data the client will never see")); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	start := time.Now()
	buf := make([]byte, 16)
	_, err := client.Read(buf)
	if err == nil {
		t.Fatal("stalled conn delivered data")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stall error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("stall returned after %v, before the deadline", elapsed)
	}
	if s := in.Stats(); s.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", s.Stalls)
	}
}

func TestTCPReset(t *testing.T) {
	in := mustInjector(t, Config{TCPResetRate: 1})
	client, _ := tcpPair(t, in)
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("write survived reset rate 1")
	}
	// The conn stays broken.
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("read survived an earlier reset")
	}
	if s := in.Stats(); s.Resets != 1 {
		t.Fatalf("resets = %d, want 1 (sticky)", s.Resets)
	}
}

func TestDialErr(t *testing.T) {
	in := mustInjector(t, Config{TCPDialErrRate: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := in.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial survived dial-err rate 1")
	}
	if s := in.Stats(); s.DialErrors != 1 {
		t.Fatalf("dial errors = %d, want 1", s.DialErrors)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42, udp-drop=0.3,tcp-stall=0.05,udp-delay=20ms,tcp-byte-delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed:         42,
		UDPDropRate:  0.3,
		TCPStallRate: 0.05,
		UDPDelay:     20 * time.Millisecond,
		TCPByteDelay: time.Millisecond,
	}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if _, err := ParseSpec("udp-drop=2"); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseSpec("udp-drop"); err == nil {
		t.Fatal("missing value accepted")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
}
