package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a comma-separated chaos specification of key=value
// pairs into a Config, for command-line use:
//
//	seed=42,udp-drop=0.3,tcp-stall=0.05,udp-delay=20ms
//
// Keys: seed, udp-drop, udp-corrupt, udp-trunc, udp-delay, tcp-dial-err,
// tcp-reset, tcp-stall, tcp-byte-delay. Rates are probabilities in [0,1];
// delays use Go duration syntax.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, value, found := strings.Cut(part, "=")
		if !found {
			return Config{}, fmt.Errorf("faults: bad spec %q: want key=value", part)
		}
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(value, 10, 64)
		case "udp-drop":
			cfg.UDPDropRate, err = parseRate(value)
		case "udp-corrupt":
			cfg.UDPCorruptRate, err = parseRate(value)
		case "udp-trunc":
			cfg.UDPTruncRate, err = parseRate(value)
		case "udp-delay":
			cfg.UDPDelay, err = time.ParseDuration(value)
		case "tcp-dial-err":
			cfg.TCPDialErrRate, err = parseRate(value)
		case "tcp-reset":
			cfg.TCPResetRate, err = parseRate(value)
		case "tcp-stall":
			cfg.TCPStallRate, err = parseRate(value)
		case "tcp-byte-delay":
			cfg.TCPByteDelay, err = time.ParseDuration(value)
		default:
			return Config{}, fmt.Errorf("faults: unknown spec key %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("faults: spec %q: %w", part, err)
		}
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", v)
	}
	return v, nil
}
