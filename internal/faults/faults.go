// Package faults is a deterministic, seedable fault injector for the live
// node path. It wraps net.Conn / net.PacketConn values (and the dial and
// listen operations that produce them) so tests and manual chaos runs can
// drop, delay, truncate, or corrupt UDP datagrams and fail, reset, stall,
// or slow TCP streams — without touching the protocol code under test.
//
// Every decision is drawn from a single seeded PRNG, so a chaos run is
// reproducible: same seed, same faults, same order. The injector counts
// what it injects (see Stats) so tests can assert that faults actually
// fired rather than silently configuring a zero rate.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
)

// Config selects which faults to inject and how often. All rates are
// probabilities in [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed seeds the injector's PRNG. Runs with the same seed and the
	// same sequence of operations see the same faults.
	Seed int64

	// UDPDropRate drops a datagram each time it traverses a wrapped
	// packet conn: outbound drops are swallowed sends (reported as
	// successful, like a congested network), inbound drops are received
	// datagrams discarded before the reader sees them.
	UDPDropRate float64
	// UDPCorruptRate flips a byte of an inbound datagram's payload.
	UDPCorruptRate float64
	// UDPTruncRate delivers only the first half of an inbound datagram.
	UDPTruncRate float64
	// UDPDelay holds each inbound datagram for the given duration before
	// delivering it (applied after the drop/corrupt/truncate draws).
	UDPDelay time.Duration

	// TCPDialErrRate fails a Dial with ECONNREFUSED before any traffic.
	TCPDialErrRate float64
	// TCPResetRate aborts a wrapped stream mid-transfer: the draw happens
	// per Read/Write, and once it fires every later operation on that
	// conn fails with ECONNRESET.
	TCPResetRate float64
	// TCPStallRate freezes a wrapped stream: the draw happens once per
	// conn at creation, and a stalled conn's Reads block until the read
	// deadline expires (or the conn is closed), then fail with a timeout.
	TCPStallRate float64
	// TCPByteDelay slows a stream by sleeping this long before every
	// Read — a crude bandwidth throttle.
	TCPByteDelay time.Duration
}

func (c Config) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"udp-drop", c.UDPDropRate},
		{"udp-corrupt", c.UDPCorruptRate},
		{"udp-trunc", c.UDPTruncRate},
		{"tcp-dial-err", c.TCPDialErrRate},
		{"tcp-reset", c.TCPResetRate},
		{"tcp-stall", c.TCPStallRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: rate %s=%v outside [0,1]", r.name, r.v)
		}
	}
	if c.UDPDelay < 0 || c.TCPByteDelay < 0 {
		return fmt.Errorf("faults: negative delay")
	}
	return nil
}

// Stats counts the faults an Injector has injected.
type Stats struct {
	UDPDropped   int64
	UDPCorrupted int64
	UDPTruncated int64
	DialErrors   int64
	Resets       int64
	Stalls       int64
}

// Injector draws faults deterministically from a seeded PRNG and applies
// them through conn wrappers. It is safe for concurrent use; concurrency
// itself can reorder which operation sees which draw, so fully
// deterministic tests should drive it from one goroutine.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New returns an Injector for cfg, or an error when a rate is outside
// [0, 1] or a delay is negative.
func New(cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// draw reports whether a fault with probability rate fires now.
func (in *Injector) draw(rate float64) bool {
	if rate <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < rate
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	f(&in.stats)
}

// FlipBits returns a copy of data with n random single-bit flips drawn
// from the injector's seeded PRNG — file-level corruption injection for
// crash-safety tests (the on-disk analogue of UDPCorruptRate). Flips may
// land on the same bit twice; n is attempts, not guaranteed distinct
// corruptions. Empty data or n <= 0 returns data unchanged.
func (in *Injector) FlipBits(data []byte, n int) []byte {
	if len(data) == 0 || n <= 0 {
		return data
	}
	out := append([]byte(nil), data...)
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := 0; i < n; i++ {
		pos := in.rng.Intn(len(out))
		out[pos] ^= 1 << uint(in.rng.Intn(8))
	}
	return out
}

// DialTimeout dials like net.DialTimeout but may fail the dial outright
// (TCPDialErrRate) and wraps the resulting conn with the TCP stream faults.
func (in *Injector) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	if in.draw(in.cfg.TCPDialErrRate) {
		in.count(func(s *Stats) { s.DialErrors++ })
		return nil, &net.OpError{Op: "dial", Net: network, Err: syscall.ECONNREFUSED}
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(conn), nil
}

// WrapConn applies the TCP stream faults to c. The stall draw happens here,
// once per conn.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	fc := &conn{Conn: c, in: in}
	if in.draw(in.cfg.TCPStallRate) {
		in.count(func(s *Stats) { s.Stalls++ })
		fc.stalled = true
		fc.unblock = make(chan struct{})
	}
	return fc
}

// WrapListener wraps every conn accepted by l with the TCP stream faults,
// injecting on the responder side of a transfer.
func (in *Injector) WrapListener(l net.Listener) net.Listener {
	return &listener{Listener: l, in: in}
}

// WrapPacketConn applies the UDP datagram faults to pc.
func (in *Injector) WrapPacketConn(pc net.PacketConn) net.PacketConn {
	return &packetConn{PacketConn: pc, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// conn is a net.Conn with reset, stall, and throttle faults.
type conn struct {
	net.Conn
	in *Injector

	mu           sync.Mutex
	reset        bool
	stalled      bool
	unblock      chan struct{} // closed on Close when stalled
	readDeadline time.Time
}

var errReset = &net.OpError{Op: "read", Err: syscall.ECONNRESET}

func (c *conn) maybeReset() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return errReset
	}
	if c.in.draw(c.in.cfg.TCPResetRate) {
		c.reset = true
		c.in.count(func(s *Stats) { s.Resets++ })
		return errReset
	}
	return nil
}

// stallWait blocks a stalled conn until its read deadline passes or the
// conn is closed, mimicking a peer that stopped sending mid-body.
func (c *conn) stallWait() error {
	c.mu.Lock()
	deadline := c.readDeadline
	unblock := c.unblock
	c.mu.Unlock()

	if deadline.IsZero() {
		// No deadline set: block only until close, like a real dead
		// stream under a deadline-free reader.
		<-unblock
		return errReset
	}
	wait := time.Until(deadline)
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-t.C:
		case <-unblock:
			return errReset
		}
	}
	return &net.OpError{Op: "read", Err: os.ErrDeadlineExceeded}
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	stalled := c.stalled
	c.mu.Unlock()
	if stalled {
		return 0, c.stallWait()
	}
	if err := c.maybeReset(); err != nil {
		return 0, err
	}
	if d := c.in.cfg.TCPByteDelay; d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if err := c.maybeReset(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *conn) Close() error {
	c.mu.Lock()
	if c.stalled && c.unblock != nil {
		select {
		case <-c.unblock:
		default:
			close(c.unblock)
		}
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// packetConn is a net.PacketConn with drop, corrupt, truncate, and delay
// faults on datagrams.
type packetConn struct {
	net.PacketConn
	in *Injector
}

func (p *packetConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if p.in.draw(p.in.cfg.UDPDropRate) {
		// A dropped send looks successful to the sender, exactly like a
		// datagram lost in the network.
		p.in.count(func(s *Stats) { s.UDPDropped++ })
		return len(b), nil
	}
	return p.PacketConn.WriteTo(b, addr)
}

func (p *packetConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		n, addr, err := p.PacketConn.ReadFrom(b)
		if err != nil {
			return n, addr, err
		}
		if p.in.draw(p.in.cfg.UDPDropRate) {
			p.in.count(func(s *Stats) { s.UDPDropped++ })
			continue // lost before delivery; keep waiting
		}
		if n > 0 && p.in.draw(p.in.cfg.UDPCorruptRate) {
			p.in.count(func(s *Stats) { s.UDPCorrupted++ })
			b[n-1] ^= 0xff
		}
		if p.in.draw(p.in.cfg.UDPTruncRate) {
			p.in.count(func(s *Stats) { s.UDPTruncated++ })
			n /= 2
		}
		if d := p.in.cfg.UDPDelay; d > 0 {
			time.Sleep(d)
		}
		return n, addr, nil
	}
}
