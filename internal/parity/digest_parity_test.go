package parity

// Sim↔live parity for the advertised digest: the in-process proxy and
// the live node maintain their summaries incrementally from the same
// cache events, so after replaying one deterministic trace through
// both, the advertised artefact itself — the versioned full-sync
// envelope (generation + filter bytes) — must be byte-for-byte
// identical. A divergence means the two stacks disagree about either
// the mutation history (a membership bug) or the encoding (a wire bug).

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/hproto"
	"eacache/internal/netnode"
	"eacache/internal/proxy"
)

// fetchLiveDigest GETs addr's versioned digest envelope as a brand-new
// peer would (since=0 → full transfer).
func fetchLiveDigest(t *testing.T, addr string) []byte {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := hproto.WriteRequest(conn, hproto.Request{URL: netnode.DigestURL + "?since=0"}); err != nil {
		t.Fatalf("write digest request: %v", err)
	}
	br := bufio.NewReader(conn)
	resp, err := hproto.ReadResponse(br)
	if err != nil {
		t.Fatalf("read digest response: %v", err)
	}
	if resp.Status != hproto.StatusOK {
		t.Fatalf("digest status = %d", resp.Status)
	}
	body := make([]byte, resp.ContentLength)
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatalf("read digest body: %v", err)
	}
	return body
}

func TestSimLiveParityDigestAdvertisement(t *testing.T) {
	// Small enough that the trace forces evictions, so the advertised
	// summary's history includes removals, not just inserts.
	const capacity = int64(24 << 10)
	dcfg := proxy.DigestConfig{Expected: 64, FPRate: 0.01, RebuildEvery: 1}
	records := workload(t)

	// Sim side: one digest-mode proxy replays the whole trace.
	simStore, err := cache.New(cache.Config{
		Capacity:          capacity,
		ExpirationHorizon: cache.DefaultExpirationHorizon,
	})
	if err != nil {
		t.Fatalf("sim cache: %v", err)
	}
	p, err := proxy.New(proxy.Config{
		ID:       "cache-0",
		Store:    simStore,
		Scheme:   core.EA{},
		Origin:   proxy.SizeHintOrigin{},
		Location: proxy.LocateDigest,
		Digest:   dcfg,
	})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	for i, r := range records {
		if _, err := p.Request(r.URL, r.Size, r.Time); err != nil {
			t.Fatalf("sim request %d (%s): %v", i, r.URL, err)
		}
	}

	// Live side: one digest-mode node replays the same trace on the
	// trace-driven clock.
	clk := &traceClock{}
	clk.set(records[0].Time)
	origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer origin.Close()
	liveStore, err := cache.New(cache.Config{
		Capacity:          capacity,
		ExpirationHorizon: cache.DefaultExpirationHorizon,
	})
	if err != nil {
		t.Fatalf("live cache: %v", err)
	}
	node, err := netnode.New(netnode.Config{
		ID:         "cache-0",
		ICPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Store:      liveStore,
		Scheme:     core.EA{},
		OriginAddr: origin.Addr(),
		Location:   proxy.LocateDigest,
		Digest:     dcfg,
		Now:        clk.now,
	})
	if err != nil {
		t.Fatalf("netnode.New: %v", err)
	}
	defer node.Close()
	for i, r := range records {
		clk.set(r.Time)
		if _, err := node.Request(r.URL, r.Size); err != nil {
			t.Fatalf("live request %d (%s): %v", i, r.URL, err)
		}
	}

	// Both stacks advertise the identical envelope.
	simAd, ok, err := p.DigestAdvertisement()
	if err != nil || !ok {
		t.Fatalf("sim advertisement: ok=%v err=%v", ok, err)
	}
	liveAd := fetchLiveDigest(t, node.HTTPAddr())
	if !bytes.Equal(simAd, liveAd) {
		t.Errorf("advertised digest diverged: sim %d bytes, live %d bytes\n  sim  %x…\n  live %x…",
			len(simAd), len(liveAd), simAd[:min(32, len(simAd))], liveAd[:min(32, len(liveAd))])
	}

	// Neither stack may have taken the full-scan escape hatch, and both
	// must have processed enough mutations to make the comparison mean
	// something (one generation per mutation, seeded at 1).
	if got := p.ICP().DigestRebuilds; got != 0 {
		t.Errorf("sim rebuild escapes = %d, want 0", got)
	}
	rep := node.DigestReport()
	if rep.RebuildEscapes != 0 {
		t.Errorf("live rebuild escapes = %d, want 0", rep.RebuildEscapes)
	}
	if rep.OwnGeneration < uint64(len(records)/4) {
		t.Errorf("live generation = %d over %d requests; trace exercised too few mutations",
			rep.OwnGeneration, len(records))
	}
	if simStore.Evictions() == 0 {
		t.Error("workload produced no evictions; removal path untested")
	}
}
