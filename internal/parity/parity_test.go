// Package parity is the standing sim↔live regression gate: it replays
// one deterministic generated trace through the in-process simulator
// (internal/proxy via internal/group) and through a live netnode group
// (real ICP fan-out over UDP, real hproto fetches over TCP) and demands
// that both stacks make byte-for-byte identical decisions — same hit
// mix, same bytes served from the group, same placement (store) and
// promotion decisions, and the same final resident set in every cache.
//
// Both stacks delegate the request lifecycle to internal/resolve, so a
// divergence here means an adapter leaks policy: a locator that orders
// candidates differently, a store adapter with different freshness
// semantics, or a transport that rounds an expiration age. Determinism
// on the live side rests on three legs: requests are replayed
// sequentially, the live node orders ICP hit responders by peer-list
// position (not reply arrival), and the cache-visible clock is injected
// (netnode.Config.Now) and driven by the trace timestamps.
package parity

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/group"
	"eacache/internal/metrics"
	"eacache/internal/netnode"
	"eacache/internal/trace"
)

// traceClock is the shared fake clock for the live group: requester and
// responder nodes all read it, the replay loop advances it to each
// record's timestamp. Atomic because responder-side reads happen on the
// nodes' accept goroutines.
type traceClock struct{ ns atomic.Int64 }

func (c *traceClock) set(t time.Time) { c.ns.Store(t.UnixNano()) }
func (c *traceClock) now() time.Time  { return time.Unix(0, c.ns.Load()) }

// tally accumulates everything both stacks must agree on. Comparable,
// so the assertion is one != .
type tally struct {
	Local, Remote, Miss int
	// HitBytes is the byte-hit numerator: bytes served from the group
	// (local + remote). TotalBytes is the denominator.
	HitBytes, TotalBytes int64
	// Stored counts requester-side placements, Promoted responder-side
	// refreshes — together the paper's placement decisions.
	Stored, Promoted int
}

func (t *tally) add(outcome metrics.Outcome, size int64, stored, promoted bool) {
	switch outcome {
	case metrics.LocalHit:
		t.Local++
		t.HitBytes += size
	case metrics.RemoteHit:
		t.Remote++
		t.HitBytes += size
	default:
		t.Miss++
	}
	t.TotalBytes += size
	if stored {
		t.Stored++
	}
	if promoted {
		t.Promoted++
	}
}

// workload generates the shared deterministic trace: small enough that
// the live replay (one real ICP fan-out per non-local request) stays
// fast, contended enough (catalogue ≫ cache) that evictions happen and
// expiration ages diverge per cache, with enough distinct clients that
// all four caches see traffic.
func workload(t testing.TB) []trace.Record {
	t.Helper()
	cfg := trace.BULike().Scaled(0.003)
	cfg.Users = 8
	cfg.Sessions = 32
	cfg.CohortSize = 4
	records, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("generate trace: %v", err)
	}
	records = trace.CleanZeroSizes(records, trace.DefaultDocSize)
	trace.SortByTime(records)
	return records
}

func TestSimLiveParityICPEA(t *testing.T) {
	const caches = 4
	const perCache = int64(48 << 10)
	records := workload(t)

	// Sim side: a distributed EA group with ICP location and the same
	// per-cache budget the live nodes get. group.New splits
	// AggregateBytes evenly and defaults to LRU and the package
	// expiration horizon — the live configs below mirror both.
	g, err := group.New(group.Config{
		Caches:         caches,
		AggregateBytes: perCache * caches,
		Scheme:         core.EA{},
	})
	if err != nil {
		t.Fatalf("group.New: %v", err)
	}
	leaves := g.Leaves()
	leafIndex := make(map[string]int, len(leaves))
	for i, leaf := range leaves {
		leafIndex[leaf.ID()] = i
	}

	var simT tally
	route := make([]int, len(records))
	for i, r := range records {
		idx, ok := leafIndex[g.Route(r.Client).ID()]
		if !ok {
			t.Fatalf("client %q routed to unknown leaf", r.Client)
		}
		route[i] = idx
		res, err := leaves[idx].Request(r.URL, r.Size, r.Time)
		if err != nil {
			t.Fatalf("sim request %d (%s): %v", i, r.URL, err)
		}
		simT.add(res.Outcome, res.Doc.Size, res.Stored, res.Promoted)
	}

	// Live side: four real nodes over loopback, EA + ICP, sharing a
	// trace-driven clock so cache-visible time matches the sim exactly.
	clk := &traceClock{}
	clk.set(records[0].Time)

	origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer origin.Close()

	nodes := make([]*netnode.Node, caches)
	for i := range nodes {
		store, err := cache.New(cache.Config{
			Capacity:          perCache,
			ExpirationHorizon: cache.DefaultExpirationHorizon,
		})
		if err != nil {
			t.Fatalf("cache %d: %v", i, err)
		}
		node, err := netnode.New(netnode.Config{
			ID:         fmt.Sprintf("cache-%d", i),
			ICPAddr:    "127.0.0.1:0",
			HTTPAddr:   "127.0.0.1:0",
			Store:      store,
			Scheme:     core.EA{},
			OriginAddr: origin.Addr(),
			Now:        clk.now,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		defer node.Close()
		nodes[i] = node
	}
	// Wire peers in index order skipping self — the exact neighbour
	// order the sim group uses, which the live ICP locator's
	// peer-list-position ordering turns into the same responder choice.
	for i, nd := range nodes {
		var peers []netnode.Peer
		for j, other := range nodes {
			if j == i {
				continue
			}
			peers = append(peers, netnode.Peer{ICP: other.ICPAddr(), HTTP: other.HTTPAddr()})
		}
		nd.SetPeers(peers)
	}

	var liveT tally
	for i, r := range records {
		clk.set(r.Time)
		res, err := nodes[route[i]].Request(r.URL, r.Size)
		if err != nil {
			t.Fatalf("live request %d (%s): %v", i, r.URL, err)
		}
		liveT.add(res.Outcome, res.Size, res.Stored, res.Promoted)
	}

	if simT != liveT {
		t.Errorf("decision divergence over %d requests:\n  sim  %+v\n  live %+v", len(records), simT, liveT)
	}
	// Single-flight coalescing is on by default in both stacks; for this
	// serialized replay it must be a strict no-op — no request may have
	// been served as a follower, shed, or queued behind the origin
	// semaphore, or the overload layer changed serialized behaviour.
	for i, nd := range nodes {
		rb := nd.Robustness()
		if rb.CoalescedFollowers != 0 || rb.LeaderRetries != 0 || rb.Sheds != 0 || rb.OriginWaits != 0 {
			t.Errorf("cache-%d: overload layer fired on serialized traffic: %+v", i, rb)
		}
	}
	if simT.Remote == 0 {
		t.Error("workload produced no remote hits; parity over the cooperative path untested")
	}
	if simT.Stored == 0 || simT.Promoted == 0 {
		t.Errorf("workload exercised no placement decisions (stored=%d promoted=%d)", simT.Stored, simT.Promoted)
	}

	// Final resident sets must match cache-for-cache: equal counts plus
	// sim ⊆ live is set equality.
	for i, leaf := range leaves {
		urls := leaf.Store().URLs()
		if got := nodes[i].Len(); got != len(urls) {
			t.Errorf("cache-%d resident count: sim %d, live %d", i, len(urls), got)
		}
		for _, u := range urls {
			if !nodes[i].Contains(u) {
				t.Errorf("cache-%d: sim holds %s, live does not", i, u)
			}
		}
	}
}
