package proxy

import (
	"errors"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/metrics"
)

var t0 = time.Date(1994, time.November, 15, 12, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

// newProxy builds a proxy with a fresh LRU store of the given capacity.
func newProxy(t *testing.T, id string, capacity int64, scheme core.Scheme) *Proxy {
	t.Helper()
	store, err := cache.New(cache.Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{ID: id, Store: store, Scheme: scheme, Origin: SizeHintOrigin{}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// wire links proxies as full-mesh peers.
func wire(t *testing.T, proxies ...*Proxy) {
	t.Helper()
	for i, p := range proxies {
		var sibs []*Proxy
		for j, s := range proxies {
			if i != j {
				sibs = append(sibs, s)
			}
		}
		if err := p.SetSiblings(sibs...); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	store, err := cache.New(cache.Config{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Store: store, Scheme: core.AdHoc{}}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, err := New(Config{ID: "x", Scheme: core.AdHoc{}}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(Config{ID: "x", Store: store}); err == nil {
		t.Fatal("nil scheme accepted")
	}
}

func TestSelfWiringRejected(t *testing.T) {
	p := newProxy(t, "a", 100, core.AdHoc{})
	if err := p.SetSiblings(p); err == nil {
		t.Fatal("self sibling accepted")
	}
	if err := p.SetParent(p); err == nil {
		t.Fatal("self parent accepted")
	}
}

func TestMissThenLocalHit(t *testing.T) {
	p := newProxy(t, "a", 1000, core.AdHoc{})
	res, err := p.Request("http://d/", 100, at(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss || !res.Stored {
		t.Fatalf("first request = %+v, want stored miss", res)
	}
	if res.Doc.Size != 100 {
		t.Fatalf("size = %d", res.Doc.Size)
	}
	res, err = p.Request("http://d/", 100, at(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.LocalHit {
		t.Fatalf("second request = %+v, want local hit", res)
	}
}

func TestEmptyURLRejected(t *testing.T) {
	p := newProxy(t, "a", 1000, core.AdHoc{})
	if _, err := p.Request("", 10, at(0)); err == nil {
		t.Fatal("empty URL accepted")
	}
}

func TestNoOriginFails(t *testing.T) {
	store, err := cache.New(cache.Config{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{ID: "a", Store: store, Scheme: core.AdHoc{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Request("http://d/", 10, at(0)); err == nil {
		t.Fatal("miss without origin succeeded")
	}
}

func TestRemoteHitAdHoc(t *testing.T) {
	a := newProxy(t, "a", 1000, core.AdHoc{})
	b := newProxy(t, "b", 1000, core.AdHoc{})
	wire(t, a, b)

	if _, err := a.Request("http://d/", 100, at(0)); err != nil { // miss, stored at a
		t.Fatal(err)
	}
	res, err := b.Request("http://d/", 100, at(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Responder != "a" {
		t.Fatalf("res = %+v, want remote hit from a", res)
	}
	// Ad-hoc: b stores a copy, and the transfer counts as a hit at a.
	if !res.Stored || !b.Store().Contains("http://d/") {
		t.Fatal("ad-hoc requester did not store")
	}
	ea, _ := a.Store().Entry("http://d/")
	if ea.Hits != 2 {
		t.Fatalf("responder hits = %d, want 2 (fresh lease of life)", ea.Hits)
	}
}

func TestRemoteHitEATieKeepsSingleCopy(t *testing.T) {
	// Cold caches: both expiration ages are NoContention, a tie. Under
	// the strict EA rules the requester must NOT store and the responder
	// must NOT be promoted.
	a := newProxy(t, "a", 1000, core.EA{})
	b := newProxy(t, "b", 1000, core.EA{})
	wire(t, a, b)

	if _, err := a.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request("http://d/", 100, at(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("res = %+v", res)
	}
	if res.Stored || b.Store().Contains("http://d/") {
		t.Fatal("EA stored on a cold tie")
	}
	ea, _ := a.Store().Entry("http://d/")
	if ea.Hits != 1 {
		t.Fatalf("responder hits = %d, want 1 (no promotion on tie)", ea.Hits)
	}
	// Every subsequent request at b keeps being a remote hit.
	res, err = b.Request("http://d/", 100, at(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("res = %+v, want remote hit again", res)
	}
}

// contendStore drives evictions through a store so its expiration age
// becomes finite and small.
func contendStore(t *testing.T, p *Proxy, n int, start int) {
	t.Helper()
	for i := 0; i < n; i++ {
		url := "http://churn/" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		if _, err := p.Request(url, 400, at(start+i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemoteHitEAStoresAtLessContendedCache(t *testing.T) {
	// a is heavily contended (small cache, lots of churn); b is idle.
	// When b fetches from a, b's age (NoContention) exceeds a's, so b
	// stores the copy.
	a := newProxy(t, "a", 1000, core.EA{})
	b := newProxy(t, "b", 100000, core.EA{})
	wire(t, a, b)

	contendStore(t, a, 30, 0)
	if _, err := a.Request("http://d/", 400, at(100)); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request("http://d/", 400, at(101))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || !res.Stored {
		t.Fatalf("res = %+v, want stored remote hit", res)
	}
	if !b.Store().Contains("http://d/") {
		t.Fatal("copy missing at requester")
	}
}

func TestRemoteHitEAPromotesAtLessContendedResponder(t *testing.T) {
	// b (requester) is churned; a (responder) is idle: a's age wins, b
	// must not store, and a's copy is promoted.
	a := newProxy(t, "a", 100000, core.EA{})
	b := newProxy(t, "b", 1000, core.EA{})
	wire(t, a, b)

	if _, err := a.Request("http://d/", 400, at(0)); err != nil {
		t.Fatal(err)
	}
	contendStore(t, b, 30, 1)

	before, _ := a.Store().Entry("http://d/")
	res, err := b.Request("http://d/", 400, at(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Stored {
		t.Fatalf("res = %+v, want unstored remote hit", res)
	}
	if !res.Promoted {
		t.Fatalf("res = %+v, want promotion", res)
	}
	after, _ := a.Store().Entry("http://d/")
	if after.Hits != before.Hits+1 || !after.LastHit.Equal(at(100)) {
		t.Fatalf("responder copy not promoted: before=%+v after=%+v", before, after)
	}
}

func TestICPCountsAndNoTouch(t *testing.T) {
	a := newProxy(t, "a", 1000, core.AdHoc{})
	b := newProxy(t, "b", 1000, core.AdHoc{})
	c := newProxy(t, "c", 1000, core.AdHoc{})
	wire(t, a, b, c)

	if _, err := a.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	// a's miss queried b and c.
	if got := a.ICP().QueriesSent; got != 2 {
		t.Fatalf("a queries = %d, want 2", got)
	}
	if got := b.ICP().RepliesMiss; got != 1 {
		t.Fatalf("b miss replies = %d, want 1", got)
	}
	// b requests: ICP hit at a, miss at c.
	if _, err := b.Request("http://d/", 100, at(1)); err != nil {
		t.Fatal(err)
	}
	if got := a.ICP().RepliesHit; got != 1 {
		t.Fatalf("a hit replies = %d, want 1", got)
	}
	if got := a.ICP().RemoteServed; got != 1 {
		t.Fatalf("a remote served = %d, want 1", got)
	}
}

func TestICPDeterministicResponderOrder(t *testing.T) {
	a := newProxy(t, "a", 1000, core.AdHoc{})
	b := newProxy(t, "b", 1000, core.AdHoc{})
	c := newProxy(t, "c", 1000, core.AdHoc{})
	wire(t, a, b, c)

	// Both b and c hold the document; a must pick its first sibling (b).
	if _, err := b.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request("http://d/", 100, at(1)); err != nil {
		t.Fatal(err)
	}
	res, err := a.Request("http://d/", 100, at(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Responder != "b" {
		t.Fatalf("responder = %q, want b (wiring order)", res.Responder)
	}
}

func TestOversizedDocServedNotCached(t *testing.T) {
	p := newProxy(t, "a", 100, core.AdHoc{})
	res, err := p.Request("http://huge/", 5000, at(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Stored || p.Store().Len() != 0 {
		t.Fatal("oversized document cached")
	}
}

func TestHierarchyMissAdHoc(t *testing.T) {
	parent := newProxy(t, "parent", 10000, core.AdHoc{})
	child := newProxy(t, "child", 10000, core.AdHoc{})
	if err := child.SetParent(parent); err != nil {
		t.Fatal(err)
	}

	res, err := child.Request("http://d/", 100, at(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("outcome = %v, want miss (origin through parent)", res.Outcome)
	}
	// Ad-hoc: both parent and child store.
	if !parent.Store().Contains("http://d/") || !child.Store().Contains("http://d/") {
		t.Fatal("ad-hoc hierarchy did not store at both levels")
	}
}

func TestHierarchyMissEAColdTieStoresAtChild(t *testing.T) {
	parent := newProxy(t, "parent", 10000, core.EA{})
	child := newProxy(t, "child", 10000, core.EA{})
	if err := child.SetParent(parent); err != nil {
		t.Fatal(err)
	}

	res, err := child.Request("http://d/", 100, at(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	// Cold tie: exactly the child stores (OnMissViaParent >=), the
	// parent does not (OnParentResolve strict).
	if parent.Store().Contains("http://d/") {
		t.Fatal("parent stored on cold tie")
	}
	if !child.Store().Contains("http://d/") {
		t.Fatal("nobody stored the fetched document")
	}
}

func TestHierarchyParentHitViaICP(t *testing.T) {
	parent := newProxy(t, "parent", 10000, core.AdHoc{})
	childA := newProxy(t, "a", 10000, core.AdHoc{})
	childB := newProxy(t, "b", 10000, core.AdHoc{})
	wire(t, childA, childB)
	for _, c := range []*Proxy{childA, childB} {
		if err := c.SetParent(parent); err != nil {
			t.Fatal(err)
		}
	}

	// Seed the parent directly.
	if _, err := parent.Store().Put(cache.Document{URL: "http://d/", Size: 100}, at(0)); err != nil {
		t.Fatal(err)
	}
	res, err := childA.Request("http://d/", 100, at(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Responder != "parent" {
		t.Fatalf("res = %+v, want remote hit from parent", res)
	}
}

func TestThreeLevelHierarchyResolution(t *testing.T) {
	root := newProxy(t, "root", 10000, core.AdHoc{})
	mid := newProxy(t, "mid", 10000, core.AdHoc{})
	leaf := newProxy(t, "leaf", 10000, core.AdHoc{})
	if err := mid.SetParent(root); err != nil {
		t.Fatal(err)
	}
	if err := leaf.SetParent(mid); err != nil {
		t.Fatal(err)
	}

	res, err := leaf.Request("http://d/", 100, at(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	// Ad-hoc stores at every level on the way down.
	for _, p := range []*Proxy{root, mid, leaf} {
		if !p.Store().Contains("http://d/") {
			t.Fatalf("%s did not store", p.ID())
		}
	}

	// A second leaf under root resolves via its own chain and counts the
	// root's copy as a group hit.
	leaf2 := newProxy(t, "leaf2", 10000, core.AdHoc{})
	if err := leaf2.SetParent(root); err != nil {
		t.Fatal(err)
	}
	res, err = leaf2.Request("http://d/", 100, at(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("outcome = %v, want remote hit (root had it)", res.Outcome)
	}
}

type failingOrigin struct{}

func (failingOrigin) Fetch(string, int64, time.Time) (cache.Document, error) {
	return cache.Document{}, errors.New("origin down")
}

func TestOriginErrorPropagates(t *testing.T) {
	store, err := cache.New(cache.Config{Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{ID: "a", Store: store, Scheme: core.AdHoc{}, Origin: failingOrigin{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Request("http://d/", 10, at(0)); err == nil {
		t.Fatal("origin error swallowed")
	}
}
