package proxy

import (
	"fmt"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/metrics"
)

// newDigestProxy builds a proxy using Summary-Cache digests for location.
func newDigestProxy(t *testing.T, id string, capacity int64, rebuildEvery int64) *Proxy {
	t.Helper()
	store, err := cache.New(cache.Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		ID:       id,
		Store:    store,
		Scheme:   core.AdHoc{},
		Origin:   SizeHintOrigin{},
		Location: LocateDigest,
		Digest:   DigestConfig{Expected: 64, FPRate: 0.01, RebuildEvery: rebuildEvery},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// newDigestProxyWithOrigin is newDigestProxy with a custom origin.
func newDigestProxyWithOrigin(t *testing.T, id string, capacity int64, origin Origin) *Proxy {
	t.Helper()
	store, err := cache.New(cache.Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		ID:       id,
		Store:    store,
		Scheme:   core.AdHoc{},
		Origin:   origin,
		Location: LocateDigest,
		Digest:   DigestConfig{Expected: 64, FPRate: 0.01, RebuildEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLocationString(t *testing.T) {
	if LocateICP.String() != "icp" || LocateDigest.String() != "digest" {
		t.Fatal("location names wrong")
	}
	if Location(9).String() != "location(9)" {
		t.Fatal("unknown location string")
	}
}

func TestDigestConfigDefaults(t *testing.T) {
	dc := DigestConfig{}.WithDefaults(1 << 20)
	if dc.Expected != 256 || dc.FPRate != 0.01 || dc.RebuildEvery != 5 {
		t.Fatalf("defaults = %+v", dc)
	}
	tiny := DigestConfig{}.WithDefaults(1024)
	if tiny.Expected != 16 || tiny.RebuildEvery < 1 {
		t.Fatalf("tiny defaults = %+v", tiny)
	}
}

func TestDigestRemoteHit(t *testing.T) {
	a := newDigestProxy(t, "a", 1<<20, 1)
	b := newDigestProxy(t, "b", 1<<20, 1)
	wire(t, a, b)

	if _, err := a.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request("http://d/", 100, at(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Responder != "a" {
		t.Fatalf("res = %+v, want remote hit via digest", res)
	}
	// Digest location sends no ICP queries.
	if b.ICP().QueriesSent != 0 {
		t.Fatalf("queries sent = %d, want 0", b.ICP().QueriesSent)
	}
	if b.ICP().DigestChecks == 0 {
		t.Fatal("no digest checks recorded")
	}
	// The summary is maintained incrementally: no full-scan rebuild ever
	// runs in steady state.
	if a.ICP().DigestRebuilds != 0 {
		t.Fatalf("rebuilds = %d, want 0 (incremental maintenance)", a.ICP().DigestRebuilds)
	}
}

func TestDigestAdvertisesNewContentImmediately(t *testing.T) {
	// The incremental summary tracks every mutation as it happens: a
	// document a caches is visible to b's next consultation with no
	// republication step and no rebuild.
	a := newDigestProxy(t, "a", 1<<20, 1000)
	b := newDigestProxy(t, "b", 1<<20, 1000)
	wire(t, a, b)

	if _, err := a.Request("http://d0/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("http://d0/", 100, at(1)); err != nil {
		t.Fatal(err)
	}

	// a caches a fresh document; the live summary lists it at once.
	if _, err := a.Request("http://fresh/", 100, at(2)); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request("http://fresh/", 100, at(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Responder != "a" {
		t.Fatalf("res = %+v, want immediate remote hit", res)
	}
	if a.ICP().DigestRebuilds != 0 {
		t.Fatalf("rebuilds = %d, want 0", a.ICP().DigestRebuilds)
	}
	// Evictions leave the summary too: drop the documents and the
	// advertisement follows without a rebuild.
	a.Store().Remove("http://fresh/")
	if got, _, _ := a.DigestAdvertisement(); got == nil {
		t.Fatal("digest proxy returned no advertisement")
	}
	if a.advertisedMayContain("http://fresh/") {
		t.Fatal("removed document still advertised")
	}
}

// expiringOrigin hands out documents that expire ttl after the fetch.
type expiringOrigin struct{ ttl time.Duration }

func (o expiringOrigin) Fetch(url string, sizeHint int64, now time.Time) (cache.Document, error) {
	if sizeHint <= 0 {
		sizeHint = 4096
	}
	return cache.Document{URL: url, Size: sizeHint, Expires: now.Add(o.ttl)}, nil
}

func TestDigestFalseHitFallsThrough(t *testing.T) {
	// The summary advertises membership, not freshness: a's copy of X
	// expires while still resident, b's fetch attempt fails the
	// freshness check (false hit), and the request falls through to the
	// origin rather than erroring.
	a := newDigestProxyWithOrigin(t, "a", 1<<20, expiringOrigin{ttl: 2 * time.Second})
	b := newDigestProxyWithOrigin(t, "b", 1<<20, expiringOrigin{ttl: 2 * time.Second})
	wire(t, a, b)

	if _, err := a.Request("http://x/", 200, at(0)); err != nil {
		t.Fatal(err)
	}
	if !a.Store().Contains("http://x/") {
		t.Fatal("test setup: x not resident at a")
	}

	// At at(3) a's copy has expired but is still resident — and still
	// advertised, because the digest tracks membership only.
	res, err := b.Request("http://x/", 200, at(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("res = %+v, want miss after false hit", res)
	}
	if b.ICP().DigestFalseHits == 0 {
		t.Fatal("false hit not recorded")
	}
}

func TestDigestMixedGroupFallsBackToExact(t *testing.T) {
	// A digest-mode proxy with an ICP-mode neighbour still finds its
	// documents: the neighbour answers exactly.
	a := newProxy(t, "a", 1<<20, core.AdHoc{}) // ICP mode
	b := newDigestProxy(t, "b", 1<<20, 1)
	wire(t, a, b)

	if _, err := a.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	res, err := b.Request("http://d/", 100, at(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("res = %+v", res)
	}
}

func TestDigestGroupWorkload(t *testing.T) {
	// A longer digest-mode workload: conservation holds and remote hits
	// happen without any ICP traffic.
	proxies := []*Proxy{
		newDigestProxy(t, "p0", 8<<10, 4),
		newDigestProxy(t, "p1", 8<<10, 4),
		newDigestProxy(t, "p2", 8<<10, 4),
	}
	wire(t, proxies...)

	var c metrics.Counters
	for i := 0; i < 600; i++ {
		p := proxies[i%len(proxies)]
		url := fmt.Sprintf("http://w/doc%02d", i%25)
		res, err := p.Request(url, 900, at(i))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		c.Record(res.Outcome, res.Doc.Size)
	}
	if s := c.Snapshot(); s.LocalHits+s.RemoteHits+s.Misses != s.Requests {
		t.Fatal("conservation violated")
	} else if s.RemoteHits == 0 {
		t.Fatal("digests produced no cooperative hits")
	}
	for _, p := range proxies {
		if p.ICP().QueriesSent != 0 {
			t.Fatalf("%s sent ICP queries in digest mode", p.ID())
		}
	}
}
