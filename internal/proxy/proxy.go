// Package proxy implements a cooperative caching proxy node: local cache
// lookup, ICP-style neighbour location, inter-proxy document fetch with
// expiration-age piggybacking, and the placement decision of the configured
// scheme (ad-hoc or EA). It is the deterministic in-process counterpart of
// the wire node in internal/netnode — the message sequence and the decision
// inputs are identical, only the transport differs.
package proxy

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"eacache/internal/cache"
	"eacache/internal/chash"
	"eacache/internal/core"
	"eacache/internal/digest"
	"eacache/internal/obs"
	"eacache/internal/resolve"
)

// Location is the shared document-location mechanism enum, aliased from
// internal/resolve so sim configurations, live-node configurations, and
// the proxyd -locate flag all speak one type.
type Location = resolve.Location

// Location mechanisms, re-exported for existing call sites.
const (
	// LocateICP queries every neighbour with an ICP message on each
	// local miss (the paper's setting).
	LocateICP = resolve.LocateICP
	// LocateDigest consults the neighbours' advertised Bloom-filter
	// summaries (Summary Cache).
	LocateDigest = resolve.LocateDigest
	// LocateHash routes every URL to its consistent-hash home node.
	LocateHash = resolve.LocateHash
)

// DigestConfig tunes the Summary-Cache digests when LocateDigest is used.
type DigestConfig struct {
	// Expected is the filter's expected entry count; 0 derives it from
	// the cache capacity at the paper's 4KB mean document size.
	Expected int
	// FPRate is the target false-positive rate (default 0.01).
	FPRate float64
	// RebuildEvery is the number of cache mutations (insertions +
	// evictions) tolerated before republishing by the periodic
	// digest.Summary. The proxy itself now maintains its summary
	// incrementally (zero steady-state rebuilds); the field is kept so
	// existing configurations and the standalone Summary type keep
	// working.
	RebuildEvery int64
}

// WithDefaults fills the zero fields from capacity, at the paper's 4KB
// mean document size. Exported so the live node (internal/netnode) sizes
// its filters exactly the same way as the in-process proxy.
func (c DigestConfig) WithDefaults(capacity int64) DigestConfig {
	if c.Expected == 0 {
		c.Expected = int(capacity / 4096)
		if c.Expected < 16 {
			c.Expected = 16
		}
	}
	if c.FPRate == 0 {
		c.FPRate = 0.01
	}
	if c.RebuildEvery == 0 {
		c.RebuildEvery = int64(c.Expected / 50)
		if c.RebuildEvery < 1 {
			c.RebuildEvery = 1
		}
	}
	return c
}

// Origin models the origin servers behind the cache group. Trace-driven
// simulations know each document's size from the trace record, so the
// default origin materialises a document from the URL and size hint.
type Origin interface {
	// Fetch retrieves url from its origin server at time now. sizeHint
	// is the size recorded in the trace, or 0 when unknown.
	Fetch(url string, sizeHint int64, now time.Time) (cache.Document, error)
}

// SizeHintOrigin is an Origin that fabricates immortal documents of the
// hinted size (or the paper's 4KB average when the hint is missing). It
// never fails, matching the paper's assumption that any miss can be served
// by the origin, and never expires anything — the paper studies placement
// with coherence out of scope.
type SizeHintOrigin struct{}

var _ Origin = SizeHintOrigin{}

// Fetch implements Origin.
func (SizeHintOrigin) Fetch(url string, sizeHint int64, _ time.Time) (cache.Document, error) {
	if sizeHint <= 0 {
		sizeHint = 4096
	}
	return cache.Document{URL: url, Size: sizeHint}, nil
}

// TTLClass is one freshness class of a TTLOrigin.
type TTLClass struct {
	// Fraction of URLs (by hash) in this class.
	Fraction float64
	// TTL is the freshness lifetime assigned at fetch time; 0 means the
	// document never expires.
	TTL time.Duration
}

// TTLOrigin is an Origin that assigns each URL a deterministic freshness
// lifetime, modelling the coherence side of web caching: some content is
// dynamic and expires in minutes, some is stable for hours, most mid-90s
// content carried no expiry at all. Stale copies stop being served or
// advertised and are re-fetched on the next request.
type TTLOrigin struct {
	// Classes partition the URL space; fractions should sum to <= 1,
	// with the remainder immortal.
	Classes []TTLClass
}

var _ Origin = TTLOrigin{}

// EraTTLOrigin returns a TTLOrigin with a mid-90s-shaped freshness mix:
// 10% of URLs expire in 5 minutes (dynamic pages), 30% in 1 hour (news,
// listings), and the rest never.
func EraTTLOrigin() TTLOrigin {
	return TTLOrigin{Classes: []TTLClass{
		{Fraction: 0.10, TTL: 5 * time.Minute},
		{Fraction: 0.30, TTL: time.Hour},
	}}
}

// Fetch implements Origin.
func (o TTLOrigin) Fetch(url string, sizeHint int64, now time.Time) (cache.Document, error) {
	if sizeHint <= 0 {
		sizeHint = 4096
	}
	doc := cache.Document{URL: url, Size: sizeHint}
	if ttl := o.ttlFor(url); ttl > 0 {
		doc.Expires = now.Add(ttl)
	}
	return doc, nil
}

// TTLFor exposes the class lifetime assigned to url (0 = immortal).
func (o TTLOrigin) TTLFor(url string) time.Duration { return o.ttlFor(url) }

func (o TTLOrigin) ttlFor(url string) time.Duration {
	h := fnv.New32a()
	_, _ = h.Write([]byte(url))
	u := float64(h.Sum32()) / float64(1<<32)
	acc := 0.0
	for _, c := range o.Classes {
		acc += c.Fraction
		if u < acc {
			return c.TTL
		}
	}
	return 0
}

// Config configures a Proxy.
type Config struct {
	// ID names the proxy ("cache-0", ...). Must be unique in a group.
	ID string
	// Store is the proxy's cache. Required.
	Store *cache.Store
	// Scheme is the placement scheme. Required.
	Scheme core.Scheme
	// Origin serves group-wide misses. Required for proxies that resolve
	// misses (all distributed proxies and hierarchy roots).
	Origin Origin
	// Location selects the document-location mechanism. Defaults to
	// LocateICP, the paper's setting.
	Location Location
	// Digest tunes the Summary-Cache digests when Location is
	// LocateDigest.
	Digest DigestConfig
	// Tracer, when set, observes every placement-relevant step — the
	// exchanged expiration ages and the store/promote decisions.
	Tracer Tracer
}

// Result describes how one client request was served. It is the
// engine's result type verbatim — the proxy adds nothing to it.
type Result = resolve.Result

// ICPStats counts the protocol traffic a proxy generated and served.
type ICPStats struct {
	// QueriesSent is the number of ICP queries this proxy issued (one
	// per neighbour per local miss).
	QueriesSent int64
	// RepliesHit / RepliesMiss count the replies this proxy produced for
	// neighbours' queries.
	RepliesHit  int64
	RepliesMiss int64
	// RemoteServed counts documents this proxy transferred to group
	// members (remote hits it answered plus parent resolutions).
	RemoteServed int64
	// DigestChecks counts local digest consultations (LocateDigest).
	DigestChecks int64
	// DigestFalseHits counts fetch attempts against a neighbour whose
	// stale or colliding digest advertised a document it did not have.
	DigestFalseHits int64
	// DigestRebuilds counts full-URL-scan rebuilds of this proxy's own
	// summary. The summary is maintained incrementally from cache
	// events, so this stays 0 in steady state — it counts only the
	// counter-saturation escape hatch.
	DigestRebuilds int64
}

// Proxy is one cooperative cache node. It is not safe for concurrent use;
// the simulator is single-threaded per group and the live node (netnode)
// adds its own locking.
type Proxy struct {
	id       string
	store    *cache.Store
	scheme   core.Scheme
	origin   Origin
	location Location
	summary  *digest.Incremental
	tracer   Tracer

	siblings []*Proxy
	parent   *Proxy

	// engine is the shared resolution engine; Request delegates to it.
	engine *resolve.Engine
	// hash is the consistent-hash locator, built by SetSiblings when
	// location is LocateHash.
	hash *resolve.HashLocator

	// decisions, when attached via RecordDecisions, receives every
	// placement verdict this proxy's requests produce — the simulator's
	// copy of the live node's /debug/placement audit stream.
	decisions *obs.DecisionLog

	icp ICPStats
}

// RecordDecisions attaches a placement-decision audit log; every
// accept/reject/promote verdict from this proxy's requests is recorded
// into it, mirroring the live node's audit stream. A nil log detaches.
func (p *Proxy) RecordDecisions(l *obs.DecisionLog) { p.decisions = l }

// New builds a proxy from cfg.
func New(cfg Config) (*Proxy, error) {
	if cfg.ID == "" {
		return nil, errors.New("proxy: empty ID")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("proxy %s: nil store", cfg.ID)
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("proxy %s: nil scheme", cfg.ID)
	}
	if cfg.Location == 0 {
		cfg.Location = LocateICP
	}
	p := &Proxy{
		id:       cfg.ID,
		store:    cfg.Store,
		scheme:   cfg.Scheme,
		origin:   cfg.Origin,
		location: cfg.Location,
		tracer:   cfg.Tracer,
	}
	if cfg.Location == LocateDigest {
		dc := cfg.Digest.WithDefaults(cfg.Store.Capacity())
		summary, err := digest.NewIncremental(dc.Expected, dc.FPRate, 0)
		if err != nil {
			return nil, fmt.Errorf("proxy %s: %w", cfg.ID, err)
		}
		p.summary = summary
		// The summary is maintained from the store's event sink — every
		// Put/Evict/Remove is O(k) counter work, the same wiring the live
		// node uses — after one seeding scan of whatever the store already
		// holds.
		summary.Seed(cfg.Store.URLs())
		cfg.Store.SetEventSink(p.digestEvent)
	}
	p.engine = &resolve.Engine{
		ID:        fmt.Sprintf("proxy %s", cfg.ID),
		Store:     simStore{p},
		Scheme:    cfg.Scheme,
		Locator:   simLocator{p},
		Transport: simTransport{p},
		Hooks:     simHooks{p},
		// The simulator is single-threaded per run, so single-flight
		// coalescing never fires; it is wired anyway so the sim and live
		// engines are configured identically and the parity gate covers
		// the (serialized = no-op) property.
		Coalescer: resolve.NewCoalescer(),
		// A parent failure in the simulator is a configuration bug that
		// must surface, not a condition to degrade around.
		DegradeToOrigin: false,
	}
	return p, nil
}

// ID returns the proxy's identifier.
func (p *Proxy) ID() string { return p.id }

// Store exposes the proxy's cache for inspection.
func (p *Proxy) Store() *cache.Store { return p.store }

// Scheme returns the placement scheme in use.
func (p *Proxy) Scheme() core.Scheme { return p.scheme }

// ICP returns a copy of the protocol counters.
func (p *Proxy) ICP() ICPStats { return p.icp }

// SetSiblings wires the proxy's same-level neighbours (peers in the
// distributed architecture, siblings in the hierarchical one). The proxy
// itself must not be in the list.
func (p *Proxy) SetSiblings(siblings ...*Proxy) error {
	for _, s := range siblings {
		if s == p {
			return fmt.Errorf("proxy %s: cannot be its own sibling", p.id)
		}
	}
	p.siblings = append([]*Proxy(nil), siblings...)
	if p.location == LocateHash {
		// Build the group's hash ring over proxy IDs. The live node
		// builds its ring over the same member names (netnode HashName),
		// so sim and live route URLs to identical homes.
		members := make([]string, 0, len(p.siblings)+1)
		byID := make(map[string]*Proxy, len(p.siblings))
		members = append(members, p.id)
		for _, s := range p.siblings {
			members = append(members, s.id)
			byID[s.id] = s
		}
		ring, err := chash.New(0, members...)
		if err != nil {
			return fmt.Errorf("proxy %s: hash ring: %w", p.id, err)
		}
		p.hash = &resolve.HashLocator{
			Ring: ring,
			Self: p.id,
			Candidate: func(member string) (resolve.Candidate, bool) {
				s, ok := byID[member]
				if !ok {
					return resolve.Candidate{}, false
				}
				// The synchronous simulator has no peer failures; every
				// ring member is always reachable.
				return resolve.Candidate{ID: s.id, Ref: s}, true
			},
		}
	}
	return nil
}

// SetParent wires the proxy's hierarchical parent (nil for distributed
// proxies and hierarchy roots).
func (p *Proxy) SetParent(parent *Proxy) error {
	if parent == p {
		return fmt.Errorf("proxy %s: cannot be its own parent", p.id)
	}
	if parent != nil && p.location == LocateHash {
		// Hash routing partitions the URL space across the group; a
		// hierarchical parent would reintroduce a second copy holder.
		return fmt.Errorf("proxy %s: hash location is incompatible with a hierarchical parent", p.id)
	}
	p.parent = parent
	return nil
}

// Parent returns the hierarchical parent, or nil.
func (p *Proxy) Parent() *Proxy { return p.parent }

// Request serves one client request arriving at this proxy at simulated
// time now, delegating the canonical lifecycle to the shared resolution
// engine (internal/resolve):
//
//  1. local lookup — a hit is served immediately (local hit);
//  2. group location — an ICP query to every sibling and the parent, a
//     consultation of the neighbours' advertised digests, or the URL's
//     consistent-hash home, per the configured Location — then the
//     document transfer with both expiration ages piggybacked and the
//     placement scheme's store/promote decisions (remote hit);
//  3. otherwise the miss is resolved from the origin — directly in the
//     distributed architecture, or through the parent in the hierarchical
//     one, with the scheme deciding placement at each hop (miss).
func (p *Proxy) Request(url string, sizeHint int64, now time.Time) (Result, error) {
	return p.engine.Resolve(nil, url, sizeHint, now)
}

// icpLocate runs the ICP exchange: one query per neighbour, first positive
// replier wins. Neighbour order is deterministic (siblings in wiring order,
// then the parent), standing in for "first reply to arrive".
func (p *Proxy) icpLocate(url string, now time.Time) *Proxy {
	var hit *Proxy
	for _, n := range p.neighbours() {
		p.icp.QueriesSent++
		if n.handleICPQuery(url, now) {
			if hit == nil {
				hit = n
			}
		}
	}
	return hit
}

// digestLocate consults the neighbours' advertised summaries without
// sending any messages. Every advertising neighbour is a candidate; the
// caller falls through candidates whose digest lied.
func (p *Proxy) digestLocate(url string) []*Proxy {
	var candidates []*Proxy
	for _, n := range p.neighbours() {
		p.icp.DigestChecks++
		if n.advertisedMayContain(url) {
			candidates = append(candidates, n)
		}
	}
	return candidates
}

// digestEvent is the cache event sink feeding the proxy's own summary:
// inserts count in, evictions and removals count out, refreshes of an
// already cached URL are membership no-ops.
func (p *Proxy) digestEvent(ev cache.Event) {
	switch ev.Kind {
	case cache.EventInsert:
		if !ev.Refresh {
			p.summary.Add(ev.Doc.URL)
		}
	case cache.EventEvict, cache.EventRemove:
		p.summary.Remove(ev.Doc.URL)
	}
}

// advertisedMayContain consults this proxy's published summary. The
// summary tracks the cache incrementally, so it is always current;
// the only remaining rebuild is the counter-saturation escape hatch.
// Note the summary advertises membership, not freshness — an expired
// resident copy is still advertised and surfaces as a false hit.
func (p *Proxy) advertisedMayContain(url string) bool {
	if p.summary == nil {
		// Neighbour not running digests: fall back to an exact answer
		// so mixed groups still work.
		return p.store.Contains(url)
	}
	if p.summary.NeedsRebuild() {
		p.summary.Rebuild(p.store.URLs())
		p.icp.DigestRebuilds++
	}
	return p.summary.MayContain(url)
}

// DigestAdvertisement returns the proxy's advertised summary encoded as
// the versioned full-sync envelope — byte-comparable with a live node's
// answer to "eac:digest?since=0". ok is false when the proxy does not
// locate via digests.
func (p *Proxy) DigestAdvertisement() ([]byte, bool, error) {
	if p.summary == nil {
		return nil, false, nil
	}
	data, err := digest.EncodeFull(p.summary.Filter(), p.summary.Generation())
	return data, true, err
}

func (p *Proxy) neighbours() []*Proxy {
	if p.parent == nil {
		return p.siblings
	}
	out := make([]*Proxy, 0, len(p.siblings)+1)
	out = append(out, p.siblings...)
	out = append(out, p.parent)
	return out
}

// handleICPQuery answers a neighbour's ICP query without touching
// replacement state (an ICP lookup is not a hit). Stale copies are not
// advertised, per RFC 2186's guidance that a HIT promises a servable
// object.
func (p *Proxy) handleICPQuery(url string, now time.Time) bool {
	if doc, ok := p.store.Peek(url); ok && doc.FreshAt(now) {
		p.icp.RepliesHit++
		return true
	}
	p.icp.RepliesMiss++
	return false
}

// serveRemote is the responder side of a remote hit: serve the document
// without implicitly refreshing it, then apply the scheme's responder rule —
// under ad-hoc the transfer counts as a hit (fresh lease of life), under EA
// the copy is promoted only if the responder's expiration age exceeds the
// requester's.
func (p *Proxy) serveRemote(url string, requesterAge time.Duration, now time.Time) (cache.Document, time.Duration, bool) {
	responderAge := p.store.ExpirationAge(now)
	doc, ok := p.store.Peek(url)
	if !ok || !doc.FreshAt(now) {
		return cache.Document{}, responderAge, false
	}
	if p.scheme.OnRemoteHit(requesterAge, responderAge).PromoteAtResponder {
		p.store.Touch(url, now)
	}
	p.icp.RemoteServed++
	return doc, responderAge, true
}

// resolveAsHome is the responder side of hash routing: this proxy is
// the URL's home node (or acting home) and owns the group's only copy.
// It serves from its cache — a real hit for the home's replacement
// state, so the copy is refreshed — or resolves the miss from the
// origin and keeps the fetched copy. fromCache distinguishes a group
// hit from a miss served through the home.
func (p *Proxy) resolveAsHome(url string, sizeHint int64, _ time.Duration, now time.Time) (cache.Document, time.Duration, bool, error) {
	age := p.store.ExpirationAge(now)
	if doc, ok := p.store.Peek(url); ok && doc.FreshAt(now) {
		p.store.Get(url, now)
		p.icp.RemoteServed++
		return doc, age, true, nil
	}
	doc, err := p.fetchOrigin(url, sizeHint, now)
	if err != nil {
		return cache.Document{}, age, false, err
	}
	p.putIfFits(doc, now)
	p.icp.RemoteServed++
	return doc, age, false, nil
}

// resolveMiss is the hierarchical parent's miss path (§3.3): obtain the
// document — from its own cache, its own parent, or the origin — store a
// copy iff the scheme's parent rule says the parent's copy would outlive
// the child's, and return the document with the parent's expiration age
// piggybacked. fromGroup reports whether some cache in the hierarchy
// already held the document (the child then counts a remote hit, not a
// miss).
//
// The paper defines the exchange for one child-parent pair; in deeper
// hierarchies each hop applies the same pairwise rule against its immediate
// child, keeping every decision local.
func (p *Proxy) resolveMiss(url string, sizeHint int64, childAge time.Duration, now time.Time) (cache.Document, time.Duration, bool, error) {
	myAge := p.store.ExpirationAge(now)

	// The parent may hold the document (always checked even though a
	// direct child's ICP query covered us, because deeper descendants
	// reach us only through this path).
	if doc, ok := p.store.Peek(url); ok && doc.FreshAt(now) {
		if p.scheme.OnRemoteHit(childAge, myAge).PromoteAtResponder {
			p.store.Touch(url, now)
		}
		p.icp.RemoteServed++
		return doc, myAge, true, nil
	}

	var (
		doc       cache.Document
		fromGroup bool
		err       error
	)
	if p.parent != nil {
		doc, _, fromGroup, err = p.parent.resolveMiss(url, sizeHint, myAge, now)
	} else {
		doc, err = p.fetchOrigin(url, sizeHint, now)
	}
	if err != nil {
		return cache.Document{}, myAge, false, err
	}
	stored := false
	if p.scheme.OnParentResolve(myAge, childAge) {
		stored = p.putIfFits(doc, now)
	}
	p.icp.RemoteServed++
	p.trace(Event{
		Time: now, Kind: EventParentResolve, Proxy: p.id, URL: url,
		RequesterAge: childAge, ResponderAge: myAge, Stored: stored,
	})
	return doc, myAge, fromGroup, nil
}

func (p *Proxy) fetchOrigin(url string, sizeHint int64, now time.Time) (cache.Document, error) {
	if p.origin == nil {
		return cache.Document{}, fmt.Errorf("proxy %s: no origin configured", p.id)
	}
	doc, err := p.origin.Fetch(url, sizeHint, now)
	if err != nil {
		return cache.Document{}, fmt.Errorf("proxy %s: origin fetch %s: %w", p.id, url, err)
	}
	return doc, nil
}

// putIfFits stores doc, treating over-capacity documents as uncacheable
// (served but not stored), the standard proxy behaviour.
func (p *Proxy) putIfFits(doc cache.Document, now time.Time) bool {
	_, err := p.store.Put(doc, now)
	return err == nil
}

// trace emits e to the configured tracer, if any.
func (p *Proxy) trace(e Event) {
	if p.tracer != nil {
		p.tracer.Trace(e)
	}
}
