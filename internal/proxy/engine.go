package proxy

// This file adapts the proxy to the shared resolution engine
// (internal/resolve): the engine owns the request lifecycle and every
// placement decision; the adapters below supply the simulator's store,
// in-process transport, locator strategies, and trace/ICP-stat hooks.
// The live node (internal/netnode) wires the very same engine over real
// sockets — keeping both request paths behaviourally identical is what
// the sim↔live parity test checks.

import (
	"time"

	"eacache/internal/cache"
	"eacache/internal/obs"
	"eacache/internal/resolve"
)

// simStore is the engine's view of the proxy's cache.
type simStore struct{ p *Proxy }

var _ resolve.LocalStore = simStore{}

// Lookup serves a present-and-fresh copy, refreshing recency. A stale
// copy must not be served: it stays resident (to be overwritten by the
// re-fetch) but the request proceeds as a miss, without refreshing the
// stale entry's replacement state.
func (s simStore) Lookup(_ any, url string, now time.Time) (cache.Document, bool) {
	p := s.p
	doc, ok := p.store.Peek(url)
	if !ok {
		return cache.Document{}, false
	}
	if !doc.FreshAt(now) {
		p.trace(Event{Time: now, Kind: EventStaleLocal, Proxy: p.id, URL: url})
		return cache.Document{}, false
	}
	p.store.Get(url, now)
	return doc, true
}

func (s simStore) ExpirationAge(now time.Time) time.Duration {
	return s.p.store.ExpirationAge(now)
}

func (s simStore) StoreCopy(doc cache.Document, now time.Time) bool {
	return s.p.putIfFits(doc, now)
}

// simLocator dispatches to the proxy's configured location mechanism.
type simLocator struct{ p *Proxy }

var _ resolve.Locator = simLocator{}

// Locate implements resolve.Locator. Candidates carry the neighbour
// *Proxy in Ref so the transport needs no name lookup.
func (l simLocator) Locate(_ any, url string, now time.Time) resolve.Located {
	p := l.p
	switch p.location {
	case LocateDigest:
		var cands []resolve.Candidate
		for _, n := range p.digestLocate(url) {
			cands = append(cands, resolve.Candidate{ID: n.id, Ref: n})
		}
		return resolve.Located{Candidates: cands}
	case LocateHash:
		if p.hash == nil {
			// Unwired singleton: home for everything.
			return resolve.Located{Placement: resolve.PlacementAlways}
		}
		return p.hash.Locate(nil, url, now)
	default: // LocateICP
		if hit := p.icpLocate(url, now); hit != nil {
			return resolve.Located{Candidates: []resolve.Candidate{{ID: hit.id, Ref: hit}}}
		}
		return resolve.Located{}
	}
}

// simTransport performs the engine's remote operations as direct
// in-process calls on the neighbour proxies.
type simTransport struct{ p *Proxy }

var _ resolve.Transport = simTransport{}

// FetchRemote implements resolve.Transport. With rslv set (hash
// routing) the candidate is the document's home node and resolves the
// miss itself; otherwise it serves from its cache or reports not-found
// (only a stale or colliding digest advertises a document the responder
// does not hold — ICP answers are exact in the synchronous simulator).
func (t simTransport) FetchRemote(_ any, c resolve.Candidate, url string, sizeHint int64, reqAge time.Duration, rslv bool, now time.Time) (resolve.Remote, resolve.FetchStatus) {
	responder := c.Ref.(*Proxy)
	if rslv {
		doc, age, fromCache, err := responder.resolveAsHome(url, sizeHint, reqAge, now)
		if err != nil {
			return resolve.Remote{}, resolve.FetchFailed
		}
		return resolve.Remote{Doc: doc, ResponderAge: age, FromGroup: fromCache}, resolve.FetchOK
	}
	doc, respAge, ok := responder.serveRemote(url, reqAge, now)
	if !ok {
		return resolve.Remote{ResponderAge: respAge}, resolve.FetchNotFound
	}
	return resolve.Remote{Doc: doc, ResponderAge: respAge, FromGroup: true}, resolve.FetchOK
}

func (t simTransport) ParentID() (string, bool) {
	if t.p.parent == nil {
		return "", false
	}
	return t.p.parent.id, true
}

func (t simTransport) FetchParent(_ any, url string, sizeHint int64, reqAge time.Duration, now time.Time) (resolve.Remote, error) {
	doc, parentAge, fromGroup, err := t.p.parent.resolveMiss(url, sizeHint, reqAge, now)
	if err != nil {
		return resolve.Remote{}, err
	}
	return resolve.Remote{Doc: doc, ResponderAge: parentAge, FromGroup: fromGroup}, nil
}

// HasOrigin returns true unconditionally: a missing origin surfaces as
// fetchOrigin's "no origin configured" error, whose string predates the
// engine.
func (t simTransport) HasOrigin() bool { return true }

func (t simTransport) FetchOrigin(_ any, url string, sizeHint int64, _ time.Duration, now time.Time) (cache.Document, error) {
	return t.p.fetchOrigin(url, sizeHint, now)
}

// simHooks maps the engine's decision points to placement trace events
// and ICP statistics. Traces record the actual stored/promoted effects
// (not the scheme verdict), exactly as the pre-engine proxy did.
type simHooks struct{ p *Proxy }

var _ resolve.Hooks = simHooks{}

func (h simHooks) OnLocalHit(_ any, url string, now time.Time) {
	h.p.trace(Event{Time: now, Kind: EventLocalHit, Proxy: h.p.id, URL: url})
}

func (h simHooks) OnRetry(any) {}

func (h simHooks) OnFalseHit(_ any, _ resolve.Candidate, _ string) {
	h.p.icp.DigestFalseHits++
}

func (h simHooks) OnRemoteHit(_ any, c resolve.Candidate, url string, size int64, reqAge, respAge time.Duration, _, stored, promoted bool, now time.Time) {
	h.p.trace(Event{
		Time: now, Kind: EventRemoteFetch, Proxy: h.p.id, URL: url,
		Peer: c.ID, RequesterAge: reqAge, ResponderAge: respAge,
		Stored: stored, Promoted: promoted,
	})
	h.p.auditDecision(h.p.id, url, obs.RoleRequester, verdictOf(stored), size, reqAge, respAge, now)
	if promoted {
		// The responder-side refresh is a decision of its own, attributed
		// to the responder — the same event the live responder records in
		// serveConn, kept here so sim and live audit streams match.
		h.p.auditDecision(c.ID, url, obs.RoleResponder, obs.DecisionPromote, size, respAge, reqAge, now)
	}
}

func (h simHooks) OnFallback(any) {}

func (h simHooks) OnParentDegrade(any, string, error) {}

func (h simHooks) OnParentFetch(_ any, parentID, url string, size int64, reqAge, parentAge time.Duration, _, _, stored bool, now time.Time) {
	h.p.trace(Event{
		Time: now, Kind: EventRemoteFetch, Proxy: h.p.id, URL: url,
		Peer: parentID, RequesterAge: reqAge, ResponderAge: parentAge,
		Stored: stored,
	})
	h.p.auditDecision(h.p.id, url, obs.RoleRequester, verdictOf(stored), size, reqAge, parentAge, now)
}

func (h simHooks) OnOriginFetch(_ any, url string, size int64, reqAge time.Duration, _, stored bool, now time.Time) {
	h.p.trace(Event{
		Time: now, Kind: EventOriginFetch, Proxy: h.p.id, URL: url,
		RequesterAge: reqAge, Stored: stored,
	})
	h.p.auditDecision(h.p.id, url, obs.RoleRequester, verdictOf(stored), size, reqAge, cache.NoContention, now)
}

// verdictOf maps a store effect to its audit verdict.
func verdictOf(stored bool) string {
	if stored {
		return obs.DecisionAccept
	}
	return obs.DecisionReject
}

// auditDecision records one placement verdict into the proxy's decision
// log, when one is attached (RecordDecisions). The simulator records the
// same events the live node does so the audit stream itself is
// parity-testable.
func (p *Proxy) auditDecision(node, url, role, verdict string, size int64, localAge, peerAge time.Duration, now time.Time) {
	if p.decisions == nil {
		return
	}
	p.decisions.Record(&obs.Decision{
		Time: now, Node: node, URL: url, Role: role, Verdict: verdict,
		LocalAgeMS: obs.AgeMS(localAge), PeerAgeMS: obs.AgeMS(peerAge), SizeBytes: size,
	})
}
