package proxy

import (
	"fmt"
	"io"
	"time"

	"eacache/internal/cache"
)

// EventKind classifies one placement-relevant step inside a proxy.
type EventKind int

// Event kinds.
const (
	// EventLocalHit: served from the proxy's own cache.
	EventLocalHit EventKind = iota + 1
	// EventRemoteFetch: document transferred from a group cache; the
	// ages and the store/promote decision are attached.
	EventRemoteFetch
	// EventOriginFetch: group-wide miss resolved against the origin.
	EventOriginFetch
	// EventParentResolve: hierarchical parent resolved a child's miss;
	// Stored reports the parent-side decision.
	EventParentResolve
	// EventStaleLocal: a local copy existed but was past its freshness
	// deadline and could not be served.
	EventStaleLocal
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventLocalHit:
		return "local-hit"
	case EventRemoteFetch:
		return "remote-fetch"
	case EventOriginFetch:
		return "origin-fetch"
	case EventParentResolve:
		return "parent-resolve"
	case EventStaleLocal:
		return "stale-local"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one observed placement step. RequesterAge and ResponderAge are
// the piggybacked cache expiration ages that drove the decision (zero for
// kinds that involve no exchange).
type Event struct {
	Time         time.Time
	Kind         EventKind
	Proxy        string
	URL          string
	Peer         string
	RequesterAge time.Duration
	ResponderAge time.Duration
	// Stored / Promoted record the placement decision taken.
	Stored   bool
	Promoted bool
}

// Tracer observes placement events. Implementations must be fast; the
// proxy calls them inline. A nil Tracer costs one branch.
type Tracer interface {
	Trace(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Trace implements Tracer.
func (f TracerFunc) Trace(e Event) { f(e) }

// WriteTracer returns a Tracer that renders each event as one line on w —
// the quickest way to watch the EA scheme decide:
//
//	12:00:05 cache-2 remote-fetch http://a/ <- cache-0  req=45s resp=12s stored
func WriteTracer(w io.Writer) Tracer {
	return TracerFunc(func(e Event) {
		peer := ""
		if e.Peer != "" {
			peer = " <- " + e.Peer
		}
		decision := ""
		switch {
		case e.Stored && e.Promoted:
			decision = " stored+promoted"
		case e.Stored:
			decision = " stored"
		case e.Promoted:
			decision = " promoted-at-responder"
		}
		ages := ""
		if e.Kind == EventRemoteFetch || e.Kind == EventParentResolve {
			ages = fmt.Sprintf("  req=%s resp=%s", fmtAge(e.RequesterAge), fmtAge(e.ResponderAge))
		}
		fmt.Fprintf(w, "%s %s %s %s%s%s%s\n",
			e.Time.Format("15:04:05"), e.Proxy, e.Kind, e.URL, peer, ages, decision)
	})
}

func fmtAge(d time.Duration) string {
	if d >= cache.NoContention {
		return "inf"
	}
	return d.Round(time.Millisecond).String()
}

// CollectTracer accumulates events in memory, for tests and analysis.
type CollectTracer struct {
	Events []Event
}

// Trace implements Tracer.
func (c *CollectTracer) Trace(e Event) { c.Events = append(c.Events, e) }
