package proxy

import (
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/metrics"
)

// newTTLProxy builds a proxy whose origin stamps every document with the
// given lifetime.
func newTTLProxy(t *testing.T, id string, capacity int64, ttl time.Duration) *Proxy {
	t.Helper()
	store, err := cache.New(cache.Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		ID:     id,
		Store:  store,
		Scheme: core.AdHoc{},
		Origin: TTLOrigin{Classes: []TTLClass{{Fraction: 1, TTL: ttl}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDocumentFreshAt(t *testing.T) {
	immortal := cache.Document{URL: "a", Size: 1}
	if !immortal.FreshAt(at(1000000)) {
		t.Fatal("immortal document went stale")
	}
	mortal := cache.Document{URL: "b", Size: 1, Expires: at(100)}
	if !mortal.FreshAt(at(100)) {
		t.Fatal("document stale exactly at its deadline")
	}
	if mortal.FreshAt(at(101)) {
		t.Fatal("document fresh past its deadline")
	}
}

func TestTTLOriginClasses(t *testing.T) {
	o := EraTTLOrigin()
	counts := map[time.Duration]int{}
	for i := 0; i < 2000; i++ {
		counts[o.TTLFor("http://x.example.edu/doc"+string(rune('a'+i%26))+string(rune('0'+i/26)))]++
	}
	if counts[5*time.Minute] == 0 || counts[time.Hour] == 0 || counts[0] == 0 {
		t.Fatalf("class coverage: %v", counts)
	}
	// Deterministic per URL.
	if o.TTLFor("http://a/") != o.TTLFor("http://a/") {
		t.Fatal("TTL assignment not deterministic")
	}
	// The immortal class dominates (60%).
	if counts[0] < 800 {
		t.Fatalf("immortal class too small: %v", counts)
	}
}

func TestStaleLocalCopyIsMiss(t *testing.T) {
	p := newTTLProxy(t, "a", 1<<20, 10*time.Second)
	if _, err := p.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Request("http://d/", 100, at(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.LocalHit {
		t.Fatalf("fresh request = %+v", res)
	}
	// Past the 10s lifetime the copy is stale: a miss, re-fetched and
	// re-stamped.
	res, err = p.Request("http://d/", 100, at(20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("stale request = %+v, want miss", res)
	}
	// The re-fetch refreshed the expiry: fresh again.
	res, err = p.Request("http://d/", 100, at(25))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.LocalHit {
		t.Fatalf("refreshed request = %+v", res)
	}
}

func TestStaleCopyNotAdvertisedOverICP(t *testing.T) {
	a := newTTLProxy(t, "a", 1<<20, 10*time.Second)
	b := newTTLProxy(t, "b", 1<<20, 10*time.Second)
	wire(t, a, b)

	if _, err := a.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	// While fresh: remote hit at b.
	res, err := b.Request("http://d/", 100, at(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit {
		t.Fatalf("fresh remote = %+v", res)
	}
	// b's own copy ages out; a's copy (stored at t=0) is also stale, so
	// the ICP query must answer MISS and the request goes to the origin.
	res, err = b.Request("http://d/", 100, at(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("stale remote = %+v, want miss (stale copies not advertised)", res)
	}
	if a.ICP().RepliesHit != 1 {
		t.Fatalf("a advertised a stale copy: %+v", a.ICP())
	}
}

func TestStaleCopyNotServedByParent(t *testing.T) {
	parent := newTTLProxy(t, "parent", 1<<20, 10*time.Second)
	child := newTTLProxy(t, "child", 1<<20, 10*time.Second)
	if err := child.SetParent(parent); err != nil {
		t.Fatal(err)
	}

	// Seed the parent (ad-hoc stores at both levels).
	if _, err := child.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	// Long after expiry, the child's miss must not be satisfied by the
	// parent's stale copy: the parent re-resolves from the origin.
	res, err := child.Request("http://d/", 100, at(60))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("res = %+v, want origin-resolved miss", res)
	}
	// And the parent's copy was refreshed by the ad-hoc store.
	doc, ok := parent.Store().Peek("http://d/")
	if !ok || !doc.FreshAt(at(61)) {
		t.Fatalf("parent copy not refreshed: %+v, %v", doc, ok)
	}
}

func TestSizeHintOriginImmortal(t *testing.T) {
	doc, err := SizeHintOrigin{}.Fetch("http://d/", 0, at(0))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Size != 4096 {
		t.Fatalf("default size = %d", doc.Size)
	}
	if !doc.Expires.IsZero() {
		t.Fatal("SizeHintOrigin stamped an expiry")
	}
}
