package proxy

import (
	"strings"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
)

// newTracedProxy builds a proxy with a collecting tracer attached.
func newTracedProxy(t *testing.T, id string, scheme core.Scheme, tr Tracer) *Proxy {
	t.Helper()
	store, err := cache.New(cache.Config{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		ID:     id,
		Store:  store,
		Scheme: scheme,
		Origin: SizeHintOrigin{},
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTracerSeesDecisionSequence(t *testing.T) {
	var events CollectTracer
	a := newTracedProxy(t, "a", core.EA{}, &events)
	b := newTracedProxy(t, "b", core.EA{}, nil)
	wire(t, a, b)

	if _, err := a.Request("http://d/", 100, at(0)); err != nil { // origin fetch
		t.Fatal(err)
	}
	if _, err := a.Request("http://d/", 100, at(1)); err != nil { // local hit
		t.Fatal(err)
	}
	if _, err := b.Request("http://d/", 100, at(2)); err != nil { // remote at b (untraced)
		t.Fatal(err)
	}

	if len(events.Events) != 2 {
		t.Fatalf("events = %d: %+v", len(events.Events), events.Events)
	}
	if events.Events[0].Kind != EventOriginFetch || !events.Events[0].Stored {
		t.Fatalf("event[0] = %+v", events.Events[0])
	}
	if events.Events[1].Kind != EventLocalHit {
		t.Fatalf("event[1] = %+v", events.Events[1])
	}
}

func TestTracerRemoteFetchCarriesAges(t *testing.T) {
	var events CollectTracer
	responder := newTracedProxy(t, "responder", core.EA{}, nil)
	requester := newTracedProxy(t, "requester", core.EA{}, &events)
	wire(t, requester, responder)

	if _, err := responder.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := requester.Request("http://d/", 100, at(1)); err != nil {
		t.Fatal(err)
	}

	var remote *Event
	for i := range events.Events {
		if events.Events[i].Kind == EventRemoteFetch {
			remote = &events.Events[i]
		}
	}
	if remote == nil {
		t.Fatalf("no remote-fetch event: %+v", events.Events)
	}
	if remote.Peer != "responder" {
		t.Fatalf("peer = %q", remote.Peer)
	}
	// Cold caches: both piggybacked ages are NoContention.
	if remote.RequesterAge != cache.NoContention || remote.ResponderAge != cache.NoContention {
		t.Fatalf("ages = %v / %v", remote.RequesterAge, remote.ResponderAge)
	}
	if remote.Stored || remote.Promoted {
		t.Fatalf("cold tie must neither store nor promote: %+v", remote)
	}
}

func TestTracerStaleLocalEvent(t *testing.T) {
	var events CollectTracer
	store, err := cache.New(cache.Config{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		ID:     "a",
		Store:  store,
		Scheme: core.AdHoc{},
		Origin: TTLOrigin{Classes: []TTLClass{{Fraction: 1, TTL: 5 * time.Second}}},
		Tracer: &events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Request("http://d/", 100, at(60)); err != nil {
		t.Fatal(err)
	}
	kinds := make([]EventKind, 0, len(events.Events))
	for _, e := range events.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EventOriginFetch, EventStaleLocal, EventOriginFetch}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestWriteTracerFormat(t *testing.T) {
	var b strings.Builder
	tr := WriteTracer(&b)
	tr.Trace(Event{
		Time: at(5), Kind: EventRemoteFetch, Proxy: "cache-2",
		URL: "http://a/", Peer: "cache-0",
		RequesterAge: 45 * time.Second, ResponderAge: 12 * time.Second,
		Stored: true,
	})
	tr.Trace(Event{
		Time: at(6), Kind: EventRemoteFetch, Proxy: "cache-0",
		URL: "http://b/", Peer: "cache-2",
		RequesterAge: cache.NoContention, ResponderAge: time.Second,
		Promoted: true,
	})
	out := b.String()
	for _, want := range []string{
		"cache-2 remote-fetch http://a/ <- cache-0", "req=45s resp=12s stored",
		"req=inf", "promoted-at-responder",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EventLocalHit:      "local-hit",
		EventRemoteFetch:   "remote-fetch",
		EventOriginFetch:   "origin-fetch",
		EventParentResolve: "parent-resolve",
		EventStaleLocal:    "stale-local",
		EventKind(42):      "event(42)",
	} {
		if kind.String() != want {
			t.Fatalf("%d.String() = %q", kind, kind.String())
		}
	}
}
