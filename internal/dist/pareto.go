package dist

import (
	"fmt"
	"math"
)

// Pareto samples from a bounded Pareto distribution on [Min, Max] with shape
// Alpha. Web document sizes are heavy-tailed; a bounded Pareto with shape
// ~1.1-1.5 reproduces the body-and-tail shape observed in the BU traces
// (Cunha, Bestavros, Crovella 1995) while keeping the mean finite and
// controllable.
type Pareto struct {
	min, max float64
	alpha    float64
	// precomputed for inverse-CDF sampling
	ha, la float64
}

// NewPareto builds a bounded Pareto sampler on [min, max] with shape alpha.
func NewPareto(min, max, alpha float64) (*Pareto, error) {
	if !(min > 0) || !(max > min) {
		return nil, fmt.Errorf("dist: pareto needs 0 < min < max, got [%v, %v]", min, max)
	}
	if !(alpha > 0) {
		return nil, fmt.Errorf("dist: pareto needs alpha > 0, got %v", alpha)
	}
	return &Pareto{
		min:   min,
		max:   max,
		alpha: alpha,
		la:    math.Pow(min, alpha),
		ha:    math.Pow(max, alpha),
	}, nil
}

// Sample draws one value in [Min, Max].
func (p *Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*p.ha-u*p.la-p.ha)/(p.ha*p.la), -1/p.alpha)
	return math.Min(math.Max(x, p.min), p.max)
}

// Mean returns the analytic mean of the bounded Pareto.
func (p *Pareto) Mean() float64 {
	a, l, h := p.alpha, p.min, p.max
	if a == 1 {
		return l * h / (h - l) * math.Log(h/l)
	}
	return math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (a - 1) *
		(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// ParetoWithMean searches for the bounded-Pareto minimum that yields the
// requested mean for the given max and alpha. It is used to calibrate the
// synthetic document-size distribution to the paper's 4KB average size.
func ParetoWithMean(mean, max, alpha float64) (*Pareto, error) {
	if !(mean > 0) || !(max > mean) {
		return nil, fmt.Errorf("dist: need 0 < mean < max, got mean=%v max=%v", mean, max)
	}
	lo, hi := 1e-6, mean
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		p, err := NewPareto(mid, max, alpha)
		if err != nil {
			return nil, err
		}
		if p.Mean() < mean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return NewPareto((lo+hi)/2, max, alpha)
}

// Exponential samples from an exponential distribution with the given mean.
// It is used for request interarrival times within user sessions.
type Exponential struct {
	mean float64
}

// NewExponential builds an exponential sampler with the given mean.
func NewExponential(mean float64) (*Exponential, error) {
	if !(mean > 0) {
		return nil, fmt.Errorf("dist: exponential needs mean > 0, got %v", mean)
	}
	return &Exponential{mean: mean}, nil
}

// Sample draws one non-negative value.
func (e *Exponential) Sample(r *RNG) float64 {
	return e.mean * r.ExpFloat64()
}

// Mean returns the configured mean.
func (e *Exponential) Mean() float64 { return e.mean }
