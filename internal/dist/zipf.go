package dist

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^alpha.
//
// Web reference streams are famously Zipf-like (Breslau et al. 1999 measured
// alpha between 0.64 and 0.83 for proxy traces); the synthetic workload
// generator uses this to reproduce the popularity skew of the Boston
// University traces the paper evaluates on.
//
// Sampling uses the inverse-CDF method over the exact harmonic weights, so
// any alpha >= 0 is supported (including alpha <= 1, which the standard
// library's rejection sampler does not handle).
type Zipf struct {
	cdf   []float64
	alpha float64
}

// NewZipf builds a sampler over ranks 1..n with exponent alpha.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: zipf needs n > 0, got %d", n)
	}
	if alpha < 0 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("dist: zipf needs alpha >= 0, got %v", alpha)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, alpha: alpha}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Alpha returns the skew exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Rank draws a rank in [0, N). Rank 0 is the most popular item.
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability mass of rank i (0-based).
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
