package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		n := r.Intn(13)
		if n < 0 || n >= 13 {
			t.Fatalf("Intn(13) = %d", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(11)
	const buckets, draws = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", b, c, want)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	// The split stream must not simply mirror the parent.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(3)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, x := range xs {
		if x < 0 || x >= len(xs) || seen[x] {
			t.Fatalf("not a permutation: %v", xs)
		}
		seen[x] = true
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("NewZipf(0, _) accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("NewZipf(_, -1) accepted")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Fatal("NewZipf(_, NaN) accepted")
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z, err := NewZipf(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(1)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Rank(r)]++
	}
	// Popularity must decrease (allowing sampling noise) along ranks.
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Fatalf("rank ordering violated: c0=%d c10=%d c90=%d", counts[0], counts[10], counts[90])
	}
	// Empirical mass of rank 0 should be close to analytic.
	got := float64(counts[0]) / 200000
	want := z.Prob(0)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("rank-0 mass = %v, want ~%v", got, want)
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1, 2} {
		z, err := NewZipf(50, alpha)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("alpha=%v: probs sum to %v", alpha, sum)
		}
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Fatalf("Prob(%d) = %v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestQuickZipfRankInRange(t *testing.T) {
	z, err := NewZipf(37, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			rank := z.Rank(r)
			if rank < 0 || rank >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParetoValidation(t *testing.T) {
	if _, err := NewPareto(0, 10, 1); err == nil {
		t.Fatal("min=0 accepted")
	}
	if _, err := NewPareto(10, 5, 1); err == nil {
		t.Fatal("max<min accepted")
	}
	if _, err := NewPareto(1, 10, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestParetoBounds(t *testing.T) {
	p, err := NewPareto(100, 10000, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(2)
	for i := 0; i < 50000; i++ {
		v := p.Sample(r)
		if v < 100 || v > 10000 {
			t.Fatalf("sample %v out of [100, 10000]", v)
		}
	}
}

func TestParetoEmpiricalMeanMatchesAnalytic(t *testing.T) {
	p, err := NewPareto(1000, 1<<20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(4)
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		sum += p.Sample(r)
	}
	got := sum / n
	want := p.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical mean %v deviates >5%% from analytic %v", got, want)
	}
}

func TestParetoWithMean(t *testing.T) {
	for _, mean := range []float64{2000, 4096, 50000} {
		p, err := ParetoWithMean(mean, 8<<20, 1.3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Mean()-mean)/mean > 0.01 {
			t.Fatalf("calibrated mean %v, want %v", p.Mean(), mean)
		}
	}
	if _, err := ParetoWithMean(100, 50, 1.3); err == nil {
		t.Fatal("mean > max accepted")
	}
}

func TestExponential(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Fatal("mean=0 accepted")
	}
	e, err := NewExponential(25)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 25 {
		t.Fatalf("Mean = %v", e.Mean())
	}
	r := NewRNG(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := e.Sample(r)
		if v < 0 {
			t.Fatalf("negative sample %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-25)/25 > 0.03 {
		t.Fatalf("empirical mean %v, want ~25", got)
	}
}
