// Package dist provides the deterministic random samplers that drive the
// synthetic workload generator: a splittable PCG-style generator and Zipf,
// bounded-Pareto and exponential distributions.
//
// Everything here is deterministic for a given seed so that simulations and
// experiments are exactly reproducible.
package dist

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** over a SplitMix64-seeded state). It is not safe for
// concurrent use; use Split to derive independent streams per goroutine.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	return &r
}

// Split derives an independent generator from r without disturbing r's
// future output stream beyond consuming one value.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)

	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("dist: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}
