package group

import (
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/proxy"
)

var t0 = time.Date(1994, time.November, 15, 12, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func TestNewValidation(t *testing.T) {
	base := Config{Caches: 4, AggregateBytes: 1 << 20, Scheme: core.EA{}}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name string
		mod  func(*Config)
	}{
		{"no caches", func(c *Config) { c.Caches = 0 }},
		{"no bytes", func(c *Config) { c.AggregateBytes = 0 }},
		{"nil scheme", func(c *Config) { c.Scheme = nil }},
		{"space smaller than cache count", func(c *Config) { c.AggregateBytes = 3; c.Caches = 4 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mod(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestDistributedWiring(t *testing.T) {
	g, err := New(Config{Caches: 4, AggregateBytes: 4 << 20, Scheme: core.EA{}})
	if err != nil {
		t.Fatal(err)
	}
	leaves := g.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	if g.Parent() != nil {
		t.Fatal("distributed group has a parent")
	}
	if len(g.All()) != 4 {
		t.Fatalf("All = %d", len(g.All()))
	}
	// Equal split: X/N each.
	for _, p := range leaves {
		if p.Store().Capacity() != 1<<20 {
			t.Fatalf("%s capacity = %d, want %d", p.ID(), p.Store().Capacity(), 1<<20)
		}
		if p.Parent() != nil {
			t.Fatalf("%s has a parent", p.ID())
		}
	}
}

func TestHierarchicalWiring(t *testing.T) {
	g, err := New(Config{
		Caches:         4,
		AggregateBytes: 5 << 20,
		Scheme:         core.EA{},
		Architecture:   Hierarchical,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Parent() == nil {
		t.Fatal("hierarchical group missing parent")
	}
	if len(g.All()) != 5 {
		t.Fatalf("All = %d, want 5 (4 leaves + parent)", len(g.All()))
	}
	// The parent shares the aggregate equally: X/(N+1) each.
	for _, p := range g.All() {
		if p.Store().Capacity() != 1<<20 {
			t.Fatalf("%s capacity = %d, want %d", p.ID(), p.Store().Capacity(), 1<<20)
		}
	}
	for _, leaf := range g.Leaves() {
		if leaf.Parent() != g.Parent() {
			t.Fatalf("%s not wired to parent", leaf.ID())
		}
	}
}

func TestRouteStableAndCovering(t *testing.T) {
	g, err := New(Config{Caches: 4, AggregateBytes: 4 << 20, Scheme: core.AdHoc{}})
	if err != nil {
		t.Fatal(err)
	}
	// Stability: a client always lands on the same cache.
	for i := 0; i < 50; i++ {
		client := "user" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		first := g.Route(client)
		for j := 0; j < 5; j++ {
			if g.Route(client) != first {
				t.Fatalf("routing of %q unstable", client)
			}
		}
	}
	// Coverage: many clients spread over all caches.
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		seen[g.Route("client"+string(rune('0'+i%10))+string(rune('a'+(i/10)%26))+string(rune('a'+i/260))).ID()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("routing covered %d caches, want 4", len(seen))
	}
}

func TestReplicationStats(t *testing.T) {
	g, err := New(Config{Caches: 2, AggregateBytes: 2 << 20, Scheme: core.AdHoc{}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Leaves()[0], g.Leaves()[1]
	put := func(p interface{ Store() *cache.Store }, url string) {
		t.Helper()
		if _, err := p.Store().Put(cache.Document{URL: url, Size: 10}, at(0)); err != nil {
			t.Fatal(err)
		}
	}
	put(a, "shared")
	put(b, "shared")
	put(a, "only-a")
	put(b, "only-b")

	r := g.Replication()
	if r.UniqueDocs != 3 || r.TotalCopies != 4 || r.ReplicatedDocs != 1 {
		t.Fatalf("replication = %+v", r)
	}
	if got := r.MeanCopies(); got != 4.0/3 {
		t.Fatalf("MeanCopies = %v", got)
	}
	var empty ReplicationStats
	if empty.MeanCopies() != 0 {
		t.Fatal("empty MeanCopies != 0")
	}
}

func TestAvgCumulativeExpirationAge(t *testing.T) {
	g, err := New(Config{Caches: 2, AggregateBytes: 40, Scheme: core.AdHoc{}})
	if err != nil {
		t.Fatal(err)
	}
	// No evictions anywhere: zero.
	if got := g.AvgCumulativeExpirationAge(); got != 0 {
		t.Fatalf("cold group age = %v, want 0", got)
	}
	// Force evictions on one cache only (capacity 20 per cache).
	a := g.Leaves()[0]
	if _, err := a.Store().Put(cache.Document{URL: "x", Size: 20}, at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Store().Put(cache.Document{URL: "y", Size: 20}, at(10)); err != nil {
		t.Fatal(err)
	}
	// x evicted with age 10s; the other cache has no evidence and is
	// excluded, so the group mean is 10s.
	if got := g.AvgCumulativeExpirationAge(); got != 10*time.Second {
		t.Fatalf("group age = %v, want 10s", got)
	}
}

func TestCumulativeAgesSelector(t *testing.T) {
	g, err := New(Config{
		Caches:           1,
		AggregateBytes:   100,
		Scheme:           core.EA{},
		ExpirationWindow: CumulativeAges,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With cumulative ages the signal never expires: evict once, then
	// query far in the future.
	st := g.Leaves()[0].Store()
	if _, err := st.Put(cache.Document{URL: "x", Size: 100}, at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(cache.Document{URL: "y", Size: 100}, at(10)); err != nil {
		t.Fatal(err)
	}
	if got := st.ExpirationAge(at(1000000)); got != 10*time.Second {
		t.Fatalf("cumulative age = %v, want 10s", got)
	}
}

func TestDefaultHorizonApplied(t *testing.T) {
	g, err := New(Config{Caches: 1, AggregateBytes: 100, Scheme: core.EA{}})
	if err != nil {
		t.Fatal(err)
	}
	st := g.Leaves()[0].Store()
	if _, err := st.Put(cache.Document{URL: "x", Size: 100}, at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(cache.Document{URL: "y", Size: 100}, at(10)); err != nil {
		t.Fatal(err)
	}
	// Inside the default horizon the age is visible...
	if got := st.ExpirationAge(at(20)); got != 10*time.Second {
		t.Fatalf("age = %v, want 10s", got)
	}
	// ...and expires once the (6h) horizon passes without evictions.
	later := t0.Add(cache.DefaultExpirationHorizon + time.Hour)
	if got := st.ExpirationAge(later); got != cache.NoContention {
		t.Fatalf("age = %v, want NoContention after idle horizon", got)
	}
}

func TestArchitectureString(t *testing.T) {
	if Distributed.String() != "distributed" ||
		Hierarchical.String() != "hierarchical" {
		t.Fatal("architecture names wrong")
	}
	if Architecture(9).String() != "architecture(9)" {
		t.Fatal("unknown architecture string")
	}
}

func TestGroupDigestLocation(t *testing.T) {
	g, err := New(Config{
		Caches:         2,
		AggregateBytes: 2 << 20,
		Scheme:         core.AdHoc{},
		Location:       proxy.LocateDigest,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Leaves()[0], g.Leaves()[1]
	if _, err := a.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("http://d/", 100, at(1)); err != nil {
		t.Fatal(err)
	}
	if b.ICP().QueriesSent != 0 {
		t.Fatal("digest-mode group sent ICP queries")
	}
	if b.ICP().DigestChecks == 0 {
		t.Fatal("digest-mode group never consulted a summary")
	}
}

func TestGroupTracerPassThrough(t *testing.T) {
	var events proxy.CollectTracer
	g, err := New(Config{
		Caches:         2,
		AggregateBytes: 2 << 20,
		Scheme:         core.EA{},
		Tracer:         &events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Leaves()[0].Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	if len(events.Events) == 0 {
		t.Fatal("group tracer saw no events")
	}
}

func TestGroupTTLOriginPassThrough(t *testing.T) {
	g, err := New(Config{
		Caches:         1,
		AggregateBytes: 1 << 20,
		Scheme:         core.AdHoc{},
		Origin:         proxy.TTLOrigin{Classes: []proxy.TTLClass{{Fraction: 1, TTL: time.Minute}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Leaves()[0]
	if _, err := p.Request("http://d/", 100, at(0)); err != nil {
		t.Fatal(err)
	}
	doc, ok := p.Store().Peek("http://d/")
	if !ok || doc.Expires.IsZero() {
		t.Fatalf("origin TTL not applied: %+v, %v", doc, ok)
	}
}
