// Package group wires proxies into the two cooperative caching
// architectures the paper discusses: the distributed architecture (all
// caches are peers at the same level, the configuration of every experiment
// in §4) and the hierarchical architecture (leaves share a parent). It also
// provides client-to-proxy routing and group-level inspection (replication
// factor, aggregate expiration age).
package group

import (
	"fmt"
	"hash/fnv"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/proxy"
)

// Architecture selects the cooperation structure.
type Architecture int

// Architectures.
const (
	// Distributed: N peer caches, every miss resolved by the requester
	// against the origin (the paper's experimental setup).
	Distributed Architecture = iota + 1
	// Hierarchical: N leaf caches sharing one parent cache; leaves
	// forward group-wide misses to the parent, which resolves them
	// against the origin.
	Hierarchical
)

// CumulativeAges selects an all-time cumulative expiration-age signal when
// set as Config.ExpirationWindow.
const CumulativeAges = -1

// String implements fmt.Stringer.
func (a Architecture) String() string {
	switch a {
	case Distributed:
		return "distributed"
	case Hierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("architecture(%d)", int(a))
	}
}

// Config describes a cache group.
type Config struct {
	// Caches is the number of client-facing caches (paper: 2, 4, 8).
	Caches int
	// AggregateBytes is the total disk space of the group, split equally
	// among all caches (including the parent under Hierarchical), as in
	// the paper: "if the aggregate disk space available in the cache
	// group is X bytes and there are N caches, the disk space available
	// at each cache is X/N bytes".
	AggregateBytes int64
	// Scheme is the placement scheme shared by the group.
	Scheme core.Scheme
	// NewPolicy builds one replacement policy instance per cache.
	// Defaults to LRU, the paper's experimental policy.
	NewPolicy func() cache.Policy
	// ExpirationWindow selects an eviction-count window for the
	// expiration-age signal, or CumulativeAges for an all-time average.
	ExpirationWindow int
	// ExpirationHorizon selects a time window for the expiration-age
	// signal. When both ExpirationWindow and ExpirationHorizon are zero,
	// cache.DefaultExpirationHorizon is used: a time horizon keeps the
	// contention signal responsive, which is what lets EA placement
	// spread load instead of hoarding every shared document on the
	// momentarily least-contended cache.
	ExpirationHorizon time.Duration
	// Architecture selects distributed or hierarchical cooperation.
	// Defaults to Distributed.
	Architecture Architecture
	// Origin resolves group-wide misses. Defaults to
	// proxy.SizeHintOrigin.
	Origin proxy.Origin
	// Location selects the document-location mechanism (ICP queries,
	// Summary-Cache digests, or consistent-hash home routing). Defaults
	// to proxy.LocateICP, the paper's setting. LocateHash requires the
	// Distributed architecture.
	Location proxy.Location
	// Digest tunes the summaries when Location is proxy.LocateDigest.
	Digest proxy.DigestConfig
	// Tracer, when set, observes every proxy's placement decisions.
	Tracer proxy.Tracer
}

// Group is a wired cooperative cache group.
type Group struct {
	cfg Config
	// leaves are the client-facing caches, in ID order.
	leaves []*proxy.Proxy
	// parent is the hierarchy parent, or nil under Distributed.
	parent *proxy.Proxy
}

// New builds and wires a group.
func New(cfg Config) (*Group, error) {
	if cfg.Caches <= 0 {
		return nil, fmt.Errorf("group: need at least one cache, got %d", cfg.Caches)
	}
	if cfg.AggregateBytes <= 0 {
		return nil, fmt.Errorf("group: aggregate size must be positive, got %d", cfg.AggregateBytes)
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("group: nil scheme")
	}
	if cfg.NewPolicy == nil {
		cfg.NewPolicy = func() cache.Policy { return cache.NewLRU() }
	}
	if cfg.Architecture == 0 {
		cfg.Architecture = Distributed
	}
	if cfg.Architecture == Hierarchical && cfg.Location == proxy.LocateHash {
		// Hash routing partitions the URL space across the leaves; a
		// hierarchical parent would reintroduce a second copy holder.
		return nil, fmt.Errorf("group: hash location is incompatible with the hierarchical architecture")
	}
	if cfg.Origin == nil {
		cfg.Origin = proxy.SizeHintOrigin{}
	}
	window, horizon := cfg.ExpirationWindow, cfg.ExpirationHorizon
	switch {
	case window == CumulativeAges:
		window, horizon = cache.WindowAll, 0
	case window == 0 && horizon == 0:
		horizon = cache.DefaultExpirationHorizon
	}

	total := cfg.Caches
	if cfg.Architecture == Hierarchical {
		total++
	}
	perCache := cfg.AggregateBytes / int64(total)
	if perCache <= 0 {
		return nil, fmt.Errorf("group: aggregate %d bytes leaves no space for %d caches",
			cfg.AggregateBytes, total)
	}

	g := &Group{cfg: cfg}
	newProxy := func(id string) (*proxy.Proxy, error) {
		store, err := cache.New(cache.Config{
			Capacity:          perCache,
			Policy:            cfg.NewPolicy(),
			ExpirationWindow:  window,
			ExpirationHorizon: horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("group: %s: %w", id, err)
		}
		return proxy.New(proxy.Config{
			ID:       id,
			Store:    store,
			Scheme:   cfg.Scheme,
			Origin:   cfg.Origin,
			Location: cfg.Location,
			Digest:   cfg.Digest,
			Tracer:   cfg.Tracer,
		})
	}

	for i := 0; i < cfg.Caches; i++ {
		p, err := newProxy(fmt.Sprintf("cache-%d", i))
		if err != nil {
			return nil, err
		}
		g.leaves = append(g.leaves, p)
	}

	if cfg.Architecture == Hierarchical {
		parent, err := newProxy("parent-0")
		if err != nil {
			return nil, err
		}
		g.parent = parent
	}

	// Wire siblings (and the parent, under Hierarchical).
	for i, p := range g.leaves {
		siblings := make([]*proxy.Proxy, 0, len(g.leaves)-1)
		for j, s := range g.leaves {
			if i != j {
				siblings = append(siblings, s)
			}
		}
		if err := p.SetSiblings(siblings...); err != nil {
			return nil, err
		}
		if g.parent != nil {
			if err := p.SetParent(g.parent); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Config returns the group's configuration.
func (g *Group) Config() Config { return g.cfg }

// Leaves returns the client-facing caches in ID order.
func (g *Group) Leaves() []*proxy.Proxy {
	return append([]*proxy.Proxy(nil), g.leaves...)
}

// Parent returns the hierarchy parent, or nil.
func (g *Group) Parent() *proxy.Proxy { return g.parent }

// All returns every cache in the group (leaves, then parent if any).
func (g *Group) All() []*proxy.Proxy {
	all := g.Leaves()
	if g.parent != nil {
		all = append(all, g.parent)
	}
	return all
}

// Route returns the proxy serving the given client. Each client is pinned
// to one cache by hash, modelling the static browser-to-proxy assignment of
// the paper's setup (each simulated proxy replayed its own clients).
func (g *Group) Route(client string) *proxy.Proxy {
	h := fnv.New32a()
	_, _ = h.Write([]byte(client))
	return g.leaves[int(h.Sum32())%len(g.leaves)]
}

// AvgCumulativeExpirationAge returns the mean of the caches' cumulative
// expiration ages — the paper's "Average Cache Expiration Age" metric
// (Table 1). Caches that have not evicted anything yet carry no contention
// evidence and are excluded; if no cache has evicted, the result is 0.
func (g *Group) AvgCumulativeExpirationAge() time.Duration {
	var (
		sum float64
		n   int
	)
	for _, p := range g.All() {
		age := p.Store().CumulativeExpirationAge()
		if age == cache.NoContention {
			continue
		}
		sum += age.Seconds()
		n++
	}
	if n == 0 {
		return 0
	}
	return time.Duration(sum / float64(n) * float64(time.Second))
}

// ReplicationStats summarises how replicated the group's contents are — the
// inefficiency the EA scheme is designed to control.
type ReplicationStats struct {
	// UniqueDocs is the number of distinct documents resident anywhere.
	UniqueDocs int
	// TotalCopies is the total number of cached documents (>= UniqueDocs).
	TotalCopies int
	// ReplicatedDocs is the number of distinct documents with 2+ copies.
	ReplicatedDocs int
}

// MeanCopies returns copies per distinct resident document.
func (r ReplicationStats) MeanCopies() float64 {
	if r.UniqueDocs == 0 {
		return 0
	}
	return float64(r.TotalCopies) / float64(r.UniqueDocs)
}

// Replication scans every cache and summarises document replication.
func (g *Group) Replication() ReplicationStats {
	counts := make(map[string]int)
	var stats ReplicationStats
	for _, p := range g.All() {
		for _, url := range p.Store().URLs() {
			counts[url]++
			stats.TotalCopies++
		}
	}
	stats.UniqueDocs = len(counts)
	for _, c := range counts {
		if c > 1 {
			stats.ReplicatedDocs++
		}
	}
	return stats
}
