package icp

import (
	"net"
	"sync"
	"testing"
	"time"
)

// startServer runs an ICP responder that reports urls in the cached set as
// hits.
func startServer(t *testing.T, cached ...string) *Server {
	t.Helper()
	set := make(map[string]bool, len(cached))
	for _, u := range cached {
		set[u] = true
	}
	var mu sync.Mutex
	s, err := NewServer("127.0.0.1:0", HandlerFunc(func(url string) Opcode {
		mu.Lock()
		defer mu.Unlock()
		if set[url] {
			return OpHit
		}
		return OpMiss
	}), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestQueryHitAndMiss(t *testing.T) {
	srv := startServer(t, "http://cached.example.edu/")
	c := NewClient()

	res, err := c.Query([]*net.UDPAddr{srv.Addr()}, "http://cached.example.edu/", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Responder == nil {
		t.Fatalf("want hit, got %+v", res)
	}
	if res.Responder.Port != srv.Addr().Port {
		t.Fatalf("responder = %v, want %v", res.Responder, srv.Addr())
	}

	res, err = c.Query([]*net.UDPAddr{srv.Addr()}, "http://other.example.edu/", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatalf("want miss, got %+v", res)
	}
	if res.Replies != 1 {
		t.Fatalf("replies = %d, want 1", res.Replies)
	}
}

func TestQueryFanOutFirstHitWins(t *testing.T) {
	miss1 := startServer(t)
	miss2 := startServer(t)
	hit := startServer(t, "http://doc.example.edu/")
	c := NewClient()

	res, err := c.Query(
		[]*net.UDPAddr{miss1.Addr(), hit.Addr(), miss2.Addr()},
		"http://doc.example.edu/", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatalf("want hit, got %+v", res)
	}
	if res.Responder.Port != hit.Addr().Port {
		t.Fatalf("responder = %v, want the hit server %v", res.Responder, hit.Addr())
	}
}

func TestQueryTimeoutOnSilentPeer(t *testing.T) {
	// A bound but unserviced socket: queries vanish, client must time out
	// and report a miss.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	silent, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		t.Fatal("no udp addr")
	}

	c := NewClient()
	start := time.Now()
	res, err := c.Query([]*net.UDPAddr{silent}, "http://x/", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.Replies != 0 {
		t.Fatalf("want silent miss, got %+v", res)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout not honoured")
	}
}

func TestQueryNoNeighbours(t *testing.T) {
	c := NewClient()
	res, err := c.Query(nil, "http://x/", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.Replies != 0 {
		t.Fatalf("empty fan-out should miss instantly, got %+v", res)
	}
}

func TestServerAnswersSEcho(t *testing.T) {
	srv := startServer(t)
	conn, err := net.DialUDP("udp", nil, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	echo := Message{Op: OpSEcho, Version: Version2, ReqNum: 55, URL: "http://e/"}
	data, err := echo.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1<<16)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != OpSEcho || m.ReqNum != 55 || m.URL != "http://e/" {
		t.Fatalf("echo reply = %+v", m)
	}
}

func TestServerRepliesErrToGarbage(t *testing.T) {
	srv := startServer(t)
	conn, err := net.DialUDP("udp", nil, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A header-sized datagram with a bad version: the server should
	// answer ICP_OP_ERR echoing the request number.
	garbage := make([]byte, headerLen)
	garbage[0] = byte(OpQuery)
	garbage[1] = 9 // bad version
	garbage[2] = 0
	garbage[3] = headerLen
	garbage[7] = 77 // reqnum low byte
	if _, err := conn.Write(garbage); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1<<16)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != OpErr {
		t.Fatalf("reply = %+v, want ICP_OP_ERR", m)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := NewServer("not-an-addr", HandlerFunc(func(string) Opcode { return OpMiss }), nil); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestConcurrentQueries(t *testing.T) {
	srv := startServer(t, "http://hot.example.edu/")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient()
			res, err := c.Query([]*net.UDPAddr{srv.Addr()}, "http://hot.example.edu/", time.Second)
			if err != nil {
				errs <- err
				return
			}
			if !res.Hit {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query failed: %v", err)
	}
}
