package icp

import (
	"net"
	"testing"
	"time"
)

// rawResponder answers every datagram by transforming it with f; it lets
// tests play a misbehaving neighbour.
func rawResponder(t *testing.T, f func(query Message) []byte) *net.UDPAddr {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	go func() {
		buf := make([]byte, maxLen)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			q, err := Parse(buf[:n])
			if err != nil {
				continue
			}
			if out := f(q); out != nil {
				_, _ = conn.WriteToUDP(out, peer)
			}
		}
	}()
	addr, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		t.Fatal("no udp addr")
	}
	return addr
}

func mustMarshal(t *testing.T, m Message) []byte {
	t.Helper()
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestQueryIgnoresWrongRequestNumber(t *testing.T) {
	// A neighbour replying HIT with a stale request number must not be
	// trusted; the query times out as a miss.
	bad := rawResponder(t, func(q Message) []byte {
		r := Reply(q, OpHit)
		r.ReqNum = q.ReqNum + 100
		return mustMarshal(t, r)
	})
	c := NewClient()
	res, err := c.Query([]*net.UDPAddr{bad}, "http://x/", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("stale-reqnum HIT accepted")
	}
}

func TestQueryIgnoresWrongURLInHit(t *testing.T) {
	bad := rawResponder(t, func(q Message) []byte {
		r := Reply(q, OpHit)
		r.URL = "http://other/"
		return mustMarshal(t, r)
	})
	c := NewClient()
	res, err := c.Query([]*net.UDPAddr{bad}, "http://x/", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("HIT for a different URL accepted")
	}
	// The reply still counts as an answer (the neighbour is alive).
	if res.Replies != 1 {
		t.Fatalf("replies = %d", res.Replies)
	}
}

func TestQueryIgnoresGarbageDatagrams(t *testing.T) {
	bad := rawResponder(t, func(q Message) []byte {
		return []byte{0xde, 0xad, 0xbe, 0xef}
	})
	c := NewClient()
	res, err := c.Query([]*net.UDPAddr{bad}, "http://x/", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.Replies != 0 {
		t.Fatalf("garbage counted as an answer: %+v", res)
	}
}

func TestQueryHitBeatsSlowMisses(t *testing.T) {
	// One neighbour answers HIT; another never answers. The query must
	// resolve on the HIT without waiting out the silent peer's timeout...
	hitSrv := startServer(t, "http://x/")
	silent := rawResponder(t, func(q Message) []byte { return nil })

	c := NewClient()
	start := time.Now()
	res, err := c.Query([]*net.UDPAddr{silent, hitSrv.Addr()}, "http://x/", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatalf("res = %+v", res)
	}
	if time.Since(start) > time.Second {
		t.Fatal("query waited for the silent peer despite a HIT")
	}
}

func TestQueryErrReplyCountsAsMiss(t *testing.T) {
	bad := rawResponder(t, func(q Message) []byte {
		return mustMarshal(t, Reply(q, OpErr))
	})
	c := NewClient()
	res, err := c.Query([]*net.UDPAddr{bad}, "http://x/", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.Replies != 1 {
		t.Fatalf("res = %+v, want one non-hit reply", res)
	}
}

func TestQuerySurvivesUnsendableNeighbour(t *testing.T) {
	// One neighbour's datagram cannot even be sent (IPv6 target from the
	// client's IPv4 socket); the fan-out must continue and find the hit.
	unsendable := &net.UDPAddr{IP: net.ParseIP("ff02::1"), Port: 9}
	hitSrv := startServer(t, "http://x/")

	c := NewClient()
	res, err := c.Query([]*net.UDPAddr{unsendable, hitSrv.Addr()}, "http://x/", 2*time.Second)
	if err != nil {
		t.Fatalf("send failure aborted the query: %v", err)
	}
	if !res.Hit {
		t.Fatalf("res = %+v, want hit despite unsendable neighbour", res)
	}
	if len(res.SendFailed) != 1 || !res.SendFailed[0].IP.Equal(unsendable.IP) {
		t.Fatalf("SendFailed = %v, want the unsendable neighbour", res.SendFailed)
	}
}

func TestQueryAllNeighboursUnsendable(t *testing.T) {
	unsendable := &net.UDPAddr{IP: net.ParseIP("ff02::1"), Port: 9}
	c := NewClient()
	res, err := c.Query([]*net.UDPAddr{unsendable}, "http://x/", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || len(res.SendFailed) != 1 || res.TimedOut {
		t.Fatalf("res = %+v, want immediate miss", res)
	}
}

func TestQueryCollectsEveryHitResponder(t *testing.T) {
	// Two neighbours both hold the document; both must be reported so the
	// caller can retry the fetch against the second if the first dies.
	hitA := startServer(t, "http://x/")
	hitB := startServer(t, "http://x/")

	c := NewClient()
	res, err := c.Query([]*net.UDPAddr{hitA.Addr(), hitB.Addr()}, "http://x/", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatalf("res = %+v, want hit", res)
	}
	if len(res.Responders) != 2 {
		t.Fatalf("responders = %v, want both neighbours", res.Responders)
	}
	if res.Responder == nil || res.Responders[0].Port != res.Responder.Port {
		t.Fatal("Responders[0] is not the first responder")
	}
}

func TestQueryTimedOutFlag(t *testing.T) {
	silent := rawResponder(t, func(q Message) []byte { return nil })
	missSrv := startServer(t, "http://other/")

	c := NewClient()
	res, err := c.Query([]*net.UDPAddr{silent, missSrv.Addr()}, "http://x/", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || !res.TimedOut {
		t.Fatalf("res = %+v, want timed-out miss", res)
	}
	if len(res.Answered) != 1 || res.Answered[0].Port != missSrv.Addr().Port {
		t.Fatalf("Answered = %v, want only the miss responder", res.Answered)
	}

	// All neighbours answering resolves without the timeout flag.
	res, err = c.Query([]*net.UDPAddr{missSrv.Addr()}, "http://x/", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Elapsed > time.Second {
		t.Fatalf("res = %+v, want fast non-timeout miss", res)
	}
}
