package icp

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Client issues fan-out ICP queries, as a proxy does on a local miss: one
// ICP_OP_QUERY per neighbour, then wait for the first ICP_OP_HIT, or until
// every neighbour answered a miss, or until the timeout expires (lost
// datagrams are expected; ICP treats silence as a miss).
type Client struct {
	reqNum atomic.Uint32
}

// NewClient returns a ready Client. It is safe for concurrent use; each
// query uses its own ephemeral UDP socket.
func NewClient() *Client { return &Client{} }

// Result is the outcome of one fan-out query.
type Result struct {
	// Hit is true if some neighbour answered ICP_OP_HIT.
	Hit bool
	// Responder is the address of the first neighbour that answered
	// ICP_OP_HIT, when Hit is true.
	Responder *net.UDPAddr
	// Replies counts the answers received before the query resolved.
	Replies int
	// Elapsed is the time the exchange took.
	Elapsed time.Duration
}

// Query sends an ICP query for url to every neighbour and reports the first
// hit. A neighbour that does not answer within timeout counts as a miss.
func (c *Client) Query(neighbours []*net.UDPAddr, url string, timeout time.Duration) (Result, error) {
	start := time.Now()
	if len(neighbours) == 0 {
		return Result{Elapsed: time.Since(start)}, nil
	}

	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		// Fall back to an unspecified local address (non-loopback peers).
		conn, err = net.ListenUDP("udp", nil)
		if err != nil {
			return Result{}, fmt.Errorf("icp: open query socket: %w", err)
		}
	}
	defer conn.Close()

	reqNum := c.reqNum.Add(1)
	query, err := Query(reqNum, url).Marshal()
	if err != nil {
		return Result{}, err
	}
	for _, n := range neighbours {
		if _, err := conn.WriteToUDP(query, n); err != nil {
			return Result{}, fmt.Errorf("icp: send query to %s: %w", n, err)
		}
	}

	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return Result{}, fmt.Errorf("icp: set deadline: %w", err)
	}
	var res Result
	buf := make([]byte, maxLen)
	for res.Replies < len(neighbours) {
		n, peer, err := conn.ReadFromUDP(buf)
		if err != nil {
			// Timeout: treat unanswered neighbours as misses.
			break
		}
		m, err := Parse(buf[:n])
		if err != nil || m.ReqNum != reqNum {
			continue // stray or stale datagram
		}
		res.Replies++
		if m.Op == OpHit && m.URL == url {
			res.Hit = true
			res.Responder = peer
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
