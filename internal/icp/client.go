package icp

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Client issues fan-out ICP queries, as a proxy does on a local miss: one
// ICP_OP_QUERY per neighbour, then wait for the first ICP_OP_HIT, or until
// every neighbour answered a miss, or until the timeout expires (lost
// datagrams are expected; ICP treats silence as a miss).
//
// The fan-out is fault-tolerant: a neighbour whose datagram cannot even be
// sent is counted as a miss instead of aborting the query, and after the
// first hit the client keeps draining replies for a short grace window so
// every hit responder is collected — giving the caller fallback targets if
// the first responder dies before the follow-up fetch.
type Client struct {
	reqNum atomic.Uint32

	// Listen, when non-nil, replaces the per-query socket factory — e.g.
	// to wrap the socket with a fault injector. Set it before the first
	// Query; the returned conn is closed when the query resolves.
	Listen func() (net.PacketConn, error)
}

// NewClient returns a ready Client. It is safe for concurrent use; each
// query uses its own ephemeral UDP socket.
func NewClient() *Client { return &Client{} }

// hitGraceMin/Max bound the post-first-hit drain window: long enough to
// catch replies already in flight from equally-near neighbours, short
// enough not to re-introduce the full-timeout wait the first hit avoided.
const (
	hitGraceMin = 2 * time.Millisecond
	hitGraceMax = 20 * time.Millisecond
)

// Result is the outcome of one fan-out query.
type Result struct {
	// Hit is true if some neighbour answered ICP_OP_HIT.
	Hit bool
	// Responder is the address of the first neighbour that answered
	// ICP_OP_HIT, when Hit is true.
	Responder *net.UDPAddr
	// Responders lists every neighbour that answered ICP_OP_HIT, in
	// arrival order (fastest first). Responders[0] == Responder.
	Responders []*net.UDPAddr
	// Replies counts the answers received before the query resolved.
	Replies int
	// Answered lists the neighbours that replied at all (hit or miss),
	// in arrival order.
	Answered []*net.UDPAddr
	// SendFailed lists the neighbours the query datagram could not even
	// be sent to; they are counted as misses.
	SendFailed []*net.UDPAddr
	// TimedOut is true when the query resolved by exhausting the timeout
	// with some neighbours silent — the caller's evidence of peer
	// unreachability. A query that resolved on a hit or on a full set of
	// replies leaves it false.
	TimedOut bool
	// Elapsed is the time the exchange took.
	Elapsed time.Duration
}

func (c *Client) listen() (net.PacketConn, error) {
	if c.Listen != nil {
		return c.Listen()
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		// Fall back to an unspecified local address (non-loopback peers).
		return net.ListenUDP("udp", nil)
	}
	return conn, nil
}

// Query sends an ICP query for url to every neighbour and reports every
// hit, resolving on the first. A neighbour that does not answer within
// timeout counts as a miss, as does one the datagram cannot be sent to.
func (c *Client) Query(neighbours []*net.UDPAddr, url string, timeout time.Duration) (Result, error) {
	start := time.Now()
	if len(neighbours) == 0 {
		return Result{Elapsed: time.Since(start)}, nil
	}

	conn, err := c.listen()
	if err != nil {
		return Result{}, fmt.Errorf("icp: open query socket: %w", err)
	}
	defer conn.Close()

	reqNum := c.reqNum.Add(1)
	query, err := Query(reqNum, url).Marshal()
	if err != nil {
		return Result{}, err
	}
	var res Result
	sent := 0
	for _, n := range neighbours {
		if _, err := conn.WriteTo(query, n); err != nil {
			// An unsendable neighbour is a miss, not a failed query:
			// the rest of the fan-out proceeds.
			res.SendFailed = append(res.SendFailed, n)
			continue
		}
		sent++
	}
	if sent == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	deadline := start.Add(timeout)
	if err := conn.SetReadDeadline(deadline); err != nil {
		return res, fmt.Errorf("icp: set deadline: %w", err)
	}
	buf := make([]byte, maxLen)
	for res.Replies < sent {
		n, peer, err := conn.ReadFrom(buf)
		if err != nil {
			// Deadline: with no hit this is the timeout path (silent
			// neighbours count as misses); with a hit it merely ends
			// the post-hit grace drain.
			res.TimedOut = !res.Hit
			break
		}
		m, err := Parse(buf[:n])
		if err != nil || m.ReqNum != reqNum {
			continue // stray, stale, or corrupted datagram
		}
		res.Replies++
		udp := toUDPAddr(peer)
		if udp == nil {
			continue
		}
		res.Answered = append(res.Answered, udp)
		if m.Op == OpHit && m.URL == url {
			res.Responders = append(res.Responders, udp)
			if !res.Hit {
				res.Hit = true
				res.Responder = udp
				// Resolve now, but drain briefly for other hits already
				// in flight: they are the retry targets if this
				// responder dies before the follow-up fetch.
				grace := time.Since(start)
				if grace < hitGraceMin {
					grace = hitGraceMin
				}
				if grace > hitGraceMax {
					grace = hitGraceMax
				}
				if gd := time.Now().Add(grace); gd.Before(deadline) {
					_ = conn.SetReadDeadline(gd)
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// toUDPAddr recovers a *net.UDPAddr from a reply's source address (which
// an injector-wrapped conn may surface as another net.Addr type).
func toUDPAddr(a net.Addr) *net.UDPAddr {
	if u, ok := a.(*net.UDPAddr); ok {
		return u
	}
	u, err := net.ResolveUDPAddr("udp", a.String())
	if err != nil {
		return nil
	}
	return u
}
