package icp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client issues fan-out ICP queries, as a proxy does on a local miss: one
// ICP_OP_QUERY per neighbour, then wait for the first ICP_OP_HIT, or until
// every neighbour answered a miss, or until the timeout expires (lost
// datagrams are expected; ICP treats silence as a miss).
//
// The fan-out is fault-tolerant: a neighbour whose datagram cannot even be
// sent is counted as a miss instead of aborting the query, and after the
// first hit the client keeps draining replies for a short grace window so
// every hit responder is collected — giving the caller fallback targets if
// the first responder dies before the follow-up fetch.
//
// One UDP socket serves every query: it is bound lazily on the first
// Query and lives until Close. A single reader goroutine parses replies
// and routes them to the in-flight query by ICP request number, so
// concurrent queries multiplex the socket instead of paying a socket
// create/bind/close per cache miss.
type Client struct {
	reqNum atomic.Uint32

	// Listen, when non-nil, replaces the socket factory — e.g. to wrap
	// the socket with a fault injector. Set it before the first Query;
	// the socket is bound once and closed by Close.
	Listen func() (net.PacketConn, error)

	mu      sync.Mutex
	conn    net.PacketConn
	pending map[uint32]chan reply
	closed  bool
}

// reply is one parsed, demultiplexed answer delivered to its query.
type reply struct {
	op   Opcode
	url  string
	from *net.UDPAddr
}

// NewClient returns a ready Client, safe for concurrent use. Callers that
// are done querying should Close it to release the shared socket.
func NewClient() *Client { return &Client{pending: make(map[uint32]chan reply)} }

// hitGraceMin/Max bound the post-first-hit drain window: long enough to
// catch replies already in flight from equally-near neighbours, short
// enough not to re-introduce the full-timeout wait the first hit avoided.
const (
	hitGraceMin = 2 * time.Millisecond
	hitGraceMax = 20 * time.Millisecond
)

// readBufPool recycles reply read buffers across reader goroutines (a
// client rebinding after faults, or many short-lived clients in tests).
var readBufPool = sync.Pool{New: func() any {
	b := make([]byte, maxLen)
	return &b
}}

// Result is the outcome of one fan-out query.
type Result struct {
	// Hit is true if some neighbour answered ICP_OP_HIT.
	Hit bool
	// Responder is the address of the first neighbour that answered
	// ICP_OP_HIT, when Hit is true.
	Responder *net.UDPAddr
	// Responders lists every neighbour that answered ICP_OP_HIT, in
	// arrival order (fastest first). Responders[0] == Responder.
	Responders []*net.UDPAddr
	// Replies counts the answers received before the query resolved.
	Replies int
	// Answered lists the neighbours that replied at all (hit or miss),
	// in arrival order.
	Answered []*net.UDPAddr
	// SendFailed lists the neighbours the query datagram could not even
	// be sent to; they are counted as misses.
	SendFailed []*net.UDPAddr
	// TimedOut is true when the query resolved by exhausting the timeout
	// with some neighbours silent — the caller's evidence of peer
	// unreachability. A query that resolved on a hit or on a full set of
	// replies leaves it false.
	TimedOut bool
	// Elapsed is the time the exchange took.
	Elapsed time.Duration
}

// bind returns the shared query socket, binding it and starting the
// reader on first use.
func (c *Client) bind() (net.PacketConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("icp: client closed")
	}
	if c.conn != nil {
		return c.conn, nil
	}
	var (
		conn net.PacketConn
		err  error
	)
	if c.Listen != nil {
		conn, err = c.Listen()
	} else {
		conn, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			// Fall back to an unspecified local address (non-loopback
			// peers).
			conn, err = net.ListenUDP("udp", nil)
		}
	}
	if err != nil {
		return nil, err
	}
	c.conn = conn
	go c.readLoop(conn)
	return conn, nil
}

// readLoop is the demultiplexer: it parses every datagram arriving on the
// shared socket and hands it to the query whose request number it echoes.
// Stray, stale, corrupted, and unclaimed datagrams are dropped, exactly
// as a per-query socket would have ignored them. It exits on the first
// read error — Close closing the socket, or a fatal socket fault.
func (c *Client) readLoop(conn net.PacketConn) {
	bp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bp)
	buf := *bp
	for {
		n, peer, err := conn.ReadFrom(buf)
		if err != nil {
			return
		}
		m, err := Parse(buf[:n])
		if err != nil {
			continue
		}
		udp := toUDPAddr(peer)
		if udp == nil {
			continue
		}
		c.mu.Lock()
		ch := c.pending[m.ReqNum]
		c.mu.Unlock()
		if ch == nil {
			continue
		}
		select {
		case ch <- reply{op: m.Op, url: m.URL, from: udp}:
		default:
			// The query's buffer is full (duplicate floods); drop, as
			// UDP would.
		}
	}
}

// Close releases the shared socket and fails any in-flight queries'
// pending reads (they resolve via their timeout). Further Query calls
// error. Close is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Query sends an ICP query for url to every neighbour and reports every
// hit, resolving on the first. A neighbour that does not answer within
// timeout counts as a miss, as does one the datagram cannot be sent to.
func (c *Client) Query(neighbours []*net.UDPAddr, url string, timeout time.Duration) (Result, error) {
	return c.QueryHop(neighbours, url, timeout, -1)
}

// QueryHop is Query with the sender's trace hop depth stamped onto the
// datagrams (FlagTraceHop); hop < 0 sends a plain unstamped query.
func (c *Client) QueryHop(neighbours []*net.UDPAddr, url string, timeout time.Duration, hop int) (Result, error) {
	start := time.Now()
	if len(neighbours) == 0 {
		return Result{Elapsed: time.Since(start)}, nil
	}

	conn, err := c.bind()
	if err != nil {
		return Result{}, fmt.Errorf("icp: open query socket: %w", err)
	}

	reqNum := c.reqNum.Add(1)
	msg := Query(reqNum, url)
	msg.SetHop(hop)
	query, err := msg.Marshal()
	if err != nil {
		return Result{}, err
	}

	// Register the demux slot before the first datagram can possibly
	// answer. The channel holds one reply per neighbour plus slack for
	// duplicates; overflow is dropped like any excess datagram.
	ch := make(chan reply, 2*len(neighbours))
	c.mu.Lock()
	c.pending[reqNum] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, reqNum)
		c.mu.Unlock()
	}()

	var res Result
	sent := 0
	for _, n := range neighbours {
		if _, err := conn.WriteTo(query, n); err != nil {
			// An unsendable neighbour is a miss, not a failed query:
			// the rest of the fan-out proceeds.
			res.SendFailed = append(res.SendFailed, n)
			continue
		}
		sent++
	}
	if sent == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	deadline := start.Add(timeout)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for res.Replies < sent {
		select {
		case r := <-ch:
			res.Replies++
			res.Answered = append(res.Answered, r.from)
			if r.op == OpHit && r.url == url {
				res.Responders = append(res.Responders, r.from)
				if !res.Hit {
					res.Hit = true
					res.Responder = r.from
					// Resolve now, but drain briefly for other hits
					// already in flight: they are the retry targets if
					// this responder dies before the follow-up fetch.
					grace := time.Since(start)
					if grace < hitGraceMin {
						grace = hitGraceMin
					}
					if grace > hitGraceMax {
						grace = hitGraceMax
					}
					if remaining := time.Until(deadline); grace > remaining {
						grace = remaining
					}
					if !timer.Stop() {
						<-timer.C
					}
					timer.Reset(grace)
				}
			}
		case <-timer.C:
			// Deadline: with no hit this is the timeout path (silent
			// neighbours count as misses); with a hit it merely ends
			// the post-hit grace drain.
			res.TimedOut = !res.Hit
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// toUDPAddr recovers a *net.UDPAddr from a reply's source address (which
// an injector-wrapped conn may surface as another net.Addr type).
func toUDPAddr(a net.Addr) *net.UDPAddr {
	if u, ok := a.(*net.UDPAddr); ok {
		return u
	}
	u, err := net.ResolveUDPAddr("udp", a.String())
	if err != nil {
		return nil
	}
	return u
}
