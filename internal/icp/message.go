// Package icp implements version 2 of the Internet Cache Protocol
// (RFC 2186), the datagram protocol cooperating proxies use to locate
// documents in each other's caches: a proxy that misses locally sends
// ICP_OP_QUERY to its neighbours and they answer ICP_OP_HIT or ICP_OP_MISS.
//
// The package provides the exact wire format plus a UDP responder and a
// fan-out query client, used by the live network node (internal/netnode).
// The deterministic simulator short-circuits the same exchange in-process
// with identical semantics.
package icp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Opcode is an ICP message opcode (RFC 2186 §3).
type Opcode uint8

// Opcodes defined by RFC 2186.
const (
	OpInvalid     Opcode = 0
	OpQuery       Opcode = 1
	OpHit         Opcode = 2
	OpMiss        Opcode = 3
	OpErr         Opcode = 4
	OpSEcho       Opcode = 10
	OpDEcho       Opcode = 11
	OpMissNoFetch Opcode = 21
	OpDenied      Opcode = 22
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpInvalid:
		return "ICP_OP_INVALID"
	case OpQuery:
		return "ICP_OP_QUERY"
	case OpHit:
		return "ICP_OP_HIT"
	case OpMiss:
		return "ICP_OP_MISS"
	case OpErr:
		return "ICP_OP_ERR"
	case OpSEcho:
		return "ICP_OP_SECHO"
	case OpDEcho:
		return "ICP_OP_DECHO"
	case OpMissNoFetch:
		return "ICP_OP_MISS_NOFETCH"
	case OpDenied:
		return "ICP_OP_DENIED"
	default:
		return fmt.Sprintf("ICP_OP_%d", uint8(o))
	}
}

// Version2 is the protocol version this package speaks.
const Version2 = 2

// Option flag bits (RFC 2186 §6).
const (
	FlagHitObj uint32 = 0x80000000
	FlagSrcRTT uint32 = 0x40000000
	// FlagTraceHop is a private-use option bit (outside the RFC-assigned
	// range): when set, the low byte of OptionData carries the sender's
	// forwarding hop depth, so a traced request's ICP fan-out is
	// attributable to its hop in the stitched timeline. Implementations
	// that do not know the bit ignore it, as RFC 2186 §6 prescribes for
	// unrecognised options — the queries stay wire-compatible.
	FlagTraceHop uint32 = 0x20000000
)

const (
	headerLen   = 20
	maxLen      = 1 << 16 // message length field is 16 bits
	queryPrefix = 4       // requester host address in query payload
)

// Errors returned by Parse.
var (
	ErrShortMessage = errors.New("icp: message shorter than header")
	ErrBadLength    = errors.New("icp: length field does not match datagram")
	ErrBadVersion   = errors.New("icp: unsupported version")
	ErrBadPayload   = errors.New("icp: malformed payload")
	ErrURLTooLong   = errors.New("icp: URL does not fit in a message")
)

// Message is one ICP datagram.
type Message struct {
	Op      Opcode
	Version uint8
	// ReqNum matches replies to queries; the requester chooses it.
	ReqNum uint32
	// Options carries the flag bits.
	Options uint32
	// OptionData carries SRC_RTT measurements when FlagSrcRTT is set.
	OptionData uint32
	// Sender is the sender host address field (IPv4, big endian). RFC
	// 2186 allows it to be zero, and modern implementations ignore it.
	Sender uint32
	// Requester is the requester host address carried in the payload of
	// ICP_OP_QUERY messages only.
	Requester uint32
	// URL is the document being located. NUL-terminated on the wire.
	URL string
}

// Query builds an ICP_OP_QUERY for url with the given request number.
func Query(reqNum uint32, url string) Message {
	return Message{Op: OpQuery, Version: Version2, ReqNum: reqNum, URL: url}
}

// SetHop stamps the trace hop depth onto the message (FlagTraceHop +
// OptionData low byte). Depths outside [0,255] are ignored.
func (m *Message) SetHop(hop int) {
	if hop < 0 || hop > 255 {
		return
	}
	m.Options |= FlagTraceHop
	m.OptionData = m.OptionData&^uint32(0xff) | uint32(hop)
}

// Hop returns the trace hop depth carried by the message, or -1 when the
// sender did not stamp one.
func (m Message) Hop() int {
	if m.Options&FlagTraceHop == 0 {
		return -1
	}
	return int(m.OptionData & 0xff)
}

// Reply builds a reply to q with the given opcode, echoing the request
// number and URL as RFC 2186 requires.
func Reply(q Message, op Opcode) Message {
	return Message{Op: op, Version: Version2, ReqNum: q.ReqNum, URL: q.URL}
}

// Marshal encodes the message into the RFC 2186 wire format.
func (m Message) Marshal() ([]byte, error) {
	if strings.IndexByte(m.URL, 0) >= 0 {
		return nil, fmt.Errorf("%w: URL contains NUL", ErrBadPayload)
	}
	payload := len(m.URL) + 1
	if m.Op == OpQuery {
		payload += queryPrefix
	}
	total := headerLen + payload
	if total > maxLen-1 {
		return nil, ErrURLTooLong
	}

	buf := make([]byte, total)
	buf[0] = byte(m.Op)
	version := m.Version
	if version == 0 {
		version = Version2
	}
	buf[1] = version
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	binary.BigEndian.PutUint32(buf[4:8], m.ReqNum)
	binary.BigEndian.PutUint32(buf[8:12], m.Options)
	binary.BigEndian.PutUint32(buf[12:16], m.OptionData)
	binary.BigEndian.PutUint32(buf[16:20], m.Sender)

	p := buf[headerLen:]
	if m.Op == OpQuery {
		binary.BigEndian.PutUint32(p[0:4], m.Requester)
		p = p[4:]
	}
	copy(p, m.URL)
	// trailing NUL is already zero
	return buf, nil
}

// Parse decodes one datagram.
func Parse(b []byte) (Message, error) {
	if len(b) < headerLen {
		return Message{}, ErrShortMessage
	}
	var m Message
	m.Op = Opcode(b[0])
	m.Version = b[1]
	if m.Version != Version2 {
		return Message{}, fmt.Errorf("%w: %d", ErrBadVersion, m.Version)
	}
	if int(binary.BigEndian.Uint16(b[2:4])) != len(b) {
		return Message{}, ErrBadLength
	}
	m.ReqNum = binary.BigEndian.Uint32(b[4:8])
	m.Options = binary.BigEndian.Uint32(b[8:12])
	m.OptionData = binary.BigEndian.Uint32(b[12:16])
	m.Sender = binary.BigEndian.Uint32(b[16:20])

	p := b[headerLen:]
	if m.Op == OpQuery {
		if len(p) < queryPrefix+1 {
			return Message{}, fmt.Errorf("%w: query payload too short", ErrBadPayload)
		}
		m.Requester = binary.BigEndian.Uint32(p[0:4])
		p = p[4:]
	}
	if len(p) == 0 || p[len(p)-1] != 0 {
		return Message{}, fmt.Errorf("%w: missing URL terminator", ErrBadPayload)
	}
	url := string(p[:len(p)-1])
	if strings.IndexByte(url, 0) >= 0 {
		return Message{}, fmt.Errorf("%w: embedded NUL in URL", ErrBadPayload)
	}
	m.URL = url
	return m, nil
}
