package icp

import (
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	tests := []Message{
		Query(1, "http://cs-www.bu.edu/"),
		Reply(Query(7, "http://x.example.edu/a.gif"), OpHit),
		Reply(Query(7, "http://x.example.edu/a.gif"), OpMiss),
		Reply(Query(9, "http://y/"), OpMissNoFetch),
		{Op: OpErr, Version: Version2, ReqNum: 3, URL: ""},
		{Op: OpQuery, Version: Version2, ReqNum: 42, Options: FlagSrcRTT,
			OptionData: 17, Sender: 0x7f000001, Requester: 0x7f000002,
			URL: "http://long.example.edu/" + strings.Repeat("p/", 100)},
	}
	for _, m := range tests {
		data, err := m.Marshal()
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", m, err)
		}
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		want := m
		if want.Version == 0 {
			want.Version = Version2
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestWireFormat(t *testing.T) {
	m := Query(0x01020304, "http://a/")
	m.Sender = 0x0a000001
	m.Requester = 0x0a000002
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// RFC 2186 header layout.
	if data[0] != byte(OpQuery) {
		t.Fatalf("opcode byte = %d", data[0])
	}
	if data[1] != Version2 {
		t.Fatalf("version byte = %d", data[1])
	}
	if got := binary.BigEndian.Uint16(data[2:4]); int(got) != len(data) {
		t.Fatalf("length field = %d, datagram = %d", got, len(data))
	}
	if got := binary.BigEndian.Uint32(data[4:8]); got != 0x01020304 {
		t.Fatalf("reqnum = %x", got)
	}
	if got := binary.BigEndian.Uint32(data[16:20]); got != 0x0a000001 {
		t.Fatalf("sender = %x", got)
	}
	if got := binary.BigEndian.Uint32(data[20:24]); got != 0x0a000002 {
		t.Fatalf("requester host = %x", got)
	}
	// Payload: NUL-terminated URL after the requester address.
	if string(data[24:len(data)-1]) != "http://a/" || data[len(data)-1] != 0 {
		t.Fatalf("payload = %q", data[24:])
	}
}

func TestMarshalRejectsBadInput(t *testing.T) {
	if _, err := (Message{Op: OpQuery, URL: "http://a/\x00b"}).Marshal(); err == nil {
		t.Fatal("NUL in URL accepted")
	}
	long := Message{Op: OpQuery, URL: strings.Repeat("x", maxLen)}
	if _, err := long.Marshal(); !errors.Is(err, ErrURLTooLong) {
		t.Fatalf("oversize URL: err = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	valid, err := Query(1, "http://a/").Marshal()
	if err != nil {
		t.Fatal(err)
	}

	short := valid[:10]
	if _, err := Parse(short); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short: %v", err)
	}

	badLen := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(badLen[2:4], uint16(len(badLen)+5))
	if _, err := Parse(badLen); !errors.Is(err, ErrBadLength) {
		t.Fatalf("bad length: %v", err)
	}

	badVer := append([]byte(nil), valid...)
	badVer[1] = 9
	if _, err := Parse(badVer); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}

	noNul := append([]byte(nil), valid...)
	noNul[len(noNul)-1] = 'x'
	if _, err := Parse(noNul); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("missing terminator: %v", err)
	}

	// Query payload shorter than the requester-address prefix.
	truncated := append([]byte(nil), valid[:headerLen+2]...)
	binary.BigEndian.PutUint16(truncated[2:4], uint16(len(truncated)))
	if _, err := Parse(truncated); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated query: %v", err)
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op, want := range map[Opcode]string{
		OpInvalid:     "ICP_OP_INVALID",
		OpQuery:       "ICP_OP_QUERY",
		OpHit:         "ICP_OP_HIT",
		OpMiss:        "ICP_OP_MISS",
		OpErr:         "ICP_OP_ERR",
		OpSEcho:       "ICP_OP_SECHO",
		OpDEcho:       "ICP_OP_DECHO",
		OpMissNoFetch: "ICP_OP_MISS_NOFETCH",
		OpDenied:      "ICP_OP_DENIED",
		Opcode(77):    "ICP_OP_77",
	} {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(op uint8, reqNum, options, optionData, sender, requester uint32, urlBytes []byte) bool {
		url := strings.Map(func(r rune) rune {
			if r == 0 {
				return 'x'
			}
			return r
		}, string(urlBytes))
		if len(url) > 4096 {
			url = url[:4096]
		}
		m := Message{
			Op:         Opcode(op),
			Version:    Version2,
			ReqNum:     reqNum,
			Options:    options,
			OptionData: optionData,
			Sender:     sender,
			URL:        url,
		}
		if m.Op == OpQuery {
			m.Requester = requester
		}
		data, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Parse(data) // must not panic regardless of input
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
