package icp

import (
	"bytes"
	"testing"
)

// FuzzParse throws arbitrary datagrams at the ICP parser: it must never
// panic, and anything it accepts must re-marshal to the identical bytes
// (the format has no redundant encodings).
func FuzzParse(f *testing.F) {
	seed := []Message{
		Query(1, "http://cs-www.bu.edu/"),
		Reply(Query(2, "http://a/"), OpHit),
		Reply(Query(3, "http://b/x.gif"), OpMiss),
		{Op: OpErr, Version: Version2, ReqNum: 9},
		{Op: OpSEcho, Version: Version2, URL: "http://echo/"},
	}
	for _, m := range seed {
		data, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add(make([]byte, headerLen))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted message failed to marshal: %+v: %v", m, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes:\n in %x\nout %x", data, out)
		}
	})
}

// FuzzMarshalParse fuzzes structured inputs through Marshal → Parse and
// requires the fields to survive.
func FuzzMarshalParse(f *testing.F) {
	f.Add(uint8(1), uint32(1), uint32(0), "http://a/")
	f.Add(uint8(2), uint32(7), uint32(0x80000000), "http://long.example.edu/path/x.gif")
	f.Add(uint8(21), uint32(0), uint32(0), "")

	f.Fuzz(func(t *testing.T, op uint8, reqNum, options uint32, url string) {
		m := Message{
			Op:      Opcode(op),
			Version: Version2,
			ReqNum:  reqNum,
			Options: options,
			URL:     url,
		}
		data, err := m.Marshal()
		if err != nil {
			return // invalid URLs (NUL, oversize) are rejected by design
		}
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("marshalled message rejected: %v", err)
		}
		if got.Op != m.Op || got.ReqNum != m.ReqNum || got.Options != m.Options || got.URL != m.URL {
			t.Fatalf("fields changed: %+v -> %+v", m, got)
		}
	})
}
