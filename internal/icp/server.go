package icp

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
)

// Handler answers ICP queries. Implementations must be safe for concurrent
// use.
type Handler interface {
	// HandleQuery reports the reply opcode for url: OpHit when the
	// document is cached, OpMiss (or OpMissNoFetch / OpDenied) otherwise.
	HandleQuery(url string) Opcode
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(url string) Opcode

// HandleQuery implements Handler.
func (f HandlerFunc) HandleQuery(url string) Opcode { return f(url) }

// Server answers ICP queries on a UDP socket.
type Server struct {
	conn    *net.UDPConn
	handler Handler
	logger  *log.Logger

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer starts an ICP responder listening on addr (e.g. "127.0.0.1:0").
// Close must be called to release the socket and stop the service goroutine.
func NewServer(addr string, handler Handler, logger *log.Logger) (*Server, error) {
	if handler == nil {
		return nil, errors.New("icp: nil handler")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("icp: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("icp: listen %q: %w", addr, err)
	}
	s := &Server{
		conn:    conn,
		handler: handler,
		logger:  logger,
		closed:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the bound UDP address.
func (s *Server) Addr() *net.UDPAddr {
	addr, ok := s.conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		return nil
	}
	return addr
}

// Close stops the server and waits for its goroutine to exit.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, maxLen)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			s.logf("icp: read: %v", err)
			continue
		}
		reply, ok := s.handle(buf[:n])
		if !ok {
			continue
		}
		data, err := reply.Marshal()
		if err != nil {
			s.logf("icp: marshal reply: %v", err)
			continue
		}
		if _, err := s.conn.WriteToUDP(data, peer); err != nil {
			s.logf("icp: write to %s: %v", peer, err)
		}
	}
}

func (s *Server) handle(datagram []byte) (Message, bool) {
	m, err := Parse(datagram)
	if err != nil {
		// RFC 2186: reply ICP_OP_ERR when the query is unintelligible
		// but a request number can be recovered; otherwise drop.
		if len(datagram) >= headerLen {
			bad := Message{Op: OpErr, Version: Version2}
			parsed, perr := Parse(datagram[:headerLen])
			if perr == nil {
				bad.ReqNum = parsed.ReqNum
			}
			return bad, true
		}
		return Message{}, false
	}
	switch m.Op {
	case OpQuery:
		return Reply(m, s.handler.HandleQuery(m.URL)), true
	case OpSEcho:
		// Source echo: bounce the message back unchanged bar opcode.
		return Reply(m, OpSEcho), true
	default:
		// Replies and unknown opcodes are not ours to answer.
		return Message{}, false
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}
