// Package benchkit holds the repo's benchmark bodies as importable
// functions. Test files (bench_test.go at the root and in
// internal/netnode) wrap them as ordinary `go test -bench` benchmarks,
// and cmd/benchjson drives the same bodies through testing.Benchmark to
// emit a machine-readable JSON artifact without spawning `go test`
// subprocesses. Custom measures (hit rate, estimated latency) travel on
// the BenchmarkResult.Extra map via b.ReportMetric.
package benchkit

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eacache/internal/cache"
	"eacache/internal/core"
	"eacache/internal/experiments"
	"eacache/internal/group"
	"eacache/internal/metrics"
	"eacache/internal/netnode"
	"eacache/internal/obs"
	"eacache/internal/sim"
	"eacache/internal/trace"
)

// Scale is the trace scale the artifact benchmarks run at; cache sizes
// are scaled by the same factor, preserving the cache-to-working-set
// ratio of the paper's configurations.
const Scale = 0.02

var (
	traceOnce sync.Once
	traceRecs []trace.Record
)

// Trace returns the shared benchmark workload (generated once).
func Trace() []trace.Record {
	traceOnce.Do(func() {
		records, err := trace.Generate(trace.BULike().Scaled(Scale))
		if err != nil {
			panic(err)
		}
		traceRecs = trace.CleanZeroSizes(records, trace.DefaultDocSize)
		trace.SortByTime(traceRecs)
	})
	return traceRecs
}

// Artifact returns a benchmark body that regenerates one paper artifact
// per iteration on a fresh (unmemoized) suite, so it measures the real
// regeneration cost.
func Artifact(id string) func(*testing.B) {
	return func(b *testing.B) {
		records := Trace()
		b.ReportAllocs()
		b.ResetTimer()
		var table *experiments.Table
		for i := 0; i < b.N; i++ {
			suite := experiments.NewSuite(records, experiments.Config{
				Sizes: experiments.ScaledSizes(Scale),
			})
			var err error
			table, err = suite.Experiment(id)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if table == nil || len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		b.ReportMetric(float64(len(table.Rows)), "rows")
	}
}

// GroupReplay returns a benchmark body that replays the workload through
// a simulated cache group once per iteration and reports the paper's
// headline measures — document hit rate, byte hit rate, and the
// equation-6 estimated average latency — alongside ns/op.
func GroupReplay(scheme core.Scheme, caches int, aggregate int64) func(*testing.B) {
	return func(b *testing.B) {
		records := Trace()
		b.ReportAllocs()
		b.ResetTimer()
		var rep *sim.Report
		for i := 0; i < b.N; i++ {
			g, err := group.New(group.Config{
				Caches:         caches,
				AggregateBytes: aggregate,
				Scheme:         scheme,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err = sim.Run(g, records, sim.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(rep.Group.HitRate(), "hitrate")
		b.ReportMetric(rep.Group.ByteHitRate(), "bytehitrate")
		b.ReportMetric(rep.EstimatedLatency.Seconds()*1e3, "estlatency_ms")
		b.ReportMetric(float64(len(records)), "requests/op")
	}
}

// NodeRequest returns the end-to-end node benchmark: a live two-node EA
// group over real sockets, with a steady-state mix of local hits and
// recurring remote hits (EA's strict rule rejects storing a remote hit
// on an expiration-age tie, so remote-hit documents keep travelling the
// ICP + inter-proxy path every lap). withTelemetry wires an
// obs.Telemetry into the requesting node so the pair of benchmarks
// measures the observability overhead on the same workload.
func NodeRequest(withTelemetry bool) func(*testing.B) {
	return func(b *testing.B) {
		origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer origin.Close()

		newNode := func(id string, tel *obs.Telemetry) *netnode.Node {
			store, err := cache.New(cache.Config{Capacity: 32 << 20, ExpirationHorizon: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			n, err := netnode.New(netnode.Config{
				ID:         id,
				ICPAddr:    "127.0.0.1:0",
				HTTPAddr:   "127.0.0.1:0",
				Store:      store,
				Scheme:     core.EA{},
				OriginAddr: origin.Addr(),
				ICPTimeout: 500 * time.Millisecond,
				Obs:        tel,
			})
			if err != nil {
				b.Fatal(err)
			}
			return n
		}
		var tel *obs.Telemetry
		if withTelemetry {
			tel = obs.New("bench", 256)
			tel.SetTraceSampling(obs.DefaultTraceSampling)
		}
		requester := newNode("bench-req", tel)
		defer requester.Close()
		peer := newNode("bench-peer", nil)
		defer peer.Close()
		requester.SetPeers([]netnode.Peer{{ICP: peer.ICPAddr(), HTTP: peer.HTTPAddr()}})
		peer.SetPeers([]netnode.Peer{{ICP: requester.ICPAddr(), HTTP: requester.HTTPAddr()}})

		// Working set: 512 documents. The first 256 warm the requester
		// (local hits), the next 128 warm only the peer (remote hits on
		// every lap), and the last 128 stay cold so the first lap pays
		// origin fetches that later laps serve locally.
		const docSize = 2048
		urls := make([]string, 512)
		for i := range urls {
			urls[i] = "http://bench.example.edu/doc" + strconv.Itoa(i)
		}
		for _, u := range urls[:256] {
			if _, err := requester.Request(u, docSize); err != nil {
				b.Fatal(err)
			}
		}
		for _, u := range urls[256:384] {
			if _, err := peer.Request(u, docSize); err != nil {
				b.Fatal(err)
			}
		}

		var counters metrics.Counters
		b.ReportAllocs()
		b.ResetTimer()
		cpuStart, cpuOK := cpuTimeNS()
		for i := 0; i < b.N; i++ {
			res, err := requester.Request(urls[i%len(urls)], docSize)
			if err != nil {
				b.Fatal(err)
			}
			counters.Record(res.Outcome, res.Size)
		}
		cpuEnd, _ := cpuTimeNS()
		b.StopTimer()
		snap := counters.Snapshot()
		b.ReportMetric(snap.HitRate(), "hitrate")
		b.ReportMetric(snap.RemoteHitRate(), "remotehitrate")
		if cpuOK && b.N > 0 {
			b.ReportMetric(float64(cpuEnd-cpuStart)/float64(b.N), "cpu_ns/op")
		}
	}
}

// NodeRequestParallel is the concurrent counterpart of NodeRequest: the
// same two-node live-socket workload, but the requester runs on the
// sharded store and b.RunParallel drives it from many goroutines at once
// (parallelism multiplies GOMAXPROCS; 0 keeps the default). Workers share
// one atomic lap counter so the URL mix — local hits, recurring remote
// hits, first-lap origin fetches — matches the single-threaded benchmark.
// The reported gomaxprocs metric records how many cores the run actually
// had: parallel speedup over NodeRequest is only expected when it is > 1.
func NodeRequestParallel(shards, parallelism int) func(*testing.B) {
	return func(b *testing.B) {
		origin, err := netnode.NewOriginServer("127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer origin.Close()

		store, err := cache.NewSharded(cache.ShardedConfig{
			Shards:            shards,
			Capacity:          32 << 20,
			ExpirationHorizon: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		requester, err := netnode.New(netnode.Config{
			ID:         "bench-req",
			ICPAddr:    "127.0.0.1:0",
			HTTPAddr:   "127.0.0.1:0",
			Store:      store,
			Scheme:     core.EA{},
			OriginAddr: origin.Addr(),
			ICPTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer requester.Close()
		peerStore, err := cache.New(cache.Config{Capacity: 32 << 20, ExpirationHorizon: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		peer, err := netnode.New(netnode.Config{
			ID:         "bench-peer",
			ICPAddr:    "127.0.0.1:0",
			HTTPAddr:   "127.0.0.1:0",
			Store:      peerStore,
			Scheme:     core.EA{},
			OriginAddr: origin.Addr(),
			ICPTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer peer.Close()
		requester.SetPeers([]netnode.Peer{{ICP: peer.ICPAddr(), HTTP: peer.HTTPAddr()}})
		peer.SetPeers([]netnode.Peer{{ICP: requester.ICPAddr(), HTTP: requester.HTTPAddr()}})

		const docSize = 2048
		urls := make([]string, 512)
		for i := range urls {
			urls[i] = "http://bench.example.edu/doc" + strconv.Itoa(i)
		}
		for _, u := range urls[:256] {
			if _, err := requester.Request(u, docSize); err != nil {
				b.Fatal(err)
			}
		}
		for _, u := range urls[256:384] {
			if _, err := peer.Request(u, docSize); err != nil {
				b.Fatal(err)
			}
		}

		var (
			counters metrics.Counters
			lap      atomic.Uint64
		)
		if parallelism > 0 {
			b.SetParallelism(parallelism)
		}
		b.ReportAllocs()
		b.ResetTimer()
		cpuStart, cpuOK := cpuTimeNS()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := lap.Add(1) - 1
				res, err := requester.Request(urls[i%uint64(len(urls))], docSize)
				if err != nil {
					// b.Fatal must not be called off the main goroutine.
					b.Error(err)
					return
				}
				counters.Record(res.Outcome, res.Size)
			}
		})
		cpuEnd, _ := cpuTimeNS()
		b.StopTimer()
		snap := counters.Snapshot()
		b.ReportMetric(snap.HitRate(), "hitrate")
		b.ReportMetric(snap.RemoteHitRate(), "remotehitrate")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		if cpuOK && b.N > 0 {
			b.ReportMetric(float64(cpuEnd-cpuStart)/float64(b.N), "cpu_ns/op")
		}
	}
}
