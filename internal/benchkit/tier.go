package benchkit

import (
	"bytes"
	"io"
	"strconv"
	"testing"
	"time"

	"eacache/internal/blob"
	"eacache/internal/cache"
)

// patternBody fills a demoted document's blob with bytes derived from its
// URL, so every URL produces distinct content and the disk benchmarks pay
// real (non-deduplicated) writes.
func patternBody(doc cache.Document) io.Reader {
	p := make([]byte, doc.Size)
	for i := range p {
		p[i] = doc.URL[i%len(doc.URL)]
	}
	return bytes.NewReader(p)
}

// newTiered builds a sharded memory store of memCap bytes over a blob
// tier of diskCap bytes in a fresh per-run directory, demoting every
// victim (the benchmarks measure tier mechanics, not the admission rule).
func newTiered(b *testing.B, memCap, diskCap int64) *cache.TieredStore {
	b.Helper()
	mem, err := cache.NewSharded(cache.ShardedConfig{
		// One shard: capacity splits per shard, and these benchmarks use
		// memory tiers only a few documents deep.
		Shards:            1,
		Capacity:          memCap,
		ExpirationHorizon: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	bs, err := blob.Open(blob.Config{
		Dir:               b.TempDir(),
		Capacity:          diskCap,
		ExpirationHorizon: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	tiered, err := cache.NewTiered(cache.TieredConfig{
		Memory: mem,
		Disk:   bs,
		Demote: cache.DemoteAlways,
		Body:   patternBody,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = tiered.CloseDisk() })
	return tiered
}

// TierDemote measures the demotion path: every Put of a fresh document
// into a full memory tier evicts one victim, whose checksummed body is
// written to the blob tier and journaled in its index. One demotion per
// op in steady state.
func TierDemote() func(*testing.B) {
	return func(b *testing.B) {
		const docSize = 1024
		tiered := newTiered(b, 64*docSize, 1<<31)
		now := time.Now()
		put := func(i int) {
			doc := cache.Document{
				URL:     "http://tier.bench.edu/demote" + strconv.Itoa(i),
				Size:    docSize,
				Expires: now.Add(time.Hour),
			}
			if _, err := tiered.Put(doc, now); err != nil {
				b.Fatal(err)
			}
			now = now.Add(time.Millisecond)
		}
		for i := 0; i < 64; i++ {
			put(-i - 1) // warm the memory tier so every timed Put evicts
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			put(i)
		}
		b.StopTimer()
		c := tiered.TierCounters()
		if c.Demotions < int64(b.N) {
			b.Fatalf("only %d demotions in %d ops", c.Demotions, b.N)
		}
		b.ReportMetric(float64(c.Demotions)/float64(b.N), "demotions/op")
	}
}

// TierPromote measures the promotion path: a Get of a disk-resident
// document re-reads the blob through its verifying (checksumming) reader,
// re-enters it into memory, and demotes the memory victim it displaces —
// one promote + one demote per op in steady state.
func TierPromote() func(*testing.B) {
	return func(b *testing.B) {
		const docSize, docs = 1024, 256
		tiered := newTiered(b, 4*docSize, 1<<31)
		now := time.Now()
		urls := make([]string, docs)
		for i := range urls {
			urls[i] = "http://tier.bench.edu/promote" + strconv.Itoa(i)
			doc := cache.Document{URL: urls[i], Size: docSize, Expires: now.Add(time.Hour)}
			if _, err := tiered.Put(doc, now); err != nil {
				b.Fatal(err)
			}
			now = now.Add(time.Millisecond)
		}
		if tiered.DiskLen() == 0 {
			b.Fatal("warmup demoted nothing")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The working set is far larger than the memory tier, so each
			// Get promotes from disk (and the displaced victim demotes).
			if _, ok := tiered.Get(urls[i%docs], now); !ok {
				b.Fatalf("lost %s", urls[i%docs])
			}
			now = now.Add(time.Millisecond)
		}
		b.StopTimer()
		c := tiered.TierCounters()
		if c.ChecksumFailures != 0 {
			b.Fatalf("%d checksum failures", c.ChecksumFailures)
		}
		if c.Promotions == 0 {
			b.Fatal("no promotions recorded")
		}
		b.ReportMetric(float64(c.Promotions)/float64(b.N), "promotions/op")
	}
}

// MemoryHit measures the pure memory-hit path, either directly on the
// sharded store or through a TieredStore with no disk tier configured.
// The two must cost identical bytes and allocations per op: the tier
// facade's pass-through is the guarantee that adding the disk-tier layer
// left the hot path untouched (benchjson -check-tier enforces it).
func MemoryHit(passthrough bool) func(*testing.B) {
	return func(b *testing.B) {
		const docs = 1024
		mem, err := cache.NewSharded(cache.ShardedConfig{
			Capacity:          docs * 2048,
			ExpirationHorizon: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		now := time.Now()
		urls := make([]string, docs)
		for i := range urls {
			urls[i] = "http://tier.bench.edu/hit" + strconv.Itoa(i)
			doc := cache.Document{URL: urls[i], Size: 1024, Expires: now.Add(time.Hour)}
			if _, err := mem.Put(doc, now); err != nil {
				b.Fatal(err)
			}
		}
		get := mem.Get
		if passthrough {
			tiered, err := cache.NewTiered(cache.TieredConfig{Memory: mem})
			if err != nil {
				b.Fatal(err)
			}
			get = tiered.Get
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := get(urls[i%docs], now); !ok {
				b.Fatal("miss on a warm store")
			}
		}
	}
}
