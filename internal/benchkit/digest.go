package benchkit

import (
	"strconv"
	"testing"

	"eacache/internal/digest"
)

// digestPool builds a URL ring twice the resident-set size; the
// maintenance benchmarks slide an n-wide resident window around it so
// every operation is one steady-state churn step (evict the oldest,
// admit one new) at constant occupancy.
func digestPool(n int) []string {
	pool := make([]string, 2*n)
	for i := range pool {
		pool[i] = "http://digest.example.edu/doc" + strconv.Itoa(i)
	}
	return pool
}

// DigestMaintenance returns the benchmark body for keeping the
// advertised digest current under cache churn. One op is one mutation
// pair (admit + evict at constant occupancy of `resident` documents).
//
// incremental=true is the counting-filter path this repo ships: O(k)
// counter updates per mutation, no scans. incremental=false is the
// Summary-Cache delayed-rebuild baseline it replaced: mutations are
// free until the staleness threshold, then a full O(n) scan rebuilds
// the filter — the cost the incremental path takes off the digest path.
func DigestMaintenance(incremental bool, resident int) func(*testing.B) {
	return func(b *testing.B) {
		pool := digestPool(resident)
		b.ReportAllocs()
		if incremental {
			s, err := digest.NewIncremental(resident, 0.01, 0)
			if err != nil {
				b.Fatal(err)
			}
			s.Seed(pool[:resident])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(pool[(i+resident)%len(pool)])
				s.Remove(pool[i%len(pool)])
				if s.NeedsRebuild() {
					// Counter-saturation escape hatch; steady state must
					// not take it (asserted below).
					live := make([]string, resident)
					for j := 0; j < resident; j++ {
						live[j] = pool[(i+1+j)%len(pool)]
					}
					s.Rebuild(live)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(s.Rebuilds()), "rebuilds")
			if s.Rebuilds() > 0 {
				b.Errorf("incremental maintenance took %d rebuild escapes over %d mutations",
					s.Rebuilds(), 2*b.N)
			}
			return
		}

		// Baseline: rebuild after 1% of the resident set churns — the
		// low end of Summary Cache's recommended delayed-update window,
		// i.e. the cheapest defensible rebuild cadence.
		rebuildEvery := int64(max(resident/100, 1))
		s, err := digest.NewSummary(resident, 0.01, rebuildEvery)
		if err != nil {
			b.Fatal(err)
		}
		liveAt := func(i int) []string {
			live := make([]string, resident)
			for j := 0; j < resident; j++ {
				live[j] = pool[(i+j)%len(pool)]
			}
			return live
		}
		s.Rebuild(liveAt(0), 0)
		var mutations int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mutations += 2 // admit + evict
			if s.Stale(mutations) {
				s.Rebuild(liveAt(i+1), mutations)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(s.Rebuilds()), "rebuilds")
	}
}

// DigestSync returns the benchmark body for the wire cost of one peer
// refresh. One op is a refresh cycle: `churn` mutation pairs on the
// server's digest, then encoding the delta a peer at the previous
// generation would receive. The delta_full_byte_ratio metric is the
// headline: delta bytes as a fraction of the full-filter transfer the
// delta replaces (acceptance target < 0.10).
func DigestSync(resident, churn int) func(*testing.B) {
	return func(b *testing.B) {
		pool := digestPool(resident)
		s, err := digest.NewIncremental(resident, 0.01, 0)
		if err != nil {
			b.Fatal(err)
		}
		s.Seed(pool[:resident])
		full, err := digest.EncodeFull(s.Filter(), s.Generation())
		if err != nil {
			b.Fatal(err)
		}
		var deltaBytes, transfers int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			since := s.Generation()
			for c := 0; c < churn; c++ {
				step := i*churn + c
				s.Add(pool[(step+resident)%len(pool)])
				s.Remove(pool[step%len(pool)])
			}
			d, ok := s.Delta(since)
			if !ok {
				b.Fatalf("delta window exhausted at churn %d", churn)
			}
			wire, err := d.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			deltaBytes += int64(len(wire))
			transfers++
		}
		b.StopTimer()
		b.ReportMetric(float64(deltaBytes)/float64(transfers), "delta_bytes/op")
		b.ReportMetric(float64(len(full)), "full_bytes")
		b.ReportMetric(float64(deltaBytes)/(float64(transfers)*float64(len(full))),
			"delta_full_byte_ratio")
	}
}
