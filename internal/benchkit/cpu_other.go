//go:build !unix

package benchkit

// cpuTimeNS is unavailable here; callers fall back to wall-clock time.
func cpuTimeNS() (int64, bool) { return 0, false }
