//go:build unix

package benchkit

import "syscall"

// cpuTimeNS returns the process's cumulative user+system CPU time in
// nanoseconds. Wall-clock per-op numbers on a loaded single-CPU host
// carry microseconds of scheduler noise per socket round trip; CPU time
// is stable, so the telemetry-overhead comparison is based on it.
func cpuTimeNS() (int64, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	user := int64(ru.Utime.Sec)*1e9 + int64(ru.Utime.Usec)*1e3
	sys := int64(ru.Stime.Sec)*1e9 + int64(ru.Stime.Usec)*1e3
	return user + sys, true
}
