// Package chash implements consistent hashing over cache nodes (Karger et
// al., "Web Caching with Consistent Hashing", WWW8), one of the
// ICP-alternative designs the paper's related-work section cites. It powers
// the hash-partitioned placement baseline: every URL has exactly one home
// cache, so the group holds at most one copy of anything — the opposite
// extreme from ad-hoc replication, with the EA scheme in between.
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. It is immutable after
// construction except through Add/Remove; lookups are O(log n).
type Ring struct {
	replicas int
	points   []point
	nodes    map[string]struct{}
}

type point struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count per real node, enough to keep
// the load spread within a few percent for small groups.
const DefaultReplicas = 128

// New builds a ring with the given virtual-node count per node (0 selects
// DefaultReplicas).
func New(replicas int, nodes ...string) (*Ring, error) {
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	if replicas < 1 {
		return nil, fmt.Errorf("chash: replicas must be positive, got %d", replicas)
	}
	r := &Ring{
		replicas: replicas,
		nodes:    make(map[string]struct{}, len(nodes)),
	}
	for _, n := range nodes {
		if err := r.Add(n); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add inserts a node and its virtual points.
func (r *Ring) Add(node string) error {
	if node == "" {
		return fmt.Errorf("chash: empty node name")
	}
	if _, ok := r.nodes[node]; ok {
		return fmt.Errorf("chash: node %q already present", node)
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{
			hash: hash64(fmt.Sprintf("%s#%d", node, i)),
			node: node,
		})
	}
	r.sortPoints()
	return nil
}

// Remove deletes a node and its virtual points.
func (r *Ring) Remove(node string) error {
	if _, ok := r.nodes[node]; !ok {
		return fmt.Errorf("chash: node %q not present", node)
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Len returns the number of real nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Members returns the real node names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether node is a member of the ring.
func (r *Ring) Contains(node string) bool {
	_, ok := r.nodes[node]
	return ok
}

// Fingerprint hashes the sorted member set: two rings fingerprint equal
// iff they route over the same members. Elastic membership piggybacks it
// on resolve requests so a responder can tell a requester that failed
// over around dead owners (same membership view — act as home) from one
// that simply has not learned the current membership yet (keeping a copy
// for it would duplicate the real owner's).
func (r *Ring) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, n := range r.Members() {
		_, _ = h.Write([]byte(n))
		_, _ = h.Write([]byte{0})
	}
	return mix64(h.Sum64())
}

// OwnerChange records one key whose primary owner differs between two
// rings — the unit of work a rebalance must move.
type OwnerChange struct {
	Key  string
	From string // owner under the old ring ("" when it was empty)
	To   string // owner under the new ring ("" when it is empty)
}

// OwnerChanges returns, for the given keys, every ownership transfer
// implied by moving from the old ring to the new one, in input order.
// Keys whose owner is unchanged are omitted. Consistent hashing promises
// the returned set is small: adding or removing one of N nodes moves only
// ~1/N of the key space, and never reassigns a key between two surviving
// nodes — the property the rebalance tests pin down.
func OwnerChanges(old, new *Ring, keys []string) []OwnerChange {
	var out []OwnerChange
	for _, k := range keys {
		from, to := old.Owner(k), new.Owner(k)
		if from != to {
			out = append(out, OwnerChange{Key: k, From: from, To: to})
		}
	}
	return out
}

// Owner returns the node responsible for key ("" when the ring is empty).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owners returns the first n distinct nodes clockwise from key, a
// replication chain for schemes that want backups.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a SplitMix64-style finalizer: FNV alone distributes short,
// similar strings (node names with numeric suffixes) poorly around the
// ring, which skews the load spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
