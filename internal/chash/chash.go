// Package chash implements consistent hashing over cache nodes (Karger et
// al., "Web Caching with Consistent Hashing", WWW8), one of the
// ICP-alternative designs the paper's related-work section cites. It powers
// the hash-partitioned placement baseline: every URL has exactly one home
// cache, so the group holds at most one copy of anything — the opposite
// extreme from ad-hoc replication, with the EA scheme in between.
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. It is immutable after
// construction except through Add/Remove; lookups are O(log n).
type Ring struct {
	replicas int
	points   []point
	nodes    map[string]struct{}
}

type point struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count per real node, enough to keep
// the load spread within a few percent for small groups.
const DefaultReplicas = 128

// New builds a ring with the given virtual-node count per node (0 selects
// DefaultReplicas).
func New(replicas int, nodes ...string) (*Ring, error) {
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	if replicas < 1 {
		return nil, fmt.Errorf("chash: replicas must be positive, got %d", replicas)
	}
	r := &Ring{
		replicas: replicas,
		nodes:    make(map[string]struct{}, len(nodes)),
	}
	for _, n := range nodes {
		if err := r.Add(n); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add inserts a node and its virtual points.
func (r *Ring) Add(node string) error {
	if node == "" {
		return fmt.Errorf("chash: empty node name")
	}
	if _, ok := r.nodes[node]; ok {
		return fmt.Errorf("chash: node %q already present", node)
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{
			hash: hash64(fmt.Sprintf("%s#%d", node, i)),
			node: node,
		})
	}
	r.sortPoints()
	return nil
}

// Remove deletes a node and its virtual points.
func (r *Ring) Remove(node string) error {
	if _, ok := r.nodes[node]; !ok {
		return fmt.Errorf("chash: node %q not present", node)
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Len returns the number of real nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node responsible for key ("" when the ring is empty).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owners returns the first n distinct nodes clockwise from key, a
// replication chain for schemes that want backups.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a SplitMix64-style finalizer: FNV alone distributes short,
// similar strings (node names with numeric suffixes) poorly around the
// ring, which skews the load spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
