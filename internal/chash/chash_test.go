package chash

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, "a"); err == nil {
		t.Fatal("negative replicas accepted")
	}
	if _, err := New(0, "a", "a"); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := New(0, ""); err == nil {
		t.Fatal("empty node name accepted")
	}
}

func TestOwnerStable(t *testing.T) {
	r, err := New(0, "cache-0", "cache-1", "cache-2", "cache-3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("http://x/doc%d", i)
		first := r.Owner(key)
		if first == "" {
			t.Fatal("empty owner")
		}
		for j := 0; j < 3; j++ {
			if r.Owner(key) != first {
				t.Fatalf("owner of %q unstable", key)
			}
		}
	}
}

func TestOwnerEmptyRing(t *testing.T) {
	r, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner("x") != "" {
		t.Fatal("empty ring returned an owner")
	}
	if r.Owners("x", 2) != nil {
		t.Fatal("empty ring returned owners")
	}
}

func TestLoadSpread(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := New(0, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 40000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("http://origin%03d/doc%d", i%311, i))]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < want/2 || counts[n] > want*2 {
			t.Fatalf("node %s owns %d keys, want roughly %d", n, counts[n], want)
		}
	}
}

func TestRemoveMinimalDisruption(t *testing.T) {
	r, err := New(0, "a", "b", "c", "d")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 5000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("doc-%d", i)
		before[k] = r.Owner(k)
	}
	if err := r.Remove("d"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k, owner := range before {
		now := r.Owner(k)
		if owner == "d" {
			if now == "d" {
				t.Fatal("removed node still owns keys")
			}
			continue
		}
		if now != owner {
			moved++
		}
	}
	// Consistent hashing: keys not owned by the removed node stay put.
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving nodes", moved)
	}
	if err := r.Remove("d"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestOwnersDistinctChain(t *testing.T) {
	r, err := New(0, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	owners := r.Owners("key", 3)
	if len(owners) != 3 {
		t.Fatalf("owners = %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner in chain: %v", owners)
		}
		seen[o] = true
	}
	if owners[0] != r.Owner("key") {
		t.Fatal("first owner differs from Owner()")
	}
	// Request for more owners than nodes is capped.
	if got := r.Owners("key", 10); len(got) != 3 {
		t.Fatalf("Owners(_, 10) = %v", got)
	}
}

func TestAddExtendsRing(t *testing.T) {
	r, err := New(0, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add("c"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	counts := map[string]int{}
	for i := 0; i < 9000; i++ {
		counts[r.Owner(fmt.Sprintf("k%d", i))]++
	}
	if counts["c"] == 0 {
		t.Fatal("new node owns nothing")
	}
}

func TestQuickOwnerAlwaysAMember(t *testing.T) {
	r, err := New(32, "n0", "n1", "n2", "n3", "n4")
	if err != nil {
		t.Fatal(err)
	}
	members := map[string]bool{"n0": true, "n1": true, "n2": true, "n3": true, "n4": true}
	f := func(key string) bool {
		return members[r.Owner(key)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
