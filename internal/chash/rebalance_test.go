package chash

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests for the rebalance guarantees elastic membership leans
// on: adding or removing one of N nodes moves ~1/N of the key space and
// never reassigns a key between two surviving nodes, and the membership
// fingerprint identifies the member set exactly.

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://origin%03d/path/doc-%d", i%97, i)
	}
	return keys
}

func ringOf(t *testing.T, nodes ...string) *Ring {
	t.Helper()
	r, err := New(0, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRebalanceDeltaOnJoin pins the join property across group sizes:
// the new node takes ~1/(N+1) of the keys, and every key it does not
// take keeps its old owner.
func TestRebalanceDeltaOnJoin(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{2, 4, 8, 16} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("cache-%d", i)
		}
		old := ringOf(t, nodes...)
		grown := ringOf(t, append(append([]string(nil), nodes...), "joiner")...)

		moved := 0
		for _, k := range keys {
			from, to := old.Owner(k), grown.Owner(k)
			if from == to {
				continue
			}
			moved++
			if to != "joiner" {
				t.Fatalf("N=%d: key %q moved %s -> %s, neither the joiner", n, k, from, to)
			}
		}
		want := len(keys) / (n + 1)
		if moved < want/2 || moved > want*2 {
			t.Fatalf("N=%d: join moved %d of %d keys, want ~%d", n, moved, len(keys), want)
		}
	}
}

// TestRebalanceDeltaOnLeave is the converse: a leaving node's keys are
// the ONLY ones that move, and they spread across the survivors.
func TestRebalanceDeltaOnLeave(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{3, 5, 9} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("cache-%d", i)
		}
		old := ringOf(t, nodes...)
		gone := nodes[n/2]
		shrunk := ringOf(t, nodes...)
		if err := shrunk.Remove(gone); err != nil {
			t.Fatal(err)
		}

		moved, inherited := 0, map[string]int{}
		for _, k := range keys {
			from, to := old.Owner(k), shrunk.Owner(k)
			if from != gone && to != from {
				t.Fatalf("N=%d: survivor-owned key %q moved %s -> %s", n, k, from, to)
			}
			if from == gone {
				moved++
				inherited[to]++
			}
		}
		want := len(keys) / n
		if moved < want/2 || moved > want*2 {
			t.Fatalf("N=%d: leave moved %d of %d keys, want ~%d", n, moved, len(keys), want)
		}
		if len(inherited) < 2 {
			t.Fatalf("N=%d: departed share fell to a single survivor: %v", n, inherited)
		}
	}
}

// TestRebalancePreservesSurvivorOrder checks the chain property the
// hash locator's failover depends on: removing a node never reorders
// the remaining owners of any key — the survivors appear in the new
// chain in exactly their old relative order, so a requester and a
// responder that disagree only about the dead node still walk the same
// failover sequence.
func TestRebalancePreservesSurvivorOrder(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e", "f"}
	full := ringOf(t, nodes...)
	for _, gone := range nodes {
		shrunk := ringOf(t, nodes...)
		if err := shrunk.Remove(gone); err != nil {
			t.Fatal(err)
		}
		for _, k := range testKeys(2000) {
			before := full.Owners(k, len(nodes))
			after := shrunk.Owners(k, len(nodes)-1)
			// Strip the departed node from the old chain; what is left
			// must equal the new chain verbatim.
			survivors := make([]string, 0, len(before)-1)
			for _, o := range before {
				if o != gone {
					survivors = append(survivors, o)
				}
			}
			if len(survivors) != len(after) {
				t.Fatalf("remove %s: chain length %d vs %d for %q", gone, len(after), len(survivors), k)
			}
			for i := range survivors {
				if survivors[i] != after[i] {
					t.Fatalf("remove %s: chain for %q reordered: %v -> %v", gone, k, before, after)
				}
			}
		}
	}
}

// TestOwnerChangesMatchesOwners cross-checks the OwnerChanges report
// against direct Owner lookups under random membership changes.
func TestOwnerChangesMatchesOwners(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := testKeys(3000)
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d-%d", trial, i)
		}
		old := ringOf(t, nodes...)
		mutated := ringOf(t, nodes...)
		if rng.Intn(2) == 0 {
			if err := mutated.Add(fmt.Sprintf("node-%d-new", trial)); err != nil {
				t.Fatal(err)
			}
		} else if err := mutated.Remove(nodes[rng.Intn(n)]); err != nil {
			t.Fatal(err)
		}

		changes := OwnerChanges(old, mutated, keys)
		byKey := make(map[string]OwnerChange, len(changes))
		for _, c := range changes {
			byKey[c.Key] = c
		}
		for _, k := range keys {
			from, to := old.Owner(k), mutated.Owner(k)
			c, reported := byKey[k]
			if (from != to) != reported {
				t.Fatalf("trial %d: key %q: moved=%v reported=%v", trial, k, from != to, reported)
			}
			if reported && (c.From != from || c.To != to) {
				t.Fatalf("trial %d: key %q: change %+v, want %s -> %s", trial, k, c, from, to)
			}
		}
	}
}

// TestFingerprintIdentifiesMemberSet: equal member sets fingerprint
// equal regardless of insertion order; any membership difference —
// including concatenation-ambiguous names — changes the fingerprint.
func TestFingerprintIdentifiesMemberSet(t *testing.T) {
	a := ringOf(t, "n1", "n2", "n3")
	b := ringOf(t, "n3", "n1", "n2")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same member set, different fingerprints")
	}
	distinct := []*Ring{
		a,
		ringOf(t, "n1", "n2"),
		ringOf(t, "n1", "n2", "n3", "n4"),
		ringOf(t, "n1", "n2", "n4"),
		ringOf(t, "n1n2", "n3"), // must not collide with {"n1","n2","n3"}
		ringOf(t),
	}
	seen := map[uint64]int{}
	for i, r := range distinct {
		fp := r.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Fatalf("rings %d and %d share fingerprint %x", i, j, fp)
		}
		seen[fp] = i
	}
}

// TestFingerprintTracksMutation: Add/Remove change the fingerprint and
// removing what was added restores it.
func TestFingerprintTracksMutation(t *testing.T) {
	r := ringOf(t, "a", "b", "c")
	orig := r.Fingerprint()
	if err := r.Add("d"); err != nil {
		t.Fatal(err)
	}
	grown := r.Fingerprint()
	if grown == orig {
		t.Fatal("Add did not change the fingerprint")
	}
	if err := r.Remove("d"); err != nil {
		t.Fatal(err)
	}
	if r.Fingerprint() != orig {
		t.Fatal("round-trip Add/Remove did not restore the fingerprint")
	}
}

// TestQuickJoinMovesOnlyToJoiner is the join delta property under
// randomized keys: any key whose owner changes moves TO the joiner.
func TestQuickJoinMovesOnlyToJoiner(t *testing.T) {
	old := ringOf(t, "n0", "n1", "n2", "n3")
	grown := ringOf(t, "n0", "n1", "n2", "n3", "n4")
	f := func(key string) bool {
		from, to := old.Owner(key), grown.Owner(key)
		return from == to || to == "n4"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
