package chash_test

import (
	"fmt"

	"eacache/internal/chash"
)

// Every URL has exactly one home cache; removing a node only moves the
// keys that node owned.
func ExampleRing() {
	ring, err := chash.New(0, "cache-0", "cache-1", "cache-2", "cache-3")
	if err != nil {
		fmt.Println(err)
		return
	}
	url := "http://cs-www.example.edu/index.html"
	home := ring.Owner(url)

	// The owner is stable...
	fmt.Println("stable:", ring.Owner(url) == home)

	// ...and removing an unrelated node does not move this key.
	for _, node := range []string{"cache-0", "cache-1", "cache-2", "cache-3"} {
		if node == home {
			continue
		}
		if err := ring.Remove(node); err != nil {
			fmt.Println(err)
			return
		}
		break
	}
	fmt.Println("unmoved:", ring.Owner(url) == home)

	// Output:
	// stable: true
	// unmoved: true
}
