package digest

import "fmt"

// DefaultDeltaWindow is how many mutations the per-generation change log
// retains when the caller does not choose: a peer whose replica is at
// most this many generations behind receives a compact delta instead of
// the full filter.
const DefaultDeltaWindow = 4096

// Incremental is the event-driven replacement for Summary's delayed
// full rebuilds: a counting Bloom filter updated in O(k) per cache
// mutation, its live bit projection (what peers consult), a generation
// number that advances once per mutation, and a bounded change log of
// the projection bits each generation flipped. Peers that refresh with
// a generation inside the log window receive just the flipped bits
// (Delta); everyone else falls back to a full filter transfer.
//
// Generation 0 means "never built". Seed performs the initial build
// (generation 1); Rebuild is the counter-saturation escape hatch and is
// counted separately because steady state must never take it.
//
// Incremental is not safe for concurrent use; callers serialise access
// (the live node under its digest mutex, the simulator by being
// single-threaded). The *Filter returned by Filter() is the live
// projection and shares that locking discipline.
type Incremental struct {
	counts *Counting
	filter *Filter // live bit projection of counts
	gen    uint64
	window int

	// log is a ring of the last min(window, gen-genFloor) generations'
	// bit flips; entry i describes generation floor+i+1 where floor =
	// gen - len(ring entries in use).
	log      []flipRec
	logStart int
	logLen   int

	rebuilds int64
	scratch  []uint32
}

// flipRec records the projection bits one generation flipped: an Add
// generation only sets, a Remove generation only clears.
type flipRec struct {
	set   []uint32
	clear []uint32
}

// NewIncremental sizes the summary like NewFilter/NewCounting and
// retains a change log of window generations. window 0 selects
// DefaultDeltaWindow; negative windows are rejected (a caller that wants
// full transfers only passes 1 — the log always covers at least the
// empty delta).
func NewIncremental(expected int, fpRate float64, window int) (*Incremental, error) {
	if window < 0 {
		return nil, fmt.Errorf("digest: delta window must be >= 0, got %d", window)
	}
	if window == 0 {
		window = DefaultDeltaWindow
	}
	c, err := NewCounting(expected, fpRate)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		counts: c,
		filter: &Filter{bits: make([]uint64, (c.m+63)/64), m: c.m, k: c.k},
		window: window,
		log:    make([]flipRec, window),
	}, nil
}

// Seed performs the initial build from the current URL set (typically
// after crash recovery, before the event sink starts feeding mutations)
// and publishes generation 1. It must be called exactly once, before any
// Add/Remove.
func (s *Incremental) Seed(urls []string) {
	s.rebuild(urls)
}

// Add counts url in, updates the projection, and advances a generation.
func (s *Incremental) Add(url string) {
	s.scratch = s.counts.Add(url, s.scratch[:0])
	for _, pos := range s.scratch {
		s.filter.set(uint64(pos))
	}
	s.filter.n = s.counts.n
	s.push(flipRec{set: copyFlips(s.scratch)})
}

// Remove counts url out, updates the projection, and advances a
// generation.
func (s *Incremental) Remove(url string) {
	s.scratch = s.counts.Remove(url, s.scratch[:0])
	for _, pos := range s.scratch {
		s.filter.clear(uint64(pos))
	}
	s.filter.n = s.counts.n
	s.push(flipRec{clear: copyFlips(s.scratch)})
}

// MayContain consults the advertised projection. Before Seed nothing is
// advertised.
func (s *Incremental) MayContain(url string) bool {
	if s.gen == 0 {
		return false
	}
	return s.counts.MayContain(url)
}

// Generation returns the current generation (0 before Seed).
func (s *Incremental) Generation() uint64 { return s.gen }

// Len returns the number of keys currently counted.
func (s *Incremental) Len() int { return s.counts.Len() }

// Window returns the change-log depth in generations.
func (s *Incremental) Window() int { return s.window }

// Filter returns the live bit projection (shared, caller-synchronised).
func (s *Incremental) Filter() *Filter { return s.filter }

// NeedsRebuild reports whether the counting filter has degraded past
// the saturation escape hatch (see Counting.NeedsRebuild).
func (s *Incremental) NeedsRebuild() bool { return s.counts.NeedsRebuild() }

// Rebuild is the escape hatch: a from-scratch rebuild over the true URL
// set, replacing counters, projection, and change log (peers must take a
// full transfer next refresh). Steady state never calls this; each call
// is counted.
func (s *Incremental) Rebuild(urls []string) {
	s.rebuild(urls)
	s.rebuilds++
}

// Rebuilds returns how many escape-hatch rebuilds have happened.
func (s *Incremental) Rebuilds() int64 { return s.rebuilds }

// Pinned exposes the saturated-counter count for inspection.
func (s *Incremental) Pinned() int { return s.counts.Pinned() }

// Delta returns the compact update that brings a replica at generation
// since up to the current generation, or ok=false when the change log no
// longer covers that span (or since is from a different lineage, i.e.
// ahead of us) and a full transfer is needed.
func (s *Incremental) Delta(since uint64) (*Delta, bool) {
	if s.gen == 0 || since > s.gen || since == 0 {
		return nil, false
	}
	span := s.gen - since
	if span > uint64(s.logLen) {
		return nil, false
	}
	// Fold the flips of generations since+1..gen; the last flip of a bit
	// decides its final state (intermediate transitions are invisible to
	// the replica).
	final := make(map[uint32]bool)
	base := s.logLen - int(span)
	for i := base; i < s.logLen; i++ {
		rec := s.log[(s.logStart+i)%len(s.log)]
		for _, pos := range rec.set {
			final[pos] = true
		}
		for _, pos := range rec.clear {
			final[pos] = false
		}
	}
	d := &Delta{From: since, To: s.gen, N: uint64(s.counts.n)}
	for pos, set := range final {
		if set {
			d.Set = append(d.Set, pos)
		} else {
			d.Clear = append(d.Clear, pos)
		}
	}
	d.sort()
	return d, true
}

func (s *Incremental) rebuild(urls []string) {
	s.counts.Reset()
	for _, u := range urls {
		s.counts.Add(u, nil)
	}
	s.filter = s.counts.Project()
	s.gen++
	s.logStart = 0
	s.logLen = 0
}

func (s *Incremental) push(rec flipRec) {
	s.gen++
	if len(s.log) == 0 {
		return
	}
	if s.logLen < len(s.log) {
		s.log[(s.logStart+s.logLen)%len(s.log)] = rec
		s.logLen++
		return
	}
	s.log[s.logStart] = rec
	s.logStart = (s.logStart + 1) % len(s.log)
}

func copyFlips(flips []uint32) []uint32 {
	if len(flips) == 0 {
		return nil
	}
	return append([]uint32(nil), flips...)
}
