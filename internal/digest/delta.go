package digest

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Wire format of a digest sync response (what `eac:digest?since=<gen>`
// returns). Two shapes share a common 8-byte preamble
// (magic | version u8 | reserved u8 | reserved u16):
//
//	full:  "EADF" | ver u8 | 0 u8 | 0 u16 | gen u64 | filter (EADG encoding)
//	delta: "EADD" | ver u8 | 0 u8 | 0 u16 | from u64 | to u64 | n u64 |
//	       nset u32 | nclear u32 | nset*u32 set | nclear*u32 clear
//
// A delta carries the projection bit positions that flipped between the
// replica's generation (from) and the server's (to), plus the element
// count at to so the replica's Len stays honest. Positions are sorted
// ascending, which makes encoding deterministic and lets the decoder
// reject duplicates cheaply.
const (
	syncMagicFull  = "EADF"
	syncMagicDelta = "EADD"
	syncVersion    = 1
	syncPreamble   = 4 + 1 + 1 + 2
	deltaHeader    = syncPreamble + 8 + 8 + 8 + 4 + 4
	// maxDeltaFlips bounds each position list against implausible
	// inputs, mirroring the filter decoder's 1<<24-word cap.
	maxDeltaFlips = 1 << 24
)

// Delta is a compact digest update: apply Set then Clear to a replica at
// generation From and it becomes the server's projection at generation
// To exactly.
type Delta struct {
	From, To uint64
	// N is the server's element count at To.
	N uint64
	// Set and Clear are the projection bits whose final state changed,
	// sorted ascending.
	Set, Clear []uint32
}

// Sync is a decoded digest sync response: exactly one of Full or Delta
// is set.
type Sync struct {
	// Full is a complete filter at generation Gen.
	Full *Filter
	Gen  uint64
	// Delta is an incremental update.
	Delta *Delta
}

// EncodeFull wraps a complete filter and its generation in the sync
// envelope.
func EncodeFull(f *Filter, gen uint64) ([]byte, error) {
	body, err := f.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, syncPreamble+8+len(body))
	copy(out, syncMagicFull)
	out[4] = syncVersion
	binary.BigEndian.PutUint64(out[syncPreamble:], gen)
	copy(out[syncPreamble+8:], body)
	return out, nil
}

// MarshalBinary encodes the delta in the sync envelope.
func (d *Delta) MarshalBinary() ([]byte, error) {
	if len(d.Set) > maxDeltaFlips || len(d.Clear) > maxDeltaFlips {
		return nil, fmt.Errorf("digest: delta too large (%d set, %d clear)", len(d.Set), len(d.Clear))
	}
	out := make([]byte, deltaHeader+4*(len(d.Set)+len(d.Clear)))
	copy(out, syncMagicDelta)
	out[4] = syncVersion
	binary.BigEndian.PutUint64(out[8:], d.From)
	binary.BigEndian.PutUint64(out[16:], d.To)
	binary.BigEndian.PutUint64(out[24:], d.N)
	binary.BigEndian.PutUint32(out[32:], uint32(len(d.Set)))
	binary.BigEndian.PutUint32(out[36:], uint32(len(d.Clear)))
	off := deltaHeader
	for _, pos := range d.Set {
		binary.BigEndian.PutUint32(out[off:], pos)
		off += 4
	}
	for _, pos := range d.Clear {
		binary.BigEndian.PutUint32(out[off:], pos)
		off += 4
	}
	return out, nil
}

// DecodeSync parses a digest sync response body, either shape.
func DecodeSync(data []byte) (*Sync, error) {
	if len(data) < syncPreamble {
		return nil, fmt.Errorf("digest: truncated sync response (%d bytes)", len(data))
	}
	magic := string(data[:4])
	if data[4] != syncVersion {
		return nil, fmt.Errorf("digest: unsupported sync version %d", data[4])
	}
	// The encoding is canonical (decode∘encode is the identity), so the
	// reserved preamble bytes must be zero, not merely ignored.
	if data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("digest: nonzero reserved bytes in sync preamble")
	}
	switch magic {
	case syncMagicFull:
		if len(data) < syncPreamble+8 {
			return nil, fmt.Errorf("digest: truncated full sync (%d bytes)", len(data))
		}
		gen := binary.BigEndian.Uint64(data[syncPreamble:])
		var f Filter
		if err := f.UnmarshalBinary(data[syncPreamble+8:]); err != nil {
			return nil, err
		}
		return &Sync{Full: &f, Gen: gen}, nil
	case syncMagicDelta:
		if len(data) < deltaHeader {
			return nil, fmt.Errorf("digest: truncated delta (%d bytes)", len(data))
		}
		d := &Delta{
			From: binary.BigEndian.Uint64(data[8:]),
			To:   binary.BigEndian.Uint64(data[16:]),
			N:    binary.BigEndian.Uint64(data[24:]),
		}
		nset := binary.BigEndian.Uint32(data[32:])
		nclear := binary.BigEndian.Uint32(data[36:])
		if nset > maxDeltaFlips || nclear > maxDeltaFlips {
			return nil, fmt.Errorf("digest: implausible delta (%d set, %d clear)", nset, nclear)
		}
		if d.From > d.To {
			return nil, fmt.Errorf("digest: delta generations reversed (%d > %d)", d.From, d.To)
		}
		want := deltaHeader + 4*(int(nset)+int(nclear))
		if len(data) != want {
			return nil, fmt.Errorf("digest: delta size mismatch: want %d bytes, got %d", want, len(data))
		}
		d.Set = decodePositions(data[deltaHeader:], int(nset))
		d.Clear = decodePositions(data[deltaHeader+4*int(nset):], int(nclear))
		if !sorted(d.Set) || !sorted(d.Clear) {
			return nil, fmt.Errorf("digest: delta positions not strictly ascending")
		}
		return &Sync{Delta: d}, nil
	default:
		return nil, fmt.Errorf("digest: bad sync magic %q", data[:4])
	}
}

// ApplyDelta flips the delta's bits on the filter and adopts its element
// count. The caller has verified d.From matches the replica's
// generation; position bounds are still checked so a corrupt delta
// cannot write out of range.
func (f *Filter) ApplyDelta(d *Delta) error {
	for _, pos := range d.Set {
		if uint64(pos) >= f.m {
			return fmt.Errorf("digest: delta position %d outside filter of %d bits", pos, f.m)
		}
	}
	for _, pos := range d.Clear {
		if uint64(pos) >= f.m {
			return fmt.Errorf("digest: delta position %d outside filter of %d bits", pos, f.m)
		}
	}
	for _, pos := range d.Set {
		f.set(uint64(pos))
	}
	for _, pos := range d.Clear {
		f.clear(uint64(pos))
	}
	f.n = int(d.N)
	return nil
}

// WireSize returns the encoded size in bytes without encoding.
func (d *Delta) WireSize() int {
	return deltaHeader + 4*(len(d.Set)+len(d.Clear))
}

func (d *Delta) sort() {
	sort.Slice(d.Set, func(i, j int) bool { return d.Set[i] < d.Set[j] })
	sort.Slice(d.Clear, func(i, j int) bool { return d.Clear[i] < d.Clear[j] })
}

func decodePositions(data []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(data[i*4:])
	}
	return out
}

func sorted(ps []uint32) bool {
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			return false
		}
	}
	return true
}
