package digest

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCountingMatchesRebuiltFilter is the tentpole property test: any
// interleaving of adds and removes (removes only of present keys) leaves
// the counting filter's bit projection identical to a plain Filter
// rebuilt from scratch over the surviving key set — the incremental path
// never drifts from what a full rebuild would advertise.
func TestCountingMatchesRebuiltFilter(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := NewCounting(256, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := NewIncremental(256, 0.01, 64)
			if err != nil {
				t.Fatal(err)
			}
			inc.Seed(nil)

			present := make(map[string]bool)
			var order []string // insertion-ordered members for random eviction
			for op := 0; op < 2000; op++ {
				if len(order) == 0 || rng.Intn(100) < 55 {
					url := fmt.Sprintf("http://site-%d/doc/%d", rng.Intn(40), rng.Intn(500))
					if present[url] {
						continue // the cache never double-inserts the same URL
					}
					present[url] = true
					order = append(order, url)
					c.Add(url, nil)
					inc.Add(url)
				} else {
					i := rng.Intn(len(order))
					url := order[i]
					order[i] = order[len(order)-1]
					order = order[:len(order)-1]
					delete(present, url)
					c.Remove(url, nil)
					inc.Remove(url)
				}
			}

			if c.Pinned() != 0 || c.Underflows() != 0 {
				t.Fatalf("degradation under valid discipline: pinned=%d underflows=%d", c.Pinned(), c.Underflows())
			}
			rebuilt, err := NewFilter(256, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			for url := range present {
				rebuilt.Add(url)
			}
			if got := c.Project(); !got.Equal(rebuilt) {
				t.Fatalf("counting projection diverged from rebuilt filter (%d members)", len(present))
			}
			if !inc.Filter().Equal(rebuilt) {
				t.Fatalf("incremental live projection diverged from rebuilt filter")
			}
			// And the query surface agrees: every member is advertised.
			for url := range present {
				if !inc.MayContain(url) {
					t.Fatalf("false negative for member %q", url)
				}
			}
			if inc.Generation() == 0 {
				t.Fatal("generation not advanced")
			}
		})
	}
}

// TestDeltaSyncKeepsReplicaExact drives random mutations and syncs a
// replica filter at random intervals via Delta (falling back to full
// when the window is exceeded); after every sync the replica must be
// bit-identical to the server's projection.
func TestDeltaSyncKeepsReplicaExact(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(100 + seed))
			const window = 32
			inc, err := NewIncremental(128, 0.02, window)
			if err != nil {
				t.Fatal(err)
			}
			inc.Seed([]string{"http://seed/1", "http://seed/2"})

			var replica *Filter
			var replicaGen uint64
			var fulls, deltas int
			sync := func() {
				if replica != nil {
					if d, ok := inc.Delta(replicaGen); ok {
						// Round-trip through the wire format.
						raw, err := d.MarshalBinary()
						if err != nil {
							t.Fatal(err)
						}
						s, err := DecodeSync(raw)
						if err != nil {
							t.Fatal(err)
						}
						if s.Delta == nil || s.Delta.From != replicaGen {
							t.Fatalf("decoded delta mismatch: %+v", s)
						}
						if err := replica.ApplyDelta(s.Delta); err != nil {
							t.Fatal(err)
						}
						replicaGen = s.Delta.To
						deltas++
						return
					}
				}
				raw, err := EncodeFull(inc.Filter(), inc.Generation())
				if err != nil {
					t.Fatal(err)
				}
				s, err := DecodeSync(raw)
				if err != nil {
					t.Fatal(err)
				}
				if s.Full == nil {
					t.Fatalf("expected full sync, got %+v", s)
				}
				replica, replicaGen = s.Full, s.Gen
				fulls++
			}
			sync()

			present := map[string]bool{"http://seed/1": true, "http://seed/2": true}
			var order []string
			for url := range present {
				order = append(order, url)
			}
			for round := 0; round < 200; round++ {
				burst := rng.Intn(window * 2) // sometimes past the log window
				for i := 0; i < burst; i++ {
					if len(order) == 0 || rng.Intn(100) < 60 {
						url := fmt.Sprintf("http://h%d/p%d", rng.Intn(30), rng.Intn(300))
						if present[url] {
							continue
						}
						present[url] = true
						order = append(order, url)
						inc.Add(url)
					} else {
						j := rng.Intn(len(order))
						url := order[j]
						order[j] = order[len(order)-1]
						order = order[:len(order)-1]
						delete(present, url)
						inc.Remove(url)
					}
				}
				sync()
				if !replica.Equal(inc.Filter()) {
					t.Fatalf("round %d: replica diverged from server projection", round)
				}
				if replicaGen != inc.Generation() {
					t.Fatalf("round %d: replica gen %d != server gen %d", round, replicaGen, inc.Generation())
				}
			}
			if deltas == 0 || fulls == 0 {
				t.Fatalf("test did not exercise both paths: %d deltas, %d fulls", deltas, fulls)
			}
		})
	}
}

func TestDeltaWindowFallsBackToFull(t *testing.T) {
	inc, err := NewIncremental(64, 0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	inc.Seed(nil)
	base := inc.Generation()
	for i := 0; i < 10; i++ {
		inc.Add(fmt.Sprintf("http://x/%d", i))
	}
	if _, ok := inc.Delta(base); ok {
		t.Fatal("delta served past the log window")
	}
	if d, ok := inc.Delta(inc.Generation() - 4); !ok || d.To != inc.Generation() {
		t.Fatalf("delta at window edge refused: ok=%v d=%+v", ok, d)
	}
	if d, ok := inc.Delta(inc.Generation()); !ok || len(d.Set)+len(d.Clear) != 0 {
		t.Fatalf("up-to-date replica should get an empty delta, got ok=%v %+v", ok, d)
	}
	if _, ok := inc.Delta(0); ok {
		t.Fatal("generation 0 (no replica) must force a full transfer")
	}
	if _, ok := inc.Delta(inc.Generation() + 1); ok {
		t.Fatal("a replica ahead of the server must force a full transfer")
	}
}

func TestRebuildEscapeHatch(t *testing.T) {
	inc, err := NewIncremental(64, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	inc.Seed([]string{"http://a/", "http://b/"})
	// An underflow (remove of a key never added) must demand a rebuild.
	inc.Remove("http://never-added/")
	if !inc.NeedsRebuild() {
		t.Fatal("underflow did not trigger the escape hatch")
	}
	genBefore := inc.Generation()
	inc.Rebuild([]string{"http://a/", "http://b/"})
	if inc.NeedsRebuild() {
		t.Fatal("rebuild did not clear the degradation")
	}
	if inc.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d, want 1", inc.Rebuilds())
	}
	if inc.Generation() <= genBefore {
		t.Fatal("rebuild must advance the generation so replicas full-resync")
	}
	// The log was reset: any pre-rebuild replica takes a full transfer.
	if _, ok := inc.Delta(genBefore); ok {
		t.Fatal("delta served across a rebuild")
	}
	want, err := NewFilter(64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want.Add("http://a/")
	want.Add("http://b/")
	if !inc.Filter().Equal(want) {
		t.Fatal("rebuilt projection wrong")
	}
}

func TestCountingSaturationPinsCounters(t *testing.T) {
	c, err := NewCounting(16, 0.5) // tiny filter: this geometry yields k=1
	if err != nil {
		t.Fatal(err)
	}
	if c.Hashes() != 1 {
		t.Fatalf("expected k=1 for this geometry, got %d", c.Hashes())
	}
	// Hammer one key far past the 4-bit ceiling: the counter pins at 15
	// and removals never clear the bit (no false negatives, ever).
	for i := 0; i < 40; i++ {
		c.Add("http://hot/", nil)
	}
	if c.Pinned() == 0 {
		t.Fatal("no counter pinned after 40 duplicate adds")
	}
	for i := 0; i < 40; i++ {
		c.Remove("http://hot/", nil)
	}
	if !c.MayContain("http://hot/") {
		t.Fatal("pinned counter was cleared — potential false negative")
	}
	if c.Underflows() != 0 {
		t.Fatalf("pinned-counter removes must not count as underflows, got %d", c.Underflows())
	}
}

func TestDecodeSyncRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("EAD"),
		[]byte("EADX\x01\x00\x00\x00"),
		[]byte("EADF\x02\x00\x00\x00"),
		[]byte("EADF\x01\x00\x00\x00\x00\x00\x00\x00"),                // no gen/filter
		[]byte("EADD\x01\x00\x00\x00\x00\x00\x00\x00"),                // truncated header
		append([]byte("EADD\x01\x00\x00\x00"), make([]byte, 32+4)...), // size mismatch (claims 0 flips, has 1)
		append([]byte("EADF\x01\x00\x00\x00"), make([]byte, 8+10)...), // bad embedded filter
		func() []byte { // reversed generations
			d := Delta{From: 5, To: 2}
			b, _ := d.MarshalBinary()
			return b
		}(),
		func() []byte { // unsorted positions
			d := Delta{From: 1, To: 2, Set: []uint32{7, 3}}
			b, _ := d.MarshalBinary()
			return b
		}(),
	}
	for i, raw := range cases {
		if _, err := DecodeSync(raw); err == nil {
			t.Errorf("case %d: DecodeSync accepted garbage", i)
		}
	}
}

func TestApplyDeltaBoundsChecked(t *testing.T) {
	f, err := NewFilter(16, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d := &Delta{From: 1, To: 2, Set: []uint32{uint32(f.Bits())}}
	if err := f.ApplyDelta(d); err == nil {
		t.Fatal("out-of-range delta position accepted")
	}
}
