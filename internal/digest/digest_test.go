package digest

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNewFilterValidation(t *testing.T) {
	if _, err := NewFilter(0, 0.01); err == nil {
		t.Fatal("zero expected accepted")
	}
	if _, err := NewFilter(100, 0); err == nil {
		t.Fatal("zero fp rate accepted")
	}
	if _, err := NewFilter(100, 1); err == nil {
		t.Fatal("fp rate 1 accepted")
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f, err := NewFilter(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("http://x.example.edu/doc%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain(fmt.Sprintf("http://x.example.edu/doc%d", i)) {
			t.Fatalf("false negative for doc%d", i)
		}
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFilterFalsePositiveRateNearTarget(t *testing.T) {
	const n, target = 5000, 0.01
	f, err := NewFilter(n, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > target*3 {
		t.Fatalf("false-positive rate %.4f far above target %.4f", rate, target)
	}
	if est := f.EstimatedFPRate(); est > target*3 {
		t.Fatalf("estimated fp rate %.4f far above target", est)
	}
}

func TestFilterReset(t *testing.T) {
	f, err := NewFilter(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f.Add("a")
	f.Reset()
	if f.Len() != 0 || f.FillRatio() != 0 {
		t.Fatal("reset incomplete")
	}
	if f.MayContain("a") {
		t.Fatal("reset filter still matches")
	}
}

func TestFilterGeometry(t *testing.T) {
	f, err := NewFilter(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// ~9.6 bits/entry and ~7 hashes for 1% fp.
	if f.Bits() < 8000 || f.Bits() > 12000 {
		t.Fatalf("bits = %d, want ~9600", f.Bits())
	}
	if f.Hashes() < 5 || f.Hashes() > 9 {
		t.Fatalf("hashes = %d, want ~7", f.Hashes())
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(keys []string) bool {
		filter, err := NewFilter(len(keys)+1, 0.05)
		if err != nil {
			return false
		}
		for _, k := range keys {
			filter.Add(k)
		}
		for _, k := range keys {
			if !filter.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryLifecycle(t *testing.T) {
	s, err := NewSummary(100, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing advertised before the first rebuild.
	if s.MayContain("a") {
		t.Fatal("unbuilt summary advertised content")
	}
	if !s.Stale(0) {
		t.Fatal("unbuilt summary not stale")
	}

	s.Rebuild([]string{"a", "b"}, 5)
	if !s.MayContain("a") || !s.MayContain("b") {
		t.Fatal("rebuilt summary missing content")
	}
	if s.Stale(5) || s.Stale(14) {
		t.Fatal("fresh summary reported stale")
	}
	if !s.Stale(15) {
		t.Fatal("summary not stale after threshold mutations")
	}
	if s.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", s.Rebuilds())
	}

	// A rebuild drops evicted entries.
	s.Rebuild([]string{"b"}, 20)
	if s.MayContain("a") && s.Filter().Len() == 1 {
		// "a" may survive only as a hash collision; with one entry in
		// a 100-capacity filter a collision is vanishingly unlikely.
		t.Fatal("stale entry survived rebuild")
	}
}

func TestNewSummaryValidation(t *testing.T) {
	if _, err := NewSummary(100, 0.01, 0); err == nil {
		t.Fatal("zero rebuild threshold accepted")
	}
	if _, err := NewSummary(0, 0.01, 5); err == nil {
		t.Fatal("bad filter config accepted")
	}
}
