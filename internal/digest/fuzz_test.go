package digest

import (
	"bytes"
	"testing"
)

// FuzzDecodeSync throws arbitrary bytes at the digest sync decoder — the
// surface a node exposes to whatever answers a peer's
// `eac:digest?since=` fetch. It must never panic, and anything it
// accepts must re-encode to the identical bytes (the encoding is
// canonical: sorted positions, exact sizes).
func FuzzDecodeSync(f *testing.F) {
	// Valid full envelope.
	filt, err := NewFilter(32, 0.05)
	if err != nil {
		f.Fatal(err)
	}
	filt.Add("http://a/1")
	filt.Add("http://b/2")
	if full, err := EncodeFull(filt, 7); err == nil {
		f.Add(full)
	}
	// Valid deltas: empty, set-only, mixed.
	for _, d := range []*Delta{
		{From: 3, To: 3},
		{From: 1, To: 4, N: 2, Set: []uint32{1, 9, 200}},
		{From: 2, To: 9, N: 5, Set: []uint32{0, 63}, Clear: []uint32{7, 8, 1000}},
	} {
		if raw, err := d.MarshalBinary(); err == nil {
			f.Add(raw)
		}
	}
	// Truncations and bad magic.
	f.Add([]byte("EADF\x01\x00\x00\x00"))
	f.Add([]byte("EADD\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x09"))
	f.Add([]byte("EADG\x01\x00\x00\x00"))
	// Fuzz-found regression: nonzero reserved preamble bytes must be
	// rejected, or the accepted delta re-encodes with zeros there and the
	// canonical round trip breaks.
	f.Add([]byte("EADD\x01000000000000000000000000000\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSync(data)
		if err != nil {
			return
		}
		switch {
		case s.Delta != nil:
			raw, err := s.Delta.MarshalBinary()
			if err != nil {
				t.Fatalf("accepted delta failed to re-encode: %v", err)
			}
			if !bytes.Equal(raw, data) {
				t.Fatalf("delta round-trip not canonical")
			}
			if s.Delta.WireSize() != len(raw) {
				t.Fatalf("WireSize %d != encoded %d", s.Delta.WireSize(), len(raw))
			}
		case s.Full != nil:
			raw, err := EncodeFull(s.Full, s.Gen)
			if err != nil {
				t.Fatalf("accepted full sync failed to re-encode: %v", err)
			}
			if !bytes.Equal(raw, data) {
				t.Fatalf("full round-trip not canonical")
			}
		default:
			t.Fatalf("DecodeSync returned neither shape")
		}
	})
}
