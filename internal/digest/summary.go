package digest

import "fmt"

// Summary is the digest a proxy advertises to its neighbours: a Bloom
// filter over the cache's URLs, rebuilt only after enough cache mutations
// accumulate (Summary Cache's "delayed update" — summaries are allowed to
// go stale between rebuilds to keep the update traffic low, at the cost of
// false hits on evicted documents and stale misses on fresh ones).
type Summary struct {
	filter *Filter
	// rebuildEvery is the number of cache mutations tolerated before the
	// advertised summary must be rebuilt.
	rebuildEvery int64
	// lastBuild is the mutation counter value at the last rebuild.
	lastBuild int64
	// built reports whether the summary was ever built.
	built bool

	rebuilds int64
}

// NewSummary creates a summary that tolerates rebuildEvery cache mutations
// between rebuilds, sized for expected entries at the given false-positive
// rate.
func NewSummary(expected int, fpRate float64, rebuildEvery int64) (*Summary, error) {
	if rebuildEvery <= 0 {
		return nil, fmt.Errorf("digest: rebuildEvery must be positive, got %d", rebuildEvery)
	}
	f, err := NewFilter(expected, fpRate)
	if err != nil {
		return nil, err
	}
	return &Summary{filter: f, rebuildEvery: rebuildEvery}, nil
}

// Stale reports whether the advertised summary is due for a rebuild given
// the cache's current mutation counter (e.g. insertions + evictions).
func (s *Summary) Stale(mutations int64) bool {
	return !s.built || mutations-s.lastBuild >= s.rebuildEvery
}

// Rebuild replaces the advertised contents with the given URL set.
func (s *Summary) Rebuild(urls []string, mutations int64) {
	s.filter.Reset()
	for _, u := range urls {
		s.filter.Add(u)
	}
	s.lastBuild = mutations
	s.built = true
	s.rebuilds++
}

// MayContain consults the advertised (possibly stale) summary. Before the
// first rebuild nothing is advertised.
func (s *Summary) MayContain(url string) bool {
	if !s.built {
		return false
	}
	return s.filter.MayContain(url)
}

// Rebuilds returns how many times the summary was republished — each one
// models a digest transfer to every neighbour.
func (s *Summary) Rebuilds() int64 { return s.rebuilds }

// Filter exposes the underlying filter for inspection.
func (s *Summary) Filter() *Filter { return s.filter }
