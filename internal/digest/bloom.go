// Package digest implements Summary-Cache-style cache digests (Fan, Cao,
// Almeida & Broder, SIGCOMM '98), the alternative document-location
// mechanism the paper's related-work section contrasts with ICP: instead of
// querying every neighbour on every miss, each proxy periodically publishes
// a Bloom-filter summary of its contents, and neighbours consult the (and
// possibly stale) summaries locally — trading query messages for false
// hits and stale misses.
package digest

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a classic Bloom filter over strings, using double hashing
// derived from one 64-bit FNV hash (Kirsch & Mitzenmacher).
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // hash functions
	n    int    // inserted elements
}

// geometry derives the Bloom filter shape from the expected element count
// and target false-positive rate using the standard formulas
// m = -n·ln(p)/ln(2)² and k = m/n·ln(2). The plain Filter and the
// Counting filter share it so a counting filter's bit projection is
// directly comparable to a rebuilt Filter.
func geometry(expected int, fpRate float64) (m uint64, k int, err error) {
	if expected <= 0 {
		return 0, 0, fmt.Errorf("digest: expected elements must be positive, got %d", expected)
	}
	if fpRate <= 0 || fpRate >= 1 {
		return 0, 0, fmt.Errorf("digest: false-positive rate must be in (0,1), got %v", fpRate)
	}
	mf := -float64(expected) * math.Log(fpRate) / (math.Ln2 * math.Ln2)
	m = uint64(math.Ceil(mf))
	if m < 64 {
		m = 64
	}
	if m >= 1<<32 {
		// Bit positions travel as u32 in the delta wire format.
		return 0, 0, fmt.Errorf("digest: filter of %d bits exceeds the wire format", m)
	}
	k = int(math.Round(mf / float64(expected) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return m, k, nil
}

// NewFilter sizes a filter for the expected number of elements and target
// false-positive rate. Summary Cache recommends a load factor around 8-16
// bits per entry.
func NewFilter(expected int, fpRate float64) (*Filter, error) {
	m, k, err := geometry(expected, fpRate)
	if err != nil {
		return nil, err
	}
	return &Filter{
		bits: make([]uint64, (m+63)/64),
		m:    m,
		k:    k,
	}, nil
}

// Add inserts key.
func (f *Filter) Add(key string) {
	h1, h2 := hashPair(key)
	for i := 0; i < f.k; i++ {
		f.set((h1 + uint64(i)*h2) % f.m)
	}
	f.n++
}

// MayContain reports whether key might be present. False positives occur at
// roughly the configured rate; false negatives never (for a fresh filter).
func (f *Filter) MayContain(key string) bool {
	h1, h2 := hashPair(key)
	for i := 0; i < f.k; i++ {
		if !f.get((h1 + uint64(i)*h2) % f.m) {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Len returns the number of inserted elements.
func (f *Filter) Len() int { return f.n }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.k }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFPRate returns the false-positive probability implied by the
// current fill ratio: fill^k.
func (f *Filter) EstimatedFPRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

func (f *Filter) set(bit uint64) {
	f.bits[bit/64] |= 1 << (bit % 64)
}

func (f *Filter) clear(bit uint64) {
	f.bits[bit/64] &^= 1 << (bit % 64)
}

func (f *Filter) get(bit uint64) bool {
	return f.bits[bit/64]&(1<<(bit%64)) != 0
}

// Clone returns an independent copy of the filter. Peer-digest replicas
// are treated as immutable once published to readers; a delta is applied
// to a clone which is then swapped in.
func (f *Filter) Clone() *Filter {
	cp := &Filter{
		bits: make([]uint64, len(f.bits)),
		m:    f.m,
		k:    f.k,
		n:    f.n,
	}
	copy(cp.bits, f.bits)
	return cp
}

// Equal reports whether two filters have identical geometry and bit
// contents (element counts included).
func (f *Filter) Equal(o *Filter) bool {
	if f.m != o.m || f.k != o.k || f.n != o.n || len(f.bits) != len(o.bits) {
		return false
	}
	for i, w := range f.bits {
		if o.bits[i] != w {
			return false
		}
	}
	return true
}

func hashPair(key string) (uint64, uint64) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	sum := h.Sum64()
	h1 := sum
	// Derive the second hash by mixing; ensure it is odd so the double-
	// hash probe sequence covers the space.
	h2 := (sum>>33 ^ sum*0x9e3779b97f4a7c15) | 1
	return h1, h2
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
