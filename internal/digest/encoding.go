package digest

import (
	"encoding/binary"
	"fmt"
)

// Wire format of a serialized Filter (Squid serves its cache digests over
// HTTP the same way; peers fetch and consult them locally):
//
//	magic "EADG" | version u8 | k u8 | reserved u16 | m u64 | n u64 | bits
const (
	encMagic   = "EADG"
	encVersion = 1
	encHeader  = 4 + 1 + 1 + 2 + 8 + 8
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, encHeader+len(f.bits)*8)
	copy(out, encMagic)
	out[4] = encVersion
	if f.k > 255 {
		return nil, fmt.Errorf("digest: k %d does not fit the wire format", f.k)
	}
	out[5] = byte(f.k)
	binary.BigEndian.PutUint64(out[8:16], f.m)
	binary.BigEndian.PutUint64(out[16:24], uint64(f.n))
	for i, w := range f.bits {
		binary.BigEndian.PutUint64(out[encHeader+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// filter's contents.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < encHeader {
		return fmt.Errorf("digest: truncated filter (%d bytes)", len(data))
	}
	if string(data[:4]) != encMagic {
		return fmt.Errorf("digest: bad magic %q", data[:4])
	}
	if data[4] != encVersion {
		return fmt.Errorf("digest: unsupported version %d", data[4])
	}
	// Canonical encoding: the reserved bytes are zero, not ignored.
	if data[6] != 0 || data[7] != 0 {
		return fmt.Errorf("digest: nonzero reserved bytes in filter header")
	}
	k := int(data[5])
	if k < 1 {
		return fmt.Errorf("digest: bad hash count %d", k)
	}
	m := binary.BigEndian.Uint64(data[8:16])
	n := binary.BigEndian.Uint64(data[16:24])
	words := int((m + 63) / 64)
	if m == 0 || words > 1<<24 {
		return fmt.Errorf("digest: implausible filter size %d bits", m)
	}
	if len(data) != encHeader+words*8 {
		return fmt.Errorf("digest: size mismatch: %d bits need %d bytes, got %d",
			m, encHeader+words*8, len(data))
	}
	bits := make([]uint64, words)
	for i := range bits {
		bits[i] = binary.BigEndian.Uint64(data[encHeader+i*8:])
	}
	// Slack bits past m in the final word can never be set by filter
	// operations, so a canonical encoding has them zero too.
	if rem := m % 64; rem != 0 && bits[words-1]&(^uint64(0)<<rem) != 0 {
		return fmt.Errorf("digest: nonzero slack bits past %d-bit filter", m)
	}
	f.bits = bits
	f.m = m
	f.k = k
	f.n = int(n)
	return nil
}
