package digest

// Counting is a counting Bloom filter: the structure Summary Cache (Fan,
// Cao, Almeida & Broder, SIGCOMM '98, §4.2) proposes for maintaining a
// local summary incrementally — each bit of the advertised filter is
// backed by a 4-bit saturating counter, so deletions can clear bits
// again and the advertised summary never needs a full-URL-set rebuild in
// steady state.
//
// Counters saturate at 15 and are then pinned: a pinned counter has lost
// its true count, so it is never decremented again (clearing it could
// introduce a false negative) and its bit stays set until a full rebuild.
// Summary Cache shows the probability of any counter reaching 16 is
// ~1.37e-15 per counter at the recommended load, so pinning is an escape
// hatch, not a steady-state cost. Decrementing a zero counter is an
// accounting anomaly (a remove that was never added); it is recorded and
// forces a rebuild because the symmetric damage — some other counter left
// too high — cannot be located.
//
// Counting shares its geometry and hash family with Filter, so the bit
// projection (counter > 0) of a counting filter over a key set is
// bit-identical to a Filter freshly built from the same set, as long as
// no counter has pinned.
type Counting struct {
	counts []uint8 // two 4-bit counters per byte, low nibble first
	m      uint64  // number of counters (= bits of the projection)
	k      int     // hash functions
	n      int     // keys currently counted
	pinned int     // counters stuck at 15
	under  int     // decrements that found a zero counter
}

// counterMax is the saturation value of one 4-bit counter.
const counterMax = 15

// NewCounting sizes a counting filter exactly like NewFilter sizes a
// plain one, so projections and rebuilt filters are comparable.
func NewCounting(expected int, fpRate float64) (*Counting, error) {
	m, k, err := geometry(expected, fpRate)
	if err != nil {
		return nil, err
	}
	return &Counting{
		counts: make([]uint8, (m+1)/2),
		m:      m,
		k:      k,
	}, nil
}

// Add counts key in. Counter positions whose projected bit flipped 0→1
// are appended to flips (which may be nil) and the extended slice
// returned, so an incremental summary can maintain its bit projection
// and change log in O(k).
func (c *Counting) Add(key string, flips []uint32) []uint32 {
	h1, h2 := hashPair(key)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		switch v := c.get(pos); {
		case v >= counterMax:
			// Pinned: the counter stays saturated. (Reaching 15 pins it;
			// see the type comment.)
		case v == 0:
			c.put(pos, 1)
			flips = append(flips, uint32(pos))
		default:
			c.put(pos, v+1)
			if v+1 == counterMax {
				c.pinned++
			}
		}
	}
	c.n++
	return flips
}

// Remove counts key out. Counter positions whose projected bit flipped
// 1→0 are appended to flips and the extended slice returned. Removing a
// key that was never added corrupts the filter; the damage is detected
// (a zero counter decremented) and reported via NeedsRebuild.
func (c *Counting) Remove(key string, flips []uint32) []uint32 {
	h1, h2 := hashPair(key)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		switch v := c.get(pos); {
		case v >= counterMax:
			// Pinned: true count unknown, never decrement.
		case v == 0:
			c.under++
		case v == 1:
			c.put(pos, 0)
			flips = append(flips, uint32(pos))
		default:
			c.put(pos, v-1)
		}
	}
	if c.n > 0 {
		c.n--
	}
	return flips
}

// MayContain consults the projected bits, exactly like Filter.MayContain
// on the projection.
func (c *Counting) MayContain(key string) bool {
	h1, h2 := hashPair(key)
	for i := 0; i < c.k; i++ {
		if c.get((h1+uint64(i)*h2)%c.m) == 0 {
			return false
		}
	}
	return true
}

// Project writes the counter>0 bit projection into a fresh Filter of the
// same geometry.
func (c *Counting) Project() *Filter {
	f := &Filter{
		bits: make([]uint64, (c.m+63)/64),
		m:    c.m,
		k:    c.k,
		n:    c.n,
	}
	for pos := uint64(0); pos < c.m; pos++ {
		if c.get(pos) > 0 {
			f.set(pos)
		}
	}
	return f
}

// Len returns the number of keys currently counted.
func (c *Counting) Len() int { return c.n }

// Bits returns the number of counters (projection bits).
func (c *Counting) Bits() uint64 { return c.m }

// Hashes returns the number of hash functions.
func (c *Counting) Hashes() int { return c.k }

// Pinned returns how many counters have saturated and are stuck at 15.
func (c *Counting) Pinned() int { return c.pinned }

// Underflows returns how many decrements found an already-zero counter.
func (c *Counting) Underflows() int { return c.under }

// NeedsRebuild reports whether the filter has degraded enough that only
// a from-scratch rebuild restores exactness: any underflow (possible
// false negatives elsewhere), or pinned counters past a small fraction
// of the filter (their stuck bits inflate the false-positive rate).
func (c *Counting) NeedsRebuild() bool {
	maxPinned := int(c.m / 256)
	if maxPinned < 4 {
		maxPinned = 4
	}
	return c.under > 0 || c.pinned > maxPinned
}

// Reset clears every counter and the degradation accounting.
func (c *Counting) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.n = 0
	c.pinned = 0
	c.under = 0
}

func (c *Counting) get(pos uint64) uint8 {
	b := c.counts[pos/2]
	if pos%2 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

func (c *Counting) put(pos uint64, v uint8) {
	i := pos / 2
	if pos%2 == 0 {
		c.counts[i] = c.counts[i]&0xf0 | v
	} else {
		c.counts[i] = c.counts[i]&0x0f | v<<4
	}
}
