package digest

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f, err := NewFilter(200, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		f.Add(fmt.Sprintf("http://e/doc%d", i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Hashes() != f.Hashes() || g.Len() != f.Len() {
		t.Fatalf("geometry mismatch after decode")
	}
	if g.FillRatio() != f.FillRatio() {
		t.Fatalf("fill ratio changed: %v vs %v", g.FillRatio(), f.FillRatio())
	}
	for i := 0; i < 150; i++ {
		if !g.MayContain(fmt.Sprintf("http://e/doc%d", i)) {
			t.Fatalf("decoded filter lost entry %d", i)
		}
	}
	// Re-encoding yields identical bytes.
	again, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encode differs")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	f, err := NewFilter(64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	f.Add("x")
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var g Filter
	cases := map[string][]byte{
		"empty":       nil,
		"short":       data[:10],
		"bad magic":   append([]byte("NOPE"), data[4:]...),
		"bad version": append(append([]byte{}, data[:4]...), append([]byte{9}, data[5:]...)...),
		"zero hashes": append(append([]byte{}, data[:5]...), append([]byte{0}, data[6:]...)...),
		"trailing":    append(append([]byte{}, data...), 0xff),
		"truncated":   data[:len(data)-3],
	}
	for name, corrupted := range cases {
		if err := g.UnmarshalBinary(corrupted); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	// The original still decodes after all the failures.
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(keys []string, seed uint8) bool {
		filter, err := NewFilter(len(keys)+1, 0.01+float64(seed%50)/100)
		if err != nil {
			return false
		}
		for _, k := range keys {
			filter.Add(k)
		}
		data, err := filter.MarshalBinary()
		if err != nil {
			return false
		}
		var decoded Filter
		if err := decoded.UnmarshalBinary(data); err != nil {
			return false
		}
		for _, k := range keys {
			if !decoded.MayContain(k) {
				return false
			}
		}
		return decoded.Len() == filter.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryFilterAccessor(t *testing.T) {
	s, err := NewSummary(32, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Rebuild([]string{"a"}, 0)
	if s.Filter() == nil || s.Filter().Len() != 1 {
		t.Fatalf("Filter() = %+v", s.Filter())
	}
}
