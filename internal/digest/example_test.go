package digest_test

import (
	"fmt"

	"eacache/internal/digest"
)

// A summary advertises a cache's contents between rebuilds; entries evicted
// since the last rebuild are still advertised (false hits), fresh entries
// are not yet advertised (stale misses) — Summary Cache's trade for
// eliminating per-miss query traffic.
func ExampleSummary() {
	s, err := digest.NewSummary(1024, 0.01, 16)
	if err != nil {
		fmt.Println(err)
		return
	}

	s.Rebuild([]string{"http://a/", "http://b/"}, 0)
	fmt.Println("a advertised:", s.MayContain("http://a/"))
	fmt.Println("c advertised:", s.MayContain("http://c/"))

	// The cache evicts /a and stores /c, but within the rebuild
	// threshold the old summary is still what neighbours see.
	fmt.Println("stale before threshold:", !s.Stale(10))
	fmt.Println("stale after threshold:", s.Stale(16))

	// Output:
	// a advertised: true
	// c advertised: false
	// stale before threshold: true
	// stale after threshold: true
}
