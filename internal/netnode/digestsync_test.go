package netnode

// Tests for the incremental digest sync path: single-flight fetches
// under a miss herd, delta transfers over the wire, serve-stale on the
// miss path, and freshness measured on the injected clock.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eacache/internal/core"
	"eacache/internal/metrics"
	"eacache/internal/proxy"
)

// fakeClock is an injectable Config.Now that only moves when advanced.
type fakeClock struct {
	base   time.Time
	offset atomic.Int64 // nanoseconds
}

func newFakeClock() *fakeClock { return &fakeClock{base: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time          { return c.base.Add(time.Duration(c.offset.Load())) }
func (c *fakeClock) Advance(d time.Duration) { c.offset.Add(int64(d)) }

// startDigestNodeWith builds a digest-locating node with explicit clock
// and refresh/window knobs.
func startDigestNodeWith(t *testing.T, id, origin string, refresh time.Duration, now func() time.Time, window int) *Node {
	t.Helper()
	n, err := New(Config{
		ID:                id,
		ICPAddr:           "127.0.0.1:0",
		HTTPAddr:          "127.0.0.1:0",
		Store:             newStore(t, 1<<20),
		Scheme:            core.EA{},
		OriginAddr:        origin,
		Location:          proxy.LocateDigest,
		Digest:            proxy.DigestConfig{Expected: 64, FPRate: 0.01, RebuildEvery: 1},
		DigestRefresh:     refresh,
		DigestDeltaWindow: window,
		Now:               now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

// A 32-way herd of concurrent misses on distinct URLs (distinct so the
// request coalescer cannot mask duplicates) must share one single-flight
// digest fetch: the peer serves exactly one full transfer and the
// requester dials exactly once.
func TestDigestMissHerdSharesOneFetch(t *testing.T) {
	origin := startOrigin(t)
	// Hour-long refresh: no background revalidation can race the herd.
	a := startDigestNodeWith(t, "a", origin.Addr(), time.Hour, nil, 0)
	b := startDigestNodeWith(t, "b", origin.Addr(), time.Hour, nil, 0)
	mesh(a, b)

	const herd = 32
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Request(fmt.Sprintf("http://w/h%d", i), 400); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := b.DigestStats().Fetches; got != 1 {
		t.Fatalf("digest fetches = %d, want 1 (single flight)", got)
	}
	as := a.DigestStats()
	if as.FullsServed != 1 || as.DeltasServed != 0 {
		t.Fatalf("peer served fulls=%d deltas=%d, want exactly one full", as.FullsServed, as.DeltasServed)
	}
}

// Digest freshness must be measured on the injected Config.Now clock:
// with the fake clock frozen, real elapsed time never triggers a
// refresh; advancing the fake clock does — and the revalidation arrives
// as a compact delta applied to the replica, off the request path.
func TestDigestRefreshUsesInjectedClockAndDeltas(t *testing.T) {
	origin := startOrigin(t)
	clk := newFakeClock()
	a := startDigestNodeWith(t, "a", origin.Addr(), 50*time.Millisecond, clk.Now, 0)
	b := startDigestNodeWith(t, "b", origin.Addr(), 50*time.Millisecond, clk.Now, 0)
	mesh(a, b)

	// First contact: b fetches a's (empty) digest in full.
	if _, err := b.Request("http://w/seed", 400); err != nil {
		t.Fatal(err)
	}
	if got := b.DigestStats().Fetches; got != 1 {
		t.Fatalf("fetches after first contact = %d", got)
	}

	// a caches new content; its own generation advances incrementally.
	if _, err := a.Request("http://w/new", 400); err != nil {
		t.Fatal(err)
	}

	// Real time passes (several revalidator ticks) but the injected
	// clock is frozen, so the replica must still count as fresh.
	time.Sleep(150 * time.Millisecond)
	if got := b.DigestStats().Fetches; got != 1 {
		t.Fatalf("fetches with frozen clock = %d, want 1 (freshness must use Config.Now)", got)
	}

	// Advance the cache-visible clock past the refresh window: the
	// background loop revalidates, and — since b holds generation G —
	// the peer answers with a delta, not a full filter.
	clk.Advance(time.Second)
	waitFor(t, 2*time.Second, "background delta refresh", func() bool {
		return b.DigestStats().DeltasApplied >= 1
	})
	if as := a.DigestStats(); as.DeltasServed < 1 {
		t.Fatalf("peer stats = %+v, want at least one delta served", as)
	}

	// The refreshed replica now advertises the new document.
	res, err := b.Request("http://w/new", 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.RemoteHit || res.Responder != a.HTTPAddr() {
		t.Fatalf("res = %+v, want remote hit via delta-synced digest", res)
	}
}

// A miss that consults a stale replica must be answered from the stale
// copy immediately — never block on the wire — while one background
// flight revalidates.
func TestDigestServeStaleKeepsMissOffTheWire(t *testing.T) {
	origin := startOrigin(t)
	clk := newFakeClock()
	// Hour-long refresh: the background loop (period refresh/2) never
	// ticks during the test, so the *only* way the replica can be
	// refreshed is the flight kicked by the serve-stale path.
	a := startDigestNodeWith(t, "a", origin.Addr(), time.Hour, clk.Now, 0)
	b := startDigestNodeWith(t, "b", origin.Addr(), time.Hour, clk.Now, 0)
	mesh(a, b)

	if _, err := b.Request("http://w/prime", 400); err != nil {
		t.Fatal(err)
	}
	if got := b.DigestStats().Fetches; got != 1 {
		t.Fatalf("fetches after prime = %d", got)
	}

	// Cross the trust window on the cache-visible clock.
	clk.Advance(2 * time.Hour)

	res, err := b.Request("http://w/after-stale", 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != metrics.Miss {
		t.Fatalf("res = %+v, want plain miss", res)
	}
	if got := b.DigestStats().StaleServed; got < 1 {
		t.Fatalf("stale served = %d, want >= 1", got)
	}
	// The background flight lands without any further requests.
	waitFor(t, 2*time.Second, "background revalidation", func() bool {
		return b.DigestStats().Fetches >= 2
	})
}

// Steady state must perform zero full-scan rebuilds: drive churn through
// a small store (inserts and evictions) and assert the escape hatch was
// never taken while the advertised digest stayed live.
func TestDigestSteadyStateNeverRebuilds(t *testing.T) {
	origin := startOrigin(t)
	a := startDigestNodeWith(t, "a", origin.Addr(), time.Hour, nil, 0)

	for i := 0; i < 200; i++ {
		if _, err := a.Request(fmt.Sprintf("http://w/churn%d", i), 400); err != nil {
			t.Fatal(err)
		}
	}
	rep := a.DigestReport()
	if !rep.Enabled {
		t.Fatal("digest report disabled on a digest node")
	}
	if rep.RebuildEscapes != 0 || rep.Stats.RebuildEscapes != 0 {
		t.Fatalf("rebuild escapes = %d/%d, want 0 in steady state",
			rep.RebuildEscapes, rep.Stats.RebuildEscapes)
	}
	if rep.OwnGeneration < 200 {
		t.Fatalf("own generation = %d, want one advance per mutation", rep.OwnGeneration)
	}
}

func TestDigestDeltaWindowValidation(t *testing.T) {
	base := func() Config {
		return Config{
			ID:         "w",
			ICPAddr:    "127.0.0.1:0",
			HTTPAddr:   "127.0.0.1:0",
			Store:      newStore(t, 1<<20),
			Scheme:     core.EA{},
			OriginAddr: "127.0.0.1:1",
		}
	}

	cfg := base()
	cfg.Location = proxy.LocateDigest
	cfg.DigestDeltaWindow = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative delta window accepted")
	}

	cfg = base()
	cfg.DigestDeltaWindow = 8 // without LocateDigest
	if _, err := New(cfg); err == nil {
		t.Fatal("delta window without digest location accepted")
	}

	cfg = base()
	cfg.Location = proxy.LocateDigest
	cfg.DigestDeltaWindow = 8
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if got := n.DigestReport().Window; got != 8 {
		t.Fatalf("window = %d, want 8", got)
	}
}
