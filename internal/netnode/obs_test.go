package netnode

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"eacache/internal/core"
	"eacache/internal/metrics"
	"eacache/internal/obs"
)

// startObservedNode is startNode plus a Telemetry wired into the node.
func startObservedNode(t *testing.T, id string, scheme core.Scheme, origin string) (*Node, *obs.Telemetry) {
	t.Helper()
	tel := obs.New(id, 64)
	n, err := New(Config{
		ID:         id,
		ICPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Store:      newStore(t, 1<<20),
		Scheme:     scheme,
		OriginAddr: origin,
		ICPTimeout: 500 * time.Millisecond,
		Obs:        tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n, tel
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestGroupTelemetryEndToEnd is the PR's acceptance test: run a live
// two-node cooperative group with telemetry on, drive a miss / local-hit /
// remote-hit mix through it over real sockets, then scrape the admin
// surface of the requesting node over HTTP and check that the metrics,
// the trace dump (with both piggybacked expiration ages on the remote
// hit), and pprof all come back.
func TestGroupTelemetryEndToEnd(t *testing.T) {
	origin := startOrigin(t)
	a, _ := startObservedNode(t, "a", core.EA{}, origin.Addr())
	b, telB := startObservedNode(t, "b", core.EA{}, origin.Addr())
	mesh(a, b)

	// Miss at a (origin fetch + store), then local hit at a, then remote
	// hit at b via ICP + inter-proxy fetch.
	const url = "http://obs.example.edu/doc"
	if res, err := a.Request(url, 4096); err != nil || res.Outcome != metrics.Miss {
		t.Fatalf("warm-up miss: res=%+v err=%v", res, err)
	}
	if res, err := a.Request(url, 4096); err != nil || res.Outcome != metrics.LocalHit {
		t.Fatalf("local hit: res=%+v err=%v", res, err)
	}
	res, err := b.Request(url, 4096)
	if err != nil || res.Outcome != metrics.RemoteHit {
		t.Fatalf("remote hit: res=%+v err=%v", res, err)
	}
	if res.Responder != a.HTTPAddr() {
		t.Fatalf("responder = %q, want %q", res.Responder, a.HTTPAddr())
	}

	admin, err := obs.ServeAdmin(obs.AdminConfig{Addr: "127.0.0.1:0", Telemetry: telB})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()

	code, body := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`eac_requests_total{outcome="remote-hit"} 1`,
		`eac_bytes_served_total{outcome="remote-hit"} 4096`,
		`eac_request_duration_seconds_count{outcome="remote-hit"} 1`,
		`eac_stage_duration_seconds_count{stage="local-lookup"} 1`,
		`eac_stage_duration_seconds_count{stage="icp-fanout"} 1`,
		`eac_stage_duration_seconds_count{stage="remote-fetch"} 1`,
		`eac_placement_decisions_total{decision="reject",role="requester"} 1`,
		`eac_peer_breaker_state{peer="` + a.HTTPAddr() + `"} 0`,
		`eac_icp_replies_total 1`,
		"eac_cache_expiration_age_seconds",
		"eac_cache_events_total",
		`eac_stage_duration_seconds_bucket{stage="icp-fanout",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("metrics body:\n%s", body)
	}

	code, body = httpGet(t, base+"/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace = %d", code)
	}
	var traces []obs.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("trace dump: %v\n%s", err, body)
	}
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Outcome != "remote-hit" || tr.URL != url || tr.Responder != a.HTTPAddr() {
		t.Fatalf("trace = %+v", tr)
	}
	// Both piggybacked expiration ages travelled with the remote hit:
	// neither cache has evicted yet, so both report the no-contention
	// sentinel (-1). On this tie the strict EA rule neither stores at the
	// requester nor promotes at the responder.
	if tr.RequesterAgeMS != -1 || tr.ResponderAgeMS != -1 {
		t.Fatalf("ages = %d/%d, want -1/-1 (no contention)", tr.RequesterAgeMS, tr.ResponderAgeMS)
	}
	if tr.Decision != obs.DecisionReject || tr.Stored {
		t.Fatalf("decision = %q stored=%v, want reject/unstored on an age tie", tr.Decision, tr.Stored)
	}
	stages := make(map[string]bool)
	var fanout *obs.Span
	for i, sp := range tr.Spans {
		stages[sp.Stage] = true
		if sp.Stage == obs.StageICPFanout {
			fanout = &tr.Spans[i]
		}
	}
	for _, want := range []string{obs.StageLocalLookup, obs.StageICPFanout, obs.StageRemoteFetch, obs.StagePlacement} {
		if !stages[want] {
			t.Fatalf("trace missing stage %q (spans %+v)", want, tr.Spans)
		}
	}
	if fanout.Attrs.Get("queried") != "1" || fanout.Attrs.Get("hits") != "1" {
		t.Fatalf("icp-fanout span attrs = %+v", fanout.Attrs)
	}

	if code, _ := httpGet(t, base+"/debug/pprof/heap?debug=1"); code != 200 {
		t.Fatalf("pprof heap = %d", code)
	}
}

// TestResponderPromoteCounter checks the responder-side leg of the EA
// decision telemetry: node a serves b's remote hit and counts its own
// promote/reject verdict.
func TestResponderPromoteCounter(t *testing.T) {
	origin := startOrigin(t)
	a, telA := startObservedNode(t, "a", core.EA{}, origin.Addr())
	b, _ := startObservedNode(t, "b", core.EA{}, origin.Addr())
	mesh(a, b)

	url := "http://obs.example.edu/promote"
	if _, err := a.Request(url, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request(url, 1024); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := telA.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	// EA with equal (no-contention) ages does not promote at the
	// responder, so the reject leg must have fired exactly once.
	if !strings.Contains(body, `eac_placement_decisions_total{decision="reject",role="responder"} 1`) {
		t.Fatalf("responder decision not counted:\n%s", body)
	}
}

// TestNodeWithoutTelemetryStaysInert pins the nil-telemetry contract: no
// Config.Obs means no traces, no metrics, and no crashes anywhere on the
// request path.
func TestNodeWithoutTelemetryStaysInert(t *testing.T) {
	origin := startOrigin(t)
	n := startNode(t, "plain", 1<<20, core.EA{}, origin.Addr())
	if _, err := n.Request("http://obs.example.edu/inert", 512); err != nil {
		t.Fatal(err)
	}
	if n.obs != nil || n.om != nil {
		t.Fatal("telemetry should be absent")
	}
}
